(** The parametric RFID sensor model of §III-A (Eq. 1).

    The probability that a tag at distance [d] and angle [theta] from
    the reader responds in one interrogation round is the logistic of a
    polynomial:

    {v p(read | d, theta) = sigmoid(a0 + a1 d + a2 d^2 + b1 theta + b2 theta^2) v}

    (equivalently, the paper writes [p(read = 0)] as the complementary
    logistic). The decay coefficients are expected negative; they are
    real-valued parameters learned from data during calibration rather
    than hand-measured per deployment. The same model (same
    coefficients) serves object tags and shelf tags. *)

type t = {
  a0 : float;  (** intercept *)
  a1 : float;  (** distance, linear *)
  a2 : float;  (** distance, quadratic *)
  b1 : float;  (** angle, linear *)
  b2 : float;  (** angle, quadratic *)
}

val default : t
(** A plausible hand-set conical model (≈95% read rate at contact,
    decaying to ~50% around 3 ft head-on, narrower off-axis) used as an
    EM starting point and in quickstart examples. *)

val features : d:float -> theta:float -> float array
(** [[| 1; d; d^2; theta; theta^2 |]] with [theta] taken as its absolute
    value — the model is symmetric in angle. *)

val of_coef : float array -> t
(** @raise Invalid_argument unless length 5 ([a0 a1 a2 b1 b2]). *)

val to_coef : t -> float array

val read_prob_at : t -> d:float -> theta:float -> float
(** Read probability at a given distance (ft) and unsigned angle
    (radians). *)

val geometry :
  reader_loc:Rfid_geom.Vec3.t ->
  reader_heading:float ->
  tag_loc:Rfid_geom.Vec3.t ->
  float * float
(** [(d, theta)]: Euclidean 3-D distance and unsigned XY-plane angle
    between the reader's heading and the tag — the quantities Eq. 1 is
    evaluated at. *)

val read_prob :
  t -> reader_loc:Rfid_geom.Vec3.t -> reader_heading:float -> tag_loc:Rfid_geom.Vec3.t -> float

val log_prob :
  t ->
  reader_loc:Rfid_geom.Vec3.t ->
  reader_heading:float ->
  tag_loc:Rfid_geom.Vec3.t ->
  read:bool ->
  float
(** Log-likelihood of one sensing outcome — the factored particle weight
    of Eq. 5, computed stably in log space. *)

val saturation_radius : t -> float
(** The exact-saturation culling radius of the model: a distance [r]
    such that for {e any} computed distance [d > r] (up to 1e8, the
    kernels' no-overflow envelope) and any angle, the miss
    log-likelihood [log_prob ~read:false] evaluates to exactly [-0.0]
    in IEEE-754 double — the logit is provably at or below
    {!Rfid_prob.Logistic.exp_underflow}, where [exp] underflows to
    +0.0 and [-.log1p 0. = -0.0]. Skipping such a term is therefore a
    bitwise no-op on any accumulator, which is what lets the batched
    kernels cull saturated entries while staying byte-identical to
    the uncull ed evaluation.

    Derived in closed form as the larger root of
    [a2 d^2 + a1 d + (a0 + max_theta(b1 th + b2 th^2)
    - exp_underflow)]; requires [a2 < 0] (distance-decaying logit).
    Returns [0.] when the model saturates at every distance,
    [infinity] — culling disabled, kernels evaluate everything — when
    the closed form does not apply ([a2 >= 0], non-finite
    coefficients) or the coefficients are scaled so extremely that
    float-evaluation error near the radius could not be proven away.
    For the default model the radius is ~54 ft. *)

(** {1 Per-epoch pose memo}

    The filter hot paths evaluate [log_prob] once per (object particle,
    epoch) against the pose of the reader particle the object particle
    is conditioned on. A [pre] memoizes those poses — x/y/z/heading in
    flat unboxed [floatarray] slabs, one slot per reader particle —
    refreshed once per epoch, so the inner loop reads four floats by
    index and allocates nothing. [log_prob_pre] is bit-identical to
    [log_prob] at the memoized pose. *)

type pre

val precompute : t -> n:int -> pre
(** Memo with [n] pose slots (initially all zero) for this model.
    @raise Invalid_argument on negative [n]. *)

val pre_size : pre -> int
(** Current number of pose slots. *)

val pre_resize : pre -> int -> unit
(** Set the slot count, reallocating slabs only on growth; slot
    contents are unspecified after a growing resize. *)

val pre_set_pose : pre -> int -> x:float -> y:float -> z:float -> heading:float -> unit
(** Fill one pose slot. @raise Invalid_argument out of range. *)

val pre_set_pose_checked :
  pre -> int -> x:float -> y:float -> z:float -> heading:float -> bool
(** As {!pre_set_pose}, but first compares the new pose against the
    slot's current contents and skips the write (returning [false])
    when they are identical. The comparison is zero-sign-exact — a
    [-0.0] replacing a [+0.0] counts as a change, because the kernel
    arithmetic ([atan2], subtraction) distinguishes them — and a NaN
    component always counts as changed. A filter refreshing its memo
    through this entry point can detect a fully unchanged epoch (every
    call returned [false]) and count it as a memo reuse.
    @raise Invalid_argument out of range. *)

val pre_stamp : pre -> int
(** Fingerprint of the memo's pose contents: bumped by every
    {!pre_set_pose}, every {!pre_set_pose_checked} that actually
    writes, and every {!pre_resize} that changes the slot count — and
    by nothing else. Equal stamps therefore mean the memo still holds
    exactly the poses it held before (the fingerprint is evicted on
    any pose change). *)

val log_prob_pre : pre -> int -> tx:float -> ty:float -> tz:float -> read:bool -> float
(** [log_prob_pre p i ~tx ~ty ~tz ~read] is
    [log_prob m ~reader_loc ~reader_heading ~tag_loc:(tx,ty,tz) ~read]
    for the pose in slot [i], bit for bit.
    @raise Invalid_argument out of range. *)

val pre_accumulate_store : pre -> Rfid_prob.Particle_store.t -> read:bool -> int
(** Add the sensor term to every particle's log weight in one pass:
    for each particle, [log_prob_pre] at its reader-pointer slot
    against its own location. One cross-module call per (object,
    epoch) — the loop runs over the store's backing slabs with no
    boxing, where a call per particle would allocate ~30 words each.
    Bit-identical to the per-particle calls, {e including} for the
    particles it culls: a miss term at squared distance beyond the
    model's {!saturation_radius} is exactly [-0.0], so the kernel
    skips its transcendental evaluation outright (the accumulate
    would be a bitwise no-op) and reports the number of entries so
    skipped as its return value. Read terms are never culled (they
    saturate to the non-constant logit, not to [-0.0]).
    @raise Invalid_argument if a reader index exceeds the pose set. *)

val pre_accumulate_tag :
  pre ->
  tx:float ->
  ty:float ->
  tz:float ->
  read:bool ->
  miss_weight:float ->
  float array ->
  int
(** Add one tag's sensor term against {e every} pose to a per-pose
    accumulator: [acc.(r) <- acc.(r) +. l] where [l] is
    [log_prob_pre r] scaled by [miss_weight] when [not read] (pass
    [1.0] for unscaled terms). Returns the number of poses culled by
    exact saturation (see {!pre_accumulate_store}); the cull is
    additionally disabled unless [miss_weight] is positive or [+0.0],
    since only then is the scaled term still exactly [-0.0].
    @raise Invalid_argument if the accumulator is shorter than the
    pose set. *)

val pre_accumulate_joint_obj :
  pre ->
  Rfid_prob.Particle_store.t ->
  obj:int ->
  num_objects:int ->
  read:bool ->
  float array ->
  int
(** Joint-filter variant of {!pre_accumulate_tag}: pose [r]'s tag
    location is row [r]'s entry for [obj] in a row-major
    [poses * num_objects] slab, and the (unscaled) term accumulates
    into [acc.(r)]. Returns the saturation-culled pose count (see
    {!pre_accumulate_store}). @raise Invalid_argument on shape
    mismatch. *)

val pre_poses : pre -> floatarray * floatarray * floatarray * floatarray
(** The memo's backing pose slabs [(x, y, z, heading)], for batched
    loops owned by other modules (e.g. the reader-location likelihood
    over every pose, or the batched initialization sampler). Slots at
    indices [>= pre_size] are unspecified; {!pre_resize} invalidates
    the returned arrays. *)

val pre_note_hits : pre -> int -> unit
(** Add to the served-evaluation counter. The filters count hits on the
    coordinator after each parallel pass (never inside loop bodies), so
    the counter is deterministic. *)

val pre_hits : pre -> int
(** Total evaluations served via this memo, as counted by
    {!pre_note_hits}. *)

val detection_range : ?threshold:float -> t -> float
(** Head-on distance at which the read probability falls below
    [threshold] (default 0.02): the radius used for sensing-region
    bounding boxes and the initialization cone. Found by bisection on
    [0, 100] ft; returns 100 if the probability never falls below the
    threshold (pathological coefficients). *)

val detection_half_angle : ?threshold:float -> t -> d:float -> float
(** Unsigned angle at which the read probability at distance [d] falls
    below [threshold] (default 0.02); [pi] when it never does. *)

val sensing_region_box : ?threshold:float -> t -> reader_loc:Rfid_geom.Vec3.t -> Rfid_geom.Box2.t
(** Conservative bounding box of the sensing region around a reader
    location, heading-independent (the reader may face anywhere):
    a square of side [2 * detection_range]. *)

val initialization_cone :
  ?overestimate:float ->
  t ->
  reader_loc:Rfid_geom.Vec3.t ->
  reader_heading:float ->
  Rfid_geom.Cone.t
(** Cone for sensor-model-based particle initialization (§IV-A): range
    and half-angle are the detection range/half-angle scaled by
    [overestimate] (default 1.25, "chosen to be an overestimate of the
    true range"). *)

val pp : Format.formatter -> t -> unit
