(* Checkpoint/resume: a restored engine must reproduce the
   uninterrupted event stream bit-identically, for every filter variant
   and domain count, including runs with degraded (dead-reckoned)
   epochs on both sides of the cut. *)
open Rfid_model

let scenario =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects:5 () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
         ~config:(Rfid_sim.Trace_gen.default_config ())
         (Rfid_prob.Rng.create ~seed:29)
     in
     (wh, trace))

let config_for variant num_domains =
  Rfid_core.Config.create ~variant ~num_reader_particles:30 ~num_object_particles:40
    ~num_domains ()

let make_engine ~variant ~num_domains =
  let wh, trace = Lazy.force scenario in
  Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
    ~config:(config_for variant num_domains)
    ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:5 ~seed:23 ()

(* Degrade a few epochs straddling the cut, so dead-reckoning state is
   part of what the checkpoint must carry. *)
let step_one ~degraded engine (o : Types.observation) =
  if List.mem o.Types.o_epoch degraded then
    Rfid_core.Engine.step_degraded engine ~epoch:o.Types.o_epoch
  else Rfid_core.Engine.step engine o

let events_equal what (a : Rfid_core.Event.t list) (b : Rfid_core.Event.t list) =
  Alcotest.(check int) (what ^ ": event count") (List.length a) (List.length b);
  List.iteri
    (fun i (x : Rfid_core.Event.t) ->
      let y = List.nth b i in
      if x <> y then
        Alcotest.failf "%s: event %d differs:@ %a@ vs@ %a" what i Rfid_core.Event.pp x
          Rfid_core.Event.pp y)
    a

let resume_bit_identical ~variant ~num_domains () =
  let wh, trace = Lazy.force scenario in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let cut = n / 2 in
  let degraded = [ cut - 2; cut - 1; cut + 2 ] in
  let run_all engine stream =
    (* Bind the stepped events first: [@] evaluates right-to-left, and
       [flush] must not run before the steps. *)
    let stepped = List.concat_map (step_one ~degraded engine) stream in
    stepped @ Rfid_core.Engine.flush engine
  in
  (* Uninterrupted reference run. *)
  let reference = run_all (make_engine ~variant ~num_domains) stream in
  (* Interrupted run: first half, checkpoint to disk, restore, rest. *)
  let first, second =
    List.partition (fun (o : Types.observation) -> o.Types.o_epoch < cut) stream
  in
  let e1 = make_engine ~variant ~num_domains in
  let head = List.concat_map (step_one ~degraded e1) first in
  let path = Filename.temp_file "rfid_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rfid_robust.Checkpoint.save ~path (Rfid_core.Engine.snapshot e1);
      Alcotest.(check int) "snapshot epoch"
        (Rfid_core.Engine.epoch e1)
        (Rfid_core.Engine.snapshot_epoch (Rfid_robust.Checkpoint.load_exn ~path));
      (* The original engine keeps running: the snapshot must be a deep
         copy, unaffected by (and not affecting) e1's continuation. *)
      let tail_live = run_all e1 second in
      let e2 =
        Rfid_core.Engine.restore ~world:wh.Rfid_sim.Warehouse.world
          ~params:Params.default
          ~config:(config_for variant num_domains)
          (Rfid_robust.Checkpoint.load_exn ~path)
      in
      let tail_restored = run_all e2 second in
      events_equal "live continuation vs reference" reference (head @ tail_live);
      events_equal "restored continuation vs reference" reference (head @ tail_restored))

let test_resume_matrix () =
  List.iter
    (fun variant ->
      List.iter
        (fun num_domains -> resume_bit_identical ~variant ~num_domains ())
        [ 1; 2 ])
    [
      Rfid_core.Config.Unfactorized;
      Rfid_core.Config.Factorized;
      Rfid_core.Config.Factorized_indexed;
      Rfid_core.Config.Factorized_compressed;
    ]

let test_variant_mismatch_rejected () =
  let e = make_engine ~variant:Rfid_core.Config.Factorized_indexed ~num_domains:1 in
  let wh, _ = Lazy.force scenario in
  Util.check_raises_invalid "variant mismatch" (fun () ->
      ignore
        (Rfid_core.Engine.restore ~world:wh.Rfid_sim.Warehouse.world
           ~params:Params.default
           ~config:(config_for Rfid_core.Config.Unfactorized 1)
           (Rfid_core.Engine.snapshot e)))

let test_corrupt_checkpoint_rejected () =
  let e = make_engine ~variant:Rfid_core.Config.Factorized_indexed ~num_domains:1 in
  let path = Filename.temp_file "rfid_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rfid_robust.Checkpoint.save ~path (Rfid_core.Engine.snapshot e);
      (match Rfid_robust.Checkpoint.load ~path with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "pristine checkpoint rejected: %s" msg);
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let expect_error what contents' =
        let oc = open_out_bin path in
        output_string oc contents';
        close_out oc;
        match Rfid_robust.Checkpoint.load ~path with
        | Ok _ -> Alcotest.failf "%s: corrupted checkpoint accepted" what
        | Error msg ->
            Alcotest.(check bool) (what ^ ": message non-empty") true (msg <> "")
      in
      (* Flip one payload byte: the checksum must catch it. *)
      let flipped = Bytes.of_string contents in
      let pos = String.length contents - 10 in
      Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0xff));
      expect_error "bit flip" (Bytes.to_string flipped);
      (* Truncation. *)
      expect_error "truncation" (String.sub contents 0 (String.length contents - 20));
      (* Wrong version: rewrite the first header line. *)
      let nl = String.index contents '\n' in
      expect_error "wrong version"
        ("rfid_streams-checkpoint v999"
        ^ String.sub contents nl (String.length contents - nl));
      (* Not a checkpoint at all. *)
      expect_error "garbage" "not a checkpoint\nat all\n";
      (* Missing file. *)
      match Rfid_robust.Checkpoint.load ~path:(path ^ ".does-not-exist") with
      | Ok _ -> Alcotest.fail "missing file accepted"
      | Error _ -> ())

let suite =
  ( "checkpoint",
    [
      Alcotest.test_case "resume matrix (variants x domains)" `Slow test_resume_matrix;
      Alcotest.test_case "variant mismatch rejected" `Quick test_variant_mismatch_rejected;
      Alcotest.test_case "corrupt checkpoint rejected" `Quick
        test_corrupt_checkpoint_rejected;
    ] )
