let log_2pi = log (2. *. Float.pi)

module Univariate = struct
  type t = { mu : float; sigma : float }

  let create ~mu ~sigma =
    if sigma < 0. then invalid_arg "Gaussian.Univariate.create: negative sigma";
    { mu; sigma }

  let log_pdf { mu; sigma } x =
    if sigma = 0. then if x = mu then infinity else neg_infinity
    else begin
      let z = (x -. mu) /. sigma in
      -0.5 *. ((z *. z) +. log_2pi) -. log sigma
    end

  let pdf t x = exp (log_pdf t x)

  (* Abramowitz & Stegun 7.1.26 rational approximation of erf, accurate
     to ~1.5e-7 — ample for the cdf's only users (tests, summaries). *)
  let erf x =
    let sign = if x < 0. then -1. else 1. in
    let x = Float.abs x in
    let t = 1. /. (1. +. (0.3275911 *. x)) in
    let a1 = 0.254829592
    and a2 = -0.284496736
    and a3 = 1.421413741
    and a4 = -1.453152027
    and a5 = 1.061405429 in
    let poly = t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5)))))))) in
    sign *. (1. -. (poly *. exp (-.x *. x)))

  let cdf { mu; sigma } x =
    if sigma = 0. then if x < mu then 0. else 1.
    else 0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

  let sample { mu; sigma } rng = Rng.gaussian rng ~mu ~sigma ()

  let fit ?w data =
    let n = Array.length data in
    if n = 0 then invalid_arg "Gaussian.Univariate.fit: empty data";
    let w = match w with Some w -> w | None -> Array.make n (1. /. float_of_int n) in
    let mu = Stats.weighted_mean ~w data in
    let var = Stats.weighted_variance ~w data in
    { mu; sigma = sqrt (Float.max 0. var) }
end

type t = {
  mean : float array;
  cov : Linalg.mat;
  chol : Linalg.mat;
  log_norm : float; (* -(d/2) log 2pi - (1/2) log |cov| *)
}

let create ~mean ~cov =
  let d = Array.length mean in
  if Array.length cov <> d then invalid_arg "Gaussian.create: dimension mismatch";
  let chol = Linalg.cholesky cov in
  let log_det = ref 0. in
  for i = 0 to d - 1 do
    log_det := !log_det +. (2. *. log chol.(i).(i))
  done;
  let log_norm = (-0.5 *. float_of_int d *. log_2pi) -. (0.5 *. !log_det) in
  { mean = Array.copy mean; cov = Linalg.copy cov; chol; log_norm }

let dim t = Array.length t.mean
let mean t = Array.copy t.mean
let cov t = Linalg.copy t.cov

let mahalanobis_sq t x =
  let d = dim t in
  if Array.length x <> d then invalid_arg "Gaussian.mahalanobis_sq: dimension mismatch";
  let diff = Array.init d (fun i -> x.(i) -. t.mean.(i)) in
  (* Solve chol * y = diff; then mahalanobis^2 = |y|^2. *)
  let y = Array.make d 0. in
  for i = 0 to d - 1 do
    let s = ref diff.(i) in
    for k = 0 to i - 1 do
      s := !s -. (t.chol.(i).(k) *. y.(k))
    done;
    y.(i) <- !s /. t.chol.(i).(i)
  done;
  Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y

let log_pdf t x = t.log_norm -. (0.5 *. mahalanobis_sq t x)
let pdf t x = exp (log_pdf t x)

let sample t rng =
  let d = dim t in
  let z = Array.init d (fun _ -> Rng.gaussian rng ()) in
  Array.init d (fun i ->
      let s = ref t.mean.(i) in
      for k = 0 to i do
        s := !s +. (t.chol.(i).(k) *. z.(k))
      done;
      !s)

let fit ?w points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Gaussian.fit: empty data";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Gaussian.fit: ragged rows")
    points;
  let w = match w with Some w -> w | None -> Array.make n (1. /. float_of_int n) in
  if Array.length w <> n then invalid_arg "Gaussian.fit: weight length mismatch";
  let mean = Array.make d 0. in
  Array.iteri
    (fun i p ->
      for j = 0 to d - 1 do
        mean.(j) <- mean.(j) +. (w.(i) *. p.(j))
      done)
    points;
  let cov = Array.make_matrix d d 0. in
  Array.iteri
    (fun i p ->
      for j = 0 to d - 1 do
        for k = 0 to d - 1 do
          cov.(j).(k) <- cov.(j).(k) +. (w.(i) *. (p.(j) -. mean.(j)) *. (p.(k) -. mean.(k)))
        done
      done)
    points;
  create ~mean ~cov

let avg_nll ?w t points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Gaussian.avg_nll: empty data";
  let w = match w with Some w -> w | None -> Array.make n (1. /. float_of_int n) in
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc -. (w.(i) *. log_pdf t p)) points;
  !acc

let confidence_ellipse_xy t ~level =
  if dim t < 2 then invalid_arg "Gaussian.confidence_ellipse_xy: need >= 2 dims";
  if not (level > 0. && level < 1.) then
    invalid_arg "Gaussian.confidence_ellipse_xy: level must be in (0, 1)";
  let a = t.cov.(0).(0) and b = t.cov.(0).(1) and c = t.cov.(1).(1) in
  (* Eigenvalues of [[a b] [b c]] in closed form. *)
  let tr = a +. c in
  let det = (a *. c) -. (b *. b) in
  let disc = sqrt (Float.max 0. ((tr *. tr /. 4.) -. det)) in
  let l1 = (tr /. 2.) +. disc and l2 = (tr /. 2.) -. disc in
  let angle = if b = 0. then (if a >= c then 0. else Float.pi /. 2.) else atan2 (l1 -. a) b in
  (* Chi-square quantile, 2 dof: P(X <= r^2) = 1 - exp(-r^2 / 2). *)
  let r2 = -2. *. log (1. -. level) in
  (sqrt (Float.max 0. (l1 *. r2)), sqrt (Float.max 0. (l2 *. r2)), angle)
