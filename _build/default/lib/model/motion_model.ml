open Rfid_geom

type t = {
  velocity : Vec3.t;
  sigma : Vec3.t;
  heading_drift : float;
  heading_sigma : float;
}

let check_sigma (s : Vec3.t) name =
  if s.Vec3.x < 0. || s.Vec3.y < 0. || s.Vec3.z < 0. then
    invalid_arg (name ^ ": negative sigma")

let create ?(velocity = Vec3.make 0. 0.1 0.) ?(sigma = Vec3.make 0.01 0.01 0.01)
    ?(heading_drift = 0.) ?(heading_sigma = 0.01) () =
  check_sigma sigma "Motion_model.create";
  if heading_sigma < 0. then invalid_arg "Motion_model.create: negative heading sigma";
  { velocity; sigma; heading_drift; heading_sigma }

let default = create ()

let sample_next t rng (prev : Reader_state.t) =
  let open Rfid_prob in
  let noise =
    Vec3.make
      (Rng.gaussian rng ~sigma:t.sigma.Vec3.x ())
      (Rng.gaussian rng ~sigma:t.sigma.Vec3.y ())
      (Rng.gaussian rng ~sigma:t.sigma.Vec3.z ())
  in
  let loc = Vec3.add prev.Reader_state.loc (Vec3.add t.velocity noise) in
  let heading =
    prev.Reader_state.heading +. t.heading_drift
    +. Rng.gaussian rng ~sigma:t.heading_sigma ()
  in
  Reader_state.make ~loc ~heading

(* Zero-sigma axes are deterministic in the model; log_pdf treats them
   as unconstrained rather than returning -infinity for numerically
   non-identical values. *)
let gauss_log_pdf ~mu ~sigma x =
  if sigma = 0. then 0.
  else
    Rfid_prob.Gaussian.Univariate.log_pdf
      (Rfid_prob.Gaussian.Univariate.create ~mu ~sigma)
      x

let log_pdf t ~(prev : Reader_state.t) ~(next : Reader_state.t) =
  let expected = Vec3.add prev.Reader_state.loc t.velocity in
  let d = Vec3.sub next.Reader_state.loc expected in
  gauss_log_pdf ~mu:0. ~sigma:t.sigma.Vec3.x d.Vec3.x
  +. gauss_log_pdf ~mu:0. ~sigma:t.sigma.Vec3.y d.Vec3.y
  +. gauss_log_pdf ~mu:0. ~sigma:t.sigma.Vec3.z d.Vec3.z
  +. gauss_log_pdf ~mu:0. ~sigma:t.heading_sigma
       (next.Reader_state.heading -. prev.Reader_state.heading -. t.heading_drift)
