(** Internals shared by the unfactorized and factorized filters:
    cached sensing-region geometry, sensor-model-based particle
    initialization (§IV-A), and the reader proposal distribution. *)

module Sensor_cache : sig
  type t = { range : float; half_angle : float }
  (** Detection range (head-on) and half-angle (at mid-range) of a
      sensor model at a given threshold — computed once, since the
      bisection behind them is too slow for per-particle use. *)

  val create : threshold:float -> max_range:float -> Rfid_model.Sensor_model.t -> t
end

val init_cone :
  Sensor_cache.t ->
  overestimate:float ->
  reader_loc:Rfid_geom.Vec3.t ->
  heading:float ->
  Rfid_geom.Cone.t
(** The initialization cone: sensing geometry widened by
    [overestimate]. *)

val sample_initial_location :
  Sensor_cache.t ->
  overestimate:float ->
  world:Rfid_model.World.t ->
  reader_loc:Rfid_geom.Vec3.t ->
  heading:float ->
  Rfid_prob.Rng.t ->
  Rfid_geom.Vec3.t
(** Draw an object-location hypothesis for a just-detected tag: uniform
    over the initialization cone, clamped onto the shelf area. *)

val fill_fresh_particles :
  Sensor_cache.t ->
  overestimate:float ->
  world:Rfid_model.World.t ->
  pre:Rfid_model.Sensor_model.pre ->
  rw:float array ->
  rng:Rfid_prob.Rng.t ->
  store:Rfid_prob.Particle_store.t ->
  step:int ->
  unit
(** Batched {!sample_initial_location} straight into particle slabs:
    for every [step]-th index [i] of [store] (from 0), draw a reader
    pointer from the categorical weights [rw], then a location uniform
    over that reader's initialization cone — apex/heading taken from
    the sensor memo's pose slabs — clamped onto the shelves, and write
    location/pointer/zero log-weight to slot [i]. Identical draws in
    identical order to the per-particle scalar path, and identical
    stored floats, with no allocation per particle. [step] 1 fills the
    whole store (creation, far re-detection); 2 redraws the even half
    (near re-detection, §IV-A). The memo must hold the current reader
    poses. @raise Invalid_argument if [step <= 0]. *)

val propose_heading :
  Config.heading_model ->
  motion:Rfid_model.Motion_model.t ->
  epoch:Rfid_model.Types.epoch ->
  current:float ->
  Rfid_prob.Rng.t ->
  float
(** Next-heading proposal per the configured heading model. *)

val proposal_delta :
  Config.proposal ->
  motion:Rfid_model.Motion_model.t ->
  last_reported:Rfid_geom.Vec3.t option ->
  reported:Rfid_geom.Vec3.t ->
  Rfid_geom.Vec3.t
(** Mean displacement of the reader-location proposal for this epoch:
    the model's average velocity, or the reported displacement when
    configured (and available). *)

val proposal_sigma :
  Config.proposal ->
  motion:Rfid_model.Motion_model.t ->
  sensing:Rfid_model.Location_sensing.t ->
  Rfid_geom.Vec3.t
(** Per-axis noise of the reader proposal. With [From_velocity] this is
    the motion model's sigma. With [From_reported_displacement], the
    displacement is a {e control input} measured through the location
    sensor, so its noise is the motion noise plus the differenced report
    noise: sqrt(sigma_m^2 + 2 sigma_s^2) per axis. Using only sigma_m
    there would make the filter chase the report noise instead of
    smoothing it. *)

val jitter : Rfid_geom.Vec3.t -> sigma:Rfid_geom.Vec3.t -> Rfid_prob.Rng.t -> Rfid_geom.Vec3.t
(** Add independent per-axis Gaussian noise to a point. *)

val resample :
  Config.resample_scheme -> Rfid_prob.Rng.t -> float array -> n:int -> int array
(** Dispatch to the configured {!Rfid_prob.Resample} scheme. *)

val resample_into :
  Config.resample_scheme ->
  Rfid_prob.Rng.t ->
  float array ->
  n:int ->
  out:int array ->
  unit
(** {!resample} into a scratch buffer of length at least [n]: identical
    draws and indices, no allocation. *)
