(** The basic (unfactorized) particle filter of §IV-A.

    Every particle is a joint hypothesis: one reader state plus a
    location for {e every} object. This is the textbook sequential
    importance resampling filter applied to the model of §III — correct,
    and the paper's scalability baseline: the particle count needed for
    a fixed accuracy grows quickly with the number of objects because a
    joint particle is only as good as its worst per-object sample
    (Fig. 3(a)), which is exactly what Fig. 5(i)/(j) demonstrate.

    The object universe must be declared up front ([num_objects]); the
    factorized filters discover objects from the stream instead. The
    joint particle count is [config.num_reader_particles]
    ([num_object_particles] is unused here). *)

type t

val create :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  init_reader:Rfid_model.Reader_state.t ->
  num_objects:int ->
  rng:Rfid_prob.Rng.t ->
  t
(** @raise Invalid_argument if [num_objects < 0]. *)

val step : t -> Rfid_model.Types.observation -> unit
(** Advance one epoch: propose from the motion and object models, weight
    by the location report, shelf-tag and object-tag evidence, resample
    when the effective sample size degenerates.
    @raise Invalid_argument if observations arrive out of epoch order. *)

val estimate : t -> int -> (Rfid_geom.Vec3.t * Rfid_prob.Linalg.mat) option
(** Posterior mean and covariance of an object's location; [None] for an
    object id outside the declared universe or never read. *)

val reader_estimate : t -> Rfid_geom.Vec3.t
(** Posterior mean of the true reader location. *)

val newly_seen : t -> int list
(** Objects that (re-)entered the reader's scope during the last
    {!step}. *)

val known_objects : t -> int list
(** Objects read at least once so far, ascending. *)

val iter_known : t -> (int -> unit) -> unit
(** Visit every known object id in ascending order (a scan of the
    declared universe — O(num_objects), list-free). *)

val num_known : t -> int
(** Number of known objects, O(1). *)

(** {1 Change feed}

    Same contract as [Factored_filter]'s: which objects' posteriors may
    have changed since the last {!clear_changes}. The joint weights
    move on every epoch, so every estimate may change on every epoch —
    the feed is the {!changes_dirty_all} flag alone and {!iter_dirty}
    never yields ids. *)

val changes_dirty_all : t -> bool
(** True after any {!step}/{!dead_reckon}/{!restore} since the last
    {!clear_changes}. *)

val iter_dirty : t -> (int -> unit) -> unit
(** Always empty for the joint filter — all changes surface through
    {!changes_dirty_all}. *)

val clear_changes : t -> unit
(** Consume the feed. *)

val epoch : t -> Rfid_model.Types.epoch
(** Epoch of the last processed observation; -1 initially. *)

val dead_reckon :
  ?shelf_tags:int list -> t -> epoch:Rfid_model.Types.epoch -> unit
(** Advance one epoch {e without} a usable location fix (missing or
    rejected by the ingest guard): reader hypotheses move by the
    motion model with proposal noise inflated by
    [config.degraded_noise_scale]. [shelf_tags] (default [[]], expected
    deduplicated and ascending) lists shelf tags read during the
    outage; their exactly-known positions re-weight the joint
    hypotheses, localizing the dead-reckoned reader. With none,
    weights are unchanged. After
    [config.degraded_widen_after] consecutive dead-reckoned epochs,
    object hypotheses are additionally jittered by
    [config.degraded_widen_sigma] per epoch (clamped to shelves), so
    posterior spread honestly reflects the outage.
    @raise Invalid_argument if [epoch] is not beyond the current one. *)

val degraded_epochs : t -> int
(** Total dead-reckoned epochs so far. *)

val consecutive_degraded : t -> int
(** Length of the current dead-reckoning run; 0 after any normal
    {!step}. *)

val sensor_memo_hits : t -> int
(** Total sensor-likelihood evaluations served through the per-epoch
    reader-pose memo ({!Rfid_model.Sensor_model.precompute}). *)

val sensor_memo_size : t -> int
(** Pose slots held by the sensor memo (= the joint particle count). *)

(** {1 Checkpointing} *)

(** Complete dynamic filter state as plain data. The representation is
    public so [Rfid_robust.Codec] can serialize it field by field into
    the portable checkpoint format; treat it as read-only elsewhere.
    Field order is part of the legacy (v1, Marshal) checkpoint format —
    do not add, remove or reorder fields without bumping it. *)
type snapshot = {
  s_rng : int64;  (** SplitMix64 generator state *)
  s_num_objects : int;
  s_particles :
    (Rfid_model.Reader_state.t * Rfid_geom.Vec3.t array * float) array;
      (** per joint particle: reader pose, per-object locations, log weight *)
  s_last_reported : Rfid_geom.Vec3.t option;
  s_epoch : int;
  s_last_read : int array;  (** -1 = never read *)
  s_last_read_reader : Rfid_geom.Vec3.t array;
  s_newly_seen : int list;
  s_consecutive_degraded : int;
  s_degraded_total : int;
}

val snapshot : t -> snapshot
(** Deep copy of the filter's dynamic state; the filter can keep
    running afterwards. *)

val snapshot_epoch : snapshot -> int
(** Epoch at which the snapshot was taken (-1 for a fresh filter). *)

val restore :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  snapshot ->
  t
(** Rebuild a filter from a snapshot plus the same static inputs it was
    created with. The restored filter's future output is bit-identical
    to the original's. *)
