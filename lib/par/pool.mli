(** A fixed pool of worker domains for data-parallel loops.

    Built on stdlib [Domain]/[Mutex]/[Condition] only — no external
    scheduler. The pool owns [num_domains - 1] spawned worker domains;
    the calling (coordinating) domain participates in every loop, so a
    pool of size [n] applies [n] domains of compute. With
    [num_domains <= 1] nothing is spawned and every operation degrades
    to plain sequential execution — the zero-dependency fallback path.

    Work distribution is dynamic: an atomic chunk counter hands
    contiguous index ranges to whichever domain is free. Parallel loops
    are therefore only deterministic when the loop body writes to
    disjoint state per index and draws randomness from a per-index
    source (see {!Rfid_prob.Rng.for_key}); under that contract results
    are bit-identical for every pool size and schedule.

    Pools are scoped: either [shutdown] explicitly, or rely on the
    [at_exit] hook every pool registers. A pool whose workers have been
    shut down falls back to sequential execution instead of raising, so
    a stale handle can never deadlock. *)

type t

val create : num_domains:int -> t
(** [create ~num_domains] spawns [max 0 (num_domains - 1)] workers.
    @raise Invalid_argument if [num_domains < 1]. *)

val num_domains : t -> int
(** Domains applied to each loop (workers + the coordinator), [>= 1]. *)

val sequential : t
(** The trivial pool: [num_domains = 1], no spawned workers, immutable
    and safe to share. *)

val get : num_domains:int -> t
(** Process-wide cached pools, keyed by size: repeated [get] with the
    same size returns the same pool instead of re-spawning domains.
    Useful when many short-lived filters share a configuration. *)

val parallel_for_chunked : t -> ?chunk:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for_chunked pool ~n body] calls [body lo hi] over
    half-open chunks [\[lo, hi)] covering [\[0, n)], concurrently across
    the pool's domains. [chunk] sets the chunk length (default:
    [max (min_chunk pool) (n / (4 * num_domains))] — the calibrated
    floor keeps chunk-claim overhead negligible for small [n]). Blocks
    until every chunk has run. If any [body] raises, one of the
    exceptions is re-raised on the coordinator after all chunks finish
    or are abandoned. *)

val min_chunk : t -> int
(** The pool's calibrated default-chunk floor ([>= 1], [<= 4096]).
    Measured once at pool creation by a microbenchmark comparing the
    per-chunk dispatch cost (atomic claim + cache traffic) against the
    per-item cost of a cheap float loop, and sized so dispatch stays
    under ~2% of even that cheapest body. Published as the
    ["pool.min_chunk"] gauge. Only affects scheduling granularity —
    loop results are bit-identical for every chunking. The sequential
    pool reports 1. *)

val parallel_for_chunked_did : t -> ?chunk:int -> n:int -> (int -> int -> int -> unit) -> unit
(** [parallel_for_chunked_did pool ~n body] is {!parallel_for_chunked}
    where [body did lo hi] also receives the stable id of the domain
    running the chunk: 0 for the coordinator, [1 .. num_domains - 1]
    for workers. Pass [did] to {!get_scratch} for a per-domain arena.
    Which chunks land on which id is schedule-dependent; only state
    private to [did] (the scratch arena) may key off it. *)

val get_scratch : t -> int -> Scratch.t
(** [get_scratch pool did] is the scratch arena owned by domain [did]
    of this pool. Arenas are created with the pool and live as long as
    it does, so buffers cached in them are reused across epochs. Each
    arena's {!Scratch.shard} equals its [did], so bodies can record
    into per-domain metric shards without extra plumbing.
    @raise Invalid_argument if [did] is outside the pool's domains. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a] with [f] applied across
    domains. [f] must be safe to call concurrently on distinct
    elements. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; subsequent loops on the pool
    run sequentially. *)

val shutdown_cached : unit -> unit
(** Shut down and forget every pool handed out by {!get}. Live domains
    cost every other domain stop-the-world synchronization even when
    idle, so batch drivers (test suites, benches) should tear pools
    down between multi-domain and single-domain phases. A later {!get}
    spawns a fresh pool. *)
