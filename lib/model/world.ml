open Rfid_geom

type shelf = { shelf_id : int; surface : Box2.t; height : float; tag : Vec3.t option }
type t = { shelves : shelf array; areas : float array; total_area : float; bbox : Box2.t }

let create shelf_list =
  if shelf_list = [] then invalid_arg "World.create: no shelves";
  let ids = List.map (fun s -> s.shelf_id) shelf_list in
  let sorted = List.sort_uniq Int.compare ids in
  if List.length sorted <> List.length ids then
    invalid_arg "World.create: duplicate shelf ids";
  let shelves = Array.of_list shelf_list in
  let areas = Array.map (fun s -> Box2.area s.surface) shelves in
  let total_area = Array.fold_left ( +. ) 0. areas in
  let bbox =
    Array.fold_left (fun acc s -> Box2.union acc s.surface) shelves.(0).surface shelves
  in
  { shelves; areas; total_area; bbox }

let shelves t = t.shelves
let num_shelves t = Array.length t.shelves

let shelf_tag_location t id =
  match Array.find_opt (fun s -> s.shelf_id = id) t.shelves with
  | Some { tag = Some loc; _ } -> loc
  | Some { tag = None; _ } | None -> raise Not_found

let shelf_tags t =
  Array.to_list t.shelves
  |> List.filter_map (fun s ->
         match s.tag with
         | Some loc -> Some (Types.Shelf_tag s.shelf_id, loc)
         | None -> None)

let with_shelf_tags t ~keep =
  let keep = List.sort_uniq Int.compare keep in
  let shelves =
    Array.to_list t.shelves
    |> List.map (fun s ->
           if List.mem s.shelf_id keep then s else { s with tag = None })
  in
  create shelves

let sample_on_shelves t rng =
  let idx =
    if Array.length t.shelves = 1 then 0
    else if t.total_area > 0. then Rfid_prob.Rng.categorical rng t.areas
    else Rfid_prob.Rng.int rng (Array.length t.shelves)
  in
  let s = t.shelves.(idx) in
  let b = s.surface in
  let x = Rfid_prob.Rng.uniform rng ~lo:b.Box2.min_x ~hi:b.Box2.max_x in
  let y = Rfid_prob.Rng.uniform rng ~lo:b.Box2.min_y ~hi:b.Box2.max_y in
  Vec3.make x y s.height

let contains t p = Array.exists (fun s -> Box2.contains_point s.surface p) t.shelves

let clamp_to_box (b : Box2.t) (p : Vec3.t) =
  Vec3.make
    (Float.max b.Box2.min_x (Float.min b.Box2.max_x p.Vec3.x))
    (Float.max b.Box2.min_y (Float.min b.Box2.max_y p.Vec3.y))
    p.Vec3.z

let clamp_to_shelves t p =
  if contains t p then p
  else begin
    (* Scalar scan: same per-shelf clamp and distance as materializing a
       candidate [Vec3.t] per shelf (first strict improvement wins, as
       before), but tracking only the best index — the former
       per-shelf allocation made this call O(num_shelves) words, which
       dominated the re-initialization path on large worlds. *)
    let best = ref (-1) and best_d = ref infinity in
    for i = 0 to Array.length t.shelves - 1 do
      let b = t.shelves.(i).surface in
      let qx = Float.max b.Box2.min_x (Float.min b.Box2.max_x p.Vec3.x) in
      let qy = Float.max b.Box2.min_y (Float.min b.Box2.max_y p.Vec3.y) in
      let dx = p.Vec3.x -. qx and dy = p.Vec3.y -. qy in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      if !best < 0 || d < !best_d then begin
        best := i;
        best_d := d
      end
    done;
    if !best < 0 then p else clamp_to_box t.shelves.(!best).surface p
  end

let bounding_box t = t.bbox
let total_area t = t.total_area
