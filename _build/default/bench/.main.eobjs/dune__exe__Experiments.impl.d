bench/experiments.ml: Array Float Format List Location_sensing Params Printf Rfid_core Rfid_eval Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Scenarios Sensor_model Tables Trace Vec3 World
