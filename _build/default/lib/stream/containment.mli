(** Inter-object containment inference — the extension the paper names
    as future work ("we will also enhance our techniques to address
    inter-object containment relationships", §VII).

    Objects packed in the same case or pallet exhibit two signatures in
    the cleaned location-event stream: they are persistently co-located,
    and when they move, they move {e together}. This module accumulates
    both kinds of pairwise evidence across scan rounds and reports
    containment groups as the connected components of the
    sufficiently-supported pairs.

    Evidence rules, per pair of objects seen in the same scan round:
    - {b co-location}: their estimated locations are within
      [co_distance] — weight 1;
    - {b co-movement}: both moved more than [move_threshold] since the
      previous round {e and} their displacement vectors agree within
      [co_distance] — weight [move_weight] (joint movement is far
      stronger evidence than sitting on the same shelf).

    A pair is linked once its accumulated weight reaches [min_support];
    groups are the connected components of linked pairs. *)

type config = {
  co_distance : float;  (** co-location / co-movement tolerance, ft *)
  move_threshold : float;  (** displacement that counts as movement, ft *)
  move_weight : float;  (** evidence weight of one joint movement *)
  min_support : float;  (** accumulated weight at which a pair is linked *)
}

val default_config : config
(** co_distance 1.0 ft, move_threshold 2.0 ft, move_weight 3.0,
    min_support 4.0 — one joint movement plus one co-location, or four
    co-located rounds. *)

type t

val create : ?config:config -> num_objects:int -> unit -> t
(** @raise Invalid_argument if [num_objects < 0] or the config is
    non-positive. *)

val observe_round : t -> (int * Rfid_geom.Vec3.t) list -> unit
(** Feed one scan round's location snapshot (object id, estimated
    location). Objects absent from a round contribute no evidence for
    it. Ids outside [0, num_objects) are rejected.
    @raise Invalid_argument on an out-of-range id. *)

val of_events :
  t -> rounds:Rfid_core.Event.t list list -> unit
(** Convenience: feed several rounds of cleaned events (each inner list
    is one scan round; the last event per object in a round wins). *)

val support : t -> int -> int -> float
(** Accumulated evidence weight for a pair. *)

val groups : t -> int list list
(** Containment groups (≥ 2 members), sorted. *)

val pp_groups : Format.formatter -> int list list -> unit
