bench/tables.ml: Array Bytes Float Int List Printf String
