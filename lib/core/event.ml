type t = {
  ev_epoch : Rfid_model.Types.epoch;
  ev_obj : int;
  ev_loc : Rfid_geom.Vec3.t;
  ev_cov : Rfid_prob.Linalg.mat option;
  ev_degraded : bool;
}

let make ~epoch ~obj ~loc ?cov ?(degraded = false) () =
  { ev_epoch = epoch; ev_obj = obj; ev_loc = loc; ev_cov = cov; ev_degraded = degraded }

let std_dev_xy t =
  match t.ev_cov with
  | None -> None
  | Some c -> Some (sqrt (Float.max 0. ((c.(0).(0) +. c.(1).(1)) /. 2.)))

let confidence_ellipse t ~level =
  match t.ev_cov with
  | None -> None
  | Some cov ->
      let loc = Rfid_geom.Vec3.to_array t.ev_loc in
      let g = Rfid_prob.Gaussian.create ~mean:loc ~cov in
      Some (Rfid_prob.Gaussian.confidence_ellipse_xy g ~level)

let pp ppf t =
  Format.fprintf ppf "@[t=%d obj=%d loc=%a%t%t@]" t.ev_epoch t.ev_obj Rfid_geom.Vec3.pp
    t.ev_loc
    (fun ppf ->
      match std_dev_xy t with
      | Some s -> Format.fprintf ppf " (sd_xy=%.3f)" s
      | None -> ())
    (fun ppf -> if t.ev_degraded then Format.fprintf ppf " [degraded]")
