lib/sim/truth_sensor.ml: Float Rfid_model Rfid_prob
