open Rfid_geom

type update = {
  u_epoch : Rfid_model.Types.epoch;
  u_obj : int;
  u_loc : Vec3.t;
  u_prev : Vec3.t option;
}

type t = { min_change : float; latest : (int, Vec3.t) Hashtbl.t }

let create ?(min_change = 1e-6) () =
  if min_change < 0. then invalid_arg "Location_update.create: negative min_change";
  { min_change; latest = Hashtbl.create 64 }

let push t (ev : Rfid_core.Event.t) =
  let obj = ev.Rfid_core.Event.ev_obj in
  let loc = ev.Rfid_core.Event.ev_loc in
  let prev = Hashtbl.find_opt t.latest obj in
  match prev with
  | Some p when Vec3.dist_xy p loc <= t.min_change -> None
  | _ ->
      Hashtbl.replace t.latest obj loc;
      Some { u_epoch = ev.Rfid_core.Event.ev_epoch; u_obj = obj; u_loc = loc; u_prev = prev }

let run t events = List.filter_map (push t) events

let current t obj = Hashtbl.find_opt t.latest obj

let pp_update ppf u =
  Format.fprintf ppf "t=%d obj=%d -> %a%t" u.u_epoch u.u_obj Vec3.pp u.u_loc (fun ppf ->
      match u.u_prev with
      | Some p -> Format.fprintf ppf " (was %a)" Vec3.pp p
      | None -> ())
