(** OpenMetrics text rendering of a {!Metrics} registry.

    One {!render} call turns the registry's current merged read-out
    into the OpenMetrics text exposition format — the wire syntax
    statsd-style sinks and Prometheus-compatible scrapers both accept —
    so the serving layer can push live telemetry without taking on a
    metrics client dependency.

    Mapping choices (documented in RUNBOOK.md):
    - counters render as [# TYPE <name> counter] + [<name>_total <v>];
    - gauges render as [# TYPE <name> gauge] + [<name> <v>];
    - histograms (spans included) render as summaries: quantile samples
      at 0.5/0.95/0.99 plus [_sum] and [_count]. Empty histograms emit
      only their [_count 0] — a quantile of an empty histogram is NaN,
      which the format has no use for.

    Metric names are sanitized to the exposition charset
    ([[a-zA-Z0-9_:]]; every other byte becomes [_], a leading digit
    gains a [_] prefix). Sample values print as compact [%.9g] decimals
    — telemetry precision, not the bit-exact round-tripping the query
    protocol needs. Output ends with [# EOF]. Rendering is read-only
    and deterministic for a given registry state. *)

val sanitize_name : string -> string
(** The exposition-charset mapping above. *)

val render : Metrics.t -> string
(** The whole registry as one exposition-format document. *)
