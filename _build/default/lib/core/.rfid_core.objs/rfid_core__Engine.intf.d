lib/core/engine.mli: Config Event Rfid_geom Rfid_model Rfid_prob
