module Vec3 = Rfid_geom.Vec3
module Box2 = Rfid_geom.Box2
module Rtree = Rfid_geom.Rtree
module Dyn_index = Rfid_geom.Dyn_index
module Engine = Rfid_core.Engine
module Event = Rfid_core.Event
module G = Rfid_prob.Gaussian.Univariate
module Obs = Rfid_obs.Metrics

let sp_maintain = Obs.span Obs.global "stage.query_maintain"
let c_fit_cache_hits = Obs.counter Obs.global "query.fit_cache_hits"
let c_index_updates = Obs.counter Obs.global "query.index_updates"
let c_full_rebuilds = Obs.counter Obs.global "query.full_rebuilds"

let sigma_reach = 3.5
let min_mass_floor = 0.001

(* One cached moment-matched Gaussian fit, shared by RANGE (per-axis
   mass), AT (mean + sd_xy) and NEAR (mean): recomputed only when the
   engine's change feed flags the object. [f_stamp] is the global
   refit stamp at the last recomputation — AT compares it across a
   [maintain] to count cache hits. [f_handle] is the object's entry in
   the dynamic spatial index. *)
type fit = {
  f_obj : int;
  mutable f_mu_x : float;
  mutable f_sd_x : float;
  mutable f_mu_y : float;
  mutable f_sd_y : float;
  mutable f_loc : Vec3.t;
  mutable f_sd_xy : float;
  mutable f_handle : int;
  mutable f_stamp : int;
  mutable f_xyz : string;
      (* rendered "x y z" of [f_loc], or "" when not yet rendered since
         the last refit — shortest-round-trip float formatting is the
         per-hit cost of a big RANGE reply, so it is paid once per fit,
         not once per query. *)
}

let dummy_fit =
  {
    f_obj = -1;
    f_mu_x = 0.;
    f_sd_x = 0.;
    f_mu_y = 0.;
    f_sd_y = 0.;
    f_loc = Vec3.zero;
    f_sd_xy = 0.;
    f_handle = -1;
    f_stamp = -1;
    f_xyz = "";
  }

type answer = { a_obj : int; a_mass : float; a_loc : Vec3.t; a_xyz : string }

type near_answer = {
  n_obj : int;
  n_dist : float;
  n_loc : Vec3.t;
  n_xyz : string;
}

type t = {
  index : fit Dyn_index.t;
  hits : fit Rtree.Hits.t;
  fits : (int, fit) Hashtbl.t;
  mutable full_invalid : bool;
  mutable stamp : int;  (* monotone; bumped per refit *)
  (* Event ring: [ring] is a circular buffer of the last [keep] events;
     [head] is the slot the next event lands in. *)
  ring : Event.t option array;
  keep : int;
  mutable head : int;
  mutable seen : int;
}

let create ?(events_keep = 4096) () =
  if events_keep < 1 then invalid_arg "Query.create: events_keep must be >= 1";
  {
    index = Dyn_index.create ~dummy:dummy_fit ();
    hits = Rtree.Hits.create ~dummy:dummy_fit;
    fits = Hashtbl.create 256;
    full_invalid = true;
    stamp = 0;
    ring = Array.make events_keep None;
    keep = events_keep;
    head = 0;
    seen = 0;
  }

let invalidate t = t.full_invalid <- true

(* A posterior with a degenerate axis (all particles agreed exactly)
   still occupies a point; give its box a hair of width so the closed
   intersection test finds it, and treat its axis mass as a step
   function in [axis_mass]. *)
let box_of ~mu_x ~sd_x ~mu_y ~sd_y =
  let rx = Float.max (sigma_reach *. sd_x) 1e-9 in
  let ry = Float.max (sigma_reach *. sd_y) 1e-9 in
  Box2.make ~min_x:(mu_x -. rx) ~min_y:(mu_y -. ry) ~max_x:(mu_x +. rx)
    ~max_y:(mu_y +. ry)

(* Recompute one object's cached fit from a fresh engine estimate and
   move its index entry — the only place fits are written. *)
let refit t obj (mean : Vec3.t) (cov : Rfid_prob.Linalg.mat) =
  let sd_x = sqrt (Float.max 0. cov.(0).(0)) in
  let sd_y = sqrt (Float.max 0. cov.(1).(1)) in
  let sd_xy = sqrt (Float.max 0. ((cov.(0).(0) +. cov.(1).(1)) /. 2.)) in
  let box = box_of ~mu_x:mean.Vec3.x ~sd_x ~mu_y:mean.Vec3.y ~sd_y in
  t.stamp <- t.stamp + 1;
  Obs.incr c_index_updates 1;
  match Hashtbl.find_opt t.fits obj with
  | Some f ->
      f.f_mu_x <- mean.Vec3.x;
      f.f_sd_x <- sd_x;
      f.f_mu_y <- mean.Vec3.y;
      f.f_sd_y <- sd_y;
      f.f_loc <- mean;
      f.f_sd_xy <- sd_xy;
      f.f_stamp <- t.stamp;
      f.f_xyz <- "";
      Dyn_index.update t.index f.f_handle box f
  | None ->
      let f =
        {
          f_obj = obj;
          f_mu_x = mean.Vec3.x;
          f_sd_x = sd_x;
          f_mu_y = mean.Vec3.y;
          f_sd_y = sd_y;
          f_loc = mean;
          f_sd_xy = sd_xy;
          f_handle = -1;
          f_stamp = t.stamp;
          f_xyz = "";
        }
      in
      f.f_handle <- Dyn_index.insert t.index box f;
      Hashtbl.replace t.fits obj f

(* Bring the cache and index up to date with the engine, visiting only
   what changed: a wholesale rebuild on {!invalidate} (fresh query
   layer, checkpoint restore), every object when the change feed says
   everything moved (degraded widening, Unfactorized), and otherwise
   exactly the dirty ids. Consumes the feed. *)
let maintain t ~engine =
  let t0 = Obs.start sp_maintain in
  if t.full_invalid then begin
    Obs.incr c_full_rebuilds 1;
    Dyn_index.clear t.index;
    Hashtbl.reset t.fits;
    Engine.iter_estimates engine (fun obj mean cov -> refit t obj mean cov);
    t.full_invalid <- false
  end
  else if Engine.changes_dirty_all engine then
    Engine.iter_estimates engine (fun obj mean cov -> refit t obj mean cov)
  else
    Engine.iter_dirty_changes engine (fun obj ->
        match Engine.estimate engine obj with
        | Some (mean, cov) -> refit t obj mean cov
        | None -> ());
  Engine.clear_changes engine;
  Obs.stop sp_maintain t0

let xyz_str (f : fit) =
  if String.length f.f_xyz = 0 then
    f.f_xyz <-
      Printf.sprintf "%s %s %s"
        (Framing.float_str f.f_loc.Vec3.x)
        (Framing.float_str f.f_loc.Vec3.y)
        (Framing.float_str f.f_loc.Vec3.z);
  f.f_xyz

let axis_mass ~mu ~sd ~lo ~hi =
  if sd > 0. then
    let g = G.create ~mu ~sigma:sd in
    G.cdf g hi -. G.cdf g lo
  else if mu >= lo && mu <= hi then 1.
  else 0.

let range t ~engine ~min_x ~min_y ~max_x ~max_y ~min_mass =
  let finite = Float.is_finite in
  if not (finite min_x && finite min_y && finite max_x && finite max_y) then
    invalid_arg "Query.range: bounds must be finite";
  if min_x > max_x || min_y > max_y then
    invalid_arg "Query.range: min bound exceeds max bound";
  let min_mass = Float.max min_mass min_mass_floor in
  maintain t ~engine;
  let probe = Box2.make ~min_x ~min_y ~max_x ~max_y in
  Dyn_index.query_into t.index probe t.hits;
  let out = ref [] in
  for i = 0 to Rtree.Hits.length t.hits - 1 do
    let f = Rtree.Hits.get t.hits i in
    let mx = axis_mass ~mu:f.f_mu_x ~sd:f.f_sd_x ~lo:min_x ~hi:max_x in
    let my = axis_mass ~mu:f.f_mu_y ~sd:f.f_sd_y ~lo:min_y ~hi:max_y in
    let mass = mx *. my in
    if mass >= min_mass then
      out :=
        { a_obj = f.f_obj; a_mass = mass; a_loc = f.f_loc; a_xyz = xyz_str f }
        :: !out
  done;
  List.sort (fun a b -> Int.compare a.a_obj b.a_obj) !out

let at t ~engine obj =
  let stamp_before =
    match Hashtbl.find_opt t.fits obj with Some f -> f.f_stamp | None -> -1
  in
  maintain t ~engine;
  match Hashtbl.find_opt t.fits obj with
  | None -> None
  | Some f ->
      (* Same record, same stamp: this lookup did zero fit_gaussian
         work. (A full rebuild replaces the record and re-stamps, so
         it can never masquerade as a hit.) *)
      if f.f_stamp = stamp_before then Obs.incr c_fit_cache_hits 1;
      Some (f.f_loc, f.f_sd_xy)

let near t ~engine ~k ~x ~y =
  if k < 1 then invalid_arg "Query.near: k must be >= 1";
  if not (Float.is_finite x && Float.is_finite y) then
    invalid_arg "Query.near: center must be finite";
  maintain t ~engine;
  let n = Dyn_index.size t.index in
  if n = 0 then []
  else begin
    let dist (f : fit) = Float.hypot (f.f_mu_x -. x) (f.f_mu_y -. y) in
    let collect () =
      let cands = ref [] in
      for i = 0 to Rtree.Hits.length t.hits - 1 do
        let f = Rtree.Hits.get t.hits i in
        cands := (dist f, f) :: !cands
      done;
      List.sort
        (fun (da, fa) (db, fb) ->
          match Float.compare da db with 0 -> Int.compare fa.f_obj fb.f_obj | c -> c)
        !cands
    in
    (* Expanding square probe: any mean within Euclidean distance r of
       the center lies inside the r-square, so its box intersects the
       probe and it is among the candidates — once k candidates sit at
       distance <= r, nothing outside can beat them. *)
    let rec probe r =
      Dyn_index.query_into t.index
        (Box2.make ~min_x:(x -. r) ~min_y:(y -. r) ~max_x:(x +. r) ~max_y:(y +. r))
        t.hits;
      let m = Rtree.Hits.length t.hits in
      if m >= n || r > 1e12 then collect ()
      else if m >= k then begin
        let cands = collect () in
        let kth = List.nth cands (k - 1) in
        if fst kth <= r then cands else probe (2. *. r)
      end
      else probe (2. *. r)
    in
    let cands = probe 1.0 in
    List.filteri (fun i _ -> i < k) cands
    |> List.map (fun (d, f) ->
           { n_obj = f.f_obj; n_dist = d; n_loc = f.f_loc; n_xyz = xyz_str f })
  end

let fit_count t = Hashtbl.length t.fits

let record_event t ev =
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.keep;
  t.seen <- t.seen + 1

let events_since t ~epoch =
  let held = Int.min t.seen t.keep in
  let out = ref [] in
  (* Walk newest to oldest, prepending, so the result is oldest first. *)
  for i = 0 to held - 1 do
    let slot = (t.head - 1 - i + (2 * t.keep)) mod t.keep in
    match t.ring.(slot) with
    | Some ev when ev.Event.ev_epoch >= epoch -> out := ev :: !out
    | Some _ | None -> ()
  done;
  !out

let events_seen t = t.seen
let events_dropped t = Int.max 0 (t.seen - t.keep)
