lib/model/types.ml: Format Int List Map Printf Rfid_geom Set
