test/test_stream.ml: Alcotest Event Fire_code Format List Location_update Misplaced Option Rfid_core Rfid_geom Rfid_stream Util Window
