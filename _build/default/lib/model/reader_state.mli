(** The reader's kinematic state R_t: (x, y, z) position plus heading
    (orientation in the XY plane, radians) — Table I of the paper. *)

type t = { loc : Rfid_geom.Vec3.t; heading : float }

val make : loc:Rfid_geom.Vec3.t -> heading:float -> t
val pp : Format.formatter -> t -> unit
