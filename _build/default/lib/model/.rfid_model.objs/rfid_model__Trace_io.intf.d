lib/model/trace_io.mli: Rfid_geom Types
