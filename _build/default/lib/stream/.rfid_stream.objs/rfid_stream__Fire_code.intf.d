lib/stream/fire_code.mli: Format Rfid_core Rfid_geom Rfid_model
