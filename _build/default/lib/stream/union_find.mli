(** Classic disjoint-set union with path compression and union by rank —
    the substrate for grouping co-located objects in {!Containment}. *)

type t

val create : int -> t
(** Universe of elements [0 .. n-1]. @raise Invalid_argument if
    [n < 0]. *)

val find : t -> int -> int
(** Representative of the element's set. @raise Invalid_argument on an
    out-of-range element. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val groups : t -> int list list
(** All sets with at least two members, each sorted ascending, ordered
    by their smallest member. *)
