(** The streaming inference engine: consumes synchronized observations
    and produces the clean location-event stream (§II-A's output).

    [Engine] wraps one of the filter implementations selected by
    {!Config.variant} and adds the report policy: the paper's systems
    emit an event for an object a fixed delay after it enters the
    reader's scope during the current scan ("within x seconds after an
    object was read"), so downstream queries see one stable location per
    object per encounter instead of a fluctuating estimate. [flush]
    emits events for encounters still pending at stream end (e.g. "upon
    completion of a full area scan").

    Real deployments are not clean: epochs duplicate, arrive out of
    order, or lose their location fix. The engine therefore (a) skips
    and counts equal-epoch duplicates instead of raising, (b) drops or
    halts on strictly decreasing epochs per
    [config.drop_out_of_order], and (c) offers {!step_degraded} for
    epochs whose location fix was rejected upstream — the filter
    dead-reckons through them and the resulting events carry a
    [degraded] flag. {!snapshot}/{!restore} serialize the complete
    engine state for checkpoint/resume (see [Rfid_robust.Checkpoint]);
    a restored engine's future event stream is bit-identical to the
    uninterrupted run's. *)

type t

type stats = {
  duplicate_epochs_skipped : int;
      (** observations whose epoch equalled the current one *)
  out_of_order_dropped : int;
      (** observations dropped under [config.drop_out_of_order] *)
  degraded_epochs : int;  (** epochs processed by {!step_degraded} *)
  degraded_events : int;  (** events emitted with the degraded flag *)
}

val create :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  init_reader:Rfid_model.Reader_state.t ->
  ?num_objects:int ->
  ?seed:int ->
  unit ->
  t
(** [num_objects] is required by the [Unfactorized] variant (its joint
    particles hold a location per object) and ignored otherwise.
    [seed] (default 0) makes the engine deterministic.
    @raise Invalid_argument if the variant is [Unfactorized] and
    [num_objects] is missing. *)

val step : t -> Rfid_model.Types.observation -> Event.t list
(** Feed one epoch; returns the events whose report delay expired at
    this epoch. An observation at the current epoch is skipped and
    counted (see {!stats}); one at an earlier epoch is dropped and
    counted when [config.drop_out_of_order] is set.
    @raise Invalid_argument on a strictly decreasing epoch under the
    default (halt) policy. *)

val step_degraded :
  ?tags:Rfid_model.Types.tag list -> t -> epoch:Rfid_model.Types.epoch -> Event.t list
(** Advance one epoch with {e no usable location fix} — it was missing
    or rejected by the ingest guard. The underlying filter dead-reckons
    (see [Factored_filter.dead_reckon]); reports falling due during the
    outage are still emitted, flagged degraded. [tags] (default [[]])
    carries the epoch's tag readings, which survived validation even
    though the fix did not: shelf tags among them localize the
    dead-reckoned reader belief (their positions are known exactly),
    while object tags are ignored — without a trusted fix there is no
    proposal to weight object hypotheses against. Epoch ordering is
    policed exactly as in {!step}. *)

val run : t -> Rfid_model.Types.observation list -> Event.t list
(** [step] over a whole stream, then {!flush}; returns all events in
    emission order. *)

val flush : t -> Event.t list
(** Emit events for all pending encounters (end-of-scan policy). Events
    are flagged degraded when the engine is mid-outage. *)

val estimate : t -> int -> (Rfid_geom.Vec3.t * Rfid_prob.Linalg.mat) option
(** Current posterior mean/covariance of an object's location. *)

val iter_estimates :
  t -> (int -> Rfid_geom.Vec3.t -> Rfid_prob.Linalg.mat -> unit) -> unit
(** Visit every known object that has a posterior estimate, in
    ascending object-id order, with its current mean and covariance —
    the query layer ([Rfid_serve.Query]) builds its spatial index of
    posterior bounding boxes through this without materializing an
    intermediate list per object. List- and sort-free: the filters
    keep their known sets in sorted form. *)

val iter_known : t -> (int -> unit) -> unit
(** Visit every known object id, ascending, without building a list. *)

val num_known : t -> int
(** Number of known objects, O(1). *)

(** {1 Change feed}

    The filters record which objects' posteriors may have changed
    since the consumer's last {!clear_changes}: each step's processed
    scope, belief compressions, and — through {!changes_dirty_all} —
    degraded-mode widening and {!restore}, which touch everything
    (the Unfactorized variant reports everything changed on every
    epoch, since the joint weights move). Conservative but complete:
    an id the feed does not flag has a bitwise-unchanged estimate.
    Single consumer — in the serving stack, [Rfid_serve.Query]. *)

val changes_dirty_all : t -> bool
(** Every object must be treated as changed. *)

val iter_dirty_changes : t -> (int -> unit) -> unit
(** Changed ids, ascending; yields nothing while {!changes_dirty_all}
    holds — check it first. *)

val clear_changes : t -> unit
(** Consume the feed (empty the dirty set, lower the flag). *)

val reader_estimate : t -> Rfid_geom.Vec3.t
(** Weighted posterior mean of the reader's location. *)

val known_objects : t -> int list
(** Every object read so far, ascending. *)

val epoch : t -> Rfid_model.Types.epoch
(** Epoch of the last admitted observation (-1 for a fresh engine). *)

val objects_processed_last_step : t -> int
(** Factored variants: objects touched by the last step; for
    [Unfactorized] this is the declared object count. *)

val config : t -> Config.t
(** The configuration the engine was created with. *)

val stats : t -> stats
(** Robustness counters accumulated since creation (or restore). *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering of {!stats}, as the CLI summaries print it. *)

(** {1 Write-ahead journaling} *)

(** One admitted epoch, as the engine consumed it — exactly what a
    write-ahead log must persist to replay the epoch later:
    [Journal_step] the (possibly guard-repaired) observation,
    [Journal_degraded] the epoch and surviving tag readings of a
    degraded step. *)
type journal_entry =
  | Journal_step of Rfid_model.Types.observation
  | Journal_degraded of Rfid_model.Types.epoch * Rfid_model.Types.tag list

val set_journal : t -> (journal_entry -> unit) option -> unit
(** Install (or clear) the write-ahead hook. When set, {!step} and
    {!step_degraded} call it with the epoch's entry {e after} admission
    but {e before} any state changes, so a journal flushed at entry
    granularity always covers at least as much as any state the engine
    exposed. Skipped duplicates / out-of-order drops are not
    journaled. *)

(** {1 Checkpointing} *)

(** Complete dynamic engine state — filter state (RNG streams, reader
    and object particles, spatial index, compression queue), pending
    report queue, and robustness counters — as plain data. The
    representation is public so [Rfid_robust.Codec] can serialize it
    field by field; treat it as read-only elsewhere. Field and
    constructor order are part of the legacy (v1, Marshal) checkpoint
    format — do not add, remove or reorder without bumping it. *)
type filter_snapshot =
  | Basic_snapshot of Basic_filter.snapshot * int  (** declared object count *)
  | Factored_snapshot of Factored_filter.snapshot

type snapshot = {
  es_filter : filter_snapshot;
  es_pending : (int * int) list;  (** (due epoch, object) report queue *)
  es_scheduled : int list;  (** objects with a pending report, ascending *)
  es_dup_skipped : int;
  es_ooo_dropped : int;
  es_degraded_run : int;
  es_degraded_event_count : int;
}

val snapshot : t -> snapshot
(** Deep copy of the engine's state; the engine can keep running. *)

val snapshot_epoch : snapshot -> int
(** Epoch at which the snapshot was taken (-1 for a fresh engine). *)

val restore :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  snapshot ->
  t
(** Rebuild an engine from a snapshot plus the same static inputs it
    was created with. Feeding the restored engine the remaining
    observations yields exactly the events the uninterrupted run would
    have produced, for every variant and any [config.num_domains].
    @raise Invalid_argument if [config.variant] disagrees with the
    snapshot. *)
