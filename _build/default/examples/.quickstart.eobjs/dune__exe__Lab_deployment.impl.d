examples/lab_deployment.ml: Array Float Format List Params Printf Rfid_baselines Rfid_core Rfid_eval Rfid_learn Rfid_model Rfid_sim Sensor_model Trace World
