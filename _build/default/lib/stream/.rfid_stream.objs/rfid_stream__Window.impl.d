lib/stream/window.ml: List Queue Rfid_model
