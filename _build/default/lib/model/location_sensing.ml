open Rfid_geom

type t = { bias : Vec3.t; sigma : Vec3.t }

let create ?(bias = Vec3.zero) ?(sigma = Vec3.make 0.01 0.01 0.01) () =
  if sigma.Vec3.x < 0. || sigma.Vec3.y < 0. || sigma.Vec3.z < 0. then
    invalid_arg "Location_sensing.create: negative sigma";
  { bias; sigma }

let default = create ()

let sample_report t rng true_loc =
  let open Rfid_prob in
  Vec3.add (Vec3.add true_loc t.bias)
    (Vec3.make
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.x ())
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.y ())
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.z ()))

(* A zero sigma on an axis means that axis is not observed (e.g. a 2-D
   positioning system reporting a constant z): it contributes nothing,
   rather than collapsing every particle's weight to -infinity. *)
let gauss_log_pdf ~sigma x =
  if sigma = 0. then 0.
  else
    Rfid_prob.Gaussian.Univariate.log_pdf
      (Rfid_prob.Gaussian.Univariate.create ~mu:0. ~sigma)
      x

let log_pdf t ~true_loc ~reported =
  let d = Vec3.sub reported (Vec3.add true_loc t.bias) in
  gauss_log_pdf ~sigma:t.sigma.Vec3.x d.Vec3.x
  +. gauss_log_pdf ~sigma:t.sigma.Vec3.y d.Vec3.y
  +. gauss_log_pdf ~sigma:t.sigma.Vec3.z d.Vec3.z
