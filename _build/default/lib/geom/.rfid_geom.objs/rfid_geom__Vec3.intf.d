lib/geom/vec3.mli: Format
