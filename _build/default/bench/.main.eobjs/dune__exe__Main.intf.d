bench/main.mli:
