lib/sim/trace_gen.ml: Array Float Hashtbl Int List Location_sensing Reader_state Rfid_geom Rfid_model Rfid_prob Trace Truth_sensor Types Vec3 Warehouse World
