(* Unit tests for the core helpers shared by the filters. *)
open Rfid_core
open Rfid_model
open Rfid_geom

let cache () =
  Common.Sensor_cache.create ~threshold:0.02 ~max_range:12. Sensor_model.default

let test_sensor_cache () =
  let c = cache () in
  Util.check_close ~eps:1e-6 "range matches model"
    (Sensor_model.detection_range ~threshold:0.02 Sensor_model.default)
    c.Common.Sensor_cache.range;
  Alcotest.(check bool) "half angle positive" true (c.Common.Sensor_cache.half_angle > 0.);
  (* The cap binds when the model never decays. *)
  let flat = Sensor_model.of_coef [| 3.; 0.; 0.; -1.; -1. |] in
  let capped = Common.Sensor_cache.create ~threshold:0.02 ~max_range:5. flat in
  Util.check_close "cap binds" 5. capped.Common.Sensor_cache.range

let test_init_cone_geometry () =
  let c = cache () in
  let cone =
    Common.init_cone c ~overestimate:1.25 ~reader_loc:(Util.vec3 1. 2. 0.) ~heading:0.7
  in
  Util.check_close ~eps:1e-9 "apex x" 1. cone.Cone.apex.Vec3.x;
  Util.check_close ~eps:1e-9 "heading" 0.7 cone.Cone.heading;
  Util.check_close ~eps:1e-6 "overestimated range"
    (1.25 *. c.Common.Sensor_cache.range)
    cone.Cone.range

let test_sample_initial_location_on_shelves () =
  let world = Util.two_shelf_world () in
  let c = cache () in
  let rng = Util.rng () in
  for _ = 1 to 500 do
    let p =
      Common.sample_initial_location c ~overestimate:1.25 ~world
        ~reader_loc:(Util.vec3 0. 5. 0.) ~heading:0. rng
    in
    if not (World.contains world p) then Alcotest.fail "initial sample off-shelf"
  done

(* The batched initialization sampler must reproduce the scalar
   reference path — categorical reader draw, then
   [sample_initial_location] from that reader's pose — draw for draw
   and bit for bit, since the golden traces pin the filter's output at
   that level. *)
let fill_setup () =
  let world = Util.two_shelf_world () in
  let c = cache () in
  let j = 5 in
  let pre = Sensor_model.precompute Sensor_model.default ~n:j in
  for p = 0 to j - 1 do
    Sensor_model.pre_set_pose pre p ~x:(0.5 *. float_of_int p)
      ~y:(4. +. (0.3 *. float_of_int p))
      ~z:0.2
      ~heading:(0.4 *. float_of_int p)
  done;
  let rw = [| 0.1; 0.3; 0.2; 0.25; 0.15 |] in
  (world, c, pre, rw)

let reference_fresh world c pre rw rng i =
  let rx, ry, rz, rh = Sensor_model.pre_poses pre in
  ignore i;
  let idx = Rfid_prob.Rng.categorical rng rw in
  let reader_loc =
    Util.vec3 (Float.Array.get rx idx) (Float.Array.get ry idx) (Float.Array.get rz idx)
  in
  let loc =
    Common.sample_initial_location c ~overestimate:1.25 ~world ~reader_loc
      ~heading:(Float.Array.get rh idx) rng
  in
  (idx, loc)

let check_bits what expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: %.17g and %.17g differ bitwise" what expected actual

let test_fill_fresh_particles_bit_identical () =
  let world, c, pre, rw = fill_setup () in
  let n = 64 in
  let store = Rfid_prob.Particle_store.create ~n in
  let rng_batch = Rfid_prob.Rng.create ~seed:99 in
  let rng_ref = Rfid_prob.Rng.create ~seed:99 in
  Common.fill_fresh_particles c ~overestimate:1.25 ~world ~pre ~rw ~rng:rng_batch
    ~store ~step:1;
  for i = 0 to n - 1 do
    let idx, loc = reference_fresh world c pre rw rng_ref i in
    Alcotest.(check int) "reader pointer" idx (Rfid_prob.Particle_store.reader store i);
    check_bits "x" loc.Vec3.x (Rfid_prob.Particle_store.x store i);
    check_bits "y" loc.Vec3.y (Rfid_prob.Particle_store.y store i);
    check_bits "z" loc.Vec3.z (Rfid_prob.Particle_store.z store i);
    check_bits "log_w" 0. (Rfid_prob.Particle_store.log_w store i)
  done;
  (* Exhausted the same number of draws. *)
  Alcotest.(check bool) "rng states agree" true
    (Rfid_prob.Rng.state rng_batch = Rfid_prob.Rng.state rng_ref)

let test_fill_fresh_particles_half () =
  let world, c, pre, rw = fill_setup () in
  let n = 32 in
  let store = Rfid_prob.Particle_store.create ~n in
  for i = 0 to n - 1 do
    Rfid_prob.Particle_store.set_loc store i ~x:(float_of_int i) ~y:(-1.) ~z:7.;
    Rfid_prob.Particle_store.set_reader store i 3;
    Rfid_prob.Particle_store.set_log_w store i 0.25
  done;
  let rng_batch = Rfid_prob.Rng.create ~seed:7 in
  let rng_ref = Rfid_prob.Rng.create ~seed:7 in
  Common.fill_fresh_particles c ~overestimate:1.25 ~world ~pre ~rw ~rng:rng_batch
    ~store ~step:2;
  for i = 0 to n - 1 do
    if i mod 2 = 0 then begin
      let idx, loc = reference_fresh world c pre rw rng_ref i in
      Alcotest.(check int) "even slot redrawn" idx
        (Rfid_prob.Particle_store.reader store i);
      check_bits "even x" loc.Vec3.x (Rfid_prob.Particle_store.x store i);
      check_bits "even log_w reset" 0. (Rfid_prob.Particle_store.log_w store i)
    end
    else begin
      check_bits "odd x untouched" (float_of_int i) (Rfid_prob.Particle_store.x store i);
      Alcotest.(check int) "odd pointer untouched" 3
        (Rfid_prob.Particle_store.reader store i);
      check_bits "odd log_w untouched" 0.25 (Rfid_prob.Particle_store.log_w store i)
    end
  done;
  Util.check_raises_invalid "step 0" (fun () ->
      Common.fill_fresh_particles c ~overestimate:1.25 ~world ~pre ~rw ~rng:rng_batch
        ~store ~step:0)

let test_propose_heading_known () =
  let rng = Util.rng () in
  let h =
    Common.propose_heading
      (Config.Known_heading (fun e -> float_of_int e *. 0.1))
      ~motion:Motion_model.default ~epoch:7 ~current:99. rng
  in
  Util.check_close "known heading ignores current" 0.7 h

let test_propose_heading_track () =
  let rng = Util.rng () in
  let motion = Motion_model.create ~heading_sigma:0.01 () in
  (* With jump_prob 0 the heading random-walks near the current value. *)
  let drifts =
    Array.init 200 (fun _ ->
        Common.propose_heading
          (Config.Track_heading { jump_prob = 0. })
          ~motion ~epoch:0 ~current:1.0 rng)
  in
  Array.iter (fun h -> Util.check_in_range "small drift" ~lo:0.9 ~hi:1.1 h) drifts;
  (* With jump_prob 1 every proposal is a fresh uniform angle. *)
  let jumps =
    Array.init 200 (fun _ ->
        Common.propose_heading
          (Config.Track_heading { jump_prob = 1. })
          ~motion ~epoch:0 ~current:1.0 rng)
  in
  let far = Array.exists (fun h -> Float.abs (h -. 1.0) > 1.5) jumps in
  Alcotest.(check bool) "jumps reach far headings" true far

let test_proposal_delta () =
  let motion = Motion_model.create ~velocity:(Util.vec3 0. 0.1 0.) () in
  let d1 =
    Common.proposal_delta Config.From_velocity ~motion ~last_reported:None
      ~reported:(Util.vec3 9. 9. 0.)
  in
  Util.check_vec3 "velocity mode" (Util.vec3 0. 0.1 0.) d1;
  let d2 =
    Common.proposal_delta Config.From_reported_displacement ~motion
      ~last_reported:(Some (Util.vec3 1. 1. 0.))
      ~reported:(Util.vec3 1.5 2. 0.)
  in
  Util.check_vec3 "displacement mode" (Util.vec3 0.5 1. 0.) d2;
  (* Without a previous report the displacement mode falls back to the
     velocity. *)
  let d3 =
    Common.proposal_delta Config.From_reported_displacement ~motion ~last_reported:None
      ~reported:(Util.vec3 5. 5. 0.)
  in
  Util.check_vec3 "fallback" (Util.vec3 0. 0.1 0.) d3

let test_proposal_sigma_control_input () =
  let motion = Motion_model.create ~sigma:(Util.vec3 0.01 0.02 0.) () in
  let sensing = Location_sensing.create ~sigma:(Util.vec3 0.1 0.2 0.) () in
  let s_vel = Common.proposal_sigma Config.From_velocity ~motion ~sensing in
  Util.check_vec3 "velocity mode keeps motion sigma" (Util.vec3 0.01 0.02 0.) s_vel;
  let s_disp = Common.proposal_sigma Config.From_reported_displacement ~motion ~sensing in
  Util.check_close ~eps:1e-9 "x widened" (sqrt ((0.01 ** 2.) +. (2. *. (0.1 ** 2.)))) s_disp.Vec3.x;
  Util.check_close ~eps:1e-9 "y widened" (sqrt ((0.02 ** 2.) +. (2. *. (0.2 ** 2.)))) s_disp.Vec3.y;
  Util.check_close "unobserved axis stays zero" 0. s_disp.Vec3.z

let test_resample_dispatch () =
  let rng = Util.rng () in
  let w = [| 0.5; 0.5 |] in
  List.iter
    (fun scheme ->
      let idx = Common.resample scheme rng w ~n:10 in
      Alcotest.(check int) "n indices" 10 (Array.length idx);
      Array.iter (fun i -> Util.check_in_range "valid" ~lo:0. ~hi:1. (float_of_int i)) idx)
    [ Config.Systematic; Config.Multinomial; Config.Residual ]

let test_jitter_moments () =
  let rng = Util.rng () in
  let n = 20000 in
  let sum = ref Vec3.zero in
  for _ = 1 to n do
    sum :=
      Vec3.add !sum
        (Common.jitter (Util.vec3 1. 2. 3.) ~sigma:(Util.vec3 0.1 0.2 0.) rng)
  done;
  let mean = Vec3.scale (1. /. float_of_int n) !sum in
  Util.check_close ~eps:0.01 "mean x" 1. mean.Vec3.x;
  Util.check_close ~eps:0.01 "mean y" 2. mean.Vec3.y;
  Util.check_close ~eps:1e-12 "zero-sigma axis untouched" 3. mean.Vec3.z

let suite =
  ( "core_common",
    [
      Alcotest.test_case "sensor cache" `Quick test_sensor_cache;
      Alcotest.test_case "init cone geometry" `Quick test_init_cone_geometry;
      Alcotest.test_case "initial samples on shelves" `Quick
        test_sample_initial_location_on_shelves;
      Alcotest.test_case "batched fresh particles bit-identical" `Quick
        test_fill_fresh_particles_bit_identical;
      Alcotest.test_case "batched fresh particles half-redraw" `Quick
        test_fill_fresh_particles_half;
      Alcotest.test_case "known heading" `Quick test_propose_heading_known;
      Alcotest.test_case "tracked heading" `Quick test_propose_heading_track;
      Alcotest.test_case "proposal delta" `Quick test_proposal_delta;
      Alcotest.test_case "proposal sigma (control input)" `Quick
        test_proposal_sigma_control_input;
      Alcotest.test_case "resample dispatch" `Quick test_resample_dispatch;
      Alcotest.test_case "jitter moments" `Quick test_jitter_moments;
    ] )
