(** Reader motion model (§III-A): the reader moves with a roughly
    constant velocity, [R_t = R_{t-1} + delta + eps] with
    [eps ~ N(0, Sigma_m)] (diagonal). Heading evolves the same way with
    its own drift and noise. *)

type t = {
  velocity : Rfid_geom.Vec3.t;  (** average per-epoch displacement (delta) *)
  sigma : Rfid_geom.Vec3.t;  (** per-axis motion noise std-dev (sqrt of diag Sigma_m) *)
  heading_drift : float;  (** average per-epoch heading change, radians *)
  heading_sigma : float;  (** heading noise std-dev, radians *)
}

val default : t
(** 0.1 ft/epoch along +y (the paper's robot speed), sigma 0.01 per
    axis, steady heading with 0.01 rad noise. *)

val create :
  ?velocity:Rfid_geom.Vec3.t ->
  ?sigma:Rfid_geom.Vec3.t ->
  ?heading_drift:float ->
  ?heading_sigma:float ->
  unit ->
  t
(** Defaults as in {!default}. @raise Invalid_argument on negative
    sigmas. *)

val sample_next : t -> Rfid_prob.Rng.t -> Reader_state.t -> Reader_state.t
(** Draw R_t given R_{t-1}. *)

val log_pdf : t -> prev:Reader_state.t -> next:Reader_state.t -> float
(** Transition log-density (positions and heading; independent
    Gaussians). *)
