open Rfid_geom
open Rfid_model

type particle = {
  mutable reader : Reader_state.t;
  locs : Vec3.t array;
  mutable log_w : float;
}

type t = {
  world : World.t;
  params : Params.t;
  config : Config.t;
  rng : Rfid_prob.Rng.t;
  num_objects : int;
  mutable particles : particle array;
  cache : Common.Sensor_cache.t;
  shelf_tags : (Types.tag * Vec3.t) array;
  mutable last_reported : Vec3.t option;
  mutable epoch : int;
  last_read : int array;  (* -1 = never *)
  last_read_reader : Vec3.t array;
  mutable newly_seen : int list;
  mutable consecutive_degraded : int;
  mutable degraded_total : int;
}

let create ~world ~params ~config ~init_reader ~num_objects ~rng =
  if num_objects < 0 then invalid_arg "Basic_filter.create: negative num_objects";
  let j = config.Config.num_reader_particles in
  let particles =
    Array.init j (fun _ ->
        let loc =
          Common.jitter init_reader.Reader_state.loc
            ~sigma:params.Params.sensing.Location_sensing.sigma rng
        in
        {
          reader = Reader_state.make ~loc ~heading:init_reader.Reader_state.heading;
          locs = Array.init num_objects (fun _ -> World.sample_on_shelves world rng);
          log_w = 0.;
        })
  in
  {
    world;
    params;
    config;
    rng;
    num_objects;
    particles;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_tags = Array.of_list (World.shelf_tags world);
    last_reported = None;
    epoch = -1;
    last_read = Array.make num_objects (-1);
    last_read_reader = Array.make num_objects Vec3.zero;
    newly_seen = [];
    consecutive_degraded = 0;
    degraded_total = 0;
  }

let reinit_object t p obj =
  p.locs.(obj) <-
    Common.sample_initial_location t.cache
      ~overestimate:t.config.Config.init_overestimate ~world:t.world
      ~reader_loc:p.reader.Reader_state.loc ~heading:p.reader.Reader_state.heading t.rng

let step t (obs : Types.observation) =
  if obs.Types.o_epoch <= t.epoch then
    invalid_arg "Basic_filter.step: observations out of epoch order";
  let e = obs.Types.o_epoch in
  let reported = obs.Types.o_reported_loc in
  t.newly_seen <- [];
  (* Split readings. *)
  let obj_read = Array.make t.num_objects false in
  let shelf_read = Hashtbl.create 8 in
  List.iter
    (fun tag ->
      match tag with
      | Types.Object_tag i -> if i >= 0 && i < t.num_objects then obj_read.(i) <- true
      | Types.Shelf_tag i -> Hashtbl.replace shelf_read i ())
    obs.Types.o_read_tags;
  (* Proposal: move readers and objects. *)
  let delta =
    Common.proposal_delta t.config.Config.proposal ~motion:t.params.Params.motion
      ~last_reported:t.last_reported ~reported
  in
  let motion = t.params.Params.motion in
  let sigma =
    match t.config.Config.proposal_noise_override with
    | Some s -> s
    | None ->
        Common.proposal_sigma t.config.Config.proposal ~motion
          ~sensing:t.params.Params.sensing
  in
  Array.iter
    (fun p ->
      let loc =
        match t.config.Config.proposal with
        | Config.From_reported_location -> Common.jitter reported ~sigma t.rng
        | Config.From_velocity | Config.From_reported_displacement ->
            Common.jitter (Vec3.add p.reader.Reader_state.loc delta) ~sigma t.rng
      in
      let heading =
        Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
          ~current:p.reader.Reader_state.heading t.rng
      in
      p.reader <- Reader_state.make ~loc ~heading;
      (* Move hypotheses only where evidence can judge them — see the
         matching comment in Factored_filter. *)
      for i = 0 to t.num_objects - 1 do
        if obj_read.(i) then
          p.locs.(i) <-
            Object_model.sample_next t.params.Params.objects t.world t.rng p.locs.(i)
      done)
    t.particles;
  (* Detection-driven (re)initialization of object hypotheses. *)
  for i = 0 to t.num_objects - 1 do
    if obj_read.(i) then begin
      if t.last_read.(i) < 0 then
        Array.iter (fun p -> reinit_object t p i) t.particles
      else begin
        let d = Vec3.dist reported t.last_read_reader.(i) in
        if d >= t.config.Config.reinit_far then
          Array.iter (fun p -> reinit_object t p i) t.particles
        else if d >= t.config.Config.reinit_near then
          (* Keep half the hypotheses, spread the other half at the new
             location (§IV-A). *)
          Array.iter
            (fun p -> if Rfid_prob.Rng.bool t.rng then reinit_object t p i)
            t.particles
      end
    end
  done;
  (* Weighting. *)
  let sensor = t.params.Params.sensor in
  Array.iter
    (fun p ->
      let reader_loc = p.reader.Reader_state.loc in
      let heading = p.reader.Reader_state.heading in
      let lw = ref (Location_sensing.log_pdf t.params.Params.sensing ~true_loc:reader_loc ~reported) in
      Array.iter
        (fun (tag, tag_loc) ->
          let read =
            match tag with Types.Shelf_tag i -> Hashtbl.mem shelf_read i | _ -> false
          in
          let l =
            Sensor_model.log_prob sensor ~reader_loc ~reader_heading:heading ~tag_loc
              ~read
          in
          let l = if read then l else t.config.Config.shelf_miss_weight *. l in
          lw := !lw +. l)
        t.shelf_tags;
      for i = 0 to t.num_objects - 1 do
        (* Objects never read are still latent but carry no evidence
           coupling beyond the miss term; include it — this is the full
           joint model. *)
        lw :=
          !lw
          +. Sensor_model.log_prob sensor ~reader_loc ~reader_heading:heading
               ~tag_loc:p.locs.(i) ~read:obj_read.(i)
      done;
      p.log_w <- p.log_w +. !lw)
    t.particles;
  (* Normalize in log space, resample on degeneracy. *)
  let lws = Array.map (fun p -> p.log_w) t.particles in
  let w = Rfid_prob.Stats.normalize_log_weights lws in
  let j = Array.length t.particles in
  if Rfid_prob.Stats.effective_sample_size w < t.config.Config.resample_ratio *. float_of_int j
  then begin
    let idx = Common.resample t.config.Config.resample_scheme t.rng w ~n:j in
    t.particles <-
      Array.map
        (fun k ->
          let src = t.particles.(k) in
          { reader = src.reader; locs = Array.copy src.locs; log_w = 0. })
        idx
  end
  else
    (* Keep weights centred to avoid underflow. *)
    Array.iter (fun p -> p.log_w <- p.log_w -. Rfid_prob.Stats.log_sum_exp lws) t.particles;
  (* Bookkeeping for scope tracking. *)
  for i = 0 to t.num_objects - 1 do
    if obj_read.(i) then begin
      if t.last_read.(i) < 0 || e - t.last_read.(i) > t.config.Config.out_of_scope_after
      then t.newly_seen <- i :: t.newly_seen;
      t.last_read.(i) <- e;
      t.last_read_reader.(i) <- reported
    end
  done;
  t.last_reported <- Some reported;
  t.consecutive_degraded <- 0;
  t.epoch <- e

(* Degraded epoch: no usable location fix, no trusted readings. The
   reader belief advances by the motion model alone with inflated
   proposal noise (dead reckoning); weights are untouched because there
   is no evidence to score against. Once the outage outlasts
   [degraded_widen_after], object hypotheses start diffusing too: the
   filter's knowledge of where things are genuinely decays. *)
let dead_reckon t ~epoch:e =
  if e <= t.epoch then
    invalid_arg "Basic_filter.dead_reckon: observations out of epoch order";
  t.newly_seen <- [];
  let motion = t.params.Params.motion in
  let scale = t.config.Config.degraded_noise_scale in
  let s = motion.Motion_model.sigma in
  let sigma = Vec3.make (s.Vec3.x *. scale) (s.Vec3.y *. scale) (s.Vec3.z *. scale) in
  t.consecutive_degraded <- t.consecutive_degraded + 1;
  t.degraded_total <- t.degraded_total + 1;
  let widen =
    t.consecutive_degraded >= t.config.Config.degraded_widen_after
    && t.config.Config.degraded_widen_sigma > 0.
  in
  let wsigma =
    let w = t.config.Config.degraded_widen_sigma in
    Vec3.make w w 0.
  in
  Array.iter
    (fun p ->
      let loc =
        Common.jitter (Vec3.add p.reader.Reader_state.loc motion.Motion_model.velocity)
          ~sigma t.rng
      in
      let heading =
        Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
          ~current:p.reader.Reader_state.heading t.rng
      in
      p.reader <- Reader_state.make ~loc ~heading;
      if widen then
        for i = 0 to t.num_objects - 1 do
          if t.last_read.(i) >= 0 then begin
            let l = Common.jitter p.locs.(i) ~sigma:wsigma t.rng in
            p.locs.(i) <-
              (if World.contains t.world l then l else World.clamp_to_shelves t.world l)
          end
        done)
    t.particles;
  t.epoch <- e

let degraded_epochs t = t.degraded_total
let consecutive_degraded t = t.consecutive_degraded

(* Checkpointable state: everything [step]/[dead_reckon] read or write,
   as plain data. Static structure (world, params, config, sensor
   cache) is reconstructed by [restore] from the same creation inputs. *)
type snapshot = {
  s_rng : int64;
  s_num_objects : int;
  s_particles : (Reader_state.t * Vec3.t array * float) array;
  s_last_reported : Vec3.t option;
  s_epoch : int;
  s_last_read : int array;
  s_last_read_reader : Vec3.t array;
  s_newly_seen : int list;
  s_consecutive_degraded : int;
  s_degraded_total : int;
}

let snapshot t =
  {
    s_rng = Rfid_prob.Rng.state t.rng;
    s_num_objects = t.num_objects;
    s_particles =
      Array.map (fun p -> (p.reader, Array.copy p.locs, p.log_w)) t.particles;
    s_last_reported = t.last_reported;
    s_epoch = t.epoch;
    s_last_read = Array.copy t.last_read;
    s_last_read_reader = Array.copy t.last_read_reader;
    s_newly_seen = t.newly_seen;
    s_consecutive_degraded = t.consecutive_degraded;
    s_degraded_total = t.degraded_total;
  }

let snapshot_epoch s = s.s_epoch

let restore ~world ~params ~config s =
  {
    world;
    params;
    config;
    rng = Rfid_prob.Rng.of_state s.s_rng;
    num_objects = s.s_num_objects;
    particles =
      Array.map
        (fun (reader, locs, log_w) -> { reader; locs = Array.copy locs; log_w })
        s.s_particles;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_tags = Array.of_list (World.shelf_tags world);
    last_reported = s.s_last_reported;
    epoch = s.s_epoch;
    last_read = Array.copy s.s_last_read;
    last_read_reader = Array.copy s.s_last_read_reader;
    newly_seen = s.s_newly_seen;
    consecutive_degraded = s.s_consecutive_degraded;
    degraded_total = s.s_degraded_total;
  }

let weights t =
  Rfid_prob.Stats.normalize_log_weights (Array.map (fun p -> p.log_w) t.particles)

let estimate t obj =
  if obj < 0 || obj >= t.num_objects || t.last_read.(obj) < 0 then None
  else begin
    let w = weights t in
    let pts = Array.map (fun p -> Vec3.to_array p.locs.(obj)) t.particles in
    let g = Rfid_prob.Gaussian.fit ~w pts in
    Some (Vec3.of_array (Rfid_prob.Gaussian.mean g), Rfid_prob.Gaussian.cov g)
  end

let reader_estimate t =
  let w = weights t in
  let acc = ref Vec3.zero in
  Array.iteri
    (fun i p -> acc := Vec3.add !acc (Vec3.scale w.(i) p.reader.Reader_state.loc))
    t.particles;
  !acc

let newly_seen t = t.newly_seen

let known_objects t =
  let out = ref [] in
  for i = t.num_objects - 1 downto 0 do
    if t.last_read.(i) >= 0 then out := i :: !out
  done;
  !out

let epoch t = t.epoch
