lib/geom/box2.ml: Float Format List Vec3
