(* Kill-anywhere recovery harness.

   Forks the CLI with RFID_CRASH_AT_BYTE=k — the durable-write layer
   SIGKILLs the process partway through the write that crosses byte k,
   leaving a torn checkpoint, WAL record, or event line exactly as a
   real crash would — then runs `infer --recover` in the same directory
   and asserts the recovered durable event log is byte-identical to an
   uninterrupted golden run's. Kill offsets are drawn uniformly over
   the golden run's total durable bytes, so mid-checkpoint, mid-WAL,
   and mid-event-line tears all get hit.

   Usage: crash_main [TRIALS] [BASE_SEED]
   Every trial logs its seed and offset, so any failure replays with
   `crash_main 1 <seed>`. Exits 1 on the first failed trial, leaving
   that trial's directory in place for inspection. *)

let default_trials = 50
let default_seed = 20260808

let cli_path () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir "../bin/rfid_clean.exe" in
  if Sys.file_exists candidate then candidate
  else (
    Printf.eprintf "crash_main: cannot find rfid_clean.exe near %s\n"
      Sys.executable_name;
    exit 2)

let scenario_args ~dir ~recover =
  let p = Filename.concat dir in
  [
    "infer"; "--objects"; "6"; "--particles"; "30"; "--rounds"; "1";
    "--seed"; "42"; "--fault-nan"; "0.05"; "--variant"; "indexed";
    "--checkpoint"; p "ck"; "--checkpoint-keep"; "3"; "--checkpoint-every"; "7";
    "--wal"; p "wal.log"; "--wal-fsync-every"; "4";
    "--events"; p "events.log";
  ]
  @ (if recover then [ "--recover" ] else [])

(* Spawn the CLI with stdout/stderr redirected to files in [dir];
   return the waitpid status. *)
let run_cli ~cli ~dir ~crash_at ~recover =
  let args = Array.of_list (cli :: scenario_args ~dir ~recover) in
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 19 && String.sub kv 0 19 = "RFID_CRASH_AT_BYTE="))
    in
    Array.of_list
      (match crash_at with
      | Some k -> Printf.sprintf "RFID_CRASH_AT_BYTE=%d" k :: base
      | None -> base)
  in
  let open_log name =
    Unix.openfile (Filename.concat dir name)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let out = open_log (if recover then "recover.out" else "run.out") in
  let err = open_log (if recover then "recover.err" else "run.err") in
  let pid = Unix.create_process_env cli args env Unix.stdin out err in
  Unix.close out;
  Unix.close err;
  let _, status = Unix.waitpid [] pid in
  status

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_durable_bytes path =
  let data = read_file path in
  let marker = "# durable-bytes=" in
  let rec find_line pos =
    if pos >= String.length data then None
    else
      let eol =
        match String.index_from data pos '\n' with
        | nl -> nl
        | exception Not_found -> String.length data
      in
      let line = String.sub data pos (eol - pos) in
      if
        String.length line > String.length marker
        && String.sub line 0 (String.length marker) = marker
      then
        int_of_string_opt
          (String.sub line (String.length marker)
             (String.length line - String.length marker))
      else find_line (eol + 1)
  in
  find_line 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else default_trials
  in
  let base_seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else default_seed
  in
  let cli = cli_path () in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rfid_crash_%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  (* Golden run: uninterrupted, same scenario. Its events.log is the
     reference and its durable-byte count bounds the kill offsets. *)
  let golden_dir = Filename.concat root "golden" in
  Unix.mkdir golden_dir 0o755;
  (match run_cli ~cli ~dir:golden_dir ~crash_at:None ~recover:false with
  | Unix.WEXITED 0 -> ()
  | _ ->
      Printf.eprintf "crash_main: golden run failed (see %s)\n" golden_dir;
      exit 2);
  let total_bytes =
    match parse_durable_bytes (Filename.concat golden_dir "run.err") with
    | Some n when n > 1 -> n
    | _ ->
        Printf.eprintf "crash_main: golden run did not report durable-bytes\n";
        exit 2
  in
  let golden_events = read_file (Filename.concat golden_dir "events.log") in
  Printf.printf "crash-test: %d trials, base seed %d, %d durable bytes to aim at\n%!"
    trials base_seed total_bytes;
  let failures = ref 0 in
  for t = 0 to trials - 1 do
    let seed = base_seed + t in
    let rng = Rfid_prob.Rng.create ~seed in
    let k = Rfid_prob.Rng.int rng (total_bytes - 1) in
    let dir = Filename.concat root (Printf.sprintf "trial_%03d" t) in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    let fail msg =
      incr failures;
      Printf.printf "trial %3d seed=%d kill@%-7d FAIL: %s (kept %s)\n%!" t seed k
        msg dir
    in
    (match run_cli ~cli ~dir ~crash_at:(Some k) ~recover:false with
    | Unix.WSIGNALED s when s = Sys.sigkill -> (
        match run_cli ~cli ~dir ~crash_at:None ~recover:true with
        | Unix.WEXITED 0 -> (
            match read_file (Filename.concat dir "events.log") with
            | events when events = golden_events ->
                Printf.printf "trial %3d seed=%d kill@%-7d ok\n%!" t seed k;
                rm_rf dir
            | _ -> fail "recovered events.log differs from golden"
            | exception Sys_error m -> fail ("no events.log after recovery: " ^ m))
        | Unix.WEXITED c -> fail (Printf.sprintf "recovery exited %d" c)
        | Unix.WSIGNALED s -> fail (Printf.sprintf "recovery died on signal %d" s)
        | Unix.WSTOPPED s -> fail (Printf.sprintf "recovery stopped on signal %d" s))
    | Unix.WEXITED c ->
        fail (Printf.sprintf "crash run exited normally (%d) instead of dying" c)
    | Unix.WSIGNALED s -> fail (Printf.sprintf "crash run died on signal %d, not SIGKILL" s)
    | Unix.WSTOPPED s -> fail (Printf.sprintf "crash run stopped on signal %d" s))
  done;
  if !failures = 0 then begin
    rm_rf root;
    Printf.printf "crash-test: %d/%d trials recovered bit-identically\n" trials trials
  end
  else begin
    Printf.printf "crash-test: %d/%d trials FAILED (artifacts under %s)\n" !failures
      trials root;
    exit 1
  end
