lib/geom/cone.ml: Box2 Float List Rfid_prob Vec3
