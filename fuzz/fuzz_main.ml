(* Randomized robustness fuzzer: no corrupted input — textual or
   structural — may make an exception escape the lenient reader or the
   ingest-guarded engine.  Every iteration logs its seed before running,
   so any failure reproduces with `fuzz_main.exe <iters> <base-seed>`.

   Three layers per iteration:
     1. text fuzz   — serialize a clean stream, mutate the bytes
        (flips, truncation, garbage lines), parse leniently;
     2. stream fuzz — corrupt the observation stream itself
        (Faults.apply plus negative epochs and huge tag ids), then run
        it through the ingest guard into a real engine under a rotating
        policy set.  [Halt] policies may stop the run — as an [Error]
        value, never an exception;
     3. durability fuzz — corrupt a saved checkpoint and a write-ahead
        log on disk.  [Checkpoint.load] must answer [Error] or the
        bit-identical original snapshot (checksums make a silently
        different decode effectively impossible), and [Wal.read] must
        return a prefix of the records written.  Neither may raise;
     4. protocol fuzz — random, mutated, and hostile request frames
        through the stream server's state machine
        ([Rfid_serve.Core.handle_line]).  No frame may raise, and
        every non-empty frame must get a newline-terminated reply. *)

open Rfid_model

let usage () =
  prerr_endline "usage: fuzz_main.exe [ITERATIONS] [BASE_SEED]";
  exit 2

let garbage_lines =
  [|
    "not,a,number,at,all";
    "1,2,3";
    "-5,0.0,0.0,0.0,obj:1";
    "3,nan,0.0,0.0,";
    "4,0.0,inf,0.0,obj:-2";
    "9999999999999999999999,0,0,0,";
    "5,0.0,0.0,0.0,obj:;shelf:x";
    ",,,,";
    "\xff\xfe\x00garbage";
  |]

let mutate_text rng text =
  let buf = Buffer.create (String.length text) in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         (* Per line: maybe drop, truncate, corrupt a byte, or inject a
            garbage line before it. *)
         if Rfid_prob.Rng.bernoulli rng ~p:0.05 then
           Buffer.add_string buf
             (garbage_lines.(Rfid_prob.Rng.int rng (Array.length garbage_lines)) ^ "\n");
         if not (Rfid_prob.Rng.bernoulli rng ~p:0.05) then begin
           let line =
             if Rfid_prob.Rng.bernoulli rng ~p:0.1 && String.length line > 2 then
               String.sub line 0 (Rfid_prob.Rng.int rng (String.length line))
             else if Rfid_prob.Rng.bernoulli rng ~p:0.1 && String.length line > 0 then begin
               let b = Bytes.of_string line in
               Bytes.set b
                 (Rfid_prob.Rng.int rng (Bytes.length b))
                 (Char.chr (Rfid_prob.Rng.int rng 256));
               Bytes.to_string b
             end
             else line
           in
           Buffer.add_string buf line;
           Buffer.add_string buf (if Rfid_prob.Rng.bernoulli rng ~p:0.2 then "\r\n" else "\n")
         end);
  Buffer.contents buf

let mutate_stream rng observations =
  List.map
    (fun (o : Types.observation) ->
      let o =
        if Rfid_prob.Rng.bernoulli rng ~p:0.03 then
          { o with Types.o_epoch = -1 - Rfid_prob.Rng.int rng 100 }
        else o
      in
      if Rfid_prob.Rng.bernoulli rng ~p:0.03 then
        {
          o with
          Types.o_read_tags =
            Types.Object_tag (Rfid_prob.Rng.int rng 1000 - 500)
            :: o.Types.o_read_tags;
        }
      else o)
    observations

(* Random on-disk corruption: byte flips, truncation, or appended
   garbage — at least one of them, often several. *)
let mutate_file rng path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Buffer.create (String.length data) in
  let n = String.length data in
  if Rfid_prob.Rng.bernoulli rng ~p:0.3 && n > 1 then
    Buffer.add_string b (String.sub data 0 (Rfid_prob.Rng.int rng n))
  else Buffer.add_string b data;
  let bytes = Buffer.to_bytes b in
  let flips = 1 + Rfid_prob.Rng.int rng 8 in
  for _ = 1 to flips do
    if Bytes.length bytes > 0 then begin
      let i = Rfid_prob.Rng.int rng (Bytes.length bytes) in
      Bytes.set bytes i (Char.chr (Rfid_prob.Rng.int rng 256))
    end
  done;
  let oc = open_out_bin path in
  output_bytes oc bytes;
  if Rfid_prob.Rng.bernoulli rng ~p:0.3 then
    for _ = 1 to 1 + Rfid_prob.Rng.int rng 40 do
      output_char oc (Char.chr (Rfid_prob.Rng.int rng 256))
    done;
  close_out oc

let fuzz_durability rng engine clean =
  let snap = Rfid_core.Engine.snapshot engine in
  let reference = Rfid_robust.Codec.encode snap in
  let wal_entries =
    List.filteri (fun i _ -> i < 12) clean
    |> List.map (fun o -> Rfid_robust.Wal.Step o)
  in
  let ckpt = Filename.temp_file "rfid_fuzz_ckpt" ".bin" in
  let wal = Filename.temp_file "rfid_fuzz_wal" ".log" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ ckpt; wal ])
    (fun () ->
      Rfid_robust.Checkpoint.save ~path:ckpt snap;
      let w = Rfid_robust.Wal.create_writer ~path:wal () in
      List.iter (Rfid_robust.Wal.append w) wal_entries;
      Rfid_robust.Wal.close w;
      mutate_file rng ckpt;
      mutate_file rng wal;
      (match Rfid_robust.Checkpoint.load ~path:ckpt with
      | Error _ -> ()
      | Ok snap' ->
          if Rfid_robust.Codec.encode snap' <> reference then
            failwith "corrupt checkpoint decoded to a different snapshot");
      let tail = Rfid_robust.Wal.read ~path:wal in
      let rec is_prefix got expected =
        match (got, expected) with
        | [], _ -> true
        | g :: gs, e :: es -> g = e && is_prefix gs es
        | _ :: _, [] -> false
      in
      if not (is_prefix tail.Rfid_robust.Wal.entries wal_entries) then
        failwith "corrupt WAL read records that were never written")

(* Layer 4: the wire-facing protocol surface. Frames are drawn from
   valid commands, valid commands with mutated arguments, raw garbage,
   and stateful poison (PAUSE/DRAIN mid-stream) — the state machine
   must answer every one of them without an exception escaping, and
   its replies must stay framed. *)
let protocol_frames =
  [|
    "PING";
    "SYNC";
    "STATS";
    "PAUSE";
    "RESUME";
    "DRAIN";
    "AT 0";
    "AT -3";
    "AT 999999999999999999999999";
    "AT";
    "RANGE -5 -5 5 5";
    "RANGE 5 5 -5 -5";
    "RANGE nan nan nan nan";
    "RANGE 0 0 1 1 -7";
    "RANGE 0 0 1 1 0.5 extra";
    "EVENTS 0";
    "EVENTS -5";
    "EVENTS never";
    "PUT 1,0.0,-1.0,0.0,obj:3";
    "PUT 1,0.0,-1.0,0.0,obj:999";
    "PUT -9,0.0,0.0,0.0,";
    "PUT 2,nan,inf,0.0,obj:1;shelf:x";
    "PUT";
    "PUT ,,,,";
    "put 1,0.0,0.0,0.0,";
    "";
    " ";
    "\t";
    "QUIT extra words";
    "\xff\xfe\x00garbage";
  |]

let fuzz_protocol rng boot =
  let core =
    Rfid_serve.Core.create
      ~guard:(Rfid_serve.Bootstrap.fresh_guard boot)
      ~engine:(Rfid_serve.Bootstrap.fresh_engine boot)
      ~num_objects:boot.Rfid_serve.Bootstrap.num_objects
      ~admit_cap:(1 + Rfid_prob.Rng.int rng 8)
      ~events_keep:(1 + Rfid_prob.Rng.int rng 8)
      ()
  in
  for _ = 1 to 200 do
    let frame =
      let base =
        protocol_frames.(Rfid_prob.Rng.int rng (Array.length protocol_frames))
      in
      if Rfid_prob.Rng.bernoulli rng ~p:0.3 && String.length base > 0 then begin
        (* Mutate one byte, as the text fuzzer does to file input. *)
        let b = Bytes.of_string base in
        Bytes.set b
          (Rfid_prob.Rng.int rng (Bytes.length b))
          (Char.chr (Rfid_prob.Rng.int rng 256));
        Bytes.to_string b
      end
      else if Rfid_prob.Rng.bernoulli rng ~p:0.02 then
        (* An over-long frame must get ERR 413, not OOM or a raise. *)
        base ^ String.make (Rfid_serve.Framing.max_line_bytes + 1) 'y'
      else base
    in
    let reply, _close = Rfid_serve.Core.handle_line core frame in
    if String.trim frame = "" then begin
      if reply <> "" then
        failwith (Printf.sprintf "empty frame got a reply: %S" reply)
    end
    else if reply = "" || reply.[String.length reply - 1] <> '\n' then
      failwith
        (Printf.sprintf "frame %S: reply not newline-terminated: %S" frame reply);
    ignore (Rfid_serve.Core.tick core ~max_steps:4)
  done

let policy_sets =
  [|
    Rfid_robust.Ingest.default_policies;
    Rfid_robust.Ingest.uniform_policies Rfid_robust.Ingest.Drop;
    Rfid_robust.Ingest.uniform_policies Rfid_robust.Ingest.Clamp;
    Rfid_robust.Ingest.uniform_policies Rfid_robust.Ingest.Halt;
    {
      Rfid_robust.Ingest.default_policies with
      Rfid_robust.Ingest.on_out_of_order_epoch = Rfid_robust.Ingest.Drop;
    };
  |]

let () =
  let iters, base_seed =
    match Array.to_list Sys.argv with
    | [ _ ] -> (25, 20260806)
    | [ _; n ] -> ( (try int_of_string n with _ -> usage ()), 20260806)
    | [ _; n; s ] -> (
        try (int_of_string n, int_of_string s) with _ -> usage ())
    | _ -> usage ()
  in
  Printf.printf "fuzz: %d iterations, base seed %d\n%!" iters base_seed;
  (* One small scenario reused across iterations; the corruption varies. *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:6 () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed:base_seed)
  in
  let clean = Trace.observations trace in
  let clean_text = Trace_io.observations_to_string clean in
  (* The serve fixture fits a sensor model — expensive, so built once;
     each iteration gets a fresh engine/guard/core from it. *)
  let boot =
    Rfid_serve.Bootstrap.make ~objects:6 ~seed:base_seed ~particles:30 ()
  in
  let failures = ref 0 in
  for iter = 0 to iters - 1 do
    let seed = base_seed + iter in
    Printf.printf "  iter %3d seed %d\n%!" iter seed;
    let rng = Rfid_prob.Rng.create ~seed in
    (try
       (* Layer 1: textual corruption through the lenient reader. *)
       let text = mutate_text rng clean_text in
       let parsed, errors = Trace_io.observations_of_string_lenient text in
       ignore (List.length parsed + List.length errors);
       (* Layer 2: structural corruption through guard + engine. *)
       let spec =
         Rfid_sim.Faults.make
           ~drop_prob:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:0.3)
           ~duplicate_prob:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:0.3)
           ~nan_fix_prob:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:0.3)
           ~spurious_tag_prob:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:0.3)
           ~reorder_prob:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:0.3)
           ?outage:
             (if Rfid_prob.Rng.bool rng then
                Some (Rfid_prob.Rng.int rng 50, Rfid_prob.Rng.int rng 60)
              else None)
           ()
       in
       let corrupted = mutate_stream rng (Rfid_sim.Faults.apply spec ~seed parsed) in
       let config =
         Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
           ~num_reader_particles:30 ~num_object_particles:30 ()
       in
       let engine =
         Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
           ~params:Params.default ~config
           ~init_reader:(Rfid_sim.Warehouse.reader_start wh)
           ~num_objects:6 ~seed ()
       in
       let guard =
         Rfid_robust.Ingest.create
           ~policies:(policy_sets.(iter mod Array.length policy_sets))
           ~bounds:(World.bounding_box wh.Rfid_sim.Warehouse.world)
           ~max_object_id:6 ~max_gap:50 ()
       in
       (match Rfid_robust.Ingest.run_engine guard engine corrupted with
       | Ok events -> ignore (List.length events)
       | Error (_fault, _msg) -> () (* a Halt policy stopping is fine *));
       (* Layer 3: on-disk durability corruption. *)
       fuzz_durability rng engine clean;
       (* Layer 4: hostile request frames through the protocol core. *)
       fuzz_protocol rng boot
     with exn ->
       incr failures;
       Printf.printf "  FAILURE at seed %d: %s\n%!" seed (Printexc.to_string exn))
  done;
  if !failures > 0 then begin
    Printf.printf "fuzz: %d/%d iterations raised\n%!" !failures iters;
    exit 1
  end
  else Printf.printf "fuzz: ok (%d iterations, no escaping exceptions)\n%!" iters
