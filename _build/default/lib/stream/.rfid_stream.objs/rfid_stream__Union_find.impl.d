lib/stream/union_find.ml: Array Fun Hashtbl Int List Option
