(* Experiment harness: reproduces every table and figure of the paper's
   evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- fig5e scalability
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --large # include the 10k-object sweep
     dune exec bench/main.exe -- --json BENCH_filter.json
                                         # machine-readable throughput bench
     dune exec bench/main.exe -- --perf-gate BENCH_baseline.json
                                         # fail on per-epoch allocation regression
     dune exec bench/main.exe -- --perf-baseline BENCH_baseline.json
                                         # refresh the committed gate baseline
     dune exec bench/main.exe -- --smoke # seconds-scale bench-harness check *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let large = List.mem "--large" args in
  let args = List.filter (fun a -> a <> "--large") args in
  let smoke = List.mem "--smoke" args in
  let args = List.filter (fun a -> a <> "--smoke") args in
  let take flag ~default args =
    let rec go acc = function
      | f :: path :: rest when f = flag -> (Some path, List.rev_append acc rest)
      | [ f ] when f = flag -> (Some default, List.rev acc)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let json_path, args = take "--json" ~default:"BENCH_filter.json" args in
  let gate_path, args = take "--perf-gate" ~default:"BENCH_baseline.json" args in
  let baseline_path, args = take "--perf-baseline" ~default:"BENCH_baseline.json" args in
  if smoke then Bench_json.smoke ()
  else
  match (json_path, gate_path, baseline_path) with
  | _, Some path, _ -> Bench_json.check_gate ~baseline_path:path
  | _, _, Some path -> Bench_json.write_baseline ~path
  | Some path, _, _ -> Bench_json.run ~path ~large
  | None, None, None ->
  if List.mem "--list" args then begin
    Printf.printf "available experiments:\n";
    List.iter
      (fun (id, descr, _) -> Printf.printf "  %-22s %s\n" id descr)
      Experiments.all;
    Printf.printf "  %-22s %s\n" "micro" "Bechamel component benchmarks"
  end
  else begin
    let want id = args = [] || List.mem id args in
    List.iter
      (fun (id, _, f) ->
        if want id then
          if id = "scalability" && large then Experiments.scalability ~large:true ()
          else f ())
      Experiments.all;
    if want "micro" then Micro.print_results ()
  end
