(** Probabilistic queries over live posteriors (PROTOCOL.md §5).

    The query layer keeps a per-object cache of moment-matched
    Gaussian fits plus a dynamic spatial index
    ({!Rfid_geom.Dyn_index}) of their ±{!sigma_reach} boxes, and keeps
    both current {e incrementally}: before answering, it drains the
    engine's change feed ({!Rfid_core.Engine.iter_dirty_changes}) and
    recomputes only the flagged objects' fits, moving their index
    entries in place. Post-epoch maintenance is therefore O(objects
    that changed) — the sensing scope — rather than O(known objects),
    and a [RANGE]/[AT]/[NEAR] burst against an un-stepped engine does
    no fit work at all. Answers are byte-identical to a from-scratch
    rebuild: an unflagged object's particle store is untouched, and
    the fit is a deterministic function of the store.

    At 3.5σ the per-axis mass outside an index box is ≈ 2.3e-4, below
    the [min-mass] floor of 1e-3, so box pruning cannot drop a
    reportable [RANGE] answer. Probes are allocation-light, through
    reusable hit buffers.

    {!invalidate} requests a wholesale rebuild (counted in
    [query.full_rebuilds]) — for checkpoint restore/[--recover] paths,
    where the cache predates the state that replaced the engine. A
    fresh query layer starts invalid.

    The module also keeps the bounded ring of emitted events that backs
    [EVENTS since-epoch] — bounded so a long-lived server does not
    accumulate the full event history in memory; evictions are counted,
    never silent. *)

type answer = {
  a_obj : int;
  a_mass : float;
      (** posterior probability that the object lies in the probe box:
          the product of the marginal Gaussian masses along x and y *)
  a_loc : Rfid_geom.Vec3.t;  (** posterior mean *)
  a_xyz : string;
      (** [a_loc] pre-rendered as ["x y z"] with {!Framing.float_str},
          cached in the fit record — reply formatting for a big [RANGE]
          is paid per refit, not per query *)
}

type near_answer = {
  n_obj : int;
  n_dist : float;  (** Euclidean XY distance from the query point to the mean *)
  n_loc : Rfid_geom.Vec3.t;  (** posterior mean *)
  n_xyz : string;  (** [n_loc] pre-rendered as ["x y z"], as in {!answer} *)
}

type t

val sigma_reach : float
(** Half-width of an object's index box, in posterior standard
    deviations per axis (3.5). *)

val min_mass_floor : float
(** Lowest admissible [min-mass] threshold for [RANGE] (0.001);
    requests below it are clamped here, keeping the σ-box pruning
    sound. *)

val create : ?events_keep:int -> unit -> t
(** [events_keep] bounds the event ring (default 4096).
    @raise Invalid_argument if [events_keep < 1]. *)

val invalidate : t -> unit
(** Mark the whole cache stale; the next query rebuilds fits and index
    from scratch. Needed only when the engine behind the queries is
    {e replaced} (checkpoint restore) — ordinary steps are picked up
    incrementally via the change feed. *)

val maintain : t -> engine:Rfid_core.Engine.t -> unit
(** Bring the fit cache and index up to date, visiting only changed
    objects, and consume the engine's change feed. Queries call this
    themselves; exposed for tests and benches. *)

val range :
  t ->
  engine:Rfid_core.Engine.t ->
  min_x:float ->
  min_y:float ->
  max_x:float ->
  max_y:float ->
  min_mass:float ->
  answer list
(** Objects whose posterior mass inside the XY box reaches [min_mass]
    (clamped to at least {!min_mass_floor}), in ascending object id.
    @raise Invalid_argument if a min bound exceeds its max or any bound
    is not finite. *)

val at : t -> engine:Rfid_core.Engine.t -> int -> (Rfid_geom.Vec3.t * float) option
(** Posterior mean and sd_xy (√ of the mean XY variance) of one
    object, from the fit cache — repeated [AT] on an unchanged object
    does zero fit work (counted in [query.fit_cache_hits]). [None] for
    an unknown object. *)

val near :
  t ->
  engine:Rfid_core.Engine.t ->
  k:int ->
  x:float ->
  y:float ->
  near_answer list
(** The [k] known objects whose posterior means lie nearest (Euclidean
    XY) to [(x, y)], nearest first, ties by ascending object id; fewer
    than [k] when fewer objects are known. Found by expanding square
    probes of the dynamic index, so the cost tracks the local density,
    not the object count.
    @raise Invalid_argument if [k < 1] or a coordinate is not finite. *)

val fit_count : t -> int
(** Objects currently held by the fit cache (= index entries). *)

val record_event : t -> Rfid_core.Event.t -> unit
(** Append to the ring, evicting the oldest entry when full. *)

val events_since : t -> epoch:int -> Rfid_core.Event.t list
(** Retained events with [ev_epoch >= epoch], oldest first. *)

val events_seen : t -> int
(** Total events ever recorded (evicted ones included). *)

val events_dropped : t -> int
(** Events evicted from the ring so far — when nonzero, [EVENTS] with a
    small enough [since-epoch] is truncated history, and STATS says
    so. *)
