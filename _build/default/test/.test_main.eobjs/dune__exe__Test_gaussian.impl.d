test/test_gaussian.ml: Alcotest Array Float Gaussian Linalg QCheck Rfid_prob Rng Stats Util
