let check w =
  if Array.length w = 0 then invalid_arg "Resample: empty weights"

let check_out out ~n =
  if Array.length out < n then invalid_arg "Resample: output buffer shorter than n"

(* The [_into] variants consume identical RNG draws and produce
   identical indices to their allocating counterparts; they exist so
   the filter hot paths can resample into scratch-arena buffers with
   zero steady-state allocation. *)

let multinomial_into rng w ~n ~out =
  check w;
  check_out out ~n;
  for i = 0 to n - 1 do
    out.(i) <- Rng.categorical rng w
  done

let multinomial rng w ~n =
  check w;
  Array.init n (fun _ -> Rng.categorical rng w)

let systematic_into rng w ~n ~out =
  check w;
  check_out out ~n;
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then
    (* Degenerate weights: fall back to uniform stride over indices. *)
    for i = 0 to n - 1 do
      out.(i) <- i mod Array.length w
    done
  else begin
    let m = Array.length w in
    let step = total /. float_of_int n in
    let u0 = Rng.float rng *. step in
    let acc = ref w.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let u = u0 +. (float_of_int i *. step) in
      while !acc < u && !j < m - 1 do
        incr j;
        acc := !acc +. w.(!j)
      done;
      out.(i) <- !j
    done
  end

let systematic rng w ~n =
  check w;
  let out = Array.make n 0 in
  systematic_into rng w ~n ~out;
  out

let residual_into rng w ~n ~out =
  check w;
  check_out out ~n;
  let w = Stats.normalize w in
  let m = Array.length w in
  let filled = ref 0 in
  let residuals = Array.make m 0. in
  for i = 0 to m - 1 do
    let expected = float_of_int n *. w.(i) in
    let copies = int_of_float (Float.floor expected) in
    residuals.(i) <- expected -. float_of_int copies;
    for _ = 1 to copies do
      if !filled < n then begin
        out.(!filled) <- i;
        incr filled
      end
    done
  done;
  while !filled < n do
    out.(!filled) <- Rng.categorical rng residuals;
    incr filled
  done

let residual rng w ~n =
  check w;
  let out = Array.make n 0 in
  residual_into rng w ~n ~out;
  out

let ess_below w ~ratio =
  let n = Array.length w in
  n > 0 && Stats.effective_sample_size (Stats.normalize w) < ratio *. float_of_int n
