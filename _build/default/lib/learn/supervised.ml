open Rfid_model

let fit_from_pairs ?(l2 = 1e-4) ?init ?w ~geometries ~outcomes () =
  let n = Array.length geometries in
  if n = 0 then invalid_arg "Supervised.fit_from_pairs: empty data";
  if Array.length outcomes <> n then
    invalid_arg "Supervised.fit_from_pairs: shape mismatch";
  let x = Array.map (fun (d, theta) -> Sensor_model.features ~d ~theta) geometries in
  let init = Option.map Sensor_model.to_coef init in
  (* Decay coefficients constrained non-positive — the paper's stated
     expectation, and the guard against extrapolation artifacts where
     the trace geometry leaves (d, theta) regions unobserved. *)
  let m =
    Rfid_prob.Logistic.fit ~l2 ?init ~nonpositive:[ 1; 2; 3; 4 ] ~x ~y:outcomes ?w
      ~dim:5 ()
  in
  Sensor_model.of_coef m.Rfid_prob.Logistic.coef

let fit_sensor ?(samples = 20000) ?(l2 = 1e-4) ?(max_distance = 6.) ~read_prob ~seed () =
  if samples <= 0 then invalid_arg "Supervised.fit_sensor: samples must be positive";
  if max_distance <= 0. then
    invalid_arg "Supervised.fit_sensor: max_distance must be positive";
  let rng = Rfid_prob.Rng.create ~seed in
  let geometries =
    Array.init samples (fun _ ->
        ( Rfid_prob.Rng.uniform rng ~lo:0. ~hi:max_distance,
          Rfid_prob.Rng.uniform rng ~lo:0. ~hi:Float.pi ))
  in
  let outcomes =
    Array.map
      (fun (d, theta) -> Rfid_prob.Rng.bernoulli rng ~p:(read_prob ~d ~theta))
      geometries
  in
  fit_from_pairs ~l2 ~geometries ~outcomes ()

let mean_abs_error model ~read_prob ?(max_distance = 6.) ?(grid = 40) () =
  if grid <= 1 then invalid_arg "Supervised.mean_abs_error: grid too small";
  let acc = ref 0. and n = ref 0 in
  for i = 0 to grid - 1 do
    for j = 0 to grid - 1 do
      let d = float_of_int i /. float_of_int (grid - 1) *. max_distance in
      let theta = float_of_int j /. float_of_int (grid - 1) *. Float.pi in
      let p_true = read_prob ~d ~theta in
      let p_model = Sensor_model.read_prob_at model ~d ~theta in
      acc := !acc +. Float.abs (p_true -. p_model);
      incr n
    done
  done;
  !acc /. float_of_int !n
