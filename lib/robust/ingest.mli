(** Validating front door for observation streams.

    Real deployments do not deliver the clean, strictly-increasing
    epoch sequence the inference engine's contract assumes: positioning
    units emit NaN during outages, middleware duplicates and reorders
    records, and readers pick up tags from outside the deployment's
    universe. The guard classifies each incoming observation against a
    small fault taxonomy and applies a configurable per-fault policy —
    repair, discard, or stop — so the engine behind it only ever sees
    admissible input, and every intervention is counted. *)

type fault =
  | Nonfinite_fix  (** NaN/infinite coordinate in the reported fix *)
  | Out_of_bounds_fix  (** finite fix far outside the deployment bounds *)
  | Negative_epoch
  | Duplicate_epoch  (** same epoch as the last admitted record *)
  | Out_of_order_epoch  (** epoch earlier than the last admitted record *)
  | Epoch_gap  (** forward jump larger than [max_gap] epochs *)
  | Out_of_range_tag  (** negative tag id, or object id >= [max_object_id] *)

val all_faults : fault list
(** Every fault, in {!fault_name} display order — drives the
    fault-matrix tests and the counter read-outs. *)

val fault_name : fault -> string
(** Stable kebab-case name (e.g. ["nonfinite-fix"]), used in log lines,
    bench JSON, and the ["ingest.fault.*"] observability counters. *)

(** What to do when a fault trips. [Clamp] repairs the record in place
    (substitute the last good fix, clamp coordinates into bounds,
    re-time a bad epoch to [last + 1], strip invalid tags — for a gap it
    just counts and admits). [Drop] discards the offending part: the
    whole record for epoch/tag faults, only the fix for location faults
    (the epoch is then processed in degraded dead-reckoning mode).
    [Halt] stops the stream with an error value. *)
type policy = Drop | Clamp | Halt

val policy_name : policy -> string
(** ["drop"], ["clamp"] or ["halt"] — the CLI flag spelling. *)

type policies = {
  on_nonfinite_fix : policy;
  on_out_of_bounds_fix : policy;
  on_negative_epoch : policy;
  on_duplicate_epoch : policy;
  on_out_of_order_epoch : policy;
  on_epoch_gap : policy;
  on_out_of_range_tag : policy;
}

val default_policies : policies
(** Conservative defaults: repair what is safely repairable
    (out-of-bounds fixes, bad tags, gaps), drop what is not (non-finite
    fixes — degrading the epoch — plus negative and duplicate epochs),
    and halt on out-of-order epochs, which usually indicate a broken
    transport rather than a noisy sensor. *)

val uniform_policies : policy -> policies
(** The same policy for every fault — used by the fault-matrix tests. *)

type decision =
  | Accept of Rfid_model.Types.observation
      (** possibly repaired; feed to {!Rfid_core.Engine.step} *)
  | Degraded of Rfid_model.Types.epoch * Rfid_model.Types.tag list
      (** fix rejected but timeline advanced; the epoch's validated tag
          readings ride along (shelf tags among them still localize the
          reader). Feed to {!Rfid_core.Engine.step_degraded}. *)
  | Rejected  (** record discarded entirely *)
  | Halted of fault * string  (** a [Halt] policy tripped *)

type t

val create :
  ?policies:policies ->
  ?bounds:Rfid_geom.Box2.t ->
  ?bounds_margin:float ->
  ?max_object_id:int ->
  ?max_gap:int ->
  unit ->
  t
(** [bounds] (typically {!Rfid_model.World.bounding_box}) enables the
    out-of-bounds check, with [bounds_margin] slack (default 10) on
    every side. [max_object_id] enables the object-id range check
    (valid ids are [0 .. max_object_id - 1]). [max_gap] (default 100)
    is the largest tolerated forward epoch jump. *)

val admit : t -> Rfid_model.Types.observation -> decision
(** Classify one observation, update the guard's timeline state and
    counters, and say what to do with it. Never raises. *)

val count : t -> fault -> int
(** Times [fault] has tripped on this guard instance. *)

val counters : t -> (fault * int) list
(** Every fault with its count, in {!all_faults} order. *)

val total_faults : t -> int
(** Sum of all fault counts on this guard instance. *)

val advance_timeline : t -> Rfid_model.Types.epoch -> unit
(** Fast-forward the guard's last-admitted-epoch marker (no-op if it is
    already at or past [epoch]). Recovery uses this to seed a fresh
    guard from a checkpoint's epoch, and to keep the timeline in step
    while replaying write-ahead-log entries that bypass {!admit} (see
    [Rfid_robust.Wal.replay]). The last-good-fix memory is {e not}
    restored — it is not persisted — so the first post-recovery
    non-finite fix under a [Clamp] policy dead-reckons instead of
    repairing from a pre-crash fix (conservative, never wrong). *)

val step_engine :
  t ->
  Rfid_core.Engine.t ->
  Rfid_model.Types.observation ->
  (Rfid_core.Event.t list, fault * string) result
(** {!admit} one observation and route it to the engine: [Accept] →
    {!Rfid_core.Engine.step}, [Degraded] →
    {!Rfid_core.Engine.step_degraded}, [Rejected] → no-op. *)

val run_engine :
  t ->
  Rfid_core.Engine.t ->
  Rfid_model.Types.observation list ->
  (Rfid_core.Event.t list, fault * string) result
(** Run a whole stream through {!step_engine} and finish with
    {!Rfid_core.Engine.flush}; stops at the first [Halted] decision. *)

val pp_counters : Format.formatter -> t -> unit
(** Human-readable fault summary: the non-zero counters as
    ["name: n"] pairs, or ["no faults"]. *)
