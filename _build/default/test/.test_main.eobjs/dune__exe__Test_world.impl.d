test/test_world.ml: Alcotest List QCheck Rfid_geom Rfid_model Util World
