lib/stream/location_update.mli: Format Rfid_core Rfid_geom Rfid_model
