test/test_models.ml: Alcotest Format Location_sensing Motion_model Object_model Params Reader_state Rfid_geom Rfid_model Sensor_model Util Vec3 World
