lib/model/generative.ml: Array List Location_sensing Motion_model Object_model Params Reader_state Rfid_prob Sensor_model Trace Types World
