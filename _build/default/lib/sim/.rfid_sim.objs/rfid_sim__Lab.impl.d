lib/sim/lab.ml: Array Box2 Float Fun List Printf Reader_state Rfid_geom Rfid_model Rfid_prob Trace_gen Truth_sensor Vec3 World
