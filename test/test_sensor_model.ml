open Rfid_model

let test_coef_roundtrip () =
  let m = Sensor_model.default in
  let m' = Sensor_model.of_coef (Sensor_model.to_coef m) in
  Alcotest.(check bool) "roundtrip" true (m = m');
  Util.check_raises_invalid "bad length" (fun () ->
      ignore (Sensor_model.of_coef [| 1.; 2. |]))

let test_features () =
  let f = Sensor_model.features ~d:2. ~theta:(-0.5) in
  Alcotest.(check int) "feature length" 5 (Array.length f);
  Util.check_close "intercept" 1. f.(0);
  Util.check_close "d" 2. f.(1);
  Util.check_close "d^2" 4. f.(2);
  Util.check_close "|theta|" 0.5 f.(3);
  Util.check_close "theta^2" 0.25 f.(4)

let test_monotone_decay () =
  let m = Sensor_model.default in
  let p0 = Sensor_model.read_prob_at m ~d:0.5 ~theta:0. in
  let p1 = Sensor_model.read_prob_at m ~d:2. ~theta:0. in
  let p2 = Sensor_model.read_prob_at m ~d:5. ~theta:0. in
  Alcotest.(check bool) "decays with distance" true (p0 > p1 && p1 > p2);
  let q1 = Sensor_model.read_prob_at m ~d:1. ~theta:0.2 in
  let q2 = Sensor_model.read_prob_at m ~d:1. ~theta:1.0 in
  Alcotest.(check bool) "decays with angle" true (q1 > q2);
  Alcotest.(check bool) "angle symmetric" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:0.5
    = Sensor_model.read_prob_at m ~d:1. ~theta:(-0.5))

let test_geometry () =
  let reader_loc = Util.vec3 0. 0. 0. in
  let d, theta =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 3. 0. 4.)
  in
  Util.check_close "3d distance" 5. d;
  Util.check_close ~eps:1e-9 "head-on angle" 0. theta;
  let _, theta_side =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 0. 2. 0.)
  in
  Util.check_close ~eps:1e-9 "side angle" (Float.pi /. 2.) theta_side;
  (* Tag at the reader's own position: defined as angle 0. *)
  let d0, th0 = Sensor_model.geometry ~reader_loc ~reader_heading:1. ~tag_loc:reader_loc in
  Util.check_close "self distance" 0. d0;
  Util.check_close "self angle" 0. th0;
  (* Heading wrap: tag just across the -pi seam. *)
  let _, thw =
    Sensor_model.geometry ~reader_loc ~reader_heading:Float.pi
      ~tag_loc:(Util.vec3 (-1.) (-0.001) 0.)
  in
  Alcotest.(check bool) "wrapped angle small" true (thw < 0.01)

let test_log_prob_consistency () =
  let m = Sensor_model.default in
  let reader_loc = Util.vec3 0. 0. 0. and tag_loc = Util.vec3 1.5 0.3 0. in
  let p = Sensor_model.read_prob m ~reader_loc ~reader_heading:0. ~tag_loc in
  Util.check_close ~eps:1e-9 "log p(read)" (log p)
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:true);
  Util.check_close ~eps:1e-9 "log p(miss)" (log (1. -. p))
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:false)

let test_detection_range () =
  let m = Sensor_model.default in
  let r = Sensor_model.detection_range m in
  (* Just inside the range the probability is above threshold; just
     outside it is below. *)
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:(r -. 0.05) ~theta:0. >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:(r +. 0.05) ~theta:0. < 0.02);
  (* A model that never reads anything. *)
  let dead = Sensor_model.of_coef [| -10.; 0.; 0.; 0.; 0. |] in
  Util.check_close "dead model range" 0. (Sensor_model.detection_range dead);
  (* A model with no distance decay saturates at the search cap. *)
  let flat = Sensor_model.of_coef [| 3.; 0.; 0.; -1.; -1. |] in
  Util.check_close "flat model range" 100. (Sensor_model.detection_range flat)

let test_detection_half_angle () =
  let m = Sensor_model.default in
  let a = Sensor_model.detection_half_angle m ~d:1. in
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a -. 0.01) >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a +. 0.01) < 0.02);
  (* Omnidirectional in angle at close range. *)
  let omni = Sensor_model.of_coef [| 5.; -1.; 0.; 0.; 0. |] in
  Util.check_close "omni half angle" Float.pi
    (Sensor_model.detection_half_angle omni ~d:0.5)

let test_initialization_cone () =
  let m = Sensor_model.default in
  let c =
    Sensor_model.initialization_cone m ~reader_loc:(Util.vec3 1. 1. 0.)
      ~reader_heading:0.5
  in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "overestimated range" (1.25 *. r) c.Rfid_geom.Cone.range;
  Util.check_close "apex" 1. c.Rfid_geom.Cone.apex.Rfid_geom.Vec3.x;
  Util.check_close "heading" 0.5 c.Rfid_geom.Cone.heading

let test_sensing_region_box () =
  let m = Sensor_model.default in
  let b = Sensor_model.sensing_region_box m ~reader_loc:(Util.vec3 0. 0. 0.) in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "box half width" r b.Rfid_geom.Box2.max_x

let prop_read_prob_in_unit =
  Util.qcheck "read prob in [0,1] for any coefficients"
    QCheck.(
      pair
        (array_of_size (Gen.return 5) (float_range (-20.) 20.))
        (pair (float_range 0. 50.) (float_range (-4.) 4.)))
    (fun (coef, (d, theta)) ->
      let m = Sensor_model.of_coef coef in
      let p = Sensor_model.read_prob_at m ~d ~theta in
      p >= 0. && p <= 1.)

(* A memo over [n] random poses, with the pose data kept as plain
   arrays for reference computations against [log_prob]. *)
let random_memo ?(n = 24) m rng =
  let pre = Sensor_model.precompute m ~n in
  let poses =
    Array.init n (fun i ->
        let x = Rfid_prob.Rng.uniform rng ~lo:(-10.) ~hi:10. in
        let y = Rfid_prob.Rng.uniform rng ~lo:(-10.) ~hi:10. in
        let z = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
        let heading = Rfid_prob.Rng.uniform rng ~lo:(-7.) ~hi:7. in
        Sensor_model.pre_set_pose pre i ~x ~y ~z ~heading;
        (x, y, z, heading))
  in
  (pre, poses)

let test_memo_bit_identical () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:77 in
  let pre, poses = random_memo m rng in
  for _ = 1 to 200 do
    let i = Rfid_prob.Rng.int rng (Array.length poses) in
    let x, y, z, heading = poses.(i) in
    let tx = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let ty = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let tz = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
    let read = Rfid_prob.Rng.bool rng in
    let expected =
      Sensor_model.log_prob m ~reader_loc:(Util.vec3 x y z) ~reader_heading:heading
        ~tag_loc:(Util.vec3 tx ty tz) ~read
    in
    Alcotest.(check (float 0.)) "log_prob_pre bit-identical to log_prob" expected
      (Sensor_model.log_prob_pre pre i ~tx ~ty ~tz ~read)
  done;
  Util.check_raises_invalid "pose index out of range" (fun () ->
      ignore (Sensor_model.log_prob_pre pre (-1) ~tx:0. ~ty:0. ~tz:0. ~read:true))

let test_accumulate_store_matches_per_particle () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:78 in
  let pre, _ = random_memo m rng in
  let k = 60 in
  let store = Rfid_prob.Particle_store.create ~n:k in
  let reference = Array.make k 0. in
  for i = 0 to k - 1 do
    let x = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let y = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let z = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
    let lw0 = Rfid_prob.Rng.uniform rng ~lo:(-1.) ~hi:0. in
    Rfid_prob.Particle_store.set_loc store i ~x ~y ~z;
    Rfid_prob.Particle_store.set_log_w store i lw0;
    Rfid_prob.Particle_store.set_reader store i
      (Rfid_prob.Rng.int rng (Sensor_model.pre_size pre));
    reference.(i) <- lw0
  done;
  List.iter
    (fun read ->
      for i = 0 to k - 1 do
        reference.(i) <-
          reference.(i)
          +. Sensor_model.log_prob_pre pre
               (Rfid_prob.Particle_store.reader store i)
               ~tx:(Rfid_prob.Particle_store.x store i)
               ~ty:(Rfid_prob.Particle_store.y store i)
               ~tz:(Rfid_prob.Particle_store.z store i)
               ~read
      done;
      ignore (Sensor_model.pre_accumulate_store pre store ~read : int);
      for i = 0 to k - 1 do
        Alcotest.(check (float 0.)) "store accumulation bit-identical" reference.(i)
          (Rfid_prob.Particle_store.log_w store i)
      done)
    [ true; false ]

let test_accumulate_tag_matches_per_pose () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:79 in
  let pre, _ = random_memo m rng in
  let n = Sensor_model.pre_size pre in
  let tx = 1.5 and ty = -2.25 and tz = 1. in
  let miss_weight = 0.35 in
  List.iter
    (fun read ->
      let got = Array.make n 0.125 in
      let expected = Array.make n 0.125 in
      for r = 0 to n - 1 do
        let l = Sensor_model.log_prob_pre pre r ~tx ~ty ~tz ~read in
        let l = if read then l else miss_weight *. l in
        expected.(r) <- expected.(r) +. l
      done;
      ignore (Sensor_model.pre_accumulate_tag pre ~tx ~ty ~tz ~read ~miss_weight got : int);
      Alcotest.(check (array (float 0.))) "tag accumulation bit-identical" expected got)
    [ true; false ];
  Util.check_raises_invalid "short accumulator" (fun () ->
      ignore
        (Sensor_model.pre_accumulate_tag pre ~tx ~ty ~tz ~read:true ~miss_weight:1.
           (Array.make (n - 1) 0.)
          : int))

let test_accumulate_joint_matches_per_row () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:80 in
  let pre, _ = random_memo ~n:8 m rng in
  let n = Sensor_model.pre_size pre in
  let num_objects = 5 in
  let store = Rfid_prob.Particle_store.create ~n:(n * num_objects) in
  for s = 0 to (n * num_objects) - 1 do
    Rfid_prob.Particle_store.set_loc store s
      ~x:(Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12.)
      ~y:(Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12.)
      ~z:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3.)
  done;
  List.iter
    (fun read ->
      let obj = 3 in
      let got = Array.make n 0. in
      let expected = Array.make n 0. in
      for r = 0 to n - 1 do
        let s = (r * num_objects) + obj in
        expected.(r) <-
          expected.(r)
          +. Sensor_model.log_prob_pre pre r
               ~tx:(Rfid_prob.Particle_store.x store s)
               ~ty:(Rfid_prob.Particle_store.y store s)
               ~tz:(Rfid_prob.Particle_store.z store s)
               ~read
      done;
      ignore (Sensor_model.pre_accumulate_joint_obj pre store ~obj ~num_objects ~read got : int);
      Alcotest.(check (array (float 0.))) "joint accumulation bit-identical" expected got)
    [ true; false ];
  Util.check_raises_invalid "object out of range" (fun () ->
      ignore
        (Sensor_model.pre_accumulate_joint_obj pre store ~obj:num_objects ~num_objects
           ~read:true (Array.make n 0.)
          : int))

(* --- Exact saturation culling ------------------------------------- *)

let bits = Int64.bits_of_float
let neg_zero_bits = Int64.bits_of_float (-0.0)

let test_exp_underflow_saturates () =
  let z = Rfid_prob.Logistic.exp_underflow in
  Alcotest.(check int64) "miss term saturates to -0.0 at the bound" neg_zero_bits
    (bits (Rfid_prob.Logistic.log_sigmoid (-.z)));
  Alcotest.(check int64) "and stays saturated far below it" neg_zero_bits
    (bits (Rfid_prob.Logistic.log_sigmoid (-.(z -. 1e6))));
  (* Adding -0.0 is a bitwise no-op on either zero — the property the
     cull rests on. *)
  Alcotest.(check int64) "+0.0 accumulator preserved" (bits 0.0) (bits (0.0 +. -0.0));
  Alcotest.(check int64) "-0.0 accumulator preserved" neg_zero_bits
    (bits (-0.0 +. -0.0))

let test_saturation_radius_default () =
  let m = Sensor_model.default in
  let r = Sensor_model.saturation_radius m in
  Alcotest.(check bool) "finite for the default model" true (Float.is_finite r);
  Alcotest.(check bool) "plausible magnitude" true (r > 10. && r < 200.);
  (* Beyond the radius the miss term is exactly -0.0, at any angle. *)
  let reader_loc = Util.vec3 0. 0. 0. in
  List.iter
    (fun (scale, heading) ->
      let d = r *. scale in
      let l =
        Sensor_model.log_prob m ~reader_loc ~reader_heading:heading
          ~tag_loc:(Util.vec3 d 0. 0.) ~read:false
      in
      Alcotest.(check int64)
        (Printf.sprintf "miss saturated at %gx radius" scale)
        neg_zero_bits (bits l))
    [ (1.0000001, 0.); (1.01, 2.5); (2., -3.); (10., 1.) ];
  (* Inside the radius it is not. *)
  let l_in =
    Sensor_model.log_prob m ~reader_loc ~reader_heading:0.
      ~tag_loc:(Util.vec3 (r *. 0.5) 0. 0.) ~read:false
  in
  Alcotest.(check bool) "not saturated at half the radius" true
    (bits l_in <> neg_zero_bits);
  (* Models the closed form does not cover disable culling. *)
  let flat = Sensor_model.of_coef [| 3.; 0.; 0.; -1.; -1. |] in
  Alcotest.(check bool) "no distance decay => infinite radius" true
    (Sensor_model.saturation_radius flat = infinity);
  let nan_model = Sensor_model.of_coef [| Float.nan; -1.; -1.; 0.; 0. |] in
  Alcotest.(check bool) "non-finite coefficient => infinite radius" true
    (Sensor_model.saturation_radius nan_model = infinity);
  (* A model saturated everywhere culls from distance zero. *)
  let dead = Sensor_model.of_coef [| -800.; 0.; -1.; 0.; 0. |] in
  Util.check_close "always-saturated model radius"
    0. (Sensor_model.saturation_radius dead) ~eps:1e-6

let test_accumulate_culls_match_reference () =
  (* Poses near the origin, particles straddling the saturation
     radius: the kernels must report culls and still produce
     bit-identical accumulators. *)
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:81 in
  let r = Sensor_model.saturation_radius m in
  let n = 12 in
  let pre = Sensor_model.precompute m ~n in
  for i = 0 to n - 1 do
    Sensor_model.pre_set_pose pre i
      ~x:(Rfid_prob.Rng.uniform rng ~lo:(-1.) ~hi:1.)
      ~y:(Rfid_prob.Rng.uniform rng ~lo:(-1.) ~hi:1.)
      ~z:0.
      ~heading:(Rfid_prob.Rng.uniform rng ~lo:(-3.) ~hi:3.)
  done;
  let k = 40 in
  let store = Rfid_prob.Particle_store.create ~n:k in
  for i = 0 to k - 1 do
    let d = r *. Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
    let a = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:6.28 in
    Rfid_prob.Particle_store.set_loc store i ~x:(d *. cos a) ~y:(d *. sin a) ~z:0.;
    Rfid_prob.Particle_store.set_reader store i (Rfid_prob.Rng.int rng n)
  done;
  let reference = Array.make k 0. in
  let expect read =
    for i = 0 to k - 1 do
      reference.(i) <-
        Rfid_prob.Particle_store.log_w store i
        +. Sensor_model.log_prob_pre pre
             (Rfid_prob.Particle_store.reader store i)
             ~tx:(Rfid_prob.Particle_store.x store i)
             ~ty:(Rfid_prob.Particle_store.y store i)
             ~tz:(Rfid_prob.Particle_store.z store i)
             ~read
    done
  in
  expect false;
  let culled = Sensor_model.pre_accumulate_store pre store ~read:false in
  Alcotest.(check bool) "store cull fired" true (culled > 0 && culled < k);
  for i = 0 to k - 1 do
    Alcotest.(check int64) "store bit-identical under cull"
      (bits reference.(i))
      (bits (Rfid_prob.Particle_store.log_w store i))
  done;
  expect true;
  let culled_read = Sensor_model.pre_accumulate_store pre store ~read:true in
  Alcotest.(check int) "read terms never culled" 0 culled_read;
  for i = 0 to k - 1 do
    Alcotest.(check int64) "store read bit-identical"
      (bits reference.(i))
      (bits (Rfid_prob.Particle_store.log_w store i))
  done;
  (* Tag kernel: a distant tag culls every pose, but only when the miss
     weight keeps the scaled term exactly -0.0. *)
  let far = r *. 2. in
  List.iter
    (fun (mw, expect_cull) ->
      let got = Array.init n (fun i -> float_of_int i *. 0.125) in
      let expected =
        Array.mapi
          (fun i acc0 ->
            let l = Sensor_model.log_prob_pre pre i ~tx:far ~ty:0. ~tz:0. ~read:false in
            acc0 +. (mw *. l))
          got
      in
      let culled =
        Sensor_model.pre_accumulate_tag pre ~tx:far ~ty:0. ~tz:0. ~read:false
          ~miss_weight:mw got
      in
      Alcotest.(check int)
        (Printf.sprintf "tag cull count at miss_weight %g" mw)
        (if expect_cull then n else 0)
        culled;
      Array.iteri
        (fun i e ->
          Alcotest.(check int64) "tag bit-identical under cull" (bits e) (bits got.(i)))
        expected)
    [ (1.0, true); (0.35, true); (0.0, true); (-0.5, false) ];
  (* Joint kernel: same distant-location cull. *)
  let num_objects = 3 in
  let jstore = Rfid_prob.Particle_store.create ~n:(n * num_objects) in
  for s = 0 to (n * num_objects) - 1 do
    Rfid_prob.Particle_store.set_loc jstore s ~x:far ~y:0. ~z:0.
  done;
  let got = Array.make n 0.5 in
  let expected =
    Array.init n (fun i ->
        0.5 +. Sensor_model.log_prob_pre pre i ~tx:far ~ty:0. ~tz:0. ~read:false)
  in
  let culled_joint =
    Sensor_model.pre_accumulate_joint_obj pre jstore ~obj:1 ~num_objects ~read:false got
  in
  Alcotest.(check int) "joint cull count" n culled_joint;
  Array.iteri
    (fun i e -> Alcotest.(check int64) "joint bit-identical" (bits e) (bits got.(i)))
    expected

let test_nan_pose_disables_cull () =
  let m = Sensor_model.default in
  let r = Sensor_model.saturation_radius m in
  let pre = Sensor_model.precompute m ~n:4 in
  for i = 0 to 3 do
    Sensor_model.pre_set_pose pre i ~x:0. ~y:0. ~z:0. ~heading:0.
  done;
  Sensor_model.pre_set_pose pre 2 ~x:0. ~y:0. ~z:0. ~heading:Float.nan;
  let got = Array.make 4 0. in
  let culled =
    Sensor_model.pre_accumulate_tag pre ~tx:(r *. 2.) ~ty:0. ~tz:0. ~read:false
      ~miss_weight:1.0 got
  in
  Alcotest.(check int) "cull disabled while a pose is non-finite" 0 culled;
  Alcotest.(check bool) "NaN pose yields NaN term" true (Float.is_nan got.(2));
  (* Restoring the pose re-enables the cull. *)
  Sensor_model.pre_set_pose pre 2 ~x:0. ~y:0. ~z:0. ~heading:0.;
  let got = Array.make 4 0. in
  let culled =
    Sensor_model.pre_accumulate_tag pre ~tx:(r *. 2.) ~ty:0. ~tz:0. ~read:false
      ~miss_weight:1.0 got
  in
  Alcotest.(check int) "cull re-enabled" 4 culled

let test_pre_stamp_eviction () =
  let m = Sensor_model.default in
  let pre = Sensor_model.precompute m ~n:3 in
  Sensor_model.pre_set_pose pre 0 ~x:1. ~y:2. ~z:0. ~heading:0.5;
  let s0 = Sensor_model.pre_stamp pre in
  Alcotest.(check bool) "identical pose skipped" false
    (Sensor_model.pre_set_pose_checked pre 0 ~x:1. ~y:2. ~z:0. ~heading:0.5);
  Alcotest.(check int) "stamp unchanged on skip" s0 (Sensor_model.pre_stamp pre);
  (* Zero-sign change is a change: slots start at +0.0. *)
  Alcotest.(check bool) "-0.0 over +0.0 writes" true
    (Sensor_model.pre_set_pose_checked pre 1 ~x:(-0.0) ~y:0. ~z:0. ~heading:0.);
  let s1 = Sensor_model.pre_stamp pre in
  Alcotest.(check bool) "stamp bumped by the write" true (s1 > s0);
  Alcotest.(check bool) "-0.0 now in place" false
    (Sensor_model.pre_set_pose_checked pre 1 ~x:(-0.0) ~y:0. ~z:0. ~heading:0.);
  (* NaN never compares equal: always a write. *)
  Alcotest.(check bool) "NaN pose writes" true
    (Sensor_model.pre_set_pose_checked pre 2 ~x:0. ~y:0. ~z:0. ~heading:Float.nan);
  Alcotest.(check bool) "NaN pose writes again" true
    (Sensor_model.pre_set_pose_checked pre 2 ~x:0. ~y:0. ~z:0. ~heading:Float.nan);
  (* Size-preserving resize keeps the stamp; a size change evicts it. *)
  let s2 = Sensor_model.pre_stamp pre in
  Sensor_model.pre_resize pre 3;
  Alcotest.(check int) "same-size resize keeps stamp" s2 (Sensor_model.pre_stamp pre);
  Sensor_model.pre_resize pre 5;
  Alcotest.(check bool) "resize evicts stamp" true (Sensor_model.pre_stamp pre > s2)

let prop_cull_bit_identical =
  Util.qcheck ~count:300 "culled tag kernel bit-identical over random models"
    QCheck.(
      pair
        (pair
           (pair (float_range (-10.) 10.) (float_range (-3.) (-0.01)))
           (pair (float_range (-3.) 0.)
              (pair (float_range (-3.) 3.) (float_range (-3.) 3.))))
        (pair
           (pair (float_range 0. 2.5) (float_range (-3.2) 3.2))
           (float_range (-1.) 1.)))
    (fun (((a0, a2), (a1, (b1, b2))), ((f, ang), mw)) ->
      let m = Sensor_model.of_coef [| a0; a1; a2; b1; b2 |] in
      let r = Sensor_model.saturation_radius m in
      (* Tag distances concentrate around the radius (f in [0, 2.5]),
         so points land on both sides of — and straddle — the cut. *)
      let d = (if Float.is_finite r then r else 50.) *. f in
      let n = 5 in
      let pre = Sensor_model.precompute m ~n in
      for i = 0 to n - 1 do
        Sensor_model.pre_set_pose pre i
          ~x:(0.3 *. float_of_int i)
          ~y:(-0.2 *. float_of_int i)
          ~z:(0.1 *. float_of_int i)
          ~heading:(ang *. float_of_int i)
      done;
      let tx = d *. cos ang and ty = d *. sin ang and tz = 0.4 in
      List.for_all
        (fun read ->
          let got = Array.init n (fun i -> 0.25 *. float_of_int (i - 2)) in
          let expected =
            Array.mapi
              (fun i acc0 ->
                let l = Sensor_model.log_prob_pre pre i ~tx ~ty ~tz ~read in
                acc0 +. (if read then l else mw *. l))
              got
          in
          ignore
            (Sensor_model.pre_accumulate_tag pre ~tx ~ty ~tz ~read ~miss_weight:mw got
              : int);
          Array.for_all2
            (fun e g -> Int64.bits_of_float e = Int64.bits_of_float g)
            expected got)
        [ true; false ])

let suite =
  ( "sensor_model",
    [
      Alcotest.test_case "coef roundtrip" `Quick test_coef_roundtrip;
      Alcotest.test_case "features" `Quick test_features;
      Alcotest.test_case "monotone decay" `Quick test_monotone_decay;
      Alcotest.test_case "geometry" `Quick test_geometry;
      Alcotest.test_case "log prob consistency" `Quick test_log_prob_consistency;
      Alcotest.test_case "detection range" `Quick test_detection_range;
      Alcotest.test_case "detection half angle" `Quick test_detection_half_angle;
      Alcotest.test_case "initialization cone" `Quick test_initialization_cone;
      Alcotest.test_case "sensing region box" `Quick test_sensing_region_box;
      prop_read_prob_in_unit;
      Alcotest.test_case "memo bit-identical to log_prob" `Quick test_memo_bit_identical;
      Alcotest.test_case "batched store accumulation bit-identical" `Quick
        test_accumulate_store_matches_per_particle;
      Alcotest.test_case "batched tag accumulation bit-identical" `Quick
        test_accumulate_tag_matches_per_pose;
      Alcotest.test_case "batched joint accumulation bit-identical" `Quick
        test_accumulate_joint_matches_per_row;
      Alcotest.test_case "exp_underflow saturates exactly" `Quick
        test_exp_underflow_saturates;
      Alcotest.test_case "saturation radius (default model)" `Quick
        test_saturation_radius_default;
      Alcotest.test_case "saturation cull matches reference" `Quick
        test_accumulate_culls_match_reference;
      Alcotest.test_case "NaN pose disables cull" `Quick test_nan_pose_disables_cull;
      Alcotest.test_case "pose fingerprint eviction" `Quick test_pre_stamp_eviction;
      prop_cull_bit_identical;
    ] )
