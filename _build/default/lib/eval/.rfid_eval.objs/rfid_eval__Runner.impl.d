lib/eval/runner.ml: Array Gc Int List Metrics Rfid_core Rfid_model Sys Unix
