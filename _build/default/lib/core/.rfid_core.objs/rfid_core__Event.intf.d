lib/core/event.mli: Format Rfid_geom Rfid_model Rfid_prob
