lib/core/engine.ml: Basic_filter Config Event Factored_filter Hashtbl List Queue Rfid_model Rfid_prob
