test/test_stats.ml: Alcotest Array Float Gen QCheck Rfid_prob Stats Util
