(* Bechamel micro-benchmarks of the engine's inner loops — one
   [Test.make] per experiment family, so the per-operation costs behind
   each table are measurable in isolation. (The accuracy tables
   themselves are produced by {!Experiments}; Bechamel measures time,
   not error.) *)

open Bechamel
open Toolkit

let sensor_model_test =
  let sensor = Rfid_model.Sensor_model.default in
  let reader_loc = Rfid_geom.Vec3.make 0. 0. 0. in
  let tag_loc = Rfid_geom.Vec3.make 2. 0.5 0. in
  Test.make ~name:"sensor log_prob (fig5e/f inner loop)"
    (Staged.stage (fun () ->
         ignore
           (Rfid_model.Sensor_model.log_prob sensor ~reader_loc ~reader_heading:0.
              ~tag_loc ~read:true)))

let resample_test =
  let rng = Rfid_prob.Rng.create ~seed:1 in
  let w =
    Rfid_prob.Stats.normalize (Array.init 200 (fun i -> 1. +. float_of_int (i mod 7)))
  in
  Test.make ~name:"systematic resample, 200 particles (fig5i inner loop)"
    (Staged.stage (fun () -> ignore (Rfid_prob.Resample.systematic rng w ~n:200)))

let rtree_test =
  let rng = Rfid_prob.Rng.create ~seed:2 in
  let t = Rfid_geom.Rtree.create () in
  for i = 0 to 999 do
    let x = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:500. in
    let y = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:10. in
    Rfid_geom.Rtree.insert t
      (Rfid_geom.Box2.make ~min_x:x ~min_y:y ~max_x:(x +. 8.) ~max_y:(y +. 8.))
      i
  done;
  let probe = Rfid_geom.Box2.make ~min_x:200. ~min_y:0. ~max_x:210. ~max_y:10. in
  Test.make ~name:"R-tree probe over 1000 sensing boxes (fig5j inner loop)"
    (Staged.stage (fun () -> ignore (Rfid_geom.Rtree.query t probe)))

let gaussian_fit_test =
  let rng = Rfid_prob.Rng.create ~seed:3 in
  let pts =
    Array.init 200 (fun _ ->
        [|
          Rfid_prob.Rng.gaussian rng (); Rfid_prob.Rng.gaussian rng ();
          Rfid_prob.Rng.gaussian rng ();
        |])
  in
  Test.make ~name:"belief compression: 200-particle Gaussian fit (fig5i/j)"
    (Staged.stage (fun () -> ignore (Rfid_prob.Gaussian.fit pts)))

let engine_step_test =
  (* Cost of one full engine step on a warm mid-scan state. The engine
     refuses epoch regressions, so the staged closure advances a private
     epoch counter on a pre-warmed engine with recurring observations
     rebuilt per call. *)
  let built = Scenarios.warehouse_trace ~num_objects:100 ~seed:161 () in
  let trace = built.Scenarios.trace in
  let params = Scenarios.cone_params () in
  let engine =
    Rfid_core.Engine.create ~world:built.Scenarios.world ~params
      ~config:(Scenarios.engine_config ())
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~seed:9 ()
  in
  let warm = 60 in
  Array.iteri
    (fun i step ->
      if i < warm then
        ignore (Rfid_core.Engine.step engine step.Rfid_model.Trace.observation))
    trace.Rfid_model.Trace.steps;
  let template = trace.Rfid_model.Trace.steps.(warm).Rfid_model.Trace.observation in
  let next_epoch = ref (Rfid_core.Engine.epoch engine + 1) in
  Test.make ~name:"Engine.step, indexed, 100 objects (tput)"
    (Staged.stage (fun () ->
         let obs = { template with Rfid_model.Types.o_epoch = !next_epoch } in
         incr next_epoch;
         ignore (Rfid_core.Engine.step engine obs)))

let suite () =
  Test.make_grouped ~name:"rfid_streams"
    [ sensor_model_test; resample_test; rtree_test; gaussian_fit_test; engine_step_test ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.75) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (suite ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  results

let print_results () =
  Printf.printf "\n######## micro: Bechamel component benchmarks ########\n%!";
  let results = benchmark () in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-55s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "  %-55s (no estimate)\n" name)
          tbl)
    results
