type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from SplitMix64: xor-shift multiply mixing of the Weyl
   counter. Constants are Stafford's Mix13 variant. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let state t = t.state
let of_state s = { state = s }
let set_state t s = t.state <- s

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Keyed substream derivation: a pure function of the base state and the
   key — the base generator is NOT advanced, so the substream for a
   given key is the same no matter how many other substreams were
   derived before it, in what order, or on which domain. Two mixing
   rounds separate keys that differ in few bits (consecutive object ids
   and epochs are exactly that case). *)
let for_key t ~key =
  let s = mix64 (Int64.add t.state (Int64.mul golden_gamma key)) in
  { state = mix64 (Int64.logxor s golden_gamma) }

(* Pack two non-negative ints into one key. The first component is
   spread by a large odd multiplier, so distinct (id, epoch) pairs with
   small components — the only ones that occur — map to distinct keys
   far apart in key space. *)
let key_pair a b = Int64.(add (mul (of_int a) 0x2545F4914F6CDD1DL) (of_int b))

(* 53 random bits scaled into [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-38 for any
     bound below 2^24, and all our bounds are small. Keep 62 bits so the
     value is a non-negative OCaml int. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  bits mod n

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  float t < p

let gaussian t ?(mu = 0.) ?(sigma = 1.) () =
  if sigma < 0. then invalid_arg "Rng.gaussian: negative sigma";
  (* Marsaglia polar method; the second deviate is discarded to keep the
     generator state independent of call interleaving. *)
  let rec draw () =
    let u = (2. *. float t) -. 1. in
    let v = (2. *. float t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw ()
    else u *. sqrt (-2. *. log s /. s)
  in
  mu +. (sigma *. draw ())

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t) /. rate

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let categorical t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Rng.categorical: weights sum to 0";
  let u = float t *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.
