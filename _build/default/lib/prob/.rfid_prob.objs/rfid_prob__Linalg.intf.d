lib/prob/linalg.mli:
