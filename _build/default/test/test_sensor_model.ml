open Rfid_model

let test_coef_roundtrip () =
  let m = Sensor_model.default in
  let m' = Sensor_model.of_coef (Sensor_model.to_coef m) in
  Alcotest.(check bool) "roundtrip" true (m = m');
  Util.check_raises_invalid "bad length" (fun () ->
      ignore (Sensor_model.of_coef [| 1.; 2. |]))

let test_features () =
  let f = Sensor_model.features ~d:2. ~theta:(-0.5) in
  Alcotest.(check int) "feature length" 5 (Array.length f);
  Util.check_close "intercept" 1. f.(0);
  Util.check_close "d" 2. f.(1);
  Util.check_close "d^2" 4. f.(2);
  Util.check_close "|theta|" 0.5 f.(3);
  Util.check_close "theta^2" 0.25 f.(4)

let test_monotone_decay () =
  let m = Sensor_model.default in
  let p0 = Sensor_model.read_prob_at m ~d:0.5 ~theta:0. in
  let p1 = Sensor_model.read_prob_at m ~d:2. ~theta:0. in
  let p2 = Sensor_model.read_prob_at m ~d:5. ~theta:0. in
  Alcotest.(check bool) "decays with distance" true (p0 > p1 && p1 > p2);
  let q1 = Sensor_model.read_prob_at m ~d:1. ~theta:0.2 in
  let q2 = Sensor_model.read_prob_at m ~d:1. ~theta:1.0 in
  Alcotest.(check bool) "decays with angle" true (q1 > q2);
  Alcotest.(check bool) "angle symmetric" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:0.5
    = Sensor_model.read_prob_at m ~d:1. ~theta:(-0.5))

let test_geometry () =
  let reader_loc = Util.vec3 0. 0. 0. in
  let d, theta =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 3. 0. 4.)
  in
  Util.check_close "3d distance" 5. d;
  Util.check_close ~eps:1e-9 "head-on angle" 0. theta;
  let _, theta_side =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 0. 2. 0.)
  in
  Util.check_close ~eps:1e-9 "side angle" (Float.pi /. 2.) theta_side;
  (* Tag at the reader's own position: defined as angle 0. *)
  let d0, th0 = Sensor_model.geometry ~reader_loc ~reader_heading:1. ~tag_loc:reader_loc in
  Util.check_close "self distance" 0. d0;
  Util.check_close "self angle" 0. th0;
  (* Heading wrap: tag just across the -pi seam. *)
  let _, thw =
    Sensor_model.geometry ~reader_loc ~reader_heading:Float.pi
      ~tag_loc:(Util.vec3 (-1.) (-0.001) 0.)
  in
  Alcotest.(check bool) "wrapped angle small" true (thw < 0.01)

let test_log_prob_consistency () =
  let m = Sensor_model.default in
  let reader_loc = Util.vec3 0. 0. 0. and tag_loc = Util.vec3 1.5 0.3 0. in
  let p = Sensor_model.read_prob m ~reader_loc ~reader_heading:0. ~tag_loc in
  Util.check_close ~eps:1e-9 "log p(read)" (log p)
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:true);
  Util.check_close ~eps:1e-9 "log p(miss)" (log (1. -. p))
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:false)

let test_detection_range () =
  let m = Sensor_model.default in
  let r = Sensor_model.detection_range m in
  (* Just inside the range the probability is above threshold; just
     outside it is below. *)
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:(r -. 0.05) ~theta:0. >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:(r +. 0.05) ~theta:0. < 0.02);
  (* A model that never reads anything. *)
  let dead = Sensor_model.of_coef [| -10.; 0.; 0.; 0.; 0. |] in
  Util.check_close "dead model range" 0. (Sensor_model.detection_range dead);
  (* A model with no distance decay saturates at the search cap. *)
  let flat = Sensor_model.of_coef [| 3.; 0.; 0.; -1.; -1. |] in
  Util.check_close "flat model range" 100. (Sensor_model.detection_range flat)

let test_detection_half_angle () =
  let m = Sensor_model.default in
  let a = Sensor_model.detection_half_angle m ~d:1. in
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a -. 0.01) >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a +. 0.01) < 0.02);
  (* Omnidirectional in angle at close range. *)
  let omni = Sensor_model.of_coef [| 5.; -1.; 0.; 0.; 0. |] in
  Util.check_close "omni half angle" Float.pi
    (Sensor_model.detection_half_angle omni ~d:0.5)

let test_initialization_cone () =
  let m = Sensor_model.default in
  let c =
    Sensor_model.initialization_cone m ~reader_loc:(Util.vec3 1. 1. 0.)
      ~reader_heading:0.5
  in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "overestimated range" (1.25 *. r) c.Rfid_geom.Cone.range;
  Util.check_close "apex" 1. c.Rfid_geom.Cone.apex.Rfid_geom.Vec3.x;
  Util.check_close "heading" 0.5 c.Rfid_geom.Cone.heading

let test_sensing_region_box () =
  let m = Sensor_model.default in
  let b = Sensor_model.sensing_region_box m ~reader_loc:(Util.vec3 0. 0. 0.) in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "box half width" r b.Rfid_geom.Box2.max_x

let prop_read_prob_in_unit =
  Util.qcheck "read prob in [0,1] for any coefficients"
    QCheck.(
      pair
        (array_of_size (Gen.return 5) (float_range (-20.) 20.))
        (pair (float_range 0. 50.) (float_range (-4.) 4.)))
    (fun (coef, (d, theta)) ->
      let m = Sensor_model.of_coef coef in
      let p = Sensor_model.read_prob_at m ~d ~theta in
      p >= 0. && p <= 1.)

let suite =
  ( "sensor_model",
    [
      Alcotest.test_case "coef roundtrip" `Quick test_coef_roundtrip;
      Alcotest.test_case "features" `Quick test_features;
      Alcotest.test_case "monotone decay" `Quick test_monotone_decay;
      Alcotest.test_case "geometry" `Quick test_geometry;
      Alcotest.test_case "log prob consistency" `Quick test_log_prob_consistency;
      Alcotest.test_case "detection range" `Quick test_detection_range;
      Alcotest.test_case "detection half angle" `Quick test_detection_half_angle;
      Alcotest.test_case "initialization cone" `Quick test_initialization_cone;
      Alcotest.test_case "sensing region box" `Quick test_sensing_region_box;
      prop_read_prob_in_unit;
    ] )
