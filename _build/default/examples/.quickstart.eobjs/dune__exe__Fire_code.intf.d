examples/fire_code.mli:
