let () =
  Alcotest.run "rfid_streams"
    [
      Test_rng.suite;
      Test_par.suite;
      Test_stats.suite;
      Test_linalg.suite;
      Test_gaussian.suite;
      Test_resample.suite;
      Test_logistic.suite;
      Test_geom.suite;
      Test_types.suite;
      Test_world.suite;
      Test_sensor_model.suite;
      Test_models.suite;
      Test_generative.suite;
      Test_sim.suite;
      Test_core_filters.suite;
      Test_learn.suite;
      Test_baselines.suite;
      Test_stream.suite;
      Test_eval.suite;
      Test_trace_io.suite;
      Test_core_common.suite;
      Test_engine_policies.suite;
      Test_containment.suite;
      Test_integration.suite;
    ]
