type result = {
  events : Rfid_core.Event.t list;
  error : Metrics.error;
  total_readings : int;
  elapsed_s : float;
  ms_per_reading : float;
  max_objects_processed : int;
  live_heap_mb : float;
  epochs : int;
  minor_words_per_epoch : float;
  major_words_per_epoch : float;
  allocated_words_per_epoch : float;
  lat_p50_us : float;
  lat_p95_us : float;
  lat_p99_us : float;
}

(* Nearest-rank percentile over a sorted copy; 0 for an empty run. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(Int.min (n - 1) (int_of_float (q *. float_of_int n)))

let run_engine ?(params = Rfid_model.Params.default) ~config ?init_reader ?(seed = 0)
    (trace : Rfid_model.Trace.t) =
  let init_reader =
    match init_reader with
    | Some r -> r
    | None ->
        if Array.length trace.Rfid_model.Trace.steps = 0 then
          invalid_arg "Runner.run_engine: empty trace and no init_reader"
        else trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
  in
  let engine =
    Rfid_core.Engine.create ~world:trace.Rfid_model.Trace.world ~params ~config
      ~init_reader ~num_objects:trace.Rfid_model.Trace.num_objects ~seed ()
  in
  let observations = Rfid_model.Trace.observations trace in
  let total_readings =
    List.fold_left
      (fun acc (o : Rfid_model.Types.observation) ->
        acc + List.length o.Rfid_model.Types.o_read_tags)
      0 observations
  in
  let epochs = List.length observations in
  (* Per-epoch latencies land in a preallocated buffer so the
     measurement loop itself stays off the allocation counters (modulo
     a boxed float per gettimeofday call, identical across variants). *)
  let lat = Array.make (Int.max epochs 1) 0. in
  Gc.full_major ();
  let baseline_words = (Gc.stat ()).Gc.live_words in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let max_scope = ref 0 in
  let i = ref 0 in
  let events =
    List.concat_map
      (fun obs ->
        let e0 = Unix.gettimeofday () in
        let evs = Rfid_core.Engine.step engine obs in
        lat.(!i) <- Unix.gettimeofday () -. e0;
        incr i;
        max_scope :=
          Int.max !max_scope (Rfid_core.Engine.objects_processed_last_step engine);
        evs)
      observations
  in
  let events = events @ Rfid_core.Engine.flush engine in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  Gc.full_major ();
  let live_heap_mb =
    float_of_int (Int.max 0 ((Gc.stat ()).Gc.live_words - baseline_words))
    *. float_of_int (Sys.word_size / 8)
    /. 1_048_576.
  in
  let per_epoch x = if epochs = 0 then 0. else x /. float_of_int epochs in
  let minor_alloc = g1.Gc.minor_words -. g0.Gc.minor_words in
  (* Words allocated directly on the major heap: major growth minus what
     the minor collector promoted into it. *)
  let major_alloc =
    Float.max 0.
      (g1.Gc.major_words -. g0.Gc.major_words
      -. (g1.Gc.promoted_words -. g0.Gc.promoted_words))
  in
  let sorted = Array.sub lat 0 epochs in
  Array.sort compare sorted;
  let error = Metrics.inference_error events trace in
  {
    events;
    error;
    total_readings;
    elapsed_s;
    ms_per_reading =
      (if total_readings = 0 then 0. else 1000. *. elapsed_s /. float_of_int total_readings);
    max_objects_processed = !max_scope;
    live_heap_mb;
    epochs;
    minor_words_per_epoch = per_epoch minor_alloc;
    major_words_per_epoch = per_epoch major_alloc;
    allocated_words_per_epoch = per_epoch (minor_alloc +. major_alloc);
    lat_p50_us = 1e6 *. percentile sorted 0.50;
    lat_p95_us = 1e6 *. percentile sorted 0.95;
    lat_p99_us = 1e6 *. percentile sorted 0.99;
  }
