(** Scripted trace generation: drive a robot-mounted reader along a
    path through a world and record ground truth plus the two noisy
    streams (§V-A's simulator).

    The robot follows a nominal script of constant-velocity segments
    with per-epoch Gaussian jitter (and optionally a systematic velocity
    bias — a robot drifting sideways from inertia). Reported locations
    come from either a Gaussian positioning model or dead reckoning
    (reporting the nominal scripted position, so the accumulated true
    drift goes unreported — §V-C's robot). *)

type segment = { velocity : Rfid_geom.Vec3.t; heading : float; seg_epochs : int }
(** Constant nominal velocity and reader heading for [seg_epochs]
    epochs. *)

type movement = { move_epoch : int; move_obj : int; move_to : Rfid_geom.Vec3.t }
(** Scripted relocation of one object at the start of an epoch. *)

type location_noise =
  | Gaussian_report of Rfid_model.Location_sensing.t
      (** report = true location + bias + Gaussian noise *)
  | Dead_reckoning
      (** report = nominal scripted position; the true position drifts
          away from it via jitter and velocity bias *)

type config = {
  sensor : Truth_sensor.t;
  motion_sigma : Rfid_geom.Vec3.t;  (** per-epoch jitter of the true motion *)
  velocity_bias : Rfid_geom.Vec3.t;  (** systematic offset of true motion vs script *)
  drift_cap : float option;  (** clamp |true - nominal| to this radius *)
  location_noise : location_noise;
  read_every : int;  (** interrogate tags every k epochs (location reports every epoch) *)
  movements : movement list;
}

val default_config : ?sensor:Truth_sensor.t -> unit -> config
(** Paper defaults: cone sensor at 100% major read rate, motion jitter
    0.01 ft, no velocity bias, Gaussian reports with zero bias and 0.01
    ft noise, readings every epoch, no movements. *)

val straight_pass :
  ?speed:float -> ?margin:float -> Warehouse.t -> rounds:int -> segment list
(** Scan passes along the warehouse aisle: down the full y extent (plus
    [margin] ft of run-in/out, default 1) at [speed] ft/epoch (default
    0.1, the paper's robot), reversing direction each round, always
    facing the shelves. @raise Invalid_argument if [rounds <= 0] or
    [speed <= 0]. *)

val run :
  world:Rfid_model.World.t ->
  object_locs:Rfid_geom.Vec3.t array ->
  start:Rfid_model.Reader_state.t ->
  path:segment list ->
  config:config ->
  Rfid_prob.Rng.t ->
  Rfid_model.Trace.t
(** Execute the script. Epochs are numbered from 0; observations carry
    every epoch (readings may be empty on non-interrogation epochs).
    @raise Invalid_argument if [read_every <= 0] or a movement refers to
    an unknown object. *)
