(* Handheld reader without a location stream (the paper's §VII future
   work): the reader reports no position at all, and the engine
   localizes it purely from shelf-tag readings — Fig. 2(c) taken to its
   logical conclusion — then locates the objects as usual.

   Run with:  dune exec examples/handheld.exe *)

open Rfid_model
open Rfid_geom

let () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:12 ~objects_per_shelf:3 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:61)
  in
  (* Withhold the location stream entirely. *)
  let observations =
    List.map
      (fun (o : Types.observation) -> { o with Types.o_reported_loc = Vec3.zero })
      (Trace.observations trace)
  in
  Printf.printf
    "handheld scan: %d epochs, %d objects, %d reference tags, NO location stream\n\n"
    (Trace.epochs trace) trace.Trace.num_objects
    (List.length (World.shelf_tags wh.Rfid_sim.Warehouse.world));

  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob
      ~seed:2 ()
  in
  (* All-zero sensing sigma = "position not measured"; the proposal runs
     on the motion model alone (the clerk walks the aisle at a roughly
     known pace). *)
  let params =
    Params.create ~sensor
      ~motion:
        (Motion_model.create ~velocity:(Vec3.make 0. 0.1 0.)
           ~sigma:(Vec3.make 0.03 0.03 0.) ())
      ~sensing:(Location_sensing.create ~sigma:Vec3.zero ())
      ()
  in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized
      ~num_reader_particles:200 ~num_object_particles:200
      ~proposal:Rfid_core.Config.From_velocity ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params ~config
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:3 ()
  in
  let reader_errs = ref [] in
  List.iteri
    (fun i obs ->
      ignore (Rfid_core.Engine.step engine obs);
      let est = Rfid_core.Engine.reader_estimate engine in
      reader_errs :=
        Vec3.dist_xy est trace.Trace.steps.(i).Trace.true_reader.Reader_state.loc
        :: !reader_errs)
    observations;
  let events = Rfid_core.Engine.flush engine in
  Printf.printf "reader self-localization error (mean): %.3f ft\n"
    (Rfid_prob.Stats.mean (Array.of_list !reader_errs));
  Format.printf "object location error: %a@." Rfid_eval.Metrics.pp_error
    (Rfid_eval.Metrics.inference_error events trace)
