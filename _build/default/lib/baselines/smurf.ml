open Rfid_geom
open Rfid_model

type config = {
  delta : float;
  max_window : int;
  read_range : float;
  required_reads : int;
  heading_of : (Types.epoch -> float) option;
}

let default_config ?heading_of ~read_range () =
  if read_range <= 0. then invalid_arg "Smurf.default_config: read_range must be positive";
  { delta = 0.05; max_window = 25; read_range; required_reads = 1; heading_of }

module Window = struct
  (* Ring buffer of per-epoch read outcomes, newest last; the window is
     the suffix of length [size]. *)
  type t = {
    cfg : config;
    history : bool array;  (* circular, capacity max_window *)
    mutable filled : int;
    mutable head : int;  (* next write slot *)
    mutable size : int;  (* current adaptive window size *)
    mutable total_reads : int;
  }

  let create cfg =
    if cfg.max_window <= 0 then invalid_arg "Smurf.Window.create: max_window <= 0";
    {
      cfg;
      history = Array.make cfg.max_window false;
      filled = 0;
      head = 0;
      size = 1;
      total_reads = 0;
    }

  let nth_newest t k =
    (* k = 0 is the most recent epoch. *)
    let cap = Array.length t.history in
    t.history.((t.head - 1 - k + (2 * cap)) mod cap)

  let counts t n =
    (* reads within the n most recent epochs (n <= filled) *)
    let c = ref 0 in
    for k = 0 to n - 1 do
      if nth_newest t k then incr c
    done;
    !c

  let observe t ~read ~epoch:_ =
    let cap = Array.length t.history in
    t.history.(t.head) <- read;
    t.head <- (t.head + 1) mod cap;
    t.filled <- Int.min cap (t.filled + 1);
    if read then t.total_reads <- t.total_reads + 1;
    if t.total_reads >= t.cfg.required_reads then begin
      let n = Int.min t.size t.filled in
      let s = counts t n in
      if s > 0 then begin
        let p_avg = float_of_int s /. float_of_int n in
        (* Completeness: window large enough that a present tag is read
           with probability 1 - delta. *)
        let w_star =
          int_of_float (Float.ceil (log (1. /. t.cfg.delta) /. p_avg))
        in
        let w_star = Int.max 1 (Int.min t.cfg.max_window w_star) in
        (* Transition detection on the recent half-window: an observed
           count more than 2 sigma below expectation flags an exit. *)
        let half = Int.max 1 (n / 2) in
        let s_recent = counts t half in
        let expected = float_of_int half *. p_avg in
        let sigma = sqrt (float_of_int half *. p_avg *. (1. -. p_avg)) in
        if float_of_int s_recent < expected -. (2. *. sigma) then
          t.size <- Int.max 1 (t.size / 2)
        else if t.size < w_star then t.size <- Int.min t.cfg.max_window (t.size * 2)
        else t.size <- w_star
      end
    end

  let present t =
    let n = Int.min t.size (Int.max 1 t.filled) in
    counts t n > 0

  let size t = t.size
end

type tag_state = {
  window : Window.t;
  mutable samples : Vec3.t list;  (* locations sampled during this presence period *)
  mutable sample_count : int;
  mutable last_present : int;
  mutable was_present : bool;
}

(* Uniform sample over (disc of read_range around center) ∩ shelves, by
   rejection from the shelf area; falls back to the clamped centre. With
   [facing], samples behind the antenna are rejected too. *)
let sample_in_range world rng ~center ~range ?facing () =
  let admissible (p : Vec3.t) =
    Vec3.dist_xy p center <= range
    && match facing with
       | None -> true
       | Some heading ->
           let dx = p.Vec3.x -. center.Vec3.x and dy = p.Vec3.y -. center.Vec3.y in
           (dx *. cos heading) +. (dy *. sin heading) >= 0.
  in
  let box = Box2.of_center center ~half_width:range ~half_height:range in
  let shelves = World.shelves world in
  let candidates =
    Array.to_list shelves
    |> List.filter_map (fun (s : World.shelf) ->
           if Box2.intersects s.World.surface box then Some s.World.surface else None)
  in
  match candidates with
  | [] -> World.clamp_to_shelves world center
  | boxes ->
      let areas = Array.of_list (List.map Box2.area boxes) in
      let boxes = Array.of_list boxes in
      let rec attempt k =
        if k = 0 then World.clamp_to_shelves world center
        else begin
          let b = boxes.(Rfid_prob.Rng.categorical rng areas) in
          let x = Rfid_prob.Rng.uniform rng ~lo:b.Box2.min_x ~hi:b.Box2.max_x in
          let y = Rfid_prob.Rng.uniform rng ~lo:b.Box2.min_y ~hi:b.Box2.max_y in
          let p = Vec3.make x y center.Vec3.z in
          if admissible p then p else attempt (k - 1)
        end
      in
      attempt 64

let run ~world ~config ~seed observations =
  let rng = Rfid_prob.Rng.create ~seed in
  let tags : (int, tag_state) Hashtbl.t = Hashtbl.create 64 in
  let events = ref [] in
  let close_period obj st =
    if st.sample_count > 0 then begin
      let mean =
        Vec3.scale
          (1. /. float_of_int st.sample_count)
          (List.fold_left Vec3.add Vec3.zero st.samples)
      in
      events :=
        Rfid_core.Event.make ~epoch:st.last_present ~obj ~loc:mean () :: !events
    end;
    st.samples <- [];
    st.sample_count <- 0
  in
  List.iter
    (fun (obs : Types.observation) ->
      let e = obs.Types.o_epoch in
      let read_now = Hashtbl.create 8 in
      List.iter
        (fun tag ->
          match tag with
          | Types.Object_tag i ->
              Hashtbl.replace read_now i ();
              if not (Hashtbl.mem tags i) then
                Hashtbl.replace tags i
                  {
                    window = Window.create config;
                    samples = [];
                    sample_count = 0;
                    last_present = e;
                    was_present = false;
                  }
          | Types.Shelf_tag _ -> ())
        obs.Types.o_read_tags;
      Hashtbl.iter
        (fun obj st ->
          Window.observe st.window ~read:(Hashtbl.mem read_now obj) ~epoch:e;
          let present = Window.present st.window in
          if present then begin
            st.last_present <- e;
            let facing = Option.map (fun f -> f e) config.heading_of in
            st.samples <-
              sample_in_range world rng ~center:obs.Types.o_reported_loc
                ~range:config.read_range ?facing ()
              :: st.samples;
            st.sample_count <- st.sample_count + 1
          end
          else if st.was_present then close_period obj st;
          st.was_present <- present)
        tags)
    observations;
  Hashtbl.iter (fun obj st -> if st.was_present then close_period obj st) tags;
  List.rev !events
