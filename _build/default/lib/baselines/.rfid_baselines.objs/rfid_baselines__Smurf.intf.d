lib/baselines/smurf.mli: Rfid_core Rfid_geom Rfid_model Rfid_prob
