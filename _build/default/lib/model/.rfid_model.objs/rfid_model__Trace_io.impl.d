lib/model/trace_io.ml: Buffer List Printf Rfid_geom String Types
