open Rfid_geom
open Rfid_model
module Bitset = Rfid_prob.Bitset
module Ps = Rfid_prob.Particle_store
module Scratch = Rfid_par.Scratch
module Obs = Rfid_obs.Metrics

(* Observability handles. Stage spans cover the phases of [step] in
   order; health gauges/histograms expose the quantities DESIGN.md
   section 10 names. Sharded recording ([incr_shard]/[observe_shard])
   is used from the parallel body, keyed by the scratch arena's domain
   id, so domains never contend on a cell. *)
let sp_pose_memo = Obs.span Obs.global "stage.pose_memo"
let sp_weighting = Obs.span Obs.global "stage.weighting"
let sp_resampling = Obs.span Obs.global "stage.resampling"
let sp_compression = Obs.span Obs.global "stage.compression"
let h_object_ess = Obs.histogram Obs.global "health.object_ess"
let h_object_budget = Obs.histogram Obs.global "health.object_budget"
let g_reader_ess = Obs.gauge Obs.global "health.reader_ess"
let g_scope_objects = Obs.gauge Obs.global "health.scope_objects"
let g_particles_in_scope = Obs.gauge Obs.global "health.particles_in_scope"
let g_index_boxes = Obs.gauge Obs.global "health.index_boxes"
let c_obj_resamples = Obs.counter Obs.global "filter.object_resamples"
let c_reader_resamples = Obs.counter Obs.global "filter.reader_resamples"
let c_resamples_skipped = Obs.counter Obs.global "filter.resamples_skipped"
let c_compressions = Obs.counter Obs.global "filter.compressions"
let c_decompressions = Obs.counter Obs.global "filter.decompressions"
let c_evictions = Obs.counter Obs.global "health.evicted_objects"
let c_saturated = Obs.counter Obs.global "health.saturated_particles"
let c_sensor_evals = Obs.counter Obs.global "health.sensor_evals"
let c_memo_reused = Obs.counter Obs.global "health.pose_memo_reused"

type reader_particle = { mutable state : Reader_state.t; mutable log_w : float }

(* Object particles live in structure-of-arrays slabs
   ([Rfid_prob.Particle_store]): x/y/z/log-weight columns plus a flat
   reader-pointer array, per object. The hot per-epoch loops
   (proposal, weighting, normalization, resampling) run over the slabs
   with zero steady-state allocation; every loop performs the identical
   floating-point operations in the identical order as the former
   array-of-records code, so the event stream is bit-identical (the
   golden-trace suite holds it there). *)
type belief = Active of Ps.t | Compressed of Rfid_prob.Gaussian.t

type obj_state = {
  obj_id : int;
  mutable belief : belief;
  mutable reader_gen : int;  (* generation of the reader pointers in [belief] *)
  mutable last_read : int;
  mutable last_read_reader : Vec3.t;
  mutable in_scope : bool;
      (* false once the lazy eviction queue has fired for the object's
         last read — the next read is a re-discovery (newly seen) *)
}

(* Past sensing regions: boxes in an R-tree, each carrying the objects
   that had particles there when the box was inserted (Fig. 4(b)/(c)).
   Box contents are ascending id arrays — queries are consumed as sets,
   and the dense form walks without allocating. [pending] accumulates
   the processed scope between flushes by word-wise bitset union. *)
type obj_index = {
  rtree : int array Rtree.t;
  pending : Bitset.t;
  mutable pending_box : Box2.t option;
  mutable last_insert_loc : Vec3.t option;
}

(* Evidence-driven initialization planned on the coordinator and
   executed inside the parallel per-object pass. *)
type init_action =
  | No_init
  | Init_fresh of int  (* creation or far re-detection: n fresh particles *)
  | Init_decompress of Rfid_prob.Gaussian.t
  | Init_half  (* near re-detection: keep half, redraw half *)

type work_item = { w_obj : obj_state; w_action : init_action; w_read : bool }

type t = {
  world : World.t;
  params : Params.t;
  config : Config.t;
  rng : Rfid_prob.Rng.t;
  substream : Rfid_prob.Rng.t;
      (* frozen base for per-(object, epoch) keyed substreams; never
         advanced after [create], so derivations commute across domains *)
  pool : Rfid_par.Pool.t;
  adaptive : bool;
      (* min_object_particles < num_object_particles: per-object
         budgets walk [budget_rungs]; off by default, leaving the hot
         path untouched *)
  budget_rungs : int array;
      (* ascending doubling ladder [min, 2*min, ..., num]; a single
         rung when adaptation is off *)
  pre : Sensor_model.pre;
      (* per-epoch memo of reader-particle poses, refreshed once per
         [step] before the parallel pass *)
  mutable readers : reader_particle array;
  mutable reader_gen : int;
  objects : (int, obj_state) Hashtbl.t;
  cache : Common.Sensor_cache.t;
  shelf_rtree : (int * Vec3.t) Rtree.t;
  index : obj_index option;
  compress : bool;
  compress_queue : (int * int) Queue.t;  (* (deadline epoch, obj id) *)
  evict_queue : (int * int) Queue.t;
      (* (fire epoch, obj id): an entry per read, fired lazily — the
         out-of-scope sweep touches only candidates whose deadline has
         passed, never the whole object table *)
  shelf_read : (int, unit) Hashtbl.t;  (* per-epoch, cleared not rebuilt *)
  idx_hits : int array Rtree.Hits.t;  (* Case-2 probe results, reused *)
  shelf_hits : (int * Vec3.t) Rtree.Hits.t;  (* shelf-tag probe results, reused *)
  mutable scope_ids : int array;  (* ascending scope, dense; first [scope_len] valid *)
  mutable scope_len : int;
  mutable work : work_item array;  (* first [work_len] valid this epoch *)
  mutable work_len : int;
  work_dummy : work_item;  (* fills unused [work] capacity *)
  mutable tmp_ids : int array;  (* missing shelf tags / index-flush members *)
  (* Change feed for the query layer (DESIGN.md section 13): ids whose
     posterior may have changed since the consumer's last
     [clear_changes], plus the everything-changed escape hatch for
     degraded-mode widening and restore. Written from the coordinator
     only. *)
  dirty : Bitset.t;
  mutable dirty_all : bool;
  (* Known ids as a sorted dense array: discovery inserts in place, so
     [iter_known]/[known_objects] never sort or scan the hashtable. *)
  mutable known_sorted : int array;
  mutable known_len : int;
  mutable last_reported : Vec3.t option;
  mutable epoch : int;
  mutable newly_seen : int list;
  mutable processed_last : int;
  mutable consecutive_degraded : int;
  mutable degraded_total : int;
}

(* Scratch-arena slot conventions (see [Rfid_par.Scratch]): float slot 0
   holds per-object normalized weights inside the parallel body; float
   slot 3 holds reader weights and is touched only by the coordinator,
   so it never aliases slot 0 even when the reader and object particle
   counts coincide. Int slot 0 holds resample indices. Bitset slots
   live on the coordinator's arena only (the parallel body never takes
   one), so they are race-free by construction. *)
let slot_obj_weights = 0
let slot_reader_scratch = 1  (* weight_readers accumulator; resample sum/combined *)
let slot_reader_adj = 2
let slot_reader_weights = 3
let slot_resample_idx = 0
let slot_reader_cnt = 1
let bslot_case1 = 0
let bslot_scope = 1
let bslot_near = 2

let make_shelf_rtree world =
  let shelf_rtree = Rtree.create () in
  List.iter
    (fun (tag, loc) ->
      match tag with
      | Types.Shelf_tag id ->
          Rtree.insert shelf_rtree
            (Box2.of_center loc ~half_width:0.01 ~half_height:0.01)
            (id, loc)
      | Types.Object_tag _ -> ())
    (World.shelf_tags world);
  shelf_rtree

(* The adaptive budget ladder: doubling rungs from the floor up, capped
   at the full budget. *)
let budget_ladder config =
  let min_b = config.Config.min_object_particles in
  let max_b = config.Config.num_object_particles in
  let rec go acc r =
    if r >= max_b then List.rev (max_b :: acc) else go (r :: acc) (2 * r)
  in
  Array.of_list (go [] min_b)

(* Deterministic budget rule (DESIGN.md section 9): map posterior spread
   — sqrt of the weighted covariance trace — onto the rung ladder with
   thresholds anchored at [reinit_near]. Spread at or above
   [reinit_near] earns the full budget; each halving of spread lowers
   the target one rung. The budget moves at most one rung per resample
   event, and stepping {e up} requires 1.5x the rung's down-threshold,
   so a posterior hovering at a boundary cannot flap. A store below the
   ladder floor (e.g. a just-decompressed belief) is pulled up to the
   floor. The rule reads only this object's particles and config
   constants, so it is independent of domain count and schedule. *)
let next_budget t ~k ~spread =
  let rungs = t.budget_rungs in
  let last = Array.length rungs - 1 in
  let c =
    let r = ref (-1) in
    for i = 0 to last do
      if rungs.(i) <= k then r := i
    done;
    !r
  in
  if c < 0 then rungs.(0)
  else
    let thr i = t.config.Config.reinit_near *. (0.5 ** float_of_int (last - i)) in
    if c < last && spread >= 1.5 *. thr (c + 1) then rungs.(c + 1)
    else if c > 0 && spread < thr c then rungs.(c - 1)
    else rungs.(c)

let dummy_work_item () =
  {
    w_obj =
      {
        obj_id = -1;
        belief = Active (Ps.create ~n:0);
        reader_gen = 0;
        last_read = 0;
        last_read_reader = Vec3.zero;
        in_scope = false;
      };
    w_action = No_init;
    w_read = false;
  }

let create ~world ~params ~config ~init_reader ~rng =
  let use_index, compress =
    match config.Config.variant with
    | Config.Unfactorized ->
        invalid_arg "Factored_filter.create: use Basic_filter for Unfactorized"
    | Config.Factorized -> (false, false)
    | Config.Factorized_indexed -> (true, false)
    | Config.Factorized_compressed -> (true, true)
  in
  let substream = Rfid_prob.Rng.split rng in
  let readers =
    Array.init config.Config.num_reader_particles (fun _ ->
        let loc =
          Common.jitter init_reader.Reader_state.loc
            ~sigma:params.Params.sensing.Location_sensing.sigma rng
        in
        {
          state = Reader_state.make ~loc ~heading:init_reader.Reader_state.heading;
          log_w = 0.;
        })
  in
  let shelf_rtree = make_shelf_rtree world in
  {
    world;
    params;
    config;
    rng;
    substream;
    pool = Rfid_par.Pool.get ~num_domains:config.Config.num_domains;
    adaptive =
      config.Config.min_object_particles < config.Config.num_object_particles;
    budget_rungs = budget_ladder config;
    pre = Sensor_model.precompute params.Params.sensor ~n:config.Config.num_reader_particles;
    readers;
    reader_gen = 0;
    objects = Hashtbl.create 64;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_rtree;
    index =
      (if use_index then
         Some
           {
             rtree = Rtree.create ();
             pending = Bitset.create ();
             pending_box = None;
             last_insert_loc = None;
           }
       else None);
    compress;
    compress_queue = Queue.create ();
    evict_queue = Queue.create ();
    shelf_read = Hashtbl.create 8;
    idx_hits = Rtree.Hits.create ~dummy:[||];
    shelf_hits = Rtree.Hits.create ~dummy:(0, Vec3.zero);
    scope_ids = [||];
    scope_len = 0;
    work = [||];
    work_len = 0;
    work_dummy = dummy_work_item ();
    tmp_ids = [||];
    dirty = Bitset.create ();
    dirty_all = false;
    known_sorted = [||];
    known_len = 0;
    last_reported = None;
    epoch = -1;
    newly_seen = [];
    processed_last = 0;
    consecutive_degraded = 0;
    degraded_total = 0;
  }

let num_readers t = Array.length t.readers

let ensure_scope t n =
  if Array.length t.scope_ids < n then
    t.scope_ids <- Array.make (Int.max n (2 * Array.length t.scope_ids)) 0

let ensure_tmp t n =
  if Array.length t.tmp_ids < n then
    t.tmp_ids <- Array.make (Int.max n (2 * Array.length t.tmp_ids)) 0

let ensure_work t n =
  if Array.length t.work < n then
    t.work <- Array.make (Int.max n (2 * Array.length t.work)) t.work_dummy

(* Insertion into the sorted known-id array. Ids arrive once each (at
   discovery) and mostly in increasing order, so the shift is almost
   always empty; re-discoveries never reach here. *)
let note_known t id =
  if Array.length t.known_sorted < t.known_len + 1 then begin
    let bigger = Array.make (Int.max 8 (2 * Array.length t.known_sorted)) 0 in
    Array.blit t.known_sorted 0 bigger 0 t.known_len;
    t.known_sorted <- bigger
  end;
  let i = ref t.known_len in
  while !i > 0 && t.known_sorted.(!i - 1) > id do
    t.known_sorted.(!i) <- t.known_sorted.(!i - 1);
    decr i
  done;
  t.known_sorted.(!i) <- id;
  t.known_len <- t.known_len + 1

let reader_weights_into t w =
  for i = 0 to Array.length w - 1 do
    w.(i) <- t.readers.(i).log_w
  done;
  Rfid_prob.Stats.normalize_log_weights_in_place w

let reader_weights t =
  let w = Array.make (num_readers t) 0. in
  reader_weights_into t w;
  w

(* Draw a reader-particle index proportionally to current weights.
   Takes the drawing generator explicitly: per-object phases pass the
   object's keyed substream, coordinator phases pass [t.rng]. *)
let sample_reader_idx rng rw = Rfid_prob.Rng.categorical rng rw

(* Refresh the sensor memo from the current reader poses — once per
   epoch, after the reader proposal, before the parallel pass. Writes
   go through the compare-then-write entry point: when consecutive
   epochs share every pose (duplicate, degraded-mode or
   stationary-reader streams), no slot is rewritten, the memo's
   fingerprint stamp survives, and the epoch counts as a reuse. *)
let refresh_memo t =
  let j = num_readers t in
  let changed = ref (Sensor_model.pre_size t.pre <> j) in
  Sensor_model.pre_resize t.pre j;
  for i = 0 to j - 1 do
    let s = t.readers.(i).state in
    let loc = s.Reader_state.loc in
    if
      Sensor_model.pre_set_pose_checked t.pre i ~x:loc.Vec3.x ~y:loc.Vec3.y
        ~z:loc.Vec3.z ~heading:s.Reader_state.heading
    then changed := true
  done;
  if not !changed then Obs.incr c_memo_reused 1

let decompress_into t rng rw store g =
  let n = t.config.Config.decompress_particles in
  Ps.resize store n;
  for i = 0 to n - 1 do
    let p = Vec3.of_array (Rfid_prob.Gaussian.sample g rng) in
    let p = if World.contains t.world p then p else World.clamp_to_shelves t.world p in
    let idx = sample_reader_idx rng rw in
    Ps.set_loc store i ~x:p.Vec3.x ~y:p.Vec3.y ~z:p.Vec3.z;
    Ps.set_reader store i idx;
    Ps.set_log_w store i 0.
  done

(* The probe/insertion box for the sensing region around a reader
   location: heading-independent square of side 2 * detection range,
   inflated by the configured margin for reader-particle spread. *)
let sensing_box t loc =
  let r = t.cache.Common.Sensor_cache.range +. t.config.Config.case4_margin in
  Box2.of_center loc ~half_width:r ~half_height:r

(* Was a shelf-tag hit with this id returned by the last shelf-tree
   probe? Non-negative ids are answered by the scratch bitset; the
   (never-seen-in-practice) negative ids a hand-built world could carry
   fall back to scanning the hit buffer, since a bitset cannot hold
   them. *)
let shelf_near_mem t near id =
  if id >= 0 then Bitset.mem near id
  else begin
    let found = ref false in
    for h = 0 to Rtree.Hits.length t.shelf_hits - 1 do
      let hid, _ = Rtree.Hits.get t.shelf_hits h in
      if hid = id then found := true
    done;
    !found
  end

(* Requires the memo to hold the current (freshly proposed) poses: both
   the batched location term and the per-tag accumulation evaluate
   against every pose in one call. Miss evidence is tempered by
   [Config.shelf_miss_weight]: it flows through the sensor model's soft
   boundary, where a fitted logistic deviates most from the true
   region. Tag processing order is the order the former list-building
   code produced — probe hits in reverse visit order (the reversed
   [Rtree.query] list), then read-but-not-near tags by descending id
   (the prepend-built [Int_set.fold] list) — so the accumulated floats
   are bit-identical. *)
let weight_readers t reported =
  let sensing = t.params.Params.sensing in
  let j = num_readers t in
  let scratch0 = Rfid_par.Pool.get_scratch t.pool 0 in
  let acc = Scratch.float_buf scratch0 ~slot:slot_reader_scratch j in
  let rx, ry, rz, _ = Sensor_model.pre_poses t.pre in
  Location_sensing.log_pdf_poses_into sensing ~reported ~rx ~ry ~rz ~n:j acc;
  let box = sensing_box t reported in
  Rtree.query_into t.shelf_rtree box t.shelf_hits;
  let nh = Rtree.Hits.length t.shelf_hits in
  (* Shelf-tag saturation-cull accounting stays on the coordinator
     (this whole function runs there), recorded once at the end. *)
  let tag_calls = ref 0 in
  let tag_culled = ref 0 in
  for h = nh - 1 downto 0 do
    let id, tag_loc = Rtree.Hits.get t.shelf_hits h in
    let read = Hashtbl.mem t.shelf_read id in
    tag_calls := !tag_calls + j;
    tag_culled :=
      !tag_culled
      + Sensor_model.pre_accumulate_tag t.pre ~tx:tag_loc.Vec3.x ~ty:tag_loc.Vec3.y
          ~tz:tag_loc.Vec3.z ~read ~miss_weight:t.config.Config.shelf_miss_weight acc
  done;
  (* A read shelf tag outside the probe box (possible with heavy
     location noise) still contributes evidence; find it by id. *)
  if Hashtbl.length t.shelf_read > 0 then begin
    let near = Scratch.bits scratch0 ~slot:bslot_near in
    Bitset.clear near;
    for h = 0 to nh - 1 do
      let id, _ = Rtree.Hits.get t.shelf_hits h in
      if id >= 0 then Bitset.add near id
    done;
    ensure_tmp t (Hashtbl.length t.shelf_read);
    let m = ref 0 in
    Hashtbl.iter
      (fun id () ->
        if not (shelf_near_mem t near id) then begin
          t.tmp_ids.(!m) <- id;
          incr m
        end)
      t.shelf_read;
    (* Descending id order; the set is almost always empty and never
       more than the epoch's read list, so insertion sort suffices. *)
    for a = 1 to !m - 1 do
      let v = t.tmp_ids.(a) in
      let b = ref a in
      while !b > 0 && t.tmp_ids.(!b - 1) < v do
        t.tmp_ids.(!b) <- t.tmp_ids.(!b - 1);
        decr b
      done;
      t.tmp_ids.(!b) <- v
    done;
    for k = 0 to !m - 1 do
      let id = t.tmp_ids.(k) in
      match World.shelf_tag_location t.world id with
      | tag_loc ->
          tag_calls := !tag_calls + j;
          tag_culled :=
            !tag_culled
            + Sensor_model.pre_accumulate_tag t.pre ~tx:tag_loc.Vec3.x
                ~ty:tag_loc.Vec3.y ~tz:tag_loc.Vec3.z ~read:true
                ~miss_weight:t.config.Config.shelf_miss_weight acc
      | exception Not_found -> ()
    done
  end;
  if !tag_culled > 0 then Obs.incr c_saturated !tag_culled;
  Obs.incr c_sensor_evals (!tag_calls - !tag_culled);
  Array.iteri (fun i (r : reader_particle) -> r.log_w <- r.log_w +. acc.(i)) t.readers;
  (* Centre to avoid drift to -inf over long streams. *)
  let m =
    Array.fold_left
      (fun acc (r : reader_particle) -> Float.max acc r.log_w)
      neg_infinity t.readers
  in
  if Float.is_finite m then
    Array.iter (fun (r : reader_particle) -> r.log_w <- r.log_w -. m) t.readers

let propose_readers t e reported =
  let motion = t.params.Params.motion in
  let delta =
    Common.proposal_delta t.config.Config.proposal ~motion
      ~last_reported:t.last_reported ~reported
  in
  let sigma =
    match t.config.Config.proposal_noise_override with
    | Some s -> s
    | None ->
        Common.proposal_sigma t.config.Config.proposal ~motion
          ~sensing:t.params.Params.sensing
  in
  Array.iter
    (fun r ->
      let loc =
        match t.config.Config.proposal with
        | Config.From_reported_location -> Common.jitter reported ~sigma t.rng
        | Config.From_velocity | Config.From_reported_displacement ->
            Common.jitter (Vec3.add r.state.Reader_state.loc delta) ~sigma t.rng
      in
      let heading =
        Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
          ~current:r.state.Reader_state.heading t.rng
      in
      r.state <- Reader_state.make ~loc ~heading)
    t.readers

(* Objects to process this epoch beyond those read now (Case 2): with an
   index, the union of object sets of past sensing boxes overlapping the
   current one; without, every known object. The result lands in the
   [scope] bitset (which already holds Case 1). *)
let add_case2_objects t reported scope =
  match t.index with
  | None -> Hashtbl.iter (fun id _ -> Bitset.add scope id) t.objects
  | Some idx ->
      let probe = sensing_box t reported in
      Rtree.query_into idx.rtree probe t.idx_hits;
      for h = 0 to Rtree.Hits.length t.idx_hits - 1 do
        let ids = Rtree.Hits.get t.idx_hits h in
        for k = 0 to Array.length ids - 1 do
          Bitset.add scope (Array.unsafe_get ids k)
        done
      done

let refresh_pointers t rng rw (obj : obj_state) =
  if obj.reader_gen <> t.reader_gen then begin
    (match obj.belief with
    | Active store ->
        for i = 0 to Ps.length store - 1 do
          Ps.set_reader store i (sample_reader_idx rng rw)
        done
    | Compressed _ -> ());
    obj.reader_gen <- t.reader_gen
  end

let propose_and_weight_object t scratch rng (obj : obj_state) ~read =
  match obj.belief with
  | Compressed _ -> ()
  | Active store ->
      let k = Ps.length store in
      (* The move-hypothesis transition (uniform over all shelves,
         probability alpha) is injected only on epochs that carry a
         reading of this tag: a hypothesis born on a miss-only epoch
         lands far from the reader, where misses are certain anyway,
         so nothing can ever refute it — and one such runaway
         particle drags the posterior mean by (warehouse size / K).
         Evidence-bearing epochs crush wrong move hypotheses
         immediately, which is all the diversity the model needs.
         [Object_model.sample_next] is inlined so a particle that
         stays put (the overwhelming majority) writes nothing. *)
      (if read then begin
         let move_prob = t.params.Params.objects.Object_model.move_prob in
         for i = 0 to k - 1 do
           if Rfid_prob.Rng.bernoulli rng ~p:move_prob then begin
             let l = World.sample_on_shelves t.world rng in
             Ps.set_loc store i ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z
           end
         done
       end);
      (* Sensor terms for the whole store in one batched call (each
         particle against its own reader pointer's memoized pose).
         Saturation-cull accounting is recorded into this domain's
         metric shard — merged counter totals are schedule-independent
         because the per-item cull counts are. *)
      let shard = Scratch.shard scratch in
      let culled = Sensor_model.pre_accumulate_store t.pre store ~read in
      if culled > 0 then Obs.incr_shard c_saturated ~shard culled;
      Obs.incr_shard c_sensor_evals ~shard (k - culled);
      let m = Ps.max_log_w store in
      if Float.is_finite m then Ps.shift_log_w store m;
      (* Per-object resampling, pointer-preserving (§IV-B). *)
      let w = Scratch.float_buf scratch ~slot:slot_obj_weights k in
      Ps.weights_into store w;
      let ess = Rfid_prob.Stats.effective_sample_size w in
      Obs.observe_shard h_object_ess ~shard ess;
      Obs.observe_shard h_object_budget ~shard (float_of_int k);
      let kf = float_of_int k in
      if ess < t.config.Config.resample_ratio *. kf then begin
        if ess >= t.config.Config.resample_ess_ratio *. kf then
          (* The classic gate fired but the ESS cap vetoed it: the
             weights carry over unresampled and the gather+swap (and
             any budget move) is skipped. Vacuous at the default cap of
             1.0, since ESS never exceeds k. *)
          Obs.incr_shard c_resamples_skipped ~shard 1
        else begin
          Obs.incr_shard c_obj_resamples ~shard 1;
          let scheme = t.config.Config.resample_scheme in
          let slab = Scratch.slab scratch in
          if not t.adaptive then begin
            let idx = Scratch.int_buf scratch ~slot:slot_resample_idx k in
            Common.resample_into scheme rng w ~n:k ~out:idx;
            Ps.gather ~src:store ~dst:slab idx ~n:k;
            Ps.swap store slab
          end
          else begin
            (* Budget moves ride on resample events only. Weighted
               per-axis moments give the spread for the rung rule and
               the jitter scale for growth; all O(k), touched only in
               adaptive mode. *)
            let wvar get =
              let mean = ref 0. in
              for i = 0 to k - 1 do
                mean := !mean +. (Array.unsafe_get w i *. get store i)
              done;
              let m = !mean in
              let v = ref 0. in
              for i = 0 to k - 1 do
                let d = get store i -. m in
                v := !v +. (Array.unsafe_get w i *. d *. d)
              done;
              !v
            in
            let vx = wvar Ps.unsafe_x in
            let vy = wvar Ps.unsafe_y in
            let vz = wvar Ps.unsafe_z in
            let m = next_budget t ~k ~spread:(sqrt (vx +. vy +. vz)) in
            if m <= k then begin
              (* Shrink (or hold): draw the target count directly over
                 the k weights — a full-CDF stride, unlike truncating a
                 k-sized systematic draw, whose prefix is biased. *)
              let idx = Scratch.int_buf scratch ~slot:slot_resample_idx m in
              Common.resample_into scheme rng w ~n:m ~out:idx;
              Ps.gather ~src:store ~dst:slab idx ~n:m;
              Ps.swap store slab
            end
            else begin
              let idx = Scratch.int_buf scratch ~slot:slot_resample_idx k in
              Common.resample_into scheme rng w ~n:k ~out:idx;
              Ps.gather ~src:store ~dst:slab idx ~n:k;
              Ps.swap store slab;
              (* Jitter at a quarter of the posterior's per-axis std:
                 enough to de-duplicate replicas, well inside the
                 spread that triggered the growth. *)
              Ps.resize_up store ~n:m ~rng ~sigma_x:(0.25 *. sqrt vx)
                ~sigma_y:(0.25 *. sqrt vy) ~sigma_z:(0.25 *. sqrt vz)
            end
          end
        end
      end

(* Reader resampling instrumented to favor readers associated with good
   object particles: each in-scope object contributes, per reader, the
   mean normalized weight of its particles pointing there. The scope is
   read from the dense ascending [scope_ids] buffer filled by [step] —
   the same visit order the former [Int_set.iter] produced. *)
let maybe_resample_readers t =
  let j = num_readers t in
  let scratch0 = Rfid_par.Pool.get_scratch t.pool 0 in
  let rw = Scratch.float_buf scratch0 ~slot:slot_reader_weights j in
  reader_weights_into t rw;
  let ess = Rfid_prob.Stats.effective_sample_size rw in
  Obs.set g_reader_ess ess;
  let jf = float_of_int j in
  if ess >= t.config.Config.resample_ratio *. jf then ()
  else if ess >= t.config.Config.resample_ess_ratio *. jf then
    (* Same ESS cap as the per-object resample: the classic gate would
       fire, the cap vetoes it, weights carry over. *)
    Obs.incr c_resamples_skipped 1
  else begin
    Obs.incr c_reader_resamples 1;
    (* Everything transient here lives in the coordinator's scratch
       arena: per-reader mean object weights are recomputed from
       sum/count (bit-identical to materializing them) and the combined
       log weights are normalized in place. *)
    let adj = Scratch.float_buf scratch0 ~slot:slot_reader_adj j in
    Array.fill adj 0 j 0.;
    let consider (obj : obj_state) =
      match obj.belief with
      | Compressed _ -> ()
      | Active store when obj.reader_gen = t.reader_gen ->
          let k = Ps.length store in
          let w = Scratch.float_buf scratch0 ~slot:slot_obj_weights k in
          Ps.weights_into store w;
          let sum = Scratch.float_buf scratch0 ~slot:slot_reader_scratch j in
          let cnt = Scratch.int_buf scratch0 ~slot:slot_reader_cnt j in
          Array.fill sum 0 j 0.;
          Array.fill cnt 0 j 0;
          for i = 0 to k - 1 do
            let r = Ps.reader store i in
            sum.(r) <- sum.(r) +. w.(i);
            cnt.(r) <- cnt.(r) + 1
          done;
          let avg =
            let s = ref 0. and n = ref 0 in
            for r = 0 to j - 1 do
              if cnt.(r) <> 0 then begin
                s := !s +. (sum.(r) /. float_of_int cnt.(r));
                incr n
              end
            done;
            if !n = 0 then 0. else !s /. float_of_int !n
          in
          if avg > 0. then
            for r = 0 to j - 1 do
              if cnt.(r) <> 0 then
                adj.(r) <-
                  adj.(r) +. log (Float.max 1e-12 (sum.(r) /. float_of_int cnt.(r) /. avg))
            done
      | Active _ -> ()
    in
    for k = 0 to t.scope_len - 1 do
      match Hashtbl.find_opt t.objects t.scope_ids.(k) with
      | Some o -> consider o
      | None -> ()
    done;
    let combined = Scratch.float_buf scratch0 ~slot:slot_reader_scratch j in
    for i = 0 to j - 1 do
      combined.(i) <- log (Float.max 1e-300 rw.(i)) +. adj.(i)
    done;
    Rfid_prob.Stats.normalize_log_weights_in_place combined;
    let idx = Scratch.int_buf scratch0 ~slot:slot_resample_idx j in
    Common.resample_into t.config.Config.resample_scheme t.rng combined ~n:j ~out:idx;
    let old = t.readers in
    t.readers <-
      Array.map (fun i -> { state = old.(i).state; log_w = 0. }) idx;
    (* Pointer remap: copies of a surviving reader are tracked so object
       particles can follow one of them; orphans re-draw uniformly. *)
    let copies = Array.make j [] in
    Array.iteri (fun new_i old_i -> copies.(old_i) <- new_i :: copies.(old_i)) idx;
    t.reader_gen <- t.reader_gen + 1;
    let remap (obj : obj_state) =
      match obj.belief with
      | Compressed _ -> ()
      | Active store when obj.reader_gen = t.reader_gen - 1 ->
          for i = 0 to Ps.length store - 1 do
            match copies.(Ps.reader store i) with
            | [] -> Ps.set_reader store i (Rfid_prob.Rng.int t.rng j)
            | [ one ] -> Ps.set_reader store i one
            | many ->
                let k = Rfid_prob.Rng.int t.rng (List.length many) in
                Ps.set_reader store i (List.nth many k)
          done;
          obj.reader_gen <- t.reader_gen
      | Active _ -> ()
    in
    for k = 0 to t.scope_len - 1 do
      match Hashtbl.find_opt t.objects t.scope_ids.(k) with
      | Some o -> remap o
      | None -> ()
    done
  end

let update_index t reported scope =
  match t.index with
  | None -> ()
  | Some idx ->
      let box = sensing_box t reported in
      (* Delta update: the pending set accumulates the processed scope
         by word-wise OR — O(scope words), never a set rebuild. *)
      Bitset.union_into ~into:idx.pending scope;
      idx.pending_box <-
        Some (match idx.pending_box with None -> box | Some b -> Box2.union b box);
      let should_flush =
        match idx.last_insert_loc with
        | None -> true
        | Some prev -> Vec3.dist_xy prev reported >= t.config.Config.index_min_displacement
      in
      if should_flush then begin
        (match idx.pending_box with
        | Some b when not (Bitset.is_empty idx.pending) ->
            (* Fig. 4(b): a box's object set is the objects with at
               least one particle inside it — not the whole processed
               scope, which would snowball transitively through future
               Case-2 probes until every box contained every object. *)
            let has_particle_in id =
              match Hashtbl.find_opt t.objects id with
              | None -> false
              | Some { belief = Compressed g; _ } ->
                  Box2.contains_point b (Vec3.of_array (Rfid_prob.Gaussian.mean g))
              | Some { belief = Active store; _ } ->
                  let n = Ps.length store in
                  let rec scan i =
                    i < n
                    && (Box2.contains_xy b ~x:(Ps.x store i) ~y:(Ps.y store i)
                       || scan (i + 1))
                  in
                  scan 0
            in
            ensure_tmp t (Bitset.cardinal idx.pending);
            let m = ref 0 in
            Bitset.iter idx.pending (fun id ->
                if has_particle_in id then begin
                  t.tmp_ids.(!m) <- id;
                  incr m
                end);
            (* The stored array is a fresh exact-size copy (ascending,
               as the bitset iterates): allocation happens on flush
               only, and the entry must outlive the scratch buffer. *)
            if !m > 0 then Rtree.insert idx.rtree b (Array.sub t.tmp_ids 0 !m)
        | Some _ | None -> ());
        Bitset.clear idx.pending;
        idx.pending_box <- None;
        idx.last_insert_loc <- Some reported
      end

let compress_object t (obj : obj_state) =
  match obj.belief with
  | Compressed _ -> ()
  | Active store when Ps.length store = 0 -> ()
  | Active store ->
      let w = Ps.normalized_weights store in
      let g = Ps.fit_gaussian ~w store in
      let ok =
        match t.config.Config.compress_max_nll with
        | None -> true
        | Some bound -> Ps.avg_nll ~w g store <= bound
      in
      if ok then begin
        Obs.incr c_compressions 1;
        obj.belief <- Compressed g;
        (* The moment-matched Gaussian carries the same mean/cov the
           particle fit reported, but the representation switch is
           flagged anyway: compression can fire on objects outside the
           current scope, and the change feed promises to cover every
           belief mutation. *)
        Bitset.add t.dirty obj.obj_id
      end

let run_compression t e =
  if t.compress then begin
    let rec drain () =
      match Queue.peek_opt t.compress_queue with
      | Some (deadline, obj_id) when deadline <= e ->
          ignore (Queue.pop t.compress_queue);
          (match Hashtbl.find_opt t.objects obj_id with
          | Some obj when e - obj.last_read >= t.config.Config.compress_after ->
              compress_object t obj
          | Some _ | None -> ());
          drain ()
      | Some _ | None -> ()
    in
    drain ()
  end

(* Lazy staleness sweep: each read enqueues (read epoch + horizon + 1,
   id); draining every entry whose deadline has passed marks exactly
   the objects with [e - last_read > out_of_scope_after] out of scope —
   an entry made stale by a later re-read is skipped, because that read
   enqueued a later deadline of its own. Equivalent to testing every
   tracked object per epoch, but touches only fired candidates. *)
let drain_evictions t e =
  let horizon = t.config.Config.out_of_scope_after in
  let rec go () =
    match Queue.peek_opt t.evict_queue with
    | Some (fire, id) when fire <= e ->
        ignore (Queue.pop t.evict_queue);
        (match Hashtbl.find_opt t.objects id with
        | Some obj when obj.last_read + horizon + 1 <= fire ->
            if obj.in_scope then begin
              obj.in_scope <- false;
              Obs.incr c_evictions 1
            end
        | Some _ | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ()

let step t (obs : Types.observation) =
  if obs.Types.o_epoch <= t.epoch then
    invalid_arg "Factored_filter.step: observations out of epoch order";
  let e = obs.Types.o_epoch in
  let reported = obs.Types.o_reported_loc in
  t.newly_seen <- [];
  Hashtbl.clear t.shelf_read;
  let scratch0 = Rfid_par.Pool.get_scratch t.pool 0 in
  let case1 = Scratch.bits scratch0 ~slot:bslot_case1 in
  Bitset.clear case1;
  List.iter
    (fun tag ->
      match tag with
      | Types.Object_tag i -> Bitset.add case1 i
      | Types.Shelf_tag i -> Hashtbl.replace t.shelf_read i ())
    obs.Types.o_read_tags;
  (* 1–2. Reader proposal and weighting (Eq. 5 reader factor). The
     pose memo is refreshed between the two: [weight_readers] and the
     parallel pass both evaluate sensor terms through it. *)
  let t_pose = Obs.start sp_pose_memo in
  propose_readers t e reported;
  refresh_memo t;
  Obs.stop sp_pose_memo t_pose;
  let t_weight = Obs.start sp_weighting in
  weight_readers t reported;
  let rw = Scratch.float_buf scratch0 ~slot:slot_reader_weights (num_readers t) in
  reader_weights_into t rw;
  (* 3. Scope: Case 1 ∪ Case 2, as a scratch bitset, then densified
     into the ascending [scope_ids] stack every later phase walks. *)
  let scope = Scratch.bits scratch0 ~slot:bslot_scope in
  Bitset.clear scope;
  Bitset.union_into ~into:scope case1;
  add_case2_objects t reported scope;
  t.processed_last <- Bitset.cardinal scope;
  ensure_scope t t.processed_last;
  t.scope_len <- Bitset.fill_into scope t.scope_ids;
  (* Every object the parallel pass may touch is exactly the scope;
     feed it to the change set by word-wise OR — O(scope words). *)
  Bitset.union_into ~into:t.dirty scope;
  (* 4. Coordinator pre-pass: the [objects] Hashtbl is not thread-safe,
     so discovery (insertion) and scope bookkeeping happen here, before
     any domain fans out. Newly read objects get a placeholder state;
     the evidence-driven initialization itself (creation,
     decompression, re-initialization) is planned as a per-object
     action and executed inside the parallel pass. The eviction queue
     is drained first, so "seen again after falling out of scope" is
     judged against deadlines that have actually fired. *)
  drain_evictions t e;
  Bitset.iter case1 (fun id ->
      match Hashtbl.find_opt t.objects id with
      | None ->
          Hashtbl.replace t.objects id
            {
              obj_id = id;
              belief = Active (Ps.create ~n:0);
              reader_gen = t.reader_gen;
              last_read = e;
              last_read_reader = reported;
              in_scope = true;
            };
          note_known t id;
          t.newly_seen <- id :: t.newly_seen
      | Some obj -> if not obj.in_scope then t.newly_seen <- id :: t.newly_seen);
  ensure_work t t.scope_len;
  let wn = ref 0 in
  for k = 0 to t.scope_len - 1 do
    let id = t.scope_ids.(k) in
    match Hashtbl.find_opt t.objects id with
    | None -> ()
    | Some obj ->
        let read = Bitset.mem case1 id in
        let action =
          if not read then No_init
          else
            match obj.belief with
            | Active store when Ps.length store = 0 ->
                Init_fresh t.config.Config.num_object_particles
            | Compressed g -> Init_decompress g
            | Active store ->
                let d = Vec3.dist reported obj.last_read_reader in
                if d >= t.config.Config.reinit_far then Init_fresh (Ps.length store)
                else if d >= t.config.Config.reinit_near then Init_half
                else No_init
        in
        t.work.(!wn) <- { w_obj = obj; w_action = action; w_read = read };
        incr wn
  done;
  t.work_len <- !wn;
  (* 5. Parallel per-object update (§IV-B's conditional independence
     given the reader particles): initialization action, pointer
     refresh, proposal, weighting and per-object resampling all run in
     the pool over the snapshot above. Each object draws from its own
     substream keyed by (object id, epoch) — re-derived into the
     domain's scratch generator, so no generator is allocated — and
     every write lands in that object's own store or the domain's own
     scratch arena, so the result is bit-identical for any domain count
     or chunk schedule. The reader array, the memo and [rw] are read
     shared but never written until the pass completes. *)
  let process_item scratch it =
    let obj = it.w_obj in
    let rng = Scratch.rng scratch in
    Rfid_prob.Rng.for_key_into t.substream
      ~key:(Rfid_prob.Rng.key_pair obj.obj_id e)
      rng;
    (match it.w_action with
    | No_init -> ()
    | Init_fresh n ->
        let store =
          match obj.belief with
          | Active store -> store
          | Compressed _ ->
              let s = Ps.create ~n:0 in
              obj.belief <- Active s;
              s
        in
        Ps.resize store n;
        Common.fill_fresh_particles t.cache
          ~overestimate:t.config.Config.init_overestimate ~world:t.world ~pre:t.pre ~rw
          ~rng ~store ~step:1;
        obj.reader_gen <- t.reader_gen
    | Init_decompress g ->
        Obs.incr_shard c_decompressions ~shard:(Scratch.shard scratch) 1;
        let store = Ps.create ~n:0 in
        decompress_into t rng rw store g;
        obj.belief <- Active store;
        obj.reader_gen <- t.reader_gen
    | Init_half -> (
        (* Keep half, move half to the new location (§IV-A). *)
        match obj.belief with
        | Compressed _ -> ()
        | Active store ->
            refresh_pointers t rng rw obj;
            Common.fill_fresh_particles t.cache
              ~overestimate:t.config.Config.init_overestimate ~world:t.world ~pre:t.pre
              ~rw ~rng ~store ~step:2));
    refresh_pointers t rng rw obj;
    propose_and_weight_object t scratch rng obj ~read:it.w_read
  in
  let work = t.work in
  Rfid_par.Pool.parallel_for_chunked_did t.pool ~n:t.work_len
    (fun did lo hi ->
      let scratch = Rfid_par.Pool.get_scratch t.pool did in
      for i = lo to hi - 1 do
        process_item scratch work.(i)
      done);
  (* Memo accounting happens on the coordinator after the pass (never
     inside bodies), so the counters are deterministic. *)
  let hits = ref 0 in
  for i = 0 to t.work_len - 1 do
    match t.work.(i).w_obj.belief with
    | Active store -> hits := !hits + Ps.length store
    | Compressed _ -> ()
  done;
  Sensor_model.pre_note_hits t.pre !hits;
  Obs.stop sp_weighting t_weight;
  Obs.set g_scope_objects (float_of_int t.processed_last);
  Obs.set g_particles_in_scope (float_of_int !hits);
  (* 6. Reader resampling (rare; ESS-triggered). *)
  let t_res = Obs.start sp_resampling in
  maybe_resample_readers t;
  Obs.stop sp_resampling t_res;
  (* 7. Spatial index bookkeeping. *)
  let t_comp = Obs.start sp_compression in
  update_index t reported scope;
  (* 8–9. Compression and scope bookkeeping: each read refreshes the
     object's staleness deadline and (with compression on) its
     compression deadline, in ascending id order as before. *)
  Bitset.iter case1 (fun id ->
      match Hashtbl.find_opt t.objects id with
      | None -> ()
      | Some obj ->
          obj.last_read <- e;
          obj.last_read_reader <- reported;
          obj.in_scope <- true;
          Queue.push (e + t.config.Config.out_of_scope_after + 1, id) t.evict_queue;
          if t.compress then
            Queue.push (e + t.config.Config.compress_after, id) t.compress_queue);
  run_compression t e;
  Obs.stop sp_compression t_comp;
  Obs.set g_index_boxes
    (float_of_int (match t.index with None -> 0 | Some idx -> Rtree.size idx.rtree));
  t.last_reported <- Some reported;
  t.consecutive_degraded <- 0;
  t.epoch <- e

(* Degraded epoch (missing/rejected location fix): dead-reckon the
   reader particles from the motion model with inflated noise, leave
   weights alone (no evidence), and — once the outage outlasts
   [degraded_widen_after] — diffuse object beliefs so the posterior
   admits that objects may have moved unseen. Per-object randomness is
   keyed by (object id, epoch) exactly as in [step], so the result is
   independent of hash-table iteration order and domain count. *)
let dead_reckon ?(shelf_tags = []) t ~epoch:e =
  if e <= t.epoch then
    invalid_arg "Factored_filter.dead_reckon: observations out of epoch order";
  t.newly_seen <- [];
  t.processed_last <- 0;
  let motion = t.params.Params.motion in
  let scale = t.config.Config.degraded_noise_scale in
  let s = motion.Motion_model.sigma in
  let sigma = Vec3.make (s.Vec3.x *. scale) (s.Vec3.y *. scale) (s.Vec3.z *. scale) in
  Array.iter
    (fun r ->
      let loc =
        Common.jitter (Vec3.add r.state.Reader_state.loc motion.Motion_model.velocity)
          ~sigma t.rng
      in
      let heading =
        Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
          ~current:r.state.Reader_state.heading t.rng
      in
      r.state <- Reader_state.make ~loc ~heading)
    t.readers;
  (* Reader localization from shelf tags read this epoch: their
     positions are known exactly, so even without a trusted fix they
     re-weight the dead-reckoned reader particles (read terms are never
     saturation-culled). Ids arrive deduplicated and ascending from the
     engine. *)
  if shelf_tags <> [] then begin
    refresh_memo t;
    let j = num_readers t in
    let scratch0 = Rfid_par.Pool.get_scratch t.pool 0 in
    let acc = Scratch.float_buf scratch0 ~slot:slot_reader_scratch j in
    Array.fill acc 0 j 0.;
    let calls = ref 0 in
    List.iter
      (fun id ->
        match World.shelf_tag_location t.world id with
        | tag_loc ->
            calls := !calls + j;
            ignore
              (Sensor_model.pre_accumulate_tag t.pre ~tx:tag_loc.Vec3.x
                 ~ty:tag_loc.Vec3.y ~tz:tag_loc.Vec3.z ~read:true
                 ~miss_weight:t.config.Config.shelf_miss_weight acc)
        | exception Not_found -> ())
      shelf_tags;
    Sensor_model.pre_note_hits t.pre !calls;
    Obs.incr c_sensor_evals !calls;
    Array.iteri (fun i (r : reader_particle) -> r.log_w <- r.log_w +. acc.(i)) t.readers;
    let m =
      Array.fold_left
        (fun acc (r : reader_particle) -> Float.max acc r.log_w)
        neg_infinity t.readers
    in
    if Float.is_finite m then
      Array.iter (fun (r : reader_particle) -> r.log_w <- r.log_w -. m) t.readers
  end;
  t.consecutive_degraded <- t.consecutive_degraded + 1;
  t.degraded_total <- t.degraded_total + 1;
  let w = t.config.Config.degraded_widen_sigma in
  if t.consecutive_degraded >= t.config.Config.degraded_widen_after && w > 0. then begin
    t.dirty_all <- true;
    let wsigma = Vec3.make w w 0. in
    (* Widening visits every tracked object by evidence semantics (the
       whole posterior decays); the per-object generator is re-keyed
       into the coordinator arena's scratch RNG instead of allocating
       one per object — identical derived state, identical draws. *)
    let krng = Scratch.rng (Rfid_par.Pool.get_scratch t.pool 0) in
    Hashtbl.iter
      (fun id obj ->
        Rfid_prob.Rng.for_key_into t.substream ~key:(Rfid_prob.Rng.key_pair id e) krng;
        match obj.belief with
        | Active store ->
            for i = 0 to Ps.length store - 1 do
              let p = Vec3.make (Ps.x store i) (Ps.y store i) (Ps.z store i) in
              let l = Common.jitter p ~sigma:wsigma krng in
              let l =
                if World.contains t.world l then l else World.clamp_to_shelves t.world l
              in
              Ps.set_loc store i ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z
            done
        | Compressed g ->
            let cov = Rfid_prob.Gaussian.cov g in
            let cov = Array.map Array.copy cov in
            cov.(0).(0) <- cov.(0).(0) +. (w *. w);
            cov.(1).(1) <- cov.(1).(1) +. (w *. w);
            obj.belief <-
              Compressed (Rfid_prob.Gaussian.create ~mean:(Rfid_prob.Gaussian.mean g) ~cov))
      t.objects
  end;
  run_compression t e;
  t.epoch <- e

let degraded_epochs t = t.degraded_total
let consecutive_degraded t = t.consecutive_degraded

let estimate t obj_id =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> None
  | Some obj -> (
      match obj.belief with
      | Compressed g ->
          Some (Vec3.of_array (Rfid_prob.Gaussian.mean g), Rfid_prob.Gaussian.cov g)
      | Active store ->
          let w = Ps.normalized_weights store in
          let g = Ps.fit_gaussian ~w store in
          Some (Vec3.of_array (Rfid_prob.Gaussian.mean g), Rfid_prob.Gaussian.cov g))

let reader_estimate t =
  let rw = reader_weights t in
  let acc = ref Vec3.zero in
  Array.iteri
    (fun i r -> acc := Vec3.add !acc (Vec3.scale rw.(i) r.state.Reader_state.loc))
    t.readers;
  !acc

let newly_seen t = t.newly_seen

let known_objects t =
  let out = ref [] in
  for i = t.known_len - 1 downto 0 do
    out := t.known_sorted.(i) :: !out
  done;
  !out

let iter_known t f =
  for i = 0 to t.known_len - 1 do
    f t.known_sorted.(i)
  done

let num_known t = t.known_len
let changes_dirty_all t = t.dirty_all
let iter_dirty t f = if not t.dirty_all then Bitset.iter t.dirty f

let clear_changes t =
  Bitset.clear t.dirty;
  t.dirty_all <- false

let epoch t = t.epoch
let objects_processed_last_step t = t.processed_last

let is_compressed t obj_id =
  match Hashtbl.find_opt t.objects obj_id with
  | Some { belief = Compressed _; _ } -> true
  | Some { belief = Active _; _ } | None -> false

let num_index_boxes t = match t.index with None -> 0 | Some idx -> Rtree.size idx.rtree

let sensor_memo_hits t = Sensor_model.pre_hits t.pre
let sensor_memo_size t = Sensor_model.pre_size t.pre

let iter_reader_particles t f =
  let rw = reader_weights t in
  Array.iteri (fun i r -> f r.state rw.(i)) t.readers

(* ------------------------------------------------------------------ *)
(* Checkpointing: the complete dynamic state as plain data. Static
   structure (world geometry, params, sensor cache, shelf R-tree, the
   domain pool) is rebuilt by [restore] from the same creation inputs;
   the spatial index is rebuilt by re-inserting its recorded entries —
   queries are consumed as sets, so the exact tree shape is
   unobservable. The particle slabs are serialized to the same logical
   (loc, reader pointer, log weight) tuples as before the SoA layout,
   and index entries / pending sets to the same ascending id lists as
   before the bitset layout, so snapshots stay layout-independent. The
   eviction queue and the [in_scope] flags are not serialized: both are
   derived from [last_read] on restore (each object re-enqueues its
   deadline and is marked in scope; already-stale deadlines fire on the
   next step, before any newly-seen decision reads the flag). *)

type belief_snapshot =
  | Snap_active of (Vec3.t * int * float) array  (* loc, reader_idx, log_w *)
  | Snap_compressed of float array * Rfid_prob.Linalg.mat  (* mean, cov *)

type obj_snapshot = {
  so_id : int;
  so_belief : belief_snapshot;
  so_reader_gen : int;
  so_last_read : int;
  so_last_read_reader : Vec3.t;
}

type index_snapshot = {
  si_entries : (Box2.t * int list) list;
  si_pending_objs : int list;
  si_pending_box : Box2.t option;
  si_last_insert_loc : Vec3.t option;
}

type snapshot = {
  fs_rng : int64;
  fs_substream : int64;
  fs_reader_gen : int;
  fs_readers : (Reader_state.t * float) array;
  fs_objects : obj_snapshot list;  (* sorted by id *)
  fs_index : index_snapshot option;
  fs_compress_queue : (int * int) list;
  fs_last_reported : Vec3.t option;
  fs_epoch : int;
  fs_newly_seen : int list;
  fs_processed_last : int;
  fs_consecutive_degraded : int;
  fs_degraded_total : int;
}

let everything_box =
  Box2.make ~min_x:(-1e12) ~min_y:(-1e12) ~max_x:1e12 ~max_y:1e12

let snapshot t =
  let snap_belief = function
    | Active store ->
        Snap_active
          (Array.init (Ps.length store) (fun i ->
               ( Vec3.make (Ps.x store i) (Ps.y store i) (Ps.z store i),
                 Ps.reader store i,
                 Ps.log_w store i )))
    | Compressed g ->
        Snap_compressed
          (Rfid_prob.Gaussian.mean g, Array.map Array.copy (Rfid_prob.Gaussian.cov g))
  in
  let objects =
    Hashtbl.fold
      (fun id obj acc ->
        {
          so_id = id;
          so_belief = snap_belief obj.belief;
          so_reader_gen = obj.reader_gen;
          so_last_read = obj.last_read;
          so_last_read_reader = obj.last_read_reader;
        }
        :: acc)
      t.objects []
    |> List.sort (fun a b -> Int.compare a.so_id b.so_id)
  in
  let index =
    Option.map
      (fun idx ->
        let entries = ref [] in
        Rtree.iter_overlapping idx.rtree everything_box (fun box ids ->
            entries := (box, Array.to_list ids) :: !entries);
        {
          si_entries = List.rev !entries;
          si_pending_objs = Bitset.elements idx.pending;
          si_pending_box = idx.pending_box;
          si_last_insert_loc = idx.last_insert_loc;
        })
      t.index
  in
  {
    fs_rng = Rfid_prob.Rng.state t.rng;
    fs_substream = Rfid_prob.Rng.state t.substream;
    fs_reader_gen = t.reader_gen;
    fs_readers = Array.map (fun r -> (r.state, r.log_w)) t.readers;
    fs_objects = objects;
    fs_index = index;
    fs_compress_queue = List.of_seq (Queue.to_seq t.compress_queue);
    fs_last_reported = t.last_reported;
    fs_epoch = t.epoch;
    fs_newly_seen = t.newly_seen;
    fs_processed_last = t.processed_last;
    fs_consecutive_degraded = t.consecutive_degraded;
    fs_degraded_total = t.degraded_total;
  }

let snapshot_epoch s = s.fs_epoch

let restore ~world ~params ~config s =
  let use_index, compress =
    match config.Config.variant with
    | Config.Unfactorized ->
        invalid_arg "Factored_filter.restore: use Basic_filter for Unfactorized"
    | Config.Factorized -> (false, false)
    | Config.Factorized_indexed -> (true, false)
    | Config.Factorized_compressed -> (true, true)
  in
  (match (use_index, s.fs_index) with
  | true, None | false, Some _ ->
      invalid_arg
        "Factored_filter.restore: snapshot variant disagrees with config.variant \
         on the spatial index"
  | true, Some _ | false, None -> ());
  let restore_belief = function
    | Snap_active parts ->
        let store = Ps.create ~n:(Array.length parts) in
        Array.iteri
          (fun i (loc, reader_idx, log_w) ->
            Ps.set_loc store i ~x:loc.Vec3.x ~y:loc.Vec3.y ~z:loc.Vec3.z;
            Ps.set_reader store i reader_idx;
            Ps.set_log_w store i log_w)
          parts;
        Active store
    | Snap_compressed (mean, cov) ->
        Compressed (Rfid_prob.Gaussian.create ~mean ~cov)
  in
  let objects = Hashtbl.create 64 in
  List.iter
    (fun o ->
      Hashtbl.replace objects o.so_id
        {
          obj_id = o.so_id;
          belief = restore_belief o.so_belief;
          reader_gen = o.so_reader_gen;
          last_read = o.so_last_read;
          last_read_reader = o.so_last_read_reader;
          in_scope = true;
        })
    s.fs_objects;
  let index =
    Option.map
      (fun (si : index_snapshot) ->
        let rtree = Rtree.create () in
        List.iter
          (fun (box, ids) -> Rtree.insert rtree box (Array.of_list ids))
          si.si_entries;
        let pending = Bitset.create () in
        List.iter (fun id -> Bitset.add pending id) si.si_pending_objs;
        {
          rtree;
          pending;
          pending_box = si.si_pending_box;
          last_insert_loc = si.si_last_insert_loc;
        })
      s.fs_index
  in
  let compress_queue = Queue.create () in
  List.iter (fun item -> Queue.push item compress_queue) s.fs_compress_queue;
  (* Re-derive the eviction queue: one deadline per object from its
     last read, pushed in deadline order so the lazy drain stays a
     head-of-queue scan. *)
  let evict_queue = Queue.create () in
  let horizon = config.Config.out_of_scope_after in
  List.map (fun (o : obj_snapshot) -> (o.so_last_read + horizon + 1, o.so_id)) s.fs_objects
  |> List.sort compare
  |> List.iter (fun item -> Queue.push item evict_queue);
  {
    world;
    params;
    config;
    rng = Rfid_prob.Rng.of_state s.fs_rng;
    substream = Rfid_prob.Rng.of_state s.fs_substream;
    pool = Rfid_par.Pool.get ~num_domains:config.Config.num_domains;
    adaptive =
      config.Config.min_object_particles < config.Config.num_object_particles;
    budget_rungs = budget_ladder config;
    pre = Sensor_model.precompute params.Params.sensor ~n:config.Config.num_reader_particles;
    readers = Array.map (fun (state, log_w) -> { state; log_w }) s.fs_readers;
    reader_gen = s.fs_reader_gen;
    objects;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_rtree = make_shelf_rtree world;
    index;
    compress;
    compress_queue;
    evict_queue;
    shelf_read = Hashtbl.create 8;
    idx_hits = Rtree.Hits.create ~dummy:[||];
    shelf_hits = Rtree.Hits.create ~dummy:(0, Vec3.zero);
    scope_ids = [||];
    scope_len = 0;
    work = [||];
    work_len = 0;
    work_dummy = dummy_work_item ();
    tmp_ids = [||];
    dirty = Bitset.create ();
    (* A restored consumer has no valid cache to patch; everything is
       changed as far as the feed is concerned. *)
    dirty_all = true;
    known_sorted =
      Array.of_list (List.map (fun (o : obj_snapshot) -> o.so_id) s.fs_objects);
    known_len = List.length s.fs_objects;
    last_reported = s.fs_last_reported;
    epoch = s.fs_epoch;
    newly_seen = s.fs_newly_seen;
    processed_last = s.fs_processed_last;
    consecutive_degraded = s.fs_consecutive_degraded;
    degraded_total = s.fs_degraded_total;
  }

let iter_object_particles t obj_id f =
  match Hashtbl.find_opt t.objects obj_id with
  | None | Some { belief = Compressed _; _ } -> ()
  | Some { belief = Active store; _ } ->
      let w = Ps.normalized_weights store in
      for i = 0 to Ps.length store - 1 do
        f
          (Vec3.make (Ps.x store i) (Ps.y store i) (Ps.z store i))
          w.(i)
          t.readers.(Ps.reader store i).state
      done
