test/test_geom.ml: Alcotest Array Box2 Cone Float Format Int List QCheck Rfid_geom Rfid_prob Rng Rtree Util Vec3
