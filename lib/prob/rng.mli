(** Deterministic pseudo-random number generation.

    Every stochastic component of the system threads an explicit [Rng.t]
    so that traces, calibration runs and experiments are reproducible
    from a seed. The generator is SplitMix64 (Steele et al., OOPSLA
    2014): a 64-bit state advanced by a Weyl sequence and finalized by a
    variant of the MurmurHash3 mixer. It is fast, passes BigCrush when
    used as here, and — unlike [Stdlib.Random] — has a trivially
    splittable, copyable state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Two generators
    with the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state: the copy and the original
    produce the same subsequent stream but advance independently. *)

val state : t -> int64
(** The raw 64-bit generator state. Together with {!of_state} /
    {!set_state} this makes a generator checkpointable: restoring the
    state restores the exact remaining stream. *)

val of_state : int64 -> t
(** A generator whose next outputs continue the stream of the generator
    whose {!state} was captured. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state in place (checkpoint restore). *)

val split : t -> t
(** [split t] advances [t] and derives a new generator whose stream is
    (statistically) independent of the remainder of [t]'s stream. Use to
    hand sub-components their own generator. *)

val for_key : t -> key:int64 -> t
(** [for_key t ~key] derives the [key]-th substream of [t] {e without
    advancing [t]}: a pure function of [t]'s current state and [key].
    Derivations therefore commute — any number of substreams can be
    drawn in any order (or concurrently from different domains) and each
    key always yields the same generator. This is the determinism
    backbone of parallel inference: per-object randomness is keyed by
    [key_pair obj_id epoch] so results do not depend on scheduling. *)

val for_key_into : t -> key:int64 -> t -> unit
(** [for_key_into t ~key dst] is {!for_key} writing the derived state
    into [dst] instead of allocating a fresh generator — the hot paths
    re-key one scratch generator per object per epoch. [t] is not
    advanced. *)

val key_pair : int -> int -> int64
(** [key_pair a b] packs two non-negative ints into one substream key;
    distinct pairs with realistic magnitudes (ids, epochs) yield
    distinct, well-separated keys. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [clamp 0 1 p]. *)

val gaussian : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Normal deviate via the Marsaglia polar method. Defaults:
    [mu = 0.], [sigma = 1.]. Requires [sigma >= 0.]. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. Requires [rate > 0.]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val categorical : t -> float array -> int
(** [categorical t w] draws an index proportionally to the non-negative
    weights [w] (not necessarily normalized).
    @raise Invalid_argument if [w] is empty or sums to 0. *)
