open Rfid_prob

let test_log_sum_exp_basic () =
  Util.check_close "lse of log(1),log(2),log(3)" (log 6.)
    (Stats.log_sum_exp [| log 1.; log 2.; log 3. |]);
  Alcotest.(check (float 0.)) "empty" neg_infinity (Stats.log_sum_exp [||]);
  Alcotest.(check (float 0.)) "all -inf" neg_infinity
    (Stats.log_sum_exp [| neg_infinity; neg_infinity |])

let test_log_sum_exp_stability () =
  (* Naive exp would overflow/underflow; stable version must not. *)
  let big = Stats.log_sum_exp [| 1000.; 1000. |] in
  Util.check_close ~eps:1e-9 "huge inputs" (1000. +. log 2.) big;
  let small = Stats.log_sum_exp [| -1000.; -1000. |] in
  Util.check_close ~eps:1e-9 "tiny inputs" (-1000. +. log 2.) small;
  let mixed = Stats.log_sum_exp [| 0.; -10000. |] in
  Util.check_close ~eps:1e-12 "dominated term vanishes" 0. mixed

let test_normalize_log_weights () =
  let w = Stats.normalize_log_weights [| log 1.; log 3. |] in
  Util.check_close "w0" 0.25 w.(0);
  Util.check_close "w1" 0.75 w.(1);
  (* Collapse rescue: all -inf becomes uniform. *)
  let u = Stats.normalize_log_weights [| neg_infinity; neg_infinity |] in
  Util.check_close "uniform rescue" 0.5 u.(0)

let test_normalize () =
  let w = Stats.normalize [| 2.; 6. |] in
  Util.check_close "n0" 0.25 w.(0);
  let u = Stats.normalize [| 0.; 0.; 0. |] in
  Util.check_close "zero-total rescue" (1. /. 3.) u.(1)

let test_ess () =
  Util.check_close "uniform ESS = n" 4.
    (Stats.effective_sample_size [| 0.25; 0.25; 0.25; 0.25 |]);
  Util.check_close "degenerate ESS = 1" 1.
    (Stats.effective_sample_size [| 1.; 0.; 0. |]);
  Util.check_close "empty" 0. (Stats.effective_sample_size [||])

let test_moments () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Util.check_close "mean" 2.5 (Stats.mean a);
  Util.check_close "variance" 1.25 (Stats.variance a);
  Util.check_close "empty mean" 0. (Stats.mean [||]);
  let w = [| 0.5; 0.5; 0.; 0. |] in
  Util.check_close "weighted mean" 1.5 (Stats.weighted_mean ~w a);
  Util.check_close "weighted variance" 0.25 (Stats.weighted_variance ~w a)

let test_quantile () =
  let a = [| 3.; 1.; 2.; 5.; 4. |] in
  Util.check_close "median" 3. (Stats.quantile a ~q:0.5);
  Util.check_close "min" 1. (Stats.quantile a ~q:0.);
  Util.check_close "max" 5. (Stats.quantile a ~q:1.);
  Util.check_close "interpolated" 1.4 (Stats.quantile a ~q:0.1);
  Util.check_raises_invalid "empty" (fun () -> Stats.quantile [||] ~q:0.5)

let test_rmse () =
  Util.check_close "rmse" (sqrt 29.) (Stats.rmse [| 0.; 0. |] [| 3.; -7. |]);
  Util.check_close "rmse value" (sqrt 14.5) (Stats.rmse [| 0.; 0. |] [| 2.; 5. |]);
  Util.check_close "rmse empty" 0. (Stats.rmse [||] [||]);
  Util.check_raises_invalid "length mismatch" (fun () -> Stats.rmse [| 1. |] [||])

let prop_lse_ge_max =
  Util.qcheck "log_sum_exp >= max element"
    QCheck.(array_of_size Gen.(int_range 1 20) (float_range (-50.) 50.))
    (fun a ->
      let lse = Stats.log_sum_exp a in
      let m = Array.fold_left Float.max neg_infinity a in
      lse >= m -. 1e-9)

let prop_normalize_sums_to_one =
  Util.qcheck "normalized log weights sum to 1"
    QCheck.(array_of_size Gen.(int_range 1 30) (float_range (-100.) 100.))
    (fun a ->
      let w = Stats.normalize_log_weights a in
      Float.abs (Array.fold_left ( +. ) 0. w -. 1.) < 1e-9)

let prop_ess_bounds =
  Util.qcheck "1 <= ESS <= n for normalized weights"
    QCheck.(array_of_size Gen.(int_range 1 30) (float_range 0.001 10.))
    (fun a ->
      let w = Stats.normalize a in
      let ess = Stats.effective_sample_size w in
      ess >= 1. -. 1e-9 && ess <= float_of_int (Array.length a) +. 1e-9)

let suite =
  ( "stats",
    [
      Alcotest.test_case "log_sum_exp basics" `Quick test_log_sum_exp_basic;
      Alcotest.test_case "log_sum_exp stability" `Quick test_log_sum_exp_stability;
      Alcotest.test_case "normalize_log_weights" `Quick test_normalize_log_weights;
      Alcotest.test_case "normalize" `Quick test_normalize;
      Alcotest.test_case "effective sample size" `Quick test_ess;
      Alcotest.test_case "moments" `Quick test_moments;
      Alcotest.test_case "quantile" `Quick test_quantile;
      Alcotest.test_case "rmse" `Quick test_rmse;
      prop_lse_ge_max;
      prop_normalize_sums_to_one;
      prop_ess_bounds;
    ] )
