let check w =
  if Array.length w = 0 then invalid_arg "Resample: empty weights"

let multinomial rng w ~n =
  check w;
  Array.init n (fun _ -> Rng.categorical rng w)

let systematic rng w ~n =
  check w;
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then
    (* Degenerate weights: fall back to uniform stride over indices. *)
    Array.init n (fun i -> i mod Array.length w)
  else begin
    let m = Array.length w in
    let step = total /. float_of_int n in
    let u0 = Rng.float rng *. step in
    let out = Array.make n 0 in
    let acc = ref w.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let u = u0 +. (float_of_int i *. step) in
      while !acc < u && !j < m - 1 do
        incr j;
        acc := !acc +. w.(!j)
      done;
      out.(i) <- !j
    done;
    out
  end

let residual rng w ~n =
  check w;
  let w = Stats.normalize w in
  let m = Array.length w in
  let out = Array.make n 0 in
  let filled = ref 0 in
  let residuals = Array.make m 0. in
  for i = 0 to m - 1 do
    let expected = float_of_int n *. w.(i) in
    let copies = int_of_float (Float.floor expected) in
    residuals.(i) <- expected -. float_of_int copies;
    for _ = 1 to copies do
      if !filled < n then begin
        out.(!filled) <- i;
        incr filled
      end
    done
  done;
  while !filled < n do
    out.(!filled) <- Rng.categorical rng residuals;
    incr filled
  done;
  out

let ess_below w ~ratio =
  let n = Array.length w in
  n > 0 && Stats.effective_sample_size (Stats.normalize w) < ratio *. float_of_int n
