(* Uniform grid over packed (cx, cy) keys. Entry state lives in
   parallel arrays indexed by handle; buckets hold handles and are
   derived data — rehashing (on cell-size retune or [clear]) rebuilds
   them from the entry arrays alone. *)

let max_span_cells = 64

(* Growable handle list: the per-cell bucket and the free/oversize
   stacks. Swap-pop removal keeps deletion O(bucket length). *)
type bucket = { mutable ids : int array; mutable n : int }

let bucket_create () = { ids = [||]; n = 0 }

let bucket_push b id =
  let cap = Array.length b.ids in
  if b.n = cap then begin
    let bigger = Array.make (Int.max 4 (2 * cap)) 0 in
    Array.blit b.ids 0 bigger 0 cap;
    b.ids <- bigger
  end;
  b.ids.(b.n) <- id;
  b.n <- b.n + 1

let bucket_remove b id =
  let rec find i = if i >= b.n then -1 else if b.ids.(i) = id then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    b.ids.(i) <- b.ids.(b.n - 1);
    b.n <- b.n - 1
  end

type 'a t = {
  dummy : 'a;
  mutable values : 'a array;
  mutable boxes : Box2.t array;
  mutable alive : bool array;
  (* Covered cell range at registration time; [ox0 > ox1] marks an
     oversize entry (kept on [oversize], not in buckets). *)
  mutable ox0 : int array;
  mutable oy0 : int array;
  mutable ox1 : int array;
  mutable oy1 : int array;
  mutable seen : int array;  (* query-generation stamp, for dedup *)
  mutable cap : int;  (* slots allocated; handles live in [0, cap) *)
  mutable hi : int;  (* slots ever used; live handles are < hi *)
  free : bucket;  (* recycled handles *)
  buckets : (int, bucket) Hashtbl.t;
  oversize : bucket;
  mutable cell : float;
  mutable count : int;
  mutable extent_sum : float;  (* sum of max(width, height) over live entries *)
  mutable query_gen : int;
}

let zero_box = Box2.make ~min_x:0. ~min_y:0. ~max_x:0. ~max_y:0.

let create ~dummy () =
  {
    dummy;
    values = [||];
    boxes = [||];
    alive = [||];
    ox0 = [||];
    oy0 = [||];
    ox1 = [||];
    oy1 = [||];
    seen = [||];
    cap = 0;
    hi = 0;
    free = bucket_create ();
    buckets = Hashtbl.create 64;
    oversize = bucket_create ();
    cell = 1.0;
    count = 0;
    extent_sum = 0.;
    query_gen = 0;
  }

let size t = t.count
let cell_size t = t.cell

(* Cells are addressed by floor(coord / cell); the two signed 31-bit
   halves pack into one immediate int key, so bucket lookups allocate
   nothing. *)
let cell_key cx cy = ((cx land 0x7FFFFFFF) lsl 31) lor (cy land 0x7FFFFFFF)
let cell_of t v = int_of_float (Float.floor (v /. t.cell))

let extent (b : Box2.t) = Float.max (b.Box2.max_x -. b.Box2.min_x) (b.Box2.max_y -. b.Box2.min_y)

let find_bucket t key =
  match Hashtbl.find t.buckets key with
  | b -> b
  | exception Not_found ->
      let b = bucket_create () in
      Hashtbl.add t.buckets key b;
      b

(* Register slot [id]'s box into the grid (or the oversize list) under
   the current cell size, recording the covered range for removal. *)
let link t id =
  let b = t.boxes.(id) in
  let cx0 = cell_of t b.Box2.min_x and cx1 = cell_of t b.Box2.max_x in
  let cy0 = cell_of t b.Box2.min_y and cy1 = cell_of t b.Box2.max_y in
  let spanx = cx1 - cx0 + 1 and spany = cy1 - cy0 + 1 in
  if
    spanx <= 0 || spany <= 0
    || spanx > max_span_cells || spany > max_span_cells
    || spanx * spany > max_span_cells
  then begin
    t.ox0.(id) <- 1;
    t.ox1.(id) <- 0;
    bucket_push t.oversize id
  end
  else begin
    t.ox0.(id) <- cx0;
    t.oy0.(id) <- cy0;
    t.ox1.(id) <- cx1;
    t.oy1.(id) <- cy1;
    for cx = cx0 to cx1 do
      for cy = cy0 to cy1 do
        bucket_push (find_bucket t (cell_key cx cy)) id
      done
    done
  end

let unlink t id =
  if t.ox0.(id) > t.ox1.(id) then bucket_remove t.oversize id
  else
    for cx = t.ox0.(id) to t.ox1.(id) do
      for cy = t.oy0.(id) to t.oy1.(id) do
        match Hashtbl.find t.buckets (cell_key cx cy) with
        | b -> bucket_remove b id
        | exception Not_found -> ()
      done
    done

let rehash t ~cell =
  t.cell <- cell;
  Hashtbl.reset t.buckets;
  t.oversize.n <- 0;
  for id = 0 to t.hi - 1 do
    if t.alive.(id) then link t id
  done

(* Self-tuning: aim the cell at twice the mean live extent, but only
   rehash when the population has drifted a factor of 4 away — boxes
   breathe every epoch, and chasing them would rehash constantly. *)
let maybe_retune t =
  if t.count >= 16 then begin
    let desired = Float.max 1e-6 (2. *. t.extent_sum /. float_of_int t.count) in
    if t.cell > 4. *. desired || 4. *. t.cell < desired then rehash t ~cell:desired
  end

let grow t n =
  let cap = Int.max n (Int.max 8 (2 * t.cap)) in
  let extend dflt a =
    let bigger = Array.make cap dflt in
    Array.blit a 0 bigger 0 t.cap;
    bigger
  in
  t.values <- extend t.dummy t.values;
  t.boxes <- extend zero_box t.boxes;
  t.alive <- extend false t.alive;
  t.ox0 <- extend 0 t.ox0;
  t.oy0 <- extend 0 t.oy0;
  t.ox1 <- extend 0 t.ox1;
  t.oy1 <- extend 0 t.oy1;
  t.seen <- extend 0 t.seen;
  t.cap <- cap

let alloc_slot t =
  if t.free.n > 0 then begin
    t.free.n <- t.free.n - 1;
    t.free.ids.(t.free.n)
  end
  else begin
    if t.hi = t.cap then grow t (t.hi + 1);
    let id = t.hi in
    t.hi <- t.hi + 1;
    id
  end

let insert t box v =
  let id = alloc_slot t in
  t.values.(id) <- v;
  t.boxes.(id) <- box;
  t.alive.(id) <- true;
  t.count <- t.count + 1;
  t.extent_sum <- t.extent_sum +. extent box;
  link t id;
  maybe_retune t;
  id

let check_live t h ~what =
  if h < 0 || h >= t.hi || not t.alive.(h) then
    invalid_arg (Printf.sprintf "Dyn_index.%s: dead or out-of-range handle %d" what h)

let remove t h =
  check_live t h ~what:"remove";
  unlink t h;
  t.alive.(h) <- false;
  t.values.(h) <- t.dummy;
  t.count <- t.count - 1;
  t.extent_sum <- t.extent_sum -. extent t.boxes.(h);
  bucket_push t.free h

let update t h box v =
  check_live t h ~what:"update";
  unlink t h;
  t.extent_sum <- t.extent_sum -. extent t.boxes.(h) +. extent box;
  t.boxes.(h) <- box;
  t.values.(h) <- v;
  link t h;
  maybe_retune t

let get t h =
  check_live t h ~what:"get";
  (t.boxes.(h), t.values.(h))

let push_hit t hits id probe =
  if t.seen.(id) <> t.query_gen then begin
    t.seen.(id) <- t.query_gen;
    if Box2.intersects t.boxes.(id) probe then Rtree.Hits.push hits t.values.(id)
  end

let query_into t probe hits =
  Rtree.Hits.clear hits;
  if t.count > 0 then begin
    t.query_gen <- t.query_gen + 1;
    let cx0 = cell_of t probe.Box2.min_x and cx1 = cell_of t probe.Box2.max_x in
    let cy0 = cell_of t probe.Box2.min_y and cy1 = cell_of t probe.Box2.max_y in
    let spanx = float_of_int (cx1 - cx0 + 1) and spany = float_of_int (cy1 - cy0 + 1) in
    (* A probe covering far more cells than there are entries would
       walk empty buckets; scanning the entries directly is both
       cheaper and immune to cell-count overflow. *)
    if spanx *. spany > float_of_int ((4 * t.count) + 64) then begin
      for id = 0 to t.hi - 1 do
        if t.alive.(id) && Box2.intersects t.boxes.(id) probe then
          Rtree.Hits.push hits t.values.(id)
      done
    end
    else begin
      for cx = cx0 to cx1 do
        for cy = cy0 to cy1 do
          match Hashtbl.find t.buckets (cell_key cx cy) with
          | b ->
              for i = 0 to b.n - 1 do
                push_hit t hits b.ids.(i) probe
              done
          | exception Not_found -> ()
        done
      done;
      for i = 0 to t.oversize.n - 1 do
        push_hit t hits t.oversize.ids.(i) probe
      done
    end
  end

let iter t f =
  for id = 0 to t.hi - 1 do
    if t.alive.(id) then f id t.boxes.(id) t.values.(id)
  done

let clear t =
  Hashtbl.reset t.buckets;
  t.oversize.n <- 0;
  t.free.n <- 0;
  Array.fill t.values 0 t.cap t.dummy;
  Array.fill t.alive 0 t.cap false;
  t.hi <- 0;
  t.count <- 0;
  t.extent_sum <- 0.
