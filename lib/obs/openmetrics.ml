let sanitize_name name =
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if i = 0 && c >= '0' && c <= '9' then Buffer.add_char buf '_';
      Buffer.add_char buf (if ok then c else '_'))
    name;
  Buffer.contents buf

let num v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let render registry =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize_name name in
      line "# TYPE %s counter" n;
      line "%s_total %d" n v)
    (Metrics.counters_list registry);
  List.iter
    (fun (name, v) ->
      let n = sanitize_name name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (num v))
    (Metrics.gauges_list registry);
  List.iter
    (fun (name, h) ->
      let n = sanitize_name name in
      line "# TYPE %s summary" n;
      let count = Metrics.histogram_count h in
      if count > 0 then begin
        List.iter
          (fun q ->
            line "%s{quantile=\"%s\"} %s" n
              (match q with 0.5 -> "0.5" | 0.95 -> "0.95" | _ -> "0.99")
              (num (Metrics.quantile h q)))
          [ 0.5; 0.95; 0.99 ];
        line "%s_sum %s" n (num (Metrics.histogram_sum h))
      end;
      line "%s_count %d" n count)
    (Metrics.histograms_list registry);
  line "# EOF";
  Buffer.contents buf
