(** Emulator of the real RFID lab deployment of §V-C.

    The paper's rig: two parallel rows of 40 EPC Gen2 tags at 4-inch
    spacing (5 of each row's tags are reference tags with known
    positions), scanned by a ThingMagic reader on an iRobot Create at
    0.1 ft/s with one interrogation per second, locating itself by dead
    reckoning with up to 1 ft of error; the antenna's read region is
    spherical with a wide minor range. The reader's timeout setting
    (250/500/750 ms) controls how long marginal tags get to respond —
    longer timeouts read more (and more marginal) tags, enlarging the
    effective region.

    This module reproduces that rig in software: the same geometry, a
    spherical {!Truth_sensor} parameterized by the timeout, and a
    dead-reckoning location stream whose true position drifts (capped at
    1 ft) while the reported position follows the script. The "imagined
    shelf" of Fig. 6(b) — the prior area algorithms may sample object
    locations from — extends from each tag row away from the aisle by
    0.66 ft (small) or 2.6 ft (large). *)

type shelf_size = Small | Large

val shelf_width : shelf_size -> float
(** 0.66 or 2.6 ft. *)

type t = {
  world : Rfid_model.World.t;
      (** imagined shelves (5 segments per row, one reference tag each) *)
  object_locs : Rfid_geom.Vec3.t array;  (** true object-tag locations (70 tags) *)
  sensor : Truth_sensor.t;  (** ground-truth read region for this timeout *)
  timeout_ms : int;
  shelf_size : shelf_size;
}

val deployment : ?timeout_ms:int -> ?shelf_size:shelf_size -> unit -> t
(** Build the rig. [timeout_ms] must be one of 250, 500, 750 (default
    500). @raise Invalid_argument otherwise. *)

val scan : t -> seed:int -> Rfid_model.Trace.t
(** One full scan: down one row and back along the other, with dead
    reckoning drift. Deterministic in [seed]. *)

val num_objects : int
(** 70: 80 tags minus 10 reference tags. *)

val tag_spacing : float
(** 1/3 ft (4 inches). *)

val pass_epochs : int
(** Epochs in one pass down a row (the scan has two passes). *)

val heading : Rfid_model.Types.epoch -> float
(** The robot's commanded heading during a scan: 0 (facing row 0) for
    the first pass, pi (facing row 1) for the return — the
    [Known_heading] schedule an application would supply. *)
