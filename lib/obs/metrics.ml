(* Sharded metrics cells. Hot operations index preallocated arrays:
   [incr]/[observe] touch one int cell (plus sum/min/max floats for
   histograms) and never allocate; registration and read-out take the
   registry mutex and may allocate freely. Rows are indexed by shard
   (the recording domain's id), so parallel bodies never contend on a
   cell; merged values are sums, hence independent of how work was
   scheduled across domains. *)

(* ------------------------------------------------------------------ *)
(* Bucket geometry: 4 buckets per octave starting at 1e-9.            *)

let num_buckets = 256
let buckets_per_octave = 4.
let bucket_lo = 1e-9

let bucket_of_value v =
  if not (v > bucket_lo) (* catches NaN, negatives, tiny values *) then 0
  else begin
    (* Subtract logs rather than divide: [v /. bucket_lo] overflows to
       infinity for v near max_float. The clamp runs in float space so
       an infinite intermediate never reaches [int_of_float]. *)
    let f = Float.ceil (buckets_per_octave *. (Float.log2 v -. Float.log2 bucket_lo)) in
    if not (f > 0.) then 0
    else if f >= float_of_int num_buckets then num_buckets - 1
    else int_of_float f
  end

let bucket_upper i = bucket_lo *. Float.exp2 (float_of_int i /. buckets_per_octave)

(* Geometric midpoint of bucket [i]'s bounds — the value a quantile
   query answers with before clamping into the observed [min, max]. *)
let bucket_rep i = bucket_lo *. Float.exp2 ((float_of_int i -. 0.5) /. buckets_per_octave)

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)

type counter = { c_cells : int array }

type gauge = { mutable g_value : float }

type histogram = {
  h_buckets : int array array;  (* shard -> bucket -> count *)
  h_sums : float array;  (* per shard *)
  h_mins : float array;
  h_maxs : float array;
}

type span = { sp_name : string; sp_hist : histogram }

type metric = M_counter of counter | M_gauge of gauge | M_hist of histogram

type t = {
  n_shards : int;
  table : (string, metric) Hashtbl.t;
  mu : Mutex.t;
}

let create ?(shards = 32) () =
  if shards < 1 then invalid_arg "Metrics.create: shards must be >= 1";
  { n_shards = shards; table = Hashtbl.create 32; mu = Mutex.create () }

let global = create ()
let shards t = t.n_shards

let register t name make describe =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace t.table name m;
          m)
  |> fun m ->
  match describe m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered with a different kind" name)

let counter t name =
  register t name
    (fun () -> M_counter { c_cells = Array.make t.n_shards 0 })
    (function M_counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () -> M_gauge { g_value = Float.nan })
    (function M_gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () ->
      M_hist
        {
          h_buckets = Array.init t.n_shards (fun _ -> Array.make num_buckets 0);
          h_sums = Array.make t.n_shards 0.;
          h_mins = Array.make t.n_shards infinity;
          h_maxs = Array.make t.n_shards neg_infinity;
        })
    (function M_hist h -> Some h | _ -> None)

let reset t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Array.fill c.c_cells 0 (Array.length c.c_cells) 0
          | M_gauge g -> g.g_value <- Float.nan
          | M_hist h ->
              Array.iter (fun row -> Array.fill row 0 num_buckets 0) h.h_buckets;
              Array.fill h.h_sums 0 (Array.length h.h_sums) 0.;
              Array.fill h.h_mins 0 (Array.length h.h_mins) infinity;
              Array.fill h.h_maxs 0 (Array.length h.h_maxs) neg_infinity)
        t.table)

(* ------------------------------------------------------------------ *)
(* Recording (hot)                                                     *)

let incr c n = c.c_cells.(0) <- c.c_cells.(0) + n

let incr_shard c ~shard n =
  let k = Array.length c.c_cells in
  let s = if shard >= 0 && shard < k then shard else ((shard mod k) + k) mod k in
  c.c_cells.(s) <- c.c_cells.(s) + n

let counter_value c = Array.fold_left ( + ) 0 c.c_cells

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe_row h s v =
  let b = bucket_of_value v in
  let row = h.h_buckets.(s) in
  row.(b) <- row.(b) + 1;
  h.h_sums.(s) <- h.h_sums.(s) +. v;
  if v < h.h_mins.(s) then h.h_mins.(s) <- v;
  if v > h.h_maxs.(s) then h.h_maxs.(s) <- v

let observe h v = observe_row h 0 v

let observe_shard h ~shard v =
  let k = Array.length h.h_sums in
  let s = if shard >= 0 && shard < k then shard else ((shard mod k) + k) mod k in
  observe_row h s v

(* ------------------------------------------------------------------ *)
(* Read-out (cold; merges across shards)                               *)

let histogram_count h =
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 h.h_buckets

let histogram_sum h = Array.fold_left ( +. ) 0. h.h_sums
let histogram_min h = Array.fold_left Float.min infinity h.h_mins
let histogram_max h = Array.fold_left Float.max neg_infinity h.h_maxs

let quantile h q =
  let total = histogram_count h in
  if total = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Int.max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let lo = histogram_min h and hi = histogram_max h in
    (* Nearest rank over the merged buckets. *)
    let cum = ref 0 in
    let b = ref 0 in
    let found = ref (-1) in
    while !found < 0 && !b < num_buckets do
      Array.iter (fun row -> cum := !cum + row.(!b)) h.h_buckets;
      if !cum >= rank then found := !b;
      b := !b + 1
    done;
    let answer = if !found < 0 then hi else bucket_rep !found in
    Float.max lo (Float.min hi answer)
  end

let span t name = { sp_name = name; sp_hist = histogram t name }
let start _sp = Unix.gettimeofday ()

let stop sp t0 =
  let dur = Unix.gettimeofday () -. t0 in
  observe sp.sp_hist dur;
  if Trace.enabled () then
    Trace.emit ~name:sp.sp_name ~ts_us:(t0 *. 1e6) ~dur_us:(dur *. 1e6)

let with_ sp f =
  let t0 = start sp in
  match f () with
  | v ->
      stop sp t0;
      v
  | exception e ->
      stop sp t0;
      raise e

(* ------------------------------------------------------------------ *)
(* Listing and JSON dump                                               *)

let sorted_metrics t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_list t =
  List.filter_map
    (function name, M_counter c -> Some (name, counter_value c) | _ -> None)
    (sorted_metrics t)

let gauges_list t =
  List.filter_map
    (function name, M_gauge g -> Some (name, g.g_value) | _ -> None)
    (sorted_metrics t)

let histograms_list t =
  List.filter_map
    (function name, M_hist h -> Some (name, h) | _ -> None)
    (sorted_metrics t)

let add_json_float buf v =
  if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.9g" v)
  else Buffer.add_string buf "null"

let add_hist_json buf h =
  let count = histogram_count h in
  if count = 0 then Buffer.add_string buf "{\"count\": 0}"
  else begin
    Buffer.add_string buf (Printf.sprintf "{\"count\": %d, \"sum\": " count);
    add_json_float buf (histogram_sum h);
    Buffer.add_string buf ", \"min\": ";
    add_json_float buf (histogram_min h);
    Buffer.add_string buf ", \"max\": ";
    add_json_float buf (histogram_max h);
    List.iter
      (fun (label, q) ->
        Buffer.add_string buf (Printf.sprintf ", \"%s\": " label);
        add_json_float buf (quantile h q))
      [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ];
    Buffer.add_char buf '}'
  end

let dump_json ?(extra = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\": \"obs/v1\"";
  List.iter
    (fun (k, raw) -> Buffer.add_string buf (Printf.sprintf ", %S: %s" k raw))
    extra;
  let add_section name render items =
    Buffer.add_string buf (Printf.sprintf ", \"%s\": {" name);
    List.iteri
      (fun i (key, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%S: " key);
        render v)
      items;
    Buffer.add_char buf '}'
  in
  add_section "counters"
    (fun v -> Buffer.add_string buf (string_of_int v))
    (counters_list t);
  add_section "gauges" (fun v -> add_json_float buf v) (gauges_list t);
  add_section "histograms" (fun h -> add_hist_json buf h) (histograms_list t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_json ?extra t oc = output_string oc (dump_json ?extra t)
