(** Object location model (§III-A): objects are stationary but change
    location with probability [move_prob] (alpha) per epoch, in which
    case the new location is uniform over all shelves. The model carries
    no information about {e where} a moved object went — inference
    recovers that from subsequent readings; the transition merely keeps
    particle diversity alive. *)

type t = { move_prob : float }

val create : ?move_prob:float -> unit -> t
(** Default alpha = 1e-4. @raise Invalid_argument unless in [0, 1]. *)

val default : t

val sample_next : t -> World.t -> Rfid_prob.Rng.t -> Rfid_geom.Vec3.t -> Rfid_geom.Vec3.t
(** Draw O_t given O_{t-1}. *)
