lib/sim/lab.mli: Rfid_geom Rfid_model Truth_sensor
