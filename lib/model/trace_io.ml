let header = "# rfid_streams observations v1"

let tag_to_token = Types.tag_to_string

let ( let* ) = Result.bind

let tag_of_token line_no tok =
  match String.index_opt tok ':' with
  | Some i -> (
      let kind = String.sub tok 0 i in
      let id =
        int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
      in
      match (kind, id) with
      | _, None ->
          Error (Printf.sprintf "Trace_io: line %d: bad tag id in %S" line_no tok)
      | _, Some id when id < 0 ->
          Error (Printf.sprintf "Trace_io: line %d: negative tag id in %S" line_no tok)
      | "obj", Some id -> Ok (Types.Object_tag id)
      | "shelf", Some id -> Ok (Types.Shelf_tag id)
      | _, Some _ ->
          Error (Printf.sprintf "Trace_io: line %d: unknown tag kind %S" line_no tok))
  | None -> Error (Printf.sprintf "Trace_io: line %d: malformed tag %S" line_no tok)

let write_observations oc observations =
  output_string oc (header ^ "\n");
  output_string oc "epoch,reported_x,reported_y,reported_z,tags\n";
  List.iter
    (fun (o : Types.observation) ->
      let l = o.Types.o_reported_loc in
      Printf.fprintf oc "%d,%.6f,%.6f,%.6f,%s\n" o.Types.o_epoch l.Rfid_geom.Vec3.x
        l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z
        (String.concat ";" (List.map tag_to_token o.Types.o_read_tags)))
    observations

(* Fields are trimmed individually, so CRLF line endings and stray
   spaces around separators parse cleanly; epochs must be non-negative
   and coordinates finite — a NaN or inf in the file would otherwise
   propagate straight into particle weights. *)
let parse_line line_no line =
  match List.map String.trim (String.split_on_char ',' line) with
  | [ epoch; x; y; z; tags ] ->
      let num what s =
        match float_of_string_opt s with
        | Some v when Float.is_finite v -> Ok v
        | Some _ ->
            Error (Printf.sprintf "Trace_io: line %d: non-finite %s %S" line_no what s)
        | None -> Error (Printf.sprintf "Trace_io: line %d: bad %s %S" line_no what s)
      in
      let* e =
        match int_of_string_opt epoch with
        | None ->
            Error (Printf.sprintf "Trace_io: line %d: bad epoch %S" line_no epoch)
        | Some e when e < 0 ->
            Error (Printf.sprintf "Trace_io: line %d: negative epoch %d" line_no e)
        | Some e -> Ok e
      in
      let* x = num "x" x in
      let* y = num "y" y in
      let* z = num "z" z in
      let* tags =
        if tags = "" then Ok []
        else
          List.fold_left
            (fun acc tok ->
              let* acc = acc in
              let* tag = tag_of_token line_no (String.trim tok) in
              Ok (tag :: acc))
            (Ok [])
            (String.split_on_char ';' tags)
          |> Result.map List.rev
      in
      Ok
        {
          Types.o_epoch = e;
          o_reported_loc = Rfid_geom.Vec3.make x y z;
          o_read_tags = tags;
        }
  | _ -> Error (Printf.sprintf "Trace_io: line %d: expected 5 fields" line_no)

let fold_lines lines ~on_obs ~on_error =
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && (not (String.length line > 0 && line.[0] = '#')) then
        if String.length line >= 5 && String.sub line 0 5 = "epoch" then ()
        else
          match parse_line (i + 1) line with
          | Ok obs -> on_obs obs
          | Error msg -> on_error (i + 1) msg)
    lines

let observation_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Error "Trace_io: not a data line"
  else if String.length line >= 5 && String.sub line 0 5 = "epoch" then
    Error "Trace_io: not a data line (column header)"
  else parse_line 1 line

let observation_to_line (o : Types.observation) =
  let l = o.Types.o_reported_loc in
  Printf.sprintf "%d,%.6f,%.6f,%.6f,%s" o.Types.o_epoch l.Rfid_geom.Vec3.x
    l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z
    (String.concat ";" (List.map tag_to_token o.Types.o_read_tags))

let observations_of_lines lines =
  let out = ref [] in
  fold_lines lines
    ~on_obs:(fun obs -> out := obs :: !out)
    ~on_error:(fun _ msg -> failwith msg);
  List.rev !out

let observations_of_lines_lenient lines =
  let out = ref [] and errors = ref [] in
  fold_lines lines
    ~on_obs:(fun obs -> out := obs :: !out)
    ~on_error:(fun line_no msg -> errors := (line_no, msg) :: !errors);
  (List.rev !out, List.rev !errors)

let input_lines ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  List.rev !lines

let read_observations ic = observations_of_lines (input_lines ic)
let read_observations_lenient ic = observations_of_lines_lenient (input_lines ic)

let observations_to_string observations =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf "epoch,reported_x,reported_y,reported_z,tags\n";
  List.iter
    (fun (o : Types.observation) ->
      let l = o.Types.o_reported_loc in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f,%.6f,%s\n" o.Types.o_epoch l.Rfid_geom.Vec3.x
           l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z
           (String.concat ";" (List.map tag_to_token o.Types.o_read_tags))))
    observations;
  Buffer.contents buf

let observations_of_string s =
  observations_of_lines (String.split_on_char '\n' s)

let observations_of_string_lenient s =
  observations_of_lines_lenient (String.split_on_char '\n' s)

let write_events oc events =
  output_string oc "epoch,obj,x,y,z\n";
  List.iter
    (fun (epoch, obj, (l : Rfid_geom.Vec3.t)) ->
      Printf.fprintf oc "%d,%d,%.6f,%.6f,%.6f\n" epoch obj l.Rfid_geom.Vec3.x
        l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z)
    events
