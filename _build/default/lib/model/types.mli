(** Shared stream vocabulary: tags, epochs, readings, observations.

    §II of the paper fixes the input format — an RFID reading stream
    [(time, tag id)] and a reader location stream [(time, (x,y,z))],
    synchronized into coarse epochs (about one second each). This module
    defines those records plus the per-epoch observation bundle the
    inference engine consumes. *)

type epoch = int
(** Coarse time step; consecutive integers from 0. *)

type tag = Object_tag of int | Shelf_tag of int
(** Tag identity. Shelf tags are affixed at known, fixed locations and
    anchor the reader-location correction; object tags are the targets
    of inference. *)

val tag_equal : tag -> tag -> bool
val tag_compare : tag -> tag -> int
val pp_tag : Format.formatter -> tag -> unit
val tag_to_string : tag -> string

type reading = { r_epoch : epoch; r_tag : tag }
(** One element of the RFID reading stream. *)

type location_report = { l_epoch : epoch; l_loc : Rfid_geom.Vec3.t }
(** One element of the reader location stream. *)

type observation = {
  o_epoch : epoch;
  o_reported_loc : Rfid_geom.Vec3.t;  (** R-hat_t *)
  o_read_tags : tag list;  (** all tags detected this epoch (objects and shelves) *)
}
(** Synchronized per-epoch evidence: everything the world reveals at
    time t. *)

val synchronize :
  readings:reading list -> reports:location_report list -> observation list
(** Merge the two raw streams into per-epoch observations, averaging
    multiple location reports within an epoch and attaching all readings
    of that epoch (the simple low-level processing §II-A describes).
    One observation is emitted for {e every} epoch from the first to the
    last seen in either stream — an epoch without readings is genuine
    negative evidence, not a gap. Epochs without a location report reuse
    the most recent report.
    @raise Invalid_argument if either stream is not sorted by epoch or
    there is no location report at or before the first epoch. *)

module Tag_map : Map.S with type key = tag
module Tag_set : Set.S with type elt = tag
