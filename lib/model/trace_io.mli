(** Plain-text serialization of observation streams and ground-truth
    traces, so recorded deployments can be replayed through the engine
    (and simulator output can be inspected or processed with standard
    tools).

    The observation format is line-oriented CSV:

    {v
    # rfid_streams observations v1
    epoch,reported_x,reported_y,reported_z,tags
    0,0.000,-1.000,0.000,obj:3;shelf:0
    1,0.013,-0.897,0.000,
    v}

    Tags are semicolon-separated [obj:<id>] / [shelf:<id>] tokens; an
    empty field means an epoch without readings.

    Readers tolerate CRLF line endings, surrounding whitespace in any
    field, blank lines and [#] comments. They reject negative epochs,
    negative tag ids and non-finite coordinates: a NaN that parses
    "successfully" would otherwise silently poison every particle
    weight downstream. The [_lenient] variants skip malformed lines and
    report them with line numbers instead of raising, so one corrupt
    record cannot abort a replay. *)

val write_observations : out_channel -> Types.observation list -> unit

val observation_of_line : string -> (Types.observation, string) result
(** Parse one data line ([epoch,x,y,z,tags]) under exactly the rules
    above — trimmed fields, non-negative epoch, finite coordinates,
    valid tag tokens. This is the grammar of the stream server's [PUT]
    payload (see PROTOCOL.md), so wire ingest and file replay accept
    byte-for-byte the same records. Header/comment/blank lines are not
    data: they parse as [Error]. *)

val observation_to_line : Types.observation -> string
(** The inverse of {!observation_of_line}, one line without the
    newline — the same formatting {!write_observations} uses per
    record. *)

val read_observations : in_channel -> Types.observation list
(** @raise Failure with a line-numbered message on malformed input. *)

val read_observations_lenient :
  in_channel -> Types.observation list * (int * string) list
(** Like {!read_observations}, but malformed lines are skipped and
    returned as [(line number, message)] diagnostics alongside the
    successfully parsed observations. Never raises on content. *)

val observations_to_string : Types.observation list -> string
val observations_of_string : string -> Types.observation list

val observations_of_string_lenient :
  string -> Types.observation list * (int * string) list

val write_events :
  out_channel -> (Types.epoch * int * Rfid_geom.Vec3.t) list -> unit
(** Write cleaned location events as [epoch,obj,x,y,z] CSV (the
    statistics field is omitted — downstream consumers of the file
    format want point estimates). *)
