(** Probabilistic queries over live posteriors (PROTOCOL.md §5).

    The query layer maintains a spatial index of the engine's current
    per-object posteriors so [RANGE] does not scan every object per
    request: each known object contributes the axis-aligned box of its
    Gaussian fit at ±{!sigma_reach} standard deviations, and a probe box
    only evaluates the objects whose boxes intersect it. At 3.5σ the
    per-axis mass outside the box is ≈ 2.3e-4, below the [min-mass]
    floor of 1e-3, so the pruning cannot drop a reportable answer.

    The index is rebuilt lazily: {!invalidate} marks it dirty when the
    engine steps, and the next [RANGE] rebuilds it through
    {!Rfid_core.Engine.iter_estimates} ({!Rfid_geom.Rtree} has no
    delete, and most epochs move most objects anyway). Probes
    themselves are allocation-light, through [Rtree.query_into] into a
    reusable hit buffer.

    The module also keeps the bounded ring of emitted events that backs
    [EVENTS since-epoch] — bounded so a long-lived server does not
    accumulate the full event history in memory; evictions are counted,
    never silent. *)

type answer = {
  a_obj : int;
  a_mass : float;
      (** posterior probability that the object lies in the probe box:
          the product of the marginal Gaussian masses along x and y *)
  a_loc : Rfid_geom.Vec3.t;  (** posterior mean *)
}

type t

val sigma_reach : float
(** Half-width of an object's index box, in posterior standard
    deviations per axis (3.5). *)

val min_mass_floor : float
(** Lowest admissible [min-mass] threshold for [RANGE] (0.001);
    requests below it are clamped here, keeping the σ-box pruning
    sound. *)

val create : ?events_keep:int -> unit -> t
(** [events_keep] bounds the event ring (default 4096).
    @raise Invalid_argument if [events_keep < 1]. *)

val invalidate : t -> unit
(** Mark the spatial index stale; the next {!range} rebuilds it. *)

val range :
  t ->
  engine:Rfid_core.Engine.t ->
  min_x:float ->
  min_y:float ->
  max_x:float ->
  max_y:float ->
  min_mass:float ->
  answer list
(** Objects whose posterior mass inside the XY box reaches [min_mass]
    (clamped to at least {!min_mass_floor}), in ascending object id.
    @raise Invalid_argument if a min bound exceeds its max or any bound
    is not finite. *)

val record_event : t -> Rfid_core.Event.t -> unit
(** Append to the ring, evicting the oldest entry when full. *)

val events_since : t -> epoch:int -> Rfid_core.Event.t list
(** Retained events with [ev_epoch >= epoch], oldest first. *)

val events_seen : t -> int
(** Total events ever recorded (evicted ones included). *)

val events_dropped : t -> int
(** Events evicted from the ring so far — when nonzero, [EVENTS] with a
    small enough [since-epoch] is truncated history, and STATS says
    so. *)
