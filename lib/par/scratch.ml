module Particle_store = Rfid_prob.Particle_store
module Rng = Rfid_prob.Rng

(* Each slot caches one buffer per distinct length ever requested. The
   filters only ever ask for a handful of lengths per slot (reader and
   object particle counts), so the per-slot assoc lists stay tiny and a
   linear scan beats any hashing. *)

let num_float_slots = 4
let num_int_slots = 2
let num_bits_slots = 4

type t = {
  float_slots : (int * float array) list array;
  int_slots : (int * int array) list array;
  bits_slots : Rfid_prob.Bitset.t option array;
  slab : Particle_store.t;
  rng : Rng.t;
  mutable allocations : int;
  mutable shard : int;
}

let create ?(shard = 0) () =
  {
    float_slots = Array.make num_float_slots [];
    int_slots = Array.make num_int_slots [];
    bits_slots = Array.make num_bits_slots None;
    slab = Particle_store.create ~n:0;
    rng = Rng.create ~seed:0;
    allocations = 0;
    shard;
  }

let float_buf t ~slot n =
  if slot < 0 || slot >= num_float_slots then
    invalid_arg "Scratch.float_buf: slot out of range";
  let rec find = function
    | (m, b) :: rest -> if m = n then b else find rest
    | [] ->
        let b = if n = 0 then [||] else Array.make n 0. in
        t.float_slots.(slot) <- (n, b) :: t.float_slots.(slot);
        t.allocations <- t.allocations + 1;
        b
  in
  find t.float_slots.(slot)

let int_buf t ~slot n =
  if slot < 0 || slot >= num_int_slots then
    invalid_arg "Scratch.int_buf: slot out of range";
  let rec find = function
    | (m, b) :: rest -> if m = n then b else find rest
    | [] ->
        let b = if n = 0 then [||] else Array.make n 0 in
        t.int_slots.(slot) <- (n, b) :: t.int_slots.(slot);
        t.allocations <- t.allocations + 1;
        b
  in
  find t.int_slots.(slot)

let bits t ~slot =
  if slot < 0 || slot >= num_bits_slots then invalid_arg "Scratch.bits: slot out of range";
  match t.bits_slots.(slot) with
  | Some b -> b
  | None ->
      let b = Rfid_prob.Bitset.create () in
      t.bits_slots.(slot) <- Some b;
      t.allocations <- t.allocations + 1;
      b

let slab t = t.slab
let rng t = t.rng
let allocations t = t.allocations
let shard t = t.shard
let set_shard t s = t.shard <- s
