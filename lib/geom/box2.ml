type t = { min_x : float; min_y : float; max_x : float; max_y : float }

let make ~min_x ~min_y ~max_x ~max_y =
  if
    Float.is_nan min_x || Float.is_nan min_y || Float.is_nan max_x || Float.is_nan max_y
  then invalid_arg "Box2.make: NaN bound";
  if min_x > max_x || min_y > max_y then invalid_arg "Box2.make: min exceeds max";
  { min_x; min_y; max_x; max_y }

let of_points = function
  | [] -> invalid_arg "Box2.of_points: empty list"
  | (p : Vec3.t) :: rest ->
      let box =
        List.fold_left
          (fun (lx, ly, hx, hy) (q : Vec3.t) ->
            (Float.min lx q.x, Float.min ly q.y, Float.max hx q.x, Float.max hy q.y))
          (p.x, p.y, p.x, p.y) rest
      in
      let min_x, min_y, max_x, max_y = box in
      make ~min_x ~min_y ~max_x ~max_y

let of_center (c : Vec3.t) ~half_width ~half_height =
  make ~min_x:(c.x -. half_width) ~min_y:(c.y -. half_height)
    ~max_x:(c.x +. half_width) ~max_y:(c.y +. half_height)

let contains_point t (p : Vec3.t) =
  p.x >= t.min_x && p.x <= t.max_x && p.y >= t.min_y && p.y <= t.max_y

let contains_xy t ~x ~y = x >= t.min_x && x <= t.max_x && y >= t.min_y && y <= t.max_y

let intersects a b =
  a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y && b.min_y <= a.max_y

let union a b =
  {
    min_x = Float.min a.min_x b.min_x;
    min_y = Float.min a.min_y b.min_y;
    max_x = Float.max a.max_x b.max_x;
    max_y = Float.max a.max_y b.max_y;
  }

let area t = (t.max_x -. t.min_x) *. (t.max_y -. t.min_y)
let enlargement a b = area (union a b) -. area a

let inflate t margin =
  make ~min_x:(t.min_x -. margin) ~min_y:(t.min_y -. margin) ~max_x:(t.max_x +. margin)
    ~max_y:(t.max_y +. margin)

let center t = Vec3.make ((t.min_x +. t.max_x) /. 2.) ((t.min_y +. t.max_y) /. 2.) 0.

let pp ppf t =
  Format.fprintf ppf "[%.2f,%.2f]x[%.2f,%.2f]" t.min_x t.max_x t.min_y t.max_y
