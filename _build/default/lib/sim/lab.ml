open Rfid_geom
open Rfid_model

type shelf_size = Small | Large

let shelf_width = function Small -> 0.66 | Large -> 2.6

type t = {
  world : World.t;
  object_locs : Vec3.t array;
  sensor : Truth_sensor.t;
  timeout_ms : int;
  shelf_size : shelf_size;
}

let tag_spacing = 1. /. 3.
let tags_per_row = 40
let segments_per_row = 5
let row_x = 1.5 (* distance from the robot track (x = 0) to each tag row *)
let num_objects = 2 * (tags_per_row - segments_per_row)

(* Reference tags sit at the centre of each of the 5 row segments:
   indices 4, 12, 20, 28, 36 of the 40-tag row. *)
let is_reference idx = idx mod 8 = 4

(* Longer timeouts let marginal (far, oblique) tags answer: the region
   both widens and strengthens slightly. The growth is kept moderate —
   at 2.4 rad of angular falloff the antenna would start reading the
   opposite row through its back lobe, which Gen2 hardware does not. *)
let sensor_for_timeout = function
  | 250 -> Truth_sensor.spherical ~rr_center:0.9 ~range:2.6 ~angle_falloff:1.7 ()
  | 500 -> Truth_sensor.spherical ~rr_center:0.95 ~range:3.0 ~angle_falloff:1.85 ()
  | 750 -> Truth_sensor.spherical ~rr_center:0.98 ~range:3.4 ~angle_falloff:2.0 ()
  | ms -> invalid_arg (Printf.sprintf "Lab: unsupported timeout %d ms" ms)

let row_length = float_of_int tags_per_row *. tag_spacing

let tag_y idx = (float_of_int idx +. 0.5) *. tag_spacing

let deployment ?(timeout_ms = 500) ?(shelf_size = Small) () =
  let sensor = sensor_for_timeout timeout_ms in
  let w = shelf_width shelf_size in
  let seg_len = row_length /. float_of_int segments_per_row in
  (* Imagined shelves: each row split into 5 segments, the row's tags on
     the aisle-facing edge, the box extending away from the aisle. *)
  let shelf row seg =
    let y0 = float_of_int seg *. seg_len in
    let min_x, max_x = if row = 0 then (row_x, row_x +. w) else (-.row_x -. w, -.row_x) in
    let tag_x = if row = 0 then row_x else -.row_x in
    {
      World.shelf_id = (row * segments_per_row) + seg;
      surface = Box2.make ~min_x ~min_y:y0 ~max_x ~max_y:(y0 +. seg_len);
      height = 0.;
      tag = Some (Vec3.make tag_x (y0 +. (seg_len /. 2.)) 0.);
    }
  in
  let shelves =
    List.concat_map
      (fun row -> List.init segments_per_row (fun seg -> shelf row seg))
      [ 0; 1 ]
  in
  let world = World.create shelves in
  let object_locs =
    List.concat_map
      (fun row ->
        List.filteri (fun idx _ -> not (is_reference idx)) (List.init tags_per_row Fun.id)
        |> List.map (fun idx ->
               let x = if row = 0 then row_x else -.row_x in
               Vec3.make x (tag_y idx) 0.))
      [ 0; 1 ]
    |> Array.of_list
  in
  { world; object_locs; sensor; timeout_ms; shelf_size }

let speed = 0.1
let margin = 1.0
let pass_epochs = int_of_float (Float.ceil ((row_length +. (2. *. margin)) /. speed))
let heading e = if e < pass_epochs then 0. else Float.pi

let scan t ~seed =
  let rng = Rfid_prob.Rng.create ~seed in
  let epochs = pass_epochs in
  let path =
    [
      (* Down the aisle facing row 0 (+x), then back facing row 1 (-x). *)
      { Trace_gen.velocity = Vec3.make 0. speed 0.; heading = 0.; seg_epochs = epochs };
      {
        Trace_gen.velocity = Vec3.make 0. (-.speed) 0.;
        heading = Float.pi;
        seg_epochs = epochs;
      };
    ]
  in
  let config =
    {
      Trace_gen.sensor = t.sensor;
      motion_sigma = Vec3.make 0.012 0.012 0.;
      velocity_bias = Vec3.make 0.001 0.004 0.;
      drift_cap = Some 1.0;
      location_noise = Trace_gen.Dead_reckoning;
      read_every = 1;
      movements = [];
    }
  in
  let start = Reader_state.make ~loc:(Vec3.make 0. (-.margin) 0.) ~heading:0. in
  Trace_gen.run ~world:t.world ~object_locs:t.object_locs ~start ~path ~config rng
