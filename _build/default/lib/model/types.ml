type epoch = int
type tag = Object_tag of int | Shelf_tag of int

let tag_equal a b =
  match (a, b) with
  | Object_tag i, Object_tag j | Shelf_tag i, Shelf_tag j -> i = j
  | Object_tag _, Shelf_tag _ | Shelf_tag _, Object_tag _ -> false

let tag_compare a b =
  match (a, b) with
  | Object_tag i, Object_tag j | Shelf_tag i, Shelf_tag j -> Int.compare i j
  | Object_tag _, Shelf_tag _ -> -1
  | Shelf_tag _, Object_tag _ -> 1

let tag_to_string = function
  | Object_tag i -> Printf.sprintf "obj:%d" i
  | Shelf_tag i -> Printf.sprintf "shelf:%d" i

let pp_tag ppf t = Format.pp_print_string ppf (tag_to_string t)

type reading = { r_epoch : epoch; r_tag : tag }
type location_report = { l_epoch : epoch; l_loc : Rfid_geom.Vec3.t }

type observation = {
  o_epoch : epoch;
  o_reported_loc : Rfid_geom.Vec3.t;
  o_read_tags : tag list;
}

let check_sorted what epochs =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a > b then invalid_arg (Printf.sprintf "Types.synchronize: %s stream not sorted" what);
        go rest
    | [ _ ] | [] -> ()
  in
  go epochs

let synchronize ~readings ~reports =
  check_sorted "reading" (List.map (fun r -> r.r_epoch) readings);
  check_sorted "location" (List.map (fun l -> l.l_epoch) reports);
  let first_epoch =
    match (readings, reports) with
    | [], [] -> None
    | r :: _, [] -> Some r.r_epoch
    | [], l :: _ -> Some l.l_epoch
    | r :: _, l :: _ -> Some (Int.min r.r_epoch l.l_epoch)
  in
  match first_epoch with
  | None -> []
  | Some start ->
      let last_epoch =
        let last default l = match List.rev l with [] -> default | x :: _ -> x in
        Int.max
          (last start (List.map (fun r -> r.r_epoch) readings))
          (last start (List.map (fun l -> l.l_epoch) reports))
      in
      (match reports with
      | l :: _ when l.l_epoch <= start -> ()
      | _ -> invalid_arg "Types.synchronize: no location report at or before first epoch");
      let readings = ref readings and reports = ref reports in
      let current_loc = ref Rfid_geom.Vec3.zero in
      let out = ref [] in
      for e = start to last_epoch do
        (* Average all location reports of this epoch. *)
        let sum = ref Rfid_geom.Vec3.zero and n = ref 0 in
        let rec take_reports () =
          match !reports with
          | l :: rest when l.l_epoch = e ->
              sum := Rfid_geom.Vec3.add !sum l.l_loc;
              incr n;
              reports := rest;
              take_reports ()
          | _ -> ()
        in
        take_reports ();
        if !n > 0 then current_loc := Rfid_geom.Vec3.scale (1. /. float_of_int !n) !sum;
        let tags = ref [] in
        let rec take_readings () =
          match !readings with
          | r :: rest when r.r_epoch = e ->
              tags := r.r_tag :: !tags;
              readings := rest;
              take_readings ()
          | _ -> ()
        in
        take_readings ();
        out := { o_epoch = e; o_reported_loc = !current_loc; o_read_tags = List.rev !tags } :: !out
      done;
      List.rev !out

module Tag_ord = struct
  type t = tag

  let compare = tag_compare
end

module Tag_map = Map.Make (Tag_ord)
module Tag_set = Set.Make (Tag_ord)
