(* Golden-trace determinism: for a fixed scenario covering object
   creation, re-detection, decompression, per-object resampling, dead
   reckoning (with posterior widening) and end-of-stream flush, the
   engine's event stream is compared bit-for-bit — floats printed in
   hex — against fixtures captured before the SoA hot-path refactor.
   Any change to RNG draw order or floating-point evaluation order in
   either filter shows up here as a one-line diff.

   Regenerate (only when an intentional behaviour change lands):
     RFID_GOLDEN_PROMOTE=$PWD/test/golden dune exec test/test_main.exe -- test golden
   and commit the updated test/golden/*.txt. *)
open Rfid_model

(* [adaptive = true] turns on the effort knobs (budget floor below K
   plus an ESS resample cap), pinning the adaptive machinery's RNG draw
   order and budget walk the same way the fixed-budget fixtures pin the
   hot path. *)
let variants =
  [
    (false, Rfid_core.Config.Unfactorized, "unfactorized");
    (false, Rfid_core.Config.Factorized, "factorized");
    (false, Rfid_core.Config.Factorized_indexed, "factorized_indexed");
    (false, Rfid_core.Config.Factorized_compressed, "factorized_compressed");
    (true, Rfid_core.Config.Factorized_indexed, "factorized_indexed_adaptive");
  ]

let scenario =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects:12 () in
     let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:0.85 () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass ~speed:0.3 wh ~rounds:2)
         ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
         (Rfid_prob.Rng.create ~seed:17)
     in
     (wh, trace))

(* Three consecutive mid-stream epochs are dead-reckoned; with
   [degraded_widen_after = 2] the last two also widen object beliefs,
   so the degraded code path is part of the golden output. *)
let degraded_epochs_of trace =
  let obs = Trace.observations trace in
  let n = List.length obs in
  List.filteri (fun i _ -> (i >= 6 && i < 9) || (i >= n / 2 && i < (n / 2) + 3)) obs
  |> List.map (fun (o : Types.observation) -> o.Types.o_epoch)

let run ~adaptive ~variant ~num_domains =
  let wh, trace = Lazy.force scenario in
  let config =
    Rfid_core.Config.create ~variant ~num_reader_particles:40
      ~num_object_particles:60
      ?min_object_particles:(if adaptive then Some 15 else None)
      ?resample_ess_ratio:(if adaptive then Some 0.25 else None)
      ~compress_after:10 ~degraded_widen_after:2 ~report_delay:5 ~num_domains ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:Params.default ~config
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:12 ~seed:5 ()
  in
  let degraded = degraded_epochs_of trace in
  let stepped =
    List.concat_map
      (fun (o : Types.observation) ->
        if List.mem o.Types.o_epoch degraded then
          Rfid_core.Engine.step_degraded engine ~epoch:o.Types.o_epoch
        else Rfid_core.Engine.step engine o)
      (Trace.observations trace)
  in
  stepped @ Rfid_core.Engine.flush engine

let dump_events events =
  let b = Buffer.create 4096 in
  List.iter
    (fun (e : Rfid_core.Event.t) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %h %h %h %b" e.Rfid_core.Event.ev_epoch
           e.Rfid_core.Event.ev_obj e.Rfid_core.Event.ev_loc.Rfid_geom.Vec3.x
           e.Rfid_core.Event.ev_loc.Rfid_geom.Vec3.y
           e.Rfid_core.Event.ev_loc.Rfid_geom.Vec3.z e.Rfid_core.Event.ev_degraded);
      (match e.Rfid_core.Event.ev_cov with
      | None -> Buffer.add_string b " -"
      | Some cov ->
          Array.iter
            (fun row ->
              Array.iter (fun v -> Buffer.add_string b (Printf.sprintf " %h" v)) row)
            cov);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fail on the first differing line, not with a full-dump diff. *)
let check_dump what expected got =
  if expected <> got then begin
    let el = String.split_on_char '\n' expected
    and gl = String.split_on_char '\n' got in
    let n = Int.min (List.length el) (List.length gl) in
    let rec first_diff i =
      if i >= n then i
      else if List.nth el i <> List.nth gl i then i
      else first_diff (i + 1)
    in
    let i = first_diff 0 in
    Alcotest.failf "%s: first difference at event %d:@ golden: %s@ got:    %s" what i
      (try List.nth el i with _ -> "<missing>")
      (try List.nth gl i with _ -> "<missing>")
  end

let test_variant (adaptive, variant, name) () =
  let dump1 = dump_events (run ~adaptive ~variant ~num_domains:1) in
  Alcotest.(check bool) (name ^ ": events exist") true (String.length dump1 > 0);
  (match Sys.getenv_opt "RFID_GOLDEN_PROMOTE" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir (name ^ ".txt")) in
      output_string oc dump1;
      close_out oc;
      Printf.printf "promoted %s/%s.txt\n%!" dir name
  | None ->
      check_dump
        (name ^ ": single-domain run vs pre-refactor golden")
        (read_file (Filename.concat "golden" (name ^ ".txt")))
        dump1);
  List.iter
    (fun num_domains ->
      check_dump
        (Printf.sprintf "%s: %d domains vs 1 domain" name num_domains)
        dump1
        (dump_events (run ~adaptive ~variant ~num_domains)))
    [ 2; 4 ];
  Rfid_par.Pool.shutdown_cached ()

let suite =
  ( "golden",
    List.map
      (fun (adaptive, variant, name) ->
        Alcotest.test_case (name ^ " event stream") `Quick
          (test_variant (adaptive, variant, name)))
      variants )
