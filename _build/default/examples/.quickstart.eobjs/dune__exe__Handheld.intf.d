examples/handheld.mli:
