(** The "uniform" baseline of §V-B: whenever a tag is read, its location
    is a uniform random sample over the overlap of the sensing region
    (a disc of the given range around the {e reported} reader location)
    and the shelf area. One event is emitted per presence period, at its
    last read, located at that period's last sample. The paper uses this
    as the worst-case bound on inference error. *)

type config = {
  read_range : float;  (** sensing radius, ft *)
  out_of_scope_after : int;  (** epochs without a read that end a presence period *)
  heading_of : (Rfid_model.Types.epoch -> float) option;
      (** antenna orientation per epoch, when known (see {!Smurf}) *)
}

val default_config : ?heading_of:(Rfid_model.Types.epoch -> float) -> read_range:float -> unit -> config
(** [out_of_scope_after] = 15. @raise Invalid_argument if
    [read_range <= 0]. *)

val run :
  world:Rfid_model.World.t ->
  config:config ->
  seed:int ->
  Rfid_model.Types.observation list ->
  Rfid_core.Event.t list
