open Rfid_baselines
open Rfid_model

(* SMURF window mechanics *)

let window () = Smurf.Window.create (Smurf.default_config ~read_range:3. ())

let test_window_present_while_read () =
  let w = window () in
  for e = 0 to 9 do
    Smurf.Window.observe w ~read:true ~epoch:e;
    Alcotest.(check bool) "present while reading" true (Smurf.Window.present w)
  done

let test_window_absent_initially_silent () =
  let w = window () in
  Smurf.Window.observe w ~read:false ~epoch:0;
  Alcotest.(check bool) "no reads yet: absent" false (Smurf.Window.present w)

let test_window_smooths_dropouts () =
  (* Read rate ~50%: a missed epoch inside the window must not end the
     presence period once the window has adapted. *)
  let w = window () in
  let reads = [ true; true; false; true; false; true; true; false; true; false ] in
  List.iteri (fun e r -> Smurf.Window.observe w ~read:r ~epoch:e) reads;
  Alcotest.(check bool) "window grew" true (Smurf.Window.size w > 1);
  Smurf.Window.observe w ~read:false ~epoch:10;
  Alcotest.(check bool) "single miss smoothed over" true (Smurf.Window.present w)

let test_window_detects_departure () =
  let w = window () in
  for e = 0 to 14 do
    Smurf.Window.observe w ~read:true ~epoch:e
  done;
  (* Tag gone: long run of misses must eventually flip presence. *)
  let still = ref true in
  for e = 15 to 40 do
    Smurf.Window.observe w ~read:false ~epoch:e;
    if not (Smurf.Window.present w) then still := false
  done;
  Alcotest.(check bool) "declared gone" false !still

let test_window_cap () =
  let cfg = { (Smurf.default_config ~read_range:3. ()) with Smurf.max_window = 5 } in
  let w = Smurf.Window.create cfg in
  (* Tiny read rate pushes w* huge; size must stay capped. *)
  for e = 0 to 50 do
    Smurf.Window.observe w ~read:(e mod 7 = 0) ~epoch:e
  done;
  Alcotest.(check bool) "cap respected" true (Smurf.Window.size w <= 5)

(* End-to-end SMURF and Uniform on simulated traces *)

let scenario ?(rr = 0.8) ?(seed = 41) () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:10 () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:rr () in
  let config = Rfid_sim.Trace_gen.default_config ~sensor () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config
      (Rfid_prob.Rng.create ~seed)
  in
  (wh, trace)

let test_smurf_emits_events () =
  let wh, trace = scenario () in
  let events =
    Smurf.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Smurf.default_config ~read_range:3. ()) ~seed:2
      (Trace.observations trace)
  in
  Alcotest.(check bool) "events produced" true (List.length events > 0);
  Util.check_close ~eps:0.01 "every object reported" 1.
    (Rfid_eval.Metrics.coverage events trace);
  (* Sampled locations are always on shelves. *)
  List.iter
    (fun (ev : Rfid_core.Event.t) ->
      if not (World.contains wh.Rfid_sim.Warehouse.world ev.Rfid_core.Event.ev_loc)
      then Alcotest.fail "SMURF event off-shelf")
    events

let test_smurf_error_bounded_but_worse_than_nothing () =
  let wh, trace = scenario () in
  let events =
    Smurf.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Smurf.default_config ~read_range:3. ()) ~seed:2
      (Trace.observations trace)
  in
  let err = Rfid_eval.Metrics.inference_error events trace in
  Alcotest.(check bool)
    (Printf.sprintf "XY %.3f within sane bounds" err.Rfid_eval.Metrics.mean_xy)
    true
    (err.Rfid_eval.Metrics.mean_xy > 0.05 && err.Rfid_eval.Metrics.mean_xy < 3.)

let test_smurf_ignores_shelf_tags () =
  let wh, trace = scenario () in
  let shelf_only =
    List.map
      (fun (o : Types.observation) ->
        {
          o with
          Types.o_read_tags =
            List.filter
              (fun t -> match t with Types.Shelf_tag _ -> true | _ -> false)
              o.Types.o_read_tags;
        })
      (Trace.observations trace)
  in
  let events =
    Smurf.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Smurf.default_config ~read_range:3. ()) ~seed:2 shelf_only
  in
  Alcotest.(check int) "no object readings, no events" 0 (List.length events)

let test_uniform_baseline () =
  let wh, trace = scenario () in
  let events =
    Uniform.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Uniform.default_config ~read_range:3. ()) ~seed:2
      (Trace.observations trace)
  in
  Util.check_close ~eps:0.01 "coverage" 1. (Rfid_eval.Metrics.coverage events trace);
  List.iter
    (fun (ev : Rfid_core.Event.t) ->
      if not (World.contains wh.Rfid_sim.Warehouse.world ev.Rfid_core.Event.ev_loc)
      then Alcotest.fail "uniform event off-shelf")
    events

let test_engine_beats_baselines () =
  (* The paper's headline: our system < SMURF < uniform (on average). *)
  let wh, trace = scenario () in
  let cone = Rfid_sim.Truth_sensor.cone ~rr_major:0.8 () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~samples:8000
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:3 ()
  in
  let params = Params.create ~sensor () in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:60 ~num_object_particles:150 ()
  in
  let ours = Rfid_eval.Runner.run_engine ~params ~config ~seed:4 trace in
  let smurf_events =
    Smurf.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Smurf.default_config ~read_range:3. ()) ~seed:2
      (Trace.observations trace)
  in
  let uniform_events =
    Uniform.run ~world:wh.Rfid_sim.Warehouse.world
      ~config:(Uniform.default_config ~read_range:3. ()) ~seed:2
      (Trace.observations trace)
  in
  let e_ours = ours.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy in
  let e_smurf =
    (Rfid_eval.Metrics.inference_error smurf_events trace).Rfid_eval.Metrics.mean_xy
  in
  let e_uniform =
    (Rfid_eval.Metrics.inference_error uniform_events trace).Rfid_eval.Metrics.mean_xy
  in
  Alcotest.(check bool)
    (Printf.sprintf "ours %.3f < smurf %.3f" e_ours e_smurf)
    true (e_ours < e_smurf);
  Alcotest.(check bool)
    (Printf.sprintf "smurf %.3f <= uniform %.3f (weak order)" e_smurf e_uniform)
    true
    (e_smurf <= e_uniform +. 0.25)

let test_config_validation () =
  Util.check_raises_invalid "bad smurf range" (fun () ->
      ignore (Smurf.default_config ~read_range:0. ()));
  Util.check_raises_invalid "bad uniform range" (fun () ->
      ignore (Uniform.default_config ~read_range:(-1.) ()))

let suite =
  ( "baselines",
    [
      Alcotest.test_case "window present while read" `Quick
        test_window_present_while_read;
      Alcotest.test_case "window silent before first read" `Quick
        test_window_absent_initially_silent;
      Alcotest.test_case "window smooths dropouts" `Quick test_window_smooths_dropouts;
      Alcotest.test_case "window detects departure" `Quick test_window_detects_departure;
      Alcotest.test_case "window cap" `Quick test_window_cap;
      Alcotest.test_case "smurf emits events" `Quick test_smurf_emits_events;
      Alcotest.test_case "smurf error bounded" `Quick
        test_smurf_error_bounded_but_worse_than_nothing;
      Alcotest.test_case "smurf ignores shelf tags" `Quick test_smurf_ignores_shelf_tags;
      Alcotest.test_case "uniform baseline" `Quick test_uniform_baseline;
      Alcotest.test_case "engine beats baselines" `Slow test_engine_beats_baselines;
      Alcotest.test_case "config validation" `Quick test_config_validation;
    ] )
