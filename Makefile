# Standard entry points so every PR runs the same way.

DUNE ?= dune

.PHONY: all build test doc bench bench-json bench-smoke perf-gate perf-gate-strict perf-baseline fuzz crash-test serve-smoke fmt clean

all: build

build:
	$(DUNE) build

# The perf gate rides along non-fatally (leading -): an allocation
# regression prints loudly but does not mask a test failure. The
# golden suite is re-run with the chrome-trace sink enabled to pin the
# invariant that observability never perturbs the event stream.
test:
	$(DUNE) build && $(DUNE) runtest && $(DUNE) exec fuzz/fuzz_main.exe -- 10
	cd test && OBS_TRACE=/tmp/rfid_golden_trace.json $(DUNE) exec ./test_main.exe -- test golden
	$(MAKE) crash-test
	$(MAKE) serve-smoke
	$(MAKE) doc
	$(MAKE) bench-smoke
	-$(MAKE) perf-gate

# API docs. The container may not ship odoc; fall back to a full
# signature check (which still catches malformed doc comments attached
# to the wrong item) so `make doc` is meaningful everywhere. With odoc
# present, any warning is a failure. Runs fatally inside `make test`
# (no leading -): a doc failure fails the build either way.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  out=$$($(DUNE) build @doc 2>&1); status=$$?; \
	  if [ -n "$$out" ]; then echo "$$out"; fi; \
	  if [ $$status -ne 0 ] || [ -n "$$out" ]; then \
	    echo "make doc: FAIL (odoc errors or warnings above)"; exit 1; \
	  fi; \
	  echo "make doc: OK (_build/default/_doc/_html)"; \
	else \
	  echo "make doc: odoc not installed; checking signatures with dune build @check"; \
	  $(DUNE) build @check; \
	fi

# Randomized corrupted-input fuzz (seeds are logged; reproduce any
# failure with `dune exec fuzz/fuzz_main.exe -- ITERS BASE_SEED`).
fuzz:
	$(DUNE) exec fuzz/fuzz_main.exe

# Kill-anywhere durability proof: SIGKILL the CLI at randomized
# durable-byte offsets, recover with `infer --recover`, and require the
# recovered event log to be byte-identical to an uninterrupted run's.
# Seeds are logged; reproduce one trial with
# `dune exec crash/crash_main.exe -- 1 SEED`.
crash-test:
	$(DUNE) exec crash/crash_main.exe -- 50

# End-to-end gate on the stream server: boots the real `rfid_clean
# serve` binary on an ephemeral port, feeds ~100 epochs over loopback,
# and requires (1) every query reply bit-identical to an in-process
# replay of the same trace, (2) BUSY under forced admission overflow,
# and (3) SIGKILL-then-`--recover` re-serving with an events log
# byte-identical to an uninterrupted run's. Fatal in `make test`.
serve-smoke:
	$(DUNE) exec smoke/serve_smoke.exe

# Full table/figure reproduction harness (slow).
bench:
	$(DUNE) exec bench/main.exe

# Machine-readable throughput bench; BENCH_filter.json is committed so
# the perf trajectory is diffable across PRs. The workload string
# records the adaptive-effort knobs (resample_ess, min_particles); the
# f+index+adaptive points and the adaptive_check block track the
# speed/accuracy trade-off and domain bit-identity of the adaptive
# configuration.
bench-json:
	$(DUNE) exec bench/main.exe -- --json BENCH_filter.json

# Seconds-scale end-to-end pass over the JSON-bench machinery (one
# small point per variant + the faulted robustness point); rides along
# with `make test` so harness bitrot is caught early.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke

# Allocation + accuracy regression gate on three 200-object workload
# points (factorized+index, f+index+compress, and f+index+adaptive
# with the canonical adaptive knobs) plus a scaling guard: the
# 5000-vs-500-object minor-words ratio must stay under the baseline's
# pinned bound, pinning per-epoch cost to O(sensing scope). Fails if
# allocation exceeds the committed baseline by >10%, if mean XY error
# exceeds the baseline's err_max_ratio (fatal — a speedup must not
# quietly trade away accuracy; the seeded workload makes the error
# measurement exact), or if the scaling ratio exceeds its bound. Also
# compares wall-clock ns/epoch against the baseline (warn-only: timing
# is noisy on shared machines); override the ratio bound with
# PERF_GATE_TIME_RATIO=<float>, or promote the time check to fatal
# with PERF_GATE_TIME_FATAL=1 / `make perf-gate-strict`.
perf-gate:
	$(DUNE) exec bench/main.exe -- --perf-gate BENCH_baseline.json

# The same gate with the time bound fatal, for quiet machines and
# deliberate perf work.
perf-gate-strict:
	PERF_GATE_TIME_FATAL=1 $(DUNE) exec bench/main.exe -- --perf-gate BENCH_baseline.json

# Refresh the gate baseline after a deliberate allocation-profile
# change; commit BENCH_baseline.json together with that change.
perf-baseline:
	$(DUNE) exec bench/main.exe -- --perf-baseline BENCH_baseline.json

fmt:
	$(DUNE) build @fmt --auto-promote 2>/dev/null || true

clean:
	$(DUNE) clean
