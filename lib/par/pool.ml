(* Worker domains block on [work_ready] between loops; each loop is a
   [job] published under the mutex with a bumped generation counter.
   Chunks are claimed with a wait-free fetch-and-add so load imbalance
   between chunks self-corrects; completion is tracked by the number of
   domains still inside the job, signalled on [work_done]. *)

type job = {
  n : int;
  chunk : int;
  body : int -> int -> int -> unit;  (* did, lo, hi *)
  next : int Atomic.t;  (* next chunk ordinal to claim *)
  mutable running : int;  (* domains not yet finished with this job *)
  mutable error : exn option;  (* first exception raised by a body *)
}

type t = {
  domains_requested : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  scratch : Scratch.t array;  (* one arena per domain, index = did *)
  mutable job : job option;
  mutable generation : int;  (* bumped once per published job *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable min_chunk : int;  (* calibrated default-chunk floor, >= 1 *)
}

let run_chunks pool (job : job) ~did =
  let nchunks = (job.n + job.chunk - 1) / job.chunk in
  let rec loop () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < nchunks then begin
      let lo = c * job.chunk in
      let hi = Int.min job.n (lo + job.chunk) in
      (try job.body did lo hi
       with e ->
         Mutex.lock pool.mutex;
         if job.error = None then job.error <- Some e;
         Mutex.unlock pool.mutex);
      loop ()
    end
  in
  loop ()

let rec worker_loop pool ~did last_gen =
  Mutex.lock pool.mutex;
  while pool.generation = last_gen && not pool.stopping do
    Condition.wait pool.work_ready pool.mutex
  done;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let job = Option.get pool.job in
    Mutex.unlock pool.mutex;
    run_chunks pool job ~did;
    Mutex.lock pool.mutex;
    job.running <- job.running - 1;
    if job.running = 0 then Condition.broadcast pool.work_done;
    Mutex.unlock pool.mutex;
    worker_loop pool ~did gen
  end

let sequential =
  {
    domains_requested = 1;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    scratch = [| Scratch.create () |];
    job = None;
    generation = 0;
    stopping = false;
    workers = [];
    min_chunk = 1;
  }

let num_domains pool = 1 + List.length pool.workers

let parallel_for_chunked_did pool ?chunk ~n body =
  if n > 0 then begin
    let workers = num_domains pool - 1 in
    if workers = 0 then body 0 0 n
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_for_chunked: chunk %d < 1" c)
        | None -> Int.max pool.min_chunk (n / (4 * (workers + 1)))
      in
      let job =
        { n; chunk; body; next = Atomic.make 0; running = workers + 1; error = None }
      in
      Mutex.lock pool.mutex;
      pool.job <- Some job;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      run_chunks pool job ~did:0;
      Mutex.lock pool.mutex;
      job.running <- job.running - 1;
      while job.running > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.job <- None;
      let error = job.error in
      Mutex.unlock pool.mutex;
      match error with Some e -> raise e | None -> ()
    end
  end

let parallel_for_chunked pool ?chunk ~n body =
  parallel_for_chunked_did pool ?chunk ~n (fun _did lo hi -> body lo hi)

let g_min_chunk = Rfid_obs.Metrics.gauge Rfid_obs.Metrics.global "pool.min_chunk"

(* One-shot default-chunk calibration, run once when a pool spawns.
   The old default [n / (4 * num_domains)] ignored how expensive a
   chunk claim actually is on this machine: for small [n] it hands out
   chunks so short that the fetch-and-add plus cache traffic dominates
   the body. Measure both sides — the per-item cost of a cheap float
   loop (a lower bound on any real body) and the per-chunk cost of the
   dispatch machinery (claims on an empty body) — and floor the default
   chunk where claim overhead stays under ~2% of even that cheapest
   body. Timing garbage (a zero/negative/non-finite reading from a
   clock hiccup) falls back to a conservative 16. The floor only
   affects scheduling granularity, never results: the loop contract
   already promises bit-identical output for every chunking. *)
let calibrate pool =
  let items = 65536 in
  let sink = ref 0. in
  let t0 = Unix.gettimeofday () in
  for i = 0 to items - 1 do
    sink := Sys.opaque_identity (!sink +. (float_of_int i *. 1e-9))
  done;
  let item_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int items in
  ignore (Sys.opaque_identity !sink);
  let claims = 8192 in
  let t1 = Unix.gettimeofday () in
  parallel_for_chunked_did pool ~chunk:1 ~n:claims (fun _ _ _ -> ());
  let claim_ns = (Unix.gettimeofday () -. t1) *. 1e9 /. float_of_int claims in
  let chunk =
    if
      Float.is_finite item_ns && Float.is_finite claim_ns && item_ns > 0.
      && claim_ns > 0.
    then int_of_float (Float.ceil (claim_ns /. (0.02 *. item_ns)))
    else 16
  in
  pool.min_chunk <- Int.max 1 (Int.min 4096 chunk);
  Rfid_obs.Metrics.set g_min_chunk (float_of_int pool.min_chunk)

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let create ~num_domains =
  if num_domains < 1 then invalid_arg "Pool.create: num_domains must be >= 1";
  if num_domains = 1 then sequential
  else begin
    let pool =
      {
        domains_requested = num_domains;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        scratch = Array.init num_domains (fun did -> Scratch.create ~shard:did ());
        job = None;
        generation = 0;
        stopping = false;
        workers = [];
        min_chunk = 1;
      }
    in
    (* Worker i carries the stable domain id i + 1; the coordinator is
       always did 0. Scratch arenas are indexed by did, so bodies on
       different domains never share working memory. *)
    pool.workers <-
      List.init (num_domains - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool ~did:(i + 1) 0));
    (* Workers must be joined before the runtime tears down; a pool
       abandoned without [shutdown] would otherwise block process
       exit on domains parked in [Condition.wait]. *)
    at_exit (fun () -> shutdown pool);
    calibrate pool;
    pool
  end

let min_chunk pool = pool.min_chunk

let get_scratch pool did =
  if did < 0 || did >= Array.length pool.scratch then
    invalid_arg "Pool.get_scratch: domain id out of range";
  pool.scratch.(did)

let cache : (int, t) Hashtbl.t = Hashtbl.create 4
let cache_mutex = Mutex.create ()

let get ~num_domains =
  if num_domains <= 1 then sequential
  else begin
    Mutex.lock cache_mutex;
    let pool =
      match Hashtbl.find_opt cache num_domains with
      | Some p when not p.stopping -> p
      | Some _ | None ->
          let p = create ~num_domains in
          Hashtbl.replace cache num_domains p;
          p
    in
    Mutex.unlock cache_mutex;
    pool
  end

let shutdown_cached () =
  Mutex.lock cache_mutex;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) cache [] in
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex;
  List.iter shutdown pools

let map_array pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Seed the result array from element 0 (computed on the
       coordinator) so no dummy value of type ['b] is needed. *)
    let r = Array.make n (f a.(0)) in
    parallel_for_chunked pool ~n:(n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          r.(i + 1) <- f a.(i + 1)
        done);
    r
  end
