lib/prob/rng.mli:
