(* One experiment per table/figure of the paper's evaluation (§V), plus
   ablations. Every experiment prints the series/rows the paper reports;
   EXPERIMENTS.md records paper-vs-measured. All runs are seeded. *)

open Rfid_model
open Rfid_geom

let section title = Printf.printf "\n######## %s ########\n%!" title

(* ------------------------------------------------------------------ *)
(* Fig. 5(a)-(d): true and learned sensor models as read-rate fields.  *)

let calibrate_on_training ?sensing ?(fit_motion = true) ~shelf_tags_kept ~em_iters ~seed () =
  (* Training rig per §V-B: a 20-tag trace; [shelf_tags_kept] of the
     tags have known locations. One tag per shelf so the number of
     known-location tags is exactly the number of kept shelf tags. *)
  let keep =
    if shelf_tags_kept = 0 then []
    else List.init shelf_tags_kept (fun i -> i * 20 / shelf_tags_kept)
  in
  let built =
    Scenarios.warehouse_trace ~num_objects:20 ~objects_per_shelf:1
      ~shelf_tags_kept:keep ?sensing ~seed ()
  in
  let config = Rfid_learn.Calibration.default_config () in
  let config = { config with Rfid_learn.Calibration.em_iters; fit_motion } in
  Rfid_learn.Calibration.calibrate ~world:built.Scenarios.world ~init:Params.default
    ~config
    ~observations:(Trace.observations built.Scenarios.trace)
    ~init_reader:built.Scenarios.trace.Trace.steps.(0).Trace.true_reader

let sensor_models () =
  section "fig5a-d: sensor models (true vs learned)";
  let cone = Rfid_sim.Truth_sensor.cone () in
  Tables.heatmap ~title:"(a) true simulator sensor model (cone)"
    ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~max_x:4. ~max_y:2. ~cols:56
    ~rows:17;
  let show title sensor =
    Tables.heatmap ~title
      ~read_prob:(fun ~d ~theta -> Sensor_model.read_prob_at sensor ~d ~theta)
      ~max_x:4. ~max_y:2. ~cols:56 ~rows:17;
    Printf.printf "  model: %s   MAE vs true: %.4f\n"
      (Format.asprintf "%a" Sensor_model.pp sensor)
      (Rfid_learn.Supervised.mean_abs_error sensor
         ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ())
  in
  let learned20 = calibrate_on_training ~shelf_tags_kept:20 ~em_iters:4 ~seed:61 () in
  show "(b) learned sensor model, 20 shelf tags" learned20.Params.sensor;
  let learned4 = calibrate_on_training ~shelf_tags_kept:4 ~em_iters:4 ~seed:61 () in
  show "(c) learned sensor model, 4 shelf tags" learned4.Params.sensor;
  (* (d): the lab antenna is spherical with a wide minor range; we show
     the supervised fit of the lab truth region (our stand-in for the
     ThingMagic reader's learned model). *)
  let lab = Rfid_sim.Lab.deployment () in
  Tables.heatmap ~title:"(d) lab reader: true spherical region"
    ~read_prob:lab.Rfid_sim.Lab.sensor.Rfid_sim.Truth_sensor.read_prob ~max_x:4.
    ~max_y:2. ~cols:56 ~rows:17;
  let lab_fit =
    Scenarios.fitted_sensor ~key:"lab-500" lab.Rfid_sim.Lab.sensor
  in
  Tables.heatmap ~title:"(d') lab reader: fitted logistic model"
    ~read_prob:(fun ~d ~theta -> Sensor_model.read_prob_at lab_fit ~d ~theta)
    ~max_x:4. ~max_y:2. ~cols:56 ~rows:17

(* ------------------------------------------------------------------ *)
(* Fig. 5(e): inference error vs number of shelf tags used in learning *)

let learning_shelf_tags () =
  section "fig5e: error vs number of shelf tags used in learning";
  (* Reader location reports carry a systematic offset plus noise; the
     known-location tags are what lets calibration discover it. With no
     anchors EM cannot separate reader error from sensor shape — the
     paper's "stuck in local maxima" regime. *)
  let sensing =
    Location_sensing.create ~bias:(Vec3.make 0. 0.35 0.)
      ~sigma:(Vec3.make 0.15 0.15 0.) ()
  in
  (* Test rig per §V-B: 10 object tags + 4 shelf tags, same noise;
     errors averaged over several test traces to tame single-run
     Monte-Carlo noise. *)
  let test_seeds = [ 71; 72; 73 ] in
  let builds =
    List.map
      (fun seed ->
        Scenarios.warehouse_trace ~num_objects:10 ~objects_per_shelf:3 ~sensing ~seed ())
      test_seeds
  in
  let config = Scenarios.engine_config () in
  let avg f = List.fold_left (fun a b -> a +. f b) 0. builds /. float_of_int (List.length builds) in
  let uniform_err =
    avg (fun b ->
        Scenarios.xy_error
          (Scenarios.uniform_events ~world:b.Scenarios.world ~range:3. ~seed:5
             b.Scenarios.trace)
          b.Scenarios.trace)
  in
  let engine_err params =
    avg (fun b ->
        Scenarios.xy_error
          (Scenarios.run ~params ~config b.Scenarios.trace).Rfid_eval.Runner.events
          b.Scenarios.trace)
  in
  let true_err = engine_err { (Scenarios.cone_params ()) with Params.sensing } in
  let cone = Rfid_sim.Truth_sensor.cone () in
  let rows =
    List.map
      (fun k ->
        let learned =
          calibrate_on_training ~sensing ~shelf_tags_kept:k ~em_iters:3 ~seed:61 ()
        in
        let mae =
          Rfid_learn.Supervised.mean_abs_error learned.Params.sensor
            ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ()
        in
        [
          string_of_int k;
          Tables.f3 (engine_err learned);
          Printf.sprintf "%.3f" mae;
          Tables.f3 true_err;
          Tables.f3 uniform_err;
        ])
      [ 0; 1; 2; 4; 8; 12; 20 ]
  in
  Tables.print
    ~title:
      "XY inference error (ft), mean of 3 test traces (10 objects + 4 shelf tags each)"
    ~header:[ "shelf tags"; "learned model"; "sensor MAE"; "true model"; "uniform" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 5(f): error vs major-detection-range read rate                 *)

let read_rate () =
  section "fig5f: error vs read rate in the major detection range";
  let seeds = [ 81; 82; 83 ] in
  let rows =
    List.map
      (fun rr ->
        let builds =
          List.map
            (fun seed ->
              Scenarios.warehouse_trace ~num_objects:16 ~objects_per_shelf:4 ~rr ~seed ())
            seeds
        in
        let avg f =
          List.fold_left (fun a b -> a +. f b) 0. builds /. float_of_int (List.length builds)
        in
        let params = Scenarios.cone_params ~rr () in
        let inference =
          avg (fun b ->
              Scenarios.xy_error
                (Scenarios.run ~params ~config:(Scenarios.engine_config ()) b.Scenarios.trace)
                  .Rfid_eval.Runner.events
                b.Scenarios.trace)
        in
        let uniform =
          avg (fun b ->
              Scenarios.xy_error
                (Scenarios.uniform_events ~world:b.Scenarios.world ~range:3. ~seed:5
                   b.Scenarios.trace)
                b.Scenarios.trace)
        in
        [ Printf.sprintf "%.0f%%" (rr *. 100.); Tables.f3 inference; Tables.f3 uniform ])
      [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5 ]
  in
  Tables.print
    ~title:"XY inference error (ft), 16 object + 4 shelf tags, mean of 3 traces"
    ~header:[ "read rate"; "inference"; "uniform" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 5(g): error vs systematic reader-location error along y        *)

let location_noise () =
  section "fig5g: error vs systematic reader-location error (sigma_y = 0.2)";
  let k = 300 in
  let rows =
    List.map
      (fun mu_y ->
        let sensing =
          Location_sensing.create ~bias:(Vec3.make 0. mu_y 0.)
            ~sigma:(Vec3.make 0.2 0.2 0.) ()
        in
        let built =
          Scenarios.warehouse_trace ~num_objects:16 ~objects_per_shelf:4 ~sensing
            ~seed:91 ()
        in
        let trace = built.Scenarios.trace in
        let base = Scenarios.cone_params () in
        (* On-true: the filter knows the actual bias and noise. *)
        let on_true = { base with Params.sensing } in
        let r_true =
          Scenarios.run ~params:on_true ~config:(Scenarios.engine_config ~k ()) trace
        in
        (* On-learned: calibrate on a training trace with the same noise. *)
        let train =
          Scenarios.warehouse_trace ~num_objects:20 ~objects_per_shelf:5 ~sensing
            ~seed:92 ()
        in
        let cal = Rfid_learn.Calibration.default_config () in
        let cal = { cal with Rfid_learn.Calibration.em_iters = 4 } in
        let learned =
          Rfid_learn.Calibration.calibrate ~world:train.Scenarios.world
            ~init:Params.default ~config:cal
            ~observations:(Trace.observations train.Scenarios.trace)
            ~init_reader:train.Scenarios.trace.Trace.steps.(0).Trace.true_reader
        in
        let r_learned =
          Scenarios.run ~params:learned ~config:(Scenarios.engine_config ~k ()) trace
        in
        (* Off: reported location taken as the truth. *)
        let r_off =
          Scenarios.run
            ~params:(Scenarios.motion_off_params base)
            ~config:(Scenarios.motion_off_config ~k ())
            trace
        in
        let uniform =
          Scenarios.xy_error
            (Scenarios.uniform_events ~world:built.Scenarios.world ~range:3. ~seed:5
               trace)
            trace
        in
        [
          Tables.f2 mu_y;
          Tables.f3 uniform;
          Tables.f3 (Scenarios.xy_error r_off.Rfid_eval.Runner.events trace);
          Tables.f3 (Scenarios.xy_error r_learned.Rfid_eval.Runner.events trace);
          Tables.f3 (Scenarios.xy_error r_true.Rfid_eval.Runner.events trace);
        ])
      [ 0.1; 0.25; 0.4; 0.55; 0.7; 0.85; 1.0 ]
  in
  Tables.print ~title:"XY inference error (ft) vs systematic error along Y"
    ~header:[ "mu_y"; "uniform"; "motion off"; "on-learned"; "on-true" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 5(h): error vs distance of object movement                     *)

let moving_objects () =
  section "fig5h: error vs distance of object movement";
  let num_objects = 48 in
  let moved = 10 in
  let seeds = [ 101; 102; 103 ] in
  let rows =
    List.map
      (fun dist ->
        (* Build the 2-round trace; move [moved] by [dist] along the
           shelf run between the rounds. *)
        let wh = Rfid_sim.Warehouse.layout ~num_objects () in
        let orig = wh.Rfid_sim.Warehouse.object_locs.(moved) in
        let target =
          World.clamp_to_shelves wh.Rfid_sim.Warehouse.world
            (Vec3.make orig.Vec3.x (orig.Vec3.y +. dist) orig.Vec3.z)
        in
        let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:2 in
        let half =
          List.fold_left (fun a s -> a + s.Rfid_sim.Trace_gen.seg_epochs) 0 path / 2
        in
        let config = Rfid_sim.Trace_gen.default_config () in
        let config =
          {
            config with
            Rfid_sim.Trace_gen.movements =
              [ { Rfid_sim.Trace_gen.move_epoch = half; move_obj = moved; move_to = target } ];
          }
        in
        let traces =
          List.map
            (fun seed ->
              Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
                ~object_locs:wh.Rfid_sim.Warehouse.object_locs
                ~start:(Rfid_sim.Warehouse.reader_start wh)
                ~path ~config (Rfid_prob.Rng.create ~seed))
            seeds
        in
        let results =
          List.map
            (fun trace ->
              let r =
                Scenarios.run ~params:(Scenarios.cone_params ())
                  ~config:(Scenarios.engine_config ()) trace
              in
              let per_object =
                Rfid_eval.Metrics.per_object_error r.Rfid_eval.Runner.events trace
              in
              let moved_err =
                match List.assoc_opt moved per_object with
                | Some e -> e
                | None -> Float.nan
              in
              let uniform =
                Scenarios.xy_error
                  (Scenarios.uniform_events ~world:wh.Rfid_sim.Warehouse.world ~range:3.
                     ~seed:5 trace)
                  trace
              in
              (moved_err, Scenarios.xy_error r.Rfid_eval.Runner.events trace, uniform))
            traces
        in
        let avg f =
          List.fold_left (fun a x -> a +. f x) 0. results
          /. float_of_int (List.length results)
        in
        [
          Tables.f2 dist;
          Tables.f3 (avg (fun (m, _, _) -> m));
          Tables.f3 (avg (fun (_, o, _) -> o));
          Tables.f3 (avg (fun (_, _, u) -> u));
        ])
      [ 0.5; 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 20. ]
  in
  Tables.print
    ~title:"error (ft) when one object moves between scan rounds"
    ~header:[ "move dist"; "moved-object err"; "overall err"; "uniform" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 5(i)/(j): scalability in the number of objects                 *)

type scal_row = {
  sc_n : int;
  sc_variant : string;
  sc_err : float;
  sc_ms : float;
  sc_scope : int;
  sc_mb : float;
}

let scalability ?(large = false) () =
  section "fig5i/j: scalability (error and time per reading vs #objects)";
  let sizes = if large then [ 10; 20; 100; 500; 1000; 5000; 10000 ] else [ 10; 20; 100; 500; 1000; 2000 ] in
  let speed = 0.2 in
  let rows = ref [] in
  let record n label (r : Rfid_eval.Runner.result) =
    rows :=
      {
        sc_n = n;
        sc_variant = label;
        sc_err = r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
        sc_ms = r.Rfid_eval.Runner.ms_per_reading;
        sc_scope = r.Rfid_eval.Runner.max_objects_processed;
        sc_mb = r.Rfid_eval.Runner.live_heap_mb;
      }
      :: !rows
  in
  List.iter
    (fun n ->
      Printf.printf "  ... %d objects\n%!" n;
      let built = Scenarios.warehouse_trace ~num_objects:n ~rounds:2 ~speed ~seed:111 () in
      let trace = built.Scenarios.trace in
      let params = Scenarios.cone_params () in
      if n <= 20 then begin
        let config =
          Rfid_core.Config.create ~variant:Rfid_core.Config.Unfactorized
            ~num_reader_particles:10000 ()
        in
        record n "unfactorized" (Scenarios.run ~params ~config trace)
      end;
      if n <= 500 then
        record n "factorized"
          (Scenarios.run ~params
             ~config:(Scenarios.engine_config ~variant:Rfid_core.Config.Factorized ())
             trace);
      record n "factorized+index"
        (Scenarios.run ~params
           ~config:(Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed ())
           trace);
      record n "f+index+compress"
        (Scenarios.run ~params
           ~config:
             (Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_compressed ())
           trace))
    sizes;
  let rows = List.rev !rows in
  Tables.print ~title:"fig5i: inference error (ft)"
    ~header:[ "#objects"; "variant"; "XY error"; "max scope"; "live MB" ]
    (List.map
       (fun r ->
         [
           string_of_int r.sc_n; r.sc_variant; Tables.f3 r.sc_err;
           string_of_int r.sc_scope; Tables.f2 r.sc_mb;
         ])
       rows);
  Tables.print ~title:"fig5j: CPU time per reading (ms)"
    ~header:[ "#objects"; "variant"; "ms/reading" ]
    (List.map
       (fun r -> [ string_of_int r.sc_n; r.sc_variant; Tables.f3 r.sc_ms ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fig. 6(b): lab deployment — ours vs SMURF (improved) vs uniform     *)

let lab_errors events trace =
  let e = Rfid_eval.Metrics.inference_error events trace in
  (e.Rfid_eval.Metrics.mean_x, e.Rfid_eval.Metrics.mean_y, e.Rfid_eval.Metrics.mean_xy)

let lab_table () =
  section "fig6b: lab deployment (dead-reckoning robot, spherical reader)";
  let heading_model = Rfid_core.Config.Known_heading Rfid_sim.Lab.heading in
  let rows = ref [] in
  List.iter
    (fun shelf_size ->
      List.iter
        (fun timeout_ms ->
          let lab = Rfid_sim.Lab.deployment ~timeout_ms ~shelf_size () in
          let trace = Rfid_sim.Lab.scan lab ~seed:7 in
          (* Calibrate the sensor model from a separate training scan of
             the same rig (§V-C uses the shelf tags this way). *)
          let train = Rfid_sim.Lab.scan lab ~seed:8 in
          let cal = Rfid_learn.Calibration.default_config ~heading_model () in
          let cal = { cal with Rfid_learn.Calibration.em_iters = 3 } in
          let learned =
            Rfid_learn.Calibration.calibrate ~world:lab.Rfid_sim.Lab.world
              ~init:Params.default ~config:cal
              ~observations:(Trace.observations train)
              ~init_reader:train.Trace.steps.(0).Trace.true_reader
          in
          let config =
            Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
              ~num_reader_particles:150 ~num_object_particles:300 ~heading_model ()
          in
          let ours = Scenarios.run ~params:learned ~config trace in
          (* SMURF is offered the read range from our learned model. *)
          let range =
            Float.min 8. (Sensor_model.detection_range learned.Params.sensor)
          in
          let smurf =
            Scenarios.smurf_events ~heading_of:Rfid_sim.Lab.heading
              ~world:lab.Rfid_sim.Lab.world ~range ~seed:5 trace
          in
          let uniform =
            Scenarios.uniform_events ~heading_of:Rfid_sim.Lab.heading
              ~world:lab.Rfid_sim.Lab.world ~range ~seed:5 trace
          in
          let ox, oy, oxy = lab_errors ours.Rfid_eval.Runner.events trace in
          let sx, sy, sxy = lab_errors smurf trace in
          let ux, uy, uxy = lab_errors uniform trace in
          rows :=
            [
              Printf.sprintf "%d (%s)" timeout_ms
                (match shelf_size with Rfid_sim.Lab.Small -> "SS" | Rfid_sim.Lab.Large -> "LS");
              Tables.f2 ox; Tables.f2 oy; Tables.f2 oxy;
              Tables.f2 sx; Tables.f2 sy; Tables.f2 sxy;
              Tables.f2 ux; Tables.f2 uy; Tables.f2 uxy;
            ]
            :: !rows)
        [ 250; 500; 750 ])
    [ Rfid_sim.Lab.Small; Rfid_sim.Lab.Large ];
  Tables.print
    ~title:
      "inference error (ft); SS = small imagined shelf (0.66 ft deep), LS = large (2.6 ft)"
    ~header:
      [
        "timeout"; "ours X"; "ours Y"; "ours XY"; "smurf X"; "smurf Y"; "smurf XY";
        "unif X"; "unif Y"; "unif XY";
      ]
    (List.rev !rows);
  (* Headline number: average error reduction of ours vs SMURF. *)
  let reductions =
    List.filter_map
      (fun row ->
        match row with
        | _ :: _ :: _ :: oxy :: _ :: _ :: sxy :: _ ->
            let o = float_of_string oxy and s = float_of_string sxy in
            if s > 0. then Some (1. -. (o /. s)) else None
        | _ -> None)
      !rows
  in
  let avg =
    List.fold_left ( +. ) 0. reductions /. float_of_int (List.length reductions)
  in
  Printf.printf "\n  average error reduction vs SMURF: %.0f%% (paper: 49%%)\n" (100. *. avg)

(* ------------------------------------------------------------------ *)
(* Throughput summary (§V-D text claims)                               *)

let throughput () =
  section "tput: sustained readings/second per engine variant";
  let built = Scenarios.warehouse_trace ~num_objects:500 ~rounds:2 ~speed:0.2 ~seed:121 () in
  let trace = built.Scenarios.trace in
  let params = Scenarios.cone_params () in
  let rows =
    List.map
      (fun (label, config) ->
        let r = Scenarios.run ~params ~config trace in
        let per_s =
          if r.Rfid_eval.Runner.elapsed_s > 0. then
            float_of_int r.Rfid_eval.Runner.total_readings /. r.Rfid_eval.Runner.elapsed_s
          else 0.
        in
        [
          label;
          Printf.sprintf "%.0f" per_s;
          Tables.f3 r.Rfid_eval.Runner.ms_per_reading;
          Tables.f3 r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
        ])
      [
        ( "factorized",
          Scenarios.engine_config ~variant:Rfid_core.Config.Factorized () );
        ( "factorized+index",
          Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed () );
        ( "f+index+compress",
          Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_compressed () );
      ]
  in
  Tables.print ~title:"500 objects, two scan rounds"
    ~header:[ "variant"; "readings/s"; "ms/reading"; "XY error (ft)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablate_resample () =
  section "ablate-resample: resampling scheme and trigger";
  let built = Scenarios.warehouse_trace ~num_objects:16 ~objects_per_shelf:4 ~seed:131 () in
  let trace = built.Scenarios.trace in
  let params = Scenarios.cone_params () in
  let rows =
    List.map
      (fun (label, scheme, ratio) ->
        let config =
          Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
            ~num_reader_particles:100 ~num_object_particles:200
            ~resample_scheme:scheme ~resample_ratio:ratio ()
        in
        let r = Scenarios.run ~params ~config trace in
        [
          label;
          Tables.f3 r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
          Tables.f3 r.Rfid_eval.Runner.ms_per_reading;
        ])
      [
        ("systematic, ESS 0.5 (ours)", Rfid_core.Config.Systematic, 0.5);
        ("multinomial, ESS 0.5", Rfid_core.Config.Multinomial, 0.5);
        ("residual, ESS 0.5", Rfid_core.Config.Residual, 0.5);
        ("systematic, every step", Rfid_core.Config.Systematic, 1.0);
        ("systematic, ESS 0.2", Rfid_core.Config.Systematic, 0.2);
      ]
  in
  Tables.print ~title:"16 objects, one scan round"
    ~header:[ "policy"; "XY error (ft)"; "ms/reading" ]
    rows

let ablate_index () =
  section "ablate-index: spatial index vs brute-force Case-2 scan";
  let params = Scenarios.cone_params () in
  let rows =
    List.concat_map
      (fun n ->
        let built = Scenarios.warehouse_trace ~num_objects:n ~speed:0.2 ~seed:141 () in
        let trace = built.Scenarios.trace in
        List.map
          (fun (label, variant) ->
            let r =
              Scenarios.run ~params ~config:(Scenarios.engine_config ~variant ()) trace
            in
            [
              string_of_int n;
              label;
              Tables.f3 r.Rfid_eval.Runner.ms_per_reading;
              string_of_int r.Rfid_eval.Runner.max_objects_processed;
            ])
          [
            ("brute force", Rfid_core.Config.Factorized);
            ("R-tree index", Rfid_core.Config.Factorized_indexed);
          ])
      [ 25; 100; 400 ]
  in
  Tables.print ~title:"cost of the Case-2 candidate computation"
    ~header:[ "#objects"; "method"; "ms/reading"; "max scope" ]
    rows

let ablate_compress () =
  section "ablate-compress: belief-compression particle budget";
  let built = Scenarios.warehouse_trace ~num_objects:100 ~rounds:2 ~speed:0.2 ~seed:151 () in
  let trace = built.Scenarios.trace in
  let params = Scenarios.cone_params () in
  let rows =
    List.map
      (fun dp ->
        let config =
          Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_compressed
            ~num_reader_particles:100 ~num_object_particles:200
            ~decompress_particles:dp ()
        in
        let r = Scenarios.run ~params ~config trace in
        [
          string_of_int dp;
          Tables.f3 r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
          Tables.f3 r.Rfid_eval.Runner.ms_per_reading;
        ])
      [ 5; 10; 25; 50; 100 ]
  in
  Tables.print ~title:"100 objects, two scan rounds (second round runs on decompressed beliefs)"
    ~header:[ "decompress particles"; "XY error (ft)"; "ms/reading" ]
    rows

(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> unit)) list =
  [
    ("sensor-models", "Fig 5(a)-(d): true vs learned sensor models", sensor_models);
    ("learning-shelf-tags", "Fig 5(e): error vs #shelf tags in learning", learning_shelf_tags);
    ("read-rate", "Fig 5(f): error vs major-range read rate", read_rate);
    ("location-noise", "Fig 5(g): error vs systematic location error", location_noise);
    ("moving-objects", "Fig 5(h): error vs movement distance", moving_objects);
    ("scalability", "Fig 5(i)/(j): error and time vs #objects", fun () -> scalability ());
    ("lab-table", "Fig 6(b): lab deployment, ours vs SMURF vs uniform", lab_table);
    ("throughput", "Text of SV-D: readings/second", throughput);
    ("ablate-resample", "Ablation: resampling schemes/triggers", ablate_resample);
    ("ablate-index", "Ablation: R-tree vs brute force", ablate_index);
    ("ablate-compress", "Ablation: decompression particle budget", ablate_compress);
  ]
