(** Ground-truth sensing regions used by the simulator to decide whether
    a tag responds. These are deliberately {e not} the logistic family
    the inference engine assumes — the point of Fig. 5(a)–(d) is that EM
    fits the logistic model to whatever region the hardware actually
    has. *)

type t = {
  read_prob : d:float -> theta:float -> float;
      (** probability a tag at distance [d] (ft) and unsigned angle
          [theta] (radians) responds in one interrogation round *)
  range : float;  (** distance beyond which the probability is 0 *)
  half_angle : float;  (** angle beyond which the probability is 0 *)
}

val cone : ?rr_major:float -> ?range:float -> unit -> t
(** The §V-A warehouse sensor: a cone with a 30° open angle for the
    major detection range at uniform read rate [rr_major] (default 1.0),
    plus an additional 15° for the minor detection range whose rate
    decays linearly from [rr_major] to 0. Default [range] 3 ft.
    @raise Invalid_argument unless [0 <= rr_major <= 1] and
    [range > 0]. *)

val spherical : ?rr_center:float -> ?range:float -> ?angle_falloff:float -> unit -> t
(** The §V-C lab antenna: a spherical region with a wide minor range
    whose read rate is inversely related to the tag's angle from the
    antenna centre — [rr_center * max 0 (1 - theta / angle_falloff)],
    flat in distance up to [range] then a linear fade over the last
    20%. Defaults: [rr_center] 0.8, [range] 4 ft, [angle_falloff]
    2.0 rad. *)

val sample_read : t -> Rfid_prob.Rng.t -> d:float -> theta:float -> bool

val read_prob_at :
  t ->
  reader_loc:Rfid_geom.Vec3.t ->
  reader_heading:float ->
  tag_loc:Rfid_geom.Vec3.t ->
  float
(** Evaluate the region at the geometry between a reader pose and a tag
    (same distance/angle convention as the inference-side
    {!Rfid_model.Sensor_model}). *)
