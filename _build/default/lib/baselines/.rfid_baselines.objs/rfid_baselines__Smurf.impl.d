lib/baselines/smurf.ml: Array Box2 Float Hashtbl Int List Option Rfid_core Rfid_geom Rfid_model Rfid_prob Types Vec3 World
