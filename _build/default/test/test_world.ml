open Rfid_model

let test_create_validation () =
  Util.check_raises_invalid "empty" (fun () -> World.create []);
  let s =
    {
      World.shelf_id = 0;
      surface = Rfid_geom.Box2.make ~min_x:0. ~min_y:0. ~max_x:1. ~max_y:1.;
      height = 0.;
      tag = None;
    }
  in
  Util.check_raises_invalid "duplicate ids" (fun () -> World.create [ s; s ])

let test_shelf_tags () =
  let w = Util.two_shelf_world () in
  Alcotest.(check int) "two tags" 2 (List.length (World.shelf_tags w));
  Util.check_vec3 "tag 0" (Util.vec3 2. 5. 0.) (World.shelf_tag_location w 0);
  Alcotest.check_raises "unknown shelf" Not_found (fun () ->
      ignore (World.shelf_tag_location w 9))

let test_with_shelf_tags () =
  let w = Util.two_shelf_world () in
  let w1 = World.with_shelf_tags w ~keep:[ 1 ] in
  Alcotest.(check int) "one tag kept" 1 (List.length (World.shelf_tags w1));
  Alcotest.check_raises "tag 0 dropped" Not_found (fun () ->
      ignore (World.shelf_tag_location w1 0));
  Util.check_vec3 "tag 1 kept" (Util.vec3 2. 15. 0.) (World.shelf_tag_location w1 1);
  (* Geometry unchanged. *)
  Alcotest.(check int) "shelves unchanged" 2 (World.num_shelves w1);
  let w_none = World.with_shelf_tags w ~keep:[] in
  Alcotest.(check int) "no tags" 0 (List.length (World.shelf_tags w_none))

let test_sampling_on_shelves () =
  let w = Util.two_shelf_world () in
  let rng = Util.rng () in
  let on_first = ref 0 in
  for _ = 1 to 5000 do
    let p = World.sample_on_shelves w rng in
    if not (World.contains w p) then Alcotest.fail "sample off-shelf";
    if p.Rfid_geom.Vec3.y < 10. then incr on_first
  done;
  (* Equal areas: roughly half per shelf. *)
  Util.check_in_range "area weighting" ~lo:2200. ~hi:2800. (float_of_int !on_first)

let test_contains_and_clamp () =
  let w = Util.two_shelf_world () in
  Alcotest.(check bool) "inside" true (World.contains w (Util.vec3 3. 5. 0.));
  Alcotest.(check bool) "outside" false (World.contains w (Util.vec3 0. 5. 0.));
  Util.check_vec3 "clamp to edge" (Util.vec3 2. 5. 0.)
    (World.clamp_to_shelves w (Util.vec3 0. 5. 0.));
  (* A point already on a shelf clamps to itself. *)
  Util.check_vec3 "identity" (Util.vec3 3. 12. 0.)
    (World.clamp_to_shelves w (Util.vec3 3. 12. 0.));
  (* Clamping picks the nearest shelf. *)
  let c = World.clamp_to_shelves w (Util.vec3 5. 19. 0.) in
  Util.check_vec3 "nearest shelf" (Util.vec3 4. 19. 0.) c

let test_bbox_and_area () =
  let w = Util.two_shelf_world () in
  let b = World.bounding_box w in
  Util.check_close "bbox area" 40. (Rfid_geom.Box2.area b);
  Util.check_close "total area" 40. (World.total_area w)

let prop_clamp_lands_on_shelf =
  Util.qcheck "clamp_to_shelves lands on a shelf"
    QCheck.(pair (float_range (-20.) 20.) (float_range (-20.) 40.))
    (fun (x, y) ->
      let w = Util.two_shelf_world () in
      World.contains w (World.clamp_to_shelves w (Util.vec3 x y 0.)))

let suite =
  ( "world",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "shelf tags" `Quick test_shelf_tags;
      Alcotest.test_case "with_shelf_tags" `Quick test_with_shelf_tags;
      Alcotest.test_case "sampling on shelves" `Quick test_sampling_on_shelves;
      Alcotest.test_case "contains and clamp" `Quick test_contains_and_clamp;
      Alcotest.test_case "bbox and area" `Quick test_bbox_and_area;
      prop_clamp_lands_on_shelf;
    ] )
