open Rfid_prob

let counts_of idx m =
  let c = Array.make m 0 in
  Array.iter (fun i -> c.(i) <- c.(i) + 1) idx;
  c

let test_systematic_exact_for_uniform () =
  (* Uniform weights: systematic resampling must return each index
     exactly once (n = m). *)
  let r = Util.rng () in
  let w = Array.make 10 0.1 in
  let idx = Resample.systematic r w ~n:10 in
  Alcotest.(check (array int)) "identity multiset" (Array.init 10 Fun.id)
    (let s = Array.copy idx in
     Array.sort Int.compare s;
     s)

let test_systematic_proportionality () =
  let r = Util.rng () in
  let w = [| 0.5; 0.25; 0.25 |] in
  let idx = Resample.systematic r w ~n:1000 in
  let c = counts_of idx 3 in
  (* Systematic resampling has bounded deviation: count within 1 of
     expectation. *)
  Util.check_in_range "c0" ~lo:499. ~hi:501. (float_of_int c.(0));
  Util.check_in_range "c1" ~lo:249. ~hi:251. (float_of_int c.(1))

let test_multinomial_unbiased () =
  let r = Util.rng () in
  let w = [| 0.7; 0.3 |] in
  let idx = Resample.multinomial r w ~n:50000 in
  let c = counts_of idx 2 in
  Util.check_close ~eps:0.02 "multinomial rate" 0.7 (float_of_int c.(0) /. 50000.)

let test_residual_floor_counts () =
  let r = Util.rng () in
  let w = [| 0.5; 0.3; 0.2 |] in
  let idx = Resample.residual r w ~n:10 in
  let c = counts_of idx 3 in
  (* Deterministic floors: at least 5, 3, 2 copies respectively. *)
  Alcotest.(check bool) "floor 0" true (c.(0) >= 5);
  Alcotest.(check bool) "floor 1" true (c.(1) >= 3);
  Alcotest.(check bool) "floor 2" true (c.(2) >= 2);
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 c)

let test_zero_weight_never_selected () =
  let r = Util.rng () in
  let w = [| 0.; 1.; 0. |] in
  Array.iter
    (fun scheme ->
      let idx = scheme r w ~n:100 in
      Array.iter (fun i -> Alcotest.(check int) "only live index" 1 i) idx)
    [| Resample.systematic; Resample.multinomial; Resample.residual |]

let test_empty_rejected () =
  let r = Util.rng () in
  Util.check_raises_invalid "systematic empty" (fun () ->
      Resample.systematic r [||] ~n:5);
  Util.check_raises_invalid "multinomial empty" (fun () ->
      Resample.multinomial r [||] ~n:5)

let test_degenerate_weights_fallback () =
  let r = Util.rng () in
  (* All-zero weights: systematic falls back to a uniform stride rather
     than crashing (particle-collapse rescue). *)
  let idx = Resample.systematic r [| 0.; 0.; 0. |] ~n:6 in
  Alcotest.(check int) "returns n indices" 6 (Array.length idx);
  Array.iter (fun i -> Util.check_in_range "index" ~lo:0. ~hi:2. (float_of_int i)) idx

let test_ess_below () =
  Alcotest.(check bool) "uniform not below" false
    (Resample.ess_below [| 0.25; 0.25; 0.25; 0.25 |] ~ratio:0.5);
  Alcotest.(check bool) "degenerate below" true
    (Resample.ess_below [| 1.; 0.; 0.; 0. |] ~ratio:0.5);
  Alcotest.(check bool) "empty not below" false (Resample.ess_below [||] ~ratio:0.5)

let prop_indices_in_range =
  Util.qcheck "resampled indices are valid"
    QCheck.(
      pair small_int (array_of_size Gen.(int_range 1 20) (float_range 0.01 5.)))
    (fun (seed, w) ->
      let r = Rfid_prob.Rng.create ~seed in
      let n = 37 in
      let m = Array.length w in
      List.for_all
        (fun scheme ->
          let idx = scheme r (Stats.normalize w) ~n in
          Array.length idx = n && Array.for_all (fun i -> i >= 0 && i < m) idx)
        [ Resample.systematic; Resample.multinomial; Resample.residual ])

let prop_systematic_unbiased =
  (* Expected count of index i is n * w_i; systematic guarantees counts
     within 1 of it. *)
  Util.qcheck ~count:100 "systematic counts within 1 of expectation"
    QCheck.(
      pair small_int (array_of_size Gen.(int_range 1 10) (float_range 0.01 5.)))
    (fun (seed, raw) ->
      let r = Rfid_prob.Rng.create ~seed in
      let w = Stats.normalize raw in
      let n = 500 in
      let idx = Resample.systematic r w ~n in
      let c = counts_of idx (Array.length w) in
      Array.for_all2
        (fun ci wi -> Float.abs (float_of_int ci -. (float_of_int n *. wi)) <= 1.0001)
        c w)

let suite =
  ( "resample",
    [
      Alcotest.test_case "systematic exact for uniform" `Quick
        test_systematic_exact_for_uniform;
      Alcotest.test_case "systematic proportionality" `Quick
        test_systematic_proportionality;
      Alcotest.test_case "multinomial unbiased" `Quick test_multinomial_unbiased;
      Alcotest.test_case "residual floor counts" `Quick test_residual_floor_counts;
      Alcotest.test_case "zero weight never selected" `Quick
        test_zero_weight_never_selected;
      Alcotest.test_case "empty weights rejected" `Quick test_empty_rejected;
      Alcotest.test_case "degenerate weights fallback" `Quick
        test_degenerate_weights_fallback;
      Alcotest.test_case "ess_below" `Quick test_ess_below;
      prop_indices_in_range;
      prop_systematic_unbiased;
    ] )
