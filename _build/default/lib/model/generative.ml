let run ~world ~params ~init_reader ~num_objects ~epochs rng =
  if num_objects < 0 then invalid_arg "Generative.run: negative num_objects";
  if epochs < 0 then invalid_arg "Generative.run: negative epochs";
  let { Params.sensor; motion; sensing; objects = obj_model } = params in
  let locs = ref (Array.init num_objects (fun _ -> World.sample_on_shelves world rng)) in
  let reader = ref init_reader in
  let steps =
    Array.init epochs (fun e ->
        if e > 0 then reader := Motion_model.sample_next motion rng !reader;
        let true_loc = (!reader).Reader_state.loc in
        let heading = (!reader).Reader_state.heading in
        let reported = Location_sensing.sample_report sensing rng true_loc in
        (* Copy-on-write: object moves are rare (probability alpha), so
           consecutive epochs usually share the snapshot. *)
        for i = 0 to num_objects - 1 do
          let next = Object_model.sample_next obj_model world rng !locs.(i) in
          if not (next == !locs.(i)) then begin
            let fresh = Array.copy !locs in
            fresh.(i) <- next;
            locs := fresh
          end
        done;
        let sense tag_loc =
          let p =
            Sensor_model.read_prob sensor ~reader_loc:true_loc ~reader_heading:heading
              ~tag_loc
          in
          Rfid_prob.Rng.bernoulli rng ~p
        in
        let object_reads = ref [] in
        for i = num_objects - 1 downto 0 do
          if sense !locs.(i) then object_reads := Types.Object_tag i :: !object_reads
        done;
        let shelf_reads =
          World.shelf_tags world
          |> List.filter_map (fun (tag, loc) -> if sense loc then Some tag else None)
        in
        let obs =
          {
            Types.o_epoch = e;
            o_reported_loc = reported;
            o_read_tags = !object_reads @ shelf_reads;
          }
        in
        {
          Trace.epoch = e;
          true_reader = !reader;
          true_object_locs = !locs;
          observation = obs;
        })
  in
  { Trace.world; num_objects; steps }
