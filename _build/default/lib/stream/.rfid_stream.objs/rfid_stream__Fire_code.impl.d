lib/stream/fire_code.ml: Float Format Hashtbl Int List Rfid_core Rfid_geom Rfid_model String Vec3 Window
