lib/model/trace.mli: Reader_state Rfid_geom Types World
