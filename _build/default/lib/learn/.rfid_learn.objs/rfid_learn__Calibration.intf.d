lib/learn/calibration.mli: Rfid_core Rfid_geom Rfid_model
