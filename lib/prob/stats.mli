(** Numerically careful statistics over weighted samples.

    Particle filters live and die by these primitives: weights are
    manipulated in log space until they must be normalized, and moments
    of weighted particle sets are the inference output. *)

val log_sum_exp : float array -> float
(** [log_sum_exp a] is [log (sum_i (exp a.(i)))] computed stably.
    Returns [neg_infinity] on the empty array. *)

val normalize_log_weights : float array -> float array
(** Convert log weights to normalized linear weights summing to 1.
    If every log weight is [neg_infinity] (total collapse), returns the
    uniform distribution — the standard particle-filter rescue. *)

val normalize_log_weights_in_place : float array -> unit
(** [normalize_log_weights] overwriting the input array — the filter
    hot path already materializes a fresh log-weight array per particle
    set per epoch, so normalizing in place halves its allocations. *)

val normalize_log_weights_into : src:float array -> dst:float array -> unit
(** [normalize_log_weights] writing into a caller buffer (a scratch
    arena slot in the filter hot path) instead of allocating; [src] is
    left untouched. @raise Invalid_argument on length mismatch. *)

val normalize : float array -> float array
(** Normalize non-negative linear weights to sum to 1; uniform on total
    collapse. *)

val normalize_in_place : float array -> unit
(** {!normalize} overwriting the input array. *)

val effective_sample_size : float array -> float
(** Kish effective sample size [1 / sum w_i^2] of normalized weights.
    An ESS near the particle count means healthy diversity; near 1 means
    degeneracy. Returns 0 on the empty array. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty. *)

val variance : float array -> float
(** Population variance; 0 on empty. *)

val weighted_mean : w:float array -> float array -> float
(** Mean under normalized weights [w]. *)

val weighted_variance : w:float array -> float array -> float
(** Population variance under normalized weights [w]. *)

val quantile : float array -> q:float -> float
(** [quantile a ~q] for [q] in [\[0,1\]], by sorting a copy (nearest-rank
    with linear interpolation). @raise Invalid_argument on empty input. *)

val rmse : float array -> float array -> float
(** Root mean squared difference of two equal-length arrays. *)
