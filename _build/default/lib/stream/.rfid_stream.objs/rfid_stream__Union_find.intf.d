lib/stream/union_find.mli:
