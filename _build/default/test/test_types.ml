open Rfid_model

let tag = Alcotest.testable Types.pp_tag Types.tag_equal

let test_tag_basics () =
  Alcotest.(check bool) "object equal" true
    (Types.tag_equal (Types.Object_tag 3) (Types.Object_tag 3));
  Alcotest.(check bool) "kind distinguishes" false
    (Types.tag_equal (Types.Object_tag 3) (Types.Shelf_tag 3));
  Alcotest.(check bool) "order: objects before shelves" true
    (Types.tag_compare (Types.Object_tag 99) (Types.Shelf_tag 0) < 0);
  Alcotest.(check string) "to_string" "obj:7" (Types.tag_to_string (Types.Object_tag 7));
  Alcotest.(check string) "to_string shelf" "shelf:2"
    (Types.tag_to_string (Types.Shelf_tag 2))

let test_tag_collections () =
  let s =
    Types.Tag_set.of_list [ Types.Object_tag 1; Types.Object_tag 1; Types.Shelf_tag 1 ]
  in
  Alcotest.(check int) "set dedupes" 2 (Types.Tag_set.cardinal s);
  let m = Types.Tag_map.singleton (Types.Object_tag 5) "x" in
  Alcotest.(check (option string)) "map lookup" (Some "x")
    (Types.Tag_map.find_opt (Types.Object_tag 5) m)

let reading e t = { Types.r_epoch = e; r_tag = t }
let report e l = { Types.l_epoch = e; l_loc = l }

let test_synchronize_basic () =
  let readings =
    [ reading 0 (Types.Object_tag 1); reading 0 (Types.Shelf_tag 2);
      reading 2 (Types.Object_tag 1) ]
  in
  let reports =
    [ report 0 (Util.vec3 0. 0. 0.); report 1 (Util.vec3 0. 1. 0.);
      report 2 (Util.vec3 0. 2. 0.) ]
  in
  let obs = Types.synchronize ~readings ~reports in
  Alcotest.(check int) "every epoch present" 3 (List.length obs);
  let o0 = List.nth obs 0 in
  Alcotest.(check (list tag)) "epoch 0 tags"
    [ Types.Object_tag 1; Types.Shelf_tag 2 ]
    o0.Types.o_read_tags;
  let o1 = List.nth obs 1 in
  Alcotest.(check (list tag)) "epoch 1 empty = negative evidence" []
    o1.Types.o_read_tags;
  Util.check_vec3 "epoch 1 location" (Util.vec3 0. 1. 0.) o1.Types.o_reported_loc

let test_synchronize_averages_reports () =
  let reports = [ report 0 (Util.vec3 0. 0. 0.); report 0 (Util.vec3 2. 4. 0.) ] in
  let obs = Types.synchronize ~readings:[] ~reports in
  Alcotest.(check int) "one epoch" 1 (List.length obs);
  Util.check_vec3 "averaged" (Util.vec3 1. 2. 0.)
    (List.hd obs).Types.o_reported_loc

let test_synchronize_reuses_last_report () =
  let readings = [ reading 2 (Types.Object_tag 1) ] in
  let reports = [ report 0 (Util.vec3 5. 5. 0.) ] in
  let obs = Types.synchronize ~readings ~reports in
  Alcotest.(check int) "epochs 0..2" 3 (List.length obs);
  Util.check_vec3 "carried forward" (Util.vec3 5. 5. 0.)
    (List.nth obs 2).Types.o_reported_loc

let test_synchronize_validation () =
  Util.check_raises_invalid "unsorted readings" (fun () ->
      Types.synchronize
        ~readings:[ reading 2 (Types.Object_tag 1); reading 0 (Types.Object_tag 1) ]
        ~reports:[ report 0 Rfid_geom.Vec3.zero ]);
  Util.check_raises_invalid "no initial report" (fun () ->
      Types.synchronize
        ~readings:[ reading 0 (Types.Object_tag 1) ]
        ~reports:[ report 3 Rfid_geom.Vec3.zero ]);
  Alcotest.(check int) "both empty" 0
    (List.length (Types.synchronize ~readings:[] ~reports:[]))

let suite =
  ( "types",
    [
      Alcotest.test_case "tag basics" `Quick test_tag_basics;
      Alcotest.test_case "tag collections" `Quick test_tag_collections;
      Alcotest.test_case "synchronize basic" `Quick test_synchronize_basic;
      Alcotest.test_case "synchronize averages reports" `Quick
        test_synchronize_averages_reports;
      Alcotest.test_case "synchronize carries reports forward" `Quick
        test_synchronize_reuses_last_report;
      Alcotest.test_case "synchronize validation" `Quick test_synchronize_validation;
    ] )
