open Rfid_prob

let test_sigmoid () =
  Util.check_close "sigmoid 0" 0.5 (Logistic.sigmoid 0.);
  Util.check_close ~eps:1e-9 "sigmoid symmetry" 1.
    (Logistic.sigmoid 3. +. Logistic.sigmoid (-3.));
  Util.check_close ~eps:1e-12 "sigmoid large" 1. (Logistic.sigmoid 50.);
  Util.check_close ~eps:1e-12 "sigmoid -large" 0. (Logistic.sigmoid (-50.));
  (* No overflow at extremes. *)
  Alcotest.(check bool) "finite at 1e4" true (Float.is_finite (Logistic.sigmoid 1e4));
  Alcotest.(check bool) "finite at -1e4" true (Float.is_finite (Logistic.sigmoid (-1e4)))

let test_log_sigmoid () =
  Util.check_close ~eps:1e-12 "log_sigmoid 0" (log 0.5) (Logistic.log_sigmoid 0.);
  Util.check_close ~eps:1e-9 "consistent with sigmoid" (log (Logistic.sigmoid 2.))
    (Logistic.log_sigmoid 2.);
  (* Deep negative tail is linear, not -inf. *)
  Util.check_close ~eps:1e-6 "tail" (-1000.) (Logistic.log_sigmoid (-1000.))

let planted_data ~seed ~n coef =
  let rng = Rng.create ~seed in
  let dim = Array.length coef in
  let x =
    Array.init n (fun _ ->
        Array.init dim (fun j -> if j = 0 then 1. else Rng.gaussian rng ()))
  in
  let y =
    Array.map (fun xi -> Rng.bernoulli rng ~p:(Logistic.sigmoid (Linalg.dot coef xi))) x
  in
  (x, y)

let test_fit_recovers_planted () =
  let coef = [| 0.5; -1.5; 2. |] in
  let x, y = planted_data ~seed:3 ~n:20000 coef in
  let m = Logistic.fit ~x ~y ~dim:3 () in
  Array.iteri
    (fun j c -> Util.check_close ~eps:0.1 (Printf.sprintf "coef %d" j) c m.Logistic.coef.(j))
    coef

let test_fit_weighted () =
  (* Duplicate-by-weight must equal duplicate-by-row. *)
  let x = [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |] |] in
  let y = [| false; true; true |] in
  let m_weighted = Logistic.fit ~x ~y ~w:[| 2.; 2.; 2. |] ~dim:2 () in
  let x2 = Array.append x x and y2 = Array.append y y in
  let m_dup = Logistic.fit ~x:x2 ~y:y2 ~dim:2 () in
  Array.iteri
    (fun j c -> Util.check_close ~eps:1e-6 "weight = duplication" c m_weighted.Logistic.coef.(j))
    m_dup.Logistic.coef

let test_fit_separable_stays_finite () =
  (* Perfectly separable data: unregularized ML diverges; the ridge +
     trust region must return finite coefficients. *)
  let x = Array.init 100 (fun i -> [| 1.; float_of_int i -. 50. |]) in
  let y = Array.init 100 (fun i -> i >= 50) in
  let m = Logistic.fit ~l2:1e-3 ~x ~y ~dim:2 () in
  Array.iter
    (fun c -> Alcotest.(check bool) "finite" true (Float.is_finite c))
    m.Logistic.coef;
  (* And it must classify correctly. *)
  Alcotest.(check bool) "classifies high" true (Logistic.predict m [| 1.; 40. |] > 0.9);
  Alcotest.(check bool) "classifies low" true (Logistic.predict m [| 1.; -40. |] < 0.1)

let test_nonpositive_constraint () =
  (* Data that wants a positive slope; the constraint must pin it at 0. *)
  let x, y = planted_data ~seed:5 ~n:5000 [| 0.2; 1.5 |] in
  let m = Logistic.fit ~nonpositive:[ 1 ] ~x ~y ~dim:2 () in
  Alcotest.(check bool) "slope clamped" true (m.Logistic.coef.(1) <= 1e-12);
  (* Constraint on a naturally negative coefficient is inactive. *)
  let x2, y2 = planted_data ~seed:6 ~n:5000 [| 0.2; -1.5 |] in
  let m2 = Logistic.fit ~nonpositive:[ 1 ] ~x:x2 ~y:y2 ~dim:2 () in
  Util.check_close ~eps:0.15 "inactive constraint" (-1.5) m2.Logistic.coef.(1);
  Util.check_raises_invalid "bad index" (fun () ->
      Logistic.fit ~nonpositive:[ 7 ] ~x:x2 ~y:y2 ~dim:2 ())

let test_log_likelihood_improves () =
  let x, y = planted_data ~seed:9 ~n:2000 [| 1.; -2. |] in
  let m0 = { Logistic.coef = [| 0.; 0. |] } in
  let m = Logistic.fit ~x ~y ~dim:2 () in
  let ll0 = Logistic.log_likelihood m0 ~x ~y () in
  let ll = Logistic.log_likelihood m ~x ~y () in
  Alcotest.(check bool) "fit improves likelihood" true (ll > ll0)

let test_fit_validation () =
  Util.check_raises_invalid "empty" (fun () -> Logistic.fit ~x:[||] ~y:[||] ~dim:2 ());
  Util.check_raises_invalid "label mismatch" (fun () ->
      Logistic.fit ~x:[| [| 1. |] |] ~y:[||] ~dim:1 ());
  Util.check_raises_invalid "feature dim" (fun () ->
      Logistic.fit ~x:[| [| 1.; 2. |] |] ~y:[| true |] ~dim:1 ())

let prop_predict_in_unit_interval =
  Util.qcheck "predictions live in (0,1)"
    QCheck.(array_of_size (Gen.return 3) (float_range (-10.) 10.))
    (fun coef ->
      let m = { Logistic.coef } in
      let p = Logistic.predict m [| 1.; 2.; -3. |] in
      p >= 0. && p <= 1.)

let suite =
  ( "logistic",
    [
      Alcotest.test_case "sigmoid" `Quick test_sigmoid;
      Alcotest.test_case "log_sigmoid" `Quick test_log_sigmoid;
      Alcotest.test_case "fit recovers planted model" `Quick test_fit_recovers_planted;
      Alcotest.test_case "weights equal duplication" `Quick test_fit_weighted;
      Alcotest.test_case "separable data stays finite" `Quick
        test_fit_separable_stays_finite;
      Alcotest.test_case "nonpositive constraints" `Quick test_nonpositive_constraint;
      Alcotest.test_case "likelihood improves" `Quick test_log_likelihood_improves;
      Alcotest.test_case "input validation" `Quick test_fit_validation;
      prop_predict_in_unit_interval;
    ] )
