let max_line_bytes = 65536

type buffer = { buf : Buffer.t; mutable discarding : bool }
(* [discarding] is set once a line exceeds [max_line_bytes]: the rest of
   that line's bytes are dropped until its newline, at which point the
   single [Overflow] event has already been reported and framing
   resynchronizes on the next line. *)

let create_buffer () = { buf = Buffer.create 256; discarding = false }
let pending_bytes b = Buffer.length b.buf

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

type event = Line of string | Overflow

let feed b chunk =
  let events = ref [] in
  String.iter
    (fun c ->
      if c = '\n' then begin
        if b.discarding then b.discarding <- false
        else events := Line (strip_cr (Buffer.contents b.buf)) :: !events;
        Buffer.clear b.buf
      end
      else if b.discarding then ()
      else if Buffer.length b.buf >= max_line_bytes then begin
        b.discarding <- true;
        Buffer.clear b.buf;
        events := Overflow :: !events
      end
      else Buffer.add_char b.buf c)
    chunk;
  List.rev !events

let float_str v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else
    (* Shortest decimal form that parses back to the same double:
       replies must survive a print/parse round trip bit-for-bit, or
       the byte-identity gates against offline replay become lossy. *)
    let try_prec p =
      let s = Printf.sprintf "%.*g" p v in
      if float_of_string s = v then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
        match try_prec 16 with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" v)
