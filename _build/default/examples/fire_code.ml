(* Fire-code monitoring (§II-B of the paper): clean the raw RFID streams
   into location events, then run the two CQL-style queries on top —
   the location-update query and the fire-code violation query
   ("display of solid merchandise shall not exceed 200 pounds per
   square foot of shelf area").

   The scenario: a clerk wheels four heavy crates onto the same square
   foot of shelf mid-scan. The monitoring pipeline must notice from
   nothing but noisy tag readings.

   Run with:  dune exec examples/fire_code.exe *)

open Rfid_geom

let () =
  let num_objects = 24 in
  let wh = Rfid_sim.Warehouse.layout ~num_objects () in
  (* Crates 4, 9, 14, 19 are relocated into the same square-foot cell
     while the reader is elsewhere (epoch 40). *)
  let hot_cell = Vec3.make 2.3 4.4 0. in
  let movements =
    List.mapi
      (fun i obj ->
        {
          Rfid_sim.Trace_gen.move_epoch = 40;
          move_obj = obj;
          move_to =
            Vec3.make
              (hot_cell.Vec3.x +. (0.15 *. float_of_int i))
              (hot_cell.Vec3.y +. (0.12 *. float_of_int i))
              0.;
        })
      [ 4; 9; 14; 19 ]
  in
  let config =
    { (Rfid_sim.Trace_gen.default_config ()) with Rfid_sim.Trace_gen.movements }
  in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:2)
      ~config (Rfid_prob.Rng.create ~seed:11)
  in

  (* Clean the stream. *)
  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob
      ~seed:2 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Rfid_model.Params.create ~sensor ())
      ~config:(Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed ())
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~seed:3 ()
  in
  let events = Rfid_core.Engine.run engine (Rfid_model.Trace.observations trace) in
  Printf.printf "cleaned stream: %d location events\n\n" (List.length events);

  (* Query 1: location updates (Istream over [Partition By tag Row 1]). *)
  let updates =
    Rfid_stream.Location_update.run
      (Rfid_stream.Location_update.create ~min_change:0.5 ())
      events
  in
  Printf.printf "location-update query (changes > 0.5 ft):\n";
  List.iter
    (fun u -> Format.printf "  %a@." Rfid_stream.Location_update.pp_update u)
    updates;

  (* Query 2: fire code. Every crate weighs 60 lbs; the limit is 200 lbs
     per square foot, so 4 crates in one cell violate it. *)
  let fire =
    Rfid_stream.Fire_code.create
      (Rfid_stream.Fire_code.default_config ~weight_of:(fun _ -> 60.))
  in
  let violations = Rfid_stream.Fire_code.run fire events in
  Printf.printf "\nfire-code query (> 200 lbs per square foot):\n";
  if violations = [] then print_endline "  no violations detected"
  else
    List.iter
      (fun v -> Format.printf "  VIOLATION %a@." Rfid_stream.Fire_code.pp_violation v)
      violations;

  (* Query 3: misplaced inventory (the paper's opening §I example).
     Each object's planogram slot is its original shelf position. *)
  let home obj =
    if obj >= 0 && obj < num_objects then
      Some
        (Box2.of_center wh.Rfid_sim.Warehouse.object_locs.(obj) ~half_width:0.6
           ~half_height:0.6)
    else None
  in
  (* One confirmation suffices here: each crate is re-reported once per
     scan round. *)
  let mq =
    Rfid_stream.Misplaced.create
      ~config:{ Rfid_stream.Misplaced.tolerance = 0.5; confirmations = 1 }
      ~home ()
  in
  let alerts = Rfid_stream.Misplaced.run mq events in
  Printf.printf "\nmisplaced-inventory query:\n";
  List.iter
    (fun a -> Format.printf "  %a@." Rfid_stream.Misplaced.pp_alert a)
    alerts;

  (* Sanity: where the crates really are. *)
  let truth = Rfid_model.Trace.final_object_locs trace in
  Printf.printf "\nground truth: crates 4/9/14/19 are at cell (%d,%d)\n"
    (int_of_float truth.(4).Vec3.x) (int_of_float truth.(4).Vec3.y)
