open Rfid_geom

type cell = int * int

let cell_of (p : Vec3.t) =
  (int_of_float (Float.floor p.Vec3.x), int_of_float (Float.floor p.Vec3.y))

type violation = {
  v_epoch : Rfid_model.Types.epoch;
  v_cell : cell;
  v_weight : float;
  v_objects : int list;
}

type config = { weight_of : int -> float; window : int; limit : float }

let default_config ~weight_of = { weight_of; window = 5; limit = 200. }

type t = {
  cfg : config;
  recent : int Window.t;  (* objects reported within the range window *)
  latest_loc : (int, Vec3.t) Hashtbl.t;
}

let create cfg =
  if cfg.window <= 0 then invalid_arg "Fire_code.create: window must be positive";
  { cfg; recent = Window.create ~size:cfg.window; latest_loc = Hashtbl.create 64 }

let push t (ev : Rfid_core.Event.t) =
  let e = ev.Rfid_core.Event.ev_epoch in
  Hashtbl.replace t.latest_loc ev.Rfid_core.Event.ev_obj ev.Rfid_core.Event.ev_loc;
  Window.push t.recent ~epoch:e ev.Rfid_core.Event.ev_obj;
  (* Group the window's objects by square-foot cell of their latest
     location; each object counts once. *)
  let seen = Hashtbl.create 16 in
  let cells : (cell, float * int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, obj) ->
      if not (Hashtbl.mem seen obj) then begin
        Hashtbl.replace seen obj ();
        match Hashtbl.find_opt t.latest_loc obj with
        | None -> ()
        | Some loc ->
            let c = cell_of loc in
            let w, objs =
              match Hashtbl.find_opt cells c with Some x -> x | None -> (0., [])
            in
            Hashtbl.replace cells c (w +. t.cfg.weight_of obj, obj :: objs)
      end)
    (Window.contents t.recent);
  Hashtbl.fold
    (fun c (w, objs) acc ->
      if w > t.cfg.limit then
        { v_epoch = e; v_cell = c; v_weight = w; v_objects = List.sort Int.compare objs }
        :: acc
      else acc)
    cells []
  |> List.sort (fun a b -> compare a.v_cell b.v_cell)

let run t events = List.concat_map (push t) events

let pp_violation ppf v =
  Format.fprintf ppf "t=%d cell=(%d,%d) weight=%.1f lbs objects=[%s]" v.v_epoch
    (fst v.v_cell) (snd v.v_cell) v.v_weight
    (String.concat ";" (List.map string_of_int v.v_objects))
