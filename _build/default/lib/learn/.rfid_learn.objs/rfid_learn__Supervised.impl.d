lib/learn/supervised.ml: Array Float Option Rfid_model Rfid_prob Sensor_model
