test/test_sensor_model.ml: Alcotest Array Float Gen QCheck Rfid_geom Rfid_model Sensor_model Util
