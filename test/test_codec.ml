(* The portable checkpoint codec: canonical round-trips over real and
   randomized snapshots, the legacy-Marshal refusal path, and the
   promise that corrupted bytes always come back as [Error] — never a
   wrong snapshot, never an escaping exception. *)
open Rfid_model
module Codec = Rfid_robust.Codec
module Vec3 = Rfid_geom.Vec3
module BF = Rfid_core.Basic_filter
module FF = Rfid_core.Factored_filter
module E = Rfid_core.Engine

let scenario =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects:4 () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
         ~config:(Rfid_sim.Trace_gen.default_config ())
         (Rfid_prob.Rng.create ~seed:37)
     in
     (wh, trace))

let config_for variant num_domains =
  Rfid_core.Config.create ~variant ~num_reader_particles:20 ~num_object_particles:30
    ~num_domains ()

let engine_at_midstream ~variant ~num_domains =
  let wh, trace = Lazy.force scenario in
  let engine =
    E.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:(config_for variant num_domains)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:4 ~seed:23 ()
  in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let first, rest =
    List.partition (fun (o : Types.observation) -> o.Types.o_epoch < n / 2) stream
  in
  (* A couple of degraded epochs so those counters are non-trivial. *)
  List.iter
    (fun (o : Types.observation) ->
      if o.Types.o_epoch mod 10 = 3 then
        ignore (E.step_degraded engine ~epoch:o.Types.o_epoch)
      else ignore (E.step engine o))
    first;
  (wh, engine, rest)

let decode_ok what data =
  match Codec.decode data with
  | Ok s -> s
  | Error msg -> Alcotest.failf "%s: decode failed: %s" what msg

(* Canonical form: decode must invert encode exactly, byte for byte,
   when re-encoded — this also sidesteps NaN <> NaN in direct record
   comparison. *)
let check_roundtrip what snapshot =
  let data = Codec.encode snapshot in
  let back = decode_ok what data in
  Alcotest.(check bool)
    (what ^ ": re-encoded bytes identical")
    true
    (String.equal data (Codec.encode back))

let test_roundtrip_matrix () =
  List.iter
    (fun variant ->
      List.iter
        (fun num_domains ->
          let what =
            Printf.sprintf "%s/domains=%d"
              (match variant with
              | Rfid_core.Config.Unfactorized -> "unfactorized"
              | Rfid_core.Config.Factorized -> "factorized"
              | Rfid_core.Config.Factorized_indexed -> "indexed"
              | Rfid_core.Config.Factorized_compressed -> "compressed")
              num_domains
          in
          let wh, engine, rest = engine_at_midstream ~variant ~num_domains in
          let snapshot = E.snapshot engine in
          check_roundtrip what snapshot;
          (* The decoded snapshot must also be semantically whole: a
             restored engine continues bit-identically. *)
          let decoded = decode_ok what (Codec.encode snapshot) in
          let restored =
            E.restore ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
              ~config:(config_for variant num_domains) decoded
          in
          let continue engine =
            List.concat_map (E.step engine) rest @ E.flush engine
          in
          let a = continue engine and b = continue restored in
          Alcotest.(check int) (what ^ ": event count") (List.length a) (List.length b);
          List.iter2
            (fun (x : Rfid_core.Event.t) y ->
              if x <> y then
                Alcotest.failf "%s: decoded-restore diverged:@ %a@ vs@ %a" what
                  Rfid_core.Event.pp x Rfid_core.Event.pp y)
            a b)
        [ 1; 2 ])
    [
      Rfid_core.Config.Unfactorized;
      Rfid_core.Config.Factorized;
      Rfid_core.Config.Factorized_indexed;
      Rfid_core.Config.Factorized_compressed;
    ]

(* ------------------------------------------------------------------ *)
(* Randomized snapshots, adversarial floats included                   *)

let float_gen =
  QCheck.Gen.(
    frequency
      [
        (6, float);
        (1, oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0.; 0. ]);
      ])

let vec3_gen =
  QCheck.Gen.map (fun (x, y, z) -> Vec3.make x y z)
    QCheck.Gen.(triple float_gen float_gen float_gen)

let reader_gen =
  QCheck.Gen.map2
    (fun loc heading -> Reader_state.make ~loc ~heading)
    vec3_gen float_gen

let small_list g = QCheck.Gen.(list_size (int_bound 5) g)
let small_array g = QCheck.Gen.(array_size (int_bound 5) g)

let basic_snapshot_gen =
  let open QCheck.Gen in
  let* num_objects = int_bound 3 in
  let* rng_state = ui64 in
  let* particles =
    small_array
      (triple reader_gen (array_repeat num_objects vec3_gen) float_gen)
  in
  let* last_reported = option vec3_gen in
  let* epoch = int_bound 1000 in
  let* last_read = array_repeat num_objects (int_bound 500) in
  let* last_read_reader = array_repeat num_objects vec3_gen in
  let* newly_seen = small_list (int_bound 3) in
  let* cons_degraded = int_bound 5 in
  let+ degraded_total = int_bound 50 in
  {
    BF.s_rng = rng_state;
    s_num_objects = num_objects;
    s_particles = particles;
    s_last_reported = last_reported;
    s_epoch = epoch;
    s_last_read = last_read;
    s_last_read_reader = last_read_reader;
    s_newly_seen = newly_seen;
    s_consecutive_degraded = cons_degraded;
    s_degraded_total = degraded_total;
  }

let box2_gen =
  (* Box2.make wants finite bounds with min <= max. *)
  let open QCheck.Gen in
  let coord = float_range (-100.) 100. in
  map
    (fun (a, b, c, d) ->
      Rfid_geom.Box2.make ~min_x:(Float.min a b) ~max_x:(Float.max a b)
        ~min_y:(Float.min c d) ~max_y:(Float.max c d))
    (quad coord coord coord coord)

let belief_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 3,
        map
          (fun parts -> FF.Snap_active parts)
          (small_array (triple vec3_gen (int_bound 20) float_gen)) );
      ( 1,
        map2
          (fun mean cov -> FF.Snap_compressed (mean, cov))
          (array_repeat 3 float_gen)
          (array_repeat 3 (array_repeat 3 float_gen)) );
    ]

let obj_gen =
  let open QCheck.Gen in
  let* so_id = int_bound 50 in
  let* so_belief = belief_gen in
  let* so_reader_gen = int_bound 100 in
  let* so_last_read = int_bound 1000 in
  let+ so_last_read_reader = vec3_gen in
  { FF.so_id; so_belief; so_reader_gen; so_last_read; so_last_read_reader }

let index_gen =
  let open QCheck.Gen in
  let* entries = small_list (pair box2_gen (small_list (int_bound 50))) in
  let* pending_objs = small_list (int_bound 50) in
  let* pending_box = option box2_gen in
  let+ last_insert = option vec3_gen in
  {
    FF.si_entries = entries;
    si_pending_objs = pending_objs;
    si_pending_box = pending_box;
    si_last_insert_loc = last_insert;
  }

let factored_snapshot_gen =
  let open QCheck.Gen in
  let* rng_state = ui64 in
  let* substream = ui64 in
  let* reader_gen_counter = int_bound 100 in
  let* readers = small_array (pair reader_gen float_gen) in
  let* objects = small_list obj_gen in
  let* index = option index_gen in
  let* compress_queue = small_list (pair (int_bound 50) (int_bound 1000)) in
  let* last_reported = option vec3_gen in
  let* epoch = int_bound 1000 in
  let* newly_seen = small_list (int_bound 50) in
  let* processed_last = int_bound 50 in
  let* cons_degraded = int_bound 5 in
  let+ degraded_total = int_bound 50 in
  {
    FF.fs_rng = rng_state;
    fs_substream = substream;
    fs_reader_gen = reader_gen_counter;
    fs_readers = readers;
    fs_objects = objects;
    fs_index = index;
    fs_compress_queue = compress_queue;
    fs_last_reported = last_reported;
    fs_epoch = epoch;
    fs_newly_seen = newly_seen;
    fs_processed_last = processed_last;
    fs_consecutive_degraded = cons_degraded;
    fs_degraded_total = degraded_total;
  }

let engine_snapshot_gen =
  let open QCheck.Gen in
  let* filter =
    frequency
      [
        (1, map2 (fun s n -> E.Basic_snapshot (s, n)) basic_snapshot_gen (int_bound 8));
        (2, map (fun s -> E.Factored_snapshot s) factored_snapshot_gen);
      ]
  in
  let* pending = small_list (pair (int_bound 1000) (int_bound 50)) in
  let* scheduled = small_list (int_bound 1000) in
  let* dup = int_bound 10 in
  let* ooo = int_bound 10 in
  let* dr = int_bound 10 in
  let+ de = int_bound 10 in
  {
    E.es_filter = filter;
    es_pending = pending;
    es_scheduled = scheduled;
    es_dup_skipped = dup;
    es_ooo_dropped = ooo;
    es_degraded_run = dr;
    es_degraded_event_count = de;
  }

let snapshot_arb =
  QCheck.make ~print:(fun s -> Printf.sprintf "<snapshot epoch=%d>" (E.snapshot_epoch s))
    engine_snapshot_gen

let qcheck_roundtrip =
  Util.qcheck ~count:150 "codec round-trips randomized snapshots" snapshot_arb
    (fun snapshot ->
      let data = Codec.encode snapshot in
      match Codec.decode data with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok back -> String.equal data (Codec.encode back))

(* ------------------------------------------------------------------ *)
(* Legacy v1 (Marshal) checkpoints: the migration window has closed.
   A v1 file must be refused with a clean error naming the dropped
   format — never a Marshal decode attempt on untrusted bytes. *)

let write_v1_file ~path snapshot =
  let payload = Marshal.to_string (snapshot : E.snapshot) [] in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "rfid_streams-checkpoint v1\n";
      Printf.fprintf oc "epoch=%d bytes=%d adler32=%08x\n"
        (E.snapshot_epoch snapshot) (String.length payload)
        (Codec.adler32 payload);
      output_string oc payload)

let test_v1_rejected () =
  let _, engine, _ =
    engine_at_midstream ~variant:Rfid_core.Config.Factorized_indexed ~num_domains:1
  in
  let snapshot = E.snapshot engine in
  let path = Filename.temp_file "rfid_v1_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_v1_file ~path snapshot;
      match Rfid_robust.Checkpoint.load ~path with
      | Ok _ -> Alcotest.fail "legacy v1 checkpoint loaded; it must be refused"
      | Error msg ->
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec go i =
              i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
            in
            go 0
          in
          if not (contains msg "v1") then
            Alcotest.failf "v1 refusal does not name the format: %s" msg;
          if not (contains msg path) then
            Alcotest.failf "v1 refusal does not name the file: %s" msg)

(* ------------------------------------------------------------------ *)
(* Corruption: every single-byte flip and every truncation must fail
   cleanly. Adler-32 detects all single-byte changes, and the framing
   covers every byte, so there is no position where a flip may pass. *)

let tiny_snapshot =
  lazy
    (let _, engine, _ =
       engine_at_midstream ~variant:Rfid_core.Config.Factorized_indexed
         ~num_domains:1
     in
     E.snapshot engine)

let test_every_flip_rejected () =
  let data = Codec.encode (Lazy.force tiny_snapshot) in
  let buf = Bytes.of_string data in
  for i = 0 to Bytes.length buf - 1 do
    let orig = Bytes.get buf i in
    Bytes.set buf i (Char.chr (Char.code orig lxor 0x41));
    (match Codec.decode (Bytes.to_string buf) with
    | Error msg ->
        if msg = "" then Alcotest.failf "flip at %d: empty error message" i
    | Ok _ -> Alcotest.failf "flip at byte %d accepted" i);
    Bytes.set buf i orig
  done

let test_every_truncation_rejected () =
  let data = Codec.encode (Lazy.force tiny_snapshot) in
  (* Stride 7 keeps the loop fast while still probing every region and
     alignment; 0-length and (len-1) are included explicitly. *)
  let try_len l =
    match Codec.decode (String.sub data 0 l) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" l
  in
  let n = String.length data in
  try_len 0;
  try_len (n - 1);
  let l = ref 1 in
  while !l < n do
    try_len !l;
    l := !l + 7
  done

let test_errors_name_sections () =
  let data = Codec.encode (Lazy.force tiny_snapshot) in
  (* Damage a byte inside the "objects" section body and check the
     error says so. The section name string appears in the stream right
     before its body. *)
  let find sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length data then
        Alcotest.failf "section %S not found in encoding" sub
      else if String.sub data i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  let pos = find "objects" + String.length "objects" + 9 in
  let buf = Bytes.of_string data in
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0xff));
  match Codec.decode (Bytes.to_string buf) with
  | Ok _ -> Alcotest.fail "damaged objects section accepted"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the section (%s)" msg)
        true
        (let rec contains i =
           i + 9 <= String.length msg
           && (String.sub msg i 9 = {|"objects"|} || contains (i + 1))
         in
         contains 0)

let suite =
  ( "codec",
    [
      Alcotest.test_case "round-trip + restore matrix" `Slow test_roundtrip_matrix;
      qcheck_roundtrip;
      Alcotest.test_case "legacy v1 checkpoint cleanly refused" `Quick
        test_v1_rejected;
      Alcotest.test_case "every byte flip rejected" `Slow test_every_flip_rejected;
      Alcotest.test_case "truncations rejected" `Quick test_every_truncation_rejected;
      Alcotest.test_case "errors name the failing section" `Quick
        test_errors_name_sections;
    ] )
