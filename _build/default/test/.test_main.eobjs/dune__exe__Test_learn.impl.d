test/test_learn.ml: Alcotest Array Float Fun List Location_sensing Motion_model Params Printf Reader_state Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Sensor_model Trace Util
