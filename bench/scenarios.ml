(* Shared workload builders and engine configurations for the
   experiments. Every experiment is deterministic given its seed. *)

open Rfid_model
open Rfid_geom

let default_speed = 0.1

type built = {
  warehouse : Rfid_sim.Warehouse.t;
  world : World.t;  (* possibly with a reduced shelf-tag set *)
  trace : Trace.t;
}

let warehouse_trace ?(num_objects = 16) ?(objects_per_shelf = 10) ?(rr = 1.0)
    ?(rounds = 1) ?(speed = default_speed) ?shelf_tags_kept ?sensing ?movements
    ?(seed = 42) () =
  let warehouse = Rfid_sim.Warehouse.layout ~objects_per_shelf ~num_objects () in
  let world =
    match shelf_tags_kept with
    | None -> warehouse.Rfid_sim.Warehouse.world
    | Some keep -> World.with_shelf_tags warehouse.Rfid_sim.Warehouse.world ~keep
  in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:rr () in
  let config = Rfid_sim.Trace_gen.default_config ~sensor () in
  let config =
    match sensing with
    | None -> config
    | Some s ->
        { config with Rfid_sim.Trace_gen.location_noise = Rfid_sim.Trace_gen.Gaussian_report s }
  in
  let config =
    match movements with
    | None -> config
    | Some ms -> { config with Rfid_sim.Trace_gen.movements = ms }
  in
  let path = Rfid_sim.Trace_gen.straight_pass ~speed warehouse ~rounds in
  let trace =
    Rfid_sim.Trace_gen.run ~world ~object_locs:warehouse.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start warehouse)
      ~path ~config (Rfid_prob.Rng.create ~seed)
  in
  { warehouse; world; trace }

(* "True model" reference: the best in-family (logistic) approximation
   of a ground-truth sensing region, fitted supervised. Memoized — the
   fit costs a couple hundred milliseconds. *)
let fitted_cache : (string, Sensor_model.t) Hashtbl.t = Hashtbl.create 8

let fitted_sensor ~key (truth : Rfid_sim.Truth_sensor.t) =
  match Hashtbl.find_opt fitted_cache key with
  | Some m -> m
  | None ->
      let m =
        Rfid_learn.Supervised.fit_sensor ~samples:15000
          ~read_prob:truth.Rfid_sim.Truth_sensor.read_prob ~seed:99 ()
      in
      Hashtbl.replace fitted_cache key m;
      m

let cone_params ?(rr = 1.0) () =
  let truth = Rfid_sim.Truth_sensor.cone ~rr_major:rr () in
  let sensor = fitted_sensor ~key:(Printf.sprintf "cone-%.2f" rr) truth in
  Params.create ~sensor ()

let engine_config ?(variant = Rfid_core.Config.Factorized_indexed) ?(j = 100)
    ?(k = 200) ?min_object_particles ?resample_ess_ratio ?(num_domains = 1)
    ?heading_model () =
  Rfid_core.Config.create ~variant ~num_reader_particles:j ~num_object_particles:k
    ?min_object_particles ?resample_ess_ratio ~num_domains ?heading_model ()

(* "Motion model Off" (Fig. 5(g)): the reported location is taken as the
   true reader location — one reader particle nailed to the report. *)
let motion_off_config ?(k = 200) () =
  Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized
    ~num_reader_particles:1 ~num_object_particles:k
    ~proposal:Rfid_core.Config.From_reported_location
    ~proposal_noise_override:(Some (Vec3.make 0.02 0.02 0.)) ()

let motion_off_params params =
  (* Zero proposal noise keeps the single reader particle exactly on the
     reported displacement track; tight sensing makes its weight
     irrelevant. *)
  {
    params with
    Params.motion =
      Motion_model.create ~velocity:Vec3.zero ~sigma:Vec3.zero ~heading_sigma:0. ();
    sensing = Location_sensing.create ~sigma:(Vec3.make 0.05 0.05 0.05) ();
  }

let run ?params ?(config = engine_config ()) ?(seed = 7) trace =
  Rfid_eval.Runner.run_engine ?params ~config ~seed trace

let uniform_events ?heading_of ~world ~range ~seed trace =
  Rfid_baselines.Uniform.run ~world
    ~config:(Rfid_baselines.Uniform.default_config ?heading_of ~read_range:range ())
    ~seed (Trace.observations trace)

let smurf_events ?heading_of ~world ~range ~seed trace =
  Rfid_baselines.Smurf.run ~world
    ~config:(Rfid_baselines.Smurf.default_config ?heading_of ~read_range:range ())
    ~seed (Trace.observations trace)

let xy_error events trace =
  (Rfid_eval.Metrics.inference_error events trace).Rfid_eval.Metrics.mean_xy
