(* Motion, location sensing, object dynamics, Params, Reader_state. *)
open Rfid_model
open Rfid_geom

let test_motion_sampling () =
  let m = Motion_model.create ~velocity:(Util.vec3 0. 0.1 0.) ~sigma:(Util.vec3 0.01 0.01 0.) () in
  let rng = Util.rng () in
  let start = Reader_state.make ~loc:Vec3.zero ~heading:0. in
  let n = 20000 in
  let sum = ref Vec3.zero in
  for _ = 1 to n do
    let next = Motion_model.sample_next m rng start in
    sum := Vec3.add !sum next.Reader_state.loc
  done;
  let mean = Vec3.scale (1. /. float_of_int n) !sum in
  Util.check_close ~eps:0.002 "mean dx" 0. mean.Vec3.x;
  Util.check_close ~eps:0.002 "mean dy" 0.1 mean.Vec3.y

let test_motion_log_pdf_peak () =
  let m = Motion_model.default in
  let prev = Reader_state.make ~loc:Vec3.zero ~heading:0. in
  let at v = Motion_model.log_pdf m ~prev ~next:(Reader_state.make ~loc:v ~heading:0.) in
  let expected = at (Util.vec3 0. 0.1 0.) in
  let off = at (Util.vec3 0. 0.3 0.) in
  Alcotest.(check bool) "expected displacement most likely" true (expected > off)

let test_motion_validation () =
  Util.check_raises_invalid "negative sigma" (fun () ->
      ignore (Motion_model.create ~sigma:(Util.vec3 (-1.) 0. 0.) ()));
  Util.check_raises_invalid "negative heading sigma" (fun () ->
      ignore (Motion_model.create ~heading_sigma:(-0.1) ()))

let test_sensing_roundtrip () =
  let s = Location_sensing.create ~bias:(Util.vec3 0.5 0. 0.) ~sigma:(Util.vec3 0.1 0.1 0.1) () in
  let rng = Util.rng () in
  let truth = Util.vec3 1. 2. 0. in
  let n = 20000 in
  let sum = ref Vec3.zero in
  for _ = 1 to n do
    sum := Vec3.add !sum (Location_sensing.sample_report s rng truth)
  done;
  let mean = Vec3.scale (1. /. float_of_int n) !sum in
  Util.check_close ~eps:0.01 "biased mean x" 1.5 mean.Vec3.x;
  Util.check_close ~eps:0.01 "mean y" 2. mean.Vec3.y;
  (* log_pdf peaks at truth + bias. *)
  let at r = Location_sensing.log_pdf s ~true_loc:truth ~reported:r in
  Alcotest.(check bool) "pdf peak at bias-shifted report" true
    (at (Util.vec3 1.5 2. 0.) > at (Util.vec3 1. 2. 0.))

let test_object_model () =
  let w = Util.two_shelf_world () in
  let rng = Util.rng () in
  let loc = Util.vec3 3. 5. 0. in
  (* alpha = 0: never moves. *)
  let frozen = Object_model.create ~move_prob:0. () in
  for _ = 1 to 100 do
    Util.check_vec3 "frozen" loc (Object_model.sample_next frozen w rng loc)
  done;
  (* alpha = 1: always moves, lands on a shelf. *)
  let mover = Object_model.create ~move_prob:1. () in
  let moved = ref 0 in
  for _ = 1 to 1000 do
    let next = Object_model.sample_next mover w rng loc in
    if not (Vec3.equal next loc) then incr moved;
    if not (World.contains w next) then Alcotest.fail "moved off-shelf"
  done;
  Alcotest.(check bool) "moves nearly always" true (!moved > 990);
  Util.check_raises_invalid "bad alpha" (fun () ->
      ignore (Object_model.create ~move_prob:1.5 ()))

let test_params () =
  let p = Params.default in
  Alcotest.(check bool) "default sensor" true (p.Params.sensor = Sensor_model.default);
  let custom = Params.create ~objects:(Object_model.create ~move_prob:0.5 ()) () in
  Util.check_close "override" 0.5 custom.Params.objects.Object_model.move_prob;
  (* pp does not raise *)
  ignore (Format.asprintf "%a" Params.pp p)

let suite =
  ( "component_models",
    [
      Alcotest.test_case "motion sampling moments" `Quick test_motion_sampling;
      Alcotest.test_case "motion log pdf peak" `Quick test_motion_log_pdf_peak;
      Alcotest.test_case "motion validation" `Quick test_motion_validation;
      Alcotest.test_case "location sensing" `Quick test_sensing_roundtrip;
      Alcotest.test_case "object dynamics" `Quick test_object_model;
      Alcotest.test_case "params assembly" `Quick test_params;
    ] )
