lib/model/location_sensing.ml: Rfid_geom Rfid_prob Rng Vec3
