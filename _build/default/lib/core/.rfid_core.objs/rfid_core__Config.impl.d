lib/core/config.ml: Rfid_geom Rfid_model
