(** Reader location sensing model (§III-A): the positioning system
    (indoor GPS, ultrasound, dead reckoning) reports
    [R-hat_t = R_t + mu_s + noise] with Gaussian noise of std-dev
    [sigma] per axis. The systematic bias [mu_s] captures phenomena like
    a robot drifting sideways from inertia while dead reckoning keeps
    counting wheel revolutions. Only position is observed — heading is
    not. *)

type t = {
  bias : Rfid_geom.Vec3.t;  (** mu_s, systematic error *)
  sigma : Rfid_geom.Vec3.t;  (** per-axis noise std-dev *)
}

val create : ?bias:Rfid_geom.Vec3.t -> ?sigma:Rfid_geom.Vec3.t -> unit -> t
(** Defaults: zero bias, sigma 0.01 per axis (the paper's defaults).
    @raise Invalid_argument on negative sigmas. *)

val default : t

val sample_report : t -> Rfid_prob.Rng.t -> Rfid_geom.Vec3.t -> Rfid_geom.Vec3.t
(** Draw the reported location given the true one. *)

val log_pdf_poses_into :
  t ->
  reported:Rfid_geom.Vec3.t ->
  rx:floatarray ->
  ry:floatarray ->
  rz:floatarray ->
  n:int ->
  float array ->
  unit
(** [log_pdf_poses_into t ~reported ~rx ~ry ~rz ~n out] writes
    [out.(i) <- log_pdf t ~true_loc:(rx.(i), ry.(i), rz.(i)) ~reported]
    for [i < n], bit for bit, in one batched pass over pose slabs (as
    returned by {!Rfid_model.Sensor_model.pre_poses}) — the
    reader-weighting hot path's replacement for a boxing [log_pdf] call
    per reader particle. @raise Invalid_argument if [out] is shorter
    than [n]. *)

val log_pdf : t -> true_loc:Rfid_geom.Vec3.t -> reported:Rfid_geom.Vec3.t -> float
(** Log-likelihood of a report given the true location — the
    [p(R-hat|R)] factor of the reader-particle weight (Eq. 5). An axis
    whose sigma is 0 is treated as unobserved and contributes nothing
    (a 2-D positioning system does not measure z). *)
