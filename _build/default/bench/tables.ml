(* Plain-text table rendering for experiment output. *)

let hr widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let render_row widths cells =
  let pad w s =
    let s = if String.length s > w then String.sub s 0 w else s in
    Printf.sprintf " %-*s " w s
  in
  "|" ^ String.concat "|" (List.map2 pad widths cells) ^ "|"

let print ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> Int.max acc (String.length (List.nth row c))) 0 all)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (hr widths);
  print_endline (render_row widths header);
  print_endline (hr widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hr widths)

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

let heatmap ~title ~read_prob ~max_x ~max_y ~cols ~rows =
  (* Render a read-rate field in the half-plane in front of a reader at
     the origin facing +x; y spans [-max_y, max_y]. *)
  Printf.printf "\n-- %s --\n" title;
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  for r = 0 to rows - 1 do
    let y = max_y -. (float_of_int r /. float_of_int (rows - 1) *. 2. *. max_y) in
    let line = Bytes.make cols ' ' in
    for c = 0 to cols - 1 do
      let x = float_of_int c /. float_of_int (cols - 1) *. max_x in
      let d = sqrt ((x *. x) +. (y *. y)) in
      let theta = if x = 0. && y = 0. then 0. else Float.abs (atan2 y x) in
      let p = read_prob ~d ~theta in
      let idx = Int.min 9 (int_of_float (p *. 10.)) in
      Bytes.set line c shades.(idx)
    done;
    Printf.printf "  |%s|\n" (Bytes.to_string line)
  done;
  Printf.printf "  reader at left edge centre, facing right; %.1f ft wide, +/-%.1f ft tall\n"
    max_x max_y
