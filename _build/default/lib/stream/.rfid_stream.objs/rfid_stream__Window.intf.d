lib/stream/window.mli: Rfid_model
