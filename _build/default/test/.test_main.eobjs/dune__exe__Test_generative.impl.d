test/test_generative.ml: Alcotest Array Generative List Motion_model Params Reader_state Rfid_geom Rfid_model Rfid_prob Sensor_model Trace Types Util Vec3 World
