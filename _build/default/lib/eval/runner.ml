type result = {
  events : Rfid_core.Event.t list;
  error : Metrics.error;
  total_readings : int;
  elapsed_s : float;
  ms_per_reading : float;
  max_objects_processed : int;
  live_heap_mb : float;
}

let run_engine ?(params = Rfid_model.Params.default) ~config ?init_reader ?(seed = 0)
    (trace : Rfid_model.Trace.t) =
  let init_reader =
    match init_reader with
    | Some r -> r
    | None ->
        if Array.length trace.Rfid_model.Trace.steps = 0 then
          invalid_arg "Runner.run_engine: empty trace and no init_reader"
        else trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
  in
  let engine =
    Rfid_core.Engine.create ~world:trace.Rfid_model.Trace.world ~params ~config
      ~init_reader ~num_objects:trace.Rfid_model.Trace.num_objects ~seed ()
  in
  let observations = Rfid_model.Trace.observations trace in
  let total_readings =
    List.fold_left
      (fun acc (o : Rfid_model.Types.observation) ->
        acc + List.length o.Rfid_model.Types.o_read_tags)
      0 observations
  in
  Gc.full_major ();
  let baseline_words = (Gc.stat ()).Gc.live_words in
  let t0 = Unix.gettimeofday () in
  let max_scope = ref 0 in
  let events =
    List.concat_map
      (fun obs ->
        let evs = Rfid_core.Engine.step engine obs in
        max_scope :=
          Int.max !max_scope (Rfid_core.Engine.objects_processed_last_step engine);
        evs)
      observations
  in
  let events = events @ Rfid_core.Engine.flush engine in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Gc.full_major ();
  let live_heap_mb =
    float_of_int (Int.max 0 ((Gc.stat ()).Gc.live_words - baseline_words))
    *. float_of_int (Sys.word_size / 8)
    /. 1_048_576.
  in
  let error = Metrics.inference_error events trace in
  {
    events;
    error;
    total_readings;
    elapsed_s;
    ms_per_reading =
      (if total_readings = 0 then 0. else 1000. *. elapsed_s /. float_of_int total_readings);
    max_objects_processed = !max_scope;
    live_heap_mb;
  }
