lib/learn/supervised.mli: Rfid_model
