lib/model/params.mli: Format Location_sensing Motion_model Object_model Sensor_model
