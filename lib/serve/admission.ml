type 'a t = { q : 'a Queue.t; cap : int; mutable overflows : int }

let create ~cap =
  if cap < 1 then invalid_arg "Admission.create: cap must be >= 1";
  { q = Queue.create (); cap; overflows = 0 }

let capacity t = t.cap
let length t = Queue.length t.q

let offer t x =
  if Queue.length t.q >= t.cap then begin
    t.overflows <- t.overflows + 1;
    false
  end
  else begin
    Queue.push x t.q;
    true
  end

let take t = Queue.take_opt t.q
let overflows t = t.overflows
