(** Bounded admission queue between the wire and the engine
    (PROTOCOL.md §4).

    [PUT] frames that parse are not stepped inline by the reader — they
    are queued here and drained by the server's tick loop, so a burst of
    writes cannot stall every other connection behind one slow inference
    step. The queue is the backpressure boundary: when it is full,
    {!offer} refuses and the server answers [BUSY] with the observed
    depth, never dropping the observation silently. The client owns the
    retry. *)

type 'a t

val create : cap:int -> 'a t
(** @raise Invalid_argument if [cap < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val offer : 'a t -> 'a -> bool
(** Enqueue, or refuse ([false]) when the queue already holds
    [capacity] items. A refusal increments {!overflows}. *)

val take : 'a t -> 'a option
(** Dequeue the oldest item, [None] when empty. *)

val overflows : 'a t -> int
(** Total refused {!offer}s over the queue's lifetime — exported as the
    server's [busy_rejections] statistic. *)
