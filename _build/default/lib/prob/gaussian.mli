(** Univariate and low-dimensional multivariate Gaussians.

    The multivariate form is the compressed belief representation of
    §IV-D: a weighted particle cloud for an object location is collapsed
    into its moment-matched Gaussian (the KL-optimal choice), stored,
    and later decompressed by sampling. *)

(** {1 Univariate} *)

module Univariate : sig
  type t = { mu : float; sigma : float }

  val create : mu:float -> sigma:float -> t
  (** @raise Invalid_argument if [sigma < 0]. *)

  val pdf : t -> float -> float
  val log_pdf : t -> float -> float
  val cdf : t -> float -> float
  val sample : t -> Rng.t -> float

  val fit : ?w:float array -> float array -> t
  (** Moment-matched (maximum likelihood) fit; [w] are normalized
      weights, uniform if omitted. @raise Invalid_argument on empty
      data. *)
end

(** {1 Multivariate} *)

type t
(** A d-dimensional Gaussian with cached Cholesky factor and
    log-normalizer, so repeated [log_pdf]/[sample] calls are cheap. *)

val create : mean:float array -> cov:Linalg.mat -> t
(** @raise Invalid_argument if [cov] is not square of the mean's
    dimension or not positive (semi)definite. Semidefinite covariances
    are jittered (see {!Linalg.cholesky}). *)

val dim : t -> int
val mean : t -> float array
val cov : t -> Linalg.mat

val log_pdf : t -> float array -> float
val pdf : t -> float array -> float
val sample : t -> Rng.t -> float array

val fit : ?w:float array -> float array array -> t
(** Moment-matched fit of points (rows) under normalized weights [w]
    (uniform if omitted). This is the KL(p-hat || q) minimizer over
    Gaussians q, i.e. exactly the belief-compression step of §IV-D.
    @raise Invalid_argument on empty data or ragged rows. *)

val avg_nll : ?w:float array -> t -> float array array -> float
(** Weighted average negative log-likelihood of points under [t]: the
    compression-loss score used to rank objects for compression (a
    monotone surrogate of the discrete-to-continuous KL divergence the
    paper describes). Lower means the cloud is more Gaussian. *)

val mahalanobis_sq : t -> float array -> float
(** Squared Mahalanobis distance of a point from the mean. *)

val confidence_ellipse_xy : t -> level:float -> float * float * float
(** [(semi_major, semi_minor, angle)] of the confidence ellipse of the
    first two dimensions at the given coverage level (e.g. 0.95): the
    eigen-decomposition of the XY covariance scaled by the chi-square
    quantile with two degrees of freedom, [r^2 = -2 ln (1 - level)].
    [angle] is the major axis' direction in radians.
    @raise Invalid_argument unless the distribution has >= 2 dimensions
    and [0 < level < 1]. *)
