lib/eval/runner.mli: Metrics Rfid_core Rfid_model
