lib/model/generative.mli: Params Reader_state Rfid_prob Trace World
