open Rfid_geom

(* Vec3 *)

let test_vec_arithmetic () =
  let a = Util.vec3 1. 2. 3. and b = Util.vec3 4. (-5.) 6. in
  Util.check_vec3 "add" (Util.vec3 5. (-3.) 9.) (Vec3.add a b);
  Util.check_vec3 "sub" (Util.vec3 (-3.) 7. (-3.)) (Vec3.sub a b);
  Util.check_vec3 "scale" (Util.vec3 2. 4. 6.) (Vec3.scale 2. a);
  Util.check_close "dot" 12. (Vec3.dot a b);
  Util.check_close "norm" (sqrt 14.) (Vec3.norm a);
  Util.check_close "dist" (Vec3.norm (Vec3.sub a b)) (Vec3.dist a b)

let test_vec_xy () =
  let a = Util.vec3 0. 0. 0. and b = Util.vec3 3. 4. 100. in
  Util.check_close "dist_xy ignores z" 5. (Vec3.dist_xy a b);
  Util.check_close "xy_angle" (Float.pi /. 2.) (Vec3.xy_angle (Util.vec3 0. 1. 0.))

let test_vec_lerp_array () =
  Util.check_vec3 "lerp midpoint" (Util.vec3 1. 1. 1.)
    (Vec3.lerp Vec3.zero (Util.vec3 2. 2. 2.) 0.5);
  Util.check_vec3 "array roundtrip" (Util.vec3 1. 2. 3.)
    (Vec3.of_array (Vec3.to_array (Util.vec3 1. 2. 3.)));
  Util.check_raises_invalid "bad array" (fun () -> Vec3.of_array [| 1. |])

(* Box2 *)

let box a b c d = Box2.make ~min_x:a ~min_y:b ~max_x:c ~max_y:d

let test_box_make_invalid () =
  Util.check_raises_invalid "inverted x" (fun () -> box 1. 0. 0. 1.);
  Util.check_raises_invalid "nan" (fun () -> box Float.nan 0. 1. 1.)

let test_box_contains_intersects () =
  let b = box 0. 0. 2. 2. in
  Alcotest.(check bool) "inside" true (Box2.contains_point b (Util.vec3 1. 1. 5.));
  Alcotest.(check bool) "boundary inclusive" true
    (Box2.contains_point b (Util.vec3 2. 0. 0.));
  Alcotest.(check bool) "outside" false (Box2.contains_point b (Util.vec3 2.1 1. 0.));
  Alcotest.(check bool) "overlap" true (Box2.intersects b (box 1. 1. 3. 3.));
  Alcotest.(check bool) "shared edge counts" true (Box2.intersects b (box 2. 0. 3. 2.));
  Alcotest.(check bool) "disjoint" false (Box2.intersects b (box 3. 3. 4. 4.))

let test_box_union_area () =
  let u = Box2.union (box 0. 0. 1. 1.) (box 2. 2. 3. 4.) in
  Util.check_close "union area" 12. (Box2.area u);
  Util.check_close "enlargement" 11. (Box2.enlargement (box 0. 0. 1. 1.) (box 2. 2. 3. 4.))

let test_box_of_points_inflate_center () =
  let b = Box2.of_points [ Util.vec3 1. 5. 0.; Util.vec3 (-2.) 3. 9. ] in
  Util.check_close "min_x" (-2.) b.Box2.min_x;
  Util.check_close "max_y" 5. b.Box2.max_y;
  Util.check_raises_invalid "empty points" (fun () -> Box2.of_points []);
  let infl = Box2.inflate (box 0. 0. 2. 2.) 1. in
  Util.check_close "inflated area" 16. (Box2.area infl);
  Util.check_vec3 "center" (Util.vec3 1. 1. 0.) (Box2.center (box 0. 0. 2. 2.))

(* Rtree *)

let random_box rng =
  let open Rfid_prob in
  let x = Rng.uniform rng ~lo:0. ~hi:100. and y = Rng.uniform rng ~lo:0. ~hi:100. in
  let w = Rng.uniform rng ~lo:0.1 ~hi:5. and h = Rng.uniform rng ~lo:0.1 ~hi:5. in
  box x y (x +. w) (y +. h)

let test_rtree_basic () =
  let t = Rtree.create () in
  Alcotest.(check int) "empty size" 0 (Rtree.size t);
  Alcotest.(check (list int)) "empty query" [] (Rtree.query t (box 0. 0. 10. 10.));
  Rtree.insert t (box 0. 0. 1. 1.) 1;
  Rtree.insert t (box 5. 5. 6. 6.) 2;
  Alcotest.(check int) "size" 2 (Rtree.size t);
  Alcotest.(check (list int)) "hit" [ 1 ] (Rtree.query t (box 0.5 0.5 0.7 0.7));
  Alcotest.(check (list int)) "miss" [] (Rtree.query t (box 2. 2. 3. 3.));
  Rtree.clear t;
  Alcotest.(check int) "cleared" 0 (Rtree.size t)

let test_rtree_vs_bruteforce () =
  let rng = Util.rng () in
  let t = Rtree.create () in
  let boxes = Array.init 500 (fun i -> (random_box rng, i)) in
  Array.iter (fun (b, i) -> Rtree.insert t b i) boxes;
  for _ = 1 to 50 do
    let probe = random_box rng in
    let expected =
      Array.to_list boxes
      |> List.filter_map (fun (b, i) -> if Box2.intersects b probe then Some i else None)
      |> List.sort Int.compare
    in
    let actual = List.sort Int.compare (Rtree.query t probe) in
    Alcotest.(check (list int)) "rtree = brute force" expected actual
  done

let test_rtree_duplicates_and_depth () =
  let t = Rtree.create ~max_entries:4 () in
  for i = 1 to 200 do
    Rtree.insert t (box 0. 0. 1. 1.) i
  done;
  Alcotest.(check int) "all retained" 200
    (List.length (Rtree.query t (box 0. 0. 1. 1.)));
  Alcotest.(check bool) "tree grew" true (Rtree.depth t > 1)

let test_rtree_invalid () =
  Util.check_raises_invalid "max_entries too small" (fun () ->
      ignore (Rtree.create ~max_entries:3 ()))

let test_rtree_query_into_basic () =
  let t = Rtree.create () in
  let hits = Rtree.Hits.create ~dummy:(-1) in
  Rtree.query_into t (box 0. 0. 10. 10.) hits;
  Alcotest.(check int) "empty tree" 0 (Rtree.Hits.length hits);
  Rtree.insert t (box 0. 0. 1. 1.) 1;
  Rtree.insert t (box 5. 5. 6. 6.) 2;
  Rtree.query_into t (box 0.5 0.5 0.7 0.7) hits;
  Alcotest.(check int) "one hit" 1 (Rtree.Hits.length hits);
  Alcotest.(check int) "hit value" 1 (Rtree.Hits.get hits 0);
  Util.check_raises_invalid "get out of range" (fun () -> Rtree.Hits.get hits 1);
  (* Reuse across probes: the buffer is cleared each call. *)
  Rtree.query_into t (box 2. 2. 3. 3.) hits;
  Alcotest.(check int) "miss clears previous hits" 0 (Rtree.Hits.length hits)

(* [query_into] must visit the same entries as [query], in exactly the
   reverse order ([query] builds its list by prepending; the buffer is
   filled in visit order) — the factored filter's shelf-evidence loop
   walks the buffer backwards relying on this. *)
let prop_rtree_query_into_matches_query =
  Util.qcheck ~count:60 "query_into = reversed query" QCheck.small_int (fun seed ->
      let rng = Rfid_prob.Rng.create ~seed in
      let t = Rtree.create ~max_entries:5 () in
      let n = Rfid_prob.Rng.int rng 150 in
      for i = 0 to n - 1 do
        Rtree.insert t (random_box rng) i
      done;
      let hits = Rtree.Hits.create ~dummy:(-1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let probe = random_box rng in
        Rtree.query_into t probe hits;
        let buf =
          List.init (Rtree.Hits.length hits) (fun i -> Rtree.Hits.get hits i)
        in
        if List.rev buf <> Rtree.query t probe then ok := false
      done;
      !ok)

let prop_rtree_query_complete =
  Util.qcheck ~count:60 "rtree query matches brute force" QCheck.small_int (fun seed ->
      let rng = Rfid_prob.Rng.create ~seed in
      let t = Rtree.create ~max_entries:5 () in
      let boxes = Array.init 120 (fun i -> (random_box rng, i)) in
      Array.iter (fun (b, i) -> Rtree.insert t b i) boxes;
      let probe = random_box rng in
      let expected =
        Array.to_list boxes
        |> List.filter_map (fun (b, i) ->
               if Box2.intersects b probe then Some i else None)
        |> List.sort Int.compare
      in
      List.sort Int.compare (Rtree.query t probe) = expected)

(* Cone *)

let test_cone_contains () =
  let c =
    Cone.make ~apex:Vec3.zero ~heading:0. ~half_angle:(Float.pi /. 6.) ~range:3.
  in
  Alcotest.(check bool) "head-on inside" true (Cone.contains c (Util.vec3 2. 0. 0.));
  Alcotest.(check bool) "apex inside" true (Cone.contains c Vec3.zero);
  Alcotest.(check bool) "beyond range" false (Cone.contains c (Util.vec3 4. 0. 0.));
  Alcotest.(check bool) "behind" false (Cone.contains c (Util.vec3 (-1.) 0. 0.));
  Alcotest.(check bool) "wide angle" false (Cone.contains c (Util.vec3 1. 1. 0.))

let test_cone_relative_angle () =
  let c = Cone.make ~apex:Vec3.zero ~heading:(Float.pi /. 2.) ~half_angle:1. ~range:5. in
  Util.check_close ~eps:1e-9 "straight up" 0. (Cone.relative_angle c (Util.vec3 0. 3. 0.));
  Util.check_close ~eps:1e-9 "right angle" (Float.pi /. 2.)
    (Cone.relative_angle c (Util.vec3 3. 0. 0.))

let test_cone_heading_wrap () =
  (* Heading near pi: a point across the -pi/pi seam must still read as
     a small relative angle. *)
  let c = Cone.make ~apex:Vec3.zero ~heading:Float.pi ~half_angle:0.5 ~range:5. in
  Alcotest.(check bool) "across seam" true (Cone.contains c (Util.vec3 (-3.) (-0.1) 0.))

let test_cone_samples_inside () =
  let rng = Util.rng () in
  let c = Cone.make ~apex:(Util.vec3 1. 2. 0.) ~heading:0.7 ~half_angle:0.4 ~range:2.5 in
  for _ = 1 to 2000 do
    let p = Cone.sample c rng in
    if not (Cone.contains c p) then
      Alcotest.failf "sample escaped cone: %s" (Format.asprintf "%a" Vec3.pp p)
  done

let test_cone_bounding_box_covers_samples () =
  let rng = Util.rng () in
  let c =
    Cone.make ~apex:(Util.vec3 (-1.) 4. 0.) ~heading:2.5 ~half_angle:1.2 ~range:3.
  in
  let bb = Cone.bounding_box c in
  for _ = 1 to 2000 do
    let p = Cone.sample c rng in
    if not (Box2.contains_point bb p) then
      Alcotest.failf "sample outside bounding box: %s" (Format.asprintf "%a" Vec3.pp p)
  done

let test_cone_sample_in_box () =
  let rng = Util.rng () in
  let c = Cone.make ~apex:Vec3.zero ~heading:0. ~half_angle:0.5 ~range:3. in
  let b = box 1. (-1.) 2. 1. in
  (match Cone.sample_in_box c b rng with
  | Some p ->
      Alcotest.(check bool) "in box" true (Box2.contains_point b p);
      Alcotest.(check bool) "in cone" true (Cone.contains c p)
  | None -> Alcotest.fail "expected intersection sample");
  (* Disjoint box yields None. *)
  Alcotest.(check bool) "disjoint" true
    (Cone.sample_in_box c (box 50. 50. 51. 51.) rng = None)

let test_cone_invalid () =
  Util.check_raises_invalid "zero half angle" (fun () ->
      Cone.make ~apex:Vec3.zero ~heading:0. ~half_angle:0. ~range:1.);
  Util.check_raises_invalid "zero range" (fun () ->
      Cone.make ~apex:Vec3.zero ~heading:0. ~half_angle:1. ~range:0.)

let prop_cone_sample_contained =
  Util.qcheck ~count:100 "cone samples stay inside"
    QCheck.(quad small_int (float_range (-3.) 3.) (float_range 0.1 3.) (float_range 0.5 4.))
    (fun (seed, heading, half_angle, range) ->
      let rng = Rfid_prob.Rng.create ~seed in
      let c = Cone.make ~apex:(Util.vec3 0.5 (-0.5) 0.) ~heading ~half_angle ~range in
      let ok = ref true in
      for _ = 1 to 50 do
        if not (Cone.contains c (Cone.sample c rng)) then ok := false
      done;
      !ok)

let suite =
  ( "geom",
    [
      Alcotest.test_case "vec arithmetic" `Quick test_vec_arithmetic;
      Alcotest.test_case "vec xy projections" `Quick test_vec_xy;
      Alcotest.test_case "vec lerp/array" `Quick test_vec_lerp_array;
      Alcotest.test_case "box validation" `Quick test_box_make_invalid;
      Alcotest.test_case "box contains/intersects" `Quick test_box_contains_intersects;
      Alcotest.test_case "box union/area" `Quick test_box_union_area;
      Alcotest.test_case "box of_points/inflate/center" `Quick
        test_box_of_points_inflate_center;
      Alcotest.test_case "rtree basics" `Quick test_rtree_basic;
      Alcotest.test_case "rtree vs brute force" `Quick test_rtree_vs_bruteforce;
      Alcotest.test_case "rtree duplicates/depth" `Quick test_rtree_duplicates_and_depth;
      Alcotest.test_case "rtree validation" `Quick test_rtree_invalid;
      Alcotest.test_case "rtree query_into" `Quick test_rtree_query_into_basic;
      prop_rtree_query_into_matches_query;
      prop_rtree_query_complete;
      Alcotest.test_case "cone contains" `Quick test_cone_contains;
      Alcotest.test_case "cone relative angle" `Quick test_cone_relative_angle;
      Alcotest.test_case "cone heading wrap" `Quick test_cone_heading_wrap;
      Alcotest.test_case "cone samples inside" `Quick test_cone_samples_inside;
      Alcotest.test_case "cone bbox covers samples" `Quick
        test_cone_bounding_box_covers_samples;
      Alcotest.test_case "cone sample in box" `Quick test_cone_sample_in_box;
      Alcotest.test_case "cone validation" `Quick test_cone_invalid;
      prop_cone_sample_contained;
    ] )
