(** Durable engine checkpoints, so a long-running inference process can
    be killed and resumed without replaying its whole input — and
    resume {e bit-identically}: the snapshot captures every piece of
    dynamic state (RNG streams included), so the event stream after a
    resume equals the uninterrupted one exactly.

    Format (v2): a two-line text header — magic + version, then
    [epoch=<E> bytes=<N> adler32=<checksum>] — followed by [N] bytes of
    {!Codec}-encoded {!Rfid_core.Engine.snapshot}. The outer checksum
    is verified on load, the codec then verifies each section's own
    checksum, and the header epoch is cross-checked against the decoded
    snapshot's epoch, so a truncated, corrupted, or mislabeled file
    yields a clean [Error] naming what went bad — never a garbage
    engine state. The legacy v1 format (same header, [Marshal] payload)
    was readable for exactly one release of migration and is now
    refused with an explicit error telling the operator to re-create
    the checkpoint; {!save} always writes v2.

    Checkpoints are written atomically (write to [path ^ ".tmp"],
    [fsync], then rename, then directory fsync), so a crash at any byte
    of {!save} cannot destroy the previous checkpoint at [path] and a
    completed save survives power loss.

    For kill-anywhere recovery, {!save_rotating} keeps the last [keep]
    checkpoints as [ckpt-<epoch>.bin] files in a directory and
    {!load_newest} walks them newest-first, falling back down the chain
    past any corrupted file. *)

val version : int
(** Current checkpoint envelope version (2), stamped into the header of
    every file {!save} writes. {!load} accepts only this version; bump
    it whenever the payload encoding changes. *)

val save : path:string -> Rfid_core.Engine.snapshot -> unit
(** Write a checkpoint atomically and durably (via [path ^ ".tmp"] +
    fsync + rename + directory fsync). Encode time is recorded in the
    [stage.checkpoint_encode] span.
    @raise Sys_error if the file cannot be written. *)

val load : path:string -> (Rfid_core.Engine.snapshot, string) result
(** Read and verify a checkpoint (v2 only; a legacy v1 file gets an
    [Error] naming the dropped format). All failure modes — missing
    file, wrong magic, unsupported version, truncation, checksum
    mismatch, undecodable payload, header/payload epoch disagreement —
    return [Error] with a descriptive message naming the failing part.
    Decode time is recorded in the [stage.checkpoint_decode] span. *)

val load_exn : path:string -> Rfid_core.Engine.snapshot
(** @raise Failure on any [Error] from {!load}. *)

(** {1 Rotation}

    A single checkpoint file has a window of vulnerability exactly when
    it matters most: if the process dies {e while} writing, the atomic
    rename protects the previous file, but if the previous file was
    already corrupt on disk (bit rot, operator accident) there is no
    further fallback. Rotation keeps the last [keep] checkpoints so
    recovery can walk back to the newest one that still verifies. *)

val save_rotating :
  dir:string -> keep:int -> Rfid_core.Engine.snapshot -> unit
(** Save into [dir] (created if missing) as [ckpt-<epoch>.bin] via
    {!save}'s atomic path, then delete the oldest files beyond the
    [keep] (≥ 1) newest. Re-checkpointing the same epoch overwrites
    that file.
    @raise Sys_error if the directory cannot be created or written. *)

val clear_rotation : dir:string -> unit
(** Delete every checkpoint file ([ckpt-*.bin]) and stale temp file in
    [dir]. A run starting from scratch must call this on its rotation
    directory: leftover checkpoints from an earlier run are {e newer}
    than anything the fresh run will write for a while, so a later
    crash + recovery would resume from the stale state instead of the
    current run's. (Fresh runs already truncate their WAL and event
    log; this is the same hygiene for the checkpoint directory.)
    Missing directory is a no-op. *)

val load_newest : dir:string -> (Rfid_core.Engine.snapshot, string) result
(** Load the newest (highest-epoch) checkpoint in [dir] that passes
    verification, silently skipping corrupted newer ones. [Error]
    only when [dir] has no loadable checkpoint; the message then lists
    every file tried and why it failed. *)

val load_auto : path:string -> (Rfid_core.Engine.snapshot, string) result
(** [load_newest] if [path] is a directory, {!load} otherwise — the
    dispatch behind the CLI's [--resume], which accepts either. *)
