type variant = Unfactorized | Factorized | Factorized_indexed | Factorized_compressed
type resample_scheme = Systematic | Multinomial | Residual
type proposal = From_velocity | From_reported_displacement | From_reported_location

type heading_model =
  | Known_heading of (Rfid_model.Types.epoch -> float)
  | Track_heading of { jump_prob : float }

type t = {
  variant : variant;
  num_reader_particles : int;
  num_object_particles : int;
  min_object_particles : int;
  resample_ratio : float;
  resample_ess_ratio : float;
  proposal : proposal;
  heading_model : heading_model;
  init_overestimate : float;
  reinit_near : float;
  reinit_far : float;
  out_of_scope_after : int;
  report_delay : int;
  compress_after : int;
  decompress_particles : int;
  compress_max_nll : float option;
  index_min_displacement : float;
  detection_threshold : float;
  case4_margin : float;
  max_sensing_range : float;
  resample_scheme : resample_scheme;
  proposal_noise_override : Rfid_geom.Vec3.t option;
  num_domains : int;
  shelf_miss_weight : float;
  drop_out_of_order : bool;
  degraded_widen_after : int;
  degraded_noise_scale : float;
  degraded_widen_sigma : float;
}

let create ?(variant = Factorized_indexed) ?(num_reader_particles = 100)
    ?(num_object_particles = 200) ?min_object_particles ?(resample_ratio = 0.5)
    ?(resample_ess_ratio = 1.0)
    ?(proposal = From_reported_displacement)
    ?(heading_model = Known_heading (fun _ -> 0.)) ?(init_overestimate = 1.25)
    ?(reinit_near = 1.0) ?(reinit_far = 6.0) ?(out_of_scope_after = 15)
    ?(report_delay = 60) ?(compress_after = 20) ?(decompress_particles = 10)
    ?(compress_max_nll = None) ?(index_min_displacement = 0.5)
    ?(detection_threshold = 0.02) ?(case4_margin = 1.0) ?(max_sensing_range = 12.) ?(shelf_miss_weight = 0.25) ?(resample_scheme = Systematic) ?(proposal_noise_override = None) ?(num_domains = 1)
    ?(drop_out_of_order = false) ?(degraded_widen_after = 10)
    ?(degraded_noise_scale = 3.0) ?(degraded_widen_sigma = 0.25) () =
  if num_reader_particles <= 0 || num_object_particles <= 0 then
    invalid_arg "Config.create: particle counts must be positive";
  if not (resample_ratio > 0. && resample_ratio <= 1.) then
    invalid_arg "Config.create: resample_ratio must be in (0, 1]";
  if not (resample_ess_ratio > 0. && resample_ess_ratio <= 1.) then
    invalid_arg "Config.create: resample_ess_ratio must be in (0, 1]";
  let min_object_particles =
    Option.value min_object_particles ~default:num_object_particles
  in
  if min_object_particles <= 0 || min_object_particles > num_object_particles then
    invalid_arg
      "Config.create: min_object_particles must be in [1, num_object_particles]";
  if min_object_particles < num_object_particles && not (reinit_near > 0.) then
    invalid_arg
      "Config.create: adaptive budgets (min_object_particles < \
       num_object_particles) need reinit_near > 0 to anchor the spread \
       thresholds";
  if init_overestimate <= 0. then
    invalid_arg "Config.create: init_overestimate must be positive";
  if reinit_near < 0. || reinit_far < reinit_near then
    invalid_arg "Config.create: need 0 <= reinit_near <= reinit_far";
  if out_of_scope_after <= 0 || report_delay < 0 || compress_after <= 0 then
    invalid_arg "Config.create: scope/report/compress horizons must be positive";
  if decompress_particles <= 0 then
    invalid_arg "Config.create: decompress_particles must be positive";
  if index_min_displacement < 0. || case4_margin < 0. then
    invalid_arg "Config.create: negative index parameters";
  if max_sensing_range <= 0. then
    invalid_arg "Config.create: max_sensing_range must be positive";
  if not (shelf_miss_weight >= 0. && shelf_miss_weight <= 1.) then
    invalid_arg "Config.create: shelf_miss_weight must be in [0, 1]";
  if not (detection_threshold > 0. && detection_threshold < 1.) then
    invalid_arg "Config.create: detection_threshold must be in (0, 1)";
  if num_domains < 1 then invalid_arg "Config.create: num_domains must be >= 1";
  if degraded_widen_after <= 0 then
    invalid_arg "Config.create: degraded_widen_after must be positive";
  if degraded_noise_scale < 1. then
    invalid_arg "Config.create: degraded_noise_scale must be >= 1";
  if degraded_widen_sigma < 0. then
    invalid_arg "Config.create: degraded_widen_sigma must be non-negative";
  {
    variant;
    num_reader_particles;
    num_object_particles;
    min_object_particles;
    resample_ratio;
    resample_ess_ratio;
    proposal;
    heading_model;
    init_overestimate;
    reinit_near;
    reinit_far;
    out_of_scope_after;
    report_delay;
    compress_after;
    decompress_particles;
    compress_max_nll;
    index_min_displacement;
    detection_threshold;
    case4_margin;
    max_sensing_range;
    shelf_miss_weight;
    resample_scheme;
    proposal_noise_override;
    num_domains;
    drop_out_of_order;
    degraded_widen_after;
    degraded_noise_scale;
    degraded_widen_sigma;
  }

let default = create ()
