open Rfid_geom
open Rfid_model

module Sensor_cache = struct
  type t = { range : float; half_angle : float }

  let create ~threshold ~max_range sensor =
    let range = Float.min max_range (Sensor_model.detection_range ~threshold sensor) in
    let half_angle =
      Sensor_model.detection_half_angle ~threshold sensor ~d:(Float.max 0.1 (range /. 2.))
    in
    { range; half_angle }
end

let init_cone (cache : Sensor_cache.t) ~overestimate ~reader_loc ~heading =
  let range = Float.max 0.5 (overestimate *. cache.Sensor_cache.range) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. cache.Sensor_cache.half_angle))
  in
  Cone.make ~apex:reader_loc ~heading ~half_angle ~range

let sample_initial_location cache ~overestimate ~world ~reader_loc ~heading rng =
  let cone = init_cone cache ~overestimate ~reader_loc ~heading in
  let p = Cone.sample cone rng in
  if World.contains world p then p else World.clamp_to_shelves world p

let propose_heading model ~motion ~epoch ~current rng =
  match model with
  | Config.Known_heading f -> f epoch
  | Config.Track_heading { jump_prob } ->
      if Rfid_prob.Rng.bernoulli rng ~p:jump_prob then
        Rfid_prob.Rng.uniform rng ~lo:(-.Float.pi) ~hi:Float.pi
      else
        current
        +. motion.Motion_model.heading_drift
        +. Rfid_prob.Rng.gaussian rng ~sigma:motion.Motion_model.heading_sigma ()

let proposal_delta proposal ~motion ~last_reported ~reported =
  match proposal with
  | Config.From_velocity -> motion.Motion_model.velocity
  | Config.From_reported_displacement | Config.From_reported_location -> (
      match last_reported with
      | Some prev -> Vec3.sub reported prev
      | None -> motion.Motion_model.velocity)

let proposal_sigma proposal ~motion ~sensing =
  match proposal with
  | Config.From_velocity -> motion.Motion_model.sigma
  | Config.From_reported_displacement | Config.From_reported_location ->
      let m = motion.Motion_model.sigma in
      let s = sensing.Location_sensing.sigma in
      let axis m s = sqrt ((m *. m) +. (2. *. s *. s)) in
      Vec3.make (axis m.Vec3.x s.Vec3.x) (axis m.Vec3.y s.Vec3.y) (axis m.Vec3.z s.Vec3.z)

let jitter p ~sigma rng =
  Vec3.make
    (p.Vec3.x +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.x ())
    (p.Vec3.y +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.y ())
    (p.Vec3.z +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.z ())

let resample scheme rng w ~n =
  match scheme with
  | Config.Systematic -> Rfid_prob.Resample.systematic rng w ~n
  | Config.Multinomial -> Rfid_prob.Resample.multinomial rng w ~n
  | Config.Residual -> Rfid_prob.Resample.residual rng w ~n

(* Same dispatch into the scratch-buffer variants: identical draws and
   indices, no allocation. *)
let resample_into scheme rng w ~n ~out =
  match scheme with
  | Config.Systematic -> Rfid_prob.Resample.systematic_into rng w ~n ~out
  | Config.Multinomial -> Rfid_prob.Resample.multinomial_into rng w ~n ~out
  | Config.Residual -> Rfid_prob.Resample.residual_into rng w ~n ~out
