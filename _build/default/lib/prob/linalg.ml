type mat = float array array

let dim a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linalg: empty matrix";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Linalg: matrix not square") a;
  n

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let copy a = Array.map Array.copy a

let transpose a =
  let n = dim a in
  Array.init n (fun i -> Array.init n (fun j -> a.(j).(i)))

let mat_mul a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Linalg.mat_mul: size mismatch";
  Array.init n (fun i ->
      Array.init n (fun j ->
          let s = ref 0. in
          for k = 0 to n - 1 do
            s := !s +. (a.(i).(k) *. b.(k).(j))
          done;
          !s))

let mat_vec a v =
  let n = dim a in
  if Array.length v <> n then invalid_arg "Linalg.mat_vec: size mismatch";
  Array.init n (fun i ->
      let s = ref 0. in
      for j = 0 to n - 1 do
        s := !s +. (a.(i).(j) *. v.(j))
      done;
      !s)

let add a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Linalg.add: size mismatch";
  Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) +. b.(i).(j)))

let scale c a = Array.map (Array.map (fun x -> c *. x)) a

let dot u v =
  if Array.length u <> Array.length v then invalid_arg "Linalg.dot: size mismatch";
  let s = ref 0. in
  Array.iteri (fun i x -> s := !s +. (x *. v.(i))) u;
  !s

let outer u v = Array.map (fun x -> Array.map (fun y -> x *. y) v) u

let cholesky_attempt a n =
  let l = Array.make_matrix n n 0. in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let s = ref a.(i).(j) in
         for k = 0 to j - 1 do
           s := !s -. (l.(i).(k) *. l.(j).(k))
         done;
         if i = j then
           if !s <= 0. then begin
             ok := false;
             raise Exit
           end
           else l.(i).(j) <- sqrt !s
         else l.(i).(j) <- !s /. l.(j).(j)
       done
     done
   with Exit -> ());
  if !ok then Some l else None

let cholesky a =
  let n = dim a in
  match cholesky_attempt a n with
  | Some l -> l
  | None -> (
      (* Jitter rescue for semidefinite covariance matrices (e.g. all
         particles collapsed to one point). *)
      let jittered = copy a in
      let trace = ref 0. in
      for i = 0 to n - 1 do
        trace := !trace +. Float.abs a.(i).(i)
      done;
      let eps = Float.max 1e-12 (1e-9 *. !trace) in
      for i = 0 to n - 1 do
        jittered.(i).(i) <- jittered.(i).(i) +. eps
      done;
      match cholesky_attempt jittered n with
      | Some l -> l
      | None -> invalid_arg "Linalg.cholesky: matrix not positive definite")

let solve_cholesky l b =
  let n = dim l in
  if Array.length b <> n then invalid_arg "Linalg.solve_cholesky: size mismatch";
  (* Forward substitution: l y = b *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (l.(i).(k) *. y.(k))
    done;
    y.(i) <- !s /. l.(i).(i)
  done;
  (* Backward substitution: l^T x = y *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let solve_spd a b = solve_cholesky (cholesky a) b

let inverse_spd a =
  let n = dim a in
  let l = cholesky a in
  let cols =
    Array.init n (fun j ->
        let e = Array.make n 0. in
        e.(j) <- 1.;
        solve_cholesky l e)
  in
  Array.init n (fun i -> Array.init n (fun j -> cols.(j).(i)))

let log_det_spd a =
  let l = cholesky a in
  let n = Array.length l in
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. log l.(i).(i)
  done;
  2. *. !s

let solve_gauss a b =
  let n = dim a in
  if Array.length b <> n then invalid_arg "Linalg.solve_gauss: size mismatch";
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivot. *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then
      invalid_arg "Linalg.solve_gauss: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    for r = col + 1 to n - 1 do
      let f = m.(r).(col) /. m.(col).(col) in
      if f <> 0. then begin
        for c = col to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
        done;
        x.(r) <- x.(r) -. (f *. x.(col))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (m.(i).(k) *. x.(k))
    done;
    x.(i) <- !s /. m.(i).(i)
  done;
  x
