(* Tests of the inference core: Config, Event, Basic_filter,
   Factored_filter, Engine. *)
open Rfid_core
open Rfid_model
open Rfid_geom

let test_config_validation () =
  Util.check_raises_invalid "zero particles" (fun () ->
      ignore (Config.create ~num_reader_particles:0 ()));
  Util.check_raises_invalid "bad ratio" (fun () ->
      ignore (Config.create ~resample_ratio:1.5 ()));
  Util.check_raises_invalid "reinit order" (fun () ->
      ignore (Config.create ~reinit_near:5. ~reinit_far:1. ()));
  Util.check_raises_invalid "bad threshold" (fun () ->
      ignore (Config.create ~detection_threshold:0. ()));
  Util.check_raises_invalid "bad max range" (fun () ->
      ignore (Config.create ~max_sensing_range:(-1.) ()))

let test_event () =
  let ev =
    Event.make ~epoch:5 ~obj:3 ~loc:(Util.vec3 1. 2. 0.)
      ~cov:[| [| 4.; 0.; 0. |]; [| 0.; 16.; 0. |]; [| 0.; 0.; 0. |] |]
      ()
  in
  (match Event.std_dev_xy ev with
  | Some s -> Util.check_close "sd_xy" (sqrt 10.) s
  | None -> Alcotest.fail "expected stats");
  let bare = Event.make ~epoch:0 ~obj:0 ~loc:Vec3.zero () in
  Alcotest.(check bool) "no stats" true (Event.std_dev_xy bare = None);
  ignore (Format.asprintf "%a" Event.pp ev)

(* A tiny deterministic scenario used across filter tests. *)
let scenario ?(num_objects = 6) ?(seed = 21) ?(rr = 1.0) () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:rr () in
  let config = Rfid_sim.Trace_gen.default_config ~sensor () in
  let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:1 in
  let rng = Rfid_prob.Rng.create ~seed in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh) ~path ~config rng
  in
  (wh, trace)

(* The engine's sensor model: supervised fit of the simulator cone —
   cached because the fit is not free. *)
let fitted_params =
  lazy
    (let cone = Rfid_sim.Truth_sensor.cone () in
     let sensor =
       Rfid_learn.Supervised.fit_sensor ~samples:8000
         ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:2 ()
     in
     Params.create ~sensor ())

let engine_config ?(variant = Config.Factorized) () =
  Config.create ~variant ~num_reader_particles:60 ~num_object_particles:120 ()

let run_variant variant (trace : Trace.t) =
  let config = engine_config ~variant () in
  Rfid_eval.Runner.run_engine ~params:(Lazy.force fitted_params) ~config ~seed:5 trace

let test_factored_accuracy () =
  let _, trace = scenario () in
  let r = run_variant Config.Factorized trace in
  Alcotest.(check int) "event per object" 6 (List.length r.Rfid_eval.Runner.events);
  Alcotest.(check bool)
    (Printf.sprintf "XY error %.3f under 0.8 ft" r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy)
    true
    (r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy < 0.8)

let test_variants_agree () =
  let _, trace = scenario () in
  let indexed = run_variant Config.Factorized_indexed trace in
  let compressed = run_variant Config.Factorized_compressed trace in
  List.iter
    (fun (r : Rfid_eval.Runner.result) ->
      Alcotest.(check bool) "accuracy preserved" true
        (r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy < 0.9))
    [ indexed; compressed ]

let test_index_reduces_scope () =
  (* The sensing box spans ~±10 ft, so the warehouse run must be much
     longer than that for the index to have anything to exclude. *)
  let _, trace = scenario ~num_objects:100 () in
  let plain = run_variant Config.Factorized trace in
  let indexed = run_variant Config.Factorized_indexed trace in
  Alcotest.(check int) "plain touches everything" 100
    plain.Rfid_eval.Runner.max_objects_processed;
  Alcotest.(check bool)
    (Printf.sprintf "indexed scope %d < 75"
       indexed.Rfid_eval.Runner.max_objects_processed)
    true
    (indexed.Rfid_eval.Runner.max_objects_processed < 75)

let test_unfactorized_runs () =
  let _, trace = scenario ~num_objects:3 () in
  let config =
    Config.create ~variant:Config.Unfactorized ~num_reader_particles:400 ()
  in
  let r =
    Rfid_eval.Runner.run_engine ~params:(Lazy.force fitted_params) ~config ~seed:5 trace
  in
  Alcotest.(check int) "events" 3 (List.length r.Rfid_eval.Runner.events);
  Alcotest.(check bool)
    (Printf.sprintf "XY error %.3f sane" r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy)
    true
    (r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy < 1.5)

let test_unfactorized_needs_num_objects () =
  let wh, _ = scenario () in
  Util.check_raises_invalid "missing num_objects" (fun () ->
      Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
        ~config:(Config.create ~variant:Config.Unfactorized ())
        ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ())

let test_epoch_order_enforced () =
  let wh, trace = scenario () in
  let engine =
    Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:(engine_config ())
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ()
  in
  let obs = List.hd (Trace.observations trace) in
  ignore (Engine.step engine obs);
  (* An equal-epoch duplicate is middleware noise: skipped and counted,
     not fatal. *)
  Alcotest.(check int) "duplicate produces nothing" 0
    (List.length (Engine.step engine obs));
  Alcotest.(check int) "duplicate counted" 1
    (Engine.stats engine).Engine.duplicate_epochs_skipped;
  (* A strictly earlier epoch still violates the contract by default. *)
  Util.check_raises_invalid "earlier epoch" (fun () ->
      Engine.step engine { obs with Types.o_epoch = obs.Types.o_epoch - 1 })

let test_missed_readings_still_reported () =
  (* At 60% read rate objects are missed often; smoothing must still
     produce an event for every object. *)
  let _, trace = scenario ~rr:0.6 () in
  let r = run_variant Config.Factorized trace in
  Util.check_close ~eps:0.01 "full coverage" 1.
    (Rfid_eval.Metrics.coverage r.Rfid_eval.Runner.events trace);
  Alcotest.(check bool) "error still bounded" true
    (r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy < 1.0)

let test_empty_stream () =
  let wh, _ = scenario () in
  let engine =
    Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:(engine_config ())
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ()
  in
  Alcotest.(check (list pass)) "no events" [] (Engine.run engine []);
  Alcotest.(check (list pass)) "no objects" [] (Engine.known_objects engine);
  Alcotest.(check bool) "no estimate" true (Engine.estimate engine 0 = None)

let test_compression_lifecycle () =
  let wh, trace = scenario ~num_objects:10 () in
  let config =
    Config.create ~variant:Config.Factorized_compressed ~num_reader_particles:60
      ~num_object_particles:120 ~compress_after:10 ()
  in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  List.iter (fun obs -> Factored_filter.step filter obs) (Trace.observations trace);
  (* By the end of the pass, the early objects must be compressed. *)
  Alcotest.(check bool) "object 0 compressed" true (Factored_filter.is_compressed filter 0);
  (* Compressed objects still have estimates. *)
  (match Factored_filter.estimate filter 0 with
  | Some (loc, _) ->
      let truth = Trace.final_object_locs trace in
      Alcotest.(check bool) "compressed estimate near truth" true
        (Vec3.dist_xy loc truth.(0) < 1.0)
  | None -> Alcotest.fail "estimate missing");
  (* iter_object_particles is a no-op on compressed objects. *)
  let visited = ref 0 in
  Factored_filter.iter_object_particles filter 0 (fun _ _ _ -> incr visited);
  Alcotest.(check int) "no particles while compressed" 0 !visited

let test_decompression_on_rescan () =
  (* Two scan rounds: objects compressed after round 1 must be
     decompressed and re-estimated in round 2, ending accurate. *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:8 () in
  let config_gen = Rfid_sim.Trace_gen.default_config () in
  let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:2 in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh) ~path ~config:config_gen
      (Rfid_prob.Rng.create ~seed:31)
  in
  let r = run_variant Config.Factorized_compressed trace in
  Alcotest.(check bool)
    (Printf.sprintf "XY error %.3f with compression across rounds"
       r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy)
    true
    (r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy < 0.9)

let test_reader_estimate_tracks_truth () =
  let wh, trace = scenario () in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config:(engine_config ())
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  let errors = ref [] in
  Array.iter
    (fun step ->
      Factored_filter.step filter step.Trace.observation;
      let est = Factored_filter.reader_estimate filter in
      errors := Vec3.dist_xy est step.Trace.true_reader.Reader_state.loc :: !errors)
    trace.Trace.steps;
  let mean_err = Rfid_prob.Stats.mean (Array.of_list !errors) in
  Alcotest.(check bool)
    (Printf.sprintf "reader tracking error %.3f < 0.2" mean_err)
    true (mean_err < 0.2)

let test_newly_seen_semantics () =
  let wh, trace = scenario ~num_objects:4 () in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config:(engine_config ())
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  let all_newly = ref [] in
  List.iter
    (fun obs ->
      Factored_filter.step filter obs;
      all_newly := Factored_filter.newly_seen filter @ !all_newly)
    (Trace.observations trace);
  (* A single pass: each object becomes newly seen exactly once. *)
  let sorted = List.sort Int.compare !all_newly in
  Alcotest.(check (list int)) "each object once" [ 0; 1; 2; 3 ] sorted

(* Edge cases of the lazy out-of-scope sweep (the eviction queue that
   replaced the every-epoch staleness scan): a re-read exactly at the
   staleness horizon resurrects the object before its queue entry
   fires, a re-read one epoch later finds it evicted and reports it
   newly seen again, and the eviction counter moves only for the
   genuine eviction. *)
let test_eviction_queue_edges () =
  let world = Util.two_shelf_world () in
  let horizon = 5 in
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:8
      ~num_object_particles:16 ~out_of_scope_after:horizon ()
  in
  let loc = Util.vec3 0. 5. 0. in
  let filter =
    Factored_filter.create ~world ~params:Params.default ~config
      ~init_reader:(Reader_state.make ~loc ~heading:0.)
      ~rng:(Rfid_prob.Rng.create ~seed:3)
  in
  let evictions = Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "health.evicted_objects" in
  let base = Rfid_obs.Metrics.counter_value evictions in
  let step e tags =
    Factored_filter.step filter
      { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags };
    Factored_filter.newly_seen filter
  in
  Alcotest.(check (list int)) "first read is newly seen" [ 7 ]
    (step 0 [ Types.Object_tag 7 ]);
  for e = 1 to horizon - 1 do
    Alcotest.(check (list int)) "silence" [] (step e [])
  done;
  (* Gap = horizon: not beyond it, so the object never left scope. *)
  Alcotest.(check (list int)) "re-read at horizon not newly seen" []
    (step horizon [ Types.Object_tag 7 ]);
  Alcotest.(check int) "no eviction yet" base (Rfid_obs.Metrics.counter_value evictions);
  for e = horizon + 1 to (2 * horizon) + 1 - 1 do
    Alcotest.(check (list int)) "silence" [] (step e [])
  done;
  (* Gap = horizon + 1: the entry from the horizon-epoch read has fired
     by now, so this read is a re-discovery. *)
  Alcotest.(check (list int)) "re-read past horizon newly seen" [ 7 ]
    (step ((2 * horizon) + 1) [ Types.Object_tag 7 ]);
  Alcotest.(check int) "exactly one eviction" (base + 1)
    (Rfid_obs.Metrics.counter_value evictions)

let test_events_report_delay () =
  let wh, trace = scenario ~num_objects:4 () in
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:60
      ~num_object_particles:120 ~report_delay:20 ()
  in
  let engine =
    Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~seed:5 ()
  in
  let first_read = Hashtbl.create 8 in
  let events = ref [] in
  List.iter
    (fun (obs : Types.observation) ->
      List.iter
        (fun tag ->
          match tag with
          | Types.Object_tag i ->
              if not (Hashtbl.mem first_read i) then
                Hashtbl.replace first_read i obs.Types.o_epoch
          | Types.Shelf_tag _ -> ())
        obs.Types.o_read_tags;
      events := Engine.step engine obs @ !events)
    (Trace.observations trace);
  List.iter
    (fun (ev : Event.t) ->
      let fr = Hashtbl.find first_read ev.Event.ev_obj in
      Alcotest.(check bool) "event after delay" true (ev.Event.ev_epoch >= fr + 20))
    !events

let test_flush_emits_pending () =
  let wh, trace = scenario ~num_objects:4 () in
  (* Enormous report delay: nothing fires during the stream; flush must
     emit everything. *)
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:60
      ~num_object_particles:120 ~report_delay:100000 ()
  in
  let engine =
    Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~seed:5 ()
  in
  let during =
    List.concat_map (fun obs -> Engine.step engine obs) (Trace.observations trace)
  in
  Alcotest.(check int) "nothing during stream" 0 (List.length during);
  let flushed = Engine.flush engine in
  Alcotest.(check int) "all at flush" 4 (List.length flushed);
  Alcotest.(check int) "flush idempotent" 0 (List.length (Engine.flush engine))

let test_determinism () =
  let _, trace = scenario () in
  let r1 = run_variant Config.Factorized_indexed trace in
  let r2 = run_variant Config.Factorized_indexed trace in
  Alcotest.(check bool) "same seed, same events" true
    (r1.Rfid_eval.Runner.events = r2.Rfid_eval.Runner.events)

let test_index_boxes_bounded () =
  let wh, trace = scenario ~num_objects:30 () in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params)
      ~config:(engine_config ~variant:Config.Factorized_indexed ())
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  List.iter (fun obs -> Factored_filter.step filter obs) (Trace.observations trace);
  let boxes = Factored_filter.num_index_boxes filter in
  Alcotest.(check bool) "boxes exist" true (boxes > 0);
  (* Consolidation keeps the box count far below the epoch count. *)
  Alcotest.(check bool)
    (Printf.sprintf "boxes %d << epochs %d" boxes (Trace.epochs trace))
    true
    (boxes < Trace.epochs trace / 2)

let suite =
  ( "core_filters",
    [
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "event accessors" `Quick test_event;
      Alcotest.test_case "factored accuracy" `Quick test_factored_accuracy;
      Alcotest.test_case "variants agree" `Quick test_variants_agree;
      Alcotest.test_case "index reduces scope" `Quick test_index_reduces_scope;
      Alcotest.test_case "unfactorized runs" `Slow test_unfactorized_runs;
      Alcotest.test_case "unfactorized needs num_objects" `Quick
        test_unfactorized_needs_num_objects;
      Alcotest.test_case "epoch order enforced" `Quick test_epoch_order_enforced;
      Alcotest.test_case "missed readings still reported" `Quick
        test_missed_readings_still_reported;
      Alcotest.test_case "empty stream" `Quick test_empty_stream;
      Alcotest.test_case "compression lifecycle" `Quick test_compression_lifecycle;
      Alcotest.test_case "decompression on rescan" `Quick test_decompression_on_rescan;
      Alcotest.test_case "reader estimate tracks truth" `Quick
        test_reader_estimate_tracks_truth;
      Alcotest.test_case "newly_seen semantics" `Quick test_newly_seen_semantics;
      Alcotest.test_case "eviction queue edges" `Quick test_eviction_queue_edges;
      Alcotest.test_case "event report delay" `Quick test_events_report_delay;
      Alcotest.test_case "flush emits pending" `Quick test_flush_emits_pending;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "index boxes bounded" `Quick test_index_boxes_bounded;
    ] )
