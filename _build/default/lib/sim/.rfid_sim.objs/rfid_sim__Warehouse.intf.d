lib/sim/warehouse.mli: Rfid_geom Rfid_model
