open Rfid_model
open Rfid_core

(* A hand-built trace with known truth for metric checks. *)
let tiny_trace () =
  let world = Util.two_shelf_world () in
  let steps =
    Array.init 5 (fun e ->
        {
          Trace.epoch = e;
          true_reader =
            Reader_state.make ~loc:(Util.vec3 0. (float_of_int e) 0.) ~heading:0.;
          true_object_locs = [| Util.vec3 3. 1. 0.; Util.vec3 3. 2. 0. |];
          observation =
            {
              Types.o_epoch = e;
              o_reported_loc = Util.vec3 0. (float_of_int e) 0.;
              o_read_tags = [];
            };
        })
  in
  { Trace.world; num_objects = 2; steps }

let test_inference_error () =
  let trace = tiny_trace () in
  let events =
    [
      Event.make ~epoch:0 ~obj:0 ~loc:(Util.vec3 3. 1. 0.) ();
      (* exact *)
      Event.make ~epoch:1 ~obj:1 ~loc:(Util.vec3 4. 2. 0.) ();
      (* off by 1 in x *)
    ]
  in
  let err = Rfid_eval.Metrics.inference_error events trace in
  Alcotest.(check int) "count" 2 err.Rfid_eval.Metrics.count;
  Util.check_close "mean x" 0.5 err.Rfid_eval.Metrics.mean_x;
  Util.check_close "mean y" 0. err.Rfid_eval.Metrics.mean_y;
  Util.check_close "mean xy" 0.5 err.Rfid_eval.Metrics.mean_xy

let test_error_epoch_clamping_and_unknowns () =
  let trace = tiny_trace () in
  let events =
    [
      (* Flush event after the trace end: clamps to last epoch. *)
      Event.make ~epoch:99 ~obj:0 ~loc:(Util.vec3 3. 1. 0.) ();
      (* Unknown object id: ignored. *)
      Event.make ~epoch:0 ~obj:42 ~loc:(Util.vec3 0. 0. 0.) ();
    ]
  in
  let err = Rfid_eval.Metrics.inference_error events trace in
  Alcotest.(check int) "only known object scored" 1 err.Rfid_eval.Metrics.count;
  Util.check_close "clamped epoch exact" 0. err.Rfid_eval.Metrics.mean_xy

let test_per_object_takes_last () =
  let trace = tiny_trace () in
  let events =
    [
      Event.make ~epoch:0 ~obj:0 ~loc:(Util.vec3 9. 9. 0.) ();
      Event.make ~epoch:1 ~obj:0 ~loc:(Util.vec3 3. 1. 0.) ();
    ]
  in
  match Rfid_eval.Metrics.per_object_error events trace with
  | [ (0, e) ] -> Util.check_close "last event wins" 0. e
  | l -> Alcotest.failf "unexpected per-object list of %d" (List.length l)

let test_coverage () =
  let trace = tiny_trace () in
  Util.check_close "empty coverage" 0. (Rfid_eval.Metrics.coverage [] trace);
  let one = [ Event.make ~epoch:0 ~obj:1 ~loc:Rfid_geom.Vec3.zero () ] in
  Util.check_close "half" 0.5 (Rfid_eval.Metrics.coverage one trace)

let test_runner_counts_readings () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:5 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:8)
  in
  let expected_readings =
    List.fold_left
      (fun acc (o : Types.observation) -> acc + List.length o.Types.o_read_tags)
      0 (Trace.observations trace)
  in
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:40
      ~num_object_particles:60 ()
  in
  let r = Rfid_eval.Runner.run_engine ~config ~seed:1 trace in
  Alcotest.(check int) "reading count" expected_readings
    r.Rfid_eval.Runner.total_readings;
  Alcotest.(check bool) "timing positive" true (r.Rfid_eval.Runner.elapsed_s >= 0.)

let suite =
  ( "eval",
    [
      Alcotest.test_case "inference error" `Quick test_inference_error;
      Alcotest.test_case "epoch clamping and unknown ids" `Quick
        test_error_epoch_clamping_and_unknowns;
      Alcotest.test_case "per-object last event" `Quick test_per_object_takes_last;
      Alcotest.test_case "coverage" `Quick test_coverage;
      Alcotest.test_case "runner counts readings" `Quick test_runner_counts_readings;
    ] )
