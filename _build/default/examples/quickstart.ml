(* Quickstart: simulate a small warehouse scan, clean the raw streams
   with the factorized+indexed engine, and print the location events.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A warehouse with 12 tagged objects on shelves along an aisle. *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:12 () in

  (* 2. A robot-mounted reader scans it once: 0.1 ft per one-second
     epoch, cone-shaped sensing, noisy location reports. The trace
     carries ground truth for scoring; the engine sees only the
     synchronized observations. *)
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:1)
  in
  Printf.printf "simulated %d epochs over %d objects\n\n"
    (Rfid_model.Trace.epochs trace) trace.Rfid_model.Trace.num_objects;

  (* 3. An engine. The sensor model here is fitted to the simulator's
     cone (in a real deployment you would EM-calibrate instead — see
     examples/calibration.ml). *)
  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:2 ()
  in
  let params = Rfid_model.Params.create ~sensor () in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params ~config
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~seed:3 ()
  in

  (* 4. Stream the observations through; collect the clean events. *)
  let events = Rfid_core.Engine.run engine (Rfid_model.Trace.observations trace) in
  List.iter (fun ev -> Format.printf "  %a@." Rfid_core.Event.pp ev) events;

  (* 5. Score against the simulator's ground truth. *)
  let err = Rfid_eval.Metrics.inference_error events trace in
  Format.printf "@.inference error: %a@." Rfid_eval.Metrics.pp_error err
