lib/model/world.mli: Rfid_geom Rfid_prob Types
