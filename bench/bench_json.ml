(* Machine-readable filter benchmark: one JSON file per run, so the
   perf trajectory is comparable across PRs without scraping tables.

   Emits one point per (variant, object count) on the standard
   warehouse workload, plus domain-scaling points for the
   Factorized_indexed variant at the largest object count. Every run is
   seeded; accuracy is recorded next to throughput so a speedup that
   trades away error is visible in the same file. *)

type point = {
  pt_variant : string;
  pt_objects : int;
  pt_domains : int;
  pt_epochs : int;
  pt_readings : int;
  pt_elapsed_s : float;
  pt_err_xy : float;
  pt_minor_words : float;  (* per epoch *)
  pt_major_words : float;  (* per epoch, promotions excluded *)
  pt_lat_p50_us : float;
  pt_lat_p95_us : float;
  pt_lat_p99_us : float;
  pt_chunk : int;  (* pool's autotuned default-chunk floor *)
  pt_sat_hits : int;  (* kernel evaluations skipped by saturation cull *)
  pt_sat_rate : float;  (* hits / (hits + evaluations run) *)
  pt_mean_budget : float;  (* mean per-object particle budget (0 = not tracked) *)
  pt_skip_rate : float;  (* ESS-cap vetoes / resample decisions *)
}

let ns_per_epoch p =
  if p.pt_epochs = 0 then 0. else 1e9 *. p.pt_elapsed_s /. float_of_int p.pt_epochs

let epochs_per_sec p =
  if p.pt_elapsed_s <= 0. then 0. else float_of_int p.pt_epochs /. p.pt_elapsed_s

(* Saturation-cull accounting: the filters record both the kernel
   evaluations skipped by the exact saturation cull and the ones
   actually run, so each point can carry its cull hit rate. Deltas
   around the run keep points independent of whatever ran earlier in
   the process. *)
let c_sat = Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "health.saturated_particles"
let c_evals = Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "health.sensor_evals"

(* Adaptive-effort accounting: the filters observe every active
   object's current particle budget into health.object_budget each
   epoch, and count ESS-cap vetoes next to the resamples that did run,
   so each point carries its mean budget and skip rate. *)
let c_skipped =
  Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "filter.resamples_skipped"
let c_obj_rs = Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "filter.object_resamples"
let c_reader_rs =
  Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "filter.reader_resamples"
let c_joint_rs = Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "filter.joint_resamples"
let h_budget = Rfid_obs.Metrics.histogram Rfid_obs.Metrics.global "health.object_budget"

let run_point ?min_object_particles ?resample_ess_ratio ~variant ~label ~objects
    ~num_domains ~params ~trace () =
  Printf.printf "  ... %-16s n=%-5d domains=%d%!" label objects num_domains;
  let config =
    Scenarios.engine_config ~variant ?min_object_particles ?resample_ess_ratio
      ~num_domains ()
  in
  let sat0 = Rfid_obs.Metrics.counter_value c_sat in
  let ev0 = Rfid_obs.Metrics.counter_value c_evals in
  let sk0 = Rfid_obs.Metrics.counter_value c_skipped in
  let rs0 =
    Rfid_obs.Metrics.counter_value c_obj_rs
    + Rfid_obs.Metrics.counter_value c_reader_rs
    + Rfid_obs.Metrics.counter_value c_joint_rs
  in
  let bsum0 = Rfid_obs.Metrics.histogram_sum h_budget in
  let bcount0 = Rfid_obs.Metrics.histogram_count h_budget in
  let r = Rfid_eval.Runner.run_engine ~params ~config ~seed:7 trace in
  let sat = Rfid_obs.Metrics.counter_value c_sat - sat0 in
  let ev = Rfid_obs.Metrics.counter_value c_evals - ev0 in
  let skipped = Rfid_obs.Metrics.counter_value c_skipped - sk0 in
  let resampled =
    Rfid_obs.Metrics.counter_value c_obj_rs
    + Rfid_obs.Metrics.counter_value c_reader_rs
    + Rfid_obs.Metrics.counter_value c_joint_rs
    - rs0
  in
  let bsum = Rfid_obs.Metrics.histogram_sum h_budget -. bsum0 in
  let bcount = Rfid_obs.Metrics.histogram_count h_budget - bcount0 in
  let epochs = Rfid_model.Trace.epochs trace in
  Printf.printf "  %7.1f epochs/s\n%!"
    (if r.Rfid_eval.Runner.elapsed_s > 0. then
       float_of_int epochs /. r.Rfid_eval.Runner.elapsed_s
     else 0.);
  {
    pt_variant = label;
    pt_objects = objects;
    pt_domains = num_domains;
    pt_epochs = epochs;
    pt_readings = r.Rfid_eval.Runner.total_readings;
    pt_elapsed_s = r.Rfid_eval.Runner.elapsed_s;
    pt_err_xy = r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
    pt_minor_words = r.Rfid_eval.Runner.minor_words_per_epoch;
    pt_major_words = r.Rfid_eval.Runner.major_words_per_epoch;
    pt_lat_p50_us = r.Rfid_eval.Runner.lat_p50_us;
    pt_lat_p95_us = r.Rfid_eval.Runner.lat_p95_us;
    pt_lat_p99_us = r.Rfid_eval.Runner.lat_p99_us;
    pt_chunk = Rfid_par.Pool.min_chunk (Rfid_par.Pool.get ~num_domains);
    pt_sat_hits = sat;
    pt_sat_rate = (if sat + ev > 0 then float_of_int sat /. float_of_int (sat + ev) else 0.);
    pt_mean_budget = (if bcount > 0 then bsum /. float_of_int bcount else 0.);
    pt_skip_rate =
      (if skipped + resampled > 0 then
         float_of_int skipped /. float_of_int (skipped + resampled)
       else 0.);
  }

(* One fault-injected run through the ingest guard, so the bench file
   also tracks robustness-path throughput and the guard's intervention
   counters (schema-additive: the "robustness" key rides along with the
   existing points). *)
type robust_point = {
  rp_objects : int;
  rp_epochs : int;
  rp_elapsed_s : float;
  rp_events : int;
  rp_degraded_events : int;
  rp_ingest : (string * int) list;
  rp_engine : Rfid_core.Engine.stats;
}

let run_robust_point ~objects ~params ~(trace : Rfid_model.Trace.t) =
  Printf.printf "  ... %-16s n=%-5d faulted%!" "robust+ingest" objects;
  let faults =
    Rfid_sim.Faults.make ~drop_prob:0.1 ~nan_fix_prob:0.05 ~outage:(100, 50) ()
  in
  let observations =
    Rfid_sim.Faults.apply faults ~seed:7 (Rfid_model.Trace.observations trace)
  in
  let config =
    Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed
      ~num_domains:1 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:trace.Rfid_model.Trace.world ~params ~config
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~num_objects:trace.Rfid_model.Trace.num_objects ~seed:7 ()
  in
  let guard =
    Rfid_robust.Ingest.create
      ~bounds:(Rfid_model.World.bounding_box trace.Rfid_model.Trace.world)
      ~max_object_id:trace.Rfid_model.Trace.num_objects ()
  in
  let t0 = Unix.gettimeofday () in
  let events =
    match Rfid_robust.Ingest.run_engine guard engine observations with
    | Ok events -> events
    | Error (_, msg) -> failwith msg
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let stats = Rfid_core.Engine.stats engine in
  Printf.printf "  %7.1f epochs/s\n%!"
    (if elapsed_s > 0. then float_of_int (List.length observations) /. elapsed_s else 0.);
  {
    rp_objects = objects;
    rp_epochs = List.length observations;
    rp_elapsed_s = elapsed_s;
    rp_events = List.length events;
    rp_degraded_events =
      List.length (List.filter (fun e -> e.Rfid_core.Event.ev_degraded) events);
    rp_ingest =
      List.map
        (fun (f, n) -> (Rfid_robust.Ingest.fault_name f, n))
        (Rfid_robust.Ingest.counters guard);
    rp_engine = stats;
  }

(* Durability-path costs: snapshot codec latency and size plus WAL
   append cost, so a codec or framing change shows up in the same
   diffable file as the filter throughput it protects. Timing the
   save/load pair through [Checkpoint] (not just the pure codec) also
   populates the stage.checkpoint_* and stage.wal_append histograms in
   the "stages" block below. *)
type durability_point = {
  dp_objects : int;
  dp_snapshot_bytes : int;
  dp_encode_us : float;  (* pure codec, snapshot -> bytes *)
  dp_decode_us : float;  (* pure codec, bytes -> snapshot *)
  dp_save_us : float;  (* full checkpoint save: encode + fsync + rename *)
  dp_load_us : float;  (* full checkpoint load: read + verify + decode *)
  dp_wal_append_us : float;  (* per record, fsync every 8 *)
  dp_wal_bytes_per_record : float;
}

let run_durability_point ~objects ~params ~(trace : Rfid_model.Trace.t) =
  Printf.printf "  ... %-16s n=%-5d codec+wal%!" "durability" objects;
  let config =
    Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed
      ~num_domains:1 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:trace.Rfid_model.Trace.world ~params ~config
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~num_objects:trace.Rfid_model.Trace.num_objects ~seed:7 ()
  in
  let prefix =
    List.filteri (fun i _ -> i < 150) (Rfid_model.Trace.observations trace)
  in
  List.iter (fun o -> ignore (Rfid_core.Engine.step engine o)) prefix;
  let snap = Rfid_core.Engine.snapshot engine in
  let time_us reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let data = Rfid_robust.Codec.encode snap in
  let encode_us = time_us 10 (fun () -> ignore (Rfid_robust.Codec.encode snap)) in
  let decode_us =
    time_us 10 (fun () ->
        match Rfid_robust.Codec.decode data with
        | Ok _ -> ()
        | Error msg -> failwith ("bench durability: " ^ msg))
  in
  let ckpt = Filename.temp_file "bench_ckpt" ".bin" in
  let save_us = time_us 5 (fun () -> Rfid_robust.Checkpoint.save ~path:ckpt snap) in
  let load_us =
    time_us 5 (fun () -> ignore (Rfid_robust.Checkpoint.load_exn ~path:ckpt))
  in
  Sys.remove ckpt;
  let wal_path = Filename.temp_file "bench_wal" ".log" in
  let w = Rfid_robust.Wal.create_writer ~fsync_every:8 ~path:wal_path () in
  let wal_append_us =
    time_us 1 (fun () ->
        List.iter (fun o -> Rfid_robust.Wal.append w (Rfid_robust.Wal.Step o)) prefix;
        Rfid_robust.Wal.close w)
    /. float_of_int (List.length prefix)
  in
  let wal_bytes = (Unix.stat wal_path).Unix.st_size in
  Sys.remove wal_path;
  Printf.printf "  %8d snapshot bytes\n%!" (String.length data);
  {
    dp_objects = trace.Rfid_model.Trace.num_objects;
    dp_snapshot_bytes = String.length data;
    dp_encode_us = encode_us;
    dp_decode_us = decode_us;
    dp_save_us = save_us;
    dp_load_us = load_us;
    dp_wal_append_us = wal_append_us;
    dp_wal_bytes_per_record =
      float_of_int wal_bytes /. float_of_int (List.length prefix);
  }

let durability_json dp =
  Printf.sprintf
    "  \"durability\": {\"workload\": \"factorized+index snapshot after 150 epochs, \
     wal fsync_every 8, seed 7\", \"objects\": %d, \"snapshot_bytes\": %d, \
     \"codec_encode_us\": %.1f, \"codec_decode_us\": %.1f, \"checkpoint_save_us\": \
     %.1f, \"checkpoint_load_us\": %.1f, \"wal_append_us\": %.2f, \
     \"wal_bytes_per_record\": %.1f}"
    dp.dp_objects dp.dp_snapshot_bytes dp.dp_encode_us dp.dp_decode_us dp.dp_save_us
    dp.dp_load_us dp.dp_wal_append_us dp.dp_wal_bytes_per_record

let robust_json rp =
  let counters =
    String.concat ", "
      (List.map (fun (name, n) -> Printf.sprintf "%S: %d" name n) rp.rp_ingest)
  in
  Printf.sprintf
    "  \"robustness\": {\"workload\": \"drop=10%% nan=5%% outage=[100,150), seed 7\", \
     \"objects\": %d, \"epochs\": %d, \"elapsed_s\": %.6f, \"events\": %d, \
     \"degraded_events\": %d, \"degraded_epochs\": %d, \"duplicates_skipped\": %d, \
     \"out_of_order_dropped\": %d, \"ingest_counters\": {%s}}"
    rp.rp_objects rp.rp_epochs rp.rp_elapsed_s rp.rp_events rp.rp_degraded_events
    rp.rp_engine.Rfid_core.Engine.degraded_epochs
    rp.rp_engine.Rfid_core.Engine.duplicate_epochs_skipped
    rp.rp_engine.Rfid_core.Engine.out_of_order_dropped counters

(* Per-stage timing block, from the observability registry: one entry
   per "stage.*" span recorded during this bench process, quantiles in
   microseconds. Bench runs reset the registry on entry, so the block
   covers exactly the points above it. *)
let stages_json () =
  let module Obs = Rfid_obs.Metrics in
  let stages =
    List.filter
      (fun (name, _) -> String.length name > 6 && String.sub name 0 6 = "stage.")
      (Obs.histograms_list Obs.global)
  in
  let entry (name, h) =
    let q p = 1e6 *. Obs.quantile h p in
    Printf.sprintf
      "    %S: {\"count\": %d, \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}"
      name (Obs.histogram_count h) (q 0.5) (q 0.95) (q 0.99)
  in
  String.concat ",\n" (List.map entry stages)

let emit ?(extra = []) oc points robust durability =
  let host_cores = Domain.recommended_domain_count () in
  let point_json p =
    (* Bench honesty: a domain-scaling point measured on a single-core
       host exercises only scheduling overhead, not parallel speedup —
       tag it so downstream comparisons can skip it. *)
    let scaling_valid = not (p.pt_domains > 1 && host_cores = 1) in
    Printf.sprintf
      "    {\"variant\": %S, \"objects\": %d, \"num_domains\": %d, \
       \"scaling_valid\": %b, \"epochs\": %d, \
       \"readings\": %d, \"elapsed_s\": %.6f, \"ns_per_epoch\": %.1f, \
       \"epochs_per_sec\": %.2f, \"err_xy_ft\": %.4f, \
       \"minor_words_per_epoch\": %.1f, \"major_words_per_epoch\": %.1f, \
       \"lat_p50_us\": %.1f, \"lat_p95_us\": %.1f, \"lat_p99_us\": %.1f, \
       \"chunk_size\": %d, \"sat_cull_hits\": %d, \"sat_cull_rate\": %.4f, \
       \"mean_budget\": %.1f, \"resample_skip_rate\": %.4f}"
      p.pt_variant p.pt_objects p.pt_domains scaling_valid p.pt_epochs p.pt_readings
      p.pt_elapsed_s (ns_per_epoch p) (epochs_per_sec p) p.pt_err_xy p.pt_minor_words
      p.pt_major_words p.pt_lat_p50_us p.pt_lat_p95_us p.pt_lat_p99_us p.pt_chunk
      p.pt_sat_hits p.pt_sat_rate p.pt_mean_budget p.pt_skip_rate
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench_filter/v8\",\n\
    \  \"workload\": \"warehouse straight pass, J=100, K=200, resample_ess=1.0, \
     min_particles=200, seed 7; f+index+adaptive points: resample_ess=0.25, \
     min_particles=32\",\n\
    \  \"host_cores\": %d,\n\
    \  \"points\": [\n%s\n\
    \  ],\n\
    \  \"stages\": {\n%s\n\
    \  },\n\
     %s,\n\
     %s%s\n\
     }\n"
    host_cores
    (String.concat ",\n" (List.map point_json points))
    (stages_json ())
    (robust_json robust)
    (durability_json durability)
    (String.concat "" (List.map (fun block -> ",\n" ^ block) extra))

(* Canonical adaptive-effort knobs: the bench's speed/accuracy
   trade-off points all use this one setting so the trajectory stays
   comparable across PRs. *)
let adaptive_min_particles = 32

(* Below the classic 0.5 trigger on purpose: a cap at or above the
   trigger never vetoes anything (the conjunction is empty). 0.25
   skips the mildly-degenerate resamples — which also preserves
   particle diversity; on the 5000-object workload it measured both
   faster AND closer to the fixed-budget error than a vacuous cap. *)
let adaptive_resample_ess = 0.25
let adaptive_label = "f+index+adaptive"

let adaptive_point ~objects ~num_domains ~params ~trace =
  run_point ~variant:Rfid_core.Config.Factorized_indexed ~label:adaptive_label
    ~min_object_particles:adaptive_min_particles
    ~resample_ess_ratio:adaptive_resample_ess ~objects ~num_domains ~params ~trace ()

(* Schedule-independence of the adaptive machinery, checked end to end:
   the full event stream of an adaptive run must be identical for every
   domain count (budgets and skips are driven by per-(object, epoch)
   keyed randomness, never by chunking). *)
let adaptive_bit_identity ~params ~(trace : Rfid_model.Trace.t) =
  let events num_domains =
    let config =
      Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed
        ~min_object_particles:adaptive_min_particles
        ~resample_ess_ratio:adaptive_resample_ess ~num_domains ()
    in
    let engine =
      Rfid_core.Engine.create ~world:trace.Rfid_model.Trace.world ~params ~config
        ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
        ~num_objects:trace.Rfid_model.Trace.num_objects ~seed:7 ()
    in
    Rfid_core.Engine.run engine (Rfid_model.Trace.observations trace)
    @ Rfid_core.Engine.flush engine
  in
  let reference = events 1 in
  List.for_all (fun d -> events d = reference) [ 2; 4 ]

let adaptive_check_json ~scaling_n ~points ~params ~bit_identity_trace =
  let find label =
    List.find_opt
      (fun p -> p.pt_variant = label && p.pt_objects = scaling_n && p.pt_domains = 1)
      points
  in
  match (find "factorized+index", find adaptive_label) with
  | Some fixed, Some adaptive ->
      Printf.printf "  ... %-16s n=%-5d domains 1/2/4%!" "adaptive ident."
        bit_identity_trace.Rfid_model.Trace.num_objects;
      let identical = adaptive_bit_identity ~params ~trace:bit_identity_trace in
      Printf.printf "  %s\n%!" (if identical then "bit-identical" else "DIVERGED");
      let nf = ns_per_epoch fixed and na = ns_per_epoch adaptive in
      [
        Printf.sprintf
          "  \"adaptive_check\": {\"knobs\": \"resample_ess=%.2f, min_particles=%d\", \
           \"speedup_workload\": \"factorized+index fixed vs adaptive, %d objects, \
           domains=1\", \"ns_per_epoch_fixed\": %.1f, \"ns_per_epoch_adaptive\": \
           %.1f, \"speedup\": %.3f, \"err_xy_ft_fixed\": %.4f, \
           \"err_xy_ft_adaptive\": %.4f, \"err_ratio\": %.4f, \"mean_budget\": %.1f, \
           \"resample_skip_rate\": %.4f, \"bit_identity_workload\": \"%d objects, \
           domains 1 vs 2 vs 4, full event stream\", \"domain_bit_identical\": %b}"
          adaptive_resample_ess adaptive_min_particles scaling_n nf na
          (if na > 0. then nf /. na else 0.)
          fixed.pt_err_xy adaptive.pt_err_xy
          (if fixed.pt_err_xy > 0. then adaptive.pt_err_xy /. fixed.pt_err_xy else 0.)
          adaptive.pt_mean_budget adaptive.pt_skip_rate
          bit_identity_trace.Rfid_model.Trace.num_objects identical;
      ]
  | _ -> []

(* Server-mode point: the RFID-SERVE/1 state machine measured
   in-process ([Rfid_serve.Core.handle_line] + [tick]), socket I/O
   excluded on purpose — the wire adds client-dependent latency, while
   this pins what the server itself costs per epoch and per query. Each
   ingested epoch is chased by one sliding-window RANGE and one AT, as
   a monitoring client polling the live posteriors would; ingest time
   and query latency are accumulated separately. The recipe is written
   up in EXPERIMENTS.md ("Server-mode throughput"). *)

type serving_point = {
  sp_objects : int;
  sp_epochs : int;
  sp_ingest_s : float;
  sp_range_lat : float array;  (** sorted, seconds *)
  sp_at_lat : float array;  (** sorted, seconds *)
  sp_fit_hits : int;  (** AT answers served from the fit cache *)
  sp_index_updates : int;  (** per-object refits during the run *)
  sp_full_rebuilds : int;  (** wholesale cache rebuilds (expect 1) *)
}

(* Query-maintenance accounting: the serve layer counts per-object
   refits, AT cache hits and wholesale rebuilds; deltas around the run
   keep points independent. *)
let c_fit_hits =
  Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "query.fit_cache_hits"
let c_idx_updates =
  Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "query.index_updates"
let c_rebuilds =
  Rfid_obs.Metrics.counter Rfid_obs.Metrics.global "query.full_rebuilds"

let lat_quantile_us sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    1e6 *. sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

(* Reference probe height shared by every serving point: 1/8 of the
   500-object warehouse's y extent (the warehouse is one aisle that
   grows along y, so y is the axis that scales with object count). *)
let serving_window_h =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects:500 () in
     let bb = Rfid_model.World.bounding_box wh.Rfid_sim.Warehouse.world in
     (bb.Rfid_geom.Box2.max_y -. bb.Rfid_geom.Box2.min_y) /. 8.)

let run_serving_point ~objects ~rounds () =
  Printf.printf "  ... %-16s n=%-5d%!" "serving" objects;
  let seed = 7 in
  let boot = Rfid_serve.Bootstrap.make ~objects ~seed ~particles:100 () in
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed)
  in
  let put_lines =
    Rfid_model.Trace.observations trace
    |> List.map (fun o -> "PUT " ^ Rfid_model.Trace_io.observation_to_line o)
  in
  let core =
    Rfid_serve.Core.create
      ~guard:(Rfid_serve.Bootstrap.fresh_guard boot)
      ~engine:(Rfid_serve.Bootstrap.fresh_engine boot)
      ~num_objects:objects ()
  in
  (* Fixed-size RANGE windows tiling the world's y extent (full aisle
     width in x), cycled per epoch, so probes hit dense and empty
     regions alike. The height is absolute — 1/8 of the reference
     500-object warehouse — so each probe's answer volume tracks local
     density, not universe size: the latency this measures is query
     maintenance plus a bounded hit set, which is exactly the cost the
     incremental query layer is supposed to pin. (The v7 workload
     sliced the 1 ft x extent into 8 strips spanning the whole aisle,
     so every probe returned O(objects) answers and p95 measured reply
     volume, not maintenance.) *)
  let world_box =
    Rfid_model.World.bounding_box boot.Rfid_serve.Bootstrap.world
  in
  let extent =
    world_box.Rfid_geom.Box2.max_y -. world_box.Rfid_geom.Box2.min_y
  in
  let span = Lazy.force serving_window_h in
  let windows = Int.max 1 (int_of_float (Float.round (extent /. span))) in
  let range_query i =
    let lo = world_box.Rfid_geom.Box2.min_y +. (span *. float_of_int (i mod windows)) in
    Printf.sprintf "RANGE %.3f %.3f %.3f %.3f 0.05"
      world_box.Rfid_geom.Box2.min_x lo world_box.Rfid_geom.Box2.max_x
      (lo +. span)
  in
  let range_lat = ref [] and at_lat = ref [] in
  let ingest_s = ref 0. in
  let epoch_i = ref 0 in
  let hits0 = Rfid_obs.Metrics.counter_value c_fit_hits in
  let upd0 = Rfid_obs.Metrics.counter_value c_idx_updates in
  let reb0 = Rfid_obs.Metrics.counter_value c_rebuilds in
  List.iter
    (fun line ->
      let t0 = Unix.gettimeofday () in
      ignore (Rfid_serve.Core.handle_line core line);
      ignore (Rfid_serve.Core.tick core ~max_steps:256);
      let t1 = Unix.gettimeofday () in
      ingest_s := !ingest_s +. (t1 -. t0);
      ignore (Rfid_serve.Core.handle_line core (range_query !epoch_i));
      let t2 = Unix.gettimeofday () in
      range_lat := (t2 -. t1) :: !range_lat;
      ignore
        (Rfid_serve.Core.handle_line core
           (Printf.sprintf "AT %d" (!epoch_i mod objects)));
      at_lat := (Unix.gettimeofday () -. t2) :: !at_lat;
      incr epoch_i)
    put_lines;
  ignore (Rfid_serve.Core.handle_line core "SYNC");
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let sp =
    {
      sp_objects = objects;
      sp_epochs = !epoch_i;
      sp_ingest_s = !ingest_s;
      sp_range_lat = sorted !range_lat;
      sp_at_lat = sorted !at_lat;
      sp_fit_hits = Rfid_obs.Metrics.counter_value c_fit_hits - hits0;
      sp_index_updates = Rfid_obs.Metrics.counter_value c_idx_updates - upd0;
      sp_full_rebuilds = Rfid_obs.Metrics.counter_value c_rebuilds - reb0;
    }
  in
  Printf.printf "  %7.0f epochs/s ingest, range p95 %.0f us\n%!"
    (float_of_int sp.sp_epochs /. Float.max 1e-9 sp.sp_ingest_s)
    (lat_quantile_us sp.sp_range_lat 0.95);
  sp

let serving_point_json sp =
  (* One AT per epoch, so the hit rate is hits per AT query. *)
  let at_queries = Float.max 1. (float_of_int sp.sp_epochs) in
  Printf.sprintf
    "    {\"objects\": %d, \"epochs\": %d, \
     \"ingest_elapsed_s\": %.6f, \"ingest_epochs_per_sec\": %.2f, \
     \"range_p50_us\": %.1f, \"range_p95_us\": %.1f, \"range_p99_us\": %.1f, \
     \"at_p50_us\": %.1f, \"at_p95_us\": %.1f, \
     \"fit_cache_hits\": %d, \"fit_cache_hit_rate\": %.4f, \
     \"index_updates\": %d, \"full_rebuilds\": %d}"
    sp.sp_objects sp.sp_epochs sp.sp_ingest_s
    (float_of_int sp.sp_epochs /. Float.max 1e-9 sp.sp_ingest_s)
    (lat_quantile_us sp.sp_range_lat 0.5)
    (lat_quantile_us sp.sp_range_lat 0.95)
    (lat_quantile_us sp.sp_range_lat 0.99)
    (lat_quantile_us sp.sp_at_lat 0.5)
    (lat_quantile_us sp.sp_at_lat 0.95)
    sp.sp_fit_hits
    (float_of_int sp.sp_fit_hits /. at_queries)
    sp.sp_index_updates sp.sp_full_rebuilds

let serving_json sps =
  (* p95 scaling ratio between the smallest and largest point: the
     incremental query path's headline claim is that RANGE cost follows
     dirty+hits, not universe size, so this should stay near 1. *)
  let ratio_field =
    match List.sort (fun a b -> Int.compare a.sp_objects b.sp_objects) sps with
    | small :: (_ :: _ as rest) ->
        let big = List.nth rest (List.length rest - 1) in
        let ps = lat_quantile_us small.sp_range_lat 0.95 in
        let pb = lat_quantile_us big.sp_range_lat 0.95 in
        Printf.sprintf ",\n    \"range_p95_scaling_ratio\": %.3f"
          (if ps > 0. then pb /. ps else 0.)
    | _ -> ""
  in
  Printf.sprintf
    "  \"serving\": {\"workload\": \"in-process RFID-SERVE/1 core: PUT+tick per \
     epoch chased by one sliding-window RANGE (fixed-size windows tiling y, \
     1/8 of the 500-object world's aisle, min-mass 0.05) and one AT, K=100, \
     seed 7; socket I/O excluded; incremental maintenance (dirty-set fit cache \
     + dynamic index)\",\n\
     \    \"points\": [\n%s\n    ]%s}"
    (String.concat ",\n" (List.map serving_point_json sps))
    ratio_field

let run ~path ~large =
  Printf.printf "bench --json: filter throughput -> %s\n%!" path;
  (* Scope the "stages" block to this run, not whatever ran earlier in
     the process (e.g. warm-up or other bench modes). *)
  Rfid_obs.Metrics.reset Rfid_obs.Metrics.global;
  let sizes = if large then [ 500; 2000; 5000; 10000 ] else [ 500; 2000; 5000 ] in
  let scaling_n = List.fold_left Int.max 0 sizes in
  let domain_counts = [ 1; 2; 4 ] in
  let params = Scenarios.cone_params () in
  let points = ref [] in
  let add p = points := p :: !points in
  List.iter
    (fun objects ->
      let built = Scenarios.warehouse_trace ~num_objects:objects ~seed:111 () in
      let trace = built.Scenarios.trace in
      if objects <= 500 then
        add
          (run_point ~variant:Rfid_core.Config.Factorized ~label:"factorized" ~objects
             ~num_domains:1 ~params ~trace ());
      add
        (run_point ~variant:Rfid_core.Config.Factorized_indexed ~label:"factorized+index"
           ~objects ~num_domains:1 ~params ~trace ());
      add
        (run_point ~variant:Rfid_core.Config.Factorized_compressed
           ~label:"f+index+compress" ~objects ~num_domains:1 ~params ~trace ());
      add (adaptive_point ~objects ~num_domains:1 ~params ~trace);
      (* Domain scaling at the largest size, where per-epoch scope is
         widest and the parallel section dominates. *)
      if objects = scaling_n then
        List.iter
          (fun num_domains ->
            if num_domains > 1 then
              add
                (run_point ~variant:Rfid_core.Config.Factorized_indexed
                   ~label:"factorized+index" ~objects ~num_domains ~params ~trace ()))
          domain_counts)
    sizes;
  let small_objects = List.fold_left Int.min max_int sizes in
  let small_built = Scenarios.warehouse_trace ~num_objects:small_objects ~seed:111 () in
  let robust, durability =
    ( run_robust_point ~objects:small_objects ~params ~trace:small_built.Scenarios.trace,
      run_durability_point ~objects:small_objects ~params
        ~trace:small_built.Scenarios.trace )
  in
  let points = List.rev !points in
  let extra =
    adaptive_check_json ~scaling_n ~points ~params
      ~bit_identity_trace:small_built.Scenarios.trace
    @ [
        serving_json
          [
            run_serving_point ~objects:500 ~rounds:1 ();
            run_serving_point ~objects:5000 ~rounds:1 ();
          ];
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> emit ~extra oc points robust durability);
  Printf.printf "wrote %d points to %s\n%!" (List.length points) path

(* Allocation regression gate. A small fixed workload is measured and
   its per-epoch allocated words compared against the committed
   baseline (BENCH_baseline.json); more than [tolerance] over fails.
   The workload is deliberately modest (~1 s) so the gate can ride
   along with `make test`. Update the baseline deliberately — after a
   change that legitimately shifts the allocation profile — with
   `make perf-baseline`, and commit the file with that change. *)

let gate_workload = "warehouse straight pass, 200 objects, J=100, K=200, seed 7"
let gate_tolerance = 0.10

(* Accuracy bound: mean XY error on the gate workload may exceed the
   committed baseline by at most this factor, and the check is fatal —
   the whole point of recording accuracy next to throughput is that a
   speedup which quietly trades away error must not pass the gate. The
   workload is seeded and single-domain, so the measured error is
   exactly reproducible; the 5% headroom only absorbs legitimate
   baseline refreshes on other machines' floating-point quirks. *)
let err_max_ratio = 1.05

(* The scaling guard pins the index's O(sensing scope) promise at the
   allocation level: per-epoch minor words for factorized+index at
   5000 objects may exceed the 500-object figure by at most the
   baseline's recorded factor. Anything that sneaks an O(total
   objects) term back into the per-epoch path (a full staleness sweep,
   a per-epoch set rebuild) blows well past it. *)
let scaling_workload =
  "factorized+index minor words/epoch, 5000 vs 500 objects, J=100, K=200, seed 7"

let scaling_max_ratio = 1.5

let gate_trace = lazy (Scenarios.warehouse_trace ~num_objects:200 ~seed:111 ())

let measure_gate ?min_object_particles ?resample_ess_ratio variant =
  let params = Scenarios.cone_params () in
  let built = Lazy.force gate_trace in
  let config =
    Scenarios.engine_config ~variant ?min_object_particles ?resample_ess_ratio
      ~num_domains:1 ()
  in
  Rfid_eval.Runner.run_engine ~params ~config ~seed:7 built.Scenarios.trace

let measure_gate_adaptive () =
  measure_gate ~min_object_particles:adaptive_min_particles
    ~resample_ess_ratio:adaptive_resample_ess Rfid_core.Config.Factorized_indexed

let measure_scaling () =
  let params = Scenarios.cone_params () in
  let config =
    Scenarios.engine_config ~variant:Rfid_core.Config.Factorized_indexed
      ~num_domains:1 ()
  in
  let words n =
    let built = Scenarios.warehouse_trace ~num_objects:n ~seed:111 () in
    let r = Rfid_eval.Runner.run_engine ~params ~config ~seed:7 built.Scenarios.trace in
    r.Rfid_eval.Runner.minor_words_per_epoch
  in
  let small = words 500 in
  let big = words 5000 in
  (small, big, if small > 0. then big /. small else infinity)

(* The time bound is generous — wall-clock on a shared machine is far
   noisier than allocation counts, which are exact — and the check it
   feeds is warn-only unless explicitly promoted (PERF_GATE_TIME_FATAL,
   `make perf-gate-strict`). *)
let time_max_ratio = 2.0

let run_ns_per_epoch (r : Rfid_eval.Runner.result) =
  if r.Rfid_eval.Runner.epochs = 0 then 0.
  else 1e9 *. r.Rfid_eval.Runner.elapsed_s /. float_of_int r.Rfid_eval.Runner.epochs

let adaptive_gate_workload =
  Printf.sprintf
    "warehouse straight pass, 200 objects, J=100, K=200, resample_ess=%.2f, \
     min_particles=%d, seed 7"
    adaptive_resample_ess adaptive_min_particles

let serving_gate_workload =
  "in-process serving RANGE p95: 500 objects, straight pass, 8 fixed-size \
   windows tiling y, min-mass 0.05, K=100, seed 7"

let write_baseline ~path =
  Printf.printf "bench --perf-baseline: measuring %s\n%!" gate_workload;
  let ri = measure_gate Rfid_core.Config.Factorized_indexed in
  let rc = measure_gate Rfid_core.Config.Factorized_compressed in
  Printf.printf "bench --perf-baseline: measuring %s\n%!" adaptive_gate_workload;
  let ra = measure_gate_adaptive () in
  Printf.printf "bench --perf-baseline: measuring %s\n%!" scaling_workload;
  let small, big, ratio = measure_scaling () in
  Printf.printf "bench --perf-baseline: measuring %s\n%!" serving_gate_workload;
  let sv = run_serving_point ~objects:500 ~rounds:1 () in
  let serving_p95 = lat_quantile_us sv.sp_range_lat 0.95 in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"bench_baseline/v7\",\n\
        \  \"workload\": %S,\n\
        \  \"epochs\": %d,\n\
        \  \"indexed_minor_words_per_epoch\": %.1f,\n\
        \  \"indexed_major_words_per_epoch\": %.1f,\n\
        \  \"indexed_allocated_words_per_epoch\": %.1f,\n\
        \  \"indexed_ns_per_epoch\": %.1f,\n\
        \  \"indexed_err_xy_ft\": %.4f,\n\
        \  \"compressed_minor_words_per_epoch\": %.1f,\n\
        \  \"compressed_major_words_per_epoch\": %.1f,\n\
        \  \"compressed_allocated_words_per_epoch\": %.1f,\n\
        \  \"compressed_ns_per_epoch\": %.1f,\n\
        \  \"compressed_err_xy_ft\": %.4f,\n\
        \  \"adaptive_workload\": %S,\n\
        \  \"adaptive_minor_words_per_epoch\": %.1f,\n\
        \  \"adaptive_major_words_per_epoch\": %.1f,\n\
        \  \"adaptive_allocated_words_per_epoch\": %.1f,\n\
        \  \"adaptive_ns_per_epoch\": %.1f,\n\
        \  \"adaptive_err_xy_ft\": %.4f,\n\
        \  \"err_max_ratio\": %.2f,\n\
        \  \"time_max_ratio\": %.2f,\n\
        \  \"scaling_workload\": %S,\n\
        \  \"scaling_small_minor_words\": %.1f,\n\
        \  \"scaling_big_minor_words\": %.1f,\n\
        \  \"scaling_ratio_measured\": %.3f,\n\
        \  \"scaling_max_ratio\": %.2f,\n\
        \  \"serving_workload\": %S,\n\
        \  \"serving_range_p95_us\": %.1f\n\
         }\n"
        gate_workload ri.Rfid_eval.Runner.epochs
        ri.Rfid_eval.Runner.minor_words_per_epoch
        ri.Rfid_eval.Runner.major_words_per_epoch
        ri.Rfid_eval.Runner.allocated_words_per_epoch (run_ns_per_epoch ri)
        ri.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy
        rc.Rfid_eval.Runner.minor_words_per_epoch
        rc.Rfid_eval.Runner.major_words_per_epoch
        rc.Rfid_eval.Runner.allocated_words_per_epoch (run_ns_per_epoch rc)
        rc.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy adaptive_gate_workload
        ra.Rfid_eval.Runner.minor_words_per_epoch
        ra.Rfid_eval.Runner.major_words_per_epoch
        ra.Rfid_eval.Runner.allocated_words_per_epoch (run_ns_per_epoch ra)
        ra.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy err_max_ratio
        time_max_ratio scaling_workload small big ratio scaling_max_ratio
        serving_gate_workload serving_p95);
  Printf.printf
    "wrote baseline (indexed %.0f, compressed %.0f, adaptive %.0f allocated \
     words/epoch, indexed %.0f ns/epoch, err %.2f/%.2f/%.2f ft, scaling ratio \
     %.2f) to %s\n\
     %!"
    ri.Rfid_eval.Runner.allocated_words_per_epoch
    rc.Rfid_eval.Runner.allocated_words_per_epoch
    ra.Rfid_eval.Runner.allocated_words_per_epoch (run_ns_per_epoch ri)
    ri.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy
    rc.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy
    ra.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy ratio path

(* Minimal JSON number extraction — enough for the flat baseline file
   this module itself writes; no JSON library in the dependency set. *)
let json_number ~key s =
  let pat = Printf.sprintf "\"%s\"" key in
  let plen = String.length pat and slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < slen && (s.[!i] = ':' || s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
      let j = ref !i in
      while
        !j < slen
        && (match s.[!j] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr j
      done;
      if !j = !i then None else float_of_string_opt (String.sub s !i (!j - !i))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_gate ~baseline_path =
  let contents =
    match read_file baseline_path with
    | exception Sys_error msg ->
        Printf.eprintf "perf-gate: cannot read %s (%s)\n" baseline_path msg;
        exit 2
    | s -> s
  in
  let number key =
    match json_number ~key contents with
    | Some v when v > 0. -> v
    | _ ->
        Printf.eprintf "perf-gate: no %s in %s (refresh with `make perf-baseline`)\n"
          key baseline_path;
        exit 2
  in
  let failed = ref false in
  (* Time bound: baseline's time_max_ratio unless PERF_GATE_TIME_RATIO
     overrides it (noisy CI machines want more slack). Time breaches
     warn by default and fail only under PERF_GATE_TIME_FATAL
     (`make perf-gate-strict`); the allocation bound stays fatal. *)
  let time_bound =
    match Sys.getenv_opt "PERF_GATE_TIME_RATIO" with
    | None | Some "" -> number "time_max_ratio"
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v > 0. -> v
        | _ ->
            Printf.eprintf "perf-gate: PERF_GATE_TIME_RATIO=%S is not a positive number\n" s;
            exit 2)
  in
  let time_fatal =
    match Sys.getenv_opt "PERF_GATE_TIME_FATAL" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let check_time label baseline_key (r : Rfid_eval.Runner.result) =
    let baseline = number baseline_key in
    let current = run_ns_per_epoch r in
    let limit = baseline *. time_bound in
    Printf.printf
      "perf-gate: %-16s %.0f ns/epoch (baseline %.0f, limit %.0f = %.2fx)\n%!" label
      current baseline limit time_bound;
    if current > limit then
      if time_fatal then begin
        Printf.eprintf
          "perf-gate: FAIL — %s ns/epoch exceeds %.2fx the committed baseline (time \
           bound promoted to fatal by PERF_GATE_TIME_FATAL).\n\
           If the slowdown is intended, refresh the baseline with `make \
           perf-baseline` and commit BENCH_baseline.json.\n"
          label time_bound;
        failed := true
      end
      else
        Printf.printf
          "perf-gate: WARN — %s ns/epoch exceeds %.2fx the committed baseline. \
           Wall-clock is noisy, so this does not fail the gate; rerun on a quiet \
           machine, or set PERF_GATE_TIME_FATAL=1 (`make perf-gate-strict`) to \
           enforce it.\n\
           %!"
          label time_bound
  in
  (* Accuracy bound: fatal, unlike the time bound — the gate workload
     is seeded and single-domain, so the measured error is exact, not
     noisy, and an accuracy regression is precisely what an
     effort-reduction optimisation must not smuggle through. *)
  let err_bound = number "err_max_ratio" in
  let check_err label baseline_key (r : Rfid_eval.Runner.result) =
    let baseline = number baseline_key in
    let current = r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy in
    let limit = baseline *. err_bound in
    Printf.printf "perf-gate: %-16s %.3f ft err_xy (baseline %.3f, limit %.3f)\n%!"
      label current baseline limit;
    if current > limit then begin
      Printf.eprintf
        "perf-gate: FAIL — %s mean XY error exceeds %.2fx the committed baseline: \
         a throughput win is trading away accuracy.\n\
         If the accuracy shift is intended and justified, refresh the baseline \
         with `make perf-baseline` and commit BENCH_baseline.json.\n"
        label err_bound;
      failed := true
    end
  in
  let check_point label baseline_key (r : Rfid_eval.Runner.result) =
    let baseline = number baseline_key in
    let current = r.Rfid_eval.Runner.allocated_words_per_epoch in
    let limit = baseline *. (1. +. gate_tolerance) in
    Printf.printf
      "perf-gate: %-16s %.0f allocated words/epoch (baseline %.0f, limit %.0f, \
       minor %.0f, major %.0f)\n\
       %!"
      label current baseline limit r.Rfid_eval.Runner.minor_words_per_epoch
      r.Rfid_eval.Runner.major_words_per_epoch;
    if current > limit then begin
      Printf.eprintf
        "perf-gate: FAIL — %s per-epoch allocation regressed more than %.0f%% over \
         the committed baseline.\n\
         If the increase is intended, refresh the baseline with `make \
         perf-baseline` and commit BENCH_baseline.json.\n"
        label
        (100. *. gate_tolerance);
      failed := true
    end
  in
  Printf.printf "perf-gate: measuring %s\n%!" gate_workload;
  let ri = measure_gate Rfid_core.Config.Factorized_indexed in
  let rc = measure_gate Rfid_core.Config.Factorized_compressed in
  Printf.printf "perf-gate: measuring %s\n%!" adaptive_gate_workload;
  let ra = measure_gate_adaptive () in
  check_point "factorized+index" "indexed_allocated_words_per_epoch" ri;
  check_point "f+index+compress" "compressed_allocated_words_per_epoch" rc;
  check_point "f+index+adaptive" "adaptive_allocated_words_per_epoch" ra;
  check_err "factorized+index" "indexed_err_xy_ft" ri;
  check_err "f+index+compress" "compressed_err_xy_ft" rc;
  check_err "f+index+adaptive" "adaptive_err_xy_ft" ra;
  check_time "factorized+index" "indexed_ns_per_epoch" ri;
  check_time "f+index+compress" "compressed_ns_per_epoch" rc;
  check_time "f+index+adaptive" "adaptive_ns_per_epoch" ra;
  (* Serving latency: same warn-unless-strict policy as the other
     wall-clock checks — this is the number PR 10's incremental query
     maintenance exists to protect. *)
  Printf.printf "perf-gate: measuring %s\n%!" serving_gate_workload;
  let sv = run_serving_point ~objects:500 ~rounds:1 () in
  let s_baseline = number "serving_range_p95_us" in
  let s_current = lat_quantile_us sv.sp_range_lat 0.95 in
  let s_limit = s_baseline *. time_bound in
  Printf.printf
    "perf-gate: %-16s %.0f us range p95 (baseline %.0f, limit %.0f = %.2fx)\n%!"
    "serving" s_current s_baseline s_limit time_bound;
  if s_current > s_limit then
    if time_fatal then begin
      Printf.eprintf
        "perf-gate: FAIL — serving RANGE p95 exceeds %.2fx the committed baseline \
         (time bound promoted to fatal by PERF_GATE_TIME_FATAL).\n\
         If the slowdown is intended, refresh the baseline with `make \
         perf-baseline` and commit BENCH_baseline.json.\n"
        time_bound;
      failed := true
    end
    else
      Printf.printf
        "perf-gate: WARN — serving RANGE p95 exceeds %.2fx the committed baseline. \
         Wall-clock is noisy, so this does not fail the gate; rerun on a quiet \
         machine, or set PERF_GATE_TIME_FATAL=1 (`make perf-gate-strict`) to \
         enforce it.\n\
         %!"
        time_bound;
  Printf.printf "perf-gate: measuring %s\n%!" scaling_workload;
  let bound = number "scaling_max_ratio" in
  let small, big, ratio = measure_scaling () in
  Printf.printf
    "perf-gate: scaling ratio %.2f (500 objects: %.0f, 5000 objects: %.0f minor \
     words/epoch, bound %.2f)\n\
     %!"
    ratio small big bound;
  if ratio > bound then begin
    Printf.eprintf
      "perf-gate: FAIL — per-epoch allocation grows with total object count \
       (5000-vs-500 ratio %.2f > %.2f): an O(total objects) term is back in the \
       per-epoch path.\n"
      ratio bound;
    failed := true
  end;
  if !failed then exit 1 else Printf.printf "perf-gate: OK\n%!"

(* A seconds-scale end-to-end pass over the JSON-bench machinery — one
   small point per variant plus the faulted robustness point, emitted
   to a scratch file and re-parsed — so `make test` catches
   bench-harness bitrot without paying for the full sweep. *)
let smoke () =
  Printf.printf "bench --smoke: small end-to-end bench pass\n%!";
  Rfid_obs.Metrics.reset Rfid_obs.Metrics.global;
  let params = Scenarios.cone_params () in
  let objects = 100 in
  let built = Scenarios.warehouse_trace ~num_objects:objects ~seed:111 () in
  let trace = built.Scenarios.trace in
  let host_cores = Domain.recommended_domain_count () in
  let points =
    [
      run_point ~variant:Rfid_core.Config.Factorized ~label:"factorized" ~objects
        ~num_domains:1 ~params ~trace ();
      run_point ~variant:Rfid_core.Config.Factorized_indexed ~label:"factorized+index"
        ~objects ~num_domains:1 ~params ~trace ();
      run_point ~variant:Rfid_core.Config.Factorized_compressed
        ~label:"f+index+compress" ~objects ~num_domains:1 ~params ~trace ();
      adaptive_point ~objects ~num_domains:1 ~params ~trace;
    ]
  in
  (* A domains>1 point on a single-core host measures nothing but
     scheduling overhead; skip it rather than emit a misleading number
     (the full bench tags such points "scaling_valid": false instead,
     because its committed output must keep a stable point set). *)
  let points =
    if host_cores > 1 then
      points
      @ [
          run_point ~variant:Rfid_core.Config.Factorized_indexed
            ~label:"factorized+index" ~objects ~num_domains:2 ~params ~trace ();
        ]
    else begin
      Printf.printf
        "  ... skipping domains=2 point: host has 1 core, scaling not measurable\n%!";
      points
    end
  in
  let robust = run_robust_point ~objects ~params ~trace in
  let durability = run_durability_point ~objects ~params ~trace in
  let serving = run_serving_point ~objects ~rounds:1 () in
  let path = Filename.temp_file "bench_smoke" ".json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> emit ~extra:[ serving_json [ serving ] ] oc points robust durability);
  (* The emitted file must round-trip through the same extractor the
     gate uses on the committed baseline. *)
  let emitted = read_file path in
  let require_number key =
    match json_number ~key emitted with
    | Some _ -> ()
    | None ->
        Printf.eprintf "bench --smoke: emitted JSON missing %s\n" key;
        exit 1
  in
  require_number "minor_words_per_epoch";
  require_number "codec_encode_us";
  require_number "mean_budget";
  require_number "resample_skip_rate";
  require_number "ingest_epochs_per_sec";
  require_number "range_p95_us";
  require_number "fit_cache_hit_rate";
  require_number "index_updates";
  require_number "full_rebuilds";
  (* scaling_valid is a boolean, so the numeric extractor can't read
     it; presence of the key is what the v6 schema promises. *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  if not (contains emitted "\"scaling_valid\"") then begin
    Printf.eprintf "bench --smoke: emitted JSON missing scaling_valid\n";
    exit 1
  end;
  Sys.remove path;
  Printf.printf "bench --smoke: OK (%d points)\n%!" (List.length points)
