lib/stream/misplaced.mli: Format Rfid_core Rfid_geom Rfid_model
