(** Ground-truth-annotated traces.

    A trace is what a workload generator (the model-faithful sampler in
    {!Generative}, or the scripted warehouse/lab simulators in
    [Rfid_sim]) hands to an experiment: per epoch, the hidden state the
    generator actually used (true reader state, true object locations)
    plus the evidence the inference engine is allowed to see. Inference
    consumes only [observation]; evaluation compares its output against
    the hidden state. *)

type step = {
  epoch : Types.epoch;
  true_reader : Reader_state.t;
  true_object_locs : Rfid_geom.Vec3.t array;  (** index = object id *)
  observation : Types.observation;
}

type t = {
  world : World.t;
  num_objects : int;
  steps : step array;  (** consecutive epochs from 0 *)
}

val observations : t -> Types.observation list

val true_object_loc : t -> epoch:Types.epoch -> obj:int -> Rfid_geom.Vec3.t
(** @raise Invalid_argument on out-of-range epoch or object id. *)

val final_object_locs : t -> Rfid_geom.Vec3.t array
(** True object locations at the last epoch. @raise Invalid_argument on
    an empty trace. *)

val epochs : t -> int

val concat : t -> t -> t
(** Append a second trace (e.g. a second scan round) after the first,
    renumbering its epochs to continue the first's.
    @raise Invalid_argument if the traces disagree on [num_objects]. *)
