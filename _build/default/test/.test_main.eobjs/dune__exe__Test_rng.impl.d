test/test_rng.ml: Alcotest Array Fun Int Int64 QCheck Rfid_prob Rng Stats Util
