(** A dynamic spatial index over XY bounding boxes with stable entry
    handles.

    {!Rtree} fits the engine's sensing-region index, where entries are
    only ever inserted; the serving layer's query index is different —
    each tracked object owns exactly one box that {e moves} whenever
    the posterior changes, so the index must support delete and
    re-insert in place of the full rebuild an insert-only structure
    forces. This is a uniform grid over packed cell keys: an entry's
    box is registered in every grid cell it overlaps, removal pops it
    back out of those cells, and a probe visits only the cells it
    covers. The cell size self-tunes to twice the mean box extent
    (rehashing all entries when the population drifts more than 4x
    away), so occupancy stays O(1) per cell without the caller knowing
    the world scale.

    Handles are small ints, reused after {!remove}; each [insert]
    returns the handle to later [remove]/[update] that entry. Queries
    fill the same reusable {!Rtree.Hits} buffers the R-tree uses, and
    a steady-state {!query_into} allocates nothing. Entries whose box
    spans more than {!max_span_cells} cells are kept on an oversize
    list probed by every query instead of bloating thousands of
    buckets. Hit order is unspecified (grid visit order); callers
    needing determinism sort, exactly as they must with {!Rtree}. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** Empty index. [dummy] fills unused entry slots so freed values are
    not pinned for the GC. *)

val insert : 'a t -> Box2.t -> 'a -> int
(** Register a value under its box; returns the entry's handle. *)

val remove : 'a t -> int -> unit
(** Unregister an entry by handle; the handle becomes invalid (and may
    be reused by a later {!insert}).
    @raise Invalid_argument on a dead or out-of-range handle. *)

val update : 'a t -> int -> Box2.t -> 'a -> unit
(** [update t h box v] moves entry [h] to a new box (and value) in
    place — the delete/re-insert pair without handle churn.
    @raise Invalid_argument on a dead or out-of-range handle. *)

val get : 'a t -> int -> Box2.t * 'a
(** The live entry behind a handle.
    @raise Invalid_argument on a dead or out-of-range handle. *)

val size : 'a t -> int
(** Number of live entries. *)

val query_into : 'a t -> Box2.t -> 'a Rtree.Hits.t -> unit
(** [query_into t probe hits] clears [hits] and appends every live
    value whose box intersects [probe], each exactly once, in
    unspecified order. Allocation-free once [hits] has grown to the
    working size. A probe covering vastly more cells than there are
    entries degrades gracefully to a full scan. *)

val iter : 'a t -> (int -> Box2.t -> 'a -> unit) -> unit
(** Visit every live entry as (handle, box, value), in ascending
    handle order. *)

val clear : 'a t -> unit
(** Drop every entry; handles become invalid, capacity is retained. *)

val max_span_cells : int
(** Cell-coverage bound above which an entry lives on the oversize
    list (64). *)

val cell_size : 'a t -> float
(** Current grid cell size — exposed for tests of the self-tuning. *)
