module Obs = Rfid_obs.Metrics
module Types = Rfid_model.Types

let sp_append = Obs.span Obs.global "stage.wal_append"
let c_records = Obs.counter Obs.global "wal.records"
let c_fsyncs = Obs.counter Obs.global "wal.fsyncs"

let record_magic = "RWL1"

type entry =
  | Step of Types.observation
  | Degraded of Types.epoch * Types.tag list

let entry_epoch = function
  | Step o -> o.Types.o_epoch
  | Degraded (e, _) -> e

(* Record framing: magic, u32 body length, body, u32 Adler-32(body).
   Bodies use the same Codec.Prim wire primitives as checkpoints, so
   the two on-disk formats agree byte-for-byte on every scalar. *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let encode_entry e =
  let body = Buffer.create 64 in
  (match e with
  | Step o ->
      Codec.Prim.add_u8 body 0;
      Codec.Prim.add_int body o.Types.o_epoch;
      Codec.Prim.add_vec3 body o.Types.o_reported_loc;
      Codec.Prim.add_list Codec.Prim.add_tag body o.Types.o_read_tags
  | Degraded (epoch, tags) ->
      Codec.Prim.add_u8 body 1;
      Codec.Prim.add_int body epoch;
      Codec.Prim.add_list Codec.Prim.add_tag body tags);
  let body = Buffer.contents body in
  let rec_buf = Buffer.create (String.length body + 12) in
  Buffer.add_string rec_buf record_magic;
  add_u32 rec_buf (String.length body);
  Buffer.add_string rec_buf body;
  add_u32 rec_buf (Codec.adler32 body);
  Buffer.contents rec_buf

let decode_body body =
  let c = Codec.Prim.cursor body in
  let e =
    match Codec.Prim.r_u8 c with
    | 0 ->
        let o_epoch = Codec.Prim.r_int c in
        let o_reported_loc = Codec.Prim.r_vec3 c in
        let o_read_tags = Codec.Prim.r_list Codec.Prim.r_tag c in
        Step { Types.o_epoch; o_reported_loc; o_read_tags }
    | 1 ->
        let epoch = Codec.Prim.r_int c in
        let tags = Codec.Prim.r_list Codec.Prim.r_tag c in
        Degraded (epoch, tags)
    | k ->
        raise
          (Codec.Prim.Corrupt
             (Codec.Prim.pos c - 1, Printf.sprintf "unknown record kind %d" k))
  in
  if Codec.Prim.remaining c <> 0 then
    raise
      (Codec.Prim.Corrupt
         (Codec.Prim.pos c, "trailing bytes inside record body"));
  e

(* ------------------------------------------------------------------ *)
(* Writing *)

type writer = {
  fd : Unix.file_descr;
  fsync_every : int;
  mutable unsynced : int;
  mutable closed : bool;
}

let create_writer ?(append = false) ?(fsync_every = 8) ~path () =
  let flags =
    Unix.O_WRONLY :: Unix.O_CREAT
    :: (if append then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
  in
  match Unix.openfile path flags 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  | fd -> { fd; fsync_every = max 1 fsync_every; unsynced = 0; closed = false }

let sync w =
  if (not w.closed) && w.unsynced > 0 then begin
    Durable.fsync w.fd;
    Obs.incr c_fsyncs 1;
    w.unsynced <- 0
  end

let append w e =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  let t0 = Obs.start sp_append in
  Durable.write w.fd (encode_entry e);
  Obs.incr c_records 1;
  w.unsynced <- w.unsynced + 1;
  if w.unsynced >= w.fsync_every then sync w;
  Obs.stop sp_append t0

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Reading *)

type tail = {
  entries : entry list;
  valid_bytes : int;
  discarded_bytes : int;
  note : string option;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let u32_at data pos = Int32.to_int (String.get_int32_le data pos) land 0xffffffff

let read ~path =
  match read_file path with
  | None -> { entries = []; valid_bytes = 0; discarded_bytes = 0; note = None }
  | Some data ->
      let len = String.length data in
      let entries = ref [] in
      let pos = ref 0 in
      let note = ref None in
      let stop msg = note := Some msg in
      let continue () = !note = None && !pos < len in
      while continue () do
        let p = !pos in
        if len - p < 12 then
          stop (Printf.sprintf "torn record header at byte %d" p)
        else if String.sub data p 4 <> record_magic then
          stop (Printf.sprintf "bad record magic at byte %d" p)
        else begin
          let body_len = u32_at data (p + 4) in
          if body_len > len - p - 12 then
            stop
              (Printf.sprintf "torn record at byte %d (%d body bytes missing)"
                 p
                 (body_len - (len - p - 12)))
          else
            let body = String.sub data (p + 8) body_len in
            let stored = u32_at data (p + 8 + body_len) in
            if stored <> Codec.adler32 body then
              stop (Printf.sprintf "record checksum mismatch at byte %d" p)
            else
              match decode_body body with
              | e ->
                  entries := e :: !entries;
                  pos := p + 12 + body_len
              | exception Codec.Prim.Corrupt (at, msg) ->
                  stop
                    (Printf.sprintf "undecodable record at byte %d: %s (+%d)" p
                       msg at)
        end
      done;
      {
        entries = List.rev !entries;
        valid_bytes = !pos;
        discarded_bytes = len - !pos;
        note = !note;
      }

let truncate ~path ~valid_bytes =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  | st ->
      if st.Unix.st_size <> valid_bytes then (
        match Unix.truncate path valid_bytes with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
            raise (Sys_error (path ^ ": " ^ Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Replay *)

let replay ~guard ~engine entries =
  let current = Rfid_core.Engine.epoch engine in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest when entry_epoch e <= current -> go acc rest
    | Step o :: rest -> (
        match Ingest.step_engine guard engine o with
        | Ok events -> go (List.rev_append events acc) rest
        | Error (fault, msg) ->
            Error
              (Printf.sprintf
                 "wal: replayed epoch %d halted the guard (%s: %s) — the log \
                  does not match this run's guard configuration"
                 o.Types.o_epoch (Ingest.fault_name fault) msg))
    | Degraded (epoch, tags) :: rest ->
        Ingest.advance_timeline guard epoch;
        let events = Rfid_core.Engine.step_degraded ~tags engine ~epoch in
        go (List.rev_append events acc) rest
  in
  go [] entries
