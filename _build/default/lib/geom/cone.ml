type t = { apex : Vec3.t; heading : float; half_angle : float; range : float }

let make ~apex ~heading ~half_angle ~range =
  if not (half_angle > 0. && half_angle <= Float.pi) then
    invalid_arg "Cone.make: half_angle must be in (0, pi]";
  if not (range > 0.) then invalid_arg "Cone.make: range must be positive";
  { apex; heading; half_angle; range }

(* Wrap an angle into (-pi, pi]. *)
let wrap a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let relative_angle t (p : Vec3.t) =
  let dx = p.x -. t.apex.x and dy = p.y -. t.apex.y in
  if dx = 0. && dy = 0. then 0.
  else Float.abs (wrap (atan2 dy dx -. t.heading))

let contains t p = Vec3.dist_xy t.apex p <= t.range && relative_angle t p <= t.half_angle

let bounding_box t =
  let candidates = ref [ t.apex ] in
  let push a =
    candidates :=
      Vec3.make
        (t.apex.x +. (t.range *. cos a))
        (t.apex.y +. (t.range *. sin a))
        t.apex.z
      :: !candidates
  in
  push (t.heading -. t.half_angle);
  push (t.heading +. t.half_angle);
  (* Axis extremes of the full circle that fall inside the sector extend
     the arc's bounding box beyond the two edge points. *)
  List.iter
    (fun axis -> if Float.abs (wrap (axis -. t.heading)) <= t.half_angle then push axis)
    [ 0.; Float.pi /. 2.; Float.pi; -.Float.pi /. 2. ];
  Box2.of_points !candidates

let sample t rng =
  let u = Rfid_prob.Rng.float rng in
  let r = t.range *. sqrt u in
  let a = Rfid_prob.Rng.uniform rng ~lo:(t.heading -. t.half_angle) ~hi:(t.heading +. t.half_angle) in
  Vec3.make (t.apex.x +. (r *. cos a)) (t.apex.y +. (r *. sin a)) t.apex.z

let sample_in_box t box rng =
  let rec attempt k =
    if k = 0 then None
    else begin
      let p = sample t rng in
      if Box2.contains_point box p then Some p else attempt (k - 1)
    end
  in
  attempt 256
