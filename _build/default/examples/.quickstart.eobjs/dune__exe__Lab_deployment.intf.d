examples/lab_deployment.mli:
