(** The basic (unfactorized) particle filter of §IV-A.

    Every particle is a joint hypothesis: one reader state plus a
    location for {e every} object. This is the textbook sequential
    importance resampling filter applied to the model of §III — correct,
    and the paper's scalability baseline: the particle count needed for
    a fixed accuracy grows quickly with the number of objects because a
    joint particle is only as good as its worst per-object sample
    (Fig. 3(a)), which is exactly what Fig. 5(i)/(j) demonstrate.

    The object universe must be declared up front ([num_objects]); the
    factorized filters discover objects from the stream instead. The
    joint particle count is [config.num_reader_particles]
    ([num_object_particles] is unused here). *)

type t

val create :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  init_reader:Rfid_model.Reader_state.t ->
  num_objects:int ->
  rng:Rfid_prob.Rng.t ->
  t
(** @raise Invalid_argument if [num_objects < 0]. *)

val step : t -> Rfid_model.Types.observation -> unit
(** Advance one epoch: propose from the motion and object models, weight
    by the location report, shelf-tag and object-tag evidence, resample
    when the effective sample size degenerates.
    @raise Invalid_argument if observations arrive out of epoch order. *)

val estimate : t -> int -> (Rfid_geom.Vec3.t * Rfid_prob.Linalg.mat) option
(** Posterior mean and covariance of an object's location; [None] for an
    object id outside the declared universe or never read. *)

val reader_estimate : t -> Rfid_geom.Vec3.t
(** Posterior mean of the true reader location. *)

val newly_seen : t -> int list
(** Objects that (re-)entered the reader's scope during the last
    {!step}. *)

val known_objects : t -> int list
(** Objects read at least once so far. *)

val epoch : t -> Rfid_model.Types.epoch
(** Epoch of the last processed observation; -1 initially. *)
