examples/fire_code.ml: Array Box2 Format List Printf Rfid_core Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Rfid_stream Vec3
