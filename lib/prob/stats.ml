let log_sum_exp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    (* for-loop rather than [Array.fold_left Float.max]: the generic
       fold boxes the float accumulator on every iteration. *)
    let m = ref neg_infinity in
    for i = 0 to n - 1 do
      m := Float.max !m (Array.unsafe_get a i)
    done;
    let m = !m in
    if m = neg_infinity then neg_infinity
    else begin
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. exp (a.(i) -. m)
      done;
      m +. log !s
    end
  end

let normalize_log_weights_in_place lw =
  let n = Array.length lw in
  let z = log_sum_exp lw in
  if z = neg_infinity then Array.fill lw 0 n (1. /. float_of_int n)
  else
    for i = 0 to n - 1 do
      lw.(i) <- exp (lw.(i) -. z)
    done

let normalize_log_weights lw =
  let w = Array.copy lw in
  normalize_log_weights_in_place w;
  w

let normalize_log_weights_into ~src ~dst =
  if Array.length dst <> Array.length src then
    invalid_arg "Stats.normalize_log_weights_into: length mismatch";
  Array.blit src 0 dst 0 (Array.length src);
  normalize_log_weights_in_place dst

let normalize_in_place w =
  let n = Array.length w in
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then Array.fill w 0 n (1. /. float_of_int n)
  else
    for i = 0 to n - 1 do
      w.(i) <- w.(i) /. total
    done

let normalize w =
  let w = Array.copy w in
  normalize_in_place w;
  w

let effective_sample_size w =
  let sumsq = ref 0. in
  for i = 0 to Array.length w - 1 do
    let x = Array.unsafe_get w i in
    sumsq := !sumsq +. (x *. x)
  done;
  if !sumsq = 0. then 0. else 1. /. !sumsq

let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a in
    s /. float_of_int n
  end

let weighted_mean ~w a =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (w.(i) *. x)) a;
  !acc

let weighted_variance ~w a =
  let m = weighted_mean ~w a in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (w.(i) *. ((x -. m) ** 2.))) a;
  !acc

let quantile a ~q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  let q = Float.max 0. (Float.min 1. q) in
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Int.min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let rmse a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.rmse: length mismatch";
  if n = 0 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. ((a.(i) -. b.(i)) ** 2.)
    done;
    sqrt (!s /. float_of_int n)
  end
