(** The location-update query of §II-B:

    {v
    Select Istream(E.tag_id, E.(x, y, z))
    From EventStream E [Partition By tag_id Row 1]
    v}

    Partition the event stream by tag, keep each partition's most recent
    row, and emit an insert whenever an object's newest reported
    location differs from its previous one. *)

type update = {
  u_epoch : Rfid_model.Types.epoch;
  u_obj : int;
  u_loc : Rfid_geom.Vec3.t;
  u_prev : Rfid_geom.Vec3.t option;  (** previous location, [None] on first sight *)
}

type t

val create : ?min_change:float -> unit -> t
(** [min_change] (default 1e-6 ft) is the XY distance below which two
    locations count as "the same" — guards against float jitter.
    @raise Invalid_argument if negative. *)

val push : t -> Rfid_core.Event.t -> update option
(** Feed the next event; an update comes out iff the object is new or
    moved by more than [min_change]. *)

val run : t -> Rfid_core.Event.t list -> update list

val current : t -> int -> Rfid_geom.Vec3.t option
(** Latest known location of an object ([Row 1] state). *)

val pp_update : Format.formatter -> update -> unit
