(** The fire-code query of §II-B: "display of solid merchandise shall
    not exceed 200 pounds per square foot of shelf area."

    {v
    Select Rstream(E2.area, sum(E2.weight))
    From (Select Rstream( *, SquareFtArea(E.(x,y,z)) As area,
                            Weight(E.tag_id) As weight)
          From EventStream E [Now]) E2 [Range 5 seconds]
    Group By E2.area
    Having sum(E2.weight) > 200 pounds
    v}

    The inner query annotates each event with its square-foot cell and
    the object's weight; the outer query sums weights per cell over a
    sliding window and reports cells over the limit. An object
    contributes its most recent location only (re-reports supersede). *)

type cell = int * int
(** Square-foot grid cell (floor x, floor y). *)

val cell_of : Rfid_geom.Vec3.t -> cell

type violation = {
  v_epoch : Rfid_model.Types.epoch;
  v_cell : cell;
  v_weight : float;  (** pounds in the cell *)
  v_objects : int list;  (** contributing objects, ascending id *)
}

type config = {
  weight_of : int -> float;  (** pounds, by object id *)
  window : int;  (** epochs (the paper's 5-second range window) *)
  limit : float;  (** pounds per square foot (200) *)
}

val default_config : weight_of:(int -> float) -> config
(** window = 5, limit = 200. *)

type t

val create : config -> t

val push : t -> Rfid_core.Event.t -> violation list
(** Feed the next event; returns the cells in violation as of this
    event's epoch (each cell reported at most once per epoch). *)

val run : t -> Rfid_core.Event.t list -> violation list

val pp_violation : Format.formatter -> violation -> unit
