lib/prob/gaussian.mli: Linalg Rng
