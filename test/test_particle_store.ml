(* Structure-of-arrays particle storage: accessor round-trips, the
   in-place weight/resample operations against straightforward
   array-of-records references, and the bit-identity contract — every
   [_into]/slab routine must match the allocating formulation it
   replaced, bit for bit. *)
open Rfid_prob

let mk_rng seed = Rng.create ~seed

(* Fill a store with a reproducible cloud and return the same data as
   plain arrays for reference computations. *)
let filled ~seed n =
  let rng = mk_rng seed in
  let s = Particle_store.create ~n in
  let xs = Array.make n 0. and ys = Array.make n 0. and zs = Array.make n 0. in
  let lw = Array.make n 0. and rd = Array.make n 0 in
  for i = 0 to n - 1 do
    xs.(i) <- Rng.uniform rng ~lo:(-5.) ~hi:5.;
    ys.(i) <- Rng.uniform rng ~lo:(-5.) ~hi:5.;
    zs.(i) <- Rng.uniform rng ~lo:0. ~hi:2.;
    lw.(i) <- Rng.uniform rng ~lo:(-3.) ~hi:0.5;
    rd.(i) <- Rng.int rng 7;
    Particle_store.set_loc s i ~x:xs.(i) ~y:ys.(i) ~z:zs.(i);
    Particle_store.set_log_w s i lw.(i);
    Particle_store.set_reader s i rd.(i)
  done;
  (s, xs, ys, zs, lw, rd)

let test_create_resize () =
  let s = Particle_store.create ~n:0 in
  Alcotest.(check int) "empty store legal" 0 (Particle_store.length s);
  Particle_store.resize s 5;
  Alcotest.(check int) "resize grows" 5 (Particle_store.length s);
  Alcotest.(check bool) "capacity covers length" true (Particle_store.capacity s >= 5);
  let cap = Particle_store.capacity s in
  Particle_store.resize s 2;
  Alcotest.(check int) "resize shrinks length" 2 (Particle_store.length s);
  Alcotest.(check int) "shrink keeps capacity" cap (Particle_store.capacity s);
  Util.check_raises_invalid "negative create" (fun () ->
      ignore (Particle_store.create ~n:(-1)))

let test_accessor_roundtrip () =
  let n = 17 in
  let s, xs, ys, zs, lw, rd = filled ~seed:3 n in
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "x" xs.(i) (Particle_store.x s i);
    Alcotest.(check (float 0.)) "y" ys.(i) (Particle_store.y s i);
    Alcotest.(check (float 0.)) "z" zs.(i) (Particle_store.z s i);
    Alcotest.(check (float 0.)) "log_w" lw.(i) (Particle_store.log_w s i);
    Alcotest.(check int) "reader" rd.(i) (Particle_store.reader s i)
  done;
  Particle_store.add_log_w s 4 0.25;
  Alcotest.(check (float 0.)) "add_log_w" (lw.(4) +. 0.25) (Particle_store.log_w s 4)

let test_weight_ops () =
  let n = 33 in
  let s, _, _, _, lw, _ = filled ~seed:11 n in
  let m = Array.fold_left Float.max neg_infinity lw in
  Alcotest.(check (float 0.)) "max_log_w" m (Particle_store.max_log_w s);
  Particle_store.shift_log_w s m;
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "shifted" (lw.(i) -. m) (Particle_store.log_w s i)
  done;
  Particle_store.reset_log_w s;
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "reset" 0. (Particle_store.log_w s i)
  done;
  Alcotest.(check (float 0.)) "empty max" neg_infinity
    (Particle_store.max_log_w (Particle_store.create ~n:0))

let test_weights_into_bit_identical () =
  let n = 64 in
  let s, _, _, _, lw, _ = filled ~seed:23 n in
  let got = Array.make n 0. in
  Particle_store.weights_into s got;
  let expected = Stats.normalize_log_weights lw in
  Alcotest.(check (array (float 0.))) "weights_into = normalize of copy" expected got;
  Alcotest.(check (array (float 0.)))
    "normalized_weights agrees" expected
    (Particle_store.normalized_weights s);
  Util.check_raises_invalid "length mismatch" (fun () ->
      Particle_store.weights_into s (Array.make (n - 1) 0.))

let test_gather_matches_reference () =
  let n = 40 in
  let src, xs, ys, zs, _, rd = filled ~seed:31 n in
  let rng = mk_rng 5 in
  let idx = Array.init n (fun _ -> Rng.int rng n) in
  let dst = Particle_store.create ~n:0 in
  Particle_store.gather ~src ~dst idx ~n;
  for i = 0 to n - 1 do
    let j = idx.(i) in
    Alcotest.(check (float 0.)) "gathered x" xs.(j) (Particle_store.x dst i);
    Alcotest.(check (float 0.)) "gathered y" ys.(j) (Particle_store.y dst i);
    Alcotest.(check (float 0.)) "gathered z" zs.(j) (Particle_store.z dst i);
    Alcotest.(check int) "gathered reader" rd.(j) (Particle_store.reader dst i);
    Alcotest.(check (float 0.)) "gathered weight reset" 0. (Particle_store.log_w dst i)
  done;
  Util.check_raises_invalid "self gather" (fun () ->
      Particle_store.gather ~src ~dst:src idx ~n);
  Util.check_raises_invalid "index out of range" (fun () ->
      Particle_store.gather ~src ~dst [| n |] ~n:1)

let test_blit_and_swap () =
  let n = 12 in
  let a, xs, _, _, lw, _ = filled ~seed:41 n in
  let b = Particle_store.create ~n in
  Particle_store.blit ~src:a ~src_pos:3 ~dst:b ~dst_pos:0 ~len:5;
  for i = 0 to 4 do
    Alcotest.(check (float 0.)) "blit x" xs.(i + 3) (Particle_store.x b i);
    Alcotest.(check (float 0.)) "blit log_w" lw.(i + 3) (Particle_store.log_w b i)
  done;
  Util.check_raises_invalid "blit out of range" (fun () ->
      Particle_store.blit ~src:a ~src_pos:(n - 2) ~dst:b ~dst_pos:0 ~len:5);
  let c, cx, _, _, _, _ = filled ~seed:43 7 in
  Particle_store.swap a c;
  Alcotest.(check int) "swap length a" 7 (Particle_store.length a);
  Alcotest.(check int) "swap length c" n (Particle_store.length c);
  Alcotest.(check (float 0.)) "swap moved contents" cx.(0) (Particle_store.x a 0);
  Alcotest.(check (float 0.)) "swap moved contents back" xs.(0) (Particle_store.x c 0)

let test_backing_views_live_slabs () =
  let n = 9 in
  let s, xs, _, _, _, rd = filled ~seed:47 n in
  let bxs, _, _, blw, brd = Particle_store.backing s in
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.)) "backing x" xs.(i) (Float.Array.get bxs i);
    Alcotest.(check int) "backing reader" rd.(i) brd.(i)
  done;
  (* Writes through the backing are the store's contents, not a copy. *)
  Float.Array.set blw 2 (-1.5);
  Alcotest.(check (float 0.)) "backing write visible" (-1.5) (Particle_store.log_w s 2)

let test_fit_gaussian_bit_identical () =
  let n = 50 in
  let s, xs, ys, zs, lw, _ = filled ~seed:53 n in
  let w = Stats.normalize_log_weights lw in
  let rows = Array.init n (fun i -> [| xs.(i); ys.(i); zs.(i) |]) in
  let expected = Gaussian.fit ~w rows in
  let got = Particle_store.fit_gaussian ~w s in
  Alcotest.(check (array (float 0.)))
    "fit mean bit-identical" (Gaussian.mean expected) (Gaussian.mean got);
  Array.iteri
    (fun i row ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "fit cov row %d bit-identical" i)
        row
        (Gaussian.cov got).(i))
    (Gaussian.cov expected);
  let nll = Particle_store.avg_nll ~w expected s in
  let reference =
    let acc = ref 0. in
    Array.iteri (fun i row -> acc := !acc +. (w.(i) *. -.log (Gaussian.pdf expected row))) rows;
    !acc
  in
  Util.check_close ~eps:1e-9 "avg_nll matches row-wise reference" reference nll

let test_resize_down () =
  let n = 20 in
  let s, xs, _, _, lw, rd = filled ~seed:61 n in
  let cap = Particle_store.capacity s in
  Particle_store.resize_down s 7;
  Alcotest.(check int) "length truncated" 7 (Particle_store.length s);
  Alcotest.(check int) "capacity kept" cap (Particle_store.capacity s);
  for i = 0 to 6 do
    Alcotest.(check (float 0.)) "prefix x intact" xs.(i) (Particle_store.x s i);
    Alcotest.(check (float 0.)) "prefix log_w intact" lw.(i) (Particle_store.log_w s i);
    Alcotest.(check int) "prefix reader intact" rd.(i) (Particle_store.reader s i)
  done;
  Particle_store.resize_down s 0;
  Alcotest.(check int) "down to empty legal" 0 (Particle_store.length s);
  Util.check_raises_invalid "negative target" (fun () ->
      Particle_store.resize_down s (-1));
  let s2, _, _, _, _, _ = filled ~seed:61 5 in
  Util.check_raises_invalid "target above length" (fun () ->
      Particle_store.resize_down s2 6)

(* Reference for resize_up's appended tail: particle [k + t] is source
   particle [t mod k] jittered by one fresh gaussian per axis in x, y,
   z order, with log-weight and reader index copied verbatim. Drawing
   from an identically-seeded RNG reproduces the jitter bit-for-bit. *)
let check_resize_up ~seed ~k ~n ~sigma_x ~sigma_y ~sigma_z =
  let s, xs, ys, zs, lw, rd = filled ~seed k in
  Particle_store.resize_up s ~n ~rng:(mk_rng 991) ~sigma_x ~sigma_y ~sigma_z;
  Alcotest.(check int) "grown length" n (Particle_store.length s);
  for i = 0 to k - 1 do
    Alcotest.(check (float 0.)) "prefix x intact" xs.(i) (Particle_store.x s i);
    Alcotest.(check (float 0.)) "prefix y intact" ys.(i) (Particle_store.y s i);
    Alcotest.(check (float 0.)) "prefix z intact" zs.(i) (Particle_store.z s i);
    Alcotest.(check (float 0.)) "prefix log_w intact" lw.(i) (Particle_store.log_w s i);
    Alcotest.(check int) "prefix reader intact" rd.(i) (Particle_store.reader s i)
  done;
  let ref_rng = mk_rng 991 in
  for i = k to n - 1 do
    let j = (i - k) mod k in
    let ex = xs.(j) +. (sigma_x *. Rng.gaussian ref_rng ()) in
    let ey = ys.(j) +. (sigma_y *. Rng.gaussian ref_rng ()) in
    let ez = zs.(j) +. (sigma_z *. Rng.gaussian ref_rng ()) in
    Alcotest.(check (float 0.)) "tail x jittered replica" ex (Particle_store.x s i);
    Alcotest.(check (float 0.)) "tail y jittered replica" ey (Particle_store.y s i);
    Alcotest.(check (float 0.)) "tail z jittered replica" ez (Particle_store.z s i);
    Alcotest.(check (float 0.)) "tail log_w copied" lw.(j) (Particle_store.log_w s i);
    Alcotest.(check int) "tail reader copied" rd.(j) (Particle_store.reader s i)
  done

let test_resize_up_within_capacity () =
  (* Shrink first so the growth stays inside the existing slabs. *)
  let s, xs, _, _, _, _ = filled ~seed:67 16 in
  Particle_store.resize_down s 4;
  Particle_store.resize_up s ~n:12 ~rng:(mk_rng 5) ~sigma_x:0. ~sigma_y:0. ~sigma_z:0.;
  Alcotest.(check int) "grown back" 12 (Particle_store.length s);
  for i = 4 to 11 do
    (* sigma 0: exact cyclic replicas of the 4 survivors. *)
    Alcotest.(check (float 0.)) "zero-sigma replica" xs.((i - 4) mod 4)
      (Particle_store.x s i)
  done

let test_resize_up_capacity_crossing () =
  (* A freshly created store has capacity = length, so growing forces
     the realloc path, which must preserve the live prefix (the raw
     [resize] primitive deliberately does not). *)
  check_resize_up ~seed:71 ~k:5 ~n:23 ~sigma_x:0.3 ~sigma_y:0.2 ~sigma_z:0.1

let test_resize_up_invalid () =
  let s, _, _, _, _, _ = filled ~seed:73 6 in
  Util.check_raises_invalid "target below current" (fun () ->
      Particle_store.resize_up s ~n:5 ~rng:(mk_rng 1) ~sigma_x:0. ~sigma_y:0.
        ~sigma_z:0.);
  let empty = Particle_store.create ~n:0 in
  Util.check_raises_invalid "empty store has nothing to replicate" (fun () ->
      Particle_store.resize_up empty ~n:4 ~rng:(mk_rng 1) ~sigma_x:0. ~sigma_y:0.
        ~sigma_z:0.)

let qcheck_resize_up_replication =
  Util.qcheck ~count:60 "resize_up tail = seeded jitter reference"
    QCheck.(triple small_int (int_range 1 12) (int_range 0 40))
    (fun (seed, k, extra) ->
      check_resize_up ~seed ~k ~n:(k + extra) ~sigma_x:0.25 ~sigma_y:0.25
        ~sigma_z:0.05;
      true)

let qcheck_resize_up_fit_invariant =
  (* Growing with small jitter must not move the posterior summary
     much: the weighted Gaussian fit of the grown cloud (uniform
     weights, as after a resample) stays within a fraction of a foot of
     the original fit's mean. *)
  Util.qcheck ~count:40 "resize_up keeps the fitted mean"
    QCheck.(pair small_int (int_range 8 40))
    (fun (seed, k) ->
      let s, _, _, _, _, _ = filled ~seed k in
      Particle_store.reset_log_w s;
      let w_before = Particle_store.normalized_weights s in
      let before = Particle_store.fit_gaussian ~w:w_before s in
      Particle_store.resize_up s ~n:(4 * k) ~rng:(mk_rng (seed + 77)) ~sigma_x:0.05
        ~sigma_y:0.05 ~sigma_z:0.05;
      let w_after = Particle_store.normalized_weights s in
      let after = Particle_store.fit_gaussian ~w:w_after s in
      let db = Gaussian.mean before and da = Gaussian.mean after in
      let dist =
        sqrt
          (((db.(0) -. da.(0)) ** 2.)
          +. ((db.(1) -. da.(1)) ** 2.)
          +. ((db.(2) -. da.(2)) ** 2.))
      in
      if dist > 0.2 then
        QCheck.Test.fail_reportf "fitted mean moved %.3f ft on grow" dist;
      true)

let test_copy_independent () =
  let n = 8 in
  let s, xs, _, _, _, _ = filled ~seed:59 n in
  let c = Particle_store.copy s in
  Particle_store.set_loc s 0 ~x:99. ~y:0. ~z:0.;
  Alcotest.(check (float 0.)) "copy unaffected by source writes" xs.(0) (Particle_store.x c 0);
  Alcotest.(check int) "copy length" n (Particle_store.length c)

let suite =
  ( "particle_store",
    [
      Alcotest.test_case "create and resize" `Quick test_create_resize;
      Alcotest.test_case "accessor roundtrip" `Quick test_accessor_roundtrip;
      Alcotest.test_case "weight ops" `Quick test_weight_ops;
      Alcotest.test_case "weights_into bit-identical" `Quick test_weights_into_bit_identical;
      Alcotest.test_case "gather matches reference" `Quick test_gather_matches_reference;
      Alcotest.test_case "blit and swap" `Quick test_blit_and_swap;
      Alcotest.test_case "backing views live slabs" `Quick test_backing_views_live_slabs;
      Alcotest.test_case "fit_gaussian bit-identical" `Quick test_fit_gaussian_bit_identical;
      Alcotest.test_case "resize_down truncates in place" `Quick test_resize_down;
      Alcotest.test_case "resize_up within capacity" `Quick
        test_resize_up_within_capacity;
      Alcotest.test_case "resize_up across capacity" `Quick
        test_resize_up_capacity_crossing;
      Alcotest.test_case "resize_up invalid args" `Quick test_resize_up_invalid;
      qcheck_resize_up_replication;
      qcheck_resize_up_fit_invariant;
      Alcotest.test_case "copy independent" `Quick test_copy_independent;
    ] )
