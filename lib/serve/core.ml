module Engine = Rfid_core.Engine
module Event = Rfid_core.Event
module Ingest = Rfid_robust.Ingest
module Config = Rfid_core.Config

type hooks = {
  on_events : Event.t list -> unit;
  on_flush_mark : unit -> unit;
  on_admitted : int -> unit;
  on_checkpoint : Engine.t -> unit;
}

let no_hooks =
  {
    on_events = (fun _ -> ());
    on_flush_mark = (fun () -> ());
    on_admitted = (fun _ -> ());
    on_checkpoint = (fun _ -> ());
  }

type t = {
  guard : Ingest.t;
  engine : Engine.t;
  num_objects : int;
  queue : Rfid_model.Types.observation Admission.t;
  query : Query.t;
  checkpoint_every : int;
  hooks : hooks;
  mutable admitted : int;
  mutable paused : bool;
  mutable draining : bool;
  mutable halted : string option;
}

let create ~guard ~engine ~num_objects ?(admit_cap = 1024) ?events_keep
    ?(checkpoint_every = 0) ?(hooks = no_hooks) () =
  if checkpoint_every < 0 then
    invalid_arg "Core.create: checkpoint_every must be >= 0";
  {
    guard;
    engine;
    num_objects;
    queue = Admission.create ~cap:admit_cap;
    query = Query.create ?events_keep ();
    checkpoint_every;
    hooks;
    admitted = 0;
    paused = false;
    draining = false;
    halted = None;
  }

let variant_name t =
  match (Engine.config t.engine).Config.variant with
  | Config.Unfactorized -> "unfactorized"
  | Config.Factorized -> "factorized"
  | Config.Factorized_indexed -> "indexed"
  | Config.Factorized_compressed -> "compressed"

let greeting t =
  Printf.sprintf "RFID-SERVE/1 READY variant=%s objects=%d\n" (variant_name t)
    t.num_objects

let queue_depth t = Admission.length t.queue
let epoch t = Engine.epoch t.engine
let admitted t = t.admitted
let draining t = t.draining
let halted t = t.halted
let engine t = t.engine
let preload_event t ev = Query.record_event t.query ev

(* One queued observation through the guard into the engine. Epoch
   bookkeeping keys off the engine's own clock: a Rejected decision (or
   a duplicate the engine skips) advances nothing and must not count as
   admitted or fire hooks. The query layer needs no notification — it
   drains the engine's change feed on its next query. *)
let step_one t obs =
  let before = Engine.epoch t.engine in
  match Ingest.step_engine t.guard t.engine obs with
  | Error (fault, msg) ->
      t.halted <- Some (Printf.sprintf "%s: %s" (Ingest.fault_name fault) msg)
  | Ok events ->
      let after = Engine.epoch t.engine in
      if after > before then begin
        t.admitted <- t.admitted + 1;
        t.hooks.on_admitted after;
        if events <> [] then begin
          List.iter (Query.record_event t.query) events;
          t.hooks.on_events events
        end;
        if t.checkpoint_every > 0 && t.admitted mod t.checkpoint_every = 0 then
          t.hooks.on_checkpoint t.engine
      end

let tick t ~max_steps =
  if t.paused || t.halted <> None then 0
  else begin
    let steps = ref 0 in
    let continue = ref true in
    while !continue && !steps < max_steps do
      match Admission.take t.queue with
      | None -> continue := false
      | Some obs ->
          step_one t obs;
          incr steps;
          if t.halted <> None then continue := false
    done;
    !steps
  end

(* [SYNC]/[DRAIN] queue processing: ignores the pause latch — both are
   explicit requests to make queued writes visible now. *)
let process_queue t =
  let continue = ref true in
  while !continue do
    match Admission.take t.queue with
    | None -> continue := false
    | Some obs ->
        step_one t obs;
        if t.halted <> None then continue := false
  done

let drain t =
  if not t.draining then begin
    process_queue t;
    if t.halted = None then begin
      (* [flush] emits pending reports but moves no posterior, so the
         query cache stays valid as-is. *)
      let events = Engine.flush t.engine in
      if events <> [] then begin
        List.iter (Query.record_event t.query) events;
        t.hooks.on_events events
      end;
      t.hooks.on_flush_mark ();
      t.hooks.on_checkpoint t.engine
    end;
    t.draining <- true
  end

(* ------------------------------------------------------------------ *)
(* Reply formatting *)

let fstr = Framing.float_str

let err code msg = (Printf.sprintf "ERR %d %s\n" code msg, false)
let ok body = (Printf.sprintf "OK %s\n" body, false)

let halted_reply msg = err 500 (Printf.sprintf "halted: %s" msg)

let handle_put t rest =
  if t.draining then err 410 "draining"
  else
    match t.halted with
    | Some msg -> halted_reply msg
    | None -> (
        match Rfid_model.Trace_io.observation_of_line rest with
        | Error msg -> err 400 msg
        | Ok obs ->
            if Admission.offer t.queue obs then
              ok (string_of_int (Admission.length t.queue))
            else
              ( Printf.sprintf "BUSY %d/%d\n" (Admission.length t.queue)
                  (Admission.capacity t.queue),
                false ))

let handle_sync t =
  match t.halted with
  | Some msg -> halted_reply msg
  | None -> (
      process_queue t;
      match t.halted with
      | Some msg -> halted_reply msg
      | None -> ok (string_of_int (Engine.epoch t.engine)))

let handle_at t rest =
  match int_of_string_opt (String.trim rest) with
  | None -> err 401 "bad-argument: AT takes one object id"
  | Some obj -> (
      match Query.at t.query ~engine:t.engine obj with
      | None -> err 404 (Printf.sprintf "unknown-object %d" obj)
      | Some (loc, sd_xy) ->
          ok
            (Printf.sprintf "%d %d %s %s %s %s" obj (Engine.epoch t.engine)
               (fstr loc.Rfid_geom.Vec3.x) (fstr loc.Rfid_geom.Vec3.y)
               (fstr loc.Rfid_geom.Vec3.z) (fstr sd_xy)))

let handle_near t rest =
  let fields =
    String.split_on_char ' ' (String.trim rest) |> List.filter (fun s -> s <> "")
  in
  let parsed =
    match fields with
    | [ k; x; y ] -> (
        match (int_of_string_opt k, float_of_string_opt x, float_of_string_opt y) with
        | Some k, Some x, Some y -> Some (k, x, y)
        | _ -> None)
    | _ -> None
  in
  match parsed with
  | None -> err 401 "bad-argument: NEAR takes k x y"
  | Some (k, x, y) -> (
      match Query.near t.query ~engine:t.engine ~k ~x ~y with
      | exception Invalid_argument msg -> err 401 (Printf.sprintf "bad-argument: %s" msg)
      | answers ->
          let buf = Buffer.create (16 + (48 * List.length answers)) in
          Buffer.add_string buf (Printf.sprintf "OK %d\n" (List.length answers));
          List.iter
            (fun (a : Query.near_answer) ->
              Buffer.add_string buf (string_of_int a.Query.n_obj);
              Buffer.add_char buf ' ';
              Buffer.add_string buf (fstr a.Query.n_dist);
              Buffer.add_char buf ' ';
              Buffer.add_string buf a.Query.n_xyz;
              Buffer.add_char buf '\n')
            answers;
          (Buffer.contents buf, false))

let handle_range t rest =
  let fields =
    String.split_on_char ' ' (String.trim rest)
    |> List.filter (fun s -> s <> "")
  in
  let parse4 a b c d rest_mass =
    match
      (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c,
       float_of_string_opt d, rest_mass)
    with
    | Some min_x, Some min_y, Some max_x, Some max_y, Some min_mass ->
        Some (min_x, min_y, max_x, max_y, min_mass)
    | _ -> None
  in
  let parsed =
    match fields with
    | [ a; b; c; d ] -> parse4 a b c d (Some 0.01)
    | [ a; b; c; d; m ] -> parse4 a b c d (float_of_string_opt m)
    | _ -> None
  in
  match parsed with
  | None ->
      err 401 "bad-argument: RANGE takes min-x min-y max-x max-y [min-mass]"
  | Some (min_x, min_y, max_x, max_y, min_mass) -> (
      match
        Query.range t.query ~engine:t.engine ~min_x ~min_y ~max_x ~max_y
          ~min_mass
      with
      | exception Invalid_argument msg -> err 401 (Printf.sprintf "bad-argument: %s" msg)
      | answers ->
          let buf = Buffer.create (16 + (48 * List.length answers)) in
          Buffer.add_string buf
            (Printf.sprintf "OK %d\n" (List.length answers));
          List.iter
            (fun (a : Query.answer) ->
              Buffer.add_string buf (string_of_int a.Query.a_obj);
              Buffer.add_char buf ' ';
              Buffer.add_string buf (fstr a.Query.a_mass);
              Buffer.add_char buf ' ';
              Buffer.add_string buf a.Query.a_xyz;
              Buffer.add_char buf '\n')
            answers;
          (Buffer.contents buf, false))

let handle_events t rest =
  match int_of_string_opt (String.trim rest) with
  | None -> err 401 "bad-argument: EVENTS takes one since-epoch"
  | Some since ->
      let events = Query.events_since t.query ~epoch:since in
      let buf = Buffer.create 128 in
      Buffer.add_string buf (Printf.sprintf "OK %d\n" (List.length events));
      List.iter
        (fun ev ->
          Buffer.add_string buf (Format.asprintf "%a\n" Event.pp ev))
        events;
      (Buffer.contents buf, false)

let handle_stats t =
  let s = Engine.stats t.engine in
  let bool b = if b then "1" else "0" in
  let kvs =
    [
      ("epoch", string_of_int (Engine.epoch t.engine));
      ("known_objects", string_of_int (Engine.num_known t.engine));
      ("queue_depth", string_of_int (Admission.length t.queue));
      ("queue_capacity", string_of_int (Admission.capacity t.queue));
      ("admitted", string_of_int t.admitted);
      ("busy_rejections", string_of_int (Admission.overflows t.queue));
      ("events_seen", string_of_int (Query.events_seen t.query));
      ("events_dropped", string_of_int (Query.events_dropped t.query));
      ("paused", bool t.paused);
      ("draining", bool t.draining);
      ("halted", bool (t.halted <> None));
    ]
    @ List.map
        (fun (fault, n) ->
          ("fault." ^ Ingest.fault_name fault, string_of_int n))
        (Ingest.counters t.guard)
    @ [
        ("engine.duplicates_skipped", string_of_int s.Engine.duplicate_epochs_skipped);
        ("engine.out_of_order_dropped", string_of_int s.Engine.out_of_order_dropped);
        ("engine.degraded_epochs", string_of_int s.Engine.degraded_epochs);
        ("engine.degraded_events", string_of_int s.Engine.degraded_events);
      ]
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "OK %d\n" (List.length kvs));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %s\n" k v))
    kvs;
  (Buffer.contents buf, false)

let handle_drain t =
  match t.halted with
  | Some msg -> halted_reply msg
  | None -> (
      drain t;
      match t.halted with
      | Some msg -> halted_reply msg
      | None -> ok (string_of_int (Engine.epoch t.engine)))

let handle_line t line =
  if String.length line > Framing.max_line_bytes then
    err 413 "line too long"
  else
    let line = String.trim line in
    if line = "" then ("", false)
    else
      let cmd, rest =
        match String.index_opt line ' ' with
        | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
        | None -> (line, "")
      in
      match cmd with
      | "PING" -> ok "pong"
      | "PUT" -> handle_put t rest
      | "SYNC" -> handle_sync t
      | "AT" -> handle_at t rest
      | "RANGE" -> handle_range t rest
      | "NEAR" -> handle_near t rest
      | "EVENTS" -> handle_events t rest
      | "STATS" -> handle_stats t
      | "PAUSE" ->
          t.paused <- true;
          ok "paused"
      | "RESUME" ->
          t.paused <- false;
          ok "running"
      | "DRAIN" -> handle_drain t
      | "QUIT" -> ("OK bye\n", true)
      | _ -> err 400 (Printf.sprintf "unknown-command %s" cmd)
