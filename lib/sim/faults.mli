(** Deterministic, seed-keyed corruption of a simulated observation
    stream, so the robustness layer's behavior under realistic input
    faults is measurable in benches and reproducible in tests.

    The fault taxonomy mirrors what mobile RFID deployments actually
    ship (see DESIGN.md §8): dropped and duplicated epochs, reordered
    records, NaN location fixes, sustained positioning outages, and
    spurious reads of tag ids outside the deployment's universe. *)

type spec = {
  drop_prob : float;  (** probability an epoch's record is dropped *)
  duplicate_prob : float;  (** probability a record is emitted twice *)
  nan_fix_prob : float;  (** probability a location fix becomes NaN *)
  spurious_tag_prob : float;
      (** probability a bogus out-of-universe object tag (id >= 10^6)
          is prepended to a record's readings *)
  reorder_prob : float;
      (** probability two adjacent surviving records swap places *)
  outage : (int * int) option;
      (** [(start, len)]: every fix in epochs [start, start+len)
          becomes NaN — a sustained positioning outage *)
}

val none : spec
(** All probabilities zero, no outage: [apply none] is the identity. *)

val make :
  ?drop_prob:float ->
  ?duplicate_prob:float ->
  ?nan_fix_prob:float ->
  ?spurious_tag_prob:float ->
  ?reorder_prob:float ->
  ?outage:int * int ->
  unit ->
  spec
(** @raise Invalid_argument on a probability outside [0, 1] or a
    negative outage bound. *)

val is_none : spec -> bool

val apply :
  spec -> seed:int -> Rfid_model.Types.observation list -> Rfid_model.Types.observation list
(** Corrupt a stream. Deterministic: the same spec, seed and input
    always produce the same output. The result is generally {e not} a
    clean epoch sequence — that is the point; feed it through
    [Rfid_robust.Ingest]. *)

val pp : Format.formatter -> spec -> unit
