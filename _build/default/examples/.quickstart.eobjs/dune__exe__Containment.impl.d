examples/containment.ml: Array Format List Params Printf Rfid_core Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Rfid_stream Trace World
