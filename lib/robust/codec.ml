open Rfid_geom
open Rfid_model
module E = Rfid_core.Engine
module BF = Rfid_core.Basic_filter
module FF = Rfid_core.Factored_filter

let magic = "RCOD"
let version = 1

(* Adler-32 (RFC 1950), hand-rolled so the format needs no zlib
   binding. Deferring the modulo amortizes it: 5552 is the largest
   block for which the 32-bit-safe bound holds (zlib's NMAX). *)
let adler32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.adler32";
  let base = 65521 in
  let a = ref 1 and b = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop do
    let block_end = min stop (!i + 5552) in
    while !i < block_end do
      a := !a + Char.code (String.unsafe_get s !i);
      b := !b + !a;
      incr i
    done;
    a := !a mod base;
    b := !b mod base
  done;
  (!b lsl 16) lor !a

module Prim = struct
  exception Corrupt of int * string

  let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
  let add_i64 b v = Buffer.add_int64_le b v
  let add_int b v = Buffer.add_int64_le b (Int64.of_int v)
  let add_f b v = Buffer.add_int64_le b (Int64.bits_of_float v)
  let add_bool b v = add_u8 b (if v then 1 else 0)

  let add_vec3 b (v : Vec3.t) =
    add_f b v.Vec3.x;
    add_f b v.Vec3.y;
    add_f b v.Vec3.z

  let add_tag b = function
    | Types.Object_tag id ->
        add_u8 b 0;
        add_int b id
    | Types.Shelf_tag id ->
        add_u8 b 1;
        add_int b id

  let add_opt add b = function
    | None -> add_bool b false
    | Some v ->
        add_bool b true;
        add b v

  let add_list add b l =
    add_int b (List.length l);
    List.iter (add b) l

  let add_array add b a =
    add_int b (Array.length a);
    Array.iter (add b) a

  type cursor = { data : string; limit : int; mutable pos : int }

  let cursor ?(pos = 0) ?len data =
    let limit = match len with Some l -> pos + l | None -> String.length data in
    if pos < 0 || limit > String.length data || pos > limit then
      invalid_arg "Codec.Prim.cursor";
    { data; limit; pos }

  let pos c = c.pos
  let remaining c = c.limit - c.pos
  let corrupt c msg = raise (Corrupt (c.pos, msg))

  let need c n =
    if c.limit - c.pos < n then
      corrupt c (Printf.sprintf "truncated: need %d bytes, have %d" n (remaining c))

  let r_u8 c =
    need c 1;
    let v = Char.code (String.unsafe_get c.data c.pos) in
    c.pos <- c.pos + 1;
    v

  let r_i64 c =
    need c 8;
    let v = String.get_int64_le c.data c.pos in
    c.pos <- c.pos + 8;
    v

  let r_int c =
    let v = r_i64 c in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then
      corrupt c (Printf.sprintf "integer %Ld out of native range" v);
    n

  let r_f c = Int64.float_of_bits (r_i64 c)

  let r_bool c =
    match r_u8 c with
    | 0 -> false
    | 1 -> true
    | v -> corrupt c (Printf.sprintf "non-canonical boolean byte %d" v)

  let r_vec3 c =
    let x = r_f c in
    let y = r_f c in
    let z = r_f c in
    Vec3.make x y z

  let r_tag c =
    match r_u8 c with
    | 0 -> Types.Object_tag (r_int c)
    | 1 -> Types.Shelf_tag (r_int c)
    | v -> corrupt c (Printf.sprintf "unknown tag kind %d" v)

  let r_len c ~elem_bytes =
    let n = r_int c in
    if n < 0 then corrupt c (Printf.sprintf "negative length %d" n);
    if n > remaining c / max 1 elem_bytes then
      corrupt c
        (Printf.sprintf "implausible length %d (%d bytes remain)" n (remaining c));
    n

  let r_opt r c = if r_bool c then Some (r c) else None

  let r_list ?(elem_bytes = 1) r c =
    let n = r_len c ~elem_bytes in
    List.init n (fun _ -> r c)

  let r_array ?(elem_bytes = 1) ~dummy r c =
    let n = r_len c ~elem_bytes in
    let a = Array.make n dummy in
    for i = 0 to n - 1 do
      a.(i) <- r c
    done;
    a
end

open Prim

(* ------------------------------------------------------------------ *)
(* Composite writers/readers shared by both snapshot kinds.            *)

let add_reader_state b (r : Reader_state.t) =
  add_vec3 b r.Reader_state.loc;
  add_f b r.Reader_state.heading

let r_reader_state c =
  let loc = r_vec3 c in
  let heading = r_f c in
  Reader_state.make ~loc ~heading

let add_box2 b (box : Box2.t) =
  add_f b box.Box2.min_x;
  add_f b box.Box2.min_y;
  add_f b box.Box2.max_x;
  add_f b box.Box2.max_y

let r_box2 c =
  let at = pos c in
  let min_x = r_f c in
  let min_y = r_f c in
  let max_x = r_f c in
  let max_y = r_f c in
  (* Box2.make enforces finiteness and min <= max; a failure here means
     checksummed-but-nonsensical data, which only a codec bug (or a
     deliberately forged file) can produce — fail cleanly either way. *)
  try Box2.make ~min_x ~min_y ~max_x ~max_y
  with Invalid_argument m -> raise (Corrupt (at, "invalid box: " ^ m))

let add_int_pair b (x, y) =
  add_int b x;
  add_int b y

let r_int_pair c =
  let x = r_int c in
  let y = r_int c in
  (x, y)

let add_floats b (a : float array) = add_array add_f b a
let r_floats c = r_array ~elem_bytes:8 ~dummy:0. r_f c

let add_mat b (m : Rfid_prob.Linalg.mat) = add_array add_floats b m
let r_mat c = r_array ~elem_bytes:8 ~dummy:[||] r_floats c

(* ------------------------------------------------------------------ *)
(* Section framing.

   section := u8 name_len, name, i64 body_len, body, u32 adler32(body)

   Sections appear in a fixed order per snapshot kind; the decoder
   checks the name, the length, and the checksum before interpreting a
   single body byte, so every error message can say which logical part
   of the snapshot went bad and where. *)

let add_section buf name body =
  add_u8 buf (String.length name);
  Buffer.add_string buf name;
  add_int buf (String.length body);
  Buffer.add_string buf body;
  Buffer.add_int32_le buf (Int32.of_int (adler32 body))

let section_error name at msg =
  Error (Printf.sprintf "codec: section %S at offset %d: %s" name at msg)

(* Open the named section in [c]: verify name, length and checksum,
   and return a sub-cursor over the body. [track] records which section
   the decoder is in, so a [Corrupt] raised anywhere inside the body
   readers gets attributed to it in the final error message. *)
let enter_section track c name =
  track := name;
  let at = pos c in
  let n = r_u8 c in
  let got =
    if remaining c < n then corrupt c "truncated section name"
    else begin
      let s = String.sub c.data c.pos n in
      c.pos <- c.pos + n;
      s
    end
  in
  if got <> name then
    raise
      (Corrupt (at, Printf.sprintf "expected section %S, found %S" name got));
  let body_len = r_int c in
  if body_len < 0 || body_len > remaining c - 4 then
    corrupt c (Printf.sprintf "implausible section body length %d" body_len);
  let body_start = pos c in
  c.pos <- c.pos + body_len;
  need c 4;
  let stored = Int32.to_int (String.get_int32_le c.data c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  let actual = adler32 ~pos:body_start ~len:body_len c.data in
  if stored <> actual then
    raise
      (Corrupt
         ( body_start,
           Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" stored
             actual ));
  cursor ~pos:body_start ~len:body_len c.data

(* ------------------------------------------------------------------ *)
(* Basic (joint) filter snapshot.                                      *)

let encode_basic buf (s : BF.snapshot) =
  let body = Buffer.create 256 in
  let take () =
    let r = Buffer.contents body in
    Buffer.clear body;
    r
  in
  add_int body s.BF.s_num_objects;
  add_int body s.BF.s_epoch;
  add_opt add_vec3 body s.BF.s_last_reported;
  add_int body s.BF.s_consecutive_degraded;
  add_int body s.BF.s_degraded_total;
  add_list add_int body s.BF.s_newly_seen;
  add_section buf "meta" (take ());
  add_i64 body s.BF.s_rng;
  add_section buf "rng" (take ());
  add_array
    (fun b (reader, locs, log_w) ->
      add_reader_state b reader;
      add_array add_vec3 b locs;
      add_f b log_w)
    body s.BF.s_particles;
  add_section buf "particles" (take ());
  add_array add_int body s.BF.s_last_read;
  add_array add_vec3 body s.BF.s_last_read_reader;
  add_section buf "scope" (take ())

let decode_basic track c : BF.snapshot =
  let meta = enter_section track c "meta" in
  let s_num_objects = r_int meta in
  let s_epoch = r_int meta in
  let s_last_reported = r_opt r_vec3 meta in
  let s_consecutive_degraded = r_int meta in
  let s_degraded_total = r_int meta in
  let s_newly_seen = r_list ~elem_bytes:8 r_int meta in
  let rng = enter_section track c "rng" in
  let s_rng = r_i64 rng in
  let particles = enter_section track c "particles" in
  let s_particles =
    (* 32-byte reader state + 8-byte locs header + 8-byte weight: the
       per-particle floor even with zero tracked objects. *)
    r_array ~elem_bytes:48 ~dummy:(Reader_state.make ~loc:Vec3.zero ~heading:0., [||], 0.)
      (fun c ->
        let reader = r_reader_state c in
        let locs = r_array ~elem_bytes:24 ~dummy:Vec3.zero r_vec3 c in
        let log_w = r_f c in
        (reader, locs, log_w))
      particles
  in
  let scope = enter_section track c "scope" in
  let s_last_read = r_array ~elem_bytes:8 ~dummy:0 r_int scope in
  let s_last_read_reader = r_array ~elem_bytes:24 ~dummy:Vec3.zero r_vec3 scope in
  {
    BF.s_rng;
    s_num_objects;
    s_particles;
    s_last_reported;
    s_epoch;
    s_last_read;
    s_last_read_reader;
    s_newly_seen;
    s_consecutive_degraded;
    s_degraded_total;
  }

(* ------------------------------------------------------------------ *)
(* Factored filter snapshot.                                           *)

let add_belief b = function
  | FF.Snap_active parts ->
      add_u8 b 0;
      add_array
        (fun b (loc, reader_idx, log_w) ->
          add_vec3 b loc;
          add_int b reader_idx;
          add_f b log_w)
        b parts
  | FF.Snap_compressed (mean, cov) ->
      add_u8 b 1;
      add_floats b mean;
      add_mat b cov

let r_belief c =
  match r_u8 c with
  | 0 ->
      FF.Snap_active
        (r_array ~elem_bytes:40 ~dummy:(Vec3.zero, 0, 0.)
           (fun c ->
             let loc = r_vec3 c in
             let reader_idx = r_int c in
             let log_w = r_f c in
             (loc, reader_idx, log_w))
           c)
  | 1 ->
      let mean = r_floats c in
      let cov = r_mat c in
      FF.Snap_compressed (mean, cov)
  | v -> raise (Corrupt (pos c - 1, Printf.sprintf "unknown belief kind %d" v))

let add_obj b (o : FF.obj_snapshot) =
  add_int b o.FF.so_id;
  add_belief b o.FF.so_belief;
  add_int b o.FF.so_reader_gen;
  add_int b o.FF.so_last_read;
  add_vec3 b o.FF.so_last_read_reader

let r_obj c =
  let so_id = r_int c in
  let so_belief = r_belief c in
  let so_reader_gen = r_int c in
  let so_last_read = r_int c in
  let so_last_read_reader = r_vec3 c in
  { FF.so_id; so_belief; so_reader_gen; so_last_read; so_last_read_reader }

let add_index b (si : FF.index_snapshot) =
  add_list
    (fun b (box, ids) ->
      add_box2 b box;
      add_list add_int b ids)
    b si.FF.si_entries;
  add_list add_int b si.FF.si_pending_objs;
  add_opt add_box2 b si.FF.si_pending_box;
  add_opt add_vec3 b si.FF.si_last_insert_loc

let r_index c =
  let si_entries =
    r_list ~elem_bytes:40
      (fun c ->
        let box = r_box2 c in
        let ids = r_list ~elem_bytes:8 r_int c in
        (box, ids))
      c
  in
  let si_pending_objs = r_list ~elem_bytes:8 r_int c in
  let si_pending_box = r_opt r_box2 c in
  let si_last_insert_loc = r_opt r_vec3 c in
  { FF.si_entries; si_pending_objs; si_pending_box; si_last_insert_loc }

let encode_factored buf (s : FF.snapshot) =
  let body = Buffer.create 256 in
  let take () =
    let r = Buffer.contents body in
    Buffer.clear body;
    r
  in
  add_int body s.FF.fs_reader_gen;
  add_int body s.FF.fs_epoch;
  add_opt add_vec3 body s.FF.fs_last_reported;
  add_list add_int body s.FF.fs_newly_seen;
  add_int body s.FF.fs_processed_last;
  add_int body s.FF.fs_consecutive_degraded;
  add_int body s.FF.fs_degraded_total;
  add_section buf "meta" (take ());
  add_i64 body s.FF.fs_rng;
  add_i64 body s.FF.fs_substream;
  add_section buf "rng" (take ());
  add_array
    (fun b (state, log_w) ->
      add_reader_state b state;
      add_f b log_w)
    body s.FF.fs_readers;
  add_section buf "readers" (take ());
  add_list add_obj body s.FF.fs_objects;
  add_section buf "objects" (take ());
  add_opt add_index body s.FF.fs_index;
  add_section buf "index" (take ());
  add_list add_int_pair body s.FF.fs_compress_queue;
  add_section buf "queues" (take ())

let decode_factored track c : FF.snapshot =
  let meta = enter_section track c "meta" in
  let fs_reader_gen = r_int meta in
  let fs_epoch = r_int meta in
  let fs_last_reported = r_opt r_vec3 meta in
  let fs_newly_seen = r_list ~elem_bytes:8 r_int meta in
  let fs_processed_last = r_int meta in
  let fs_consecutive_degraded = r_int meta in
  let fs_degraded_total = r_int meta in
  let rng = enter_section track c "rng" in
  let fs_rng = r_i64 rng in
  let fs_substream = r_i64 rng in
  let readers = enter_section track c "readers" in
  let fs_readers =
    r_array ~elem_bytes:40
      ~dummy:(Reader_state.make ~loc:Vec3.zero ~heading:0., 0.)
      (fun c ->
        let state = r_reader_state c in
        let log_w = r_f c in
        (state, log_w))
      readers
  in
  let objects = enter_section track c "objects" in
  let fs_objects = r_list ~elem_bytes:57 r_obj objects in
  let index = enter_section track c "index" in
  let fs_index = r_opt r_index index in
  let queues = enter_section track c "queues" in
  let fs_compress_queue = r_list ~elem_bytes:16 r_int_pair queues in
  {
    FF.fs_rng;
    fs_substream;
    fs_reader_gen;
    fs_readers;
    fs_objects;
    fs_index;
    fs_compress_queue;
    fs_last_reported;
    fs_epoch;
    fs_newly_seen;
    fs_processed_last;
    fs_consecutive_degraded;
    fs_degraded_total;
  }

(* ------------------------------------------------------------------ *)
(* Engine envelope (shared tail section) and the public entry points.  *)

let encode_engine_section buf (s : E.snapshot) ~basic_count =
  let body = Buffer.create 64 in
  add_int body basic_count;
  add_list add_int_pair body s.E.es_pending;
  add_list add_int body s.E.es_scheduled;
  add_int body s.E.es_dup_skipped;
  add_int body s.E.es_ooo_dropped;
  add_int body s.E.es_degraded_run;
  add_int body s.E.es_degraded_event_count;
  add_section buf "engine" (Buffer.contents body)

let decode_engine_section track c ~filter_of_count =
  let eng = enter_section track c "engine" in
  let basic_count = r_int eng in
  let es_pending = r_list ~elem_bytes:16 r_int_pair eng in
  let es_scheduled = r_list ~elem_bytes:8 r_int eng in
  let es_dup_skipped = r_int eng in
  let es_ooo_dropped = r_int eng in
  let es_degraded_run = r_int eng in
  let es_degraded_event_count = r_int eng in
  {
    E.es_filter = filter_of_count basic_count;
    es_pending;
    es_scheduled;
    es_dup_skipped;
    es_ooo_dropped;
    es_degraded_run;
    es_degraded_event_count;
  }

let encode (s : E.snapshot) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_u8 buf version;
  (match s.E.es_filter with
  | E.Basic_snapshot (fs, n) ->
      add_u8 buf 0;
      encode_basic buf fs;
      encode_engine_section buf s ~basic_count:n
  | E.Factored_snapshot fs ->
      add_u8 buf 1;
      encode_factored buf fs;
      encode_engine_section buf s ~basic_count:0);
  Buffer.contents buf

let decode data =
  let c = cursor data in
  let current = ref "header" in
  try
    if remaining c < 4 || String.sub data 0 4 <> magic then
      Error "codec: bad magic (not an RCOD snapshot)"
    else begin
      c.pos <- 4;
      let v = r_u8 c in
      if v <> version then
        Error
          (Printf.sprintf "codec: unsupported version %d (this build reads v%d)"
             v version)
      else begin
        let snapshot =
          match r_u8 c with
          | 0 ->
              let fs = decode_basic current c in
              decode_engine_section current c
                ~filter_of_count:(fun n -> E.Basic_snapshot (fs, n))
          | 1 ->
              let fs = decode_factored current c in
              decode_engine_section current c
                ~filter_of_count:(fun _ -> E.Factored_snapshot fs)
          | k ->
              raise
                (Corrupt (pos c - 1, Printf.sprintf "unknown snapshot kind %d" k))
        in
        if remaining c <> 0 then
          Error
            (Printf.sprintf "codec: %d trailing bytes after the last section"
               (remaining c))
        else Ok snapshot
      end
    end
  with
  | Corrupt (at, msg) -> section_error !current at msg
  | Invalid_argument msg | Failure msg ->
      section_error !current (pos c) ("unexpected: " ^ msg)
