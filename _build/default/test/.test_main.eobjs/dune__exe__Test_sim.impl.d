test/test_sim.ml: Alcotest Array Box2 Float Hashtbl Lab List Location_sensing Reader_state Rfid_geom Rfid_model Rfid_prob Rfid_sim Trace Trace_gen Truth_sensor Types Util Vec3 Warehouse World
