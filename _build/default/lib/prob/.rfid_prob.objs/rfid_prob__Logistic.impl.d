lib/prob/logistic.ml: Array Float Fun Linalg List
