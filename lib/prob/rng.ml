(* State representation: the single 64-bit SplitMix64 state, bit-cast
   into a 1-element [floatarray]. The obvious [{ mutable state : int64 }]
   boxes a fresh [Int64] on every write — ~3 words per draw, and the
   filters draw millions of times per run. A [floatarray] slot is a raw
   64-bit cell, and [Int64.bits_of_float] / [Int64.float_of_bits] are
   [@@unboxed] [@@noalloc] externals, so advancing the state is a pure
   register/memory move: no FP arithmetic ever touches the value, every
   64-bit pattern (including NaN payloads) round-trips exactly.

   The sampling hot paths ([float], [int], [bernoulli], [uniform],
   [gaussian], [exponential], [for_key_into]) hand-inline the
   advance-and-mix sequence: without flambda, even a same-module call to
   a [mix64] helper boxes its [int64] argument, intermediates and result.
   The inlined bodies are the original [bits64]/[mix64] operations
   verbatim, in the same order, so streams are bit-identical to the
   record-based implementation. Cold paths (create/split/checkpointing)
   keep the shared helper. *)
type t = floatarray

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from SplitMix64: xor-shift multiply mixing of the Weyl
   counter. Constants are Stafford's Mix13 variant. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_state s =
  let t = Float.Array.create 1 in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  t

let state t = Int64.bits_of_float (Float.Array.unsafe_get t 0)
let set_state t s = Float.Array.unsafe_set t 0 (Int64.float_of_bits s)

let create ~seed = of_state (mix64 (Int64.of_int seed))
let copy t = of_state (state t)

let bits64 t =
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  mix64 s

let split t = of_state (mix64 (bits64 t))

(* Keyed substream derivation: a pure function of the base state and the
   key — the base generator is NOT advanced, so the substream for a
   given key is the same no matter how many other substreams were
   derived before it, in what order, or on which domain. Two mixing
   rounds separate keys that differ in few bits (consecutive object ids
   and epochs are exactly that case). *)
let for_key t ~key =
  let s = mix64 (Int64.add (state t) (Int64.mul golden_gamma key)) in
  of_state (mix64 (Int64.logxor s golden_gamma))

(* Allocation-free [for_key]: same pure state derivation, written into a
   caller-owned generator (a scratch-arena slot in the filter hot
   paths). [mix64] inlined twice — see the header comment. *)
let for_key_into t ~key dst =
  let z = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) (Int64.mul golden_gamma key) in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  let z = Int64.logxor z golden_gamma in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  Float.Array.unsafe_set dst 0 (Int64.float_of_bits z)

(* Pack two non-negative ints into one key. The first component is
   spread by a large odd multiplier, so distinct (id, epoch) pairs with
   small components — the only ones that occur — map to distinct keys
   far apart in key space. *)
let key_pair a b = Int64.(add (mul (of_int a) 0x2545F4914F6CDD1DL) (of_int b))

(* 53 random bits scaled into [0,1). Advance + mix inlined. *)
let float t =
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

let uniform t ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Rng.uniform: lo > hi";
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53 in
  lo +. ((hi -. lo) *. u)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-38 for any
     bound below 2^24, and all our bounds are small. Keep 62 bits so the
     value is a non-negative OCaml int. *)
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  let bits = Int64.to_int (Int64.shift_right_logical z 2) in
  bits mod n

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53 in
  u < p

let gaussian t ?(mu = 0.) ?(sigma = 1.) () =
  if sigma < 0. then invalid_arg "Rng.gaussian: negative sigma";
  (* Marsaglia polar method; the second deviate is discarded to keep the
     generator state independent of call interleaving. The rejection
     loop is a [while] (not a recursive closure, which would allocate)
     and the uniform draws are inlined; the draw sequence and arithmetic
     match the original recursive formulation exactly. *)
  let result = ref 0. in
  let rejected = ref true in
  while !rejected do
    let s1 = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
    Float.Array.unsafe_set t 0 (Int64.float_of_bits s1);
    let z = Int64.(mul (logxor s1 (shift_right_logical s1 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    let z = Int64.(logxor z (shift_right_logical z 31)) in
    let u = (2. *. (Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53)) -. 1. in
    let s2 = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
    Float.Array.unsafe_set t 0 (Int64.float_of_bits s2);
    let z = Int64.(mul (logxor s2 (shift_right_logical s2 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    let z = Int64.(logxor z (shift_right_logical z 31)) in
    let v = (2. *. (Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53)) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if not (s >= 1. || s = 0.) then begin
      result := u *. sqrt (-2. *. log s /. s);
      rejected := false
    end
  done;
  mu +. (sigma *. !result)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let s = Int64.add (Int64.bits_of_float (Float.Array.unsafe_get t 0)) golden_gamma in
  Float.Array.unsafe_set t 0 (Int64.float_of_bits s);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53 in
  -.log1p (-.u) /. rate

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let categorical t w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.categorical: empty weights";
  (* for-loop: [Array.fold_left] boxes the float accumulator on every
     element, and this runs once per drawn pointer in the filters. *)
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. Array.unsafe_get w i
  done;
  let total = !total in
  if not (total > 0.) then invalid_arg "Rng.categorical: weights sum to 0";
  let u = float t *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.
