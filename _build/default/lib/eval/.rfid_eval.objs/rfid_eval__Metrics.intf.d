lib/eval/metrics.mli: Format Rfid_core Rfid_model
