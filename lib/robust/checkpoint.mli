(** Durable engine checkpoints, so a long-running inference process can
    be killed and resumed without replaying its whole input — and
    resume {e bit-identically}: the snapshot captures every piece of
    dynamic state (RNG streams included), so the event stream after a
    resume equals the uninterrupted one exactly.

    Format: a two-line text header — magic + version, then
    [epoch=<E> bytes=<N> adler32=<checksum>] — followed by [N] bytes of
    marshaled {!Rfid_core.Engine.snapshot}. The checksum is verified on
    load, so a truncated or corrupted file yields a clean [Error]
    rather than a garbage engine state. Checkpoints are
    version-stamped; a file from a different format version is refused.

    Checkpoints are written atomically (write to [path ^ ".tmp"], then
    rename), so a crash during {!save} cannot destroy the previous
    checkpoint at [path]. *)

val version : int
(** Current checkpoint format version, stamped into the header of
    every file {!save} writes; {!load} refuses any other version. Bump
    it whenever the snapshot's marshaled shape changes. *)

val save : path:string -> Rfid_core.Engine.snapshot -> unit
(** Write a checkpoint atomically (via [path ^ ".tmp"] + rename).
    @raise Sys_error if the file cannot be written. *)

val load : path:string -> (Rfid_core.Engine.snapshot, string) result
(** Read and verify a checkpoint. All failure modes — missing file,
    wrong magic, unsupported version, truncation, checksum mismatch,
    undecodable payload — return [Error] with a descriptive message. *)

val load_exn : path:string -> Rfid_core.Engine.snapshot
(** @raise Failure on any [Error] from {!load}. *)
