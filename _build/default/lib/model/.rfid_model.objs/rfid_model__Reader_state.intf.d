lib/model/reader_state.mli: Format Rfid_geom
