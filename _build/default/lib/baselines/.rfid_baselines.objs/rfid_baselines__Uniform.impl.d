lib/baselines/uniform.ml: Hashtbl List Option Rfid_core Rfid_geom Rfid_model Rfid_prob Smurf Types
