(** Static description of the monitored storage area: shelves, some of
    which carry a tag at a known location (§II-A "since the shelves are
    at fixed locations, we assume that the precise locations of their
    tags are also known a priori"). Objects live {e on} shelves; their
    locations are the hidden state that inference estimates.

    A shelf's [tag] may be [None]: the shelf geometry is still known
    (it shapes the object-location prior) but contributes no reference
    tag — calibration experiments vary the number of known tags this
    way. *)

type shelf = {
  shelf_id : int;
  surface : Rfid_geom.Box2.t;  (** area an object on this shelf can occupy *)
  height : float;  (** z coordinate of tags and objects on this shelf *)
  tag : Rfid_geom.Vec3.t option;  (** known location of the shelf's tag, if any *)
}

type t

val create : shelf list -> t
(** @raise Invalid_argument on duplicate shelf ids or an empty list. *)

val shelves : t -> shelf array
val num_shelves : t -> int

val shelf_tag_location : t -> int -> Rfid_geom.Vec3.t
(** Location of shelf tag [i]. @raise Not_found for unknown or untagged
    shelf ids. *)

val shelf_tags : t -> (Types.tag * Rfid_geom.Vec3.t) list
(** All {e tagged} shelves, as [(Shelf_tag id, location)]. *)

val with_shelf_tags : t -> keep:int list -> t
(** Copy of the world keeping only the listed shelf ids' tags (geometry
    unchanged) — the Fig. 5(e) "number of shelf tags used in learning"
    knob. *)

val sample_on_shelves : t -> Rfid_prob.Rng.t -> Rfid_geom.Vec3.t
(** Uniform location over the union of shelf surfaces (area-weighted
    shelf choice, then uniform in the box, z = shelf height). This is
    the object-location prior and the "new location distributed
    uniformly across all shelves" move distribution of §III-A. *)

val contains : t -> Rfid_geom.Vec3.t -> bool
(** Is the XY point on some shelf surface? *)

val clamp_to_shelves : t -> Rfid_geom.Vec3.t -> Rfid_geom.Vec3.t
(** Nearest point (XY) on any shelf surface; identity when already on a
    shelf. Used to keep proposed particle locations physical. *)

val bounding_box : t -> Rfid_geom.Box2.t
(** Box enclosing all shelf surfaces. *)

val total_area : t -> float
