open Rfid_geom

type t = { bias : Vec3.t; sigma : Vec3.t }

let create ?(bias = Vec3.zero) ?(sigma = Vec3.make 0.01 0.01 0.01) () =
  if sigma.Vec3.x < 0. || sigma.Vec3.y < 0. || sigma.Vec3.z < 0. then
    invalid_arg "Location_sensing.create: negative sigma";
  { bias; sigma }

let default = create ()

let sample_report t rng true_loc =
  let open Rfid_prob in
  Vec3.add (Vec3.add true_loc t.bias)
    (Vec3.make
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.x ())
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.y ())
       (Rng.gaussian rng ~sigma:t.sigma.Vec3.z ()))

(* A zero sigma on an axis means that axis is not observed (e.g. a 2-D
   positioning system reporting a constant z): it contributes nothing,
   rather than collapsing every particle's weight to -infinity. *)
let gauss_log_pdf ~sigma x =
  if sigma = 0. then 0.
  else
    Rfid_prob.Gaussian.Univariate.log_pdf
      (Rfid_prob.Gaussian.Univariate.create ~mu:0. ~sigma)
      x

let log_pdf t ~true_loc ~reported =
  let d = Vec3.sub reported (Vec3.add true_loc t.bias) in
  gauss_log_pdf ~sigma:t.sigma.Vec3.x d.Vec3.x
  +. gauss_log_pdf ~sigma:t.sigma.Vec3.y d.Vec3.y
  +. gauss_log_pdf ~sigma:t.sigma.Vec3.z d.Vec3.z

(* Batched variant for the reader-weighting hot path: one cross-module
   call per epoch against the sensor memo's pose slabs instead of one
   [log_pdf] per reader particle (which, without flambda, boxes a
   [Vec3.t] pair and three floats per call). The per-axis term is
   [gauss_log_pdf] with [Gaussian.Univariate.log_pdf] at mu = 0 inlined
   textually — same constant, same operation order — and the three
   terms sum left-to-right as in [log_pdf], so each written value is
   bit-identical. *)
let log_2pi = log (2. *. Float.pi)

let log_pdf_poses_into t ~reported ~rx ~ry ~rz ~n out =
  if Array.length out < n then
    invalid_arg "Location_sensing.log_pdf_poses_into: output shorter than pose set";
  let bx = t.bias.Vec3.x and by = t.bias.Vec3.y and bz = t.bias.Vec3.z in
  let sx = t.sigma.Vec3.x and sy = t.sigma.Vec3.y and sz = t.sigma.Vec3.z in
  let px = reported.Vec3.x and py = reported.Vec3.y and pz = reported.Vec3.z in
  for i = 0 to n - 1 do
    let dx = px -. (Float.Array.unsafe_get rx i +. bx) in
    let dy = py -. (Float.Array.unsafe_get ry i +. by) in
    let dz = pz -. (Float.Array.unsafe_get rz i +. bz) in
    let gx =
      if sx = 0. then 0.
      else begin
        let z = dx /. sx in
        (-0.5 *. ((z *. z) +. log_2pi)) -. log sx
      end
    in
    let gy =
      if sy = 0. then 0.
      else begin
        let z = dy /. sy in
        (-0.5 *. ((z *. z) +. log_2pi)) -. log sy
      end
    in
    let gz =
      if sz = 0. then 0.
      else begin
        let z = dz /. sz in
        (-0.5 *. ((z *. z) +. log_2pi)) -. log sz
      end
    in
    Array.unsafe_set out i (gx +. gy +. gz)
  done
