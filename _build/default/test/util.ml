(* Shared helpers for the test suite. *)

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check (float eps)) what expected actual

let check_close ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g within %.2g, got %.9g" what expected eps actual

let check_in_range what ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.6g not in [%.6g, %.6g]" what actual lo hi

let check_raises_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rng ?(seed = 1234) () = Rfid_prob.Rng.create ~seed

(* A small fixed world: two 4x10 ft shelves along y, tags on the front
   edge. *)
let two_shelf_world () =
  let open Rfid_geom in
  Rfid_model.World.create
    [
      {
        Rfid_model.World.shelf_id = 0;
        surface = Box2.make ~min_x:2. ~min_y:0. ~max_x:4. ~max_y:10.;
        height = 0.;
        tag = Some (Vec3.make 2. 5. 0.);
      };
      {
        Rfid_model.World.shelf_id = 1;
        surface = Box2.make ~min_x:2. ~min_y:10. ~max_x:4. ~max_y:20.;
        height = 0.;
        tag = Some (Vec3.make 2. 15. 0.);
      };
    ]

let vec3 = Rfid_geom.Vec3.make

let check_vec3 ?(eps = 1e-6) what (expected : Rfid_geom.Vec3.t) (actual : Rfid_geom.Vec3.t) =
  if not (Rfid_geom.Vec3.equal ~eps expected actual) then
    Alcotest.failf "%s: expected %s got %s" what
      (Format.asprintf "%a" Rfid_geom.Vec3.pp expected)
      (Format.asprintf "%a" Rfid_geom.Vec3.pp actual)
