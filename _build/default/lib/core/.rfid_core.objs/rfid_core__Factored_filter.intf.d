lib/core/factored_filter.mli: Config Rfid_geom Rfid_model Rfid_prob
