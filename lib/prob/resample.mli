(** Resampling schemes for particle filters (§IV-A step 2, "reproduce
    the highest-weight" particles).

    All schemes take normalized weights and return an array of source
    indices; the caller materializes the new particle set by indexing.
    Systematic resampling is the default throughout the library: it has
    the lowest Monte-Carlo variance of the simple schemes and costs one
    uniform draw per resampling event. *)

val multinomial : Rng.t -> float array -> n:int -> int array
(** [n] i.i.d. draws from the categorical distribution of the weights. *)

val systematic : Rng.t -> float array -> n:int -> int array
(** Single uniform offset, [n] evenly spaced points through the
    cumulative weights. Deterministic given the offset; indices come out
    sorted. *)

val residual : Rng.t -> float array -> n:int -> int array
(** Deterministic copies of [floor (n * w_i)] per particle, multinomial
    on the remainder. *)

(** {1 In-place variants}

    Identical RNG consumption and identical output indices to the
    allocating schemes above, written into a caller buffer (of length
    at least [n]) — the filter hot paths resample into scratch-arena
    buffers with zero steady-state allocation.
    @raise Invalid_argument if the buffer is shorter than [n]. *)

val multinomial_into : Rng.t -> float array -> n:int -> out:int array -> unit
val systematic_into : Rng.t -> float array -> n:int -> out:int array -> unit
val residual_into : Rng.t -> float array -> n:int -> out:int array -> unit

val ess_below : float array -> ratio:float -> bool
(** [ess_below w ~ratio] is true when the effective sample size of the
    normalized weights [w] has fallen below [ratio *. length w] — the
    standard trigger for resampling (we use ratio = 0.5 by default at
    call sites). *)
