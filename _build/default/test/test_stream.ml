open Rfid_stream
open Rfid_core

let ev ~epoch ~obj ~x ~y = Event.make ~epoch ~obj ~loc:(Util.vec3 x y 0.) ()

(* Window *)

let test_window_eviction () =
  let w = Window.create ~size:3 in
  Window.push w ~epoch:0 "a";
  Window.push w ~epoch:1 "b";
  Window.push w ~epoch:2 "c";
  Alcotest.(check int) "full" 3 (Window.length w);
  Window.push w ~epoch:3 "d";
  Alcotest.(check (list (pair int string))) "oldest evicted"
    [ (1, "b"); (2, "c"); (3, "d") ]
    (Window.contents w);
  Window.advance w ~epoch:10;
  Alcotest.(check int) "advance evicts all" 0 (Window.length w)

let test_window_same_epoch_multi () =
  let w = Window.create ~size:2 in
  Window.push w ~epoch:5 1;
  Window.push w ~epoch:5 2;
  Alcotest.(check int) "both kept" 2 (Window.length w);
  Util.check_raises_invalid "regression" (fun () -> Window.push w ~epoch:4 3);
  Util.check_raises_invalid "bad size" (fun () -> ignore (Window.create ~size:0))

let test_window_fold () =
  let w = Window.create ~size:10 in
  List.iter (fun i -> Window.push w ~epoch:i i) [ 1; 2; 3 ];
  Alcotest.(check int) "fold sum" 6 (Window.fold w ~init:0 ~f:(fun acc _ v -> acc + v))

(* Location update query *)

let test_location_update_istream () =
  let q = Location_update.create () in
  (* First sighting emits with no previous. *)
  (match Location_update.push q (ev ~epoch:0 ~obj:1 ~x:1. ~y:1.) with
  | Some u ->
      Alcotest.(check bool) "no prev" true (u.Location_update.u_prev = None)
  | None -> Alcotest.fail "first sighting must emit");
  (* Same location: silent. *)
  Alcotest.(check bool) "unchanged silent" true
    (Location_update.push q (ev ~epoch:1 ~obj:1 ~x:1. ~y:1.) = None);
  (* Moved: emits with previous location. *)
  (match Location_update.push q (ev ~epoch:2 ~obj:1 ~x:4. ~y:1.) with
  | Some u -> (
      match u.Location_update.u_prev with
      | Some p -> Util.check_vec3 "prev location" (Util.vec3 1. 1. 0.) p
      | None -> Alcotest.fail "expected prev")
  | None -> Alcotest.fail "move must emit");
  (* Partitioned by tag: another object is independent. *)
  Alcotest.(check bool) "other object emits" true
    (Location_update.push q (ev ~epoch:3 ~obj:2 ~x:1. ~y:1.) <> None)

let test_location_update_threshold () =
  let q = Location_update.create ~min_change:0.5 () in
  ignore (Location_update.push q (ev ~epoch:0 ~obj:1 ~x:0. ~y:0.));
  Alcotest.(check bool) "sub-threshold jitter silent" true
    (Location_update.push q (ev ~epoch:1 ~obj:1 ~x:0.3 ~y:0.) = None);
  Alcotest.(check bool) "above threshold emits" true
    (Location_update.push q (ev ~epoch:2 ~obj:1 ~x:1.0 ~y:0.) <> None);
  Util.check_vec3 "current state" (Util.vec3 1. 0. 0.)
    (Option.get (Location_update.current q 1))

(* Fire code query *)

let weight_of _ = 60.

let test_fire_code_triggers () =
  let q = Fire_code.create (Fire_code.default_config ~weight_of) in
  (* Three 60-lb objects land in the same square foot within the window:
     180 <= 200, no violation; the fourth pushes it to 240. *)
  let vs1 = Fire_code.push q (ev ~epoch:0 ~obj:1 ~x:2.2 ~y:3.3) in
  let vs2 = Fire_code.push q (ev ~epoch:1 ~obj:2 ~x:2.5 ~y:3.7) in
  let vs3 = Fire_code.push q (ev ~epoch:2 ~obj:3 ~x:2.9 ~y:3.1) in
  Alcotest.(check int) "no violation under limit" 0
    (List.length vs1 + List.length vs2 + List.length vs3);
  (match Fire_code.push q (ev ~epoch:3 ~obj:4 ~x:2.1 ~y:3.9) with
  | [ v ] ->
      Alcotest.(check (pair int int)) "cell" (2, 3) v.Fire_code.v_cell;
      Util.check_close "total weight" 240. v.Fire_code.v_weight;
      Alcotest.(check (list int)) "objects" [ 1; 2; 3; 4 ] v.Fire_code.v_objects
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs))

let test_fire_code_window_expiry () =
  let q = Fire_code.create (Fire_code.default_config ~weight_of) in
  ignore (Fire_code.push q (ev ~epoch:0 ~obj:1 ~x:2.2 ~y:3.3));
  ignore (Fire_code.push q (ev ~epoch:0 ~obj:2 ~x:2.5 ~y:3.7));
  ignore (Fire_code.push q (ev ~epoch:0 ~obj:3 ~x:2.9 ~y:3.1));
  (* 10 epochs later the old events have left the 5-epoch window; a new
     60-lb object alone cannot violate. *)
  let vs = Fire_code.push q (ev ~epoch:10 ~obj:4 ~x:2.1 ~y:3.9) in
  Alcotest.(check int) "expired events don't count" 0 (List.length vs)

let test_fire_code_relocation_supersedes () =
  let q = Fire_code.create (Fire_code.default_config ~weight_of) in
  ignore (Fire_code.push q (ev ~epoch:0 ~obj:1 ~x:2.2 ~y:3.3));
  ignore (Fire_code.push q (ev ~epoch:1 ~obj:2 ~x:2.5 ~y:3.7));
  ignore (Fire_code.push q (ev ~epoch:2 ~obj:3 ~x:2.9 ~y:3.1));
  (* Object 1 moves to another cell; the fourth object arrives in the
     original cell — but now only 3 * 60 = 180 lbs there. *)
  ignore (Fire_code.push q (ev ~epoch:3 ~obj:1 ~x:9.9 ~y:9.9));
  let vs = Fire_code.push q (ev ~epoch:4 ~obj:4 ~x:2.1 ~y:3.9) in
  Alcotest.(check int) "moved object no longer counts" 0 (List.length vs)

let test_fire_code_cell_of () =
  Alcotest.(check (pair int int)) "positive" (2, 3)
    (Fire_code.cell_of (Util.vec3 2.7 3.1 0.));
  Alcotest.(check (pair int int)) "negative floors down" (-3, 0)
    (Fire_code.cell_of (Util.vec3 (-2.1) 0.5 0.))

let test_fire_code_run () =
  let q = Fire_code.create (Fire_code.default_config ~weight_of) in
  let events = List.init 4 (fun i -> ev ~epoch:i ~obj:i ~x:2.5 ~y:3.5) in
  let vs = Fire_code.run q events in
  Alcotest.(check int) "one violation in batch" 1 (List.length vs);
  ignore (Format.asprintf "%a" Fire_code.pp_violation (List.hd vs))

(* Misplaced-inventory query *)

let home_of obj =
  (* Objects 0-4 live in [0,5]x[0,5]; object 9 has no planogram slot. *)
  if obj = 9 then None
  else Some (Rfid_geom.Box2.make ~min_x:0. ~min_y:0. ~max_x:5. ~max_y:5.)

let test_misplaced_debounce () =
  let q = Misplaced.create ~home:home_of () in
  (* One out-of-place report: no alert yet (debounce = 2). *)
  Alcotest.(check bool) "first strike silent" true
    (Misplaced.push q (ev ~epoch:0 ~obj:1 ~x:9. ~y:9.) = None);
  (* Second consecutive: alert. *)
  (match Misplaced.push q (ev ~epoch:1 ~obj:1 ~x:9. ~y:9.) with
  | Some a ->
      Alcotest.(check bool) "kind" true (a.Misplaced.a_kind = `Misplaced);
      Util.check_close ~eps:1e-6 "distance outside" (sqrt 32.) a.Misplaced.a_distance
  | None -> Alcotest.fail "expected alert");
  Alcotest.(check (list int)) "tracked" [ 1 ] (Misplaced.currently_misplaced q);
  (* No duplicate alert while still away. *)
  Alcotest.(check bool) "no re-alert" true
    (Misplaced.push q (ev ~epoch:2 ~obj:1 ~x:9. ~y:9.) = None);
  (* Coming home emits a clear notice. *)
  (match Misplaced.push q (ev ~epoch:3 ~obj:1 ~x:2. ~y:2.) with
  | Some a -> Alcotest.(check bool) "cleared" true (a.Misplaced.a_kind = `Back_in_place)
  | None -> Alcotest.fail "expected back-in-place");
  Alcotest.(check (list int)) "none tracked" [] (Misplaced.currently_misplaced q)

let test_misplaced_noise_resets () =
  let q = Misplaced.create ~home:home_of () in
  ignore (Misplaced.push q (ev ~epoch:0 ~obj:2 ~x:9. ~y:9.));
  (* An in-place report between strikes resets the counter. *)
  ignore (Misplaced.push q (ev ~epoch:1 ~obj:2 ~x:1. ~y:1.));
  Alcotest.(check bool) "strike reset" true
    (Misplaced.push q (ev ~epoch:2 ~obj:2 ~x:9. ~y:9.) = None)

let test_misplaced_tolerance_and_unassigned () =
  let q =
    Misplaced.create
      ~config:{ Misplaced.tolerance = 1.0; confirmations = 1 }
      ~home:home_of ()
  in
  (* 0.8 ft outside the box but inside the tolerance: fine. *)
  Alcotest.(check bool) "within tolerance" true
    (Misplaced.push q (ev ~epoch:0 ~obj:3 ~x:5.8 ~y:2.) = None);
  (* Unassigned objects never alert. *)
  Alcotest.(check bool) "no planogram, no alert" true
    (Misplaced.push q (ev ~epoch:1 ~obj:9 ~x:99. ~y:99.) = None);
  Util.check_raises_invalid "bad config" (fun () ->
      ignore
        (Misplaced.create
           ~config:{ Misplaced.tolerance = 0.; confirmations = 1 }
           ~home:home_of ()))

let suite =
  ( "stream",
    [
      Alcotest.test_case "window eviction" `Quick test_window_eviction;
      Alcotest.test_case "window same-epoch entries" `Quick test_window_same_epoch_multi;
      Alcotest.test_case "window fold" `Quick test_window_fold;
      Alcotest.test_case "location update istream" `Quick test_location_update_istream;
      Alcotest.test_case "location update threshold" `Quick
        test_location_update_threshold;
      Alcotest.test_case "fire code triggers" `Quick test_fire_code_triggers;
      Alcotest.test_case "fire code window expiry" `Quick test_fire_code_window_expiry;
      Alcotest.test_case "fire code relocation" `Quick
        test_fire_code_relocation_supersedes;
      Alcotest.test_case "fire code cells" `Quick test_fire_code_cell_of;
      Alcotest.test_case "fire code run" `Quick test_fire_code_run;
      Alcotest.test_case "misplaced debounce and clear" `Quick test_misplaced_debounce;
      Alcotest.test_case "misplaced noise resets" `Quick test_misplaced_noise_resets;
      Alcotest.test_case "misplaced tolerance/unassigned" `Quick
        test_misplaced_tolerance_and_unassigned;
    ] )
