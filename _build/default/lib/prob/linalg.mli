(** Dense linear algebra for the small (d <= 4) systems this library
    needs: covariance matrices of 2-D/3-D locations and the normal
    equations of the logistic-regression fit (d = 5).

    Matrices are [float array array] in row-major order; all functions
    are total over well-formed square inputs and raise
    [Invalid_argument] otherwise. Nothing here is tuned for large d —
    clarity over blocking. *)

type mat = float array array

val identity : int -> mat
val copy : mat -> mat
val transpose : mat -> mat
val mat_mul : mat -> mat -> mat
val mat_vec : mat -> float array -> float array
val add : mat -> mat -> mat
val scale : float -> mat -> mat

val dot : float array -> float array -> float
val outer : float array -> float array -> mat

val cholesky : mat -> mat
(** Lower-triangular [l] with [l * l^T = a] for a symmetric positive
    definite [a]. A tiny jitter (1e-12 on the diagonal) is added once if
    the matrix is only semidefinite — covariances of degenerate particle
    clouds hit this constantly. @raise Invalid_argument if the matrix is
    not square or not positive (semi)definite even after jitter. *)

val solve_cholesky : mat -> float array -> float array
(** [solve_cholesky l b] solves [l * l^T * x = b] given the Cholesky
    factor [l] by forward then backward substitution. *)

val solve_spd : mat -> float array -> float array
(** Solve [a x = b] for symmetric positive definite [a]. *)

val inverse_spd : mat -> mat
(** Inverse of a symmetric positive definite matrix via Cholesky. *)

val log_det_spd : mat -> float
(** Log determinant of a symmetric positive definite matrix. *)

val solve_gauss : mat -> float array -> float array
(** General square solve by Gaussian elimination with partial pivoting
    (used for the Newton step of the logistic fit, whose Hessian is
    negated SPD but may be near-singular). @raise Invalid_argument on a
    singular system. *)
