lib/model/motion_model.mli: Reader_state Rfid_geom Rfid_prob
