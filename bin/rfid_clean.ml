(* rfid_clean: command-line front end.

   Subcommands:
     simulate   generate a warehouse scan and dump the raw streams
     infer      simulate, clean with the inference engine, print events
     calibrate  EM self-calibration on a simulated training trace
     lab        the lab-deployment comparison (ours vs SMURF vs uniform)

   The full table/figure reproduction harness is a separate executable:
   dune exec bench/main.exe. *)

open Cmdliner
open Rfid_model

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let objects_arg =
  Arg.(value & opt int 16 & info [ "objects"; "n" ] ~docv:"N" ~doc:"Number of tagged objects.")

let rounds_arg =
  Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N" ~doc:"Scan rounds over the warehouse.")

let read_rate_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "read-rate" ] ~docv:"R"
        ~doc:"Read rate in the sensor's major detection range (0..1].")

let particles_arg =
  Arg.(
    value
    & opt int 200
    & info [ "particles"; "k" ] ~docv:"K" ~doc:"Particles per object.")

let min_particles_arg =
  (* Same 0-means-auto convention as --domains: 0 resolves to the
     --particles value, which disables adaptation entirely. *)
  Arg.(
    value
    & opt int 0
    & info [ "min-particles" ] ~docv:"K"
        ~doc:
          "Floor of the adaptive per-object particle budget (0 = equal to \
           $(b,--particles), disabling adaptation). When strictly below \
           $(b,--particles), each object's budget walks a doubling ladder \
           between the two driven by its posterior spread: tight posteriors \
           drop to the floor, uncertain ones keep the full budget. Output \
           stays bit-identical across $(b,--domains) values.")

let resample_ess_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "resample-ess" ] ~docv:"R"
        ~doc:
          "Additional ESS cap on every resample: the gather runs only when \
           additionally ESS < R * n. The default 1.0 is vacuous and preserves \
           bit-identical output; lowering it below the 0.5 trigger skips \
           resamples whose weight degeneracy is still mild, trading diversity \
           refresh for throughput.")

let resolve_budget ~particles ~min_particles =
  if min_particles = 0 then particles else min_particles

let domains_arg =
  (* An int conv with auto-detection: 0 asks the runtime how many
     cores this host recommends; negatives are rejected with a clear
     message instead of surfacing as a downstream invalid_arg
     backtrace from Pool.create. *)
  let domains_conv =
    let parse s =
      match int_of_string_opt s with
      | None -> Error (`Msg (Printf.sprintf "invalid domain count %S, expected an integer" s))
      | Some 0 -> Ok (Domain.recommended_domain_count ())
      | Some n when n < 0 ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid domain count %d: must be positive, or 0 for auto-detection"
                  n))
      | Some n -> Ok n
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt domains_conv 1
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the per-object update loop (1 = sequential, 0 = \
           auto-detect from the host's core count). Output is bit-identical \
           for every value.")

let variant_arg =
  let variants =
    [
      ("unfactorized", Rfid_core.Config.Unfactorized);
      ("factorized", Rfid_core.Config.Factorized);
      ("indexed", Rfid_core.Config.Factorized_indexed);
      ("compressed", Rfid_core.Config.Factorized_compressed);
    ]
  in
  Arg.(
    value
    & opt (enum variants) Rfid_core.Config.Factorized_indexed
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:
          "Engine variant: $(b,unfactorized), $(b,factorized), $(b,indexed) \
           (factorized + spatial index), or $(b,compressed) (+ belief \
           compression).")

let build_scenario ~objects ~rounds ~read_rate ~seed =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:read_rate () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed)
  in
  (wh, sensor, trace)

let fitted_params (sensor : Rfid_sim.Truth_sensor.t) =
  let fitted =
    Rfid_learn.Supervised.fit_sensor ~read_prob:sensor.Rfid_sim.Truth_sensor.read_prob
      ~seed:99 ()
  in
  Params.create ~sensor:fitted ()

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate objects rounds read_rate seed out =
  let _, _, trace = build_scenario ~objects ~rounds ~read_rate ~seed in
  let observations = Trace.observations trace in
  match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Trace_io.write_observations oc observations);
      Printf.printf "wrote %d observations (%d objects) to %s\n"
        (List.length observations) trace.Trace.num_objects path
  | None -> Trace_io.write_observations stdout observations

let simulate_cmd =
  let doc =
    "Simulate a warehouse scan; dump the raw synchronized streams as CSV \
     (replayable through the library's Trace_io module)."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the stream to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(const simulate $ objects_arg $ rounds_arg $ read_rate_arg $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* infer                                                               *)

type fault_flags = {
  ff_drop : float;
  ff_nan : float;
  ff_dup : float;
  ff_spurious : float;
  ff_outage_start : int;
  ff_outage_len : int;
  ff_seed : int;
}

let faults_of_flags ff =
  Rfid_sim.Faults.make ~drop_prob:ff.ff_drop ~nan_fix_prob:ff.ff_nan
    ~duplicate_prob:ff.ff_dup ~spurious_tag_prob:ff.ff_spurious
    ?outage:
      (if ff.ff_outage_len > 0 then Some (ff.ff_outage_start, ff.ff_outage_len)
       else None)
    ()

let fault_flags_term =
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "fault-drop" ] ~docv:"P" ~doc:"Drop each observation with probability P.")
  in
  let nan =
    Arg.(
      value & opt float 0.
      & info [ "fault-nan" ] ~docv:"P"
          ~doc:"Replace each location fix with NaN with probability P.")
  in
  let dup =
    Arg.(
      value & opt float 0.
      & info [ "fault-dup" ] ~docv:"P" ~doc:"Duplicate each observation with probability P.")
  in
  let spurious =
    Arg.(
      value & opt float 0.
      & info [ "fault-spurious" ] ~docv:"P"
          ~doc:"Prepend a spurious out-of-universe tag with probability P.")
  in
  let outage_start =
    Arg.(
      value & opt int 0
      & info [ "fault-outage-start" ] ~docv:"E" ~doc:"First epoch of a positioning outage.")
  in
  let outage_len =
    Arg.(
      value & opt int 0
      & info [ "fault-outage-len" ] ~docv:"N"
          ~doc:"Outage length in epochs (0 disables the outage).")
  in
  let fseed =
    Arg.(
      value & opt int 7 & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for fault injection.")
  in
  let mk drop nan dup spurious outage_start outage_len fseed =
    {
      ff_drop = drop;
      ff_nan = nan;
      ff_dup = dup;
      ff_spurious = spurious;
      ff_outage_start = outage_start;
      ff_outage_len = outage_len;
      ff_seed = fseed;
    }
  in
  Term.(const mk $ drop $ nan $ dup $ spurious $ outage_start $ outage_len $ fseed)

let on_ooo_arg =
  Arg.(
    value
    & opt (enum [ ("halt", Rfid_robust.Ingest.Halt); ("drop", Rfid_robust.Ingest.Drop) ])
        Rfid_robust.Ingest.Halt
    & info [ "on-out-of-order" ] ~docv:"POLICY"
        ~doc:"What to do with an out-of-order epoch: $(b,halt) (default) or $(b,drop).")

(* Drive a (possibly corrupted) observation stream through the ingest
   guard into the engine, calling [save_checkpoint] every
   [checkpoint_every] admitted epochs and at exit, and [on_events] with
   each batch of emitted events as they appear (the durable event log
   rides on this, so events hit disk in emission order, before the
   checkpoint that covers them).  Returns the events plus whether the
   run stopped early ([--stop-after] or a halt policy). *)
let guarded_run ?(on_admitted = fun _ -> ()) ?(on_events = fun _ -> ())
    ?(on_flush_mark = fun () -> ()) ~guard ~engine ~save_checkpoint
    ~checkpoint_every ~stop_after observations =
  let events = ref [] in
  let admitted = ref 0 in
  let stopped = ref false in
  (try
     List.iter
       (fun obs ->
         (match stop_after with
         | Some e when Rfid_core.Engine.epoch engine >= e -> raise Exit
         | Some _ | None -> ());
         let before = Rfid_core.Engine.epoch engine in
         match Rfid_robust.Ingest.step_engine guard engine obs with
         | Ok evs ->
             on_events evs;
             events := List.rev_append evs !events;
             if Rfid_core.Engine.epoch engine > before then begin
               incr admitted;
               on_admitted !admitted;
               if checkpoint_every > 0 && !admitted mod checkpoint_every = 0 then
                 save_checkpoint ()
             end
         | Error (_, msg) ->
             prerr_endline msg;
             raise Exit)
       observations
   with Exit -> stopped := true);
  if !stopped then save_checkpoint ()
  else begin
    let final = Rfid_core.Engine.flush engine in
    (* The marker separates replayable step events from end-of-stream
       flush events in the durable log: flush events share the final
       step's epoch, so without it recovery could not tell whether the
       log's tail still needs regenerating (see truncate_events_file). *)
    on_flush_mark ();
    on_events final;
    events := List.rev_append final !events;
    save_checkpoint ()
  end;
  (List.rev !events, !stopped)

(* Chop a durable event log back to the complete lines covered by the
   checkpoint being recovered from (epoch <= [epoch]); everything past
   that — a line torn mid-write by the crash, flush events (behind
   their "# flush" marker, which deliberately fails the epoch parse),
   anything newer than the checkpoint — is regenerated by WAL replay
   and the continued run. *)
let truncate_events_file ~path ~epoch =
  let data =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
  in
  match data with
  | None -> ()
  | Some data ->
      let len = String.length data in
      let keep = ref 0 in
      (try
         let pos = ref 0 in
         while !pos < len do
           match String.index_from data !pos '\n' with
           | exception Not_found -> raise Exit (* torn last line *)
           | nl -> (
               let line = String.sub data !pos (nl - !pos) in
               match Scanf.sscanf line "t=%d" (fun e -> e) with
               | e when e <= epoch ->
                   keep := nl + 1;
                   pos := nl + 1
               | _ -> raise Exit
               | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
                   raise Exit)
         done
       with Exit -> ());
      if !keep <> len then Unix.truncate path !keep

(* Write the collected observability snapshots as one JSON document;
   snapshots are ordered oldest first. *)
let write_metrics_file ~path snapshots =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"schema\": \"obs_snapshots/v1\",\n  \"snapshots\": [\n";
      output_string oc (String.concat ",\n" (List.map (fun s -> "    " ^ s) snapshots));
      output_string oc "\n  ]\n}\n")

let print_stage_summary () =
  let module M = Rfid_obs.Metrics in
  let stages =
    List.filter
      (fun (name, h) ->
        M.histogram_count h > 0
        && String.length name > 6
        && String.sub name 0 6 = "stage.")
      (M.histograms_list M.global)
  in
  if stages <> [] then begin
    Format.printf "stages (wall-clock per admitted epoch):@.";
    List.iter
      (fun (name, h) ->
        Format.printf "  %-22s count=%-6d p50=%.1fus p95=%.1fus p99=%.1fus@." name
          (M.histogram_count h)
          (1e6 *. M.quantile h 0.5)
          (1e6 *. M.quantile h 0.95)
          (1e6 *. M.quantile h 0.99))
      stages
  end

let infer objects rounds read_rate seed variant particles min_particles resample_ess
    domains ff on_ooo checkpoint checkpoint_keep checkpoint_every resume stop_after
    wal wal_fsync_every events_out recover metrics metrics_every =
  (* Scope counters to this run: the registry is process-global and the
     snapshots below must start from zero for their deltas to mean
     anything. *)
  Rfid_obs.Metrics.reset Rfid_obs.Metrics.global;
  let wh, sensor, trace = build_scenario ~objects ~rounds ~read_rate ~seed in
  let world = wh.Rfid_sim.Warehouse.world in
  let params = fitted_params sensor in
  let config =
    Rfid_core.Config.create ~variant ~num_object_particles:particles
      ~min_object_particles:(resolve_budget ~particles ~min_particles)
      ~resample_ess_ratio:resample_ess ~num_domains:domains
      ~drop_out_of_order:(on_ooo = Rfid_robust.Ingest.Drop)
      ()
  in
  let faults = faults_of_flags ff in
  let observations = Trace.observations trace in
  let observations =
    if Rfid_sim.Faults.is_none faults then observations
    else begin
      Format.printf "# injecting faults: %a@." Rfid_sim.Faults.pp faults;
      Rfid_sim.Faults.apply faults ~seed:ff.ff_seed observations
    end
  in
  (if recover && checkpoint = None then
     failwith "--recover needs --checkpoint to know where the checkpoints live");
  let fresh_engine () =
    Rfid_core.Engine.create ~world ~params ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh)
      ~num_objects:objects ~seed ()
  in
  let resume_source = if recover then checkpoint else resume in
  let engine =
    match resume_source with
    | Some path -> (
        (* Either a single checkpoint file or a rotation directory;
           load_auto walks the rotation chain past corrupted files. *)
        match Rfid_robust.Checkpoint.load_auto ~path with
        | Ok snapshot ->
            Format.eprintf "# resuming from %s at epoch %d@." path
              (Rfid_core.Engine.snapshot_epoch snapshot);
            Rfid_core.Engine.restore ~world ~params ~config snapshot
        | Error msg when recover ->
            (* The crash happened before the first checkpoint became
               durable; recovery degenerates to a fresh run. *)
            Format.eprintf "# no loadable checkpoint (%s); recovering from the start@." msg;
            fresh_engine ()
        | Error msg -> failwith msg)
    | None -> fresh_engine ()
  in
  let guard =
    Rfid_robust.Ingest.create
      ~policies:
        { Rfid_robust.Ingest.default_policies with
          Rfid_robust.Ingest.on_out_of_order_epoch = on_ooo }
      ~bounds:(World.bounding_box world) ~max_object_id:objects ()
  in
  (* A run starting from scratch truncates its WAL and event log below;
     stale checkpoints need the same hygiene, or a later crash would
     recover from a previous run's newer state instead of this one's. *)
  (match checkpoint with
  | Some path when resume_source = None ->
      if checkpoint_keep > 1 then Rfid_robust.Checkpoint.clear_rotation ~dir:path
      else
        List.iter
          (fun p -> if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
          [ path; path ^ ".tmp" ]
  | _ -> ());
  (* Recovery, step 1: trim both durable logs back to a consistent
     prefix — the event log to complete lines covered by the restored
     checkpoint, the WAL to its last intact record — before anything
     reopens them for append. *)
  (if recover then begin
     let e0 = Rfid_core.Engine.epoch engine in
     (match events_out with
     | Some path -> truncate_events_file ~path ~epoch:e0
     | None -> ());
     match wal with
     | None -> ()
     | Some path ->
         let tail = Rfid_robust.Wal.read ~path in
         (match tail.Rfid_robust.Wal.note with
         | Some why ->
             Format.eprintf "# wal: %s; discarding %d byte(s) of torn tail@." why
               tail.Rfid_robust.Wal.discarded_bytes
         | None -> ());
         Rfid_robust.Wal.truncate ~path
           ~valid_bytes:tail.Rfid_robust.Wal.valid_bytes
   end);
  let events_fd =
    match events_out with
    | None -> None
    | Some path -> (
        let flags =
          Unix.O_WRONLY :: Unix.O_CREAT
          :: (if recover then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
        in
        match Unix.openfile path flags 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
            raise (Sys_error (path ^ ": " ^ Unix.error_message e))
        | fd -> Some fd)
  in
  let on_events evs =
    match events_fd with
    | None -> ()
    | Some fd ->
        List.iter
          (fun ev ->
            Rfid_robust.Durable.write fd
              (Format.asprintf "%a\n" Rfid_core.Event.pp ev))
          evs
  in
  let on_flush_mark () =
    match events_fd with
    | None -> ()
    | Some fd -> Rfid_robust.Durable.write fd "# flush\n"
  in
  (* Recovery, step 2: replay the WAL entries past the checkpoint
     through a fresh guard, regenerating the lost epochs' events —
     bit-identical, because replayed inputs equal original inputs and
     the checkpoint restored the RNG streams. The journal is attached
     only afterwards, so replayed entries are not logged twice. *)
  let replayed_events =
    if not recover then []
    else
      match wal with
      | None -> []
      | Some path -> (
          let tail = Rfid_robust.Wal.read ~path in
          match Rfid_robust.Wal.replay ~guard ~engine tail.Rfid_robust.Wal.entries with
          | Ok evs ->
              if evs <> [] || tail.Rfid_robust.Wal.entries <> [] then
                Format.eprintf "# wal: replayed %d entr(ies) to epoch %d@."
                  (List.length tail.Rfid_robust.Wal.entries)
                  (Rfid_core.Engine.epoch engine);
              on_events evs;
              evs
          | Error msg -> failwith msg)
  in
  let wal_writer =
    match wal with
    | None -> None
    | Some path ->
        Some
          (Rfid_robust.Wal.create_writer ~append:recover
             ~fsync_every:wal_fsync_every ~path ())
  in
  (match wal_writer with
  | None -> ()
  | Some w ->
      Rfid_core.Engine.set_journal engine
        (Some
           (fun entry ->
             Rfid_robust.Wal.append w
               (match entry with
               | Rfid_core.Engine.Journal_step o -> Rfid_robust.Wal.Step o
               | Rfid_core.Engine.Journal_degraded (e, tags) ->
                   Rfid_robust.Wal.Degraded (e, tags)))));
  let save_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some path ->
        (* Durability barrier: everything the checkpoint's epoch covers
           — WAL records and event lines — must be on disk before the
           checkpoint that supersedes them is published. *)
        (match wal_writer with Some w -> Rfid_robust.Wal.sync w | None -> ());
        (match events_fd with Some fd -> Rfid_robust.Durable.fsync fd | None -> ());
        let snapshot = Rfid_core.Engine.snapshot engine in
        if checkpoint_keep > 1 then
          Rfid_robust.Checkpoint.save_rotating ~dir:path ~keep:checkpoint_keep snapshot
        else Rfid_robust.Checkpoint.save ~path snapshot
  in
  let observations =
    (* After a resume (or recovery replay) the engine has already
       consumed everything up to its current epoch; feed it only the
       remainder. *)
    match resume_source with
    | None -> observations
    | Some _ ->
        let e0 = Rfid_core.Engine.epoch engine in
        List.filter (fun (o : Types.observation) -> o.Types.o_epoch > e0) observations
  in
  let snapshots = ref [] in
  let take_snapshot () =
    snapshots :=
      Rfid_obs.Metrics.dump_json
        ~extra:[ ("epoch", string_of_int (Rfid_core.Engine.epoch engine)) ]
        Rfid_obs.Metrics.global
      :: !snapshots
  in
  let on_admitted n =
    if metrics <> None && metrics_every > 0 && n mod metrics_every = 0 then
      take_snapshot ()
  in
  let t0 = Unix.gettimeofday () in
  let events, stopped =
    guarded_run ~on_admitted ~on_events ~on_flush_mark ~guard ~engine
      ~save_checkpoint ~checkpoint_every ~stop_after observations
  in
  let events = replayed_events @ events in
  (match wal_writer with Some w -> Rfid_robust.Wal.close w | None -> ());
  (match events_fd with
  | Some fd ->
      (try Rfid_robust.Durable.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  if wal <> None then
    (* The crash-test harness reads this to bound its kill offsets. *)
    Printf.eprintf "# durable-bytes=%d\n%!" (Rfid_robust.Durable.total_written ());
  List.iter (fun ev -> Format.printf "%a@." Rfid_core.Event.pp ev) events;
  let stats = Rfid_core.Engine.stats engine in
  Format.printf "@.ingest: %a@." Rfid_robust.Ingest.pp_counters guard;
  Format.printf "engine: %a@." Rfid_core.Engine.pp_stats stats;
  (match metrics with
  | None -> ()
  | Some path ->
      take_snapshot ();
      let snapshots = List.rev !snapshots in
      write_metrics_file ~path snapshots;
      print_stage_summary ();
      Format.printf "metrics: wrote %d snapshot(s) to %s@." (List.length snapshots) path);
  if stopped then
    Format.printf "stopped early at epoch %d%s@."
      (Rfid_core.Engine.epoch engine)
      (match checkpoint with
      | Some path -> Printf.sprintf " (checkpoint saved to %s)" path
      | None -> "")
  else if resume_source = None && Rfid_sim.Faults.is_none faults then begin
    let error = Rfid_eval.Metrics.inference_error events trace in
    Format.printf "%a | %.1fs total@." Rfid_eval.Metrics.pp_error error
      (Unix.gettimeofday () -. t0)
  end

let infer_cmd =
  let doc =
    "Simulate, clean the streams with the inference engine, print events. \
     Supports fault injection ($(b,--fault-)* flags), checkpointing \
     ($(b,--checkpoint), $(b,--checkpoint-every)) and resuming \
     ($(b,--resume)) — a resumed run reproduces the uninterrupted event \
     stream bit-identically."
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Write engine checkpoints to PATH — a single file, or with \
             $(b,--checkpoint-keep) > 1 a rotation directory of \
             $(i,ckpt-<epoch>.bin) files.")
  in
  let checkpoint_keep =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-keep" ] ~docv:"N"
          ~doc:
            "Keep the N newest checkpoints (rotating in a directory); recovery \
             falls back down the chain past a corrupted file. 1 (default) = a \
             single checkpoint file.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Checkpoint every K admitted epochs (0 = only at exit).")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"PATH"
          ~doc:
            "Resume from a checkpoint: a file, or a rotation directory (the \
             newest checkpoint that still verifies wins).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Append each admitted epoch to a write-ahead log at FILE, closing \
             the data-loss window between checkpoints; see $(b,--recover).")
  in
  let wal_fsync_every =
    Arg.(
      value & opt int 8
      & info [ "wal-fsync-every" ] ~docv:"K"
          ~doc:"Force the write-ahead log to disk every K records (min 1).")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Also append cleaned events to FILE durably, in emission order \
             (trimmed and regenerated consistently by $(b,--recover)).")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Recover a crashed run: load the newest valid checkpoint from \
             $(b,--checkpoint), trim the $(b,--wal) and $(b,--events) files to \
             their intact prefixes, replay the logged epochs past the \
             checkpoint, then continue the run — producing the event stream \
             the uninterrupted run would have, bit-identically.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"E"
          ~doc:"Stop (and checkpoint) once the engine reaches epoch E.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write observability snapshots (counters, gauges, per-stage timing \
             histograms) to FILE as JSON and print a per-stage timing summary.")
  in
  let metrics_every =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"K"
          ~doc:
            "With $(b,--metrics), also snapshot every K admitted epochs \
             (0 = only the final snapshot).")
  in
  Cmd.v
    (Cmd.info "infer" ~doc)
    Term.(
      const infer $ objects_arg $ rounds_arg $ read_rate_arg $ seed_arg $ variant_arg
      $ particles_arg $ min_particles_arg $ resample_ess_arg $ domains_arg
      $ fault_flags_term $ on_ooo_arg $ checkpoint $ checkpoint_keep
      $ checkpoint_every $ resume $ stop_after $ wal $ wal_fsync_every $ events_out
      $ recover $ metrics $ metrics_every)

(* ------------------------------------------------------------------ *)
(* calibrate                                                           *)

let calibrate shelf_tags em_iters seed =
  let wh = Rfid_sim.Warehouse.layout ~objects_per_shelf:1 ~num_objects:20 () in
  let keep =
    if shelf_tags = 0 then []
    else List.init shelf_tags (fun i -> i * 20 / shelf_tags)
  in
  let world = World.with_shelf_tags wh.Rfid_sim.Warehouse.world ~keep in
  let truth = Rfid_sim.Truth_sensor.cone () in
  let trace =
    Rfid_sim.Trace_gen.run ~world ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor:truth ())
      (Rfid_prob.Rng.create ~seed)
  in
  let config = Rfid_learn.Calibration.default_config () in
  let config = { config with Rfid_learn.Calibration.em_iters } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world ~init:Params.default ~config
      ~observations:(Trace.observations trace)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader
  in
  Format.printf "learned parameters (EM, %d iterations, %d known tags):@.%a@."
    em_iters shelf_tags Params.pp learned;
  Printf.printf "sensor mean-absolute-error vs true region: %.4f\n"
    (Rfid_learn.Supervised.mean_abs_error learned.Params.sensor
       ~read_prob:truth.Rfid_sim.Truth_sensor.read_prob ())

let calibrate_cmd =
  let doc = "EM self-calibration on a simulated 20-tag training trace." in
  let shelf_tags =
    Arg.(
      value & opt int 4
      & info [ "shelf-tags" ] ~docv:"N" ~doc:"Tags with known locations (0-20).")
  in
  let em_iters =
    Arg.(value & opt int 4 & info [ "em-iters" ] ~docv:"N" ~doc:"EM iterations.")
  in
  Cmd.v (Cmd.info "calibrate" ~doc) Term.(const calibrate $ shelf_tags $ em_iters $ seed_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)

let replay file objects variant particles min_particles resample_ess seed domains
    lenient =
  let ic = open_in file in
  let observations =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        if lenient then begin
          let observations, errors = Trace_io.read_observations_lenient ic in
          List.iter
            (fun (line, msg) -> Printf.eprintf "%s:%d: skipped: %s\n" file line msg)
            errors;
          observations
        end
        else Trace_io.read_observations ic)
  in
  Printf.printf "# replaying %d observations from %s\n%!" (List.length observations) file;
  (* The stream file carries no world description; reconstruct the
     default warehouse geometry for the declared object count (the same
     convention `simulate` used to produce it). *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let params = fitted_params sensor in
  let config =
    Rfid_core.Config.create ~variant ~num_object_particles:particles
      ~min_object_particles:(resolve_budget ~particles ~min_particles)
      ~resample_ess_ratio:resample_ess ~num_domains:domains ()
  in
  let init_reader =
    match observations with
    | o :: _ ->
        Reader_state.make ~loc:o.Types.o_reported_loc ~heading:0.
    | [] -> Rfid_sim.Warehouse.reader_start wh
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params ~config
      ~init_reader ~num_objects:objects ~seed ()
  in
  let events =
    if lenient then begin
      (* A lenient replay should survive whatever the file contains:
         guard the stream and drop (rather than halt on) bad epochs. *)
      let guard =
        Rfid_robust.Ingest.create
          ~policies:
            { Rfid_robust.Ingest.default_policies with
              Rfid_robust.Ingest.on_out_of_order_epoch = Rfid_robust.Ingest.Drop }
          ~max_object_id:objects ()
      in
      let events =
        match Rfid_robust.Ingest.run_engine guard engine observations with
        | Ok events -> events
        | Error (_, msg) -> failwith msg
      in
      Format.eprintf "# ingest: %a@." Rfid_robust.Ingest.pp_counters guard;
      events
    end
    else Rfid_core.Engine.run engine observations
  in
  Trace_io.write_events stdout
    (List.map
       (fun (ev : Rfid_core.Event.t) ->
         (ev.Rfid_core.Event.ev_epoch, ev.Rfid_core.Event.ev_obj, ev.Rfid_core.Event.ev_loc))
       events)

let replay_cmd =
  let doc =
    "Replay a recorded observation stream (see $(b,simulate --out)) through the \
     engine; print cleaned events as CSV."
  in
  let file =
    Arg.(
      required
      & opt (some file) None
      & info [ "in"; "i" ] ~docv:"FILE" ~doc:"Observation stream to replay.")
  in
  let lenient =
    Arg.(
      value & flag
      & info [ "lenient" ]
          ~doc:
            "Skip malformed lines (reported to stderr with line numbers) and \
             guard the stream against epoch/tag/fix faults instead of aborting \
             on the first bad record.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const replay $ file $ objects_arg $ variant_arg $ particles_arg
      $ min_particles_arg $ resample_ess_arg $ seed_arg $ domains_arg $ lenient)

(* ------------------------------------------------------------------ *)
(* lab                                                                 *)

let lab timeout_ms large seed =
  let shelf_size = if large then Rfid_sim.Lab.Large else Rfid_sim.Lab.Small in
  let rig = Rfid_sim.Lab.deployment ~timeout_ms ~shelf_size () in
  let heading_model = Rfid_core.Config.Known_heading Rfid_sim.Lab.heading in
  let train = Rfid_sim.Lab.scan rig ~seed:(seed + 1) in
  let cal = Rfid_learn.Calibration.default_config ~heading_model () in
  let cal = { cal with Rfid_learn.Calibration.em_iters = 3 } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world:rig.Rfid_sim.Lab.world
      ~init:Params.default ~config:cal
      ~observations:(Trace.observations train)
      ~init_reader:train.Trace.steps.(0).Trace.true_reader
  in
  let trace = Rfid_sim.Lab.scan rig ~seed in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:150 ~num_object_particles:300 ~heading_model ()
  in
  let ours = Rfid_eval.Runner.run_engine ~params:learned ~config ~seed trace in
  let range = Float.min 8. (Sensor_model.detection_range learned.Params.sensor) in
  let obs = Trace.observations trace in
  let smurf =
    Rfid_baselines.Smurf.run ~world:rig.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Smurf.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed obs
  in
  let uniform =
    Rfid_baselines.Uniform.run ~world:rig.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Uniform.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed obs
  in
  let line label events =
    let e = Rfid_eval.Metrics.inference_error events trace in
    Printf.printf "%-18s X=%.2f Y=%.2f XY=%.2f ft\n" label e.Rfid_eval.Metrics.mean_x
      e.Rfid_eval.Metrics.mean_y e.Rfid_eval.Metrics.mean_xy
  in
  Printf.printf "lab deployment: timeout %d ms, %s shelf\n" timeout_ms
    (if large then "large" else "small");
  line "our system" ours.Rfid_eval.Runner.events;
  line "SMURF (improved)" smurf;
  line "uniform" uniform

let lab_cmd =
  let doc = "Run the lab-deployment comparison (Fig. 6(b) of the paper)." in
  let timeout =
    Arg.(
      value & opt int 500
      & info [ "timeout" ] ~docv:"MS" ~doc:"Reader timeout: 250, 500 or 750 ms.")
  in
  let large =
    Arg.(value & flag & info [ "large-shelf" ] ~doc:"Use the 2.6 ft imagined shelf.")
  in
  Cmd.v (Cmd.info "lab" ~doc) Term.(const lab $ timeout $ large $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* Parse one durable events-log line back into an event, to reseed the
   server's EVENTS ring on --recover. The log prints through Event.pp
   at fixed (3-decimal) precision, so the reconstruction is lossy in
   the covariance — only sd_xy survives, as a diagonal — but re-printing
   the parsed event yields the original line byte-for-byte, which is
   the property EVENTS replies need across a crash. *)
let event_of_log_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    let degraded =
      let suffix = " [degraded]" in
      let n = String.length line and k = String.length suffix in
      n >= k && String.sub line (n - k) k = suffix
    in
    let mk e o x y z sd =
      let cov =
        Option.map
          (fun s ->
            let v = s *. s in
            [| [| v; 0.; 0. |]; [| 0.; v; 0. |]; [| 0.; 0.; 0. |] |])
          sd
      in
      Rfid_core.Event.make ~epoch:e ~obj:o ~loc:(Rfid_geom.Vec3.make x y z) ?cov
        ~degraded ()
    in
    match
      Scanf.sscanf line "t=%d obj=%d loc=(%f, %f, %f) (sd_xy=%f" (fun e o x y z s ->
          mk e o x y z (Some s))
    with
    | ev -> Some ev
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> (
        match
          Scanf.sscanf line "t=%d obj=%d loc=(%f, %f, %f" (fun e o x y z ->
              mk e o x y z None)
        with
        | ev -> Some ev
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None)

let serve host port objects seed variant particles min_particles resample_ess
    domains admit_cap max_steps_per_tick events_keep checkpoint checkpoint_keep
    checkpoint_every wal wal_fsync_every events_out recover metrics_push
    metrics_push_every =
  Rfid_obs.Metrics.reset Rfid_obs.Metrics.global;
  let boot =
    Rfid_serve.Bootstrap.make ~objects ~seed ~variant ~particles ~min_particles
      ~resample_ess ~domains ()
  in
  (if recover && checkpoint = None then
     failwith "--recover needs --checkpoint to know where the checkpoints live");
  let engine =
    if recover then
      match Rfid_robust.Checkpoint.load_auto ~path:(Option.get checkpoint) with
      | Ok snapshot ->
          Format.eprintf "# resuming from %s at epoch %d@." (Option.get checkpoint)
            (Rfid_core.Engine.snapshot_epoch snapshot);
          Rfid_serve.Bootstrap.restore_engine boot snapshot
      | Error msg ->
          Format.eprintf "# no loadable checkpoint (%s); recovering from the start@."
            msg;
          Rfid_serve.Bootstrap.fresh_engine boot
    else Rfid_serve.Bootstrap.fresh_engine boot
  in
  let guard = Rfid_serve.Bootstrap.fresh_guard boot in
  Rfid_robust.Ingest.advance_timeline guard (Rfid_core.Engine.epoch engine);
  (* Fresh-run hygiene, as in infer: stale checkpoints from a previous
     run must not shadow this one's. *)
  (match checkpoint with
  | Some path when not recover ->
      if checkpoint_keep > 1 then Rfid_robust.Checkpoint.clear_rotation ~dir:path
      else
        List.iter
          (fun p -> if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
          [ path; path ^ ".tmp" ]
  | _ -> ());
  (* Recovery, step 1: trim the durable logs to a consistent prefix
     before reopening them for append (same discipline as infer). *)
  (if recover then begin
     let e0 = Rfid_core.Engine.epoch engine in
     (match events_out with
     | Some path -> truncate_events_file ~path ~epoch:e0
     | None -> ());
     match wal with
     | None -> ()
     | Some path ->
         let tail = Rfid_robust.Wal.read ~path in
         (match tail.Rfid_robust.Wal.note with
         | Some why ->
             Format.eprintf "# wal: %s; discarding %d byte(s) of torn tail@." why
               tail.Rfid_robust.Wal.discarded_bytes
         | None -> ());
         Rfid_robust.Wal.truncate ~path ~valid_bytes:tail.Rfid_robust.Wal.valid_bytes
   end);
  let events_fd =
    match events_out with
    | None -> None
    | Some path -> (
        let flags =
          Unix.O_WRONLY :: Unix.O_CREAT
          :: (if recover then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
        in
        match Unix.openfile path flags 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
            raise (Sys_error (path ^ ": " ^ Unix.error_message e))
        | fd -> Some fd)
  in
  let on_events evs =
    match events_fd with
    | None -> ()
    | Some fd ->
        List.iter
          (fun ev ->
            Rfid_robust.Durable.write fd (Format.asprintf "%a\n" Rfid_core.Event.pp ev))
          evs
  in
  let on_flush_mark () =
    match events_fd with
    | None -> ()
    | Some fd -> Rfid_robust.Durable.write fd "# flush\n"
  in
  (* Recovery, step 2: replay the WAL past the checkpoint; the journal
     is attached only afterwards, so replayed entries are not logged
     twice. *)
  (if recover then
     match wal with
     | None -> ()
     | Some path -> (
         let tail = Rfid_robust.Wal.read ~path in
         match Rfid_robust.Wal.replay ~guard ~engine tail.Rfid_robust.Wal.entries with
         | Ok evs ->
             if evs <> [] || tail.Rfid_robust.Wal.entries <> [] then
               Format.eprintf "# wal: replayed %d entr(ies) to epoch %d@."
                 (List.length tail.Rfid_robust.Wal.entries)
                 (Rfid_core.Engine.epoch engine);
             on_events evs
         | Error msg -> failwith msg));
  let wal_writer =
    match wal with
    | None -> None
    | Some path ->
        Some
          (Rfid_robust.Wal.create_writer ~append:recover ~fsync_every:wal_fsync_every
             ~path ())
  in
  (match wal_writer with
  | None -> ()
  | Some w ->
      Rfid_core.Engine.set_journal engine
        (Some
           (fun entry ->
             Rfid_robust.Wal.append w
               (match entry with
               | Rfid_core.Engine.Journal_step o -> Rfid_robust.Wal.Step o
               | Rfid_core.Engine.Journal_degraded (e, tags) ->
                   Rfid_robust.Wal.Degraded (e, tags)))));
  let save_checkpoint eng =
    match checkpoint with
    | None -> ()
    | Some path ->
        (* Durability barrier (as in infer): WAL records and event
           lines covered by the checkpoint reach disk first. *)
        (match wal_writer with Some w -> Rfid_robust.Wal.sync w | None -> ());
        (match events_fd with Some fd -> Rfid_robust.Durable.fsync fd | None -> ());
        let snapshot = Rfid_core.Engine.snapshot eng in
        if checkpoint_keep > 1 then
          Rfid_robust.Checkpoint.save_rotating ~dir:path ~keep:checkpoint_keep snapshot
        else Rfid_robust.Checkpoint.save ~path snapshot
  in
  let hooks =
    {
      Rfid_serve.Core.on_events;
      on_flush_mark;
      on_admitted = (fun _ -> ());
      on_checkpoint = save_checkpoint;
    }
  in
  let core =
    Rfid_serve.Core.create ~guard ~engine ~num_objects:objects ~admit_cap
      ~events_keep ~checkpoint_every ~hooks ()
  in
  (* Reseed the EVENTS ring from the durable log (which now also holds
     any WAL-regenerated lines), oldest first, so a recovered server
     answers EVENTS with the same history the uninterrupted one
     would — without duplicating any event. *)
  (if recover then
     match events_out with
     | None -> ()
     | Some path -> (
         match open_in_bin path with
         | exception Sys_error _ -> ()
         | ic ->
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () ->
                 try
                   while true do
                     match event_of_log_line (input_line ic) with
                     | Some ev -> Rfid_serve.Core.preload_event core ev
                     | None -> ()
                   done
                 with End_of_file -> ())));
  let pusher =
    match metrics_push with
    | None -> None
    | Some (mhost, mport) -> (
        match Rfid_serve.Push.create ~host:mhost ~port:mport with
        | Ok p -> Some p
        | Error msg -> failwith (Printf.sprintf "--metrics-push: %s" msg))
  in
  let g_epoch = Rfid_obs.Metrics.gauge Rfid_obs.Metrics.global "serve.epoch" in
  let g_queue = Rfid_obs.Metrics.gauge Rfid_obs.Metrics.global "serve.queue_depth" in
  let g_admitted = Rfid_obs.Metrics.gauge Rfid_obs.Metrics.global "serve.admitted" in
  let last_push = ref (Unix.gettimeofday ()) in
  let on_pass () =
    match pusher with
    | None -> ()
    | Some p ->
        let now = Unix.gettimeofday () in
        if now -. !last_push >= metrics_push_every then begin
          last_push := now;
          Rfid_obs.Metrics.set g_epoch (float_of_int (Rfid_serve.Core.epoch core));
          Rfid_obs.Metrics.set g_queue
            (float_of_int (Rfid_serve.Core.queue_depth core));
          Rfid_obs.Metrics.set g_admitted
            (float_of_int (Rfid_serve.Core.admitted core));
          Rfid_serve.Push.send p
            (Rfid_obs.Openmetrics.render Rfid_obs.Metrics.global)
        end
  in
  let config =
    {
      Rfid_serve.Server.default_config with
      Rfid_serve.Server.host;
      port;
      max_steps_per_tick;
    }
  in
  let on_listening ~host ~port =
    Printf.printf "# rfid-serve listening on %s:%d\n%!" host port
  in
  Rfid_serve.Server.run ~on_listening ~on_pass core config;
  (* The loop has returned: stop was requested and Core.drain ran
     (flush + checkpoint through the hooks). Close the durable tail. *)
  (match wal_writer with Some w -> Rfid_robust.Wal.close w | None -> ());
  (match events_fd with
  | Some fd ->
      (try Rfid_robust.Durable.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (match pusher with Some p -> Rfid_serve.Push.close p | None -> ());
  if wal <> None then
    Printf.eprintf "# durable-bytes=%d\n%!" (Rfid_robust.Durable.total_written ());
  Format.printf "drained at epoch %d (admitted %d)@."
    (Rfid_serve.Core.epoch core)
    (Rfid_serve.Core.admitted core);
  Format.printf "ingest: %a@." Rfid_robust.Ingest.pp_counters guard;
  Format.printf "engine: %a@." Rfid_core.Engine.pp_stats
    (Rfid_core.Engine.stats engine)

let serve_cmd =
  let doc =
    "Serve the inference engine over TCP: line-framed PUT ingest with \
     backpressure, probabilistic RANGE/AT/EVENTS/STATS queries over live \
     posteriors, graceful SIGTERM drain. The wire protocol is documented in \
     PROTOCOL.md, operations in RUNBOOK.md."
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 4040
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port (0 = pick an ephemeral port; the chosen port is \
             announced on stdout).")
  in
  let admit_cap =
    Arg.(
      value & opt int 1024
      & info [ "admit-cap" ] ~docv:"N"
          ~doc:
            "Admission queue bound: PUTs beyond N queued observations are \
             refused with BUSY (never dropped silently).")
  in
  let max_steps_per_tick =
    Arg.(
      value & opt int 256
      & info [ "max-steps-per-tick" ] ~docv:"N"
          ~doc:
            "Queued observations stepped through the engine per server loop \
             pass — bounds how long ingest can starve query latency.")
  in
  let events_keep =
    Arg.(
      value & opt int 4096
      & info [ "events-keep" ] ~docv:"N"
          ~doc:
            "Bound on the in-memory EVENTS ring; older events are evicted \
             (and counted in STATS events_dropped).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Write engine checkpoints to PATH (file, or rotation directory \
             with $(b,--checkpoint-keep) > 1) on DRAIN, shutdown, and the \
             $(b,--checkpoint-every) cadence.")
  in
  let checkpoint_keep =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-keep" ] ~docv:"N"
          ~doc:"Keep the N newest checkpoints (rotating in a directory).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Checkpoint every K admitted epochs (0 = only on DRAIN/shutdown).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:"Append each admitted epoch to a write-ahead log at FILE.")
  in
  let wal_fsync_every =
    Arg.(
      value & opt int 8
      & info [ "wal-fsync-every" ] ~docv:"K"
          ~doc:"Force the write-ahead log to disk every K records (min 1).")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Append cleaned events to FILE durably, in emission order.")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Recover a crashed server: load the newest valid checkpoint from \
             $(b,--checkpoint), trim and replay the $(b,--wal), reseed the \
             EVENTS ring from $(b,--events), then serve — clients resume \
             PUTting where they left off, without event duplication.")
  in
  let metrics_push =
    let hostport =
      let parse s =
        match String.rindex_opt s ':' with
        | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s))
        | Some i -> (
            let h = String.sub s 0 i in
            match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
            | Some p when h <> "" && p > 0 && p < 65536 -> Ok (h, p)
            | _ -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s)))
      in
      Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)
    in
    Arg.(
      value
      & opt (some hostport) None
      & info [ "metrics-push" ] ~docv:"HOST:PORT"
          ~doc:
            "Push OpenMetrics-text snapshots of the live registry to this UDP \
             (statsd-style) sink; see RUNBOOK.md.")
  in
  let metrics_push_every =
    Arg.(
      value & opt float 10.
      & info [ "metrics-push-every" ] ~docv:"SECONDS"
          ~doc:"Seconds between metrics pushes.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ host $ port $ objects_arg $ seed_arg $ variant_arg
      $ particles_arg $ min_particles_arg $ resample_ess_arg $ domains_arg
      $ admit_cap $ max_steps_per_tick $ events_keep $ checkpoint $ checkpoint_keep
      $ checkpoint_every $ wal $ wal_fsync_every $ events_out $ recover
      $ metrics_push $ metrics_push_every)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "probabilistic cleaning of mobile RFID streams (Tran et al., ICDE 2009)" in
  let info = Cmd.info "rfid_clean" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ simulate_cmd; infer_cmd; replay_cmd; calibrate_cmd; lab_cmd; serve_cmd ]))
