module Obs = Rfid_obs.Metrics

let magic = "rfid_streams-checkpoint"
let version = 2

let sp_encode = Obs.span Obs.global "stage.checkpoint_encode"
let sp_decode = Obs.span Obs.global "stage.checkpoint_decode"

(* File layout (header is plain text so `head -2 FILE` identifies a
   checkpoint; payload is binary):

     rfid_streams-checkpoint v<version>\n
     epoch=<E> bytes=<N> adler32=<08x>\n
     <N bytes of payload>

   The v2 payload is the portable Codec encoding of Engine.snapshot.
   The legacy v1 payload was Marshal output; its read path was kept for
   exactly one release of migration and is now gone — a v1 file gets a
   clean error naming the dropped format instead of a decode attempt. *)

let save ~path snapshot =
  let payload =
    let t0 = Obs.start sp_encode in
    let p = Codec.encode snapshot in
    Obs.stop sp_encode t0;
    p
  in
  let header =
    Printf.sprintf "%s v%d\nepoch=%d bytes=%d adler32=%08x\n" magic version
      (Rfid_core.Engine.snapshot_epoch snapshot)
      (String.length payload)
      (Codec.adler32 payload)
  in
  let tmp = path ^ ".tmp" in
  (match
     Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
   with
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (tmp ^ ": " ^ Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Durable.write fd header;
          Durable.write fd payload;
          (* Data must be on disk before the rename publishes it, or a
             power cut could leave a fully-renamed but empty file. *)
          Durable.fsync fd));
  (* Write-then-rename so a crash mid-save never leaves a truncated
     file at [path]. *)
  Sys.rename tmp path;
  Durable.fsync_dir (Filename.dirname path)

let read_line_opt ic = try Some (input_line ic) with End_of_file -> None

let parse_header2 line =
  (* "epoch=<E> bytes=<N> adler32=<hex>" *)
  try Scanf.sscanf line "epoch=%d bytes=%d adler32=%x%!" (fun e n c -> Some (e, n, c))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let parse_version l1 =
  try Scanf.sscanf l1 "rfid_streams-checkpoint v%d%!" (fun v -> Some v)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let decode_v2 ~path payload =
  match Codec.decode payload with
  | Ok snapshot -> Ok snapshot
  | Error msg -> Error (path ^ ": " ^ msg)

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (read_line_opt ic, read_line_opt ic) with
          | Some l1, Some l2 when parse_version l1 <> None -> (
              let v = Option.get (parse_version l1) in
              if v = 1 then
                Error
                  (path
                 ^ ": legacy v1 (Marshal) checkpoints are no longer readable — \
                    the migration window closed; re-create the checkpoint by \
                    replaying the event stream (or a WAL recovery) with this \
                    build")
              else if v <> version then
                Error
                  (Printf.sprintf
                     "%s: unsupported checkpoint version v%d (this build reads \
                      v%d)"
                     path v version)
              else
                match parse_header2 l2 with
                | None -> Error (path ^ ": malformed checkpoint header")
                | Some (header_epoch, nbytes, expected_sum) -> (
                    match really_input_string ic nbytes with
                    | exception End_of_file ->
                        Error (path ^ ": truncated checkpoint payload")
                    | payload ->
                        let actual = Codec.adler32 payload in
                        if actual <> expected_sum then
                          Error
                            (Printf.sprintf
                               "%s: checkpoint checksum mismatch (stored %08x, \
                                computed %08x)"
                               path expected_sum actual)
                        else
                          let t0 = Obs.start sp_decode in
                          let r = decode_v2 ~path payload in
                          Obs.stop sp_decode t0;
                          Result.bind r (fun snapshot ->
                              let e =
                                Rfid_core.Engine.snapshot_epoch snapshot
                              in
                              if e <> header_epoch then
                                Error
                                  (Printf.sprintf
                                     "%s: header epoch %d disagrees with \
                                      payload epoch %d"
                                     path header_epoch e)
                              else Ok snapshot)))
          | Some l1, _
            when String.length l1 >= String.length magic
                 && String.sub l1 0 (String.length magic) = magic ->
              Error (path ^ ": malformed checkpoint version line")
          | _ -> Error (path ^ ": not a " ^ magic ^ " file"))

let load_exn ~path =
  match load ~path with Ok s -> s | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Rotation *)

let ckpt_name epoch = Printf.sprintf "ckpt-%010d.bin" epoch

let ckpt_epoch name =
  if
    String.length name = 19
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".bin"
  then int_of_string_opt (String.sub name 5 10)
  else None

let list_ckpts dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             match ckpt_epoch n with Some e -> Some (e, n) | None -> None)
      |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let save_rotating ~dir ~keep snapshot =
  if keep < 1 then invalid_arg "Checkpoint.save_rotating: keep < 1";
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (dir ^ ": " ^ Unix.error_message e)));
  let epoch = Rfid_core.Engine.snapshot_epoch snapshot in
  save ~path:(Filename.concat dir (ckpt_name epoch)) snapshot;
  (* Prune only after the new checkpoint is durable, so the set on disk
     never transiently shrinks below [keep] verified files. *)
  list_ckpts dir
  |> List.filteri (fun i _ -> i >= keep)
  |> List.iter (fun (_, n) ->
         try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())

let clear_rotation ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun n ->
          if ckpt_epoch n <> None || Filename.check_suffix n ".tmp" then
            try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        names

let load_newest ~dir =
  let rec try_all errs = function
    | [] ->
        Error
          (match errs with
          | [] -> dir ^ ": no checkpoint files (ckpt-*.bin) found"
          | _ ->
              Printf.sprintf "%s: no loadable checkpoint; tried:\n  %s" dir
                (String.concat "\n  " (List.rev errs)))
    | (_, name) :: rest -> (
        match load ~path:(Filename.concat dir name) with
        | Ok snapshot -> Ok snapshot
        | Error msg -> try_all (msg :: errs) rest)
  in
  try_all [] (list_ckpts dir)

let load_auto ~path =
  if Sys.file_exists path && Sys.is_directory path then load_newest ~dir:path
  else load ~path
