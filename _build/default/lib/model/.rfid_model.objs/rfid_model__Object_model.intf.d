lib/model/object_model.mli: Rfid_geom Rfid_prob World
