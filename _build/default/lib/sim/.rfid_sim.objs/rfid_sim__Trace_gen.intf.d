lib/sim/trace_gen.mli: Rfid_geom Rfid_model Rfid_prob Truth_sensor Warehouse
