open Rfid_geom
open Rfid_model

type config = {
  em_iters : int;
  object_samples : int;
  reader_samples : int;
  neg_distance_cap : float;
  filter_config : Rfid_core.Config.t;
  l2 : float;
  fit_motion : bool;
  prior_miss_distance : float option;
  prior_weight : float;
  e_step_sigma_floor : float;
  e_step_motion_floor : float;
  bias_gain : float;
  seed : int;
}

let default_config ?heading_model () =
  let heading_model =
    match heading_model with
    | Some h -> h
    | None -> Rfid_core.Config.Known_heading (fun _ -> 0.)
  in
  {
    em_iters = 4;
    object_samples = 10;
    reader_samples = 10;
    neg_distance_cap = 8.;
    filter_config =
      Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized
        ~num_reader_particles:100 ~num_object_particles:200 ~heading_model ();
    l2 = 1e-3;
    fit_motion = true;
    prior_miss_distance = Some 12.;
    prior_weight = 5.;
    e_step_sigma_floor = 0.75;
    e_step_motion_floor = 0.05;
    bias_gain = 2.0;
    seed = 7;
  }

type evidence = {
  geometries : (float * float) array;
  outcomes : bool array;
  weights : float array;
  reader_track : (Vec3.t * Vec3.t) array;
}

(* Anchor-free sensing-noise estimate straight from the reported
   track: var(reported_t - reported_{t-1}) = sigma_m^2 + 2 sigma_s^2
   per axis (the motion term is not separable without an anchor and is
   negligible in practice). Available before any filtering, so even the
   first E-step runs with a realistic sigma. *)
let sensing_sigma_of_reports observations =
  let reports =
    Array.of_list
      (List.map (fun (o : Types.observation) -> o.Types.o_reported_loc) observations)
  in
  let n = Array.length reports in
  let disp = Array.init (Int.max 0 (n - 1)) (fun i -> Vec3.sub reports.(i + 1) reports.(i)) in
  let axis f =
    let v = Rfid_prob.Stats.variance (Array.map f disp) in
    sqrt (Float.max 25e-6 (v /. 2.))
  in
  Vec3.make
    (axis (fun (v : Vec3.t) -> v.Vec3.x))
    (axis (fun (v : Vec3.t) -> v.Vec3.y))
    (axis (fun (v : Vec3.t) -> v.Vec3.z))

let e_step ~world ~params ~config ~observations ~init_reader =
  if observations = [] then invalid_arg "Calibration.e_step: empty stream";
  let rng = Rfid_prob.Rng.create ~seed:config.seed in
  (* Over-dispersed location sensing for the E-step: with the sensing
     sigma still at its (possibly tiny) initial value, the reader
     posterior would glue itself to the reported track and the shelf-tag
     evidence could never reveal a systematic bias. The floor keeps the
     posterior receptive; the M-step then estimates the real bias and
     sigma from the residuals. *)
  let e_params =
    let s = params.Params.sensing in
    let floor = config.e_step_sigma_floor in
    let sigma = s.Location_sensing.sigma in
    let sigma =
      Vec3.make
        (Float.max floor sigma.Vec3.x)
        (Float.max floor sigma.Vec3.y)
        (Float.max floor sigma.Vec3.z)
    in
    let m = params.Params.motion in
    let mfloor = config.e_step_motion_floor in
    let msigma = m.Motion_model.sigma in
    let msigma =
      Vec3.make
        (Float.max mfloor msigma.Vec3.x)
        (Float.max mfloor msigma.Vec3.y)
        (Float.max mfloor msigma.Vec3.z)
    in
    {
      params with
      Params.sensing = Location_sensing.create ~bias:s.Location_sensing.bias ~sigma ();
      motion =
        Motion_model.create ~velocity:m.Motion_model.velocity ~sigma:msigma
          ~heading_drift:m.Motion_model.heading_drift
          ~heading_sigma:m.Motion_model.heading_sigma ();
    }
  in
  (* The proposal keeps the honest (uninflated) noise scale. *)
  let proposal_noise =
    Rfid_core.Common.proposal_sigma config.filter_config.Rfid_core.Config.proposal
      ~motion:params.Params.motion ~sensing:params.Params.sensing
  in
  let filter_config =
    { config.filter_config with
      Rfid_core.Config.proposal_noise_override = Some proposal_noise }
  in
  let filter =
    Rfid_core.Factored_filter.create ~world ~params:e_params ~config:filter_config
      ~init_reader ~rng:(Rfid_prob.Rng.split rng)
  in
  let geoms = ref [] and outs = ref [] and ws = ref [] and track = ref [] in
  let harvest geom out w =
    geoms := geom :: !geoms;
    outs := out :: !outs;
    ws := w :: !ws
  in
  let shelf_tags = World.shelf_tags world in
  List.iter
    (fun (obs : Types.observation) ->
      Rfid_core.Factored_filter.step filter obs;
      let reported = obs.Types.o_reported_loc in
      let read_objs, read_shelves =
        List.fold_left
          (fun (objs, shelves) tag ->
            match tag with
            | Types.Object_tag i -> (i :: objs, shelves)
            | Types.Shelf_tag i -> (objs, i :: shelves))
          ([], []) obs.Types.o_read_tags
      in
      (* Reader posterior as arrays for categorical sampling. *)
      let states = ref [] and rw = ref [] in
      Rfid_core.Factored_filter.iter_reader_particles filter (fun s w ->
          states := s :: !states;
          rw := w :: !rw);
      let states = Array.of_list !states and rw = Array.of_list !rw in
      if Array.length states > 0 then begin
        (* Posterior reader mean for the motion/sensing M-step. *)
        let mean = ref Vec3.zero in
        Array.iteri
          (fun i (s : Reader_state.t) ->
            mean := Vec3.add !mean (Vec3.scale rw.(i) s.Reader_state.loc))
          states;
        track := (!mean, reported) :: !track;
        (* Shelf-tag evidence: known tag location, uncertain reader. *)
        List.iter
          (fun (tag, tag_loc) ->
            match tag with
            | Types.Object_tag _ -> ()
            | Types.Shelf_tag id ->
                let read = List.mem id read_shelves in
                if read || Vec3.dist reported tag_loc <= config.neg_distance_cap then begin
                  let w = 1. /. float_of_int config.reader_samples in
                  for _ = 1 to config.reader_samples do
                    let s = states.(Rfid_prob.Rng.categorical rng rw) in
                    let g =
                      Sensor_model.geometry ~reader_loc:s.Reader_state.loc
                        ~reader_heading:s.Reader_state.heading ~tag_loc
                    in
                    harvest g read w
                  done
                end)
          shelf_tags;
        (* Object-tag evidence: both tag and reader uncertain; pairs come
           from the factored particles' pointers. *)
        List.iter
          (fun obj ->
            let locs = ref [] and ow = ref [] and paired = ref [] in
            Rfid_core.Factored_filter.iter_object_particles filter obj
              (fun loc w reader ->
                locs := loc :: !locs;
                ow := w :: !ow;
                paired := reader :: !paired);
            let locs = Array.of_list !locs
            and ow = Array.of_list !ow
            and paired = Array.of_list !paired in
            if Array.length locs > 0 then begin
              let read = List.mem obj read_objs in
              (* Mean location decides whether a miss is informative. *)
              let mean = ref Vec3.zero in
              Array.iteri (fun i l -> mean := Vec3.add !mean (Vec3.scale ow.(i) l)) locs;
              if read || Vec3.dist reported !mean <= config.neg_distance_cap then begin
                let w = 1. /. float_of_int config.object_samples in
                for _ = 1 to config.object_samples do
                  let k = Rfid_prob.Rng.categorical rng ow in
                  let s = paired.(k) in
                  let g =
                    Sensor_model.geometry ~reader_loc:s.Reader_state.loc
                      ~reader_heading:s.Reader_state.heading ~tag_loc:locs.(k)
                  in
                  harvest g read w
                done
              end
            end)
          (Rfid_core.Factored_filter.known_objects filter)
      end)
    observations;
  (* Physical prior: no RFID reader reads a tag tens of feet away. The
     training geometry often never pairs a small angle with a large
     distance (the reader runs parallel to the shelf at a fixed
     clearance), leaving the distance decay unidentifiable; a few
     pseudo-misses at long range anchor it. *)
  (match config.prior_miss_distance with
  | None -> ()
  | Some dmin ->
      let n = 60 in
      (* The prior must stay relevant as the harvested evidence grows,
         otherwise a long trace of mis-attributed long-distance "reads"
         (wide particle clouds early in EM) simply outvotes it and the
         sensor collapses to "reads everywhere". *)
      let total = List.fold_left ( +. ) 0. !ws in
      let w = Float.max config.prior_weight (0.02 *. total) /. float_of_int n in
      for _ = 1 to n do
        let d = Rfid_prob.Rng.uniform rng ~lo:dmin ~hi:(2. *. dmin) in
        let theta = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:Float.pi in
        harvest (d, theta) false w
      done);
  {
    geometries = Array.of_list (List.rev !geoms);
    outcomes = Array.of_list (List.rev !outs);
    weights = Array.of_list (List.rev !ws);
    reader_track = Array.of_list (List.rev !track);
  }

let fit_gaussian_vec3 diffs ~floor =
  let n = Array.length diffs in
  let axis f =
    let vals = Array.map f diffs in
    let mu = Rfid_prob.Stats.mean vals in
    let sigma = sqrt (Rfid_prob.Stats.variance vals) in
    (mu, Float.max floor sigma)
  in
  if n = 0 then (Vec3.zero, Vec3.make floor floor floor)
  else begin
    let mx, sx = axis (fun (v : Vec3.t) -> v.Vec3.x) in
    let my, sy = axis (fun (v : Vec3.t) -> v.Vec3.y) in
    let mz, sz = axis (fun (v : Vec3.t) -> v.Vec3.z) in
    (Vec3.make mx my mz, Vec3.make sx sy sz)
  end

let m_step ~params ~config ~(ev : evidence) =
  let sensor =
    if Array.length ev.geometries = 0 then params.Params.sensor
    else begin
      let fitted =
        Supervised.fit_from_pairs ~l2:config.l2 ~init:params.Params.sensor
          ~w:ev.weights ~geometries:ev.geometries ~outcomes:ev.outcomes ()
      in
      (* Degeneracy guard: a sensor claiming substantial read rates at
         absurd range is an EM spiral (wide particle clouds attribute
         reads to far geometries, which widens the clouds further).
         Refit with a much heavier physical prior — rejecting the update
         outright can deadlock EM when even the starting point violates
         the check (e.g. a blind uniform init). *)
      let far = match config.prior_miss_distance with Some d -> d | None -> 15. in
      if Sensor_model.read_prob_at fitted ~d:far ~theta:0. <= 0.3 then fitted
      else begin
        let rng = Rfid_prob.Rng.create ~seed:(config.seed + 1) in
        let total = Array.fold_left ( +. ) 0. ev.weights in
        let extra = 120 in
        let w_extra = 0.2 *. total /. float_of_int extra in
        let prior_geoms =
          Array.init extra (fun _ ->
              ( Rfid_prob.Rng.uniform rng ~lo:far ~hi:(2. *. far),
                Rfid_prob.Rng.uniform rng ~lo:0. ~hi:Float.pi ))
        in
        let geometries = Array.append ev.geometries prior_geoms in
        let outcomes = Array.append ev.outcomes (Array.make extra false) in
        let w = Array.append ev.weights (Array.make extra w_extra) in
        let salvaged =
          Supervised.fit_from_pairs ~l2:config.l2 ~init:params.Params.sensor ~w
            ~geometries ~outcomes ()
        in
        if Sensor_model.read_prob_at salvaged ~d:far ~theta:0. <= 0.3 then salvaged
        else params.Params.sensor
      end
    end
  in
  if not config.fit_motion then { params with Params.sensor }
  else begin
    let track = ev.reader_track in
    let n = Array.length track in
    let displacement =
      Array.init (Int.max 0 (n - 1)) (fun i ->
          Vec3.sub (fst track.(i + 1)) (fst track.(i)))
    in
    let velocity, motion_sigma = fit_gaussian_vec3 displacement ~floor:0.005 in
    let residuals = Array.map (fun (mean, reported) -> Vec3.sub reported mean) track in
    let raw_bias, _residual_sigma = fit_gaussian_vec3 residuals ~floor:0.005 in
    (* Sensing noise by method of moments on the reported track itself:
       reported_t = true_t + bias + eps_t gives, per axis,
       var(reported_t - reported_{t-1}) = sigma_m^2 + 2 sigma_s^2.
       Unlike residuals against the posterior mean — which shrink to
       zero whenever the posterior hugs the reported track — this
       estimator needs no anchor and stays honest with zero shelf tags.
       The motion term is not subtracted (it cannot be separated from
       the reporting noise without an anchor); with sigma_m << sigma_s,
       as on every platform the paper considers, the overestimate is
       sqrt(1 + (sigma_m/sigma_s)^2 / 2)-fold, i.e. negligible. *)
    let reported_disp =
      Array.init (Int.max 0 (n - 1)) (fun i -> Vec3.sub (snd track.(i + 1)) (snd track.(i)))
    in
    let sensing_sigma =
      let axis f =
        let disp_var = Rfid_prob.Stats.variance (Array.map f reported_disp) in
        sqrt (Float.max 25e-6 (disp_var /. 2.))
      in
      Vec3.make
        (axis (fun (v : Vec3.t) -> v.Vec3.x))
        (axis (fun (v : Vec3.t) -> v.Vec3.y))
        (axis (fun (v : Vec3.t) -> v.Vec3.z))
    in
    (* Over-relaxed bias update: the filtered posterior only recovers a
       fraction of a systematic reported-location offset per EM round
       (the sensing term keeps pulling it back toward the reported
       track), so the raw residual mean under-estimates the true bias.
       Amplifying the innovation accelerates the geometric convergence
       without touching the variance estimates. *)
    let old_bias = params.Params.sensing.Location_sensing.bias in
    let bias =
      (* Clamp the (amplified) innovation so one noisy EM round cannot
         fling the bias estimate; convergence just takes another
         round. *)
      let innovation = Vec3.scale config.bias_gain (Vec3.sub raw_bias old_bias) in
      let n = Vec3.norm innovation in
      let innovation = if n > 0.3 then Vec3.scale (0.3 /. n) innovation else innovation in
      Vec3.add old_bias innovation
    in
    let motion =
      Motion_model.create ~velocity ~sigma:motion_sigma
        ~heading_drift:params.Params.motion.Motion_model.heading_drift
        ~heading_sigma:params.Params.motion.Motion_model.heading_sigma ()
    in
    let sensing = Location_sensing.create ~bias ~sigma:sensing_sigma () in
    { params with Params.sensor; motion; sensing }
  end

let calibrate ~world ~init ~config ~observations ~init_reader =
  if observations = [] then invalid_arg "Calibration.calibrate: empty stream";
  (* Seed the sensing sigma from the reported track before any EM round
     so the very first E-step proposal and weighting are realistic. *)
  let init =
    if not config.fit_motion then init
    else begin
      let sigma = sensing_sigma_of_reports observations in
      {
        init with
        Params.sensing =
          Location_sensing.create
            ~bias:init.Params.sensing.Location_sensing.bias ~sigma ();
      }
    end
  in
  let rec loop params iter =
    if iter = 0 then params
    else begin
      let ev = e_step ~world ~params ~config ~observations ~init_reader in
      let params = m_step ~params ~config ~ev in
      loop params (iter - 1)
    end
  in
  loop init config.em_iters
