lib/model/motion_model.ml: Reader_state Rfid_geom Rfid_prob Rng Vec3
