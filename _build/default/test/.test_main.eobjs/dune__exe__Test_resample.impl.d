test/test_resample.ml: Alcotest Array Float Fun Gen Int List QCheck Resample Rfid_prob Stats Util
