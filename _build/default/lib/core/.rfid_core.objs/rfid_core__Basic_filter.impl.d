lib/core/basic_filter.ml: Array Common Config Hashtbl List Location_sensing Object_model Params Reader_state Rfid_geom Rfid_model Rfid_prob Sensor_model Types Vec3 World
