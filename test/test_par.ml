(* Determinism of the parallel substrate: keyed RNG substreams, the
   domain pool, and end-to-end inference under 1/2/4 domains. *)
open Rfid_prob

let draw n rng = Array.init n (fun _ -> Rng.float rng)

let test_split_reproducible () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let sa = Rng.split a and sb = Rng.split b in
  Alcotest.(check (array (float 0.))) "split of equal states equal"
    (draw 64 sa) (draw 64 sb);
  (* After the split the parents remain synchronized too. *)
  Alcotest.(check (array (float 0.))) "parents still in lockstep" (draw 16 a) (draw 16 b)

let test_for_key_pure () =
  let base = Rng.create ~seed:42 in
  let before = Rng.bits64 (Rng.copy base) in
  let s1 = draw 32 (Rng.for_key base ~key:5L) in
  (* Deriving hundreds of other substreams, in any order, must not
     disturb either the base or the key-5 substream. *)
  for k = 0 to 500 do
    ignore (Rng.float (Rng.for_key base ~key:(Int64.of_int k)))
  done;
  let s1' = draw 32 (Rng.for_key base ~key:5L) in
  Alcotest.(check (array (float 0.))) "same key, same stream" s1 s1';
  Alcotest.(check int64) "base not advanced" before (Rng.bits64 (Rng.copy base))

let test_for_key_distinct_and_uniform () =
  let base = Rng.create ~seed:3 in
  (* Substreams for adjacent (object, epoch) keys must decorrelate:
     pool their first draws and check uniformity, and check no two
     adjacent keys yield the same leading draw. *)
  let n = 2000 in
  let firsts =
    Array.init n (fun i -> Rng.float (Rng.for_key base ~key:(Rng.key_pair (i / 50) (i mod 50))))
  in
  Util.check_close ~eps:0.02 "substream leading draws uniform" 0.5 (Stats.mean firsts);
  let distinct = Hashtbl.create n in
  Array.iter (fun x -> Hashtbl.replace distinct x ()) firsts;
  Alcotest.(check int) "no colliding substreams" n (Hashtbl.length distinct)

let test_key_pair_injective_locally () =
  let seen = Hashtbl.create 64 in
  for a = 0 to 63 do
    for b = 0 to 63 do
      let k = Rng.key_pair a b in
      (match Hashtbl.find_opt seen k with
      | Some (a', b') -> Alcotest.failf "key collision (%d,%d) vs (%d,%d)" a b a' b'
      | None -> ());
      Hashtbl.replace seen k (a, b)
    done
  done

(* Reference computation: an order-sensitive-looking but per-index
   deterministic kernel, heavy enough that chunks interleave. *)
let kernel i =
  let r = Rng.for_key (Rng.create ~seed:99) ~key:(Int64.of_int i) in
  let acc = ref 0. in
  for _ = 1 to 50 do
    acc := !acc +. Rng.float r
  done;
  !acc

let test_pool_matches_sequential () =
  let n = 2048 in
  let expected = Array.init n kernel in
  List.iter
    (fun num_domains ->
      let pool = Rfid_par.Pool.create ~num_domains in
      Alcotest.(check int)
        (Printf.sprintf "pool applies %d domains" num_domains)
        num_domains
        (Rfid_par.Pool.num_domains pool);
      List.iter
        (fun chunk ->
          let got = Array.make n 0. in
          Rfid_par.Pool.parallel_for_chunked pool ?chunk ~n (fun lo hi ->
              for i = lo to hi - 1 do
                got.(i) <- kernel i
              done);
          Alcotest.(check (array (float 0.)))
            (Printf.sprintf "%d domains, chunk %s" num_domains
               (match chunk with None -> "auto" | Some c -> string_of_int c))
            expected got)
        [ None; Some 1; Some 7; Some 4096 ];
      let mapped = Rfid_par.Pool.map_array pool kernel (Array.init n Fun.id) in
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "map_array, %d domains" num_domains)
        expected mapped;
      Rfid_par.Pool.shutdown pool;
      Rfid_par.Pool.shutdown pool;
      (* A shut-down pool degrades to sequential instead of hanging. *)
      let got = Array.make n 0. in
      Rfid_par.Pool.parallel_for_chunked pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            got.(i) <- kernel i
          done);
      Alcotest.(check (array (float 0.))) "after shutdown" expected got)
    [ 1; 2; 4 ]

let test_pool_propagates_exceptions () =
  let pool = Rfid_par.Pool.create ~num_domains:2 in
  Alcotest.check_raises "body exception reaches coordinator" Exit (fun () ->
      Rfid_par.Pool.parallel_for_chunked pool ~chunk:1 ~n:64 (fun lo _ ->
          if lo = 13 then raise Exit));
  (* The pool survives a failed loop. *)
  let total = Atomic.make 0 in
  Rfid_par.Pool.parallel_for_chunked pool ~chunk:1 ~n:64 (fun lo hi ->
      ignore (Atomic.fetch_and_add total (hi - lo)));
  Alcotest.(check int) "pool usable after exception" 64 (Atomic.get total);
  Rfid_par.Pool.shutdown pool

let test_scratch_reuse () =
  let s = Rfid_par.Scratch.create () in
  let b1 = Rfid_par.Scratch.float_buf s ~slot:0 64 in
  let b2 = Rfid_par.Scratch.float_buf s ~slot:0 64 in
  Alcotest.(check bool) "same slot and length reuses the buffer" true (b1 == b2);
  Alcotest.(check int) "exact length" 64 (Array.length b1);
  let b3 = Rfid_par.Scratch.float_buf s ~slot:1 64 in
  Alcotest.(check bool) "distinct slots never alias" true (not (b3 == b1));
  let i1 = Rfid_par.Scratch.int_buf s ~slot:0 16 in
  let i2 = Rfid_par.Scratch.int_buf s ~slot:0 16 in
  Alcotest.(check bool) "int buffers reuse" true (i1 == i2);
  (* Warm-up touches each (slot, length) once; afterwards every request
     is served from cache and the allocation counter freezes — the
     arena-level statement of the zero-allocation steady state. *)
  let warm = Rfid_par.Scratch.allocations s in
  for _ = 1 to 100 do
    ignore (Rfid_par.Scratch.float_buf s ~slot:0 64);
    ignore (Rfid_par.Scratch.float_buf s ~slot:1 64);
    ignore (Rfid_par.Scratch.int_buf s ~slot:0 16);
    ignore (Rfid_par.Scratch.rng s);
    ignore (Rfid_par.Scratch.slab s)
  done;
  Alcotest.(check int) "steady state allocates no new buffers" warm
    (Rfid_par.Scratch.allocations s);
  Util.check_raises_invalid "bad slot" (fun () ->
      ignore (Rfid_par.Scratch.float_buf s ~slot:9 4))

let test_chunked_did_covers_and_isolates () =
  List.iter
    (fun num_domains ->
      let pool = Rfid_par.Pool.create ~num_domains in
      let n = 513 in
      let owner = Array.make n (-1) in
      Rfid_par.Pool.parallel_for_chunked_did pool ~n (fun did lo hi ->
          if did < 0 || did >= num_domains then
            Alcotest.failf "domain id %d out of range" did;
          for i = lo to hi - 1 do
            owner.(i) <- did
          done);
      Array.iteri (fun i d -> if d < 0 then Alcotest.failf "index %d never visited" i) owner;
      (* Each domain owns a private arena — bodies running concurrently
         must never share buffers. *)
      for a = 0 to num_domains - 1 do
        for b = a + 1 to num_domains - 1 do
          Alcotest.(check bool) "arenas distinct per domain" true
            (not (Rfid_par.Pool.get_scratch pool a == Rfid_par.Pool.get_scratch pool b))
        done
      done;
      Rfid_par.Pool.shutdown pool)
    [ 1; 2; 4 ]

let test_min_chunk_calibration () =
  (* The sequential pool never dispatches chunks, so its floor is the
     neutral 1. *)
  Alcotest.(check int) "sequential floor" 1
    (Rfid_par.Pool.min_chunk Rfid_par.Pool.sequential);
  let pool = Rfid_par.Pool.create ~num_domains:2 in
  let mc = Rfid_par.Pool.min_chunk pool in
  Alcotest.(check bool) "calibrated floor within bounds" true (mc >= 1 && mc <= 4096);
  (* Calibration publishes the chosen floor as a gauge. *)
  let g = Rfid_obs.Metrics.gauge Rfid_obs.Metrics.global "pool.min_chunk" in
  Alcotest.(check (float 0.)) "gauge records the floor" (float_of_int mc)
    (Rfid_obs.Metrics.gauge_value g);
  (* The autotuned default chunking computes the same results as any
     explicit chunking — scheduling granularity only. *)
  let n = 777 in
  let expected = Array.init n kernel in
  let got = Array.make n 0. in
  Rfid_par.Pool.parallel_for_chunked pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        got.(i) <- kernel i
      done);
  Alcotest.(check (array (float 0.))) "autotuned default chunk correct" expected got;
  Rfid_par.Pool.shutdown pool

let test_pool_rejects_bad_sizes () =
  Util.check_raises_invalid "zero domains" (fun () ->
      ignore (Rfid_par.Pool.create ~num_domains:0));
  Util.check_raises_invalid "zero chunk" (fun () ->
      Rfid_par.Pool.parallel_for_chunked
        (Rfid_par.Pool.create ~num_domains:2)
        ~chunk:0 ~n:4
        (fun _ _ -> ()))

(* End-to-end: the engine's output event stream is bit-identical under
   any domain count, on a trace long enough to exercise creation,
   re-detection, decompression and per-object resampling. *)
let run_trace ~variant ~num_domains =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:12 () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:0.85 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass ~speed:0.3 wh ~rounds:2)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed:17)
  in
  let config =
    Rfid_core.Config.create ~variant ~num_reader_particles:40
      ~num_object_particles:60 ~compress_after:10 ~num_domains ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:Rfid_model.Params.default ~config
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~seed:5 ()
  in
  Rfid_core.Engine.run engine (Rfid_model.Trace.observations trace)

let check_domain_counts variant label =
  let reference = run_trace ~variant ~num_domains:1 in
  Alcotest.(check bool) (label ^ ": events exist") true (reference <> []);
  List.iter
    (fun num_domains ->
      let events = run_trace ~variant ~num_domains in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d domains bit-identical to sequential" label num_domains)
        true
        (events = reference))
    [ 2; 4 ];
  (* Idle domains tax every stop-the-world section of the rest of the
     suite; tear the cached pools down before the next test. *)
  Rfid_par.Pool.shutdown_cached ()

let test_engine_bit_identical_indexed () =
  check_domain_counts Rfid_core.Config.Factorized_indexed "indexed"

let test_engine_bit_identical_compressed () =
  check_domain_counts Rfid_core.Config.Factorized_compressed "compressed"

let suite =
  ( "par",
    [
      Alcotest.test_case "split reproducible" `Quick test_split_reproducible;
      Alcotest.test_case "for_key pure and reproducible" `Quick test_for_key_pure;
      Alcotest.test_case "for_key substreams distinct" `Quick
        test_for_key_distinct_and_uniform;
      Alcotest.test_case "key_pair locally injective" `Quick
        test_key_pair_injective_locally;
      Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
      Alcotest.test_case "pool propagates exceptions" `Quick
        test_pool_propagates_exceptions;
      Alcotest.test_case "pool rejects bad sizes" `Quick test_pool_rejects_bad_sizes;
      Alcotest.test_case "min chunk calibration" `Quick test_min_chunk_calibration;
      Alcotest.test_case "scratch arenas reuse buffers" `Quick test_scratch_reuse;
      Alcotest.test_case "chunked_did covers range, isolates arenas" `Quick
        test_chunked_did_covers_and_isolates;
      Alcotest.test_case "engine bit-identical across domains (indexed)" `Quick
        test_engine_bit_identical_indexed;
      Alcotest.test_case "engine bit-identical across domains (compressed)" `Quick
        test_engine_bit_identical_compressed;
    ] )
