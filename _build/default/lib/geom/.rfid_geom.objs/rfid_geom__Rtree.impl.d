lib/geom/rtree.ml: Array Box2 Int List
