test/util.ml: Alcotest Box2 Float Format QCheck QCheck_alcotest Rfid_geom Rfid_model Rfid_prob Vec3
