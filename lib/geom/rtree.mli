(** A simplified R*-tree over XY bounding boxes.

    §IV-C of the paper indexes the bounding boxes of past sensing
    regions with "a standard spatial index (a simplified R*-tree)"; this
    is that structure. It is a classic Guttman R-tree with quadratic
    node split and the R*-style least-enlargement / least-area insertion
    heuristic (forced reinsertion is omitted — hence "simplified", as in
    the paper).

    Values are never removed in the engine (old sensing regions stay
    queryable for the lifetime of a scan), so only [insert] and [query]
    are needed; [clear] supports starting a new scan round. *)

type 'a t

val create : ?max_entries:int -> unit -> 'a t
(** [max_entries] is the node capacity M (default 8); the minimum fill
    is M/3 as in Guttman's experiments. @raise Invalid_argument if
    [max_entries < 4]. *)

val insert : 'a t -> Box2.t -> 'a -> unit
(** Insert a value under its bounding box; duplicates are kept. *)

val query : 'a t -> Box2.t -> 'a list
(** All values whose box intersects the probe box, in unspecified
    order. *)

(** Reusable hit buffers for {!query_into}: a growable array that keeps
    its storage across queries, so per-epoch probes stop building
    lists. *)
module Hits : sig
  type 'a t

  val create : dummy:'a -> 'a t
  (** [dummy] fills unused capacity (and cleared slots, so stale hits
      are not pinned for the GC). *)

  val length : 'a t -> int
  (** Hits appended since the last {!clear}. *)

  val get : 'a t -> int -> 'a
  (** @raise Invalid_argument outside [0, length). *)

  val clear : 'a t -> unit
  (** Empty the buffer, overwriting cleared slots with [dummy];
      capacity is retained. *)

  val push : 'a t -> 'a -> unit
  (** Append a hit, growing the backing array as needed — for sibling
      index structures ({!Dyn_index}) that fill the same buffers. *)
end

val query_into : 'a t -> Box2.t -> 'a Hits.t -> unit
(** [query_into t probe hits] clears [hits] and appends every value
    whose box intersects [probe], in tree visit order — the {e reverse}
    of the list {!query} returns (that list is built by prepending).
    Allocation-free once the buffer has grown to the working size. *)

val iter_overlapping : 'a t -> Box2.t -> (Box2.t -> 'a -> unit) -> unit
(** Like {!query} but streaming box/value pairs without building a
    list. *)

val size : 'a t -> int
(** Number of stored values. *)

val depth : 'a t -> int
(** Height of the tree (1 for a single leaf). *)

val clear : 'a t -> unit
(** Drop every entry (start of a new scan round); capacity-free, the
    tree shrinks back to one empty leaf. *)
