(** Self-calibration by Monte-Carlo EM (§III-C).

    Given a small training trace from the deployment environment — the
    observed reader locations plus readings of a handful of tags, some
    of which are shelf tags with known locations — estimate all model
    parameters: the sensor coefficients \{a_c\} ∪ \{b_c\}, the average
    reader velocity ∆ and its variance Σ_m, and the location-sensing
    bias µ_s and variance Σ_s.

    The E-step runs the factorized particle filter under the current
    parameters and harvests weighted sensing outcomes: for each epoch
    and shelf tag, (distance, angle, read?) under each reader-particle
    hypothesis; for each epoch and object tag with live particles, the
    same under paired (object-particle, reader-particle) hypotheses. The
    M-step refits the sensor by weighted logistic regression and
    re-estimates the Gaussians in closed form from the posterior reader
    track. A handful of iterations suffices; with zero known tags EM can
    settle in a local maximum — the paper observes exactly this
    (Fig. 5(e) at x = 0). *)

type config = {
  em_iters : int;  (** EM rounds (default 4) *)
  object_samples : int;
      (** object particles harvested per (tag, epoch) in the E-step (default 10) *)
  reader_samples : int;
      (** reader particles harvested per (shelf tag, epoch) (default 10) *)
  neg_distance_cap : float;
      (** discard miss-outcomes farther than this from the reader
          (default 8 ft) — distant misses are uninformative and would
          swamp the fit *)
  filter_config : Rfid_core.Config.t;  (** E-step filter settings *)
  l2 : float;  (** M-step ridge penalty (default 1e-3) *)
  fit_motion : bool;  (** also refit motion and location sensing (default true) *)
  prior_miss_distance : float option;
      (** physical prior: inject pseudo-misses at distances in
          [d, 2d] so the distance decay stays identified even when the
          training geometry never pairs small angles with large
          distances (default [Some 12.] ft) *)
  prior_weight : float;  (** total weight of the pseudo-misses (default 5) *)
  e_step_sigma_floor : float;
      (** lower bound (ft) on the location-sensing sigma used inside the
          E-step filter, so shelf-tag evidence can move the reader
          posterior off the reported track and expose systematic bias
          (default 0.75) *)
  e_step_motion_floor : float;
      (** lower bound (ft) on the per-axis motion sigma of the E-step
          proposal, so reader particles can actually explore away from
          the reported track (default 0.05) *)
  bias_gain : float;
      (** over-relaxation factor on the location-sensing bias update —
          the filtered posterior recovers only a fraction of a
          systematic offset per EM round, so the innovation is amplified
          (default 2.0; 1.0 = plain EM) *)
  seed : int;
}

val default_config : ?heading_model:Rfid_core.Config.heading_model -> unit -> config

val calibrate :
  world:Rfid_model.World.t ->
  init:Rfid_model.Params.t ->
  config:config ->
  observations:Rfid_model.Types.observation list ->
  init_reader:Rfid_model.Reader_state.t ->
  Rfid_model.Params.t
(** Run EM on a training stream. The returned parameters keep [init]'s
    object model (α is not identifiable from a short static-object
    trace). @raise Invalid_argument on an empty stream. *)

(** {1 E-step internals, exposed for tests} *)

type evidence = {
  geometries : (float * float) array;  (** (distance, angle) pairs *)
  outcomes : bool array;
  weights : float array;
  reader_track : (Rfid_geom.Vec3.t * Rfid_geom.Vec3.t) array;
      (** (posterior reader mean, reported location) per epoch *)
}

val e_step :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:config ->
  observations:Rfid_model.Types.observation list ->
  init_reader:Rfid_model.Reader_state.t ->
  evidence
