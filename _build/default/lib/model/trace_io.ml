let header = "# rfid_streams observations v1"

let tag_to_token = Types.tag_to_string

let tag_of_token line_no tok =
  match String.index_opt tok ':' with
  | Some i -> (
      let kind = String.sub tok 0 i in
      let id =
        match int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) with
        | Some id -> id
        | None -> failwith (Printf.sprintf "Trace_io: line %d: bad tag id in %S" line_no tok)
      in
      match kind with
      | "obj" -> Types.Object_tag id
      | "shelf" -> Types.Shelf_tag id
      | _ -> failwith (Printf.sprintf "Trace_io: line %d: unknown tag kind %S" line_no tok))
  | None -> failwith (Printf.sprintf "Trace_io: line %d: malformed tag %S" line_no tok)

let write_observations oc observations =
  output_string oc (header ^ "\n");
  output_string oc "epoch,reported_x,reported_y,reported_z,tags\n";
  List.iter
    (fun (o : Types.observation) ->
      let l = o.Types.o_reported_loc in
      Printf.fprintf oc "%d,%.6f,%.6f,%.6f,%s\n" o.Types.o_epoch l.Rfid_geom.Vec3.x
        l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z
        (String.concat ";" (List.map tag_to_token o.Types.o_read_tags)))
    observations

let parse_line line_no line =
  match String.split_on_char ',' line with
  | [ epoch; x; y; z; tags ] -> (
      let num what s =
        match float_of_string_opt s with
        | Some v -> v
        | None ->
            failwith (Printf.sprintf "Trace_io: line %d: bad %s %S" line_no what s)
      in
      match int_of_string_opt epoch with
      | None -> failwith (Printf.sprintf "Trace_io: line %d: bad epoch %S" line_no epoch)
      | Some e ->
          let tags =
            if tags = "" then []
            else
              String.split_on_char ';' tags |> List.map (tag_of_token line_no)
          in
          {
            Types.o_epoch = e;
            o_reported_loc = Rfid_geom.Vec3.make (num "x" x) (num "y" y) (num "z" z);
            o_read_tags = tags;
          })
  | _ -> failwith (Printf.sprintf "Trace_io: line %d: expected 5 fields" line_no)

let observations_of_lines lines =
  let out = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && (not (String.length line > 0 && line.[0] = '#')) then
        if String.length line >= 5 && String.sub line 0 5 = "epoch" then ()
        else out := parse_line (i + 1) line :: !out)
    lines;
  List.rev !out

let read_observations ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  observations_of_lines (List.rev !lines)

let observations_to_string observations =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf "epoch,reported_x,reported_y,reported_z,tags\n";
  List.iter
    (fun (o : Types.observation) ->
      let l = o.Types.o_reported_loc in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f,%.6f,%s\n" o.Types.o_epoch l.Rfid_geom.Vec3.x
           l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z
           (String.concat ";" (List.map tag_to_token o.Types.o_read_tags))))
    observations;
  Buffer.contents buf

let observations_of_string s =
  observations_of_lines (String.split_on_char '\n' s)

let write_events oc events =
  output_string oc "epoch,obj,x,y,z\n";
  List.iter
    (fun (epoch, obj, (l : Rfid_geom.Vec3.t)) ->
      Printf.fprintf oc "%d,%d,%.6f,%.6f,%.6f\n" epoch obj l.Rfid_geom.Vec3.x
        l.Rfid_geom.Vec3.y l.Rfid_geom.Vec3.z)
    events
