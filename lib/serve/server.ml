type config = {
  host : string;
  port : int;
  max_conns : int;
  max_steps_per_tick : int;
  tick_timeout : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_steps_per_tick = 256;
    tick_timeout = 0.05;
  }

type conn = {
  fd : Unix.file_descr;
  framing : Framing.buffer;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable closing : bool;  (* close once [out] drains (QUIT) *)
}

let enqueue conn reply = if reply <> "" then Buffer.add_string conn.out reply

let pending_out conn = Buffer.length conn.out - conn.out_off

(* One non-blocking write of whatever the kernel will take. Returns
   [false] when the connection is dead (EPIPE/reset). *)
let flush_conn conn =
  if pending_out conn = 0 then true
  else
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_off
        (pending_out conn)
    with
    | n ->
        conn.out_off <- conn.out_off + n;
        if conn.out_off >= Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_off <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) -> false

let read_chunk_size = 8192

let stop_requested = ref false

let install_signal_handlers () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let latch = Sys.Signal_handle (fun _ -> stop_requested := true) in
  List.iter
    (fun s -> try Sys.set_signal s latch with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let run ?(on_listening = fun ~host:_ ~port:_ -> ()) ?(on_pass = fun () -> ())
    ?(should_stop = fun () -> false) core config =
  stop_requested := false;
  install_signal_handlers ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let () =
    try
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd 16;
      Unix.set_nonblock listen_fd
    with e ->
      Unix.close listen_fd;
      raise e
  in
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  on_listening ~host:config.host ~port:bound_port;
  let conns : conn list ref = ref [] in
  let close_conn conn =
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c -> c != conn) !conns
  in
  let accept_new () =
    let continue = ref true in
    while !continue do
      match Unix.accept listen_fd with
      | fd, _ ->
          if List.length !conns >= config.max_conns then
            (* Refusing at the accept keeps the fd set bounded; the
               client sees a clean close, not a hung connect. *)
            Unix.close fd
          else begin
            Unix.set_nonblock fd;
            let conn =
              {
                fd;
                framing = Framing.create_buffer ();
                out = Buffer.create 256;
                out_off = 0;
                closing = false;
              }
            in
            enqueue conn (Core.greeting core);
            conns := conn :: !conns
          end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | exception Unix.Unix_error (_, _, _) -> continue := false
    done
  in
  let buf = Bytes.create read_chunk_size in
  let handle_read conn =
    match Unix.read conn.fd buf 0 read_chunk_size with
    | 0 -> close_conn conn
    | n ->
        List.iter
          (fun ev ->
            match ev with
            | Framing.Overflow -> enqueue conn "ERR 413 line too long\n"
            | Framing.Line line ->
                let reply, close = Core.handle_line core line in
                enqueue conn reply;
                if close then conn.closing <- true)
          (Framing.feed conn.framing (Bytes.sub_string buf 0 n))
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error (_, _, _) -> close_conn conn
  in
  let loop_pass () =
    let readers = listen_fd :: List.map (fun c -> c.fd) !conns in
    let writers =
      List.filter_map
        (fun c -> if pending_out c > 0 then Some c.fd else None)
        !conns
    in
    let readable, writable, _ =
      try Unix.select readers writers [] config.tick_timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem listen_fd readable then accept_new ();
    List.iter
      (fun conn -> if List.mem conn.fd readable then handle_read conn)
      !conns;
    List.iter
      (fun conn ->
        if List.mem conn.fd writable then
          if not (flush_conn conn) then close_conn conn)
      !conns;
    (* Closing connections part after their goodbye is out the door. *)
    List.iter
      (fun conn -> if conn.closing && pending_out conn = 0 then close_conn conn)
      !conns;
    ignore (Core.tick core ~max_steps:config.max_steps_per_tick);
    on_pass ()
  in
  while not (!stop_requested || should_stop ()) do
    loop_pass ()
  done;
  (* Graceful drain: finish queued work, flush the engine, checkpoint
     (via Core's hooks), then best-effort flush of pending replies. *)
  Core.drain core;
  List.iter (fun conn -> ignore (flush_conn conn)) !conns;
  List.iter (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  Unix.close listen_fd
