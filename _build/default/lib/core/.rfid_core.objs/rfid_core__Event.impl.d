lib/core/event.ml: Array Float Format Rfid_geom Rfid_model Rfid_prob
