lib/model/sensor_model.mli: Format Rfid_geom
