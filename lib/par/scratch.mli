(** Per-domain scratch arenas for the filter hot paths.

    A scratch arena owns the reusable working memory one domain needs to
    process one work item (one object, one particle set) of a parallel
    filter pass: normalized-weight buffers, resample index buffers, a
    double-buffer particle slab for gather-and-swap resampling, and a
    re-keyable RNG. Buffers are handed out by (slot, length) and cached
    forever, so after the first epoch touches every length in play, the
    steady-state allocation of a filter's parallel body is zero.

    Arenas are owned by {!Pool}: [Pool.get_scratch pool did] returns the
    arena private to domain [did], so bodies running concurrently never
    share buffers. Contents are transient — valid only between a fill
    and the reads of the same work item; nothing is preserved across
    items, epochs, or [parallel_for] calls. *)

type t

val create : ?shard:int -> unit -> t
(** A fresh arena with no cached buffers. Normally obtained via
    {!Pool.get_scratch} rather than created directly. [shard]
    (default 0) is the arena's metric shard id — see {!shard}. *)

val float_buf : t -> slot:int -> int -> float array
(** [float_buf t ~slot n] is a float buffer of exactly length [n],
    cached per (slot, length). Distinct slots (0–3) never alias, so a
    body needing two same-length buffers at once takes them from
    different slots. Contents are whatever the previous use left.
    @raise Invalid_argument on a slot outside [0, 4). *)

val int_buf : t -> slot:int -> int -> int array
(** As {!float_buf} for int buffers (resample indices); slots 0–1. *)

val bits : t -> slot:int -> Rfid_prob.Bitset.t
(** [bits t ~slot] is the arena's cached {!Rfid_prob.Bitset} for [slot]
    (0–3), created empty on first use and reused forever after. Unlike
    the length-keyed buffers a bitset grows in place, so one per slot
    suffices. Contents are whatever the previous use left — callers
    [Bitset.clear] before filling. @raise Invalid_argument on a slot
    outside [0, 4). *)

val slab : t -> Rfid_prob.Particle_store.t
(** The arena's spare particle slab: gather a resampled particle set
    into it, then [Particle_store.swap] it with the live store. *)

val rng : t -> Rfid_prob.Rng.t
(** A reusable generator for {!Rfid_prob.Rng.for_key_into}; state is
    meaningless until re-keyed. *)

val allocations : t -> int
(** Number of buffers ever allocated by this arena — a steady-state hot
    path stops increasing it after warm-up (asserted by the tests). *)

val shard : t -> int
(** The arena's metric shard id. {!Pool} sets it to the owning domain's
    stable id, so a parallel body can record into the per-domain cell
    row of a sharded [Rfid_obs.Metrics] metric
    ([observe_shard ~shard:(Scratch.shard scratch)]) without threading
    the domain id separately. *)

val set_shard : t -> int -> unit
(** Re-tag the arena's metric shard id (done by {!Pool} at arena
    creation; rarely needed elsewhere). *)
