type t = { move_prob : float }

let create ?(move_prob = 1e-4) () =
  if not (move_prob >= 0. && move_prob <= 1.) then
    invalid_arg "Object_model.create: move_prob must be in [0, 1]";
  { move_prob }

let default = create ()

let sample_next t world rng loc =
  if Rfid_prob.Rng.bernoulli rng ~p:t.move_prob then World.sample_on_shelves world rng
  else loc
