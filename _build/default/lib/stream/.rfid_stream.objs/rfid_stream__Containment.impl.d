lib/stream/containment.ml: Format Hashtbl Int List Option Rfid_core Rfid_geom String Union_find Vec3
