lib/prob/resample.ml: Array Float Rng Stats
