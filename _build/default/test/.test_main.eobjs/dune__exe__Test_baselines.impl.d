test/test_baselines.ml: Alcotest List Params Printf Rfid_baselines Rfid_core Rfid_eval Rfid_learn Rfid_model Rfid_prob Rfid_sim Smurf Trace Types Uniform Util World
