lib/sim/warehouse.ml: Array Box2 List Rfid_geom Rfid_model Vec3
