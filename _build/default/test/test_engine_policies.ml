(* Focused tests of engine policies and edge cases not covered by the
   main filter suite: compression gating, report scheduling corner
   cases, estimate statistics, and configuration interplay. *)
open Rfid_core
open Rfid_model

let fitted_params =
  lazy
    (let cone = Rfid_sim.Truth_sensor.cone () in
     let sensor =
       Rfid_learn.Supervised.fit_sensor ~samples:8000
         ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:2 ()
     in
     Params.create ~sensor ())

let scenario ?(num_objects = 8) ?(rounds = 1) ?(seed = 77) () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed)
  in
  (wh, trace)

let test_compress_nll_gate_blocks () =
  (* An impossible NLL bound means nothing ever qualifies for
     compression: the engine behaves exactly like Factorized_indexed. *)
  let wh, trace = scenario () in
  let config =
    Config.create ~variant:Config.Factorized_compressed ~num_reader_particles:60
      ~num_object_particles:100 ~compress_after:8
      ~compress_max_nll:(Some neg_infinity) ()
  in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  List.iter (fun o -> Factored_filter.step filter o) (Trace.observations trace);
  List.iter
    (fun obj ->
      Alcotest.(check bool) "never compressed" false
        (Factored_filter.is_compressed filter obj))
    (Factored_filter.known_objects filter)

let test_compress_nll_gate_allows () =
  (* A permissive bound compresses everything that leaves scope. *)
  let wh, trace = scenario () in
  let config =
    Config.create ~variant:Config.Factorized_compressed ~num_reader_particles:60
      ~num_object_particles:100 ~compress_after:8 ~compress_max_nll:(Some 1e9) ()
  in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  List.iter (fun o -> Factored_filter.step filter o) (Trace.observations trace);
  Alcotest.(check bool) "first object compressed" true
    (Factored_filter.is_compressed filter 0)

let test_event_covariance_is_sane () =
  let _, trace = scenario () in
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:60
      ~num_object_particles:120 ()
  in
  let r =
    Rfid_eval.Runner.run_engine ~params:(Lazy.force fitted_params) ~config ~seed:5 trace
  in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.ev_cov with
      | None -> Alcotest.fail "engine events must carry statistics"
      | Some cov ->
          (* Symmetric, PSD-ish diagonal, and a sub-foot posterior
             spread once an object has been tracked. *)
          Util.check_close ~eps:1e-9 "cov symmetric" cov.(0).(1) cov.(1).(0);
          Alcotest.(check bool) "var x >= 0" true (cov.(0).(0) >= 0.);
          (match Event.std_dev_xy ev with
          | Some sd -> Alcotest.(check bool) "posterior sd < 2 ft" true (sd < 2.)
          | None -> Alcotest.fail "sd missing"))
    r.Rfid_eval.Runner.events

let test_multiple_encounters_emit_multiple_events () =
  let _, trace = scenario ~rounds:2 () in
  let config =
    Config.create ~variant:Config.Factorized_indexed ~num_reader_particles:60
      ~num_object_particles:100 ~report_delay:20 ()
  in
  let r =
    Rfid_eval.Runner.run_engine ~params:(Lazy.force fitted_params) ~config ~seed:5 trace
  in
  (* Two scan rounds -> two encounters -> (at least) two events for the
     typical object. *)
  let by_obj = Hashtbl.create 8 in
  List.iter
    (fun (ev : Event.t) ->
      Hashtbl.replace by_obj ev.Event.ev_obj
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_obj ev.Event.ev_obj)))
    r.Rfid_eval.Runner.events;
  let twice = Hashtbl.fold (fun _ c acc -> if c >= 2 then acc + 1 else acc) by_obj 0 in
  Alcotest.(check bool)
    (Printf.sprintf "%d of 8 objects reported twice" twice)
    true (twice >= 6)

let test_zero_report_delay () =
  (* report_delay = 0: the event fires in the same epoch the object is
     first seen. *)
  let wh, trace = scenario () in
  let config =
    Config.create ~variant:Config.Factorized ~num_reader_particles:40
      ~num_object_particles:60 ~report_delay:0 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:5 ()
  in
  let first_event_epoch = ref None in
  let first_read_epoch = ref None in
  List.iter
    (fun (obs : Types.observation) ->
      (match (!first_read_epoch, obs.Types.o_read_tags) with
      | None, tag :: _ when (match tag with Types.Object_tag _ -> true | _ -> false) ->
          first_read_epoch := Some obs.Types.o_epoch
      | _ -> ());
      match (Engine.step engine obs, !first_event_epoch) with
      | ev :: _, None -> first_event_epoch := Some ev.Event.ev_epoch
      | _ -> ())
    (Trace.observations trace);
  match (!first_read_epoch, !first_event_epoch) with
  | Some r, Some e -> Alcotest.(check int) "event at first read" r e
  | _ -> Alcotest.fail "no reads or no events"

let test_decompress_particle_count () =
  (* After a re-detection, a previously compressed object runs on the
     configured (small) particle budget. *)
  let wh, trace = scenario ~rounds:2 () in
  let config =
    Config.create ~variant:Config.Factorized_compressed ~num_reader_particles:60
      ~num_object_particles:100 ~compress_after:8 ~decompress_particles:10 ()
  in
  let rng = Rfid_prob.Rng.create ~seed:5 in
  let filter =
    Factored_filter.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Lazy.force fitted_params) ~config
      ~init_reader:(Rfid_sim.Warehouse.reader_start wh) ~rng
  in
  let half = Trace.epochs trace / 2 in
  let decompressed_size = ref None in
  Array.iter
    (fun (st : Trace.step) ->
      Factored_filter.step filter st.Trace.observation;
      (* Shortly into round 2, object 7 (scanned last in round 1, first
         in round 2) gets re-detected. *)
      if st.Trace.epoch > half && !decompressed_size = None then begin
        let n = ref 0 in
        Factored_filter.iter_object_particles filter 7 (fun _ _ _ -> incr n);
        if !n > 0 then decompressed_size := Some !n
      end)
    trace.Trace.steps;
  match !decompressed_size with
  | Some n ->
      Alcotest.(check bool)
        (Printf.sprintf "decompressed budget %d <= 2x configured" n)
        true (n <= 20)
  | None -> Alcotest.fail "object 7 never re-expanded"

let suite =
  ( "engine_policies",
    [
      Alcotest.test_case "compression NLL gate blocks" `Quick
        test_compress_nll_gate_blocks;
      Alcotest.test_case "compression NLL gate allows" `Quick
        test_compress_nll_gate_allows;
      Alcotest.test_case "event covariance sane" `Quick test_event_covariance_is_sane;
      Alcotest.test_case "multiple encounters, multiple events" `Quick
        test_multiple_encounters_emit_multiple_events;
      Alcotest.test_case "zero report delay" `Quick test_zero_report_delay;
      Alcotest.test_case "decompression particle budget" `Quick
        test_decompress_particle_count;
    ] )
