lib/core/common.ml: Cone Config Float Location_sensing Motion_model Rfid_geom Rfid_model Rfid_prob Sensor_model Vec3 World
