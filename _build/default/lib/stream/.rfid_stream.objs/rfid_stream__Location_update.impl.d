lib/stream/location_update.ml: Format Hashtbl List Rfid_core Rfid_geom Rfid_model Vec3
