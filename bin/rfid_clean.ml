(* rfid_clean: command-line front end.

   Subcommands:
     simulate   generate a warehouse scan and dump the raw streams
     infer      simulate, clean with the inference engine, print events
     calibrate  EM self-calibration on a simulated training trace
     lab        the lab-deployment comparison (ours vs SMURF vs uniform)

   The full table/figure reproduction harness is a separate executable:
   dune exec bench/main.exe. *)

open Cmdliner
open Rfid_model

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let objects_arg =
  Arg.(value & opt int 16 & info [ "objects"; "n" ] ~docv:"N" ~doc:"Number of tagged objects.")

let rounds_arg =
  Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N" ~doc:"Scan rounds over the warehouse.")

let read_rate_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "read-rate" ] ~docv:"R"
        ~doc:"Read rate in the sensor's major detection range (0..1].")

let particles_arg =
  Arg.(
    value
    & opt int 200
    & info [ "particles"; "k" ] ~docv:"K" ~doc:"Particles per object.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the per-object update loop (1 = sequential). \
           Output is bit-identical for every value.")

let variant_arg =
  let variants =
    [
      ("unfactorized", Rfid_core.Config.Unfactorized);
      ("factorized", Rfid_core.Config.Factorized);
      ("indexed", Rfid_core.Config.Factorized_indexed);
      ("compressed", Rfid_core.Config.Factorized_compressed);
    ]
  in
  Arg.(
    value
    & opt (enum variants) Rfid_core.Config.Factorized_indexed
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:
          "Engine variant: $(b,unfactorized), $(b,factorized), $(b,indexed) \
           (factorized + spatial index), or $(b,compressed) (+ belief \
           compression).")

let build_scenario ~objects ~rounds ~read_rate ~seed =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:read_rate () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed)
  in
  (wh, sensor, trace)

let fitted_params (sensor : Rfid_sim.Truth_sensor.t) =
  let fitted =
    Rfid_learn.Supervised.fit_sensor ~read_prob:sensor.Rfid_sim.Truth_sensor.read_prob
      ~seed:99 ()
  in
  Params.create ~sensor:fitted ()

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate objects rounds read_rate seed out =
  let _, _, trace = build_scenario ~objects ~rounds ~read_rate ~seed in
  let observations = Trace.observations trace in
  match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Trace_io.write_observations oc observations);
      Printf.printf "wrote %d observations (%d objects) to %s\n"
        (List.length observations) trace.Trace.num_objects path
  | None -> Trace_io.write_observations stdout observations

let simulate_cmd =
  let doc =
    "Simulate a warehouse scan; dump the raw synchronized streams as CSV \
     (replayable through the library's Trace_io module)."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the stream to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(const simulate $ objects_arg $ rounds_arg $ read_rate_arg $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* infer                                                               *)

let infer objects rounds read_rate seed variant particles domains =
  let wh, sensor, trace = build_scenario ~objects ~rounds ~read_rate ~seed in
  let params = fitted_params sensor in
  let config =
    Rfid_core.Config.create ~variant ~num_object_particles:particles
      ~num_domains:domains ()
  in
  let t0 = Unix.gettimeofday () in
  let r = Rfid_eval.Runner.run_engine ~params ~config ~seed trace in
  ignore wh;
  List.iter (fun ev -> Format.printf "%a@." Rfid_core.Event.pp ev)
    r.Rfid_eval.Runner.events;
  Format.printf "@.%a | %.3f ms/reading | %.1fs total@." Rfid_eval.Metrics.pp_error
    r.Rfid_eval.Runner.error r.Rfid_eval.Runner.ms_per_reading
    (Unix.gettimeofday () -. t0)

let infer_cmd =
  let doc = "Simulate, clean the streams with the inference engine, print events." in
  Cmd.v
    (Cmd.info "infer" ~doc)
    Term.(
      const infer $ objects_arg $ rounds_arg $ read_rate_arg $ seed_arg $ variant_arg
      $ particles_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* calibrate                                                           *)

let calibrate shelf_tags em_iters seed =
  let wh = Rfid_sim.Warehouse.layout ~objects_per_shelf:1 ~num_objects:20 () in
  let keep =
    if shelf_tags = 0 then []
    else List.init shelf_tags (fun i -> i * 20 / shelf_tags)
  in
  let world = World.with_shelf_tags wh.Rfid_sim.Warehouse.world ~keep in
  let truth = Rfid_sim.Truth_sensor.cone () in
  let trace =
    Rfid_sim.Trace_gen.run ~world ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor:truth ())
      (Rfid_prob.Rng.create ~seed)
  in
  let config = Rfid_learn.Calibration.default_config () in
  let config = { config with Rfid_learn.Calibration.em_iters } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world ~init:Params.default ~config
      ~observations:(Trace.observations trace)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader
  in
  Format.printf "learned parameters (EM, %d iterations, %d known tags):@.%a@."
    em_iters shelf_tags Params.pp learned;
  Printf.printf "sensor mean-absolute-error vs true region: %.4f\n"
    (Rfid_learn.Supervised.mean_abs_error learned.Params.sensor
       ~read_prob:truth.Rfid_sim.Truth_sensor.read_prob ())

let calibrate_cmd =
  let doc = "EM self-calibration on a simulated 20-tag training trace." in
  let shelf_tags =
    Arg.(
      value & opt int 4
      & info [ "shelf-tags" ] ~docv:"N" ~doc:"Tags with known locations (0-20).")
  in
  let em_iters =
    Arg.(value & opt int 4 & info [ "em-iters" ] ~docv:"N" ~doc:"EM iterations.")
  in
  Cmd.v (Cmd.info "calibrate" ~doc) Term.(const calibrate $ shelf_tags $ em_iters $ seed_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)

let replay file objects variant particles seed domains =
  let ic = open_in file in
  let observations =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Trace_io.read_observations ic)
  in
  Printf.printf "# replaying %d observations from %s\n%!" (List.length observations) file;
  (* The stream file carries no world description; reconstruct the
     default warehouse geometry for the declared object count (the same
     convention `simulate` used to produce it). *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let params = fitted_params sensor in
  let config =
    Rfid_core.Config.create ~variant ~num_object_particles:particles
      ~num_domains:domains ()
  in
  let init_reader =
    match observations with
    | o :: _ ->
        Reader_state.make ~loc:o.Types.o_reported_loc ~heading:0.
    | [] -> Rfid_sim.Warehouse.reader_start wh
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params ~config
      ~init_reader ~num_objects:objects ~seed ()
  in
  let events = Rfid_core.Engine.run engine observations in
  Trace_io.write_events stdout
    (List.map
       (fun (ev : Rfid_core.Event.t) ->
         (ev.Rfid_core.Event.ev_epoch, ev.Rfid_core.Event.ev_obj, ev.Rfid_core.Event.ev_loc))
       events)

let replay_cmd =
  let doc =
    "Replay a recorded observation stream (see $(b,simulate --out)) through the \
     engine; print cleaned events as CSV."
  in
  let file =
    Arg.(
      required
      & opt (some file) None
      & info [ "in"; "i" ] ~docv:"FILE" ~doc:"Observation stream to replay.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const replay $ file $ objects_arg $ variant_arg $ particles_arg $ seed_arg
      $ domains_arg)

(* ------------------------------------------------------------------ *)
(* lab                                                                 *)

let lab timeout_ms large seed =
  let shelf_size = if large then Rfid_sim.Lab.Large else Rfid_sim.Lab.Small in
  let rig = Rfid_sim.Lab.deployment ~timeout_ms ~shelf_size () in
  let heading_model = Rfid_core.Config.Known_heading Rfid_sim.Lab.heading in
  let train = Rfid_sim.Lab.scan rig ~seed:(seed + 1) in
  let cal = Rfid_learn.Calibration.default_config ~heading_model () in
  let cal = { cal with Rfid_learn.Calibration.em_iters = 3 } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world:rig.Rfid_sim.Lab.world
      ~init:Params.default ~config:cal
      ~observations:(Trace.observations train)
      ~init_reader:train.Trace.steps.(0).Trace.true_reader
  in
  let trace = Rfid_sim.Lab.scan rig ~seed in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:150 ~num_object_particles:300 ~heading_model ()
  in
  let ours = Rfid_eval.Runner.run_engine ~params:learned ~config ~seed trace in
  let range = Float.min 8. (Sensor_model.detection_range learned.Params.sensor) in
  let obs = Trace.observations trace in
  let smurf =
    Rfid_baselines.Smurf.run ~world:rig.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Smurf.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed obs
  in
  let uniform =
    Rfid_baselines.Uniform.run ~world:rig.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Uniform.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed obs
  in
  let line label events =
    let e = Rfid_eval.Metrics.inference_error events trace in
    Printf.printf "%-18s X=%.2f Y=%.2f XY=%.2f ft\n" label e.Rfid_eval.Metrics.mean_x
      e.Rfid_eval.Metrics.mean_y e.Rfid_eval.Metrics.mean_xy
  in
  Printf.printf "lab deployment: timeout %d ms, %s shelf\n" timeout_ms
    (if large then "large" else "small");
  line "our system" ours.Rfid_eval.Runner.events;
  line "SMURF (improved)" smurf;
  line "uniform" uniform

let lab_cmd =
  let doc = "Run the lab-deployment comparison (Fig. 6(b) of the paper)." in
  let timeout =
    Arg.(
      value & opt int 500
      & info [ "timeout" ] ~docv:"MS" ~doc:"Reader timeout: 250, 500 or 750 ms.")
  in
  let large =
    Arg.(value & flag & info [ "large-shelf" ] ~doc:"Use the 2.6 ft imagined shelf.")
  in
  Cmd.v (Cmd.info "lab" ~doc) Term.(const lab $ timeout $ large $ seed_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "probabilistic cleaning of mobile RFID streams (Tran et al., ICDE 2009)" in
  let info = Cmd.info "rfid_clean" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ simulate_cmd; infer_cmd; replay_cmd; calibrate_cmd; lab_cmd ]))
