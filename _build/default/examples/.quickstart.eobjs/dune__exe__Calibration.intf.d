examples/calibration.mli:
