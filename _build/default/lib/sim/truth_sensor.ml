type t = {
  read_prob : d:float -> theta:float -> float;
  range : float;
  half_angle : float;
}

let deg x = x *. Float.pi /. 180.

let cone ?(rr_major = 1.0) ?(range = 3.0) () =
  if not (rr_major >= 0. && rr_major <= 1.) then
    invalid_arg "Truth_sensor.cone: rr_major must be in [0, 1]";
  if not (range > 0.) then invalid_arg "Truth_sensor.cone: range must be positive";
  let major_half = deg 15. and minor_half = deg 22.5 in
  let read_prob ~d ~theta =
    let theta = Float.abs theta in
    if d > range || theta > minor_half then 0.
    else if theta <= major_half then rr_major
    else rr_major *. (1. -. ((theta -. major_half) /. (minor_half -. major_half)))
  in
  { read_prob; range; half_angle = minor_half }

let spherical ?(rr_center = 0.8) ?(range = 4.0) ?(angle_falloff = 2.0) () =
  if not (rr_center >= 0. && rr_center <= 1.) then
    invalid_arg "Truth_sensor.spherical: rr_center must be in [0, 1]";
  if not (range > 0.) then invalid_arg "Truth_sensor.spherical: range must be positive";
  if not (angle_falloff > 0.) then
    invalid_arg "Truth_sensor.spherical: angle_falloff must be positive";
  let fade_start = 0.8 *. range in
  let read_prob ~d ~theta =
    let theta = Float.abs theta in
    if d > range then 0.
    else begin
      let angular = Float.max 0. (1. -. (theta /. angle_falloff)) in
      let radial =
        if d <= fade_start then 1. else 1. -. ((d -. fade_start) /. (range -. fade_start))
      in
      rr_center *. angular *. radial
    end
  in
  { read_prob; range; half_angle = Float.min Float.pi angle_falloff }

let sample_read t rng ~d ~theta = Rfid_prob.Rng.bernoulli rng ~p:(t.read_prob ~d ~theta)

let read_prob_at t ~reader_loc ~reader_heading ~tag_loc =
  let d, theta =
    Rfid_model.Sensor_model.geometry ~reader_loc ~reader_heading ~tag_loc
  in
  t.read_prob ~d ~theta
