(** Experiment driver: run an engine over a trace and measure accuracy
    and cost — the loop every bench and example shares. *)

type result = {
  events : Rfid_core.Event.t list;
  error : Metrics.error;
  total_readings : int;  (** tag readings processed (the throughput unit of §V) *)
  elapsed_s : float;  (** wall-clock inference time, seconds *)
  ms_per_reading : float;
  max_objects_processed : int;  (** peak per-epoch scope size *)
  live_heap_mb : float;
      (** growth of major-heap live words over the run (MB), i.e. the
          engine's footprint (events included, the input trace excluded)
          — the §V-D memory claim is about exactly this: compression
          keeps idle objects' beliefs at 9 floats instead of K
          particles *)
  epochs : int;  (** observations streamed *)
  minor_words_per_epoch : float;
      (** words allocated on the minor heap per observation — the
          number the zero-allocation hot path drives toward the fixed
          per-event cost (steady-state filter loops allocate nothing) *)
  major_words_per_epoch : float;
      (** words allocated directly on the major heap per observation
          (promotions excluded, so minor + major is total allocation) *)
  allocated_words_per_epoch : float;
      (** minor + major words per observation — what the perf gate
          compares against the committed baseline *)
  lat_p50_us : float;  (** per-epoch wall-clock latency percentiles *)
  lat_p95_us : float;
  lat_p99_us : float;
}

val run_engine :
  ?params:Rfid_model.Params.t ->
  config:Rfid_core.Config.t ->
  ?init_reader:Rfid_model.Reader_state.t ->
  ?seed:int ->
  Rfid_model.Trace.t ->
  result
(** Build an engine on the trace's world and stream every observation
    through it. [params] defaults to {!Rfid_model.Params.default};
    [init_reader] defaults to the trace's first true reader state (the
    paper assumes R_1 known). The [Unfactorized] variant receives the
    trace's object count automatically. *)
