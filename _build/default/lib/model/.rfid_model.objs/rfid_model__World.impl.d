lib/model/world.ml: Array Box2 Float Int List Rfid_geom Rfid_prob Types Vec3
