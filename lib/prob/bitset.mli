(** Dense growable bitsets over non-negative ints.

    The filter hot paths track sets of object ids (the sensing scope,
    the Case-1 read set, the index's pending set) whose members are
    small ints and whose lifetime is one epoch or one flush interval.
    A functional [Set.Make(Int)] allocates O(|set| log |set|) per epoch
    of rebuilding; a bitset with a high-water mark supports the same
    membership / union / ascending-iteration operations with zero
    steady-state allocation — [clear] and the scans cost O(words
    touched since the last clear), not O(capacity).

    Iteration order is ascending, matching [Set.Make(Int)], so code
    ported from [Int_set] keeps its deterministic processing order
    (the golden-trace suite depends on it). Negative ints are never
    members: {!mem} answers [false], {!add} raises. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty set; [capacity] (default 0) pre-sizes the backing words for
    elements in [0, capacity). Growth beyond it is automatic. *)

val mem : t -> int -> bool
(** Membership; [false] for negative or never-added-range ints. *)

val add : t -> int -> unit
(** @raise Invalid_argument on a negative element. *)

val remove : t -> int -> unit
(** No-op if absent (or negative). *)

val clear : t -> unit
(** Empty the set in O(high-water-mark words). *)

val cardinal : t -> int
(** O(1) — maintained by {!add}/{!remove}/{!union_into}. *)

val is_empty : t -> bool

val union_into : into:t -> t -> unit
(** [union_into ~into src] adds every member of [src] to [into] by
    word-wise OR — the delta update for an accumulating pending set. *)

val iter : t -> (int -> unit) -> unit
(** Visit members in ascending order. *)

val fill_into : t -> int array -> int
(** Write the members in ascending order into a caller-owned buffer of
    length at least {!cardinal}; returns the count. The allocation-free
    path from a scratch bitset to a dense work list. *)

val elements : t -> int list
(** Ascending member list (allocates; for snapshots and tests). *)
