(** Epoch-based sliding windows over event streams — the [Range n]
    window of CQL, supporting the stream queries of §II-B. *)

type 'a t

val create : size:int -> 'a t
(** Window covering the last [size] epochs (inclusive of the current
    one). @raise Invalid_argument if [size <= 0]. *)

val push : 'a t -> epoch:Rfid_model.Types.epoch -> 'a -> unit
(** Insert an element; elements older than [epoch - size + 1] are
    evicted. Epochs must be non-decreasing across pushes.
    @raise Invalid_argument on a regression. *)

val advance : 'a t -> epoch:Rfid_model.Types.epoch -> unit
(** Evict as if an element at [epoch] had arrived, without inserting. *)

val contents : 'a t -> (Rfid_model.Types.epoch * 'a) list
(** Live elements, oldest first. *)

val fold : 'a t -> init:'b -> f:('b -> Rfid_model.Types.epoch -> 'a -> 'b) -> 'b
val length : 'a t -> int
