(** Chrome-trace-event sink for offline flamegraph inspection.

    When the [OBS_TRACE] environment variable names a file, every
    {!Metrics.stop} appends one complete ("X"-phase) trace event to an
    in-memory buffer, and the buffer is written as a Chrome
    [traceEvents] JSON document at process exit (or on {!write_now}).
    Load the file in [chrome://tracing] or Perfetto to see the
    per-stage span structure of a run; nesting is recovered from
    interval containment, so no begin/end pairing is required.

    With [OBS_TRACE] unset the sink is disabled and {!emit} is a
    no-op — the only cost on the metrics hot path is one branch. The
    buffer is capped at {!max_events} events so a long run cannot grow
    without bound; events past the cap are counted but not recorded. *)

val enabled : unit -> bool
(** Whether a trace sink is active (an [OBS_TRACE] path was present at
    startup, or {!set_path} installed one). *)

val max_events : int
(** Hard cap on buffered events (1,000,000). *)

val emit : name:string -> ts_us:float -> dur_us:float -> unit
(** Record one complete span: [name], start timestamp and duration in
    microseconds. No-op when disabled; thread-safe. *)

val events : unit -> int
(** Events recorded so far (capped at {!max_events}). *)

val write_now : unit -> unit
(** Write the buffered events to the configured path as a Chrome
    [{"traceEvents": [...]}] document, truncating any previous
    contents. Registered with [at_exit]; safe to call repeatedly or
    when disabled (no-op). *)

val set_path : string option -> unit
(** Redirect (or, with [None], disable) the sink at run time,
    discarding any buffered events — intended for tests; production
    runs should use the [OBS_TRACE] environment variable. *)
