lib/model/object_model.ml: Rfid_prob World
