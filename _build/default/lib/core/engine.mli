(** The streaming inference engine: consumes synchronized observations
    and produces the clean location-event stream (§II-A's output).

    [Engine] wraps one of the filter implementations selected by
    {!Config.variant} and adds the report policy: the paper's systems
    emit an event for an object a fixed delay after it enters the
    reader's scope during the current scan ("within x seconds after an
    object was read"), so downstream queries see one stable location per
    object per encounter instead of a fluctuating estimate. [flush]
    emits events for encounters still pending at stream end (e.g. "upon
    completion of a full area scan"). *)

type t

val create :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  init_reader:Rfid_model.Reader_state.t ->
  ?num_objects:int ->
  ?seed:int ->
  unit ->
  t
(** [num_objects] is required by the [Unfactorized] variant (its joint
    particles hold a location per object) and ignored otherwise.
    [seed] (default 0) makes the engine deterministic.
    @raise Invalid_argument if the variant is [Unfactorized] and
    [num_objects] is missing. *)

val step : t -> Rfid_model.Types.observation -> Event.t list
(** Feed one epoch; returns the events whose report delay expired at
    this epoch. @raise Invalid_argument on out-of-order epochs. *)

val run : t -> Rfid_model.Types.observation list -> Event.t list
(** [step] over a whole stream, then {!flush}; returns all events in
    emission order. *)

val flush : t -> Event.t list
(** Emit events for all pending encounters (end-of-scan policy). *)

val estimate : t -> int -> (Rfid_geom.Vec3.t * Rfid_prob.Linalg.mat) option
(** Current posterior mean/covariance of an object's location. *)

val reader_estimate : t -> Rfid_geom.Vec3.t
val known_objects : t -> int list
val epoch : t -> Rfid_model.Types.epoch

val objects_processed_last_step : t -> int
(** Factored variants: objects touched by the last step; for
    [Unfactorized] this is the declared object count. *)

val config : t -> Config.t
