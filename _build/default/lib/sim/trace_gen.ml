open Rfid_geom
open Rfid_model

type segment = { velocity : Vec3.t; heading : float; seg_epochs : int }
type movement = { move_epoch : int; move_obj : int; move_to : Vec3.t }

type location_noise =
  | Gaussian_report of Location_sensing.t
  | Dead_reckoning

type config = {
  sensor : Truth_sensor.t;
  motion_sigma : Vec3.t;
  velocity_bias : Vec3.t;
  drift_cap : float option;
  location_noise : location_noise;
  read_every : int;
  movements : movement list;
}

let default_config ?sensor () =
  let sensor = match sensor with Some s -> s | None -> Truth_sensor.cone () in
  {
    sensor;
    motion_sigma = Vec3.make 0.01 0.01 0.;
    velocity_bias = Vec3.zero;
    drift_cap = None;
    location_noise = Gaussian_report Location_sensing.default;
    read_every = 1;
    movements = [];
  }

let straight_pass ?(speed = 0.1) ?(margin = 1.0) (wh : Warehouse.t) ~rounds =
  if rounds <= 0 then invalid_arg "Trace_gen.straight_pass: rounds must be positive";
  if speed <= 0. then invalid_arg "Trace_gen.straight_pass: speed must be positive";
  let run_length = wh.Warehouse.y_extent +. (2. *. margin) in
  let epochs_per_pass = Int.max 1 (int_of_float (Float.ceil (run_length /. speed))) in
  List.init rounds (fun r ->
      let dir = if r mod 2 = 0 then 1. else -1. in
      {
        velocity = Vec3.make 0. (dir *. speed) 0.;
        heading = 0.;
        seg_epochs = epochs_per_pass;
      })

let run ~world ~object_locs ~start ~path ~config rng =
  if config.read_every <= 0 then invalid_arg "Trace_gen.run: read_every must be positive";
  let num_objects = Array.length object_locs in
  List.iter
    (fun m ->
      if m.move_obj < 0 || m.move_obj >= num_objects then
        invalid_arg "Trace_gen.run: movement refers to unknown object")
    config.movements;
  let moves = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.add moves m.move_epoch m) config.movements;
  let total_epochs = List.fold_left (fun acc s -> acc + s.seg_epochs) 0 path in
  (* Snapshots are shared between consecutive epochs and only copied
     when a scripted movement actually changes them — a deep copy per
     epoch would make long traces of large warehouses cost hundreds of
     megabytes for ground truth alone. *)
  let locs = ref (Array.copy object_locs) in
  let true_pos = ref start.Reader_state.loc in
  let nominal_pos = ref start.Reader_state.loc in
  let steps = Array.make total_epochs None in
  let epoch = ref 0 in
  let shelf_tags = World.shelf_tags world in
  List.iter
    (fun seg ->
      for _ = 1 to seg.seg_epochs do
        let e = !epoch in
        (* True motion: nominal velocity + systematic bias + jitter. *)
        let jitter =
          Vec3.make
            (Rfid_prob.Rng.gaussian rng ~sigma:config.motion_sigma.Vec3.x ())
            (Rfid_prob.Rng.gaussian rng ~sigma:config.motion_sigma.Vec3.y ())
            (Rfid_prob.Rng.gaussian rng ~sigma:config.motion_sigma.Vec3.z ())
        in
        if e > 0 then begin
          nominal_pos := Vec3.add !nominal_pos seg.velocity;
          true_pos :=
            Vec3.add !true_pos (Vec3.add seg.velocity (Vec3.add config.velocity_bias jitter));
          match config.drift_cap with
          | Some cap ->
              let dev = Vec3.sub !true_pos !nominal_pos in
              let n = Vec3.norm dev in
              if n > cap then true_pos := Vec3.add !nominal_pos (Vec3.scale (cap /. n) dev)
          | None -> ()
        end;
        let reader = Reader_state.make ~loc:!true_pos ~heading:seg.heading in
        let reported =
          match config.location_noise with
          | Gaussian_report sensing -> Location_sensing.sample_report sensing rng !true_pos
          | Dead_reckoning -> !nominal_pos
        in
        (* Scripted object relocations at the start of this epoch
           (copy-on-write: unchanged epochs share the snapshot). *)
        (match Hashtbl.find_all moves e with
        | [] -> ()
        | ms ->
            let fresh = Array.copy !locs in
            List.iter (fun m -> fresh.(m.move_obj) <- m.move_to) ms;
            locs := fresh);
        let read_tags =
          if e mod config.read_every <> 0 then []
          else begin
            let sense tag_loc =
              let p =
                Truth_sensor.read_prob_at config.sensor ~reader_loc:!true_pos
                  ~reader_heading:seg.heading ~tag_loc
              in
              Rfid_prob.Rng.bernoulli rng ~p
            in
            let objs = ref [] in
            for i = num_objects - 1 downto 0 do
              if sense !locs.(i) then objs := Types.Object_tag i :: !objs
            done;
            let shelves =
              List.filter_map
                (fun (tag, loc) -> if sense loc then Some tag else None)
                shelf_tags
            in
            !objs @ shelves
          end
        in
        let obs = { Types.o_epoch = e; o_reported_loc = reported; o_read_tags = read_tags } in
        steps.(e) <-
          Some
            {
              Trace.epoch = e;
              true_reader = reader;
              true_object_locs = !locs;
              observation = obs;
            };
        incr epoch
      done)
    path;
  let steps =
    Array.map
      (function Some s -> s | None -> invalid_arg "Trace_gen.run: internal gap")
      steps
  in
  { Trace.world; num_objects; steps }
