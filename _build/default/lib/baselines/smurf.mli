(** SMURF (Jeffery et al., VLDB J. 2007) — the state-of-the-art RFID
    cleaning baseline the paper compares against — augmented with
    location sampling exactly as §V-C describes.

    SMURF proper is an adaptive per-tag smoothing filter: it maintains a
    sliding window over each tag's readings, sizes the window from the
    tag's estimated read rate via a binomial completeness argument
    (window w* ≈ ln(1/delta) / p_avg epochs guarantees a read with
    probability 1 − delta while the tag is present), and shrinks the
    window when a statistically significant drop in reads signals that
    the tag left the range. Within its window a tag is declared
    {e present}.

    Because SMURF only answers "in range or not", the paper augments it
    for location events: while a tag is declared present, sample a
    location uniformly over the intersection of the read range (centred
    on the {e reported} reader location — SMURF has no mechanism to
    correct reader-location error) and the shelf; when the tag is
    declared gone, average the samples of that presence period into one
    location event. The read range is supplied externally (the paper
    hands SMURF the range from {e our} learned sensor model, since SMURF
    cannot learn one). *)

type config = {
  delta : float;  (** completeness confidence parameter (default 0.05) *)
  max_window : int;  (** window-size cap, epochs (default 25) *)
  read_range : float;  (** sensing radius (ft) used for location sampling *)
  required_reads : int;
      (** minimum reads before the window logic engages (default 1) *)
  heading_of : (Rfid_model.Types.epoch -> float) option;
      (** antenna orientation per epoch, when known: location samples are
          then restricted to the half-plane the antenna faces (the
          paper's lab robot scans one row at a time) *)
}

val default_config : ?heading_of:(Rfid_model.Types.epoch -> float) -> read_range:float -> unit -> config
(** @raise Invalid_argument if [read_range <= 0]. *)

val run :
  world:Rfid_model.World.t ->
  config:config ->
  seed:int ->
  Rfid_model.Types.observation list ->
  Rfid_core.Event.t list
(** Clean a stream: one event per (object, presence period), at the
    period's last epoch, located at the mean of the period's samples.
    Shelf-tag readings are ignored (SMURF has no use for them — one of
    the two deficits the comparison in the paper isolates). *)

(** {1 Internals exposed for testing and reuse} *)

val sample_in_range :
  Rfid_model.World.t ->
  Rfid_prob.Rng.t ->
  center:Rfid_geom.Vec3.t ->
  range:float ->
  ?facing:float ->
  unit ->
  Rfid_geom.Vec3.t
(** Uniform sample over (disc of [range] around [center]) ∩ shelf area,
    by rejection; the clamped centre when the intersection is empty.
    With [facing], only the half-plane in that direction is eligible.
    Shared with the {!Uniform} baseline. *)

module Window : sig
  type t

  val create : config -> t

  val observe : t -> read:bool -> epoch:int -> unit
  (** Feed one interrogation epoch. *)

  val present : t -> bool
  (** Is the tag currently declared in range? *)

  val size : t -> int
  (** Current window size in epochs. *)
end
