test/test_linalg.ml: Alcotest Array Float Format Linalg QCheck Rfid_prob Rng Util
