(* Machine-readable filter benchmark: one JSON file per run, so the
   perf trajectory is comparable across PRs without scraping tables.

   Emits one point per (variant, object count) on the standard
   warehouse workload, plus domain-scaling points for the
   Factorized_indexed variant at the largest object count. Every run is
   seeded; accuracy is recorded next to throughput so a speedup that
   trades away error is visible in the same file. *)

type point = {
  pt_variant : string;
  pt_objects : int;
  pt_domains : int;
  pt_epochs : int;
  pt_readings : int;
  pt_elapsed_s : float;
  pt_err_xy : float;
}

let ns_per_epoch p =
  if p.pt_epochs = 0 then 0. else 1e9 *. p.pt_elapsed_s /. float_of_int p.pt_epochs

let epochs_per_sec p =
  if p.pt_elapsed_s <= 0. then 0. else float_of_int p.pt_epochs /. p.pt_elapsed_s

let run_point ~variant ~label ~objects ~num_domains ~params ~trace =
  Printf.printf "  ... %-16s n=%-5d domains=%d%!" label objects num_domains;
  let config = Scenarios.engine_config ~variant ~num_domains () in
  let r = Rfid_eval.Runner.run_engine ~params ~config ~seed:7 trace in
  let epochs = Rfid_model.Trace.epochs trace in
  Printf.printf "  %7.1f epochs/s\n%!"
    (if r.Rfid_eval.Runner.elapsed_s > 0. then
       float_of_int epochs /. r.Rfid_eval.Runner.elapsed_s
     else 0.);
  {
    pt_variant = label;
    pt_objects = objects;
    pt_domains = num_domains;
    pt_epochs = epochs;
    pt_readings = r.Rfid_eval.Runner.total_readings;
    pt_elapsed_s = r.Rfid_eval.Runner.elapsed_s;
    pt_err_xy = r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy;
  }

let emit oc points =
  let point_json p =
    Printf.sprintf
      "    {\"variant\": %S, \"objects\": %d, \"num_domains\": %d, \"epochs\": %d, \
       \"readings\": %d, \"elapsed_s\": %.6f, \"ns_per_epoch\": %.1f, \
       \"epochs_per_sec\": %.2f, \"err_xy_ft\": %.4f}"
      p.pt_variant p.pt_objects p.pt_domains p.pt_epochs p.pt_readings p.pt_elapsed_s
      (ns_per_epoch p) (epochs_per_sec p) p.pt_err_xy
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench_filter/v1\",\n\
    \  \"workload\": \"warehouse straight pass, J=100, K=200, seed 7\",\n\
    \  \"host_cores\": %d,\n\
    \  \"points\": [\n%s\n\
    \  ]\n\
     }\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map point_json points))

let run ~path ~large =
  Printf.printf "bench --json: filter throughput -> %s\n%!" path;
  let sizes = if large then [ 500; 2000; 5000; 10000 ] else [ 500; 2000; 5000 ] in
  let scaling_n = List.fold_left Int.max 0 sizes in
  let domain_counts = [ 1; 2; 4 ] in
  let params = Scenarios.cone_params () in
  let points = ref [] in
  let add p = points := p :: !points in
  List.iter
    (fun objects ->
      let built = Scenarios.warehouse_trace ~num_objects:objects ~seed:111 () in
      let trace = built.Scenarios.trace in
      if objects <= 500 then
        add
          (run_point ~variant:Rfid_core.Config.Factorized ~label:"factorized" ~objects
             ~num_domains:1 ~params ~trace);
      add
        (run_point ~variant:Rfid_core.Config.Factorized_indexed ~label:"factorized+index"
           ~objects ~num_domains:1 ~params ~trace);
      add
        (run_point ~variant:Rfid_core.Config.Factorized_compressed
           ~label:"f+index+compress" ~objects ~num_domains:1 ~params ~trace);
      (* Domain scaling at the largest size, where per-epoch scope is
         widest and the parallel section dominates. *)
      if objects = scaling_n then
        List.iter
          (fun num_domains ->
            if num_domains > 1 then
              add
                (run_point ~variant:Rfid_core.Config.Factorized_indexed
                   ~label:"factorized+index" ~objects ~num_domains ~params ~trace))
          domain_counts)
    sizes;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> emit oc (List.rev !points));
  Printf.printf "wrote %d points to %s\n%!" (List.length !points) path
