(** Shared serving fixture: one place that builds the world, the fitted
    sensor parameters, the engine configuration and the ingest guard
    for a given [(objects, seed, variant, budget)] tuple.

    Three parties must agree on this construction to the bit: the
    [rfid_clean serve] process, the offline replay the serve-smoke gate
    diffs it against, and the PROTOCOL.md conformance runner. Engine
    output is deterministic given the fixture, so centralizing the
    recipe here is what makes "bit-identical posteriors vs batch
    replay" a meaningful check rather than a fixture-drift lottery.

    The conventions mirror the [replay] subcommand: warehouse layout
    from {!Rfid_sim.Warehouse.layout}, cone sensor, parameters fitted
    with {!Rfid_learn.Supervised.fit_sensor} at seed 99, reader
    initialized at {!Rfid_sim.Warehouse.reader_start}. The guard drops
    out-of-order epochs (rather than halting) because a network stream
    reorders more casually than a file replay. *)

type t = {
  world : Rfid_model.World.t;
  params : Rfid_model.Params.t;
  config : Rfid_core.Config.t;
  init_reader : Rfid_model.Reader_state.t;
  num_objects : int;
  seed : int;
}

val make :
  objects:int ->
  seed:int ->
  ?variant:Rfid_core.Config.variant ->
  ?particles:int ->
  ?min_particles:int ->
  ?resample_ess:float ->
  ?domains:int ->
  unit ->
  t
(** Defaults match the CLI: [variant = Factorized_indexed],
    [particles = 200], [min_particles = 0] (meaning [particles] — no
    adaptation), [resample_ess = 1.0], [domains = 1]. *)

val fresh_engine : t -> Rfid_core.Engine.t

val restore_engine : t -> Rfid_core.Engine.snapshot -> Rfid_core.Engine.t

val fresh_guard : t -> Rfid_robust.Ingest.t
(** Ingest guard over the fixture's world bounds and object universe,
    with [on_out_of_order_epoch = Drop]. *)
