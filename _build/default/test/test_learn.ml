open Rfid_model

let cone = Rfid_sim.Truth_sensor.cone ()

let test_supervised_fit_quality () =
  let m =
    Rfid_learn.Supervised.fit_sensor ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob
      ~seed:1 ()
  in
  let mae =
    Rfid_learn.Supervised.mean_abs_error m
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ()
  in
  Alcotest.(check bool) (Printf.sprintf "MAE %.4f < 0.05" mae) true (mae < 0.05);
  (* Decay constraints respected. *)
  Alcotest.(check bool) "a1 <= 0" true (m.Sensor_model.a1 <= 0.);
  Alcotest.(check bool) "a2 <= 0" true (m.Sensor_model.a2 <= 0.);
  Alcotest.(check bool) "b2 <= 0" true (m.Sensor_model.b2 <= 0.)

let test_supervised_validation () =
  Util.check_raises_invalid "zero samples" (fun () ->
      ignore
        (Rfid_learn.Supervised.fit_sensor ~samples:0
           ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:1 ()));
  Util.check_raises_invalid "empty pairs" (fun () ->
      ignore
        (Rfid_learn.Supervised.fit_from_pairs ~geometries:[||] ~outcomes:[||] ()))

let test_fit_from_pairs_recovers () =
  (* Plant a logistic sensor, sample outcomes, refit. *)
  let truth = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:4 in
  let n = 20000 in
  let geometries =
    Array.init n (fun _ ->
        ( Rfid_prob.Rng.uniform rng ~lo:0. ~hi:6.,
          Rfid_prob.Rng.uniform rng ~lo:0. ~hi:Float.pi ))
  in
  let outcomes =
    Array.map
      (fun (d, theta) ->
        Rfid_prob.Rng.bernoulli rng ~p:(Sensor_model.read_prob_at truth ~d ~theta))
      geometries
  in
  let m = Rfid_learn.Supervised.fit_from_pairs ~geometries ~outcomes () in
  let mae =
    Rfid_learn.Supervised.mean_abs_error m
      ~read_prob:(fun ~d ~theta -> Sensor_model.read_prob_at truth ~d ~theta)
      ()
  in
  Alcotest.(check bool) (Printf.sprintf "planted recovery MAE %.4f" mae) true (mae < 0.02)

(* Calibration fixtures: 20-tag warehouse training trace. *)
let training_setup ~shelf_tags_kept ~seed =
  let wh = Rfid_sim.Warehouse.layout ~objects_per_shelf:5 ~num_objects:20 () in
  let world =
    Rfid_model.World.with_shelf_tags wh.Rfid_sim.Warehouse.world
      ~keep:(List.init shelf_tags_kept Fun.id)
  in
  let config = Rfid_sim.Trace_gen.default_config () in
  let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:1 in
  let trace =
    Rfid_sim.Trace_gen.run ~world ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh) ~path ~config
      (Rfid_prob.Rng.create ~seed)
  in
  (world, trace)

let calibrate_with ?(init = Params.default) ~shelf_tags_kept () =
  let world, trace = training_setup ~shelf_tags_kept ~seed:17 in
  let config = Rfid_learn.Calibration.default_config () in
  let config = { config with Rfid_learn.Calibration.em_iters = 3 } in
  Rfid_learn.Calibration.calibrate ~world ~init ~config
    ~observations:(Trace.observations trace)
    ~init_reader:trace.Trace.steps.(0).Trace.true_reader

let test_em_learns_reasonable_sensor () =
  (* Start from an uninformative sensor (a coin flip at every geometry)
     and require EM to recover most of the structure. *)
  let blind = Sensor_model.of_coef [| 0.; 0.; 0.; 0.; 0. |] in
  let init = Params.create ~sensor:blind () in
  let learned = calibrate_with ~init ~shelf_tags_kept:4 () in
  let mae =
    Rfid_learn.Supervised.mean_abs_error learned.Params.sensor
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ()
  in
  let mae_blind =
    Rfid_learn.Supervised.mean_abs_error blind
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "EM MAE %.4f well below blind init %.4f" mae mae_blind)
    true
    (mae < 0.5 *. mae_blind && mae < 0.2)

let test_em_learns_motion_and_sensing () =
  let learned = calibrate_with ~shelf_tags_kept:4 () in
  let v = learned.Params.motion.Motion_model.velocity in
  Util.check_close ~eps:0.02 "velocity y" 0.1 v.Rfid_geom.Vec3.y;
  Util.check_close ~eps:0.02 "velocity x" 0. v.Rfid_geom.Vec3.x;
  let bias = learned.Params.sensing.Location_sensing.bias in
  Util.check_close ~eps:0.25 "sensing bias ~0" 0. (Rfid_geom.Vec3.norm bias)

let test_em_detects_systematic_bias () =
  (* Trace generated with a constant +0.4 ft reported-location offset
     along y; EM must find it via the shelf tags. *)
  let wh = Rfid_sim.Warehouse.layout ~objects_per_shelf:5 ~num_objects:20 () in
  let sensing =
    Location_sensing.create ~bias:(Util.vec3 0. 0.4 0.)
      ~sigma:(Util.vec3 0.05 0.05 0.) ()
  in
  let config_gen =
    {
      (Rfid_sim.Trace_gen.default_config ()) with
      Rfid_sim.Trace_gen.location_noise = Rfid_sim.Trace_gen.Gaussian_report sensing;
    }
  in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:config_gen
      (Rfid_prob.Rng.create ~seed:23)
  in
  let cal = Rfid_learn.Calibration.default_config () in
  let cal = { cal with Rfid_learn.Calibration.em_iters = 5 } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world:wh.Rfid_sim.Warehouse.world
      ~init:Params.default ~config:cal
      ~observations:(Trace.observations trace)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader
  in
  let bias = learned.Params.sensing.Location_sensing.bias in
  (* EM recovers most of the systematic offset; the filtered (not
     smoothed) posterior leaves a residual fraction — the paper's
     "model On - learned" curve shows the same slight gap to "On -
     true" in Fig. 5(g). *)
  Util.check_in_range "recovered y bias" ~lo:0.25 ~hi:0.55 bias.Rfid_geom.Vec3.y

let test_e_step_shapes () =
  let world, trace = training_setup ~shelf_tags_kept:4 ~seed:29 in
  let config = Rfid_learn.Calibration.default_config () in
  let ev =
    Rfid_learn.Calibration.e_step ~world ~params:Params.default ~config
      ~observations:(Trace.observations trace)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader
  in
  let n = Array.length ev.Rfid_learn.Calibration.geometries in
  Alcotest.(check bool) "evidence harvested" true (n > 100);
  Alcotest.(check int) "outcomes aligned" n
    (Array.length ev.Rfid_learn.Calibration.outcomes);
  Alcotest.(check int) "weights aligned" n
    (Array.length ev.Rfid_learn.Calibration.weights);
  Alcotest.(check int) "reader track per epoch" (Trace.epochs trace)
    (Array.length ev.Rfid_learn.Calibration.reader_track);
  (* Both classes present. *)
  let reads = Array.to_list ev.Rfid_learn.Calibration.outcomes |> List.filter Fun.id in
  Alcotest.(check bool) "has positives" true (List.length reads > 0);
  Alcotest.(check bool) "has negatives" true
    (List.length reads < n)

let test_calibrate_validation () =
  let world, _ = training_setup ~shelf_tags_kept:4 ~seed:1 in
  let config = Rfid_learn.Calibration.default_config () in
  Util.check_raises_invalid "empty stream" (fun () ->
      ignore
        (Rfid_learn.Calibration.calibrate ~world ~init:Params.default ~config
           ~observations:[]
           ~init_reader:(Reader_state.make ~loc:Rfid_geom.Vec3.zero ~heading:0.)))

let suite =
  ( "learn",
    [
      Alcotest.test_case "supervised fit quality" `Quick test_supervised_fit_quality;
      Alcotest.test_case "supervised validation" `Quick test_supervised_validation;
      Alcotest.test_case "fit_from_pairs planted recovery" `Quick
        test_fit_from_pairs_recovers;
      Alcotest.test_case "EM improves sensor" `Slow test_em_learns_reasonable_sensor;
      Alcotest.test_case "EM learns motion/sensing" `Slow
        test_em_learns_motion_and_sensing;
      Alcotest.test_case "EM detects systematic bias" `Slow
        test_em_detects_systematic_bias;
      Alcotest.test_case "E-step shapes" `Quick test_e_step_shapes;
      Alcotest.test_case "calibrate validation" `Quick test_calibrate_validation;
    ] )
