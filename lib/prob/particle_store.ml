(* Structure-of-arrays particle slab. Every field lives in an unboxed
   [floatarray] (or flat [int array]), so the filter hot loops touch
   contiguous float data with no per-particle records, no boxed
   [Vec3.t]s and no per-epoch reallocation: stores are created once and
   then resized/gathered/swapped in place.

   Numerical contract: every routine here that replaces an AoS loop
   from the filters performs the identical floating-point operations in
   the identical order, so switching a filter to this module changes
   its allocation profile and nothing else (golden-trace tests hold the
   filters to that). *)

module FA = Float.Array

type t = {
  mutable n : int;  (* live particles; slabs may have spare capacity *)
  mutable xs : floatarray;
  mutable ys : floatarray;
  mutable zs : floatarray;
  mutable lw : floatarray;  (* per-particle log weight *)
  mutable reader_idx : int array;
}

let create ~n =
  if n < 0 then invalid_arg "Particle_store.create: negative size";
  let cap = Int.max n 1 in
  {
    n;
    xs = FA.make cap 0.;
    ys = FA.make cap 0.;
    zs = FA.make cap 0.;
    lw = FA.make cap 0.;
    reader_idx = Array.make cap 0;
  }

let length t = t.n
let capacity t = FA.length t.xs

(* Grow-only reallocation; contents are unspecified after a growing
   [resize] — callers fill [0, n) before reading. *)
let resize t n =
  if n < 0 then invalid_arg "Particle_store.resize: negative size";
  if n > capacity t then begin
    let cap = Int.max n (2 * capacity t) in
    t.xs <- FA.make cap 0.;
    t.ys <- FA.make cap 0.;
    t.zs <- FA.make cap 0.;
    t.lw <- FA.make cap 0.;
    t.reader_idx <- Array.make cap 0
  end;
  t.n <- n

(* Budget shrink: drop the tail, keep the slabs. Note the survivors are
   the *prefix* — after a systematic resample that is a biased subsample
   (ancestor indices come out in CDF order), so filters shrinking a
   posterior resample directly to the target count instead; this
   primitive is for callers whose particles carry no meaningful order. *)
let resize_down t n =
  if n < 0 || n > t.n then
    invalid_arg "Particle_store.resize_down: size outside [0, length]";
  t.n <- n

(* Budget grow: cyclic replication with per-axis Gaussian jitter. New
   particle [k + i] copies particle [i mod k] (log weight and reader
   pointer included) and perturbs each coordinate by [sigma_* *
   gaussian]. Three deviates are drawn per new particle in x, y, z
   order from [rng] alone, so results depend only on the generator
   state — the filters pass their per-(object, epoch) keyed substream,
   making growth placement- and domain-count-independent. *)
let resize_up t ~n ~rng ~sigma_x ~sigma_y ~sigma_z =
  let k = t.n in
  if k = 0 then invalid_arg "Particle_store.resize_up: empty store";
  if n < k then invalid_arg "Particle_store.resize_up: target below current length";
  if n > capacity t then begin
    (* [resize] reallocates without preserving contents on growth; keep
       the old slabs and blit the live prefix across. *)
    let xs = t.xs and ys = t.ys and zs = t.zs and lw = t.lw in
    let reader_idx = t.reader_idx in
    resize t n;
    FA.blit xs 0 t.xs 0 k;
    FA.blit ys 0 t.ys 0 k;
    FA.blit zs 0 t.zs 0 k;
    FA.blit lw 0 t.lw 0 k;
    Array.blit reader_idx 0 t.reader_idx 0 k
  end
  else t.n <- n;
  for i = k to n - 1 do
    let j = (i - k) mod k in
    FA.unsafe_set t.xs i
      (FA.unsafe_get t.xs j +. (sigma_x *. Rng.gaussian rng ()));
    FA.unsafe_set t.ys i
      (FA.unsafe_get t.ys j +. (sigma_y *. Rng.gaussian rng ()));
    FA.unsafe_set t.zs i
      (FA.unsafe_get t.zs j +. (sigma_z *. Rng.gaussian rng ()));
    FA.unsafe_set t.lw i (FA.unsafe_get t.lw j);
    Array.unsafe_set t.reader_idx i (Array.unsafe_get t.reader_idx j)
  done

let swap a b =
  let n = a.n and xs = a.xs and ys = a.ys and zs = a.zs and lw = a.lw in
  let reader_idx = a.reader_idx in
  a.n <- b.n;
  a.xs <- b.xs;
  a.ys <- b.ys;
  a.zs <- b.zs;
  a.lw <- b.lw;
  a.reader_idx <- b.reader_idx;
  b.n <- n;
  b.xs <- xs;
  b.ys <- ys;
  b.zs <- zs;
  b.lw <- lw;
  b.reader_idx <- reader_idx

let check t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Particle_store.%s: index %d out of [0, %d)" name i t.n)

let x t i =
  check t i "x";
  FA.unsafe_get t.xs i

let y t i =
  check t i "y";
  FA.unsafe_get t.ys i

let z t i =
  check t i "z";
  FA.unsafe_get t.zs i

let log_w t i =
  check t i "log_w";
  FA.unsafe_get t.lw i

let reader t i =
  check t i "reader";
  Array.unsafe_get t.reader_idx i

let set_loc t i ~x ~y ~z =
  check t i "set_loc";
  FA.unsafe_set t.xs i x;
  FA.unsafe_set t.ys i y;
  FA.unsafe_set t.zs i z

let set_log_w t i w =
  check t i "set_log_w";
  FA.unsafe_set t.lw i w

let add_log_w t i dw =
  check t i "add_log_w";
  FA.unsafe_set t.lw i (FA.unsafe_get t.lw i +. dw)

let set_reader t i r =
  check t i "set_reader";
  Array.unsafe_set t.reader_idx i r

(* Unsafe accessors for the inner weighting loops; bounds are
   established once by the caller. *)
let unsafe_x t i = FA.unsafe_get t.xs i
let unsafe_y t i = FA.unsafe_get t.ys i
let unsafe_z t i = FA.unsafe_get t.zs i
let unsafe_reader t i = Array.unsafe_get t.reader_idx i

let max_log_w t =
  let m = ref neg_infinity in
  for i = 0 to t.n - 1 do
    m := Float.max !m (FA.unsafe_get t.lw i)
  done;
  !m

let shift_log_w t d =
  for i = 0 to t.n - 1 do
    FA.unsafe_set t.lw i (FA.unsafe_get t.lw i -. d)
  done

let reset_log_w t = FA.fill t.lw 0 t.n 0.

(* Normalized linear weights of the current log weights, written into a
   caller buffer of length exactly [n] — the in-place replacement for
   [Array.map (fun p -> p.log_w) parts |> Stats.normalize_log_weights]. *)
let weights_into t dst =
  if Array.length dst <> t.n then
    invalid_arg "Particle_store.weights_into: buffer length mismatch";
  for i = 0 to t.n - 1 do
    Array.unsafe_set dst i (FA.unsafe_get t.lw i)
  done;
  Stats.normalize_log_weights_in_place dst

let normalized_weights t =
  let w = Array.make t.n 0. in
  weights_into t w;
  w

(* Resample gather: [dst.(i) <- copy of src.(idx.(i))] with log weight
   reset to 0 — the SoA form of rebuilding a particle array from
   resampled source indices. [dst] is resized to [n]; [src] and [dst]
   must be distinct stores. *)
let gather ~src ~dst idx ~n =
  if src == dst then invalid_arg "Particle_store.gather: src and dst must differ";
  if Array.length idx < n then invalid_arg "Particle_store.gather: index buffer short";
  resize dst n;
  for i = 0 to n - 1 do
    let j = Array.unsafe_get idx i in
    if j < 0 || j >= src.n then invalid_arg "Particle_store.gather: index out of range";
    FA.unsafe_set dst.xs i (FA.unsafe_get src.xs j);
    FA.unsafe_set dst.ys i (FA.unsafe_get src.ys j);
    FA.unsafe_set dst.zs i (FA.unsafe_get src.zs j);
    FA.unsafe_set dst.lw i 0.;
    Array.unsafe_set dst.reader_idx i (Array.unsafe_get src.reader_idx j)
  done

(* Range copy across stores (all columns). The unfactorized filter
   keeps a J*N slab of object locations (row per joint particle) and
   resamples by blitting whole rows into a spare slab. *)
let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 then invalid_arg "Particle_store.blit: negative length";
  if src_pos < 0 || src_pos + len > src.n then
    invalid_arg "Particle_store.blit: source range out of bounds";
  if dst_pos < 0 || dst_pos + len > dst.n then
    invalid_arg "Particle_store.blit: destination range out of bounds";
  FA.blit src.xs src_pos dst.xs dst_pos len;
  FA.blit src.ys src_pos dst.ys dst_pos len;
  FA.blit src.zs src_pos dst.zs dst_pos len;
  FA.blit src.lw src_pos dst.lw dst_pos len;
  Array.blit src.reader_idx src_pos dst.reader_idx dst_pos len

(* Moment-matched 3-D Gaussian of the weighted particle cloud,
   bit-identical to [Gaussian.fit ~w (Array.map Vec3.to_array locs)]:
   same accumulation order per mean/covariance cell, same grouping of
   the weighted products. *)
let fit_gaussian ~w t =
  let n = t.n in
  if n = 0 then invalid_arg "Particle_store.fit_gaussian: empty store";
  if Array.length w <> n then
    invalid_arg "Particle_store.fit_gaussian: weight length mismatch";
  let mean = Array.make 3 0. in
  for i = 0 to n - 1 do
    let wi = Array.unsafe_get w i in
    mean.(0) <- mean.(0) +. (wi *. FA.unsafe_get t.xs i);
    mean.(1) <- mean.(1) +. (wi *. FA.unsafe_get t.ys i);
    mean.(2) <- mean.(2) +. (wi *. FA.unsafe_get t.zs i)
  done;
  let cov = Array.make_matrix 3 3 0. in
  let p = Array.make 3 0. in
  for i = 0 to n - 1 do
    let wi = Array.unsafe_get w i in
    p.(0) <- FA.unsafe_get t.xs i;
    p.(1) <- FA.unsafe_get t.ys i;
    p.(2) <- FA.unsafe_get t.zs i;
    for j = 0 to 2 do
      for k = 0 to 2 do
        cov.(j).(k) <-
          cov.(j).(k) +. (wi *. (p.(j) -. mean.(j)) *. (p.(k) -. mean.(k)))
      done
    done
  done;
  Gaussian.create ~mean ~cov

(* Average weighted negative log-likelihood under [g] — the SoA form of
   [Gaussian.avg_nll ~w g (Array.map Vec3.to_array locs)]. The 3-float
   probe buffer is reused across particles. *)
let avg_nll ~w g t =
  let n = t.n in
  if n = 0 then invalid_arg "Particle_store.avg_nll: empty store";
  let p = Array.make 3 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    p.(0) <- FA.unsafe_get t.xs i;
    p.(1) <- FA.unsafe_get t.ys i;
    p.(2) <- FA.unsafe_get t.zs i;
    acc := !acc -. (Array.unsafe_get w i *. Gaussian.log_pdf g p)
  done;
  !acc

(* The backing slabs, for batched consumers (e.g. the sensor model's
   per-epoch accumulation): one cross-module call can then loop over
   the whole store with intrinsic unboxed accesses, where a
   call-per-particle would box three floats in and one out each
   iteration (no flambda). Indices < [length t] are valid; the arrays
   are invalidated by [resize] and [swap]. *)
let backing t = (t.xs, t.ys, t.zs, t.lw, t.reader_idx)

let copy t =
  let n = t.n in
  let out = create ~n in
  FA.blit t.xs 0 out.xs 0 n;
  FA.blit t.ys 0 out.ys 0 n;
  FA.blit t.zs 0 out.zs 0 n;
  FA.blit t.lw 0 out.lw 0 n;
  Array.blit t.reader_idx 0 out.reader_idx 0 n;
  out
