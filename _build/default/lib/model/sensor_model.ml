open Rfid_geom

type t = { a0 : float; a1 : float; a2 : float; b1 : float; b2 : float }

(* sigmoid(3 - 0.4 d - 0.25 d^2 - 1.2 th - 1.5 th^2):
   ~95% at contact, 50% near d = 2.7 ft head-on, and the half-power
   angle shrinks with distance — a cone-like region. *)
let default = { a0 = 3.0; a1 = -0.4; a2 = -0.25; b1 = -1.2; b2 = -1.5 }

let features ~d ~theta =
  let theta = Float.abs theta in
  [| 1.; d; d *. d; theta; theta *. theta |]

let of_coef = function
  | [| a0; a1; a2; b1; b2 |] -> { a0; a1; a2; b1; b2 }
  | _ -> invalid_arg "Sensor_model.of_coef: expected 5 coefficients"

let to_coef { a0; a1; a2; b1; b2 } = [| a0; a1; a2; b1; b2 |]

let logit t ~d ~theta =
  let theta = Float.abs theta in
  t.a0 +. (t.a1 *. d) +. (t.a2 *. d *. d) +. (t.b1 *. theta) +. (t.b2 *. theta *. theta)

let read_prob_at t ~d ~theta = Rfid_prob.Logistic.sigmoid (logit t ~d ~theta)

(* Wrap an angle into (-pi, pi]. *)
let wrap a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let geometry ~reader_loc ~reader_heading ~tag_loc =
  let delta = Vec3.sub tag_loc reader_loc in
  let d = Vec3.norm delta in
  let theta =
    if delta.Vec3.x = 0. && delta.Vec3.y = 0. then 0.
    else Float.abs (wrap (Vec3.xy_angle delta -. reader_heading))
  in
  (d, theta)

let read_prob t ~reader_loc ~reader_heading ~tag_loc =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  read_prob_at t ~d ~theta

let log_prob t ~reader_loc ~reader_heading ~tag_loc ~read =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  let z = logit t ~d ~theta in
  if read then Rfid_prob.Logistic.log_sigmoid z else Rfid_prob.Logistic.log_sigmoid (-.z)

let max_search_range = 100.

let detection_range ?(threshold = 0.02) t =
  if read_prob_at t ~d:0. ~theta:0. < threshold then 0.
  else begin
    (* First head-on crossing below the threshold. A fitted model can
       have a non-monotone logit (e.g. a slightly positive quadratic
       term from noisy calibration data); scanning outward from 0 keeps
       the range physical — the region past a rebound is an artifact of
       extrapolating the polynomial, not a real detection zone. *)
    let step = 0.25 in
    let rec find_bracket d =
      if d >= max_search_range then max_search_range
      else if read_prob_at t ~d:(d +. step) ~theta:0. < threshold then d +. step
      else find_bracket (d +. step)
    in
    let hi = find_bracket 0. in
    if hi >= max_search_range then max_search_range
    else begin
      let lo = Float.max 0. (hi -. step) in
      let rec bisect lo hi k =
        if k = 0 then hi
        else begin
          let mid = (lo +. hi) /. 2. in
          if read_prob_at t ~d:mid ~theta:0. < threshold then bisect lo mid (k - 1)
          else bisect mid hi (k - 1)
        end
      in
      bisect lo hi 40
    end
  end

let detection_half_angle ?(threshold = 0.02) t ~d =
  if read_prob_at t ~d ~theta:Float.pi >= threshold then Float.pi
  else if read_prob_at t ~d ~theta:0. < threshold then 0.
  else begin
    let rec bisect lo hi k =
      if k = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2. in
        if read_prob_at t ~d ~theta:mid < threshold then bisect lo mid (k - 1)
        else bisect mid hi (k - 1)
      end
    in
    bisect 0. Float.pi 40
  end

let sensing_region_box ?threshold t ~reader_loc =
  let r = detection_range ?threshold t in
  Box2.of_center reader_loc ~half_width:r ~half_height:r

let initialization_cone ?(overestimate = 1.25) t ~reader_loc ~reader_heading =
  let range = Float.max 0.5 (overestimate *. detection_range t) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. detection_half_angle t ~d:(range /. 2.)))
  in
  Cone.make ~apex:reader_loc ~heading:reader_heading ~half_angle ~range

let pp ppf t =
  Format.fprintf ppf "sigmoid(%.3f %+.3f d %+.3f d^2 %+.3f th %+.3f th^2)" t.a0 t.a1
    t.a2 t.b1 t.b2
