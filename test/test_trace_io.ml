open Rfid_model

let obs e loc tags =
  { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags }

let sample_stream () =
  [
    obs 0 (Util.vec3 0. (-1.) 0.) [ Types.Object_tag 3; Types.Shelf_tag 0 ];
    obs 1 (Util.vec3 0.013 (-0.897) 0.) [];
    obs 2 (Util.vec3 0.02 (-0.8) 0.1) [ Types.Object_tag 1 ];
  ]

let equal_obs (a : Types.observation) (b : Types.observation) =
  a.Types.o_epoch = b.Types.o_epoch
  && Rfid_geom.Vec3.equal ~eps:1e-5 a.Types.o_reported_loc b.Types.o_reported_loc
  && List.length a.Types.o_read_tags = List.length b.Types.o_read_tags
  && List.for_all2 Types.tag_equal a.Types.o_read_tags b.Types.o_read_tags

let test_roundtrip_string () =
  let stream = sample_stream () in
  let s = Trace_io.observations_to_string stream in
  let back = Trace_io.observations_of_string s in
  Alcotest.(check int) "length" (List.length stream) (List.length back);
  List.iter2
    (fun a b -> Alcotest.(check bool) "observation roundtrips" true (equal_obs a b))
    stream back

let test_roundtrip_simulated () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:8 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:71)
  in
  let stream = Trace.observations trace in
  let back =
    Trace_io.observations_of_string (Trace_io.observations_to_string stream)
  in
  Alcotest.(check int) "length preserved" (List.length stream) (List.length back);
  List.iter2
    (fun a b -> Alcotest.(check bool) "roundtrips" true (equal_obs a b))
    stream back

let test_roundtrip_files () =
  let path = Filename.temp_file "rfid_io_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let stream = sample_stream () in
      let oc = open_out path in
      Trace_io.write_observations oc stream;
      close_out oc;
      let ic = open_in path in
      let back = Trace_io.read_observations ic in
      close_in ic;
      List.iter2
        (fun a b -> Alcotest.(check bool) "file roundtrip" true (equal_obs a b))
        stream back)

let test_malformed_rejected () =
  let bad s =
    match Trace_io.observations_of_string s with
    | _ -> Alcotest.failf "expected failure on %S" s
    | exception Failure _ -> ()
  in
  bad "1,2,3\n";
  bad "x,0,0,0,\n";
  bad "1,a,0,0,\n";
  bad "1,0,0,0,weird:3\n";
  bad "1,0,0,0,obj:xyz\n";
  (* Hardened checks: values that parse but poison the pipeline. *)
  bad "-1,0,0,0,\n";
  bad "1,nan,0,0,\n";
  bad "1,0,inf,0,\n";
  bad "1,0,0,0,obj:-3\n";
  bad "1,0,0,0,shelf:-1\n"

let test_messy_but_valid_accepted () =
  (* Trailing whitespace, CRLF endings and padded fields are transport
     noise, not data errors. *)
  let s = "5 , 1.0 ,\t2.0 , 3.0 , obj:7 ; shelf:2 \r\n\r\n  \n6,0,0,0,\r\n" in
  match Trace_io.observations_of_string s with
  | [ a; b ] ->
      Alcotest.(check int) "first epoch" 5 a.Types.o_epoch;
      Alcotest.(check int) "two tags" 2 (List.length a.Types.o_read_tags);
      Alcotest.(check bool) "tags parsed" true
        (List.mem (Types.Object_tag 7) a.Types.o_read_tags
        && List.mem (Types.Shelf_tag 2) a.Types.o_read_tags);
      Alcotest.(check int) "second epoch" 6 b.Types.o_epoch
  | l -> Alcotest.failf "expected two observations, got %d" (List.length l)

let test_lenient_reader () =
  let s =
    "# header comment\n\
     0,0,0,0,obj:1\n\
     broken line\n\
     -4,0,0,0,\n\
     2,nan,0,0,\n\
     3,1,1,0,obj:2\n"
  in
  let good, errors = Trace_io.observations_of_string_lenient s in
  Alcotest.(check (list int)) "good epochs" [ 0; 3 ]
    (List.map (fun (o : Types.observation) -> o.Types.o_epoch) good);
  Alcotest.(check (list int)) "error line numbers" [ 3; 4; 5 ]
    (List.map fst errors);
  List.iter
    (fun (_, msg) -> Alcotest.(check bool) "message non-empty" true (msg <> ""))
    errors;
  (* Strict reader fails on the same input, with a line number. *)
  (match Trace_io.observations_of_string s with
  | _ -> Alcotest.fail "strict reader must reject"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "line number in %S" msg)
        true
        (String.length msg > 0 && String.contains msg '3'));
  (* Lenient file reader agrees with the string reader. *)
  let path = Filename.temp_file "rfid_io_lenient" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      let ic = open_in path in
      let good2, errors2 =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Trace_io.read_observations_lenient ic)
      in
      Alcotest.(check int) "file good count" (List.length good) (List.length good2);
      Alcotest.(check (list int)) "file error lines" (List.map fst errors)
        (List.map fst errors2))

let test_comments_and_blank_lines_skipped () =
  let s = "# comment\n\nepoch,reported_x,reported_y,reported_z,tags\n5,1,2,3,obj:7\n" in
  match Trace_io.observations_of_string s with
  | [ o ] ->
      Alcotest.(check int) "epoch" 5 o.Types.o_epoch;
      Alcotest.(check int) "one tag" 1 (List.length o.Types.o_read_tags)
  | l -> Alcotest.failf "expected one observation, got %d" (List.length l)

let test_replay_through_engine () =
  (* Serialized stream replayed through the engine gives identical
     events to the original stream. *)
  let wh = Rfid_sim.Warehouse.layout ~num_objects:6 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:73)
  in
  let original = Trace.observations trace in
  let replayed =
    Trace_io.observations_of_string (Trace_io.observations_to_string original)
  in
  let run stream =
    let engine =
      Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
        ~params:Params.default
        ~config:
          (Rfid_core.Config.create ~num_reader_particles:40 ~num_object_particles:60 ())
        ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:9 ()
    in
    Rfid_core.Engine.run engine stream
  in
  let ev1 = run original and ev2 = run replayed in
  Alcotest.(check int) "same event count" (List.length ev1) (List.length ev2);
  List.iter2
    (fun (a : Rfid_core.Event.t) (b : Rfid_core.Event.t) ->
      Alcotest.(check int) "same object" a.Rfid_core.Event.ev_obj b.Rfid_core.Event.ev_obj;
      Alcotest.(check bool) "same location (1e-4)" true
        (Rfid_geom.Vec3.dist_xy a.Rfid_core.Event.ev_loc b.Rfid_core.Event.ev_loc < 1e-3))
    ev1 ev2

let prop_random_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun obs -> Trace_io.observations_to_string obs)
      QCheck.Gen.(
        let tag =
          oneof
            [
              map (fun i -> Types.Object_tag i) (int_bound 999);
              map (fun i -> Types.Shelf_tag i) (int_bound 99);
            ]
        in
        let vec =
          map3
            (fun x y z -> Util.vec3 x y z)
            (float_range (-100.) 100.) (float_range (-100.) 100.)
            (float_range (-5.) 5.)
        in
        list_size (int_range 0 20)
          (map2 (fun loc tags -> (loc, tags)) vec (list_size (int_range 0 5) tag))
        |> map (fun items ->
               List.mapi
                 (fun e (loc, tags) ->
                   { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags })
                 items))
  in
  Util.qcheck ~count:100 "random observation streams roundtrip" gen (fun obs ->
      let back = Trace_io.observations_of_string (Trace_io.observations_to_string obs) in
      List.length back = List.length obs && List.for_all2 equal_obs obs back)

let suite =
  ( "trace_io",
    [
      Alcotest.test_case "string roundtrip" `Quick test_roundtrip_string;
      Alcotest.test_case "simulated-trace roundtrip" `Quick test_roundtrip_simulated;
      Alcotest.test_case "file roundtrip" `Quick test_roundtrip_files;
      Alcotest.test_case "malformed input rejected" `Quick test_malformed_rejected;
      Alcotest.test_case "messy but valid accepted" `Quick test_messy_but_valid_accepted;
      Alcotest.test_case "lenient reader" `Quick test_lenient_reader;
      Alcotest.test_case "comments skipped" `Quick test_comments_and_blank_lines_skipped;
      Alcotest.test_case "replay through engine" `Quick test_replay_through_engine;
      prop_random_roundtrip;
    ] )
