examples/handheld.ml: Array Format List Location_sensing Motion_model Params Printf Reader_state Rfid_core Rfid_eval Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Trace Types Vec3 World
