lib/core/config.mli: Rfid_geom Rfid_model
