(** Axis-aligned rectangles in the XY plane.

    The spatial index of §IV-C works over bounding boxes of sensing
    regions; since the warehouse geometry is planar (fixed tag height),
    the boxes are 2-D. A box is [{min_x; min_y; max_x; max_y}] with
    inclusive bounds; invalid (min > max) boxes cannot be constructed. *)

type t = private { min_x : float; min_y : float; max_x : float; max_y : float }

val make : min_x:float -> min_y:float -> max_x:float -> max_y:float -> t
(** @raise Invalid_argument if a min exceeds its max or any bound is NaN. *)

val of_points : Vec3.t list -> t
(** Smallest box containing the XY projections of the points.
    @raise Invalid_argument on the empty list. *)

val of_center : Vec3.t -> half_width:float -> half_height:float -> t

val contains_point : t -> Vec3.t -> bool
(** XY containment, inclusive. *)

val contains_xy : t -> x:float -> y:float -> bool
(** {!contains_point} on raw coordinates — for callers holding particle
    positions in unboxed slabs rather than [Vec3.t]s. *)

val intersects : t -> t -> bool
(** Closed-box overlap test (shared edges count). *)

val union : t -> t -> t
val area : t -> float

val enlargement : t -> t -> float
(** [enlargement a b] is [area (union a b) - area a] — the R-tree
    insertion heuristic. *)

val inflate : t -> float -> t
(** Grow every side outward by a margin. @raise Invalid_argument if the
    margin is negative enough to invert the box. *)

val center : t -> Vec3.t
(** Center of the box at z = 0. *)

val pp : Format.formatter -> t -> unit
