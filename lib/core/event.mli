(** The clean output stream (§II-A): each event reports the inferred
    location of one object, with optional summary statistics of the
    posterior (the paper's "(statistics)?" field, here the 3×3
    covariance of the location estimate). Events are emitted by
    {!Engine} according to its report policy — by default a fixed delay
    after an object enters the reader's scope, which is how the paper's
    experiments run their location-update query. *)

type t = {
  ev_epoch : Rfid_model.Types.epoch;
  ev_obj : int;  (** object tag id *)
  ev_loc : Rfid_geom.Vec3.t;  (** inferred (x, y, z) *)
  ev_cov : Rfid_prob.Linalg.mat option;  (** posterior covariance, if available *)
  ev_degraded : bool;
      (** the emitting engine was in degraded mode (dead-reckoning
          through missing or rejected location fixes) at or around this
          event's epoch, so the estimate rests on the motion model more
          than on fresh evidence *)
}

val make :
  epoch:Rfid_model.Types.epoch ->
  obj:int ->
  loc:Rfid_geom.Vec3.t ->
  ?cov:Rfid_prob.Linalg.mat ->
  ?degraded:bool ->
  unit ->
  t
(** [degraded] defaults to [false]. *)

val std_dev_xy : t -> float option
(** Root of the mean of the x and y posterior variances — a scalar
    spread summary. *)

val confidence_ellipse : t -> level:float -> (float * float * float) option
(** [(semi_major, semi_minor, angle)] of the XY confidence region at
    the given coverage level — the paper's "(statistics)?" field offers
    exactly this kind of summary. [None] when the event carries no
    covariance. @raise Invalid_argument unless [0 < level < 1]. *)

val pp : Format.formatter -> t -> unit
