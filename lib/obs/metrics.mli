(** Zero-dependency metrics registry for the inference stack.

    A registry holds named {e counters} (monotone ints), {e gauges}
    (last-write-wins floats) and {e histograms} (fixed log-scaled
    buckets), plus {e spans} — histograms fed by wall-clock timing of a
    code region. The design targets the hot-path budget of the
    zero-allocation particle loops (DESIGN.md section 9):

    - {b Registration is cold, recording is hot.} [counter]/[gauge]/
      [histogram]/[span] take the registry mutex and may allocate;
      they are called once, at module initialization or setup. The
      recording calls ([incr], [set], [observe], [start]/[stop]) touch
      preallocated cells only — no locks, no allocation beyond the
      boxed float a wall-clock read produces.
    - {b Per-domain shards merged on read.} Every counter and histogram
      owns one cell row per shard. A parallel filter body records with
      [*_shard ~shard:did] using its domain id (see
      [Rfid_par.Scratch.shard]), so concurrent domains never write the
      same cell; readers sum across shards. Because the merge is
      integer addition, merged values are independent of the domain
      count and chunk schedule — metric output is as deterministic as
      the event stream.
    - {b Histograms use fixed log-scaled buckets} ({!num_buckets}
      buckets, 4 per octave, spanning [1e-9 .. ~5e9] in the recorded
      unit), so quantile estimates carry at most ~9% relative error and
      recording is a [log2] plus an integer increment.

    Span values are recorded in {e seconds}; other histograms record
    whatever unit the caller observes (e.g. ESS in particles). When
    tracing is enabled (see {!Trace}), every [stop] also appends a
    chrome trace event. *)

type t
(** A registry: an isolated namespace of metrics. Most code uses
    {!global}; tests create private registries. *)

val create : ?shards:int -> unit -> t
(** Fresh registry with [shards] cell rows per sharded metric
    (default 32). Recording with a shard id [>= shards] wraps modulo
    [shards] — still safe, but two domains may then share a row, losing
    lock-freeness, so size [shards] at or above the largest
    [Config.num_domains] in play.
    @raise Invalid_argument if [shards < 1]. *)

val global : t
(** The process-wide registry every built-in instrumentation site
    records into. *)

val shards : t -> int
(** Shard rows per metric in this registry. *)

val reset : t -> unit
(** Zero every value (counters, gauges, histogram buckets) while
    keeping all registrations and handles valid — benches call this to
    scope the [stages] block to one run. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-register the counter [name]. Idempotent: the same name
    yields the same counter, so module-level handles in independent
    compilation units can share a metric.
    @raise Invalid_argument if [name] is already a gauge/histogram. *)

val incr : counter -> int -> unit
(** Add to the counter's shard-0 cell — for single-domain
    (coordinator) call sites. *)

val incr_shard : counter -> shard:int -> int -> unit
(** Add to the cell of [shard] (wrapped modulo the registry's shard
    count) — for parallel bodies, passing the domain's id. *)

val counter_value : counter -> int
(** Current value, merged (summed) across shards. *)

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** Find-or-register the gauge [name] (same contract as {!counter}). *)

val set : gauge -> float -> unit
(** Last-write-wins store. Gauges are unsharded: set them from the
    coordinator only. *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Find-or-register the histogram [name] (same contract as
    {!counter}). *)

val observe : histogram -> float -> unit
(** Record one value into shard 0. Non-finite values and values below
    the smallest bucket bound land in bucket 0; sum/min/max are
    tracked exactly alongside the buckets. *)

val observe_shard : histogram -> shard:int -> float -> unit
(** As {!observe} into the cell row of [shard]. *)

val histogram_count : histogram -> int
(** Observations recorded, merged across shards. *)

val histogram_sum : histogram -> float
(** Exact sum of observed values, merged across shards. *)

val histogram_min : histogram -> float
(** Smallest observed value ([infinity] when empty). *)

val histogram_max : histogram -> float
(** Largest observed value ([neg_infinity] when empty). *)

val quantile : histogram -> float -> float
(** [quantile h q] (0 <= q <= 1) by nearest rank over the merged
    buckets, answering with the geometric midpoint of the selected
    bucket clamped into [[min, max]] — at most ~9% relative error from
    the bucket resolution. [nan] when empty. *)

(** {2 Bucket geometry} (exposed for tests and external decoders) *)

val num_buckets : int
(** 256 buckets, 4 per octave: bucket [i > 0] covers
    [(lo * 2^((i-1)/4), lo * 2^(i/4)]] with [lo = 1e-9]; bucket 0
    catches everything at or below [lo]. *)

val bucket_of_value : float -> int
(** The bucket a value lands in (clamped to [[0, num_buckets))). *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket. *)

(** {1 Spans} *)

type span
(** A named timed region: a histogram of durations in seconds plus a
    trace-event source. *)

val span : t -> string -> span
(** Find-or-register span [name]; its histogram is registered under the
    same name ({!histogram} on that name returns it). *)

val start : span -> float
(** Wall-clock timestamp opening the region; pass it to {!stop}. *)

val stop : span -> float -> unit
(** [stop sp t0] records [now - t0] seconds into the span's histogram
    and, when {!Trace.enabled}, appends a chrome trace event. Nested
    spans are fine: each [start]/[stop] pair is independent, and the
    trace viewer recovers nesting from interval containment. *)

val with_ : span -> (unit -> 'a) -> 'a
(** Time [f ()] under the span; the duration is recorded (and the
    exception re-raised) even if [f] raises. *)

(** {1 Read-out} *)

val counters_list : t -> (string * int) list
(** All counters with merged values, sorted by name. *)

val gauges_list : t -> (string * float) list
(** All gauges, sorted by name. *)

val histograms_list : t -> (string * histogram) list
(** All histograms (spans included), sorted by name. *)

val dump_json : ?extra:(string * string) list -> t -> string
(** One deterministic JSON object:
    [{"schema": "obs/v1", <extra...>, "counters": {...},
    "gauges": {...}, "histograms": {"name": {"count": n, "sum": s,
    "min": m, "max": M, "p50": ..., "p95": ..., "p99": ...}, ...}}].
    [extra] pairs are raw JSON values spliced in after the schema key
    (e.g. [("epoch", "42")]). Metric names are sorted; non-finite
    floats print as [null]; an empty histogram prints only its
    [count]. *)

val write_json : ?extra:(string * string) list -> t -> out_channel -> unit
(** {!dump_json} straight to a channel. *)
