type t = { parent : int array; rank : int array }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n Fun.id; rank = Array.make n 0 }

let check t i =
  if i < 0 || i >= Array.length t.parent then
    invalid_arg "Union_find: element out of range"

let rec find t i =
  check t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end

let same t a b = find t a = find t b

let groups t =
  let by_root = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      let r = find t i in
      Hashtbl.replace by_root r (i :: Option.value ~default:[] (Hashtbl.find_opt by_root r)))
    t.parent;
  Hashtbl.fold
    (fun _ members acc ->
      match members with
      | [] | [ _ ] -> acc
      | ms -> List.sort Int.compare ms :: acc)
    by_root []
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))
