test/test_core_common.ml: Alcotest Array Common Cone Config Float List Location_sensing Motion_model Rfid_core Rfid_geom Rfid_model Sensor_model Util Vec3 World
