lib/model/reader_state.ml: Float Format Rfid_geom
