type t = { x : float; y : float; z : float }

let make x y z = { x; y; z }
let zero = { x = 0.; y = 0.; z = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale c a = { x = c *. a.x; y = c *. a.y; z = c *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm_sq a = dot a a
let norm a = sqrt (norm_sq a)
let dist_sq a b = norm_sq (sub a b)
let dist a b = sqrt (dist_sq a b)

let dist_xy a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let lerp a b u = add a (scale u (sub b a))
let to_array { x; y; z } = [| x; y; z |]

let of_array = function
  | [| x; y; z |] -> { x; y; z }
  | _ -> invalid_arg "Vec3.of_array: expected length 3"

let xy_angle a = atan2 a.y a.x

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps
  && Float.abs (a.y -. b.y) <= eps
  && Float.abs (a.z -. b.z) <= eps

let pp ppf { x; y; z } = Format.fprintf ppf "(%.3f, %.3f, %.3f)" x y z
