lib/learn/calibration.ml: Array Float Int List Location_sensing Motion_model Params Reader_state Rfid_core Rfid_geom Rfid_model Rfid_prob Sensor_model Supervised Types Vec3 World
