lib/model/location_sensing.mli: Rfid_geom Rfid_prob
