type step = {
  epoch : Types.epoch;
  true_reader : Reader_state.t;
  true_object_locs : Rfid_geom.Vec3.t array;
  observation : Types.observation;
}

type t = { world : World.t; num_objects : int; steps : step array }

let observations t = Array.to_list (Array.map (fun s -> s.observation) t.steps)

let true_object_loc t ~epoch ~obj =
  if epoch < 0 || epoch >= Array.length t.steps then
    invalid_arg "Trace.true_object_loc: epoch out of range";
  let locs = t.steps.(epoch).true_object_locs in
  if obj < 0 || obj >= Array.length locs then
    invalid_arg "Trace.true_object_loc: object id out of range";
  locs.(obj)

let final_object_locs t =
  let n = Array.length t.steps in
  if n = 0 then invalid_arg "Trace.final_object_locs: empty trace";
  Array.copy t.steps.(n - 1).true_object_locs

let epochs t = Array.length t.steps

let concat a b =
  if a.num_objects <> b.num_objects then
    invalid_arg "Trace.concat: num_objects mismatch";
  let offset = Array.length a.steps in
  let renumber s =
    {
      s with
      epoch = s.epoch + offset;
      observation = { s.observation with Types.o_epoch = s.observation.Types.o_epoch + offset };
    }
  in
  { a with steps = Array.append a.steps (Array.map renumber b.steps) }
