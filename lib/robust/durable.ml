(* The countdown is process-global: the harness samples a kill offset
   over the run's total durable bytes, so checkpoint writes, WAL
   appends and event-log appends all draw it down together. *)
let crash_at = lazy (
  match Sys.getenv_opt "RFID_CRASH_AT_BYTE" with
  | None -> None
  | Some s -> int_of_string_opt s)

let countdown = ref (-1)  (* -1 = not yet initialized from the env *)
let written = ref 0

let total_written () = !written

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let write fd s =
  let len = String.length s in
  (if !countdown < 0 then
     countdown := match Lazy.force crash_at with None -> max_int | Some n -> max n 0);
  if !countdown < len then begin
    (* Simulated crash mid-write: hand the kernel exactly the bytes
       that "made it" and die without unwinding — no buffers flushed,
       no finalizers, just like SIGKILL from outside. *)
    write_all fd s 0 !countdown;
    Unix.kill (Unix.getpid ()) Sys.sigkill;
    (* unreachable, but keep the type checker honest *)
    assert false
  end
  else begin
    countdown := !countdown - len;
    written := !written + len;
    write_all fd s 0 len
  end

let fsync = Unix.fsync

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
