(** The RFID-SERVE/1 protocol state machine, independent of sockets.

    {!handle_line} maps one request frame to one reply (possibly
    multi-line, always ending in [\n]) plus a close flag; {!tick}
    drains queued [PUT] observations through the ingest guard into the
    engine. {!Server} shuttles bytes between this module and
    connections; the PROTOCOL.md conformance test and the fuzzer drive
    it directly, in-process, so every documented exchange is exercised
    without a socket in the loop.

    Request grammar, reply grammar, and the error taxonomy are
    normative in PROTOCOL.md; this interface only summarizes the state
    the machine carries:

    - the {e admission queue} between [PUT] and the engine (bounded;
      full → [BUSY], see {!Admission});
    - the {e query layer} of posterior index and event ring
      (see {!Query});
    - three latches: {e paused} ([PAUSE]/[RESUME] gate {!tick} only),
      {e draining} ([DRAIN] — terminal for writes, queries stay up),
      and {e halted} (the guard's [Halt] policy tripped — terminal for
      writes, with the fault echoed in every subsequent write reply). *)

type hooks = {
  on_events : Rfid_core.Event.t list -> unit;
      (** fired with each batch of newly emitted events, after they are
          in the ring — the durable events log writes here *)
  on_flush_mark : unit -> unit;
      (** fired when [DRAIN] flushes the engine — the events log writes
          its ["# flush"] marker here *)
  on_admitted : int -> unit;
      (** fired with the new engine epoch each time a queued
          observation advances it — WAL sync cadence hangs here *)
  on_checkpoint : Rfid_core.Engine.t -> unit;
      (** fired on the checkpoint cadence and on [DRAIN]; the server
          binary snapshots and saves here, behind its durability
          barrier *)
}

val no_hooks : hooks

type t

val create :
  guard:Rfid_robust.Ingest.t ->
  engine:Rfid_core.Engine.t ->
  num_objects:int ->
  ?admit_cap:int ->
  ?events_keep:int ->
  ?checkpoint_every:int ->
  ?hooks:hooks ->
  unit ->
  t
(** [admit_cap] bounds the admission queue (default 1024);
    [checkpoint_every] is the admitted-epoch checkpoint cadence
    (default 0 = only on [DRAIN]). @raise Invalid_argument if
    [admit_cap < 1] or [checkpoint_every < 0]. *)

val greeting : t -> string
(** The banner sent on connect, newline-terminated. *)

val handle_line : t -> string -> string * bool
(** [handle_line t line] is [(reply, close)]. [reply] is [""] for an
    empty request line and otherwise one or more [\n]-terminated lines;
    [close] is [true] only for [QUIT]. Never raises on any input. *)

val tick : t -> max_steps:int -> int
(** Step up to [max_steps] queued observations through the engine;
    returns how many were processed. No-op (0) while paused, halted, or
    empty. *)

val drain : t -> unit
(** The [DRAIN] action without the reply: process the whole queue,
    flush the engine, fire [on_flush_mark] and [on_checkpoint], latch
    draining. Idempotent. The server's SIGTERM path calls this. *)

val queue_depth : t -> int
val epoch : t -> int
val admitted : t -> int
(** Queued observations that advanced the engine's epoch so far. *)

val draining : t -> bool
val halted : t -> string option
val engine : t -> Rfid_core.Engine.t
val preload_event : t -> Rfid_core.Event.t -> unit
(** Seed the event ring (recovery replays the durable events log here
    before serving). *)
