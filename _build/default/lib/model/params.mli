(** The complete parameter vector of the joint model of §III-B: sensor
    coefficients, reader motion, reader location sensing, and object
    dynamics. This is what calibration (§III-C) estimates and what every
    inference engine consumes. *)

type t = {
  sensor : Sensor_model.t;
  motion : Motion_model.t;
  sensing : Location_sensing.t;
  objects : Object_model.t;
}

val default : t

val create :
  ?sensor:Sensor_model.t ->
  ?motion:Motion_model.t ->
  ?sensing:Location_sensing.t ->
  ?objects:Object_model.t ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
