(** 3-D points/vectors in feet. Object and reader locations throughout
    the library are [Vec3.t]; the warehouse simulator keeps z = 0 (the
    paper assumes all tags at the same height), but the model and engine
    are fully 3-D. *)

type t = { x : float; y : float; z : float }

val make : float -> float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val norm_sq : t -> float
val dist : t -> t -> float
val dist_sq : t -> t -> float

val dist_xy : t -> t -> float
(** Distance projected onto the XY plane (the paper's reported error
    metric is "inference error in XY plane"). *)

val lerp : t -> t -> float -> t
(** [lerp a b u] is [a + u (b - a)]. *)

val to_array : t -> float array
(** [[| x; y; z |]] — bridge to {!Rfid_prob.Gaussian}. *)

val of_array : float array -> t
(** @raise Invalid_argument unless length is 3. *)

val xy_angle : t -> float
(** [atan2 y x] of the vector — heading in the XY plane, radians. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
