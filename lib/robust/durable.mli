(** Low-level durable writes. Every byte the robustness layer persists
    — checkpoint files, write-ahead-log records, durable event logs —
    flows through {!write}, for two reasons:

    - it loops over short writes, so callers get all-or-crash
      semantics from a single call;
    - it hosts the kill-anywhere test hook: with
      [RFID_CRASH_AT_BYTE=N] in the environment, the process SIGKILLs
      itself after the N-th durable byte, leaving whatever prefix the
      kernel already received — including a torn half-record — exactly
      as a real crash would. The crash-test harness sweeps N across
      the run to prove recovery from every byte position.

    The hook is read once, at the first durable write; production runs
    (no variable set) pay one [Sys.getenv_opt] total. *)

val write : Unix.file_descr -> string -> unit
(** Write the whole string (looping over short writes), counting the
    bytes toward {!total_written} and the crash hook.
    @raise Unix.Unix_error as [Unix.write] does. *)

val fsync : Unix.file_descr -> unit
(** [Unix.fsync], re-exported so durability call sites read uniformly. *)

val fsync_dir : string -> unit
(** Fsync a directory, making a just-renamed file durable against power
    loss. Best-effort: errors from filesystems that refuse directory
    fsync are swallowed. *)

val total_written : unit -> int
(** Durable bytes written by this process so far. The crash-test
    harness reads this (echoed by the CLI) from an uninterrupted run to
    bound its random kill offsets. *)
