(* Tests for the dynamic grid index behind the serving layer's query
   cache: deterministic handle-lifecycle, oversize-entry and
   cell-retune checks, plus random operation traces proving the index
   is trace-equivalent to a naive model — every query agrees with a
   linear scan over the live entries, across insert / remove / update /
   clear and the self-tuning rehashes they trigger. *)

module Dyn_index = Rfid_geom.Dyn_index
module Box2 = Rfid_geom.Box2
module Rtree = Rfid_geom.Rtree
module Rng = Rfid_prob.Rng

let box x0 y0 x1 y1 = Box2.make ~min_x:x0 ~min_y:y0 ~max_x:x1 ~max_y:y1

let sorted_hits hits =
  let out = ref [] in
  for i = 0 to Rtree.Hits.length hits - 1 do
    out := Rtree.Hits.get hits i :: !out
  done;
  List.sort Int.compare !out

let query idx probe =
  let hits = Rtree.Hits.create ~dummy:(-1) in
  Dyn_index.query_into idx probe hits;
  sorted_hits hits

let test_handle_lifecycle () =
  let idx = Dyn_index.create ~dummy:(-1) () in
  Alcotest.(check (list int)) "empty index, empty query" []
    (query idx (box (-1e9) (-1e9) 1e9 1e9));
  let h1 = Dyn_index.insert idx (box 0. 0. 1. 1.) 10 in
  let h2 = Dyn_index.insert idx (box 5. 5. 6. 6.) 20 in
  let h3 = Dyn_index.insert idx (box 0.5 0.5 5.5 5.5) 30 in
  Alcotest.(check int) "size" 3 (Dyn_index.size idx);
  let b, v = Dyn_index.get idx h2 in
  Alcotest.(check int) "get value" 20 v;
  Alcotest.(check bool) "get box" true (b = box 5. 5. 6. 6.);
  Alcotest.(check (list int)) "corner probe" [ 10; 30 ]
    (query idx (box 0. 0. 0.6 0.6));
  Alcotest.(check (list int)) "shared edge counts" [ 10; 30 ]
    (query idx (box 1. 1. 1. 1.));
  Alcotest.(check (list int)) "whole plane" [ 10; 20; 30 ]
    (query idx (box (-100.) (-100.) 100. 100.));
  Dyn_index.remove idx h3;
  Alcotest.(check (list int)) "removed entry gone" [ 10 ]
    (query idx (box 0. 0. 0.6 0.6));
  Util.check_raises_invalid "double remove" (fun () -> Dyn_index.remove idx h3);
  Util.check_raises_invalid "get on dead handle" (fun () ->
      ignore (Dyn_index.get idx h3));
  Util.check_raises_invalid "update on dead handle" (fun () ->
      Dyn_index.update idx h3 (box 0. 0. 1. 1.) 0);
  Util.check_raises_invalid "out-of-range handle" (fun () ->
      Dyn_index.remove idx 999);
  Util.check_raises_invalid "negative handle" (fun () ->
      ignore (Dyn_index.get idx (-1)));
  (* Freed slots are recycled; recycled handles answer for the new
     entry only. *)
  let h4 = Dyn_index.insert idx (box 8. 8. 9. 9.) 40 in
  Alcotest.(check int) "freed slot reused" h3 h4;
  Alcotest.(check (list int)) "reused handle is the new entry" [ 40 ]
    (query idx (box 8.5 8.5 8.6 8.6));
  (* Update moves an entry without changing its handle. *)
  Dyn_index.update idx h1 (box 50. 50. 51. 51.) 11;
  Alcotest.(check (list int)) "moved away" [] (query idx (box 0. 0. 0.6 0.6));
  Alcotest.(check (list int)) "moved here" [ 11 ]
    (query idx (box 49. 49. 52. 52.));
  Dyn_index.clear idx;
  Alcotest.(check int) "cleared" 0 (Dyn_index.size idx);
  Util.check_raises_invalid "cleared handles are dead" (fun () ->
      ignore (Dyn_index.get idx h1));
  Alcotest.(check (list int)) "query after clear" []
    (query idx (box (-1e9) (-1e9) 1e9 1e9))

(* An entry spanning far more cells than [max_span_cells] lives on the
   oversize list, yet behaves exactly like any other entry. *)
let test_oversize () =
  let idx = Dyn_index.create ~dummy:(-1) () in
  for i = 0 to 19 do
    ignore
      (Dyn_index.insert idx
         (box (float_of_int i) 0. (float_of_int i +. 0.5) 0.5)
         i)
  done;
  let hh = Dyn_index.insert idx (box (-1e6) (-1e6) 1e6 1e6) 999 in
  Alcotest.(check (list int)) "oversize entry found by a tiny probe"
    [ 3; 999 ]
    (query idx (box 3.1 0.1 3.2 0.2));
  (* Shrinking it back via update must pull it off the oversize list. *)
  Dyn_index.update idx hh (box 2.0 0.0 2.2 0.4) 999;
  Alcotest.(check (list int)) "no longer everywhere" [ 3 ]
    (query idx (box 3.1 0.1 3.2 0.2));
  Alcotest.(check (list int)) "now a normal entry" [ 2; 999 ]
    (query idx (box 2.05 0.1 2.1 0.2));
  Dyn_index.remove idx hh;
  Alcotest.(check (list int)) "removable" [ 2 ]
    (query idx (box 2.05 0.1 2.1 0.2))

(* The cell size tracks the live population's box extents, and queries
   survive the rehashes in both directions. *)
let test_cell_retune () =
  let idx = Dyn_index.create ~dummy:(-1) () in
  Alcotest.(check (float 0.)) "initial cell" 1.0 (Dyn_index.cell_size idx);
  let handles =
    Array.init 32 (fun i ->
        let x = float_of_int (i * 30) in
        Dyn_index.insert idx (box x 0. (x +. 100.) 100.) i)
  in
  Alcotest.(check bool) "cell grew with big boxes" true
    (Dyn_index.cell_size idx > 4.0);
  Alcotest.(check (list int)) "query correct after growing rehash" [ 0; 1 ]
    (query idx (box 35. 5. 45. 10.));
  Array.iter (Dyn_index.remove idx) handles;
  for i = 0 to 31 do
    let x = float_of_int i in
    ignore (Dyn_index.insert idx (box x 0. (x +. 0.1) 0.1) (100 + i))
  done;
  Alcotest.(check bool) "cell shrank with small boxes" true
    (Dyn_index.cell_size idx < 1.0);
  Alcotest.(check (list int)) "query correct after shrinking rehash" [ 105 ]
    (query idx (box 5.05 0.05 5.06 0.06))

(* Random operation traces against a naive (handle -> box * value)
   model: after every mutation the sizes agree, every query agrees with
   a linear intersection scan, and [iter] visits exactly the live
   entries in ascending handle order. Values are unique, so list
   comparison is exact. *)
let prop_matches_model =
  Util.qcheck ~count:60 "random op trace matches linear scan"
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      let idx = Dyn_index.create ~dummy:(-1) () in
      let hits = Rtree.Hits.create ~dummy:(-1) in
      let model : (int, Box2.t * int) Hashtbl.t = Hashtbl.create 64 in
      let next = ref 0 in
      let ok = ref true in
      let coord () = (float_of_int (Rng.int rng 2001) /. 10.) -. 100. in
      let random_box () =
        let x0 = coord () and y0 = coord () in
        match Rng.int rng 10 with
        | 0 -> box x0 y0 x0 y0 (* degenerate point box *)
        | 1 ->
            (* wide enough to land on the oversize list *)
            box (x0 -. 500.) (y0 -. 500.) (x0 +. 500.) (y0 +. 500.)
        | _ ->
            let w = float_of_int (Rng.int rng 80) /. 10. in
            let h = float_of_int (Rng.int rng 80) /. 10. in
            box x0 y0 (x0 +. w) (y0 +. h)
      in
      let live_handle () =
        match Hashtbl.fold (fun k _ acc -> k :: acc) model [] with
        | [] -> None
        | keys -> Some (List.nth keys (Rng.int rng (List.length keys)))
      in
      let check_query probe =
        Dyn_index.query_into idx probe hits;
        let got = sorted_hits hits in
        let want =
          Hashtbl.fold
            (fun _ (b, v) acc ->
              if Box2.intersects b probe then v :: acc else acc)
            model []
          |> List.sort Int.compare
        in
        if got <> want then ok := false
      in
      for _ = 1 to 300 do
        (match Rng.int rng 100 with
        | r when r < 40 ->
            let b = random_box () in
            let v = !next in
            incr next;
            let h = Dyn_index.insert idx b v in
            if Hashtbl.mem model h then ok := false (* live handles unique *);
            Hashtbl.replace model h (b, v)
        | r when r < 60 -> (
            match live_handle () with
            | None -> ()
            | Some h ->
                Dyn_index.remove idx h;
                Hashtbl.remove model h)
        | r when r < 78 -> (
            match live_handle () with
            | None -> ()
            | Some h ->
                let b = random_box () in
                let v = !next in
                incr next;
                Dyn_index.update idx h b v;
                Hashtbl.replace model h (b, v))
        | r when r < 98 -> check_query (random_box ())
        | _ ->
            Dyn_index.clear idx;
            Hashtbl.reset model);
        if Dyn_index.size idx <> Hashtbl.length model then ok := false
      done;
      check_query (box (-1e7) (-1e7) 1e7 1e7);
      let visited = ref [] in
      Dyn_index.iter idx (fun h b v -> visited := (h, b, v) :: !visited);
      let visited = List.rev !visited in
      let rec is_ascending = function
        | (h1, _, _) :: ((h2, _, _) :: _ as rest) ->
            h1 < h2 && is_ascending rest
        | _ -> true
      in
      let model_entries =
        Hashtbl.fold (fun h (b, v) acc -> (h, b, v) :: acc) model []
        |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
      in
      !ok && is_ascending visited && visited = model_entries)

let suite =
  ( "dyn_index",
    [
      Alcotest.test_case "handle lifecycle" `Quick test_handle_lifecycle;
      Alcotest.test_case "oversize entries" `Quick test_oversize;
      Alcotest.test_case "cell self-tuning" `Quick test_cell_retune;
      prop_matches_model;
    ] )
