test/test_engine_policies.ml: Alcotest Array Config Engine Event Factored_filter Hashtbl Lazy List Option Params Printf Rfid_core Rfid_eval Rfid_learn Rfid_model Rfid_prob Rfid_sim Trace Types Util
