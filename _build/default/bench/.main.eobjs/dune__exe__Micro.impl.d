bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Rfid_core Rfid_geom Rfid_model Rfid_prob Scenarios Staged Test Time Toolkit
