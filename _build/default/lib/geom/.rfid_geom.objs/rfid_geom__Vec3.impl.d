lib/geom/vec3.ml: Float Format
