(** Weighted logistic regression.

    This is the statistical engine behind the paper's parametric RFID
    sensor model (Eq. 1): the probability that a tag responds is the
    logistic of a polynomial in reader–tag distance and angle, and the
    coefficients are fitted from (possibly fractionally weighted)
    read/no-read outcomes during EM calibration (§III-C). *)

val sigmoid : float -> float
(** [1 / (1 + exp (-x))], stable for large |x|. *)

val log_sigmoid : float -> float
(** [log (sigmoid x)] without overflow: equals [-log1p (exp (-x))]. *)

val exp_underflow : float
(** A logit bound (-746) at which the complementary log-likelihood
    saturates {e exactly} in IEEE-754 double: for any
    [x <= exp_underflow], [log_sigmoid (-.x) = -0.0] bit for bit,
    because [exp x] underflows to +0.0 (which happens just below
    -745.134) and [-.log1p 0. = -0.0].
    Since [w +. -0.0] is a bitwise no-op for every [w] (including
    zeros of either sign), a log-likelihood term known to be this
    saturated may be skipped outright without perturbing the
    accumulator — the basis of the sensor kernel's saturation cull. *)

type model = { coef : float array }
(** Coefficients over a feature vector; [predict] and [fit] agree on the
    feature layout chosen by the caller. *)

val predict : model -> float array -> float
(** Probability of the positive class for a feature vector. *)

val log_likelihood : model -> x:float array array -> y:bool array -> ?w:float array -> unit -> float
(** Weighted Bernoulli log-likelihood of the data under the model. *)

val fit :
  ?l2:float ->
  ?max_iter:int ->
  ?tol:float ->
  ?init:float array ->
  ?nonpositive:int list ->
  x:float array array ->
  y:bool array ->
  ?w:float array ->
  dim:int ->
  unit ->
  model
(** Maximum-likelihood fit by Newton–Raphson (iteratively reweighted
    least squares) with L2 penalty [l2] (default 1e-4; the intercept is
    penalized too — harmless at this scale and it keeps the Hessian
    well-conditioned when classes separate). Steps are trust-region
    clamped to norm 10, and falls back to a damped gradient step if
    the Newton system is singular. [w] are per-example weights
    (default 1). [dim] is the feature-vector length.

    [nonpositive] lists coefficient indices constrained to be <= 0
    (projected after each step) — domain knowledge such as "read rate
    decays with distance" that guards against wild extrapolation where
    the data leaves a feature region unobserved.

    Terminates after [max_iter] (default 400) Newton steps or when the
    coefficient update's max-norm drops below [tol] (default 1e-8).
    @raise Invalid_argument on shape mismatches, empty data, or a
    constraint index out of range. *)
