(* Experiment harness: reproduces every table and figure of the paper's
   evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- fig5e scalability
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --large # include the 10k-object sweep
     dune exec bench/main.exe -- --json BENCH_filter.json
                                         # machine-readable throughput bench *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let large = List.mem "--large" args in
  let args = List.filter (fun a -> a <> "--large") args in
  let json_path, args =
    let rec take acc = function
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | "--json" :: [] -> (Some "BENCH_filter.json", List.rev acc)
      | a :: rest -> take (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    take [] args
  in
  match json_path with
  | Some path -> Bench_json.run ~path ~large
  | None ->
  if List.mem "--list" args then begin
    Printf.printf "available experiments:\n";
    List.iter
      (fun (id, descr, _) -> Printf.printf "  %-22s %s\n" id descr)
      Experiments.all;
    Printf.printf "  %-22s %s\n" "micro" "Bechamel component benchmarks"
  end
  else begin
    let want id = args = [] || List.mem id args in
    List.iter
      (fun (id, _, f) ->
        if want id then
          if id = "scalability" && large then Experiments.scalability ~large:true ()
          else f ())
      Experiments.all;
    if want "micro" then Micro.print_results ()
  end
