lib/prob/logistic.mli:
