(** Supervised sensor-model fitting: given direct access to a read-rate
    function (a lab bench where tag and reader positions are both
    known — the "manual calibration" setting the paper contrasts with,
    or a simulator's ground truth), fit the logistic sensor model by
    maximum likelihood over sampled interrogations.

    Two uses: (1) the "true sensor model" reference curve of
    Fig. 5(e) — the best logistic approximation of the simulator's
    actual cone; (2) a unit-testable oracle for EM (EM from noisy
    streams should approach the supervised fit). *)

val fit_sensor :
  ?samples:int ->
  ?l2:float ->
  ?max_distance:float ->
  read_prob:(d:float -> theta:float -> float) ->
  seed:int ->
  unit ->
  Rfid_model.Sensor_model.t
(** Draw [samples] (default 20000) geometries uniformly over
    distance ∈ [0, max_distance] (default 6 ft) × angle ∈ [0, pi],
    label each by a Bernoulli draw from [read_prob], and fit.
    @raise Invalid_argument if [samples <= 0] or
    [max_distance <= 0]. *)

val fit_from_pairs :
  ?l2:float ->
  ?init:Rfid_model.Sensor_model.t ->
  ?w:float array ->
  geometries:(float * float) array ->
  outcomes:bool array ->
  unit ->
  Rfid_model.Sensor_model.t
(** Weighted logistic fit from explicit ((distance, angle), read?)
    pairs — the M-step primitive of {!Calibration}.
    @raise Invalid_argument on shape mismatch or empty data. *)

val mean_abs_error :
  Rfid_model.Sensor_model.t ->
  read_prob:(d:float -> theta:float -> float) ->
  ?max_distance:float ->
  ?grid:int ->
  unit ->
  float
(** Mean absolute difference of read probabilities over a
    distance × angle grid — how well a fitted model matches a reference
    region (used to compare learned vs true models, Fig. 5(b)/(c)). *)
