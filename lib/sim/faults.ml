open Rfid_model

type spec = {
  drop_prob : float;
  duplicate_prob : float;
  nan_fix_prob : float;
  spurious_tag_prob : float;
  reorder_prob : float;
  outage : (int * int) option;
}

let none =
  {
    drop_prob = 0.;
    duplicate_prob = 0.;
    nan_fix_prob = 0.;
    spurious_tag_prob = 0.;
    reorder_prob = 0.;
    outage = None;
  }

let make ?(drop_prob = 0.) ?(duplicate_prob = 0.) ?(nan_fix_prob = 0.)
    ?(spurious_tag_prob = 0.) ?(reorder_prob = 0.) ?outage () =
  let check what p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Faults.make: %s must be in [0, 1]" what)
  in
  check "drop_prob" drop_prob;
  check "duplicate_prob" duplicate_prob;
  check "nan_fix_prob" nan_fix_prob;
  check "spurious_tag_prob" spurious_tag_prob;
  check "reorder_prob" reorder_prob;
  (match outage with
  | Some (start, len) when start < 0 || len < 0 ->
      invalid_arg "Faults.make: outage start and length must be non-negative"
  | Some _ | None -> ());
  { drop_prob; duplicate_prob; nan_fix_prob; spurious_tag_prob; reorder_prob; outage }

let is_none spec = spec = none

let nan_fix = Rfid_geom.Vec3.make Float.nan Float.nan Float.nan

let in_outage spec e =
  match spec.outage with
  | Some (start, len) -> e >= start && e < start + len
  | None -> false

(* Corruption is applied record by record in stream order from one
   seeded generator, so a given (spec, seed, stream) always yields the
   same corrupted stream — the bench and the fault-matrix tests depend
   on replaying identical fault patterns. Draw order per record is
   fixed: outage check (no draw), NaN fix, spurious tag, duplicate,
   drop; adjacent reordering runs as a final pass. *)
let apply spec ~seed observations =
  let rng = Rfid_prob.Rng.create ~seed in
  let out = ref [] in
  List.iter
    (fun (o : Types.observation) ->
      let o =
        if in_outage spec o.Types.o_epoch then { o with Types.o_reported_loc = nan_fix }
        else o
      in
      let o =
        if Rfid_prob.Rng.bernoulli rng ~p:spec.nan_fix_prob then
          { o with Types.o_reported_loc = nan_fix }
        else o
      in
      let o =
        if Rfid_prob.Rng.bernoulli rng ~p:spec.spurious_tag_prob then
          {
            o with
            Types.o_read_tags =
              Types.Object_tag (1_000_000 + Rfid_prob.Rng.int rng 1000)
              :: o.Types.o_read_tags;
          }
        else o
      in
      let dup = Rfid_prob.Rng.bernoulli rng ~p:spec.duplicate_prob in
      if not (Rfid_prob.Rng.bernoulli rng ~p:spec.drop_prob) then begin
        out := o :: !out;
        if dup then out := o :: !out
      end)
    observations;
  let arr = Array.of_list (List.rev !out) in
  let i = ref 0 in
  while !i < Array.length arr - 1 do
    if Rfid_prob.Rng.bernoulli rng ~p:spec.reorder_prob then begin
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!i + 1);
      arr.(!i + 1) <- tmp;
      i := !i + 2
    end
    else incr i
  done;
  Array.to_list arr

let pp ppf spec =
  Format.fprintf ppf
    "@[drop=%.0f%% dup=%.0f%% nan-fix=%.0f%% spurious=%.0f%% reorder=%.0f%%%t@]"
    (100. *. spec.drop_prob) (100. *. spec.duplicate_prob) (100. *. spec.nan_fix_prob)
    (100. *. spec.spurious_tag_prob)
    (100. *. spec.reorder_prob)
    (fun ppf ->
      match spec.outage with
      | Some (start, len) -> Format.fprintf ppf " outage=[%d,%d)" start (start + len)
      | None -> ())
