open Rfid_prob

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Util.rng () in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Rng.bits64 a) (Rng.bits64 b);
  (* Advancing one must not advance the other. *)
  let _ = Rng.bits64 a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  Alcotest.(check bool) "desynchronized after divergence" false (Int64.equal va vb)

let test_split_independent () =
  let a = Util.rng () in
  let b = Rng.split a in
  let xs = Array.init 50 (fun _ -> Rng.float a) in
  let ys = Array.init 50 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_float_range () =
  let r = Util.rng () in
  for _ = 1 to 10000 do
    let x = Rng.float r in
    Util.check_in_range "float" ~lo:0. ~hi:0.9999999999999999 x
  done

let test_float_mean () =
  let r = Util.rng () in
  let n = 50000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r
  done;
  Util.check_close ~eps:0.01 "uniform mean" 0.5 (!sum /. float_of_int n)

let test_int_bounds () =
  let r = Util.rng () in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let k = Rng.int r 7 in
    Util.check_in_range "int bound" ~lo:0. ~hi:6. (float_of_int k);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 then Alcotest.failf "bucket %d badly undersampled: %d" i c)
    counts

let test_int_invalid () =
  let r = Util.rng () in
  Util.check_raises_invalid "zero bound" (fun () -> Rng.int r 0);
  Util.check_raises_invalid "negative bound" (fun () -> Rng.int r (-3))

let test_gaussian_moments () =
  let r = Util.rng () in
  let n = 100000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r ~mu:2. ~sigma:3. ()) in
  Util.check_close ~eps:0.05 "gaussian mean" 2. (Stats.mean xs);
  Util.check_close ~eps:0.15 "gaussian sd" 3. (sqrt (Stats.variance xs))

let test_gaussian_invalid () =
  let r = Util.rng () in
  Util.check_raises_invalid "negative sigma" (fun () ->
      Rng.gaussian r ~sigma:(-1.) ())

let test_bernoulli () =
  let r = Util.rng () in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  Util.check_close ~eps:0.02 "bernoulli rate" 0.3 (float_of_int !hits /. float_of_int n);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r ~p:0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r ~p:1.);
  (* Out-of-range p is clamped, not an error. *)
  Alcotest.(check bool) "p>1 clamps" true (Rng.bernoulli r ~p:7.)

let test_exponential () =
  let r = Util.rng () in
  let n = 50000 in
  let xs = Array.init n (fun _ -> Rng.exponential r ~rate:2.) in
  Util.check_close ~eps:0.02 "exponential mean" 0.5 (Stats.mean xs);
  Array.iter (fun x -> if x < 0. then Alcotest.fail "negative exponential draw") xs;
  Util.check_raises_invalid "rate 0" (fun () -> Rng.exponential r ~rate:0.)

let test_categorical () =
  let r = Util.rng () in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40000 do
    let k = Rng.categorical r w in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero-weight bucket untouched" 0 counts.(1);
  Util.check_close ~eps:0.02 "weight ratio" 0.25
    (float_of_int counts.(0) /. 40000.);
  Util.check_raises_invalid "empty weights" (fun () -> Rng.categorical r [||]);
  Util.check_raises_invalid "all-zero weights" (fun () ->
      Rng.categorical r [| 0.; 0. |])

let test_shuffle_permutes () =
  let r = Util.rng () in
  let a = Array.init 100 Fun.id in
  let b = Array.copy a in
  Rng.shuffle_in_place r b;
  Array.sort Int.compare b;
  Alcotest.(check (array int)) "shuffle is a permutation" a b

let test_uniform () =
  let r = Util.rng () in
  for _ = 1 to 1000 do
    Util.check_in_range "uniform" ~lo:(-2.) ~hi:5. (Rng.uniform r ~lo:(-2.) ~hi:5.)
  done;
  Util.check_raises_invalid "inverted bounds" (fun () -> Rng.uniform r ~lo:1. ~hi:0.)

let prop_int_nonnegative =
  Util.qcheck "Rng.int always in [0, n)" QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let r = Rfid_prob.Rng.create ~seed in
      let k = Rfid_prob.Rng.int r n in
      k >= 0 && k < n)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "float mean" `Quick test_float_mean;
      Alcotest.test_case "int bounds and uniformity" `Quick test_int_bounds;
      Alcotest.test_case "int invalid bounds" `Quick test_int_invalid;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Alcotest.test_case "gaussian invalid sigma" `Quick test_gaussian_invalid;
      Alcotest.test_case "bernoulli" `Quick test_bernoulli;
      Alcotest.test_case "exponential" `Quick test_exponential;
      Alcotest.test_case "categorical" `Quick test_categorical;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      Alcotest.test_case "uniform bounds" `Quick test_uniform;
      prop_int_nonnegative;
    ] )
