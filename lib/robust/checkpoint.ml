let magic = "rfid_streams-checkpoint"
let version = 1

(* Adler-32 (RFC 1950), hand-rolled so the checkpoint format needs no
   zlib binding. Fast enough: payloads are tens of kilobytes. *)
let adler32 s =
  let base = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod base;
      b := (!b + !a) mod base)
    s;
  (!b lsl 16) lor !a

(* File layout (header is plain text so `head -2 FILE` identifies a
   checkpoint; payload is Marshal output, which is binary):

     rfid_streams-checkpoint v<version>\n
     epoch=<E> bytes=<N> adler32=<08x>\n
     <N bytes of Marshal payload>

   The payload is the plain-data Engine.snapshot — no closures, no
   custom blocks beyond int64 — so Marshal round-trips it exactly. *)

let save ~path snapshot =
  let payload = Marshal.to_string (snapshot : Rfid_core.Engine.snapshot) [] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s v%d\n" magic version;
      Printf.fprintf oc "epoch=%d bytes=%d adler32=%08x\n"
        (Rfid_core.Engine.snapshot_epoch snapshot)
        (String.length payload) (adler32 payload);
      output_string oc payload);
  (* Write-then-rename so a crash mid-save never leaves a truncated
     file at [path]. *)
  Sys.rename tmp path

let read_line_opt ic = try Some (input_line ic) with End_of_file -> None

let parse_header2 line =
  (* "epoch=<E> bytes=<N> adler32=<hex>" *)
  try Scanf.sscanf line "epoch=%d bytes=%d adler32=%x%!" (fun e n c -> Some (e, n, c))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (read_line_opt ic, read_line_opt ic) with
          | Some l1, Some l2 when l1 = Printf.sprintf "%s v%d" magic version -> (
              match parse_header2 l2 with
              | None -> Error (path ^ ": malformed checkpoint header")
              | Some (_epoch, nbytes, expected_sum) -> (
                  match really_input_string ic nbytes with
                  | exception End_of_file ->
                      Error (path ^ ": truncated checkpoint payload")
                  | payload ->
                      let actual = adler32 payload in
                      if actual <> expected_sum then
                        Error
                          (Printf.sprintf
                             "%s: checkpoint checksum mismatch (stored %08x, \
                              computed %08x)"
                             path expected_sum actual)
                      else (
                        match
                          (Marshal.from_string payload 0
                            : Rfid_core.Engine.snapshot)
                        with
                        | snapshot -> Ok snapshot
                        | exception Failure msg ->
                            Error (path ^ ": undecodable checkpoint payload: " ^ msg))))
          | Some l1, _ when String.length l1 >= String.length magic
                            && String.sub l1 0 (String.length magic) = magic ->
              Error
                (Printf.sprintf "%s: unsupported checkpoint version (want v%d)"
                   path version)
          | _ -> Error (path ^ ": not a " ^ magic ^ " file"))

let load_exn ~path =
  match load ~path with Ok s -> s | Error msg -> failwith msg
