type t = { loc : Rfid_geom.Vec3.t; heading : float }

let make ~loc ~heading = { loc; heading }

let pp ppf t =
  Format.fprintf ppf "%a @ %.1f deg" Rfid_geom.Vec3.pp t.loc (t.heading *. 180. /. Float.pi)
