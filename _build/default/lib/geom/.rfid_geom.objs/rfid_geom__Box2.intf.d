lib/geom/box2.mli: Format Vec3
