module Vec3 = Rfid_geom.Vec3
module Box2 = Rfid_geom.Box2
module Rtree = Rfid_geom.Rtree
module Engine = Rfid_core.Engine
module Event = Rfid_core.Event
module G = Rfid_prob.Gaussian.Univariate

let sigma_reach = 3.5
let min_mass_floor = 0.001

type entry = { e_obj : int; e_mu_x : float; e_sd_x : float; e_mu_y : float; e_sd_y : float; e_loc : Vec3.t }

let dummy_entry =
  { e_obj = -1; e_mu_x = 0.; e_sd_x = 0.; e_mu_y = 0.; e_sd_y = 0.; e_loc = Vec3.make 0. 0. 0. }

type answer = { a_obj : int; a_mass : float; a_loc : Vec3.t }

type t = {
  index : entry Rtree.t;
  hits : entry Rtree.Hits.t;
  mutable dirty : bool;
  (* Event ring: [ring] is a circular buffer of the last [keep] events;
     [head] is the slot the next event lands in. *)
  ring : Event.t option array;
  keep : int;
  mutable head : int;
  mutable seen : int;
}

let create ?(events_keep = 4096) () =
  if events_keep < 1 then invalid_arg "Query.create: events_keep must be >= 1";
  {
    index = Rtree.create ();
    hits = Rtree.Hits.create ~dummy:dummy_entry;
    dirty = true;
    ring = Array.make events_keep None;
    keep = events_keep;
    head = 0;
    seen = 0;
  }

let invalidate t = t.dirty <- true

(* A posterior with a degenerate axis (all particles agreed exactly)
   still occupies a point; give its box a hair of width so the closed
   intersection test finds it, and treat its axis mass as a step
   function in [axis_mass]. *)
let rebuild t ~engine =
  Rtree.clear t.index;
  Engine.iter_estimates engine (fun obj mean cov ->
      let sd_x = sqrt (Float.max 0. cov.(0).(0)) in
      let sd_y = sqrt (Float.max 0. cov.(1).(1)) in
      let rx = Float.max (sigma_reach *. sd_x) 1e-9 in
      let ry = Float.max (sigma_reach *. sd_y) 1e-9 in
      let box =
        Box2.make ~min_x:(mean.Vec3.x -. rx) ~min_y:(mean.Vec3.y -. ry)
          ~max_x:(mean.Vec3.x +. rx) ~max_y:(mean.Vec3.y +. ry)
      in
      Rtree.insert t.index box
        {
          e_obj = obj;
          e_mu_x = mean.Vec3.x;
          e_sd_x = sd_x;
          e_mu_y = mean.Vec3.y;
          e_sd_y = sd_y;
          e_loc = mean;
        });
  t.dirty <- false

let axis_mass ~mu ~sd ~lo ~hi =
  if sd > 0. then
    let g = G.create ~mu ~sigma:sd in
    G.cdf g hi -. G.cdf g lo
  else if mu >= lo && mu <= hi then 1.
  else 0.

let range t ~engine ~min_x ~min_y ~max_x ~max_y ~min_mass =
  let finite = Float.is_finite in
  if not (finite min_x && finite min_y && finite max_x && finite max_y) then
    invalid_arg "Query.range: bounds must be finite";
  if min_x > max_x || min_y > max_y then
    invalid_arg "Query.range: min bound exceeds max bound";
  let min_mass = Float.max min_mass min_mass_floor in
  if t.dirty then rebuild t ~engine;
  let probe = Box2.make ~min_x ~min_y ~max_x ~max_y in
  Rtree.query_into t.index probe t.hits;
  let out = ref [] in
  for i = 0 to Rtree.Hits.length t.hits - 1 do
    let e = Rtree.Hits.get t.hits i in
    let mx = axis_mass ~mu:e.e_mu_x ~sd:e.e_sd_x ~lo:min_x ~hi:max_x in
    let my = axis_mass ~mu:e.e_mu_y ~sd:e.e_sd_y ~lo:min_y ~hi:max_y in
    let mass = mx *. my in
    if mass >= min_mass then
      out := { a_obj = e.e_obj; a_mass = mass; a_loc = e.e_loc } :: !out
  done;
  List.sort (fun a b -> Int.compare a.a_obj b.a_obj) !out

let record_event t ev =
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.keep;
  t.seen <- t.seen + 1

let events_since t ~epoch =
  let held = Int.min t.seen t.keep in
  let out = ref [] in
  (* Walk newest to oldest, prepending, so the result is oldest first. *)
  for i = 0 to held - 1 do
    let slot = (t.head - 1 - i + (2 * t.keep)) mod t.keep in
    match t.ring.(slot) with
    | Some ev when ev.Event.ev_epoch >= epoch -> out := ev :: !out
    | Some _ | None -> ()
  done;
  !out

let events_seen t = t.seen
let events_dropped t = Int.max 0 (t.seen - t.keep)
