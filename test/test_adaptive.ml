(* Adaptive inference effort: the ESS resample cap and the
   uncertainty-scaled per-object particle budgets. Three contracts are
   pinned here: any cap at or above the resample trigger is exactly
   invisible (bit-identical event streams), adaptive runs are
   schedule-independent (bit-identical across domain counts), and
   mixed-budget filter states survive the snapshot codec and continue
   bit-identically after a restore. *)
open Rfid_model
module E = Rfid_core.Engine
module FF = Rfid_core.Factored_filter
module Obs = Rfid_obs.Metrics

let num_objects = 12
let full_budget = 32
let min_budget = 8

let scenario =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:2)
         ~config:(Rfid_sim.Trace_gen.default_config ())
         (Rfid_prob.Rng.create ~seed:29)
     in
     (wh, trace))

let config ?(variant = Rfid_core.Config.Factorized_indexed) ?min_object_particles
    ?resample_ess_ratio ?(num_domains = 1) () =
  Rfid_core.Config.create ~variant ~num_reader_particles:25
    ~num_object_particles:full_budget ?min_object_particles ?resample_ess_ratio
    ~num_domains ~report_delay:5 ()

let adaptive_config ?num_domains () =
  (* 0.25 < the 0.5 trigger so the ESS cap actually vetoes — both
     adaptive mechanisms are live in these runs. *)
  config ~min_object_particles:min_budget ~resample_ess_ratio:0.25 ?num_domains ()

let make_engine config =
  let wh, trace = Lazy.force scenario in
  E.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default ~config
    ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects ~seed:23 ()

let run_events config =
  let _, trace = Lazy.force scenario in
  let engine = make_engine config in
  E.run engine (Trace.observations trace) @ E.flush engine

let check_streams_equal what a b =
  Alcotest.(check int) (what ^ ": event count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Rfid_core.Event.t) y ->
      if x <> y then
        Alcotest.failf "%s: streams diverged:@ %a@ vs@ %a" what Rfid_core.Event.pp x
          Rfid_core.Event.pp y)
    a b

(* Any ESS cap at or above the classic 0.5 trigger is vacuous: the cap
   only vetoes a resample whose ESS is simultaneously below 0.5*n and
   at or above ratio*n, which is unsatisfiable for ratio >= 0.5. The
   event stream must therefore be bit-identical to the default's, for
   the factorized filters and the unfactorized joint filter alike. *)
let test_vacuous_cap_bit_identical () =
  List.iter
    (fun variant ->
      let what =
        match variant with
        | Rfid_core.Config.Unfactorized -> "unfactorized"
        | _ -> "factorized+index"
      in
      let reference = run_events (config ~variant ()) in
      List.iter
        (fun ratio ->
          let capped = run_events (config ~variant ~resample_ess_ratio:ratio ()) in
          check_streams_equal (Printf.sprintf "%s ess cap %.2f" what ratio) reference
            capped)
        [ 1.0; 0.75; 0.5 ])
    [ Rfid_core.Config.Unfactorized; Rfid_core.Config.Factorized_indexed ]

(* Below the trigger the cap must actually bite: vetoed resamples are
   counted, and with a near-zero ratio nearly every resample decision
   becomes a skip. *)
let test_cap_below_trigger_skips () =
  let skipped = Obs.counter Obs.global "filter.resamples_skipped" in
  let before = Obs.counter_value skipped in
  ignore (run_events (config ~resample_ess_ratio:0.05 ()));
  let delta = Obs.counter_value skipped - before in
  Alcotest.(check bool)
    (Printf.sprintf "ESS cap 0.05 vetoed some resamples (got %d)" delta)
    true (delta > 0)

(* Budgets and skips are driven by per-(object, epoch) keyed
   randomness, never by chunk scheduling: an adaptive run's full event
   stream is identical for every domain count. *)
let test_adaptive_domain_bit_identity () =
  let reference = run_events (adaptive_config ~num_domains:1 ()) in
  List.iter
    (fun num_domains ->
      let events = run_events (adaptive_config ~num_domains ()) in
      check_streams_equal
        (Printf.sprintf "adaptive domains=%d vs 1" num_domains)
        reference events)
    [ 2; 4 ]

let active_budgets snapshot =
  match (snapshot : E.snapshot).E.es_filter with
  | E.Factored_snapshot fs ->
      List.filter_map
        (fun so ->
          match so.FF.so_belief with
          | FF.Snap_active parts -> Some (Array.length parts)
          | FF.Snap_compressed _ -> None)
        fs.FF.fs_objects
  | E.Basic_snapshot _ -> Alcotest.fail "expected a factored snapshot"

(* Drive an adaptive engine to midstream and hand back the engine, the
   remaining observations, and its snapshot — which must already hold
   genuinely mixed budgets, or the restore test below proves nothing. *)
let adaptive_engine_at_midstream () =
  let _, trace = Lazy.force scenario in
  let engine = make_engine (adaptive_config ()) in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let first, rest =
    List.partition (fun (o : Types.observation) -> o.Types.o_epoch < n / 2) stream
  in
  List.iter (fun o -> ignore (E.step engine o)) first;
  (engine, rest, E.snapshot engine)

let test_mixed_budgets_on_ladder () =
  let _, _, snapshot = adaptive_engine_at_midstream () in
  let budgets = active_budgets snapshot in
  Alcotest.(check bool) "some objects are active" true (budgets <> []);
  let rungs = [ min_budget; 2 * min_budget; full_budget ] in
  List.iter
    (fun b ->
      if not (List.mem b rungs) then
        Alcotest.failf "budget %d is not a ladder rung" b)
    budgets;
  Alcotest.(check bool) "adaptation actually shrank some object" true
    (List.exists (fun b -> b < full_budget) budgets)

(* Mixed budgets through the codec: canonical round-trip, then a
   restored engine must continue bit-identically — budget state is the
   store length, which the per-object length prefix already persists. *)
let test_adaptive_restore_continue () =
  let engine, rest, snapshot = adaptive_engine_at_midstream () in
  let data = Rfid_robust.Codec.encode snapshot in
  let decoded =
    match Rfid_robust.Codec.decode data with
    | Ok s -> s
    | Error msg -> Alcotest.failf "adaptive snapshot decode failed: %s" msg
  in
  Alcotest.(check bool) "re-encoded bytes identical" true
    (String.equal data (Rfid_robust.Codec.encode decoded));
  Alcotest.(check bool) "budgets survive the round-trip" true
    (active_budgets decoded = active_budgets snapshot);
  let wh, _ = Lazy.force scenario in
  let restored =
    E.restore ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:(adaptive_config ()) decoded
  in
  let continue engine = List.concat_map (E.step engine) rest @ E.flush engine in
  check_streams_equal "adaptive restore-continue" (continue engine)
    (continue restored)

let test_config_validation () =
  Util.check_raises_invalid "min budget 0" (fun () ->
      ignore (config ~min_object_particles:0 ()));
  Util.check_raises_invalid "min budget above K" (fun () ->
      ignore (config ~min_object_particles:(full_budget + 1) ()));
  Util.check_raises_invalid "ess ratio 0" (fun () ->
      ignore (config ~resample_ess_ratio:0. ()));
  Util.check_raises_invalid "ess ratio above 1" (fun () ->
      ignore (config ~resample_ess_ratio:1.5 ()))

let suite =
  ( "adaptive",
    [
      Alcotest.test_case "vacuous ESS cap is bit-identical" `Quick
        test_vacuous_cap_bit_identical;
      Alcotest.test_case "ESS cap below trigger vetoes" `Quick
        test_cap_below_trigger_skips;
      Alcotest.test_case "adaptive domains 1/2/4 bit-identical" `Quick
        test_adaptive_domain_bit_identity;
      Alcotest.test_case "mixed budgets stay on the ladder" `Quick
        test_mixed_budgets_on_ladder;
      Alcotest.test_case "adaptive restore continues bit-identically" `Quick
        test_adaptive_restore_continue;
      Alcotest.test_case "config validation" `Quick test_config_validation;
    ] )
