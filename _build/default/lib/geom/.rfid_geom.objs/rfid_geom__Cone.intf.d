lib/geom/cone.mli: Box2 Rfid_prob Vec3
