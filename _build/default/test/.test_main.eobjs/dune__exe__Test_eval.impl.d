test/test_eval.ml: Alcotest Array Config Event List Reader_state Rfid_core Rfid_eval Rfid_geom Rfid_model Rfid_prob Rfid_sim Trace Types Util
