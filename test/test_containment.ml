open Rfid_stream

(* Union_find *)

let test_uf_basics () =
  let uf = Union_find.create 6 in
  Alcotest.(check bool) "distinct initially" false (Union_find.same uf 0 1);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "transitively joined" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "others untouched" false (Union_find.same uf 0 3);
  Union_find.union uf 4 5;
  Alcotest.(check (list (list int))) "groups" [ [ 0; 1; 2 ]; [ 4; 5 ] ]
    (Union_find.groups uf);
  Util.check_raises_invalid "out of range" (fun () -> Union_find.find uf 9);
  Util.check_raises_invalid "negative size" (fun () -> ignore (Union_find.create (-1)))

let test_uf_idempotent_union () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  Alcotest.(check (list (list int))) "single group" [ [ 0; 1 ] ] (Union_find.groups uf)

let test_uf_edges () =
  (* Empty universe: legal, no groups, any access is out of range. *)
  let uf0 = Union_find.create 0 in
  Alcotest.(check (list (list int))) "empty universe" [] (Union_find.groups uf0);
  Util.check_raises_invalid "find in empty" (fun () -> ignore (Union_find.find uf0 0));
  (* Singleton universe and self-union. *)
  let uf1 = Union_find.create 1 in
  Union_find.union uf1 0 0;
  Alcotest.(check int) "self root" 0 (Union_find.find uf1 0);
  Alcotest.(check (list (list int))) "no group of one" [] (Union_find.groups uf1);
  (* Last valid element participates; one past it does not. *)
  let uf = Union_find.create 4 in
  Union_find.union uf 0 3;
  Alcotest.(check bool) "last element joins" true (Union_find.same uf 3 0);
  Util.check_raises_invalid "one past last" (fun () -> Union_find.union uf 0 4);
  Util.check_raises_invalid "negative element" (fun () -> ignore (Union_find.find uf (-1)));
  (* Everything merged: one group listing the whole universe. *)
  Union_find.union uf 1 2;
  Union_find.union uf 2 3;
  Alcotest.(check (list (list int))) "total merge" [ [ 0; 1; 2; 3 ] ]
    (Union_find.groups uf)

let prop_uf_union_is_equivalence =
  Util.qcheck ~count:100 "union-find implements an equivalence closure"
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let uf = Union_find.create 10 in
      List.iter (fun (a, b) -> Union_find.union uf a b) edges;
      (* brute-force reachability *)
      let adj = Array.make_matrix 10 10 false in
      List.iter
        (fun (a, b) ->
          adj.(a).(b) <- true;
          adj.(b).(a) <- true)
        edges;
      for k = 0 to 9 do
        for i = 0 to 9 do
          for j = 0 to 9 do
            if adj.(i).(k) && adj.(k).(j) then adj.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to 9 do
        for j = 0 to 9 do
          if i <> j then begin
            let reachable = adj.(i).(j) in
            if Union_find.same uf i j <> reachable then ok := false
          end
        done
      done;
      !ok)

(* Containment *)

let snapshot locs = List.mapi (fun i (x, y) -> (i, Util.vec3 x y 0.)) locs

let test_co_location_groups () =
  let c = Containment.create ~num_objects:5 () in
  (* Objects 0,1 sit together; 2,3 sit together; 4 alone. Four rounds of
     co-location reach min_support = 4. *)
  for _ = 1 to 4 do
    Containment.observe_round c
      (snapshot [ (0., 0.); (0.3, 0.2); (5., 5.); (5.4, 5.1); (9., 9.) ])
  done;
  Alcotest.(check (list (list int))) "two pairs" [ [ 0; 1 ]; [ 2; 3 ] ]
    (Containment.groups c)

let test_insufficient_support () =
  let c = Containment.create ~num_objects:3 () in
  Containment.observe_round c (snapshot [ (0., 0.); (0.2, 0.1); (8., 8.) ]);
  Alcotest.(check (list (list int))) "one round is not enough" []
    (Containment.groups c)

let test_co_movement_strong_evidence () =
  let c = Containment.create ~num_objects:4 () in
  (* Round 1: 0,1 together; 2,3 near each other too. *)
  Containment.observe_round c
    (snapshot [ (0., 0.); (0.4, 0.1); (4., 4.); (4.3, 4.2) ]);
  (* Round 2: 0,1 jumped together by (10, 10); 2 moved alone, 3 stayed. *)
  Containment.observe_round c
    (snapshot [ (10., 10.); (10.4, 10.1); (12., 0.); (4.3, 4.2) ]);
  (* 0-1: co-location twice (2) + joint move (3) = 5 >= 4 -> linked.
     2-3: co-location twice (2) but no joint move -> not linked. *)
  Alcotest.(check (list (list int))) "movers grouped" [ [ 0; 1 ] ]
    (Containment.groups c);
  Alcotest.(check bool) "support accumulates" true (Containment.support c 0 1 >= 4.);
  Alcotest.(check bool) "loner pair below" true (Containment.support c 2 3 < 4.)

let test_divergent_movement_is_no_evidence () =
  let c = Containment.create ~num_objects:2 () in
  Containment.observe_round c (snapshot [ (0., 0.); (0.3, 0.) ]);
  (* Both move, in different directions: no co-movement evidence. *)
  Containment.observe_round c (snapshot [ (10., 0.); (-10., 0.) ]);
  Util.check_close "only the first co-location" 1. (Containment.support c 0 1)

let test_of_events_rounds () =
  let c = Containment.create ~num_objects:3 () in
  let round locs =
    List.mapi (fun i (x, y) -> Rfid_core.Event.make ~epoch:i ~obj:i ~loc:(Util.vec3 x y 0.) ()) locs
  in
  for _ = 1 to 4 do
    Containment.of_events c ~rounds:[ round [ (0., 0.); (0.2, 0.2); (7., 7.) ] ]
  done;
  Alcotest.(check (list (list int))) "grouped from events" [ [ 0; 1 ] ]
    (Containment.groups c)

let test_observe_round_edges () =
  let c = Containment.create ~num_objects:4 () in
  (* An empty round is a legal no-op. *)
  Containment.observe_round c [];
  Alcotest.(check (list (list int))) "empty round" [] (Containment.groups c);
  (* A single-object round yields no pairs, and no self-evidence. *)
  for _ = 1 to 8 do
    Containment.observe_round c [ (2, Util.vec3 1. 1. 0.) ]
  done;
  Alcotest.(check (list (list int))) "single-object rounds" [] (Containment.groups c);
  Util.check_close "no self support" 0. (Containment.support c 2 2);
  (* The highest valid id (num_objects - 1) accumulates evidence like
     any other object. *)
  for _ = 1 to 4 do
    Containment.observe_round c [ (0, Util.vec3 0. 0. 0.); (3, Util.vec3 0.3 0.2 0.) ]
  done;
  Alcotest.(check (list (list int))) "boundary id grouped" [ [ 0; 3 ] ]
    (Containment.groups c);
  (* num_objects = 0: rounds must be empty, and anything else rejects. *)
  let c0 = Containment.create ~num_objects:0 () in
  Containment.observe_round c0 [];
  Alcotest.(check (list (list int))) "zero objects" [] (Containment.groups c0);
  Util.check_raises_invalid "id into empty universe" (fun () ->
      Containment.observe_round c0 [ (0, Rfid_geom.Vec3.zero) ])

let test_validation () =
  Util.check_raises_invalid "bad id" (fun () ->
      let c = Containment.create ~num_objects:2 () in
      Containment.observe_round c [ (5, Rfid_geom.Vec3.zero) ]);
  Util.check_raises_invalid "bad config" (fun () ->
      ignore
        (Containment.create
           ~config:{ Containment.default_config with Containment.co_distance = 0. }
           ~num_objects:2 ()))

(* End to end: simulate two scan rounds with a packed group that moves
   between rounds, clean with the engine, infer containment. *)
let test_containment_pipeline () =
  let open Rfid_model in
  let wh = Rfid_sim.Warehouse.layout ~num_objects:12 () in
  (* Objects 3,4,5 form a "case": initially adjacent (ids are adjacent,
     0.5 ft apart, within co_distance 1.0 of their neighbours); between
     rounds the whole case moves 3 ft down the shelf. *)
  let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:2 in
  let half = List.fold_left (fun a s -> a + s.Rfid_sim.Trace_gen.seg_epochs) 0 path / 2 in
  let movements =
    List.map
      (fun obj ->
        let orig = wh.Rfid_sim.Warehouse.object_locs.(obj) in
        {
          Rfid_sim.Trace_gen.move_epoch = half;
          move_obj = obj;
          move_to =
            World.clamp_to_shelves wh.Rfid_sim.Warehouse.world
              (Rfid_geom.Vec3.add orig (Util.vec3 0. 3. 0.));
        })
      [ 3; 4; 5 ]
  in
  let config_gen =
    { (Rfid_sim.Trace_gen.default_config ()) with Rfid_sim.Trace_gen.movements }
  in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path ~config:config_gen
      (Rfid_prob.Rng.create ~seed:67)
  in
  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~samples:8000
      ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob ~seed:2 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Params.create ~sensor ())
      ~config:
        (Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
           ~num_reader_particles:80 ~num_object_particles:150 ())
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:3 ()
  in
  let events = Rfid_core.Engine.run engine (Trace.observations trace) in
  let round1, round2 =
    List.partition (fun (ev : Rfid_core.Event.t) -> ev.Rfid_core.Event.ev_epoch < half) events
  in
  let c =
    Containment.create
      ~config:{ Containment.default_config with Containment.min_support = 3.5 }
      ~num_objects:12 ()
  in
  Containment.of_events c ~rounds:[ round1; round2 ];
  let groups = Containment.groups c in
  (* The moved case must come out as one group containing 3, 4, 5. *)
  let case_group =
    List.find_opt (fun g -> List.mem 4 g) groups |> Option.value ~default:[]
  in
  Alcotest.(check bool)
    (Format.asprintf "case {3;4;5} recovered, got %a" Containment.pp_groups groups)
    true
    (List.for_all (fun o -> List.mem o case_group) [ 3; 4; 5 ])

let suite =
  ( "containment",
    [
      Alcotest.test_case "union-find basics" `Quick test_uf_basics;
      Alcotest.test_case "union-find idempotence" `Quick test_uf_idempotent_union;
      Alcotest.test_case "union-find edges" `Quick test_uf_edges;
      prop_uf_union_is_equivalence;
      Alcotest.test_case "co-location groups" `Quick test_co_location_groups;
      Alcotest.test_case "insufficient support" `Quick test_insufficient_support;
      Alcotest.test_case "co-movement evidence" `Quick test_co_movement_strong_evidence;
      Alcotest.test_case "divergent movement" `Quick test_divergent_movement_is_no_evidence;
      Alcotest.test_case "of_events rounds" `Quick test_of_events_rounds;
      Alcotest.test_case "observe_round edges" `Quick test_observe_round_edges;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "containment pipeline" `Slow test_containment_pipeline;
    ] )
