lib/prob/resample.mli: Rng
