type filter =
  | Basic of Basic_filter.t * int (* declared object count *)
  | Factored of Factored_filter.t

type t = {
  filter : filter;
  cfg : Config.t;
  (* Pending location reports: (due epoch, object); due epochs are
     pushed in nondecreasing order because the delay is constant. *)
  pending : (int * int) Queue.t;
  scheduled : (int, unit) Hashtbl.t;  (* objects with a pending report *)
}

let create ~world ~params ~config ~init_reader ?num_objects ?(seed = 0) () =
  let rng = Rfid_prob.Rng.create ~seed in
  let filter =
    match config.Config.variant with
    | Config.Unfactorized -> (
        match num_objects with
        | Some n ->
            Basic (Basic_filter.create ~world ~params ~config ~init_reader ~num_objects:n ~rng, n)
        | None -> invalid_arg "Engine.create: Unfactorized variant requires num_objects")
    | Config.Factorized | Config.Factorized_indexed | Config.Factorized_compressed ->
        Factored (Factored_filter.create ~world ~params ~config ~init_reader ~rng)
  in
  { filter; cfg = config; pending = Queue.create (); scheduled = Hashtbl.create 64 }

let filter_step t obs =
  match t.filter with
  | Basic (f, _) -> Basic_filter.step f obs
  | Factored f -> Factored_filter.step f obs

let estimate t obj =
  match t.filter with
  | Basic (f, _) -> Basic_filter.estimate f obj
  | Factored f -> Factored_filter.estimate f obj

let reader_estimate t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.reader_estimate f
  | Factored f -> Factored_filter.reader_estimate f

let newly_seen t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.newly_seen f
  | Factored f -> Factored_filter.newly_seen f

let known_objects t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.known_objects f
  | Factored f -> Factored_filter.known_objects f

let epoch t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.epoch f
  | Factored f -> Factored_filter.epoch f

let objects_processed_last_step t =
  match t.filter with
  | Basic (_, n) -> n
  | Factored f -> Factored_filter.objects_processed_last_step f

let config t = t.cfg

let emit t ~at obj =
  Hashtbl.remove t.scheduled obj;
  match estimate t obj with
  | Some (loc, cov) -> Some (Event.make ~epoch:at ~obj ~loc ~cov ())
  | None -> None

let step t obs =
  filter_step t obs;
  let e = obs.Rfid_model.Types.o_epoch in
  (* Schedule a report for each object that just entered scope, unless
     one is already pending from this encounter. *)
  List.iter
    (fun obj ->
      if not (Hashtbl.mem t.scheduled obj) then begin
        Hashtbl.replace t.scheduled obj ();
        Queue.push (e + t.cfg.Config.report_delay, obj) t.pending
      end)
    (newly_seen t);
  let events = ref [] in
  let rec drain () =
    match Queue.peek_opt t.pending with
    | Some (due, obj) when due <= e ->
        ignore (Queue.pop t.pending);
        (match emit t ~at:e obj with Some ev -> events := ev :: !events | None -> ());
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  List.rev !events

let flush t =
  let e = epoch t in
  let events = ref [] in
  Queue.iter
    (fun (_, obj) ->
      if Hashtbl.mem t.scheduled obj then
        match emit t ~at:e obj with Some ev -> events := ev :: !events | None -> ())
    t.pending;
  Queue.clear t.pending;
  Hashtbl.reset t.scheduled;
  List.rev !events

let run t stream =
  let events = List.concat_map (fun obs -> step t obs) stream in
  events @ flush t
