lib/stream/misplaced.ml: Box2 Float Format Hashtbl Int List Rfid_core Rfid_geom Rfid_model Vec3
