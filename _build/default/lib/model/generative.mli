(** Forward sampling of the joint model — the five-step generative
    process of §III-B. Given a world, parameters and an initial reader
    state, produces a ground-truth-annotated {!Trace.t}: the hidden
    trajectory (true reader states and object locations) together with
    the evidence streams a mobile reader would emit. Used by tests
    (model self-consistency) and as a model-faithful workload
    generator. *)

val run :
  world:World.t ->
  params:Params.t ->
  init_reader:Reader_state.t ->
  num_objects:int ->
  epochs:int ->
  Rfid_prob.Rng.t ->
  Trace.t
(** Sample object locations O_1 uniformly over the shelves, then for
    each epoch: (1) advance the reader by the motion model, (2) report a
    noisy reader location, (3) advance object locations, (4) sense each
    object tag, (5) sense each shelf tag.
    @raise Invalid_argument if [num_objects < 0] or [epochs < 0]. *)
