bench/scenarios.ml: Hashtbl Location_sensing Motion_model Params Printf Rfid_baselines Rfid_core Rfid_eval Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Sensor_model Trace Vec3 World
