lib/model/types.mli: Format Map Rfid_geom Set
