open Rfid_geom

type config = { tolerance : float; confirmations : int }

let default_config = { tolerance = 0.5; confirmations = 2 }

type alert = {
  a_epoch : Rfid_model.Types.epoch;
  a_obj : int;
  a_loc : Vec3.t;
  a_home : Box2.t;
  a_distance : float;
  a_kind : [ `Misplaced | `Back_in_place ];
}

type state = { mutable strikes : int; mutable flagged : bool }

type t = {
  cfg : config;
  home : int -> Box2.t option;
  states : (int, state) Hashtbl.t;
}

let create ?(config = default_config) ~home () =
  if config.tolerance <= 0. || config.confirmations <= 0 then
    invalid_arg "Misplaced.create: non-positive config";
  { cfg = config; home; states = Hashtbl.create 64 }

(* XY distance from a point to a box's boundary; 0 inside. *)
let distance_outside (b : Box2.t) (p : Vec3.t) =
  let dx =
    Float.max 0. (Float.max (b.Box2.min_x -. p.Vec3.x) (p.Vec3.x -. b.Box2.max_x))
  in
  let dy =
    Float.max 0. (Float.max (b.Box2.min_y -. p.Vec3.y) (p.Vec3.y -. b.Box2.max_y))
  in
  sqrt ((dx *. dx) +. (dy *. dy))

let state_of t obj =
  match Hashtbl.find_opt t.states obj with
  | Some s -> s
  | None ->
      let s = { strikes = 0; flagged = false } in
      Hashtbl.replace t.states obj s;
      s

let push t (ev : Rfid_core.Event.t) =
  let obj = ev.Rfid_core.Event.ev_obj in
  match t.home obj with
  | None -> None
  | Some home ->
      let loc = ev.Rfid_core.Event.ev_loc in
      let d = distance_outside home loc in
      let s = state_of t obj in
      if d > t.cfg.tolerance then begin
        s.strikes <- s.strikes + 1;
        if (not s.flagged) && s.strikes >= t.cfg.confirmations then begin
          s.flagged <- true;
          Some
            {
              a_epoch = ev.Rfid_core.Event.ev_epoch;
              a_obj = obj;
              a_loc = loc;
              a_home = home;
              a_distance = d;
              a_kind = `Misplaced;
            }
        end
        else None
      end
      else begin
        s.strikes <- 0;
        if s.flagged then begin
          s.flagged <- false;
          Some
            {
              a_epoch = ev.Rfid_core.Event.ev_epoch;
              a_obj = obj;
              a_loc = loc;
              a_home = home;
              a_distance = d;
              a_kind = `Back_in_place;
            }
        end
        else None
      end

let run t events = List.filter_map (push t) events

let currently_misplaced t =
  Hashtbl.fold (fun obj s acc -> if s.flagged then obj :: acc else acc) t.states []
  |> List.sort Int.compare

let pp_alert ppf a =
  Format.fprintf ppf "t=%d obj=%d %s at %a (%.2f ft outside %a)" a.a_epoch a.a_obj
    (match a.a_kind with
    | `Misplaced -> "MISPLACED"
    | `Back_in_place -> "back in place")
    Vec3.pp a.a_loc a.a_distance Box2.pp a.a_home
