type filter =
  | Basic of Basic_filter.t * int (* declared object count *)
  | Factored of Factored_filter.t

(* Observability handles (process-global registry; registration is
   idempotent, so these are safe at module init). Spans time the
   engine-level stages; the filters time their internal stages under
   the same "stage." namespace. *)
module Obs = Rfid_obs.Metrics

let sp_step = Obs.span Obs.global "stage.step"
let sp_step_degraded = Obs.span Obs.global "stage.step_degraded"
let sp_report = Obs.span Obs.global "stage.report"
let c_epochs = Obs.counter Obs.global "engine.epochs"
let c_degraded_epochs = Obs.counter Obs.global "engine.degraded_epochs"
let c_events = Obs.counter Obs.global "engine.events"
let c_degraded_events = Obs.counter Obs.global "engine.degraded_events"
let c_dup_skipped = Obs.counter Obs.global "engine.duplicates_skipped"
let c_ooo_dropped = Obs.counter Obs.global "engine.out_of_order_dropped"

type stats = {
  duplicate_epochs_skipped : int;
  out_of_order_dropped : int;
  degraded_epochs : int;
  degraded_events : int;
}

type journal_entry =
  | Journal_step of Rfid_model.Types.observation
  | Journal_degraded of Rfid_model.Types.epoch * Rfid_model.Types.tag list

type t = {
  filter : filter;
  cfg : Config.t;
  (* Pending location reports: (due epoch, object); due epochs are
     pushed in nondecreasing order because the delay is constant. *)
  pending : (int * int) Queue.t;
  scheduled : (int, unit) Hashtbl.t;  (* objects with a pending report *)
  mutable dup_skipped : int;
  mutable ooo_dropped : int;
  mutable degraded_run : int;  (* consecutive degraded epochs, 0 after a normal step *)
  mutable degraded_event_count : int;
  mutable journal : (journal_entry -> unit) option;
}

let create ~world ~params ~config ~init_reader ?num_objects ?(seed = 0) () =
  let rng = Rfid_prob.Rng.create ~seed in
  let filter =
    match config.Config.variant with
    | Config.Unfactorized -> (
        match num_objects with
        | Some n ->
            Basic (Basic_filter.create ~world ~params ~config ~init_reader ~num_objects:n ~rng, n)
        | None -> invalid_arg "Engine.create: Unfactorized variant requires num_objects")
    | Config.Factorized | Config.Factorized_indexed | Config.Factorized_compressed ->
        Factored (Factored_filter.create ~world ~params ~config ~init_reader ~rng)
  in
  {
    filter;
    cfg = config;
    pending = Queue.create ();
    scheduled = Hashtbl.create 64;
    dup_skipped = 0;
    ooo_dropped = 0;
    degraded_run = 0;
    degraded_event_count = 0;
    journal = None;
  }

let set_journal t j = t.journal <- j

let filter_step t obs =
  match t.filter with
  | Basic (f, _) -> Basic_filter.step f obs
  | Factored f -> Factored_filter.step f obs

let estimate t obj =
  match t.filter with
  | Basic (f, _) -> Basic_filter.estimate f obj
  | Factored f -> Factored_filter.estimate f obj

let reader_estimate t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.reader_estimate f
  | Factored f -> Factored_filter.reader_estimate f

let newly_seen t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.newly_seen f
  | Factored f -> Factored_filter.newly_seen f

let known_objects t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.known_objects f
  | Factored f -> Factored_filter.known_objects f

let iter_known t f =
  match t.filter with
  | Basic (fl, _) -> Basic_filter.iter_known fl f
  | Factored fl -> Factored_filter.iter_known fl f

let num_known t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.num_known f
  | Factored f -> Factored_filter.num_known f

let changes_dirty_all t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.changes_dirty_all f
  | Factored f -> Factored_filter.changes_dirty_all f

let iter_dirty_changes t f =
  match t.filter with
  | Basic (fl, _) -> Basic_filter.iter_dirty fl f
  | Factored fl -> Factored_filter.iter_dirty fl f

let clear_changes t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.clear_changes f
  | Factored f -> Factored_filter.clear_changes f

let iter_estimates t f =
  (* Ascending-id order without a per-call sort: both filters maintain
     their known set in sorted form ([Factored_filter] an insertion-
     sorted array, [Basic_filter] a flag scan of the declared
     universe). *)
  iter_known t (fun id ->
      match estimate t id with Some (m, c) -> f id m c | None -> ())

let epoch t =
  match t.filter with
  | Basic (f, _) -> Basic_filter.epoch f
  | Factored f -> Factored_filter.epoch f

let objects_processed_last_step t =
  match t.filter with
  | Basic (_, n) -> n
  | Factored f -> Factored_filter.objects_processed_last_step f

let config t = t.cfg

let stats t =
  {
    duplicate_epochs_skipped = t.dup_skipped;
    out_of_order_dropped = t.ooo_dropped;
    degraded_epochs =
      (match t.filter with
      | Basic (f, _) -> Basic_filter.degraded_epochs f
      | Factored f -> Factored_filter.degraded_epochs f);
    degraded_events = t.degraded_event_count;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[duplicates skipped: %d, out-of-order dropped: %d, degraded epochs: %d, \
     degraded events: %d@]"
    s.duplicate_epochs_skipped s.out_of_order_dropped s.degraded_epochs
    s.degraded_events

let emit t ~at ~degraded obj =
  Hashtbl.remove t.scheduled obj;
  if degraded then begin
    t.degraded_event_count <- t.degraded_event_count + 1;
    Obs.incr c_degraded_events 1
  end;
  match estimate t obj with
  | Some (loc, cov) ->
      Obs.incr c_events 1;
      Some (Event.make ~epoch:at ~obj ~loc ~cov ~degraded ())
  | None -> None

let drain_due t ~at ~degraded =
  let events = ref [] in
  let rec drain () =
    match Queue.peek_opt t.pending with
    | Some (due, obj) when due <= at ->
        ignore (Queue.pop t.pending);
        (match emit t ~at ~degraded obj with
        | Some ev -> events := ev :: !events
        | None -> ());
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  List.rev !events

(* Epoch admission shared by [step] and [step_degraded]: [Ok] to
   proceed, [Skip] for counted duplicates / policy-dropped reorderings.
   A strictly decreasing epoch raises unless [config.drop_out_of_order]
   says to count and drop it. *)
type admission = Admit | Skip

let admit_epoch t e ~what =
  let cur = epoch t in
  if e > cur then Admit
  else if e = cur then begin
    t.dup_skipped <- t.dup_skipped + 1;
    Obs.incr c_dup_skipped 1;
    Skip
  end
  else if t.cfg.Config.drop_out_of_order then begin
    t.ooo_dropped <- t.ooo_dropped + 1;
    Obs.incr c_ooo_dropped 1;
    Skip
  end
  else
    invalid_arg
      (Printf.sprintf "Engine.%s: observation epoch %d precedes current epoch %d" what e
         cur)

let step t obs =
  let e = obs.Rfid_model.Types.o_epoch in
  match admit_epoch t e ~what:"step" with
  | Skip -> []
  | Admit ->
      (* Write-ahead: the journal sees the admitted entry before any
         state changes, so a crash after the append but before (or
         during) the update replays the epoch exactly once. *)
      (match t.journal with Some j -> j (Journal_step obs) | None -> ());
      let t0 = Obs.start sp_step in
      t.degraded_run <- 0;
      filter_step t obs;
      (* Schedule a report for each object that just entered scope, unless
         one is already pending from this encounter. *)
      let t_rep = Obs.start sp_report in
      List.iter
        (fun obj ->
          if not (Hashtbl.mem t.scheduled obj) then begin
            Hashtbl.replace t.scheduled obj ();
            Queue.push (e + t.cfg.Config.report_delay, obj) t.pending
          end)
        (newly_seen t);
      let events = drain_due t ~at:e ~degraded:false in
      Obs.stop sp_report t_rep;
      Obs.incr c_epochs 1;
      Obs.stop sp_step t0;
      events

let step_degraded ?(tags = []) t ~epoch:e =
  match admit_epoch t e ~what:"step_degraded" with
  | Skip -> []
  | Admit ->
      (match t.journal with Some j -> j (Journal_degraded (e, tags)) | None -> ());
      let t0 = Obs.start sp_step_degraded in
      (* Shelf tags read during the outage still localize the reader —
         their positions are known exactly. Object tags carry no usable
         evidence without a trusted fix and are ignored. *)
      let shelf_tags =
        List.filter_map
          (function Rfid_model.Types.Shelf_tag i -> Some i | Rfid_model.Types.Object_tag _ -> None)
          tags
        |> List.sort_uniq Int.compare
      in
      (match t.filter with
      | Basic (f, _) -> Basic_filter.dead_reckon f ~shelf_tags ~epoch:e
      | Factored f -> Factored_filter.dead_reckon f ~shelf_tags ~epoch:e);
      t.degraded_run <- t.degraded_run + 1;
      (* Reports falling due mid-outage still honor the delay policy;
         their events are flagged so consumers can discount them. *)
      let t_rep = Obs.start sp_report in
      let events = drain_due t ~at:e ~degraded:true in
      Obs.stop sp_report t_rep;
      Obs.incr c_epochs 1;
      Obs.incr c_degraded_epochs 1;
      Obs.stop sp_step_degraded t0;
      events

let flush t =
  let e = epoch t in
  let degraded = t.degraded_run > 0 in
  let events = ref [] in
  Queue.iter
    (fun (_, obj) ->
      if Hashtbl.mem t.scheduled obj then
        match emit t ~at:e ~degraded obj with
        | Some ev -> events := ev :: !events
        | None -> ())
    t.pending;
  Queue.clear t.pending;
  Hashtbl.reset t.scheduled;
  List.rev !events

let run t stream =
  let events = List.concat_map (fun obs -> step t obs) stream in
  events @ flush t

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

type filter_snapshot =
  | Basic_snapshot of Basic_filter.snapshot * int
  | Factored_snapshot of Factored_filter.snapshot

type snapshot = {
  es_filter : filter_snapshot;
  es_pending : (int * int) list;
  es_scheduled : int list;
  es_dup_skipped : int;
  es_ooo_dropped : int;
  es_degraded_run : int;
  es_degraded_event_count : int;
}

let snapshot t =
  {
    es_filter =
      (match t.filter with
      | Basic (f, n) -> Basic_snapshot (Basic_filter.snapshot f, n)
      | Factored f -> Factored_snapshot (Factored_filter.snapshot f));
    es_pending = List.of_seq (Queue.to_seq t.pending);
    es_scheduled =
      Hashtbl.fold (fun obj () acc -> obj :: acc) t.scheduled []
      |> List.sort Int.compare;
    es_dup_skipped = t.dup_skipped;
    es_ooo_dropped = t.ooo_dropped;
    es_degraded_run = t.degraded_run;
    es_degraded_event_count = t.degraded_event_count;
  }

let snapshot_epoch s =
  match s.es_filter with
  | Basic_snapshot (fs, _) -> Basic_filter.snapshot_epoch fs
  | Factored_snapshot fs -> Factored_filter.snapshot_epoch fs

let restore ~world ~params ~config s =
  let filter =
    match (s.es_filter, config.Config.variant) with
    | Basic_snapshot (fs, n), Config.Unfactorized ->
        Basic (Basic_filter.restore ~world ~params ~config fs, n)
    | Factored_snapshot fs, (Config.Factorized | Config.Factorized_indexed | Config.Factorized_compressed)
      ->
        Factored (Factored_filter.restore ~world ~params ~config fs)
    | Basic_snapshot _, _ | Factored_snapshot _, _ ->
        invalid_arg "Engine.restore: snapshot variant disagrees with config.variant"
  in
  let pending = Queue.create () in
  List.iter (fun item -> Queue.push item pending) s.es_pending;
  let scheduled = Hashtbl.create 64 in
  List.iter (fun obj -> Hashtbl.replace scheduled obj ()) s.es_scheduled;
  {
    filter;
    cfg = config;
    pending;
    scheduled;
    dup_skipped = s.es_dup_skipped;
    ooo_dropped = s.es_ooo_dropped;
    degraded_run = s.es_degraded_run;
    degraded_event_count = s.es_degraded_event_count;
    journal = None;
  }
