test/test_trace_io.ml: Alcotest Array Filename Fun List Params QCheck Rfid_core Rfid_geom Rfid_model Rfid_prob Rfid_sim Sys Trace Trace_io Types Util
