open Rfid_geom

type t = { a0 : float; a1 : float; a2 : float; b1 : float; b2 : float }

(* sigmoid(3 - 0.4 d - 0.25 d^2 - 1.2 th - 1.5 th^2):
   ~95% at contact, 50% near d = 2.7 ft head-on, and the half-power
   angle shrinks with distance — a cone-like region. *)
let default = { a0 = 3.0; a1 = -0.4; a2 = -0.25; b1 = -1.2; b2 = -1.5 }

let features ~d ~theta =
  let theta = Float.abs theta in
  [| 1.; d; d *. d; theta; theta *. theta |]

let of_coef = function
  | [| a0; a1; a2; b1; b2 |] -> { a0; a1; a2; b1; b2 }
  | _ -> invalid_arg "Sensor_model.of_coef: expected 5 coefficients"

let to_coef { a0; a1; a2; b1; b2 } = [| a0; a1; a2; b1; b2 |]

let logit t ~d ~theta =
  let theta = Float.abs theta in
  t.a0 +. (t.a1 *. d) +. (t.a2 *. d *. d) +. (t.b1 *. theta) +. (t.b2 *. theta *. theta)

let read_prob_at t ~d ~theta = Rfid_prob.Logistic.sigmoid (logit t ~d ~theta)

(* Wrap an angle into (-pi, pi]. *)
let wrap a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let geometry ~reader_loc ~reader_heading ~tag_loc =
  let delta = Vec3.sub tag_loc reader_loc in
  let d = Vec3.norm delta in
  let theta =
    if delta.Vec3.x = 0. && delta.Vec3.y = 0. then 0.
    else Float.abs (wrap (Vec3.xy_angle delta -. reader_heading))
  in
  (d, theta)

let read_prob t ~reader_loc ~reader_heading ~tag_loc =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  read_prob_at t ~d ~theta

let log_prob t ~reader_loc ~reader_heading ~tag_loc ~read =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  let z = logit t ~d ~theta in
  if read then Rfid_prob.Logistic.log_sigmoid z else Rfid_prob.Logistic.log_sigmoid (-.z)

(* Per-epoch memo of reader-particle poses for the filter hot paths:
   the pose-dependent inputs of the logit live in flat unboxed slabs
   (one slot per reader particle), so the per-object-particle weight
   evaluation reads four floats by index instead of chasing a boxed
   [Vec3.t] through a particle record, and builds no intermediate
   vector. [log_prob_pre] replicates [geometry] + [logit] + the
   log-sigmoid branch operation for operation, so its result is
   bit-identical to [log_prob] on the memoized pose. *)

type pre = {
  pm : t;
  mutable pn : int;
  mutable prx : floatarray;
  mutable pry : floatarray;
  mutable prz : floatarray;
  mutable phead : floatarray;
  mutable hits : int;
}

let precompute t ~n =
  if n < 0 then invalid_arg "Sensor_model.precompute: negative size";
  let cap = Int.max n 1 in
  {
    pm = t;
    pn = n;
    prx = Float.Array.make cap 0.;
    pry = Float.Array.make cap 0.;
    prz = Float.Array.make cap 0.;
    phead = Float.Array.make cap 0.;
    hits = 0;
  }

let pre_size p = p.pn

let pre_resize p n =
  if n < 0 then invalid_arg "Sensor_model.pre_resize: negative size";
  if n > Float.Array.length p.prx then begin
    let cap = Int.max n (2 * Float.Array.length p.prx) in
    p.prx <- Float.Array.make cap 0.;
    p.pry <- Float.Array.make cap 0.;
    p.prz <- Float.Array.make cap 0.;
    p.phead <- Float.Array.make cap 0.
  end;
  p.pn <- n

let pre_set_pose p i ~x ~y ~z ~heading =
  if i < 0 || i >= p.pn then invalid_arg "Sensor_model.pre_set_pose: index out of range";
  Float.Array.unsafe_set p.prx i x;
  Float.Array.unsafe_set p.pry i y;
  Float.Array.unsafe_set p.prz i z;
  Float.Array.unsafe_set p.phead i heading

let log_prob_pre p i ~tx ~ty ~tz ~read =
  if i < 0 || i >= p.pn then invalid_arg "Sensor_model.log_prob_pre: index out of range";
  let dx = tx -. Float.Array.unsafe_get p.prx i in
  let dy = ty -. Float.Array.unsafe_get p.pry i in
  let dz = tz -. Float.Array.unsafe_get p.prz i in
  (* [Vec3.norm (sub tag reader)] and [geometry]'s angle, verbatim. *)
  let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
  let theta =
    if dx = 0. && dy = 0. then 0.
    else Float.abs (wrap (atan2 dy dx -. Float.Array.unsafe_get p.phead i))
  in
  let m = p.pm in
  let z =
    m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta) +. (m.b2 *. theta *. theta)
  in
  if read then Rfid_prob.Logistic.log_sigmoid z else Rfid_prob.Logistic.log_sigmoid (-.z)

(* Batched memo accumulation. One cross-module call per (object, epoch)
   or (tag, epoch) that loops over a whole particle store / pose set
   internally, instead of one [log_prob_pre] call per particle: without
   flambda every float crossing a module boundary is boxed, so the
   call-per-particle shape allocates ~30 words per sensor term while
   these loops allocate nothing. The body is [log_prob_pre] verbatim
   (same ops, same order, [Logistic.log_sigmoid]'s formula inlined
   textually), so results are bit-identical. *)

(* The sensor term below appears three times, textually identical:
   without flambda, `[@inline]` is ignored and even a same-module call
   to a shared helper boxes its float arguments and result (~7 words
   per particle), so the body is hand-inlined into each loop. Any edit
   to one copy must be applied to all three. *)

let pre_accumulate_store p store ~read =
  let n = Rfid_prob.Particle_store.length store in
  let xs, ys, zs, lw, ridx = Rfid_prob.Particle_store.backing store in
  for i = 0 to n - 1 do
    let r = Array.unsafe_get ridx i in
    if r < 0 || r >= p.pn then
      invalid_arg "Sensor_model.pre_accumulate_store: reader index out of range";
    let dx = Float.Array.unsafe_get xs i -. Float.Array.unsafe_get p.prx r in
    let dy = Float.Array.unsafe_get ys i -. Float.Array.unsafe_get p.pry r in
    let dz = Float.Array.unsafe_get zs i -. Float.Array.unsafe_get p.prz r in
    let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
    let theta =
      if dx = 0. && dy = 0. then 0.
      else begin
        (* [wrap], inlined: a same-module call still boxes its float
           argument and result without flambda. *)
        let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
        let two_pi = 2. *. Float.pi in
        let a = Float.rem a two_pi in
        let a =
          if a > Float.pi then a -. two_pi
          else if a <= -.Float.pi then a +. two_pi
          else a
        in
        Float.abs a
      end
    in
    let m = p.pm in
    let z =
      m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta) +. (m.b2 *. theta *. theta)
    in
    let z = if read then z else -.z in
    (* Rfid_prob.Logistic.log_sigmoid, inlined to keep the float unboxed. *)
    let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
    Float.Array.unsafe_set lw i (Float.Array.unsafe_get lw i +. l)
  done

let pre_accumulate_tag p ~tx ~ty ~tz ~read ~miss_weight acc =
  if Array.length acc < p.pn then
    invalid_arg "Sensor_model.pre_accumulate_tag: accumulator shorter than pose set";
  for r = 0 to p.pn - 1 do
    let dx = tx -. Float.Array.unsafe_get p.prx r in
    let dy = ty -. Float.Array.unsafe_get p.pry r in
    let dz = tz -. Float.Array.unsafe_get p.prz r in
    let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
    let theta =
      if dx = 0. && dy = 0. then 0.
      else begin
        (* [wrap], inlined: a same-module call still boxes its float
           argument and result without flambda. *)
        let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
        let two_pi = 2. *. Float.pi in
        let a = Float.rem a two_pi in
        let a =
          if a > Float.pi then a -. two_pi
          else if a <= -.Float.pi then a +. two_pi
          else a
        in
        Float.abs a
      end
    in
    let m = p.pm in
    let z =
      m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta) +. (m.b2 *. theta *. theta)
    in
    let z = if read then z else -.z in
    let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
    let l = if read then l else miss_weight *. l in
    Array.unsafe_set acc r (Array.unsafe_get acc r +. l)
  done

let pre_accumulate_joint_obj p store ~obj ~num_objects ~read acc =
  if Array.length acc < p.pn then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: accumulator shorter than pose set";
  if obj < 0 || obj >= num_objects then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: object out of range";
  if p.pn * num_objects > Rfid_prob.Particle_store.length store then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: store shorter than pose set";
  let xs, ys, zs, _, _ = Rfid_prob.Particle_store.backing store in
  for r = 0 to p.pn - 1 do
    let s = (r * num_objects) + obj in
    let dx = Float.Array.unsafe_get xs s -. Float.Array.unsafe_get p.prx r in
    let dy = Float.Array.unsafe_get ys s -. Float.Array.unsafe_get p.pry r in
    let dz = Float.Array.unsafe_get zs s -. Float.Array.unsafe_get p.prz r in
    let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
    let theta =
      if dx = 0. && dy = 0. then 0.
      else begin
        (* [wrap], inlined: a same-module call still boxes its float
           argument and result without flambda. *)
        let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
        let two_pi = 2. *. Float.pi in
        let a = Float.rem a two_pi in
        let a =
          if a > Float.pi then a -. two_pi
          else if a <= -.Float.pi then a +. two_pi
          else a
        in
        Float.abs a
      end
    in
    let m = p.pm in
    let z =
      m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta) +. (m.b2 *. theta *. theta)
    in
    let z = if read then z else -.z in
    let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
    Array.unsafe_set acc r (Array.unsafe_get acc r +. l)
  done

let pre_poses p = (p.prx, p.pry, p.prz, p.phead)

let pre_note_hits p k = p.hits <- p.hits + k
let pre_hits p = p.hits

let max_search_range = 100.

let detection_range ?(threshold = 0.02) t =
  if read_prob_at t ~d:0. ~theta:0. < threshold then 0.
  else begin
    (* First head-on crossing below the threshold. A fitted model can
       have a non-monotone logit (e.g. a slightly positive quadratic
       term from noisy calibration data); scanning outward from 0 keeps
       the range physical — the region past a rebound is an artifact of
       extrapolating the polynomial, not a real detection zone. *)
    let step = 0.25 in
    let rec find_bracket d =
      if d >= max_search_range then max_search_range
      else if read_prob_at t ~d:(d +. step) ~theta:0. < threshold then d +. step
      else find_bracket (d +. step)
    in
    let hi = find_bracket 0. in
    if hi >= max_search_range then max_search_range
    else begin
      let lo = Float.max 0. (hi -. step) in
      let rec bisect lo hi k =
        if k = 0 then hi
        else begin
          let mid = (lo +. hi) /. 2. in
          if read_prob_at t ~d:mid ~theta:0. < threshold then bisect lo mid (k - 1)
          else bisect mid hi (k - 1)
        end
      in
      bisect lo hi 40
    end
  end

let detection_half_angle ?(threshold = 0.02) t ~d =
  if read_prob_at t ~d ~theta:Float.pi >= threshold then Float.pi
  else if read_prob_at t ~d ~theta:0. < threshold then 0.
  else begin
    let rec bisect lo hi k =
      if k = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2. in
        if read_prob_at t ~d ~theta:mid < threshold then bisect lo mid (k - 1)
        else bisect mid hi (k - 1)
      end
    in
    bisect 0. Float.pi 40
  end

let sensing_region_box ?threshold t ~reader_loc =
  let r = detection_range ?threshold t in
  Box2.of_center reader_loc ~half_width:r ~half_height:r

let initialization_cone ?(overestimate = 1.25) t ~reader_loc ~reader_heading =
  let range = Float.max 0.5 (overestimate *. detection_range t) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. detection_half_angle t ~d:(range /. 2.)))
  in
  Cone.make ~apex:reader_loc ~heading:reader_heading ~half_angle ~range

let pp ppf t =
  Format.fprintf ppf "sigmoid(%.3f %+.3f d %+.3f d^2 %+.3f th %+.3f th^2)" t.a0 t.a1
    t.a2 t.b1 t.b2
