open Rfid_geom

type config = {
  co_distance : float;
  move_threshold : float;
  move_weight : float;
  min_support : float;
}

let default_config =
  { co_distance = 1.0; move_threshold = 2.0; move_weight = 3.0; min_support = 4.0 }

type t = {
  cfg : config;
  n : int;
  support : (int * int, float) Hashtbl.t;
  mutable last_round : (int, Vec3.t) Hashtbl.t option;
}

let create ?(config = default_config) ~num_objects () =
  if num_objects < 0 then invalid_arg "Containment.create: negative num_objects";
  if
    config.co_distance <= 0. || config.move_threshold <= 0. || config.move_weight <= 0.
    || config.min_support <= 0.
  then invalid_arg "Containment.create: non-positive config";
  { cfg = config; n = num_objects; support = Hashtbl.create 64; last_round = None }

let key a b = if a < b then (a, b) else (b, a)

let add_support t a b w =
  let k = key a b in
  Hashtbl.replace t.support k (w +. Option.value ~default:0. (Hashtbl.find_opt t.support k))

let observe_round t snapshot =
  List.iter
    (fun (id, _) ->
      if id < 0 || id >= t.n then invalid_arg "Containment.observe_round: id out of range")
    snapshot;
  let current = Hashtbl.create (List.length snapshot) in
  List.iter (fun (id, loc) -> Hashtbl.replace current id loc) snapshot;
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) current [] in
  let ids = List.sort Int.compare ids in
  (* Pairwise co-location within this round. *)
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            let la = Hashtbl.find current a and lb = Hashtbl.find current b in
            if Vec3.dist_xy la lb <= t.cfg.co_distance then add_support t a b 1.)
          rest;
        pairs rest
  in
  pairs ids;
  (* Joint movement relative to the previous round. *)
  (match t.last_round with
  | None -> ()
  | Some prev ->
      let moved =
        List.filter_map
          (fun id ->
            match Hashtbl.find_opt prev id with
            | Some old ->
                let delta = Vec3.sub (Hashtbl.find current id) old in
                if Vec3.dist_xy (Hashtbl.find current id) old >= t.cfg.move_threshold
                then Some (id, delta)
                else None
            | None -> None)
          ids
      in
      let rec move_pairs = function
        | [] -> ()
        | (a, da) :: rest ->
            List.iter
              (fun (b, db) ->
                if Vec3.dist_xy (Vec3.sub da db) Vec3.zero <= t.cfg.co_distance then
                  add_support t a b t.cfg.move_weight)
              rest;
            move_pairs rest
      in
      move_pairs moved);
  t.last_round <- Some current

let of_events t ~rounds =
  List.iter
    (fun events ->
      let latest = Hashtbl.create 32 in
      List.iter
        (fun (ev : Rfid_core.Event.t) ->
          Hashtbl.replace latest ev.Rfid_core.Event.ev_obj ev.Rfid_core.Event.ev_loc)
        events;
      observe_round t (Hashtbl.fold (fun id loc acc -> (id, loc) :: acc) latest []))
    rounds

let support t a b =
  Option.value ~default:0. (Hashtbl.find_opt t.support (key a b))

let groups t =
  let uf = Union_find.create t.n in
  Hashtbl.iter
    (fun (a, b) w -> if w >= t.cfg.min_support then Union_find.union uf a b)
    t.support;
  Union_find.groups uf

let pp_groups ppf gs =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf g ->
         Format.fprintf ppf "{%s}" (String.concat ", " (List.map string_of_int g))))
    gs
