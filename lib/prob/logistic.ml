let sigmoid x =
  if x >= 0. then 1. /. (1. +. exp (-.x))
  else begin
    let e = exp x in
    e /. (1. +. e)
  end

let log_sigmoid x = if x >= 0. then -.log1p (exp (-.x)) else x -. log1p (exp x)

(* IEEE-754 double [exp] underflows to exactly +0.0 once its argument
   drops below about -745.1332 (ln of half the smallest subnormal,
   -1075 ln 2); [-.log1p 0.] is then exactly -0.0, and adding -0.0 to
   any accumulator is a bitwise no-op. -746 keeps ~0.87 of logit margin
   below the true cutoff, dwarfing the few-ulp rounding of any sanely
   scaled logit evaluation, so "z <= exp_underflow implies
   log_sigmoid (-.z) = -0.0 exactly" holds with room to spare. *)
let exp_underflow = -746.

type model = { coef : float array }

let predict m features = sigmoid (Linalg.dot m.coef features)

let log_likelihood m ~x ~y ?w () =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Logistic.log_likelihood: shape mismatch";
  let w = match w with Some w -> w | None -> Array.make n 1. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let z = Linalg.dot m.coef x.(i) in
    let ll = if y.(i) then log_sigmoid z else log_sigmoid (-.z) in
    acc := !acc +. (w.(i) *. ll)
  done;
  !acc

let fit ?(l2 = 1e-4) ?(max_iter = 400) ?(tol = 1e-8) ?init ?(nonpositive = []) ~x ~y ?w
    ~dim () =
  List.iter
    (fun j ->
      if j < 0 || j >= dim then invalid_arg "Logistic.fit: constraint index out of range")
    nonpositive;
  let n = Array.length x in
  if n = 0 then invalid_arg "Logistic.fit: empty data";
  if Array.length y <> n then invalid_arg "Logistic.fit: label length mismatch";
  Array.iter
    (fun row -> if Array.length row <> dim then invalid_arg "Logistic.fit: feature dim mismatch")
    x;
  let w = match w with Some w -> w | None -> Array.make n 1. in
  if Array.length w <> n then invalid_arg "Logistic.fit: weight length mismatch";
  let coef =
    match init with
    | Some c ->
        if Array.length c <> dim then invalid_arg "Logistic.fit: init dim mismatch";
        Array.copy c
    | None -> Array.make dim 0.
  in
  List.iter (fun j -> if coef.(j) > 0. then coef.(j) <- 0.) nonpositive;
  let gradient () =
    let g = Array.make dim 0. in
    for i = 0 to n - 1 do
      let p = sigmoid (Linalg.dot coef x.(i)) in
      let err = ((if y.(i) then 1. else 0.) -. p) *. w.(i) in
      for j = 0 to dim - 1 do
        g.(j) <- g.(j) +. (err *. x.(i).(j))
      done
    done;
    for j = 0 to dim - 1 do
      g.(j) <- g.(j) -. (l2 *. coef.(j))
    done;
    g
  in
  let neg_hessian () =
    (* H = -(X^T S X + l2 I) with S = diag(w p (1-p)); we build X^T S X
       + l2 I, which is SPD, and take a Newton step by solving it. *)
    let h = Array.make_matrix dim dim 0. in
    for i = 0 to n - 1 do
      let p = sigmoid (Linalg.dot coef x.(i)) in
      let s = w.(i) *. p *. (1. -. p) in
      if s > 0. then
        for j = 0 to dim - 1 do
          for k = 0 to dim - 1 do
            h.(j).(k) <- h.(j).(k) +. (s *. x.(i).(j) *. x.(i).(k))
          done
        done
    done;
    for j = 0 to dim - 1 do
      h.(j).(j) <- h.(j).(j) +. l2
    done;
    h
  in
  let rec iterate iter =
    if iter >= max_iter then ()
    else begin
      let g = gradient () in
      (* Active set: a constrained coordinate sitting on its bound with
         the gradient pushing outward stays fixed this iteration; the
         Newton system is solved over the free coordinates only, so the
         projection cannot fight the step direction. *)
      let free =
        List.filter
          (fun j -> not (List.mem j nonpositive && coef.(j) >= 0. && g.(j) > 0.))
          (List.init dim Fun.id)
      in
      let nf = List.length free in
      let step = Array.make dim 0. in
      if nf > 0 then begin
        let free = Array.of_list free in
        let h = neg_hessian () in
        let sub_h = Array.init nf (fun a -> Array.init nf (fun b -> h.(free.(a)).(free.(b)))) in
        let sub_g = Array.init nf (fun a -> g.(free.(a))) in
        let sub_step =
          match Linalg.solve_spd sub_h sub_g with
          | delta -> delta
          | exception Invalid_argument _ ->
              (* Singular Hessian: damped gradient ascent fallback. *)
              Array.map (fun gi -> 0.01 *. gi) sub_g
        in
        Array.iteri (fun a j -> step.(j) <- sub_step.(a)) free
      end;
      (* Trust region: on (near-)separable data the Newton step blows up
         because the Hessian degenerates while the gradient does not;
         cap the per-iteration move so coefficients stay finite. *)
      let norm = sqrt (Array.fold_left (fun a s -> a +. (s *. s)) 0. step) in
      let scale = if norm > 10. then 10. /. norm else 1. in
      let max_change = ref 0. in
      for j = 0 to dim - 1 do
        let before = coef.(j) in
        coef.(j) <- coef.(j) +. (scale *. step.(j));
        if List.mem j nonpositive && coef.(j) > 0. then coef.(j) <- 0.;
        max_change := Float.max !max_change (Float.abs (coef.(j) -. before))
      done;
      if !max_change > tol then iterate (iter + 1)
    end
  in
  iterate 0;
  { coef }
