(** Misplaced-inventory detection — the paper's opening motivation
    ("tracking and monitoring tasks such as identifying misplaced
    inventory in retail stores", §I) expressed as a query over the
    cleaned event stream.

    The store's planogram assigns each object a home region (a shelf
    box). An object is flagged as misplaced when its reported location
    falls outside its home region by more than a tolerance, with a
    debounce: the flag fires only after [confirmations] consecutive
    out-of-place reports, so a single noisy estimate does not page
    anyone. A later in-place report clears the state (and a
    back-in-place notice is emitted). *)

type config = {
  tolerance : float;  (** slack (ft) beyond the home region's edge *)
  confirmations : int;  (** consecutive out-of-place reports required *)
}

val default_config : config
(** tolerance 0.5 ft, 2 confirmations. *)

type alert = {
  a_epoch : Rfid_model.Types.epoch;
  a_obj : int;
  a_loc : Rfid_geom.Vec3.t;  (** where the object was seen *)
  a_home : Rfid_geom.Box2.t;  (** where it belongs *)
  a_distance : float;  (** XY distance from the home region's edge, ft *)
  a_kind : [ `Misplaced | `Back_in_place ];
}

type t

val create :
  ?config:config -> home:(int -> Rfid_geom.Box2.t option) -> unit -> t
(** [home obj] is the planogram lookup; objects with no assigned home
    are never flagged. @raise Invalid_argument on a non-positive
    tolerance or confirmation count. *)

val push : t -> Rfid_core.Event.t -> alert option
val run : t -> Rfid_core.Event.t list -> alert list

val currently_misplaced : t -> int list
(** Objects in the misplaced state, ascending. *)

val pp_alert : Format.formatter -> alert -> unit
