lib/eval/metrics.ml: Float Format Hashtbl Int List Rfid_core Rfid_geom Rfid_model Vec3
