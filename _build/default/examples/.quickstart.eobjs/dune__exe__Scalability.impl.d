examples/scalability.ml: List Printf Rfid_core Rfid_eval Rfid_learn Rfid_model Rfid_prob Rfid_sim
