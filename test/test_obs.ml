(* Observability layer: histogram bucket geometry, shard merging,
   quantiles, span timing/nesting, JSON dumps, the chrome-trace sink,
   and an end-to-end check that engine snapshots carry monotone
   counters — the same mechanism `rfid_clean infer --metrics` exposes. *)
module M = Rfid_obs.Metrics
module Trace_sink = Rfid_obs.Trace

(* ------------------------------------------------------------------ *)
(* A minimal recursive-descent JSON validator (no JSON library in the
   dependency set): validates syntax and returns top-level object keys
   plus any ["name": number] pairs found anywhere in the document. *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let numbers = ref [] in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "bad escape";
            Buffer.add_char b s.[!pos + 1];
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> ignore (parse_object ())
    | Some '[' -> parse_array ()
    | Some '"' -> ignore (parse_string ())
    | Some ('t' | 'f' | 'n') -> parse_keyword ()
    | Some _ -> ignore (parse_number ())
    | None -> fail "unexpected end of input"
  and parse_keyword () =
    let kw = [ "true"; "false"; "null" ] in
    match
      List.find_opt
        (fun k ->
          !pos + String.length k <= n && String.sub s !pos (String.length k) = k)
        kw
    with
    | Some k -> pos := !pos + String.length k
    | None -> fail "expected keyword"
  and parse_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec items () =
        parse_value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items ()
        | Some ']' -> incr pos
        | _ -> fail "expected , or ]"
      in
      items ()
    end
  and parse_object () =
    expect '{';
    skip_ws ();
    let keys = ref [] in
    (if peek () = Some '}' then incr pos
     else
       let rec members () =
         skip_ws ();
         let key = parse_string () in
         keys := key :: !keys;
         skip_ws ();
         expect ':';
         skip_ws ();
         (match peek () with
         | Some ('{' | '[' | '"' | 't' | 'f' | 'n') -> parse_value ()
         | Some _ ->
             let v = parse_number () in
             numbers := (key, v) :: !numbers
         | None -> fail "unexpected end of input");
         skip_ws ();
         match peek () with
         | Some ',' ->
             incr pos;
             members ()
         | Some '}' -> incr pos
         | _ -> fail "expected , or }"
       in
       members ());
    List.rev !keys
  in
  skip_ws ();
  let top = match peek () with
    | Some '{' -> parse_object ()
    | _ -> fail "expected top-level object"
  in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  (top, List.rev !numbers)

let number_of ~key numbers =
  match List.assoc_opt key numbers with
  | Some v -> v
  | None -> Alcotest.failf "key %S not found among parsed numbers" key

(* ------------------------------------------------------------------ *)
(* Bucket geometry *)

let test_buckets () =
  Alcotest.(check int) "tiny values in bucket 0" 0 (M.bucket_of_value 1e-12);
  Alcotest.(check int) "nan in bucket 0" 0 (M.bucket_of_value Float.nan);
  Alcotest.(check int) "neg in bucket 0" 0 (M.bucket_of_value (-1.0));
  Alcotest.(check int) "huge clamps to top" (M.num_buckets - 1)
    (M.bucket_of_value 1e300);
  (* Monotone, and every value is at or below its bucket's upper bound. *)
  let prev = ref (-1) in
  for i = 0 to 200 do
    let v = 1e-9 *. Float.exp2 (float_of_int i /. 10.) in
    let b = M.bucket_of_value v in
    if b < !prev then Alcotest.failf "bucket_of_value not monotone at %g" v;
    prev := b;
    if v > M.bucket_upper b +. 1e-15 then
      Alcotest.failf "value %g above bucket %d upper %g" v b (M.bucket_upper b)
  done

(* ------------------------------------------------------------------ *)
(* Counters, gauges, histogram merge across shards *)

let test_shard_merge () =
  let r = M.create ~shards:4 () in
  let c = M.counter r "c" in
  M.incr c 2;
  M.incr_shard c ~shard:1 3;
  M.incr_shard c ~shard:3 5;
  (* Shard ids wrap modulo the shard count, so 5 lands on shard 1. *)
  M.incr_shard c ~shard:5 7;
  Alcotest.(check int) "counter merged" 17 (M.counter_value c);
  let g = M.gauge r "g" in
  M.set g 1.5;
  M.set g 2.5;
  Alcotest.(check (float 0.)) "gauge last write wins" 2.5 (M.gauge_value g);
  let h = M.histogram r "h" in
  let values = [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ] in
  List.iteri (fun i v -> M.observe_shard h ~shard:(i mod 4) v) values;
  Alcotest.(check int) "hist merged count" (List.length values) (M.histogram_count h);
  Alcotest.(check (float 1e-9)) "hist merged sum" 127.5 (M.histogram_sum h);
  Alcotest.(check (float 0.)) "hist min" 0.5 (M.histogram_min h);
  Alcotest.(check (float 0.)) "hist max" 64.0 (M.histogram_max h);
  (* The merged view is independent of which shard recorded what: a
     second registry with every value on shard 0 answers identically. *)
  let r' = M.create ~shards:4 () in
  let h' = M.histogram r' "h" in
  List.iter (fun v -> M.observe h' v) values;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%g shard-independent" q)
        (M.quantile h' q) (M.quantile h q))
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ]

let test_quantiles () =
  let r = M.create () in
  let h = M.histogram r "q" in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (M.quantile h 0.5));
  M.observe h 3.0;
  (* One observation: every quantile clamps into [min, max] = [3, 3]. *)
  Alcotest.(check (float 0.)) "single value p50" 3.0 (M.quantile h 0.5);
  Alcotest.(check (float 0.)) "single value p99" 3.0 (M.quantile h 0.99);
  let h2 = M.histogram r "q2" in
  for i = 1 to 1000 do
    M.observe h2 (float_of_int i)
  done;
  (* Log-scaled buckets guarantee <= ~9% relative error. *)
  List.iter
    (fun (q, expected) ->
      let got = M.quantile h2 q in
      let rel = Float.abs (got -. expected) /. expected in
      if rel > 0.09 then
        Alcotest.failf "quantile %g: got %g, expected %g (rel err %g)" q got expected
          rel)
    [ (0.5, 500.); (0.95, 950.); (0.99, 990.) ];
  (* Reset zeroes values but keeps handles usable. *)
  M.reset r;
  Alcotest.(check int) "reset empties histogram" 0 (M.histogram_count h2);
  M.observe h2 1.0;
  Alcotest.(check int) "handle alive after reset" 1 (M.histogram_count h2)

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_spans () =
  let r = M.create () in
  let outer = M.span r "span.outer" in
  let inner = M.span r "span.inner" in
  let spin_until t_end = while Unix.gettimeofday () < t_end do () done in
  for _ = 1 to 3 do
    let t0 = M.start outer in
    let t1 = M.start inner in
    spin_until (t1 +. 0.002);
    M.stop inner t1;
    M.stop outer t0
  done;
  let ho = M.histogram r "span.outer" and hi = M.histogram r "span.inner" in
  Alcotest.(check int) "outer count" 3 (M.histogram_count ho);
  Alcotest.(check int) "inner count" 3 (M.histogram_count hi);
  (* Nesting: each outer interval contains its inner one. *)
  if M.histogram_min ho +. 1e-9 < M.histogram_min hi then
    Alcotest.fail "outer span shorter than nested inner span";
  if M.histogram_min hi < 0.002 -. 1e-4 then
    Alcotest.failf "inner span too short: %g" (M.histogram_min hi);
  (* with_ records on exception too. *)
  (try M.with_ outer (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "with_ recorded despite raise" 4 (M.histogram_count ho)

let test_registration_conflicts () =
  let r = M.create () in
  let c = M.counter r "same-name" in
  let c' = M.counter r "same-name" in
  M.incr c 1;
  M.incr c' 1;
  Alcotest.(check int) "same name, same counter" 2 (M.counter_value c);
  Alcotest.check_raises "kind conflict rejected"
    (Invalid_argument "Metrics: \"same-name\" is already registered with a different kind")
    (fun () -> ignore (M.histogram r "same-name"))

(* ------------------------------------------------------------------ *)
(* JSON dump *)

let test_dump_json () =
  let r = M.create ~shards:2 () in
  M.incr (M.counter r "engine.epochs") 42;
  M.set (M.gauge r "health.reader_ess") 12.5;
  let h = M.histogram r "stage.step" in
  M.observe h 0.001;
  M.observe_shard h ~shard:1 0.002;
  (* An empty histogram prints only its count; named to sort after
     "stage.step" so the assoc lookups below hit the populated one. *)
  let empty = M.histogram r "stage.unused" in
  ignore empty;
  let s = M.dump_json ~extra:[ ("epoch", "7") ] r in
  let keys, numbers = validate_json s in
  Alcotest.(check (list string)) "top-level keys"
    [ "schema"; "epoch"; "counters"; "gauges"; "histograms" ]
    keys;
  Alcotest.(check (float 0.)) "extra epoch" 7. (number_of ~key:"epoch" numbers);
  Alcotest.(check (float 0.)) "counter value" 42.
    (number_of ~key:"engine.epochs" numbers);
  Alcotest.(check (float 0.)) "gauge value" 12.5
    (number_of ~key:"health.reader_ess" numbers);
  Alcotest.(check (float 0.)) "hist count" 2. (number_of ~key:"count" numbers);
  Alcotest.(check (float 1e-12)) "hist sum" 0.003 (number_of ~key:"sum" numbers)

(* ------------------------------------------------------------------ *)
(* Chrome-trace sink *)

let test_trace_sink () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Trace_sink.set_path (Some path);
  Fun.protect
    ~finally:(fun () ->
      Trace_sink.set_path None;
      Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "enabled" true (Trace_sink.enabled ());
      let r = M.create () in
      let sp = M.span r "stage.test" in
      let before = Trace_sink.events () in
      let t0 = M.start sp in
      M.stop sp t0;
      Alcotest.(check int) "one event recorded" (before + 1) (Trace_sink.events ());
      Trace_sink.emit ~name:"with \"quotes\"" ~ts_us:1.0 ~dur_us:2.0;
      Trace_sink.write_now ();
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let keys, _ = validate_json s in
      Alcotest.(check (list string)) "trace document key" [ "traceEvents" ] keys)

(* ------------------------------------------------------------------ *)
(* End-to-end: engine runs feed the global registry; snapshots are
   valid JSON whose counters increase monotonically across epochs —
   the contract `rfid_clean infer --metrics` exposes. *)

let test_engine_snapshots_monotone () =
  M.reset M.global;
  let wh = Rfid_sim.Warehouse.layout ~num_objects:6 () in
  let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:0.9 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed:3)
  in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:30 ~num_object_particles:40 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:Rfid_model.Params.default ~config
      ~init_reader:trace.Rfid_model.Trace.steps.(0).Rfid_model.Trace.true_reader
      ~num_objects:6 ~seed:5 ()
  in
  let snapshots = ref [] in
  List.iteri
    (fun i obs ->
      ignore (Rfid_core.Engine.step engine obs);
      if i mod 10 = 0 then snapshots := M.dump_json M.global :: !snapshots)
    (Rfid_model.Trace.observations trace);
  snapshots := M.dump_json M.global :: !snapshots;
  let snapshots = List.rev !snapshots in
  Alcotest.(check bool) "several snapshots" true (List.length snapshots >= 3);
  let last = ref (-1.) in
  List.iter
    (fun s ->
      let _, numbers = validate_json s in
      let epochs = number_of ~key:"engine.epochs" numbers in
      if epochs < !last then
        Alcotest.failf "engine.epochs not monotone: %g after %g" epochs !last;
      last := epochs;
      (* Health gauges present once the filter has run. *)
      ignore (number_of ~key:"health.reader_ess" numbers);
      ignore (number_of ~key:"health.scope_objects" numbers))
    snapshots;
  if !last <= 0. then Alcotest.fail "engine.epochs never advanced"

let suite =
  ( "obs",
    [
      Alcotest.test_case "bucket geometry" `Quick test_buckets;
      Alcotest.test_case "shard merge" `Quick test_shard_merge;
      Alcotest.test_case "quantiles" `Quick test_quantiles;
      Alcotest.test_case "span nesting" `Quick test_spans;
      Alcotest.test_case "registration conflicts" `Quick test_registration_conflicts;
      Alcotest.test_case "dump_json validity" `Quick test_dump_json;
      Alcotest.test_case "trace sink" `Quick test_trace_sink;
      Alcotest.test_case "engine snapshots monotone" `Quick
        test_engine_snapshots_monotone;
    ] )
