examples/scalability.mli:
