lib/model/trace.ml: Array Reader_state Rfid_geom Types World
