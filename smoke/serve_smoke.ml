(* Serve-smoke gate over the real `rfid_clean serve` binary.

   Three phases, each against a freshly spawned server on an ephemeral
   loopback port (`--port 0`, announced on stdout):

   1. consistency — feed ~100 epochs over the socket, then require
      every query reply (greeting, AT for all objects, RANGE, STATS,
      EVENTS after DRAIN) byte-identical to an in-process replay of
      the same PUT lines through the same {!Rfid_serve.Bootstrap}
      fixture;
   2. backpressure — with `--admit-cap 2` and the tick PAUSEd, the
      third PUT must answer exactly `BUSY 2/2`, never drop silently;
   3. durability — run with WAL + checkpoints + durable events, SIGKILL
      the server at a known-durable point, restart `--recover`, feed
      the rest, and require the final events log byte-identical to an
      uninterrupted golden run's (no duplicated, no lost events).

   Exits 1 on the first failed phase, leaving that phase's directory in
   place for inspection. *)

let num_objects = 8
let seed = 42
let particles = 60
let checkpoint_every = 5

let cli_path () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir "../bin/rfid_clean.exe" in
  if Sys.file_exists candidate then candidate
  else (
    Printf.eprintf "serve_smoke: cannot find rfid_clean.exe near %s\n"
      Sys.executable_name;
    exit 2)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---------------- server process management ---------------- *)

let spawn ~cli ~dir ~name args =
  let open_log suffix =
    Unix.openfile
      (Filename.concat dir (name ^ suffix))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let out = open_log ".out" in
  let err = open_log ".err" in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out err
  in
  Unix.close out;
  Unix.close err;
  pid

(* Poll the server's stdout for the `# rfid-serve listening on H:P`
   announcement; fail fast if the process dies first. *)
let wait_port ~dir ~name ~pid =
  let path = Filename.concat dir (name ^ ".out") in
  let marker = "# rfid-serve listening on " in
  let deadline = Unix.gettimeofday () +. 60. in
  let rec go () =
    (match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> ()
    | _, _ ->
        failwith
          (Printf.sprintf "server %s exited before announcing a port (see %s)"
             name dir));
    let data = try read_file path with Sys_error _ -> "" in
    let port =
      String.split_on_char '\n' data
      |> List.find_map (fun line ->
             if starts_with ~prefix:marker line then
               match String.rindex_opt line ':' with
               | Some i ->
                   int_of_string_opt
                     (String.sub line (i + 1) (String.length line - i - 1))
               | None -> None
             else None)
    in
    match port with
    | Some p -> p
    | None ->
        if Unix.gettimeofday () > deadline then
          failwith (Printf.sprintf "server %s never announced a port" name)
        else begin
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
  in
  go ()

let wait_exit ~name pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c ->
      failwith (Printf.sprintf "server %s exited %d" name c)
  | _, Unix.WSIGNALED s ->
      failwith (Printf.sprintf "server %s died on signal %d" name s)
  | _, Unix.WSTOPPED s ->
      failwith (Printf.sprintf "server %s stopped on signal %d" name s)

let terminate ~name pid =
  Unix.kill pid Sys.sigterm;
  wait_exit ~name pid

(* ---------------- tiny line-protocol client ---------------- *)

type client = { ic : in_channel; oc : out_channel; fd : Unix.file_descr }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  {
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    fd;
  }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_greeting c = input_line c.ic ^ "\n"

(* One request, one full reply (body lines included for the commands
   whose `OK n` header announces n of them), as the exact byte string
   the server sent. *)
let request c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  let header = input_line c.ic in
  let verb =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let body =
    match verb with
    | "RANGE" | "EVENTS" | "STATS" when starts_with ~prefix:"OK " header ->
        let n =
          int_of_string (String.sub header 3 (String.length header - 3))
        in
        List.init n (fun _ -> input_line c.ic)
    | _ -> []
  in
  String.concat "" (List.map (fun l -> l ^ "\n") (header :: body))

(* ---------------- shared trace ---------------- *)

(* The same observations go over the socket and through the in-process
   reference; the Bootstrap fixture pins everything else. *)
let make_put_lines () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:2)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
      (Rfid_prob.Rng.create ~seed)
  in
  Rfid_model.Trace.observations trace
  |> List.filteri (fun i _ -> i < 100)
  |> List.map Rfid_model.Trace_io.observation_to_line

let base_args =
  [
    "serve"; "--port"; "0";
    "--objects"; string_of_int num_objects;
    "--seed"; string_of_int seed;
    "--particles"; string_of_int particles;
  ]

let queries =
  List.init num_objects (fun k -> Printf.sprintf "AT %d" k)
  @ [
      "RANGE -1000 -1000 1000 1000 0.5";
      "RANGE 0 0 4 4";
      "STATS";
    ]

(* ---------------- phase 1: socket vs in-process, byte for byte ----- *)

let phase_consistency ~cli ~dir ~put_lines =
  let pid = spawn ~cli ~dir ~name:"consistency" base_args in
  let port = wait_port ~dir ~name:"consistency" ~pid in
  let c = connect port in
  let live_greeting = read_greeting c in
  List.iter
    (fun l ->
      let r = request c ("PUT " ^ l) in
      if not (starts_with ~prefix:"OK " r) then
        failwith (Printf.sprintf "ingest refused: PUT %s -> %S" l r))
    put_lines;
  ignore (request c "SYNC");
  let live = List.map (fun q -> (q, request c q)) queries in
  ignore (request c "DRAIN");
  let live = live @ [ ("EVENTS 0", request c "EVENTS 0") ] in
  ignore (request c "QUIT");
  disconnect c;
  terminate ~name:"consistency" pid;
  (* In-process replay of the same lines through the same fixture. *)
  let boot =
    Rfid_serve.Bootstrap.make ~objects:num_objects ~seed ~particles ()
  in
  let core =
    Rfid_serve.Core.create
      ~guard:(Rfid_serve.Bootstrap.fresh_guard boot)
      ~engine:(Rfid_serve.Bootstrap.fresh_engine boot)
      ~num_objects ()
  in
  if live_greeting <> Rfid_serve.Core.greeting core then
    failwith
      (Printf.sprintf "greeting differs:\n  live: %S\n  ref:  %S" live_greeting
         (Rfid_serve.Core.greeting core));
  List.iter
    (fun l -> ignore (Rfid_serve.Core.handle_line core ("PUT " ^ l)))
    put_lines;
  ignore (Rfid_serve.Core.handle_line core "SYNC");
  let check (q, live_reply) =
    let expected, _ = Rfid_serve.Core.handle_line core q in
    if live_reply <> expected then
      failwith
        (Printf.sprintf "reply to %s differs:\n  live: %S\n  ref:  %S" q
           live_reply expected)
  in
  let before_drain, after_drain =
    List.partition (fun (q, _) -> q <> "EVENTS 0") live
  in
  List.iter check before_drain;
  ignore (Rfid_serve.Core.handle_line core "DRAIN");
  List.iter check after_drain;
  Printf.printf "serve-smoke: consistency ok (%d epochs, %d queries bit-identical)\n%!"
    (List.length put_lines) (List.length live)

(* ---------------- phase 2: BUSY under forced overflow -------------- *)

let phase_backpressure ~cli ~dir ~put_lines =
  let pid =
    spawn ~cli ~dir ~name:"backpressure" (base_args @ [ "--admit-cap"; "2" ])
  in
  let port = wait_port ~dir ~name:"backpressure" ~pid in
  let c = connect port in
  ignore (read_greeting c);
  (* PAUSE gates the tick, so the queue cannot drain between PUTs and
     the third one must overflow deterministically. *)
  ignore (request c "PAUSE");
  let expect req expected =
    let got = request c req in
    if got <> expected then
      failwith (Printf.sprintf "%s -> %S, wanted %S" req got expected)
  in
  (match put_lines with
  | l1 :: l2 :: l3 :: _ ->
      expect ("PUT " ^ l1) "OK 1\n";
      expect ("PUT " ^ l2) "OK 2\n";
      expect ("PUT " ^ l3) "BUSY 2/2\n"
  | _ -> failwith "trace too short for the backpressure phase");
  ignore (request c "RESUME");
  ignore (request c "SYNC");
  ignore (request c "QUIT");
  disconnect c;
  terminate ~name:"backpressure" pid;
  Printf.printf "serve-smoke: backpressure ok (BUSY 2/2 observed, then drained)\n%!"

(* ---------------- phase 3: SIGKILL, --recover, no duplication ------ *)

let durable_args ~dir =
  let p = Filename.concat dir in
  [
    "--wal"; p "wal.log";
    "--checkpoint"; p "ck";
    "--checkpoint-every"; string_of_int checkpoint_every;
    "--events"; p "events.log";
  ]

let feed_and_sync c lines =
  List.iter (fun l -> ignore (request c ("PUT " ^ l))) lines;
  ignore (request c "SYNC")

let non_comment_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && not (starts_with ~prefix:"#" l))

let phase_durability ~cli ~dir ~put_lines =
  let n = List.length put_lines in
  (* Cut at a checkpoint boundary: after SYNC the cadence has just
     fired, so checkpoint + WAL + events are all durable and the kill
     point is deterministic. *)
  let k1 = (n / 2) - (n / 2 mod checkpoint_every) in
  if k1 < checkpoint_every then failwith "trace too short for the kill phase";
  let first = List.filteri (fun i _ -> i < k1) put_lines in
  let rest = List.filteri (fun i _ -> i >= k1) put_lines in
  (* Golden: one uninterrupted server over the whole trace. *)
  let golden_dir = Filename.concat dir "golden" in
  Unix.mkdir golden_dir 0o755;
  let pid =
    spawn ~cli ~dir:golden_dir ~name:"golden"
      (base_args @ durable_args ~dir:golden_dir)
  in
  let port = wait_port ~dir:golden_dir ~name:"golden" ~pid in
  let c = connect port in
  ignore (read_greeting c);
  feed_and_sync c put_lines;
  ignore (request c "DRAIN");
  ignore (request c "QUIT");
  disconnect c;
  terminate ~name:"golden" pid;
  let golden_events = read_file (Filename.concat golden_dir "events.log") in
  (* Victim: feed the first half, SIGKILL at the quiescent point. *)
  let victim_dir = Filename.concat dir "victim" in
  Unix.mkdir victim_dir 0o755;
  let pid =
    spawn ~cli ~dir:victim_dir ~name:"victim"
      (base_args @ durable_args ~dir:victim_dir)
  in
  let port = wait_port ~dir:victim_dir ~name:"victim" ~pid in
  let c = connect port in
  ignore (read_greeting c);
  feed_and_sync c first;
  Unix.kill pid Sys.sigkill;
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _ -> failwith "victim server did not die on SIGKILL");
  (* Recover in the same directory and finish the trace. *)
  let pid =
    spawn ~cli ~dir:victim_dir ~name:"recovered"
      (base_args @ durable_args ~dir:victim_dir @ [ "--recover" ])
  in
  let port = wait_port ~dir:victim_dir ~name:"recovered" ~pid in
  let c = connect port in
  ignore (read_greeting c);
  let stats = request c "STATS" in
  let resumed_epoch =
    String.split_on_char '\n' stats
    |> List.find_map (fun l ->
           if starts_with ~prefix:"epoch " l then
             int_of_string_opt (String.sub l 6 (String.length l - 6))
           else None)
  in
  if resumed_epoch = Some 0 || resumed_epoch = None then
    failwith
      (Printf.sprintf "recovered server did not resume (STATS: %S)" stats);
  feed_and_sync c rest;
  ignore (request c "DRAIN");
  ignore (request c "QUIT");
  disconnect c;
  terminate ~name:"recovered" pid;
  let recovered_events = read_file (Filename.concat victim_dir "events.log") in
  (* No duplication: every event line appears once... *)
  let lines = non_comment_lines recovered_events in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l ->
      if Hashtbl.mem tbl l then
        failwith (Printf.sprintf "duplicated event after recovery: %S" l);
      Hashtbl.add tbl l ())
    lines;
  (* ...and none lost: the whole log matches the uninterrupted run. *)
  if recovered_events <> golden_events then
    failwith
      (Printf.sprintf
         "recovered events.log differs from golden (see %s vs %s)" victim_dir
         golden_dir);
  Printf.printf
    "serve-smoke: durability ok (killed at epoch %d, recovered, %d event \
     lines bit-identical to golden)\n%!"
    k1 (List.length lines)

let () =
  let cli = cli_path () in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rfid_serve_smoke_%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let put_lines = make_put_lines () in
  Printf.printf "serve-smoke: %d observation epochs, fixtures under %s\n%!"
    (List.length put_lines) root;
  let phases =
    [
      ("consistency", phase_consistency);
      ("backpressure", phase_backpressure);
      ("durability", phase_durability);
    ]
  in
  List.iter
    (fun (name, phase) ->
      let dir = Filename.concat root name in
      Unix.mkdir dir 0o755;
      try phase ~cli ~dir ~put_lines
      with exn ->
        Printf.printf "serve-smoke: %s FAILED: %s (artifacts under %s)\n%!"
          name (Printexc.to_string exn) dir;
        exit 1)
    phases;
  rm_rf root;
  print_endline "serve-smoke: ok (3 phases)"
