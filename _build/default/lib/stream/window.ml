type 'a t = {
  size : int;
  q : (Rfid_model.Types.epoch * 'a) Queue.t;
  mutable last_epoch : Rfid_model.Types.epoch;
}

let create ~size =
  if size <= 0 then invalid_arg "Window.create: size must be positive";
  { size; q = Queue.create (); last_epoch = min_int }

let evict t ~epoch =
  let cutoff = epoch - t.size + 1 in
  let rec go () =
    match Queue.peek_opt t.q with
    | Some (e, _) when e < cutoff ->
        ignore (Queue.pop t.q);
        go ()
    | Some _ | None -> ()
  in
  go ()

let check t ~epoch =
  if epoch < t.last_epoch then invalid_arg "Window: epoch regression";
  t.last_epoch <- epoch

let push t ~epoch v =
  check t ~epoch;
  Queue.push (epoch, v) t.q;
  evict t ~epoch

let advance t ~epoch =
  check t ~epoch;
  evict t ~epoch

let contents t = List.of_seq (Queue.to_seq t.q)

let fold t ~init ~f =
  Queue.fold (fun acc (e, v) -> f acc e v) init t.q

let length t = Queue.length t.q
