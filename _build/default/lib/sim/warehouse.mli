(** Warehouse layout generator (§V-A): consecutive shelves aligned on
    the y axis, objects evenly spaced on the shelves, every shelf
    carrying one tag at a known location. The reader travels along the
    aisle at x = 0 facing the shelves (+x); the shelf front edge is at
    [aisle_width]. All tags share a height, so z = 0 everywhere. *)

type t = {
  world : Rfid_model.World.t;
  object_locs : Rfid_geom.Vec3.t array;  (** initial true object locations, index = object id *)
  aisle_width : float;  (** x distance from the reader's track to the shelf front *)
  y_extent : float;  (** total shelf run along y, ft *)
}

val layout :
  ?objects_per_shelf:int ->
  ?object_spacing:float ->
  ?shelf_depth:float ->
  ?aisle_width:float ->
  num_objects:int ->
  unit ->
  t
(** Build a warehouse holding [num_objects] objects. Defaults:
    10 objects per shelf, 0.5 ft between objects, shelves 1 ft deep,
    aisle 1.5 ft wide. Objects sit in the middle of the shelf depth,
    evenly spaced along y; each shelf's tag is at the front-edge centre
    of the shelf. @raise Invalid_argument if [num_objects <= 0] or any
    dimension is non-positive. *)

val reader_start : t -> Rfid_model.Reader_state.t
(** Reader pose at the start of a scan: on the aisle track just before
    the first shelf, facing the shelves. *)
