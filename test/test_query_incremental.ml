(* The incremental query layer against its ground truth: under random
   interleavings of normal steps, degraded (dead-reckoned) steps,
   snapshot/restore boundaries and queries, the long-lived [Query.t]
   that drains the engine's change feed must answer RANGE / AT / NEAR
   byte-identically to a throwaway [Query.t] that rebuilds its fit
   cache from scratch on the same engine. Separately, the change feed
   itself is checked for completeness: any object whose posterior
   estimate moved across a step must have been flagged dirty — across
   eviction, belief compression, adaptive particle budgets and
   degraded-mode widening. *)

module Engine = Rfid_core.Engine
module Config = Rfid_core.Config
module Query = Rfid_serve.Query
module Framing = Rfid_serve.Framing
module Trace = Rfid_model.Trace
module T = Rfid_model.Types
module Vec3 = Rfid_geom.Vec3
module Rng = Rfid_prob.Rng

let num_objects = 10

(* One simulated warehouse pass shared by every test in this file; the
   per-test randomness drives the interleaving, not the data. *)
let fixture =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects () in
     let sensor = Rfid_sim.Truth_sensor.cone ~rr_major:0.85 () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass ~speed:0.4 wh ~rounds:2)
         ~config:(Rfid_sim.Trace_gen.default_config ~sensor ())
         (Rng.create ~seed:23)
     in
     (wh, trace))

let make_engine config =
  let wh, trace = Lazy.force fixture in
  Engine.create ~world:wh.Rfid_sim.Warehouse.world
    ~params:Rfid_model.Params.default ~config
    ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects ~seed:5
    ()

(* ------------------------------------------------------------------ *)
(* Byte-identity of the incremental cache vs a from-scratch rebuild *)

let fstr = Framing.float_str

let render_range answers =
  List.map
    (fun (a : Query.answer) ->
      Printf.sprintf "%d %s %s %s %s" a.Query.a_obj (fstr a.Query.a_mass)
        (fstr a.Query.a_loc.Vec3.x) (fstr a.Query.a_loc.Vec3.y)
        (fstr a.Query.a_loc.Vec3.z))
    answers

let render_at = function
  | None -> "none"
  | Some (loc, sd_xy) ->
      Printf.sprintf "%s %s %s %s" (fstr loc.Vec3.x) (fstr loc.Vec3.y)
        (fstr loc.Vec3.z) (fstr sd_xy)

let render_near answers =
  List.map
    (fun (a : Query.near_answer) ->
      Printf.sprintf "%d %s %s %s %s" a.Query.n_obj (fstr a.Query.n_dist)
        (fstr a.Query.n_loc.Vec3.x) (fstr a.Query.n_loc.Vec3.y)
        (fstr a.Query.n_loc.Vec3.z))
    answers

(* Ordering matters: the incremental query goes first (it owns the
   change feed), then a fresh query rebuilt from scratch — a fresh
   [Query.t] starts fully invalid, so it never needs the feed the
   incremental one just consumed. *)
let compare_vs_rebuild ~what engine qi rng =
  let coord () = (float_of_int (Rng.int rng 1400) /. 10.) -. 20. in
  let x0 = coord () and y0 = coord () in
  let x1 = x0 +. float_of_int (Rng.int rng 400) /. 10. in
  let y1 = y0 +. float_of_int (Rng.int rng 400) /. 10. in
  let min_x, min_y, max_x, max_y =
    if Rng.int rng 10 = 0 then (-1e3, -1e3, 1e3, 1e3) else (x0, y0, x1, y1)
  in
  let min_mass = 0.001 +. (float_of_int (Rng.int rng 100) /. 200.) in
  let qf = Query.create () in
  let inc_range =
    render_range
      (Query.range qi ~engine ~min_x ~min_y ~max_x ~max_y ~min_mass)
  in
  Alcotest.(check (list string))
    (what ^ ": RANGE incremental = rebuild")
    (render_range
       (Query.range qf ~engine ~min_x ~min_y ~max_x ~max_y ~min_mass))
    inc_range;
  for obj = 0 to num_objects - 1 do
    let inc_at = render_at (Query.at qi ~engine obj) in
    Alcotest.(check string)
      (Printf.sprintf "%s: AT %d incremental = rebuild" what obj)
      (render_at (Query.at qf ~engine obj))
      inc_at
  done;
  let k = 1 + Rng.int rng 4 in
  let nx = coord () and ny = coord () in
  let inc_near = render_near (Query.near qi ~engine ~k ~x:nx ~y:ny) in
  Alcotest.(check (list string))
    (what ^ ": NEAR incremental = rebuild")
    (render_near (Query.near qf ~engine ~k ~x:nx ~y:ny))
    inc_near

let run_interleaving ~variant ~seed ~steps_budget =
  let wh, trace = Lazy.force fixture in
  let obs = Array.of_list (Trace.observations trace) in
  let config =
    Config.create ~variant ~num_reader_particles:30 ~num_object_particles:40
      ~out_of_scope_after:4 ~report_delay:3 ~compress_after:5
      ~degraded_widen_after:2 ()
  in
  let engine = ref (make_engine config) in
  let qi = Query.create () in
  let rng = Rng.create ~seed in
  let n = Int.min steps_budget (Array.length obs) in
  for i = 0 to n - 1 do
    let o = obs.(i) in
    (match Rng.int rng 100 with
    | r when r < 12 ->
        (* positioning outage: dead-reckon through this epoch *)
        ignore
          (Engine.step_degraded ~tags:o.T.o_read_tags !engine
             ~epoch:o.T.o_epoch)
    | r when r < 20 ->
        (* crash/restore boundary mid-stream, then the epoch; the
           restored engine raises dirty_all, so the incremental cache
           must match whether or not the caller also invalidates. *)
        let snap = Engine.snapshot !engine in
        engine :=
          Engine.restore ~world:wh.Rfid_sim.Warehouse.world
            ~params:Rfid_model.Params.default ~config snap;
        Alcotest.(check bool)
          "restore raises dirty_all" true
          (Engine.changes_dirty_all !engine);
        if Rng.bool rng then Query.invalidate qi;
        ignore (Engine.step !engine o)
    | _ -> ignore (Engine.step !engine o));
    if Rng.int rng 100 < 35 then
      compare_vs_rebuild
        ~what:(Printf.sprintf "epoch %d" o.T.o_epoch)
        !engine qi rng
  done;
  ignore (Engine.flush !engine);
  compare_vs_rebuild ~what:"after flush" !engine qi rng;
  (* Guard against vacuous success: the pass must actually have put
     objects in scope, and the incremental cache must track them all. *)
  Alcotest.(check bool) "objects were discovered" true (Engine.num_known !engine > 0);
  Alcotest.(check int) "fit cache covers the known set"
    (Engine.num_known !engine) (Query.fit_count qi)

let prop_interleavings_indexed =
  Util.qcheck ~count:6 "interleavings: incremental = rebuild (indexed)"
    QCheck.small_int (fun seed ->
      run_interleaving ~variant:Config.Factorized_indexed ~seed
        ~steps_budget:60;
      true)

let test_interleaving_compressed () =
  run_interleaving ~variant:Config.Factorized_compressed ~seed:7
    ~steps_budget:60

let test_interleaving_unfactorized () =
  run_interleaving ~variant:Config.Unfactorized ~seed:11 ~steps_budget:40

(* ------------------------------------------------------------------ *)
(* Change-feed completeness: changed ==> flagged *)

let snapshot_estimates engine =
  let tbl = Hashtbl.create 32 in
  Engine.iter_estimates engine (fun id m c ->
      Hashtbl.replace tbl id (m, Array.map Array.copy c));
  tbl

(* [degraded_burst > 0] replaces the first [degraded_burst] epochs of
   every 7 with dead-reckoned steps, long enough bursts trip the
   widening (dirty_all) path. Returns whether dirty_all was ever
   observed. *)
let run_dirty_completeness ~label config ~degraded_burst =
  let engine = make_engine config in
  let _, trace = Lazy.force fixture in
  let obs = Array.of_list (Trace.observations trace) in
  let n = Int.min 80 (Array.length obs) in
  let saw_dirty_all = ref false in
  for i = 0 to n - 1 do
    let before = snapshot_estimates engine in
    let o = obs.(i) in
    if degraded_burst > 0 && i mod 7 < degraded_burst then
      ignore (Engine.step_degraded ~tags:o.T.o_read_tags engine ~epoch:o.T.o_epoch)
    else ignore (Engine.step engine o);
    let dirty_all = Engine.changes_dirty_all engine in
    if dirty_all then saw_dirty_all := true;
    let dirty = Hashtbl.create 16 in
    Engine.iter_dirty_changes engine (fun id -> Hashtbl.replace dirty id ());
    Engine.clear_changes engine;
    if not dirty_all then
      Engine.iter_estimates engine (fun id m c ->
          let changed =
            match Hashtbl.find_opt before id with
            | None -> true (* newly known *)
            | Some (m0, c0) -> not (m = m0 && c = c0)
          in
          if changed && not (Hashtbl.mem dirty id) then
            Alcotest.failf
              "%s: epoch %d: object %d's estimate moved but was not \
               flagged dirty"
              label o.T.o_epoch id)
  done;
  !saw_dirty_all

let test_dirty_eviction () =
  ignore
    (run_dirty_completeness ~label:"eviction"
       (Config.create ~variant:Config.Factorized_indexed
          ~num_reader_particles:30 ~num_object_particles:40
          ~out_of_scope_after:2 ~report_delay:2 ())
       ~degraded_burst:0)

let test_dirty_adaptive_budget () =
  ignore
    (run_dirty_completeness ~label:"adaptive budget"
       (Config.create ~variant:Config.Factorized_indexed
          ~num_reader_particles:30 ~num_object_particles:80
          ~min_object_particles:10 ~resample_ess_ratio:0.9
          ~out_of_scope_after:3 ())
       ~degraded_burst:0)

let test_dirty_compression () =
  ignore
    (run_dirty_completeness ~label:"compression"
       (Config.create ~variant:Config.Factorized_compressed
          ~num_reader_particles:30 ~num_object_particles:40
          ~compress_after:3 ~out_of_scope_after:4 ())
       ~degraded_burst:0)

let test_dirty_degraded_widening () =
  let saw_dirty_all =
    run_dirty_completeness ~label:"degraded widening"
      (Config.create ~variant:Config.Factorized_indexed
         ~num_reader_particles:30 ~num_object_particles:40
         ~degraded_widen_after:2 ())
      ~degraded_burst:3
  in
  Alcotest.(check bool)
    "widening bursts raised dirty_all at least once" true saw_dirty_all

let suite =
  ( "query_incremental",
    [
      prop_interleavings_indexed;
      Alcotest.test_case "interleavings (compressed)" `Quick
        test_interleaving_compressed;
      Alcotest.test_case "interleavings (unfactorized)" `Quick
        test_interleaving_unfactorized;
      Alcotest.test_case "dirty-set complete under eviction" `Quick
        test_dirty_eviction;
      Alcotest.test_case "dirty-set complete under adaptive budgets" `Quick
        test_dirty_adaptive_budget;
      Alcotest.test_case "dirty-set complete under compression" `Quick
        test_dirty_compression;
      Alcotest.test_case "dirty-set complete under degraded widening" `Quick
        test_dirty_degraded_widening;
    ] )
