(** Engine configuration: particle budgets, the scalability variant
    (§IV), proposal choices, and the report policy. *)

type variant =
  | Unfactorized
      (** basic particle filter of §IV-A: joint particles over the
          reader and every object *)
  | Factorized  (** §IV-B: reader particles + per-object particle lists *)
  | Factorized_indexed  (** §IV-B + the spatial index of §IV-C *)
  | Factorized_compressed  (** §IV-B + §IV-C + belief compression (§IV-D) *)

type resample_scheme = Systematic | Multinomial | Residual

type proposal =
  | From_velocity
      (** propose reader motion from the learned average velocity
          (the paper's model verbatim) *)
  | From_reported_displacement
      (** condition the motion proposal on the displacement between
          consecutive reported locations — treats the location stream as
          a control input, which handles turns; systematic bias cancels
          in the difference *)
  | From_reported_location
      (** place reader hypotheses directly at the reported location —
          "the reported location is the true location". This is the
          paper's "motion model Off" strawman (Fig. 5(g)); it eats any
          systematic reporting error whole. *)

type heading_model =
  | Known_heading of (Rfid_model.Types.epoch -> float)
      (** reader orientation supplied externally (e.g. the application
          commanded the robot's heading) *)
  | Track_heading of { jump_prob : float }
      (** orientation tracked as hidden state: random-walk proposal with
          an occasional uniform re-draw so large turns remain reachable;
          shelf-tag evidence pins it down *)

type t = {
  variant : variant;
  num_reader_particles : int;  (** J, reader-location hypotheses *)
  num_object_particles : int;  (** K, per-object location hypotheses *)
  min_object_particles : int;
      (** floor of the adaptive per-object particle budget. Default =
          [num_object_particles], which disables adaptation entirely —
          every object keeps the fixed budget and the hot path does no
          extra work. When strictly below, each object's budget walks a
          doubling ladder
          [min, 2*min, 4*min, ..., num_object_particles], moving at
          most one rung per resample event: posterior spread (sqrt of
          the weighted covariance trace) at or above [reinit_near]
          earns the full budget, and each halving of spread steps one
          rung down; stepping back up requires 1.5x the rung threshold
          (hysteresis). Shrinking resamples directly to the smaller
          count; growth resamples then replicates with keyed-RNG
          jitter, so budgets stay domain-count independent. *)
  resample_ratio : float;  (** resample when ESS < ratio * n (0.5) *)
  resample_ess_ratio : float;
      (** additional ESS cap on every resample (object, reader and the
          unfactorized joint): the gather+swap runs only when
          additionally [ess < resample_ess_ratio * n]. The default 1.0
          is vacuous (ESS never exceeds n), preserving bit-identical
          behavior; lowering it below [resample_ratio] skips resamples
          whose weight degeneracy is still mild, trading resampling
          work (and particle-diversity refresh) for throughput. Skips
          are counted in the [filter.resamples_skipped] metric. *)
  proposal : proposal;
  heading_model : heading_model;
  init_overestimate : float;
      (** widening factor of the sensor-model-based initialization cone *)
  reinit_near : float;
      (** reader-displacement (ft) below which a re-detection reuses the
          existing particles unchanged *)
  reinit_far : float;
      (** reader-displacement (ft) beyond which a re-detection discards
          all old particles; in between, half are kept and half re-drawn
          at the new location (§IV-A) *)
  out_of_scope_after : int;
      (** epochs without a reading after which an object has left the
          reader's scope *)
  report_delay : int;
      (** epochs after entering scope at which a location event is
          emitted (the paper's experiments use 60 s) *)
  compress_after : int;
      (** epochs without a reading after which a
          [Factorized_compressed] engine compresses the object's belief *)
  decompress_particles : int;
      (** particle count when re-expanding a compressed belief (§V-D
          uses 10) *)
  compress_max_nll : float option;
      (** optional quality gate: skip compression when the Gaussian's
          average negative log-likelihood over the particles exceeds
          this bound (the KL-threshold policy of §IV-D) *)
  index_min_displacement : float;
      (** consolidate index insertions until the reader has moved this
          far (ft), to keep the R-tree compact *)
  detection_threshold : float;
      (** read-probability level treated as the sensing-region edge *)
  case4_margin : float;
      (** inflation (ft) of the Case-2 probe box, absorbing reader
          particle spread *)
  max_sensing_range : float;
      (** hard cap (ft) on the detection range derived from the sensor
          model — guards cones and index boxes against calibrated models
          whose distance decay is unidentifiable from the training
          geometry *)
  resample_scheme : resample_scheme;
      (** resampling scheme for both reader and object particles
          (default [Systematic]; the others exist for ablation) *)
  proposal_noise_override : Rfid_geom.Vec3.t option;
      (** explicit per-axis reader-proposal noise, replacing the value
          derived from the model parameters — used by calibration, whose
          E-step deliberately inflates the {e weighting} sigma without
          wanting a wilder proposal (default [None]) *)
  num_domains : int;
      (** domains applied to the per-object update loop of the factored
          filter (default 1 = sequential). Inference output is
          bit-identical for every value: per-object randomness comes
          from substreams keyed by (object id, epoch), not from
          scheduling order. *)
  shelf_miss_weight : float;
      (** tempering factor in [0, 1] on the log-likelihood of shelf-tag
          {e misses} in reader weighting. Reads are the reliable reader
          evidence (Fig. 2(c)); misses mostly carry information through
          the sensor model's soft boundary, exactly where a fitted
          logistic deviates most from the true region, so full-strength
          miss evidence lets model mismatch drag the reader posterior.
          1 = the literal Eq. 5; default 0.25. *)
  drop_out_of_order : bool;
      (** when [true], {!Engine.step} silently drops (and counts) an
          observation whose epoch is strictly below the current one
          instead of raising — the [Drop] half of the ingest policy for
          reordered streams. Equal-epoch duplicates are always skipped
          and counted, never raised. Default [false] ([Halt]). *)
  degraded_widen_after : int;
      (** consecutive degraded (dead-reckoned) epochs after which object
          posteriors start widening each further degraded epoch,
          acknowledging that a long positioning outage erodes what the
          filter knows about object locations (default 10) *)
  degraded_noise_scale : float;
      (** multiplier (>= 1) on the reader proposal noise during
          dead-reckoned epochs: with no location fix to anchor the
          proposal, the reader belief must spread faster than the
          motion model's nominal sigma (default 3.0) *)
  degraded_widen_sigma : float;
      (** per-axis std-dev (ft) of the jitter applied to object
          particles on each widening epoch; compressed beliefs inflate
          their covariance by the equivalent amount (default 0.25) *)
}

val default : t
(** [Factorized_indexed], J = 100, K = 200, systematic resampling at
    ESS ratio 0.5, displacement proposal, known heading 0, report delay
    60 epochs. *)

val create :
  ?variant:variant ->
  ?num_reader_particles:int ->
  ?num_object_particles:int ->
  ?min_object_particles:int ->
  ?resample_ratio:float ->
  ?resample_ess_ratio:float ->
  ?proposal:proposal ->
  ?heading_model:heading_model ->
  ?init_overestimate:float ->
  ?reinit_near:float ->
  ?reinit_far:float ->
  ?out_of_scope_after:int ->
  ?report_delay:int ->
  ?compress_after:int ->
  ?decompress_particles:int ->
  ?compress_max_nll:float option ->
  ?index_min_displacement:float ->
  ?detection_threshold:float ->
  ?case4_margin:float ->
  ?max_sensing_range:float ->
  ?shelf_miss_weight:float ->
  ?resample_scheme:resample_scheme ->
  ?proposal_noise_override:Rfid_geom.Vec3.t option ->
  ?num_domains:int ->
  ?drop_out_of_order:bool ->
  ?degraded_widen_after:int ->
  ?degraded_noise_scale:float ->
  ?degraded_widen_sigma:float ->
  unit ->
  t
(** {!default} with overrides. @raise Invalid_argument on non-positive
    particle counts, a resample ratio outside (0, 1], or negative
    thresholds. *)
