type t = {
  world : Rfid_model.World.t;
  params : Rfid_model.Params.t;
  config : Rfid_core.Config.t;
  init_reader : Rfid_model.Reader_state.t;
  num_objects : int;
  seed : int;
}

let make ~objects ~seed ?(variant = Rfid_core.Config.Factorized_indexed)
    ?(particles = 200) ?(min_particles = 0) ?(resample_ess = 1.0) ?(domains = 1)
    () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:objects () in
  let sensor = Rfid_sim.Truth_sensor.cone () in
  let fitted =
    Rfid_learn.Supervised.fit_sensor
      ~read_prob:sensor.Rfid_sim.Truth_sensor.read_prob ~seed:99 ()
  in
  let params = Rfid_model.Params.create ~sensor:fitted () in
  let min_object_particles =
    if min_particles = 0 then particles else min_particles
  in
  let config =
    Rfid_core.Config.create ~variant ~num_object_particles:particles
      ~min_object_particles ~resample_ess_ratio:resample_ess
      ~num_domains:domains ~drop_out_of_order:true ()
  in
  {
    world = wh.Rfid_sim.Warehouse.world;
    params;
    config;
    init_reader = Rfid_sim.Warehouse.reader_start wh;
    num_objects = objects;
    seed;
  }

let fresh_engine t =
  Rfid_core.Engine.create ~world:t.world ~params:t.params ~config:t.config
    ~init_reader:t.init_reader ~num_objects:t.num_objects ~seed:t.seed ()

let restore_engine t snapshot =
  Rfid_core.Engine.restore ~world:t.world ~params:t.params ~config:t.config
    snapshot

let fresh_guard t =
  Rfid_robust.Ingest.create
    ~policies:
      {
        Rfid_robust.Ingest.default_policies with
        Rfid_robust.Ingest.on_out_of_order_epoch = Rfid_robust.Ingest.Drop;
      }
    ~bounds:(Rfid_model.World.bounding_box t.world)
    ~max_object_id:t.num_objects ()
