open Rfid_geom

type error = { mean_x : float; mean_y : float; mean_xy : float; count : int }

let zero = { mean_x = 0.; mean_y = 0.; mean_xy = 0.; count = 0 }

let true_loc_at (trace : Rfid_model.Trace.t) ~epoch ~obj =
  let n = Rfid_model.Trace.epochs trace in
  if n = 0 || obj < 0 || obj >= trace.Rfid_model.Trace.num_objects then None
  else begin
    let e = Int.max 0 (Int.min (n - 1) epoch) in
    Some (Rfid_model.Trace.true_object_loc trace ~epoch:e ~obj)
  end

let inference_error events trace =
  let sx = ref 0. and sy = ref 0. and sxy = ref 0. and n = ref 0 in
  List.iter
    (fun (ev : Rfid_core.Event.t) ->
      match true_loc_at trace ~epoch:ev.Rfid_core.Event.ev_epoch ~obj:ev.ev_obj with
      | None -> ()
      | Some truth ->
          let loc = ev.Rfid_core.Event.ev_loc in
          sx := !sx +. Float.abs (loc.Vec3.x -. truth.Vec3.x);
          sy := !sy +. Float.abs (loc.Vec3.y -. truth.Vec3.y);
          sxy := !sxy +. Vec3.dist_xy loc truth;
          incr n)
    events;
  if !n = 0 then zero
  else begin
    let c = float_of_int !n in
    { mean_x = !sx /. c; mean_y = !sy /. c; mean_xy = !sxy /. c; count = !n }
  end

let per_object_error events trace =
  let last = Hashtbl.create 32 in
  List.iter
    (fun (ev : Rfid_core.Event.t) -> Hashtbl.replace last ev.Rfid_core.Event.ev_obj ev)
    events;
  Hashtbl.fold
    (fun obj (ev : Rfid_core.Event.t) acc ->
      match true_loc_at trace ~epoch:ev.Rfid_core.Event.ev_epoch ~obj with
      | None -> acc
      | Some truth -> (obj, Vec3.dist_xy ev.Rfid_core.Event.ev_loc truth) :: acc)
    last []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let coverage events trace =
  let n = trace.Rfid_model.Trace.num_objects in
  if n = 0 then 1.
  else begin
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (ev : Rfid_core.Event.t) ->
        if ev.Rfid_core.Event.ev_obj >= 0 && ev.ev_obj < n then
          Hashtbl.replace seen ev.Rfid_core.Event.ev_obj ())
      events;
    float_of_int (Hashtbl.length seen) /. float_of_int n
  end

let pp_error ppf e =
  Format.fprintf ppf "X=%.3f Y=%.3f XY=%.3f ft (n=%d)" e.mean_x e.mean_y e.mean_xy
    e.count
