(** Single-threaded TCP front end for {!Core} (RUNBOOK.md §2).

    One [Unix.select] loop multiplexes the listening socket, every
    client connection, inference progress and periodic work — no
    threads, no domain crossing, so the engine behind {!Core} keeps its
    deterministic single-writer discipline by construction. Each pass
    the loop accepts new connections, reads what the kernel has
    buffered, frames it ({!Framing}), answers each complete line
    through {!Core.handle_line}, flushes what each connection will
    take, then gives the engine a bounded tick
    ([max_steps_per_tick] queued observations), so one firehose client
    cannot starve queries on other connections.

    Connections are non-blocking end to end: a client that stops
    reading only grows its own reply buffer. [SIGPIPE] is ignored;
    [SIGTERM]/[SIGINT] latch a stop flag, and the loop then drains
    ({!Core.drain}: queue → flush → checkpoint hook), makes a best
    effort to flush pending replies, closes every socket and
    returns — the documented "graceful drain" lifecycle. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port *)
  max_conns : int;  (** accept cap; excess connections are refused *)
  max_steps_per_tick : int;
      (** queued observations stepped per loop pass *)
  tick_timeout : float;  (** select timeout in seconds *)
}

val default_config : config
(** [{host = "127.0.0.1"; port = 0; max_conns = 64;
    max_steps_per_tick = 256; tick_timeout = 0.05}] *)

val run :
  ?on_listening:(host:string -> port:int -> unit) ->
  ?on_pass:(unit -> unit) ->
  ?should_stop:(unit -> bool) ->
  Core.t ->
  config ->
  unit
(** Serve until a stop is requested, then drain and return.

    [on_listening] fires once with the bound address — with [port = 0]
    this is the only way to learn the actual port. [on_pass] fires
    once per loop pass after the engine tick (metrics push cadence
    hangs here). [should_stop] is polled each pass in addition to the
    signal latch, for embedding in tests.

    @raise Unix.Unix_error if the listening socket cannot be bound. *)
