lib/model/params.ml: Format Location_sensing Motion_model Object_model Rfid_geom Sensor_model
