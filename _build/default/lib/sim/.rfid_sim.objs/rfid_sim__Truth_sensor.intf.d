lib/sim/truth_sensor.mli: Rfid_geom Rfid_prob
