(* The §V-C lab deployment, end to end: a dead-reckoning robot scans two
   rows of 80 tags with a spherical-read-region antenna; we calibrate
   the sensor model from the reference tags, then clean the scan with
   our engine and with the SMURF and uniform baselines.

   Run with:  dune exec examples/lab_deployment.exe *)

open Rfid_model

let () =
  let timeout_ms = 500 in
  let lab = Rfid_sim.Lab.deployment ~timeout_ms ~shelf_size:Rfid_sim.Lab.Small () in
  Printf.printf
    "lab rig: %d object tags, %d reference tags, reader timeout %d ms\n\n"
    Rfid_sim.Lab.num_objects
    (List.length (World.shelf_tags lab.Rfid_sim.Lab.world))
    timeout_ms;

  (* Training scan -> EM calibration (the robot's commanded headings are
     known: 0 on the way out, pi on the way back). *)
  let heading_model = Rfid_core.Config.Known_heading Rfid_sim.Lab.heading in
  let train = Rfid_sim.Lab.scan lab ~seed:8 in
  let cal = Rfid_learn.Calibration.default_config ~heading_model () in
  let cal = { cal with Rfid_learn.Calibration.em_iters = 3 } in
  let learned =
    Rfid_learn.Calibration.calibrate ~world:lab.Rfid_sim.Lab.world
      ~init:Params.default ~config:cal
      ~observations:(Trace.observations train)
      ~init_reader:train.Trace.steps.(0).Trace.true_reader
  in
  Format.printf "calibrated from the training scan:@.  %a@.@." Params.pp learned;

  (* Evaluation scan. *)
  let trace = Rfid_sim.Lab.scan lab ~seed:7 in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:150 ~num_object_particles:300 ~heading_model ()
  in
  let ours = Rfid_eval.Runner.run_engine ~params:learned ~config ~seed:4 trace in

  (* Baselines get the read range from our learned model, as in the
     paper ("SMURF cannot learn the sensor model from data"). *)
  let range = Float.min 8. (Sensor_model.detection_range learned.Params.sensor) in
  let obs = Trace.observations trace in
  let smurf =
    Rfid_baselines.Smurf.run ~world:lab.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Smurf.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed:5 obs
  in
  let uniform =
    Rfid_baselines.Uniform.run ~world:lab.Rfid_sim.Lab.world
      ~config:(Rfid_baselines.Uniform.default_config ~heading_of:Rfid_sim.Lab.heading
           ~read_range:range ())
      ~seed:5 obs
  in
  let report label events =
    let e = Rfid_eval.Metrics.inference_error events trace in
    Printf.printf "  %-18s X=%.2f  Y=%.2f  XY=%.2f ft  (%d events)\n" label
      e.Rfid_eval.Metrics.mean_x e.Rfid_eval.Metrics.mean_y e.Rfid_eval.Metrics.mean_xy
      e.Rfid_eval.Metrics.count
  in
  Printf.printf "inference error on the evaluation scan:\n";
  report "our system" ours.Rfid_eval.Runner.events;
  report "SMURF (improved)" smurf;
  report "uniform sampling" uniform
